/**
 * @file
 * Unit tests for the statistics registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace ltrf;

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupLookup)
{
    StatGroup g("sm0");
    Counter a, b;
    g.add("issued", &a);
    g.add("stalls", &b);
    a += 10;
    b += 3;
    EXPECT_EQ(g.value("issued"), 10u);
    EXPECT_EQ(g.value("stalls"), 3u);
    EXPECT_TRUE(g.has("issued"));
    EXPECT_FALSE(g.has("nonexistent"));
}

TEST(Stats, ResetAll)
{
    StatGroup g("g");
    Counter a, b;
    g.add("a", &a);
    g.add("b", &b);
    a += 4;
    b += 2;
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
    EXPECT_EQ(g.value("b"), 0u);
}

TEST(Stats, DumpFormat)
{
    StatGroup g("core");
    Counter a;
    g.add("cycles", &a);
    a += 42;
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "core.cycles 42\n");
}

TEST(Stats, DistributionBasics)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.min(), 0u);    // no samples: min reads as 0
    EXPECT_EQ(d.max(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(4);
    d.sample(10);
    d.sample(1);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.sum(), 15u);
    EXPECT_EQ(d.min(), 1u);
    EXPECT_EQ(d.max(), 10u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(Stats, ResetAllRecursesAndClearsDistributions)
{
    StatGroup root("root");
    StatGroup child("child");
    Counter a, b;
    Distribution d;
    root.add("a", &a);
    root.addDist("lat", &d);
    child.add("b", &b);
    root.addChild(&child);
    a += 4;
    b += 2;
    d.sample(9);
    root.resetAll();
    EXPECT_EQ(root.value("a"), 0u);
    EXPECT_EQ(child.value("b"), 0u);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.min(), 0u);    // reset min must read 0, not 2^64-1
    d.sample(7);
    EXPECT_EQ(d.min(), 7u);
}

TEST(StatsDeathTest, DuplicateCounterNamePanics)
{
    StatGroup g("g");
    Counter a, b;
    g.add("x", &a);
    EXPECT_DEATH(g.add("x", &b), "duplicate stat 'x'");
}

TEST(StatsDeathTest, CounterDistributionNameCollisionPanics)
{
    StatGroup g("g");
    Counter a;
    Distribution d;
    g.add("x", &a);
    EXPECT_DEATH(g.addDist("x", &d), "already a counter");
    StatGroup h("h");
    h.addDist("y", &d);
    EXPECT_DEATH(h.add("y", &a), "already a distribution");
}

TEST(Stats, FlattenOrderingIsDeterministic)
{
    // Counters alphabetical, then distributions alphabetical (four
    // lines each), then children in registration order, recursively
    // — independent of registration order within a kind.
    StatGroup root("sm0");
    Counter z, a;
    Distribution d;
    root.add("zeta", &z);
    root.add("alpha", &a);
    root.addDist("mid", &d);
    StatGroup second("second"), first("first");
    Counter s, f;
    second.add("s", &s);
    first.add("f", &f);
    root.addChild(&second);    // registration order, not name order
    root.addChild(&first);
    z += 1;
    a += 2;
    d.sample(3);
    s += 4;
    f += 5;

    std::vector<StatLine> lines;
    root.flatten(lines);
    std::vector<std::string> names;
    for (const StatLine &l : lines)
        names.push_back(l.name);
    const std::vector<std::string> expect = {
            "sm0.alpha",   "sm0.zeta",     "sm0.mid.count",
            "sm0.mid.sum", "sm0.mid.min",  "sm0.mid.max",
            "sm0.second.s", "sm0.first.f",
    };
    EXPECT_EQ(names, expect);
    EXPECT_EQ(lines[0].value, 2u);
    EXPECT_EQ(lines[1].value, 1u);

    // dump() prints exactly the flattened lines.
    std::ostringstream os;
    root.dump(os);
    std::string joined;
    for (const StatLine &l : lines)
        joined += l.name + " " + std::to_string(l.value) + "\n";
    EXPECT_EQ(os.str(), joined);
}
