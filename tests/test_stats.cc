/**
 * @file
 * Unit tests for the statistics registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace ltrf;

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupLookup)
{
    StatGroup g("sm0");
    Counter a, b;
    g.add("issued", &a);
    g.add("stalls", &b);
    a += 10;
    b += 3;
    EXPECT_EQ(g.value("issued"), 10u);
    EXPECT_EQ(g.value("stalls"), 3u);
    EXPECT_TRUE(g.has("issued"));
    EXPECT_FALSE(g.has("nonexistent"));
}

TEST(Stats, ResetAll)
{
    StatGroup g("g");
    Counter a, b;
    g.add("a", &a);
    g.add("b", &b);
    a += 4;
    b += 2;
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
    EXPECT_EQ(g.value("b"), 0u);
}

TEST(Stats, DumpFormat)
{
    StatGroup g("core");
    Counter a;
    g.add("cycles", &a);
    a += 42;
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "core.cycles 42\n");
}
