/**
 * @file
 * Tests for the Address Allocation Unit (paper Figure 8).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/alloc_unit.hh"

using namespace ltrf;

TEST(AllocUnit, StartsAllFree)
{
    AllocUnit au(16);
    EXPECT_EQ(au.freeCount(), 16);
    EXPECT_EQ(au.capacity(), 16);
    for (int i = 0; i < 16; i++)
        EXPECT_FALSE(au.isAllocated(i));
}

TEST(AllocUnit, AllocationsAreUniqueAndTracked)
{
    AllocUnit au(8);
    std::set<int> got;
    for (int i = 0; i < 8; i++) {
        int id = au.allocate();
        EXPECT_GE(id, 0);
        EXPECT_LT(id, 8);
        EXPECT_TRUE(au.isAllocated(id));
        EXPECT_TRUE(got.insert(id).second) << "duplicate id " << id;
    }
    EXPECT_EQ(au.freeCount(), 0);
}

TEST(AllocUnit, FifoRecycling)
{
    // Released entries go to the back of the unused queue (the
    // figure's two-queue structure): allocation order follows
    // release order.
    AllocUnit au(4);
    int a = au.allocate();
    int b = au.allocate();
    au.release(a);
    au.release(b);
    // Queue now: [c0, c1, a, b] where c0, c1 never allocated.
    au.allocate();
    au.allocate();
    EXPECT_EQ(au.allocate(), a);
    EXPECT_EQ(au.allocate(), b);
}

TEST(AllocUnit, ReleaseMakesReusable)
{
    AllocUnit au(2);
    int a = au.allocate();
    au.allocate();
    EXPECT_EQ(au.freeCount(), 0);
    au.release(a);
    EXPECT_EQ(au.freeCount(), 1);
    EXPECT_FALSE(au.isAllocated(a));
}

TEST(AllocUnit, ResetFreesEverything)
{
    AllocUnit au(4);
    au.allocate();
    au.allocate();
    au.reset();
    EXPECT_EQ(au.freeCount(), 4);
    std::set<int> got;
    for (int i = 0; i < 4; i++)
        got.insert(au.allocate());
    EXPECT_EQ(got.size(), 4u);
}

TEST(AllocUnitDeath, ExhaustionPanics)
{
    AllocUnit au(1);
    au.allocate();
    EXPECT_DEATH(au.allocate(), "exhausted");
}

TEST(AllocUnitDeath, DoubleReleasePanics)
{
    AllocUnit au(2);
    int a = au.allocate();
    au.release(a);
    EXPECT_DEATH(au.release(a), "double release");
}
