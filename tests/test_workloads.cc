/**
 * @file
 * Tests for the 14-workload suite: structure, register demand
 * classes, and compilability under every design.
 */

#include <gtest/gtest.h>

#include "compiler/cfg_analysis.hh"
#include "compiler/trace_gen.hh"
#include "core/compile.hh"
#include "workloads/workload.hh"

using namespace ltrf;

TEST(WorkloadSuite, FourteenWorkloadsNineSensitive)
{
    EXPECT_EQ(WorkloadSuite::all().size(), 14u);
    EXPECT_EQ(WorkloadSuite::sensitive().size(), 9u);
    EXPECT_EQ(WorkloadSuite::insensitive().size(), 5u);
}

TEST(WorkloadSuite, PaperNamedWorkloadsPresent)
{
    // btree and kmeans are explicitly named register-insensitive in
    // the paper (section 6.1).
    EXPECT_FALSE(WorkloadSuite::byName("btree").register_sensitive);
    EXPECT_FALSE(WorkloadSuite::byName("kmeans").register_sensitive);
    EXPECT_TRUE(WorkloadSuite::byName("sgemm").register_sensitive);
    EXPECT_TRUE(WorkloadSuite::byName("lavaMD").register_sensitive);
}

TEST(WorkloadSuite, FindReturnsNullForUnknownNames)
{
    EXPECT_NE(WorkloadSuite::find("bfs"), nullptr);
    EXPECT_EQ(WorkloadSuite::find("bfs"),
              &WorkloadSuite::byName("bfs"));
    EXPECT_EQ(WorkloadSuite::find("no-such-workload"), nullptr);
    // The recoverable path CLIs use for their usage errors.
    std::string names = WorkloadSuite::namesList();
    EXPECT_NE(names.find("bfs"), std::string::npos);
    EXPECT_NE(names.find("sgemm"), std::string::npos);
}

TEST(WorkloadSuiteDeathTest, ByNameListsValidNames)
{
    // The fatal path now tells the user what would have worked.
    EXPECT_EXIT(WorkloadSuite::byName("no-such-workload"),
                ::testing::ExitedWithCode(1), "valid names");
}

TEST(WorkloadSuite, RegisterDemandClasses)
{
    for (const Workload &w : WorkloadSuite::all()) {
        if (w.register_sensitive) {
            // Demands above 2048/64=32 so capacity limits occupancy.
            EXPECT_GT(w.kernel.reg_demand, 32) << w.name;
        } else {
            EXPECT_LE(w.kernel.reg_demand, 32) << w.name;
        }
    }
}

TEST(WorkloadSuite, AllKernelsValidateAndAreReducible)
{
    for (const Workload &w : WorkloadSuite::all()) {
        w.kernel.validate();
        CfgInfo info = analyzeCfg(w.kernel);
        EXPECT_TRUE(info.reducible) << w.name;
        EXPECT_FALSE(info.loops.empty()) << w.name;
    }
}

TEST(WorkloadSuite, TracesTerminateAtReasonableLength)
{
    for (const Workload &w : WorkloadSuite::all()) {
        WarpTrace t = generateTrace(w.kernel, 5);
        EXPECT_FALSE(t.truncated) << w.name;
        EXPECT_GT(t.real_instrs, 200u) << w.name;
        EXPECT_LT(t.real_instrs, 50000u) << w.name;
    }
}

TEST(WorkloadSuite, UniqueNames)
{
    std::set<std::string> names;
    for (const Workload &w : WorkloadSuite::all())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

/** Every workload compiles under every design. */
class SuiteCompileProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(SuiteCompileProperty, CompilesCleanly)
{
    auto [di, wi] = GetParam();
    const Workload &w = WorkloadSuite::all()[static_cast<size_t>(wi)];
    SimConfig cfg;
    cfg.design = static_cast<RfDesign>(di);
    CompiledWorkload cw = compileWorkload(w.kernel, cfg, 3);
    cw.kernel().validate();
    if (usesPrefetch(cfg.design) || cfg.design == RfDesign::SHRF) {
        cw.analysis.validate(cfg.regs_per_interval);
        EXPECT_GT(cw.code_size.num_prefetch_ops, 0);
    }
    if (cfg.design == RfDesign::LTRF ||
        cfg.design == RfDesign::LTRF_PLUS) {
        // The paper reports ~7%/9% code growth for register-interval
        // PREFETCHes; allow a generous band. (Strand designs place
        // one PREFETCH per strand and legitimately bloat more.)
        EXPECT_LT(cw.code_size.instrOverhead(), 0.60) << w.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
        Sweep, SuiteCompileProperty,
        ::testing::Combine(::testing::Range(0, 7),
                           ::testing::Range(0, 14)));
