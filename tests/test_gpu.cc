/**
 * @file
 * End-to-end simulator tests: occupancy model, determinism, design
 * orderings, and the paper's core latency-tolerance invariants.
 * These run a small configuration (1-2 SMs) to stay fast.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "sim/gpu.hh"
#include "workloads/workload.hh"

using namespace ltrf;

namespace
{

Kernel
computeKernel()
{
    // Compute-dominated kernel with a streaming load: sensitive to
    // RF latency, light on memory.
    KernelBuilder b("compute");
    MemStreamSpec ms;
    ms.working_set_lines = 16;
    int s = b.stream(ms);
    b.mov(0).mov(1);
    b.beginLoop(40);
    b.load(2, 0, s);
    for (int i = 0; i < 10; i++)
        b.ffma(3 + i % 6, 0, 1, 3 + i % 6);
    b.endLoop();
    b.store(3, 0, s);
    b.regDemand(64);
    return b.build();
}

SimConfig
smallConfig(RfDesign d, double mult = 1.0, int cap = 1)
{
    SimConfig cfg;
    cfg.num_sms = 1;
    cfg.design = d;
    cfg.mrf_latency_mult = mult;
    cfg.rf_capacity_mult = cap;
    return cfg;
}

} // namespace

TEST(Occupancy, LimitedByRegisterDemand)
{
    SimConfig cfg;
    KernelBuilder b("fat");
    b.mov(0);
    b.regDemand(128);
    Kernel k = b.build();
    // 2048 warp-registers / 128 regs per thread = 16 warps.
    EXPECT_EQ(Gpu::residentWarps(cfg, k), 16);
    cfg.rf_capacity_mult = 8;
    EXPECT_EQ(Gpu::residentWarps(cfg, k), 64);   // capped at 64
}

TEST(Occupancy, SmallKernelsReachFullOccupancy)
{
    SimConfig cfg;
    KernelBuilder b("thin");
    b.mov(0);
    b.regDemand(16);
    Kernel k = b.build();
    EXPECT_EQ(Gpu::residentWarps(cfg, k), cfg.max_warps_per_sm);
}

TEST(Gpu, RunsToCompletionAndCountsInstructions)
{
    Kernel k = computeKernel();
    SimResult r = simulate(smallConfig(RfDesign::BL), k, 7);
    EXPECT_GT(r.cycles, 0u);
    // Every warp executes its full trace.
    Gpu gpu(smallConfig(RfDesign::BL), k, 7);
    std::uint64_t expect = 0;
    int warps = Gpu::residentWarps(smallConfig(RfDesign::BL), k);
    for (int w = 0; w < warps; w++)
        expect += gpu.compiledWorkload().traces[w].real_instrs;
    EXPECT_EQ(r.instructions, expect);
}

TEST(Gpu, DeterministicAcrossRuns)
{
    Kernel k = computeKernel();
    SimResult a = simulate(smallConfig(RfDesign::LTRF), k, 3);
    SimResult b = simulate(smallConfig(RfDesign::LTRF), k, 3);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.main_accesses, b.main_accesses);
    EXPECT_EQ(a.prefetch_ops, b.prefetch_ops);
}

TEST(Gpu, BaselineLatencySensitivity)
{
    // BL slows down monotonically as the MRF latency multiplier
    // grows (the motivation of the whole paper).
    Kernel k = computeKernel();
    double prev = simulate(smallConfig(RfDesign::BL, 1.0), k).ipc;
    for (double m : {3.0, 6.0}) {
        double ipc = simulate(smallConfig(RfDesign::BL, m), k).ipc;
        EXPECT_LT(ipc, prev);
        prev = ipc;
    }
}

TEST(Gpu, LtrfToleratesLatencyBetterThanBl)
{
    Kernel k = computeKernel();
    double bl_1 = simulate(smallConfig(RfDesign::BL, 1.0), k).ipc;
    double bl_6 = simulate(smallConfig(RfDesign::BL, 6.0), k).ipc;
    double ltrf_1 = simulate(smallConfig(RfDesign::LTRF, 1.0), k).ipc;
    double ltrf_6 = simulate(smallConfig(RfDesign::LTRF, 6.0), k).ipc;
    // Relative degradation must be far smaller for LTRF.
    EXPECT_GT(ltrf_6 / ltrf_1, bl_6 / bl_1);
    EXPECT_GT(ltrf_6 / ltrf_1, 0.85);
}

TEST(Gpu, IdealBoundsLtrf)
{
    // Ideal has the same capacity but no latency: it upper-bounds
    // LTRF at high latency multipliers.
    Kernel k = computeKernel();
    SimConfig ltrf = smallConfig(RfDesign::LTRF, 6.0, 8);
    SimConfig ideal = smallConfig(RfDesign::IDEAL, 6.0, 8);
    EXPECT_LE(simulate(ltrf, k).ipc, simulate(ideal, k).ipc * 1.02);
}

TEST(Gpu, LtrfCutsMainRfAccesses)
{
    // Paper section 4.2: LTRF reduces main register file accesses
    // 4-6x by serving reads/writes from the cache.
    Kernel k = computeKernel();
    SimResult bl = simulate(smallConfig(RfDesign::BL), k);
    SimResult ltrf = simulate(smallConfig(RfDesign::LTRF), k);
    EXPECT_LT(ltrf.main_accesses, bl.main_accesses);
    EXPECT_GT(static_cast<double>(bl.main_accesses) /
                      static_cast<double>(ltrf.main_accesses),
              2.0);
}

TEST(Gpu, LtrfPlusMovesFewerRegistersThanLtrf)
{
    Kernel k = computeKernel();
    SimResult ltrf = simulate(smallConfig(RfDesign::LTRF), k);
    SimResult plus = simulate(smallConfig(RfDesign::LTRF_PLUS), k);
    EXPECT_LT(plus.xfer_regs, ltrf.xfer_regs);
}

TEST(Gpu, PrefetchCountMatchesIntervalEntries)
{
    Kernel k = computeKernel();
    SimResult r = simulate(smallConfig(RfDesign::LTRF), k);
    EXPECT_GT(r.prefetch_ops, 0u);
    // Strand semantics re-prefetch per loop iteration: many more.
    SimResult s = simulate(smallConfig(RfDesign::LTRF_STRAND), k);
    EXPECT_GT(s.prefetch_ops, r.prefetch_ops);
}

TEST(Gpu, MoreSmsMoreThroughput)
{
    Kernel k = computeKernel();
    SimConfig one = smallConfig(RfDesign::BL);
    SimConfig four = smallConfig(RfDesign::BL);
    four.num_sms = 4;
    SimResult r1 = simulate(one, k);
    SimResult r4 = simulate(four, k);
    EXPECT_GT(r4.ipc, r1.ipc * 2.0);
    EXPECT_EQ(r4.instructions, r1.instructions * 4);
}

TEST(Gpu, CapacityRaisesThroughputForFatKernels)
{
    // The register-sensitive premise: an 8x register file admits
    // more warps and hides memory latency better.
    KernelBuilder b("fatmem");
    MemStreamSpec ms;
    ms.working_set_lines = 32;
    int s = b.stream(ms);
    b.mov(0).mov(1);
    b.beginLoop(60);
    b.load(2, 0, s);
    for (int i = 0; i < 8; i++)
        b.ffma(3 + i, 0, 1, 3 + i);
    b.endLoop();
    b.regDemand(128);
    Kernel k = b.build();

    double base = simulate(smallConfig(RfDesign::IDEAL, 1.0, 1), k).ipc;
    double big = simulate(smallConfig(RfDesign::IDEAL, 1.0, 8), k).ipc;
    EXPECT_GT(big, base * 1.1);
}

/** Property sweep: every design completes and respects basic
 *  accounting invariants on every suite workload. */
class DesignWorkloadProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(DesignWorkloadProperty, AccountingInvariants)
{
    auto [di, wi] = GetParam();
    RfDesign d = static_cast<RfDesign>(di);
    const Workload &w = WorkloadSuite::all()[static_cast<size_t>(wi)];
    SimConfig cfg = smallConfig(d, 4.0);
    SimResult r = simulate(cfg, w.kernel, 11);

    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    if (usesPrefetch(d) || d == RfDesign::SHRF)
        EXPECT_GT(r.prefetch_ops, 0u);
    else
        EXPECT_EQ(r.prefetch_ops, 0u);
    if (!usesRegCache(d))
        EXPECT_EQ(r.cache_accesses, 0u);
    if (d == RfDesign::BL || d == RfDesign::IDEAL)
        EXPECT_GT(r.main_accesses, r.instructions);  // >1 access/instr
}

INSTANTIATE_TEST_SUITE_P(
        Sweep, DesignWorkloadProperty,
        ::testing::Combine(::testing::Range(0, 7),
                           ::testing::Values(1, 3, 8, 12)));
