/**
 * @file
 * Tests for the kernel builder DSL and kernel invariants.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"

using namespace ltrf;

TEST(KernelBuilder, StraightLine)
{
    KernelBuilder b("straight");
    b.mov(0).mov(1).iadd(2, 0, 1);
    Kernel k = b.build();
    EXPECT_EQ(k.numBlocks(), 1);
    EXPECT_EQ(k.num_regs, 3);
    // 3 emitted + implicit EXIT.
    EXPECT_EQ(k.staticInstrCount(), 4);
    EXPECT_TRUE(k.block(0).succs.empty());
    EXPECT_EQ(k.block(0).instrs.back().op, Opcode::EXIT);
}

TEST(KernelBuilder, SimpleLoopShape)
{
    KernelBuilder b("loop");
    b.mov(0);
    b.beginLoop(10);
    b.iadd(1, 0, 1);
    b.endLoop();
    b.mov(2);
    Kernel k = b.build();

    // entry -> header(latch) -> exit: 3 blocks.
    EXPECT_EQ(k.numBlocks(), 3);
    const BasicBlock &latch = k.block(1);
    ASSERT_EQ(latch.succs.size(), 2u);
    EXPECT_EQ(latch.succs[0], 1);  // back edge to itself (header==latch)
    EXPECT_EQ(latch.succs[1], 2);
    EXPECT_EQ(latch.branch.kind, BranchProfile::Kind::LOOP);
    EXPECT_EQ(latch.branch.trip_count, 10);
    EXPECT_EQ(latch.instrs.back().op, Opcode::BRA);
}

TEST(KernelBuilder, IfElseDiamond)
{
    KernelBuilder b("diamond");
    b.mov(0);
    b.beginIf(0.5, 0);
    b.mov(1);
    b.beginElse();
    b.mov(2);
    b.endIf();
    b.mov(3);
    Kernel k = b.build();

    // cond, then, else, join = 4 blocks.
    EXPECT_EQ(k.numBlocks(), 4);
    const BasicBlock &cond = k.block(0);
    ASSERT_EQ(cond.succs.size(), 2u);
    EXPECT_EQ(cond.branch.kind, BranchProfile::Kind::COND);
    BlockId then_b = cond.succs[0], else_b = cond.succs[1];
    EXPECT_NE(then_b, else_b);
    ASSERT_EQ(k.block(then_b).succs.size(), 1u);
    ASSERT_EQ(k.block(else_b).succs.size(), 1u);
    EXPECT_EQ(k.block(then_b).succs[0], k.block(else_b).succs[0]);
    // Join has two preds.
    EXPECT_EQ(k.block(k.block(then_b).succs[0]).preds.size(), 2u);
}

TEST(KernelBuilder, IfWithoutElse)
{
    KernelBuilder b("if");
    b.mov(0);
    b.beginIf(0.25, 0);
    b.mov(1);
    b.endIf();
    Kernel k = b.build();
    EXPECT_EQ(k.numBlocks(), 3);
    const BasicBlock &cond = k.block(0);
    ASSERT_EQ(cond.succs.size(), 2u);
    // Fall-through goes straight to the join.
    EXPECT_EQ(cond.succs[1], k.block(cond.succs[0]).succs[0]);
}

TEST(KernelBuilder, NestedLoopsFigure6Shape)
{
    // Paper Figure 6: A -> B <-> C, C -> A (nested natural loops).
    KernelBuilder b("nested");
    b.beginLoop(4);          // outer
    b.mov(0);                // A-ish work
    b.beginLoop(8);          // inner
    b.ffma(1, 0, 1, 1);
    b.endLoop();
    b.mov(2);
    b.endLoop();
    Kernel k = b.build();
    k.validate();
    // Two LOOP latches.
    int loop_latches = 0;
    for (const auto &bb : k.blocks)
        if (bb.branch.kind == BranchProfile::Kind::LOOP)
            loop_latches++;
    EXPECT_EQ(loop_latches, 2);
}

TEST(KernelBuilder, MemStreamsRegistered)
{
    KernelBuilder b("mem");
    MemStreamSpec spec;
    spec.stride_lines = 2;
    spec.working_set_lines = 64;
    int s = b.stream(spec);
    b.mov(0);
    b.load(1, 0, s);
    b.store(1, 0, s);
    Kernel k = b.build();
    ASSERT_EQ(k.mem_streams.size(), 1u);
    EXPECT_EQ(k.mem_streams[0].stride_lines, 2);
}

TEST(KernelBuilder, RegDemandDefaultsToNumRegs)
{
    KernelBuilder b("demand");
    b.mov(5);
    Kernel k = b.build();
    EXPECT_EQ(k.num_regs, 6);
    EXPECT_EQ(k.reg_demand, 6);

    KernelBuilder b2("demand2");
    b2.mov(5);
    b2.regDemand(128);
    Kernel k2 = b2.build();
    EXPECT_EQ(k2.reg_demand, 128);
}

TEST(KernelBuilder, ValidateAcceptsComplexKernel)
{
    KernelBuilder b("complex");
    b.mov(0).mov(1);
    b.beginLoop(5, 2);
    b.load(2, 0, 0);
    b.beginIf(0.3, 2);
    b.sfu(3, 2);
    b.beginElse();
    b.fmul(3, 2, 2);
    b.endIf();
    b.beginLoop(3);
    b.ffma(4, 3, 3, 4);
    b.endLoop();
    b.store(4, 1, 0);
    b.endLoop();
    Kernel k = b.build();  // build() validates
    EXPECT_GT(k.numBlocks(), 5);
    EXPECT_EQ(k.num_regs, 5);
}
