/**
 * @file
 * Tests for the adaptive DSE strategies: the evolutionary (EVOLVE)
 * and successive-halving (HALVING) searches are byte-deterministic
 * across --jobs values and reruns, halving's multi-fidelity
 * promotion reuses screened cells and (when screening at full
 * fidelity) lands inside the full grid's frontier, per-generation
 * hypervolume is recorded, and the hill-climb's per-restart RNG
 * streams are pinned by a regression sequence.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dse/explorer.hh"
#include "dse/space.hh"

using namespace ltrf;
using namespace ltrf::dse;

namespace
{

/** A 4-point space that evaluates in ~a second. */
DesignSpace
microSpace()
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM};
    s.banks = {1, 8};
    s.bank_sizes = {1};
    s.networks = {};    // auto
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};
    return s;
}

/** Six points: three technologies at 1x and 8x banks. */
DesignSpace
smallSpace()
{
    DesignSpace s = microSpace();
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM,
               CellTech::DWM};
    return s;
}

ExploreOptions
microOptions()
{
    ExploreOptions opt;
    opt.workloads = {"bfs", "btree"};
    opt.num_sms = 1;
    opt.seed = 2018;
    return opt;
}

std::vector<std::string>
evaluatedKeys(const DseResult &res)
{
    std::vector<std::string> keys;
    for (const PointResult &pr : res.evaluated)
        keys.push_back(pr.point.key());
    return keys;
}

std::set<std::string>
frontierKeys(const DseResult &res)
{
    std::set<std::string> keys;
    for (int idx : res.frontier)
        keys.insert(res.evaluated[static_cast<std::size_t>(idx)]
                            .point.key());
    return keys;
}

} // namespace

// ----- Determinism -----

TEST(EvolveStrategy, ByteDeterministicAcrossJobsAndReruns)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.population = 4;
    opt.generations = 2;

    opt.jobs = 1;
    const DseResult j1 = explore(smallSpace(), opt);
    opt.jobs = 2;
    const DseResult j2 = explore(smallSpace(), opt);
    opt.jobs = 4;
    const DseResult j4 = explore(smallSpace(), opt);
    opt.jobs = 1;
    const DseResult rerun = explore(smallSpace(), opt);

    const std::string ref = j1.toJson().dump(2);
    EXPECT_EQ(ref, j2.toJson().dump(2));
    EXPECT_EQ(ref, j4.toJson().dump(2));
    EXPECT_EQ(ref, rerun.toJson().dump(2));
    EXPECT_EQ(j1.toCsv(), j2.toCsv());
    EXPECT_EQ(j1.toCsv(), j4.toCsv());
    EXPECT_FALSE(j1.frontier.empty());
}

TEST(HalvingStrategy, ByteDeterministicAcrossJobsAndReruns)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::HALVING;
    opt.population = 4;
    opt.generations = 2;
    opt.screen_workloads = {"bfs"};

    opt.jobs = 1;
    const DseResult j1 = explore(smallSpace(), opt);
    opt.jobs = 2;
    const DseResult j2 = explore(smallSpace(), opt);
    opt.jobs = 4;
    const DseResult j4 = explore(smallSpace(), opt);
    opt.jobs = 1;
    const DseResult rerun = explore(smallSpace(), opt);

    const std::string ref = j1.toJson().dump(2);
    EXPECT_EQ(ref, j2.toJson().dump(2));
    EXPECT_EQ(ref, j4.toJson().dump(2));
    EXPECT_EQ(ref, rerun.toJson().dump(2));
    EXPECT_EQ(j1.toCsv(), j2.toCsv());
    EXPECT_FALSE(j1.frontier.empty());
    EXPECT_GT(j1.screened, 0u);
}

// ----- Evolutionary search -----

TEST(EvolveStrategy, RespectsPopulationGenerationsAndBudget)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.population = 2;
    opt.generations = 1;
    const DseResult res = explore(microSpace(), opt);
    // Initial population of 2 plus at most 2 offspring.
    EXPECT_LE(res.evaluated.size(), 4u);
    EXPECT_GE(res.evaluated.size(), 2u);
    // One progress entry per generation, plus generation 0.
    ASSERT_EQ(res.progress.size(), 2u);
    EXPECT_EQ(res.progress[0].gen, 0);
    EXPECT_EQ(res.progress[1].gen, 1);

    // A budget caps everything, including the initial population.
    opt.population = 4;
    opt.generations = 8;
    opt.budget = 3;
    const DseResult capped = explore(microSpace(), opt);
    EXPECT_LE(capped.evaluated.size(), 3u);
}

TEST(EvolveStrategy, HypervolumeIsMonotoneAcrossGenerations)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.population = 4;
    opt.generations = 3;
    const DseResult res = explore(smallSpace(), opt);
    ASSERT_GE(res.progress.size(), 2u);
    for (std::size_t k = 1; k < res.progress.size(); k++)
        EXPECT_GE(res.progress[k].hypervolume + 1e-9,
                  res.progress[k - 1].hypervolume);
    EXPECT_EQ(res.hv, res.progress.back().hypervolume);
    EXPECT_GT(res.hv, 0.0);
}

TEST(EvolveStrategy, OffspringAreDistinctFromEverythingSeen)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.population = 4;
    opt.generations = 4;
    const DseResult res = explore(smallSpace(), opt);
    std::set<std::string> keys;
    for (const std::string &k : evaluatedKeys(res))
        EXPECT_TRUE(keys.insert(k).second) << "duplicate " << k;
    // The 6-point space bounds a converged search.
    EXPECT_LE(res.evaluated.size(), 6u);
}

// ----- Successive halving -----

TEST(HalvingStrategy, FullFidelityScreeningFrontierIsSubsetOfGrid)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    const DseResult grid = explore(microSpace(), opt);

    // Screening on the full suite: promotion keeps whole
    // non-domination fronts, so every frontier survivor is globally
    // Pareto-optimal and must appear in the exhaustive grid's
    // frontier.
    opt.strategy = Strategy::HALVING;
    opt.population = 4;    // the whole space in one pool
    opt.generations = 1;
    opt.screen_workloads = {"bfs", "btree"};
    const DseResult halving = explore(microSpace(), opt);

    const std::set<std::string> gridFront = frontierKeys(grid);
    ASSERT_FALSE(halving.frontier.empty());
    for (const std::string &k : frontierKeys(halving))
        EXPECT_TRUE(gridFront.count(k))
                << k << " not on the grid frontier";

    // Full-fidelity objectives agree bit-exactly with the grid's.
    for (int idx : halving.frontier) {
        const PointResult &h =
                halving.evaluated[static_cast<std::size_t>(idx)];
        for (const PointResult &g : grid.evaluated)
            if (g.point == h.point) {
                EXPECT_EQ(g.obj.ipc, h.obj.ipc);
                EXPECT_EQ(g.obj.energy, h.obj.energy);
                EXPECT_EQ(g.obj.area, h.obj.area);
            }
    }
}

TEST(HalvingStrategy, PromotionsNeverResimulateScreenedCells)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::HALVING;
    opt.population = 4;
    opt.generations = 1;
    opt.screen_workloads = {"bfs"};
    const DseResult res = explore(microSpace(), opt);

    // One pool of 4 screened on 1 workload, top 2 promoted to the
    // 2-workload suite: 2 baseline cells + 4 screening cells + 2
    // promotion cells (the promoted points' bfs rows come from the
    // cache).
    EXPECT_EQ(res.screened, 4u);
    EXPECT_EQ(res.evaluated.size(), 2u);
    EXPECT_EQ(res.sim_cells, 2u + 4u + 2u);
    EXPECT_EQ(res.sim_reuse, 2u);
    // Only full-fidelity points reach the report/frontier.
    for (const PointResult &pr : res.evaluated)
        EXPECT_EQ(pr.gen, 1);
}

TEST(HalvingStrategy, ScreenSubsetDefaultsAndValidation)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::HALVING;
    opt.population = 4;
    opt.generations = 1;
    // Default: the first screen_count workloads of the active suite.
    const DseResult res = explore(microSpace(), opt);
    EXPECT_EQ(res.screen_workloads,
              (std::vector<std::string>{"bfs", "btree"}));

    opt.screen_count = 1;
    const DseResult one = explore(microSpace(), opt);
    EXPECT_EQ(one.screen_workloads,
              (std::vector<std::string>{"bfs"}));
}

TEST(HalvingStrategy, PromoteFracSetsThePromotionCut)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::HALVING;
    opt.population = 4;
    opt.generations = 1;
    opt.screen_workloads = {"bfs"};

    // Default 0.5: the classic top half (2 of 4).
    const DseResult half = explore(microSpace(), opt);
    EXPECT_EQ(half.evaluated.size(), 2u);
    EXPECT_EQ(half.promote_frac, 0.5);

    // 0.25: ceil(1.0) = 1 survivor per round.
    opt.promote_frac = 0.25;
    const DseResult quarter = explore(microSpace(), opt);
    EXPECT_EQ(quarter.evaluated.size(), 1u);

    // 0.75: ceil(3.0) = 3 survivors.
    opt.promote_frac = 0.75;
    const DseResult three = explore(microSpace(), opt);
    EXPECT_EQ(three.evaluated.size(), 3u);
}

// ----- Multi-rung schedules -----

namespace
{

/** Four workloads so a 1 -> 2 -> all cascade has room to grow. */
ExploreOptions
rungOptions()
{
    ExploreOptions opt;
    opt.workloads = {"bfs", "btree", "backprop", "hotspot"};
    opt.num_sms = 1;
    opt.seed = 2018;
    opt.strategy = Strategy::HALVING;
    opt.population = 6;
    opt.generations = 1;
    opt.rungs = {1, 2, 0};    // 0 = all
    return opt;
}

} // namespace

TEST(HalvingStrategy, RungScheduleCascadesWithPerRungCounters)
{
    const DseResult res = explore(smallSpace(), rungOptions());

    // The whole 6-point space lands in one pool; promote_frac 0.5
    // cuts 6 -> 3 -> 2 through the 1 / 2 / 4-workload rungs.
    EXPECT_EQ(res.rungs, (std::vector<int>{1, 2, 4}));
    EXPECT_EQ(res.rung_screened,
              (std::vector<std::uint64_t>{6, 3, 2}));
    EXPECT_EQ(res.rung_promoted,
              (std::vector<std::uint64_t>{3, 2, 0}));
    // Legacy counter: every sub-full-fidelity evaluation.
    EXPECT_EQ(res.screened, 6u + 3u);
    EXPECT_EQ(res.evaluated.size(), 2u);
    for (const PointResult &pr : res.evaluated)
        EXPECT_EQ(pr.gen, 1);

    // Cell accounting: 4 baselines + 6x1 at rung 0 + 3 new at rung
    // 1 (the bfs cells are reused) + 4 new at the full rung (both
    // survivors' bfs and btree cells are reused).
    EXPECT_EQ(res.sim_cells, 4u + 6u + 3u + 4u);
    EXPECT_EQ(res.sim_reuse, 3u + 4u);

    // Rung 0's subset is echoed as the screening workloads.
    EXPECT_EQ(res.screen_workloads,
              (std::vector<std::string>{"bfs"}));
}

TEST(HalvingStrategy, RungScheduleByteDeterministicAcrossJobs)
{
    ExploreOptions opt = rungOptions();
    opt.generations = 2;

    opt.jobs = 1;
    const DseResult j1 = explore(smallSpace(), opt);
    opt.jobs = 2;
    const DseResult j2 = explore(smallSpace(), opt);
    opt.jobs = 4;
    const DseResult j4 = explore(smallSpace(), opt);

    const std::string ref = j1.toJson().dump(2);
    EXPECT_EQ(ref, j2.toJson().dump(2));
    EXPECT_EQ(ref, j4.toJson().dump(2));
    EXPECT_EQ(j1.toCsv(), j2.toCsv());
    EXPECT_EQ(j1.toCsv(), j4.toCsv());
    EXPECT_FALSE(j1.frontier.empty());
}

TEST(HalvingStrategy, DefaultScheduleIsTheLegacyTwoRungs)
{
    ExploreOptions opt = rungOptions();
    opt.rungs.clear();    // default: [screen_count, all]
    const DseResult res = explore(smallSpace(), opt);
    EXPECT_EQ(res.rungs, (std::vector<int>{2, 4}));
    ASSERT_EQ(res.rung_screened.size(), 2u);
    ASSERT_EQ(res.rung_promoted.size(), 2u);
    EXPECT_EQ(res.rung_screened[0], res.screened);
    EXPECT_EQ(res.rung_promoted[0], res.rung_screened[1]);
    EXPECT_EQ(res.rung_promoted[1], 0u);
    EXPECT_EQ(res.rung_screened[1], res.evaluated.size());
}

TEST(HalvingStrategy, RungReportRoundTripsThroughResume)
{
    const DseResult saved = explore(smallSpace(), rungOptions());

    ExploreOptions replay = rungOptions();
    replay.generations = 0;
    replay.resume = parseDseReport(saved.toJson());
    const DseResult res = explore(smallSpace(), replay);
    EXPECT_EQ(res.sim_cells, 0u);
    EXPECT_EQ(res.resumed, saved.evaluated.size());
    ASSERT_EQ(res.frontier.size(), saved.frontier.size());
    for (std::size_t i = 0; i < res.frontier.size(); i++) {
        const PointResult &a = saved.evaluated[static_cast<
                std::size_t>(saved.frontier[i])];
        const PointResult &b = res.evaluated[static_cast<
                std::size_t>(res.frontier[i])];
        EXPECT_EQ(a.point, b.point);
        EXPECT_EQ(a.obj.ipc, b.obj.ipc);
    }
}

TEST(HalvingStrategyDeathTest, RejectsNonIncreasingRungs)
{
    ExploreOptions opt = rungOptions();
    opt.rungs = {2, 2, 0};
    EXPECT_EXIT(explore(smallSpace(), opt),
                testing::ExitedWithCode(1), "strictly increasing");
}

TEST(HalvingStrategyDeathTest, RejectsRungBeyondTheSuite)
{
    ExploreOptions opt = rungOptions();
    opt.rungs = {8, 0};
    EXPECT_EXIT(explore(smallSpace(), opt),
                testing::ExitedWithCode(1),
                "the active suite has 4");
}

TEST(HalvingStrategyDeathTest, RejectsScheduleNotEndingAtFullSuite)
{
    ExploreOptions opt = rungOptions();
    opt.rungs = {1, 2};
    EXPECT_EXIT(explore(smallSpace(), opt),
                testing::ExitedWithCode(1),
                "last rung must be the full suite");
}

TEST(HalvingStrategyDeathTest, RejectsRungsWithExplicitScreenNames)
{
    ExploreOptions opt = rungOptions();
    opt.screen_workloads = {"bfs"};
    EXPECT_EXIT(explore(smallSpace(), opt),
                testing::ExitedWithCode(1), "mutually exclusive");
}

TEST(HalvingStrategyDeathTest, RejectsRungsForOtherStrategies)
{
    ExploreOptions opt = rungOptions();
    opt.strategy = Strategy::RANDOM;
    opt.budget = 4;
    EXPECT_EXIT(explore(smallSpace(), opt),
                testing::ExitedWithCode(1),
                "only applies to the halving strategy");
}

TEST(HalvingStrategyDeathTest, RejectsPromoteFracOutsideUnitInterval)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::HALVING;
    opt.population = 4;
    opt.generations = 1;
    opt.promote_frac = 1.0;
    EXPECT_EXIT(explore(microSpace(), opt),
                testing::ExitedWithCode(1), "promote-frac");
}

TEST(HalvingStrategyDeathTest, RejectsScreenWorkloadOutsideSuite)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::HALVING;
    opt.population = 4;
    opt.generations = 1;
    opt.screen_workloads = {"pagerank"};
    EXPECT_EXIT(explore(microSpace(), opt),
                testing::ExitedWithCode(1),
                "not in the active suite");
}

// ----- Hill-climb restart streams (regression) -----

/**
 * Restarts draw from per-restart streams mixSeeds(seed, STREAM + k)
 * instead of one shared generator, so restart K's samples cannot
 * drift with how many draws earlier phases consumed. This pins the
 * full evaluation sequence of a search that needs a restart (the
 * c32 column is unreachable by expansion before the frontier is
 * exhausted); a regression to a shared generator changes the
 * restart sample and breaks the sequence.
 */
TEST(HillClimbStrategy, RestartSequenceIsPinned)
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM};
    s.banks = {1};
    s.bank_sizes = {1};
    s.networks = {};
    s.cache_kbs = {8, 16, 32};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {4, 8, 16};

    ExploreOptions opt;
    opt.workloads = {"bfs"};
    opt.num_sms = 1;
    opt.seed = 5;
    opt.strategy = Strategy::HILL_CLIMB;
    opt.budget = 9;

    const DseResult res = explore(s, opt);
    EXPECT_EQ(res.restarts, 1u);
    // Keys carry every registry axis; the interval segment is the
    // derived per-warp cache partition (auto interval axis).
    const std::vector<std::string> expected = {
            "hp/b1/z1/xbar/c8/interval/w4/i16/o8/d1",
            "hp/b1/z1/xbar/c16/interval/w4/i32/o8/d1",
            "hp/b1/z1/xbar/c8/interval/w8/i8/o8/d1",
            "hp/b1/z1/xbar/c16/interval/w8/i16/o8/d1",
            "hp/b1/z1/xbar/c8/interval/w16/i4/o8/d1",
            "hp/b1/z1/xbar/c16/interval/w16/i8/o8/d1",
            "hp/b1/z1/xbar/c32/interval/w16/i16/o8/d1",
            "hp/b1/z1/xbar/c32/interval/w8/i32/o8/d1",
            "hp/b1/z1/xbar/c32/interval/w4/i64/o8/d1",
    };
    EXPECT_EQ(evaluatedKeys(res), expected);
}

TEST(HillClimbStrategy, RestartsAreIndependentOfBudgetTruncation)
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM};
    s.banks = {1};
    s.bank_sizes = {1};
    s.networks = {};
    s.cache_kbs = {8, 16, 32};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {4, 8, 16};

    ExploreOptions opt;
    opt.workloads = {"bfs"};
    opt.num_sms = 1;
    opt.seed = 5;
    opt.strategy = Strategy::HILL_CLIMB;

    opt.budget = 7;
    const DseResult small = explore(s, opt);
    opt.budget = 9;
    const DseResult full = explore(s, opt);
    // The shorter run's evaluation sequence is a prefix of the
    // longer one's: the budget only truncates, it never perturbs.
    const std::vector<std::string> a = evaluatedKeys(small);
    const std::vector<std::string> b = evaluatedKeys(full);
    ASSERT_LE(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i], b[i]);
}

TEST(HillClimbStrategy, ResumedOutOfSpaceMembersAreNotExpanded)
{
    // Save a frontier over three technologies, then resume it into
    // a space restricted to HP: the tfet/dwm frontier members still
    // seed the frontier, but expanding them would simulate points
    // outside the restricted space (neighbors() steps the banks
    // axis while keeping the out-of-space tech).
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    const DseResult saved = explore(smallSpace(), opt);

    DesignSpace restricted = smallSpace();
    restricted.techs = {CellTech::HP_SRAM};

    ExploreOptions resume_opt = microOptions();
    resume_opt.strategy = Strategy::HILL_CLIMB;
    resume_opt.budget = 4;
    resume_opt.resume = parseDseReport(saved.toJson());
    const DseResult res = explore(restricted, resume_opt);

    for (const PointResult &pr : res.evaluated) {
        if (!pr.resumed) {
            EXPECT_TRUE(restricted.contains(pr.point))
                    << pr.point.key() << " is outside the "
                    << "restricted space";
        }
    }
}

// ----- Report plumbing shared by the new strategies -----

TEST(DseReport, SingleProgressEntryForNonGenerationalStrategies)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    const DseResult res = explore(microSpace(), opt);
    ASSERT_EQ(res.progress.size(), 1u);
    EXPECT_EQ(res.progress[0].gen, 0);
    EXPECT_EQ(res.progress[0].evaluated, res.evaluated.size());
    EXPECT_EQ(res.progress[0].frontier_size, res.frontier.size());
    EXPECT_EQ(res.hv, res.progress[0].hypervolume);
    EXPECT_GT(res.hv, 0.0);
}

TEST(DseReport, CsvCarriesThePerGenerationTable)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.population = 2;
    opt.generations = 1;
    const DseResult res = explore(microSpace(), opt);
    const std::string csv = res.toCsv();
    const std::size_t hdr =
            csv.find("gen,evaluated,frontier_size,hypervolume\n");
    ASSERT_NE(hdr, std::string::npos);
    // One row per progress entry after the header (every row ends
    // in a newline, so count newlines past the header's).
    std::size_t rows = 0;
    for (std::size_t at = csv.find('\n', hdr);
         (at = csv.find('\n', at + 1)) != std::string::npos;)
        rows++;
    EXPECT_EQ(rows, res.progress.size());
}
