/**
 * @file
 * Tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace ltrf;

TEST(Cache, ColdMissThenHit)
{
    Cache c("c", 16 * 1024, 4, 128);  // 128 lines, 32 sets
    EXPECT_FALSE(c.access(7, false).hit);
    EXPECT_TRUE(c.access(7, false).hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c("c", 4 * 128, 4, 128);  // one set, 4 ways
    for (std::uint64_t l = 0; l < 4; l++)
        c.access(l, false);
    c.access(0, false);             // refresh line 0
    c.access(100, false);           // evicts LRU = line 1
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(1));
    EXPECT_TRUE(c.probe(2));
    EXPECT_TRUE(c.probe(3));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache c("c", 2 * 128, 2, 128);  // one set, 2 ways
    c.access(10, true);             // dirty
    c.access(20, false);
    CacheResult r = c.access(30, false);  // evicts line 10
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_line, 10u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanVictimNoWriteback)
{
    Cache c("c", 2 * 128, 2, 128);
    c.access(10, false);
    c.access(20, false);
    CacheResult r = c.access(30, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitSetsDirty)
{
    Cache c("c", 2 * 128, 2, 128);
    c.access(10, false);
    c.access(10, true);             // now dirty
    c.access(20, false);
    CacheResult r = c.access(30, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c("c", 4 * 128, 4, 128);
    c.access(1, false);
    std::uint64_t h = c.hits(), m = c.misses();
    EXPECT_TRUE(c.probe(1));
    EXPECT_FALSE(c.probe(2));
    EXPECT_EQ(c.hits(), h);
    EXPECT_EQ(c.misses(), m);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c("c", 16 * 1024, 4, 128);
    for (std::uint64_t l = 0; l < 50; l++)
        c.access(l, false);
    c.flush();
    for (std::uint64_t l = 0; l < 50; l++)
        EXPECT_FALSE(c.probe(l));
}

TEST(Cache, SetsAreIndependent)
{
    Cache c("c", 8 * 128, 2, 128);  // 4 sets x 2 ways
    // Fill set 0 (lines 0, 4, 8 map to set 0 with 4 sets).
    c.access(0, false);
    c.access(4, false);
    c.access(8, false);             // evicts 0
    EXPECT_FALSE(c.probe(0));
    // Set 1 untouched.
    c.access(1, false);
    EXPECT_TRUE(c.probe(1));
}

TEST(Cache, HitRateOnWrappingStream)
{
    // A stream that wraps within capacity converges to all hits.
    Cache c("c", 64 * 128, 4, 128);
    for (int pass = 0; pass < 8; pass++)
        for (std::uint64_t l = 0; l < 32; l++)
            c.access(l, false);
    // 32 cold misses, the rest hits.
    EXPECT_EQ(c.misses(), 32u);
    EXPECT_EQ(c.hits(), 7u * 32u);
    EXPECT_NEAR(c.hitRate(), 7.0 / 8.0, 1e-9);
}
