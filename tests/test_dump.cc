/**
 * @file
 * Tests for the kernel/CFG dump utilities.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/dump.hh"
#include "compiler/liveness.hh"
#include "compiler/register_interval.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

namespace
{

Kernel
sampleKernel()
{
    KernelBuilder b("dumpme");
    b.mov(0);
    b.beginLoop(5, 1);
    b.load(1, 0, 0);
    b.ffma(2, 1, 0, 2);
    b.endLoop();
    b.store(2, 0, 0);
    return b.build();
}

} // namespace

TEST(Dump, ListingContainsAllBlocksAndInstructions)
{
    Kernel k = sampleKernel();
    std::string text = kernelToString(k);
    EXPECT_NE(text.find(".kernel dumpme"), std::string::npos);
    for (const auto &bb : k.blocks) {
        EXPECT_NE(text.find("B" + std::to_string(bb.id) + ":"),
                  std::string::npos);
    }
    EXPECT_NE(text.find("FFMA"), std::string::npos);
    EXPECT_NE(text.find("LD.G"), std::string::npos);
    EXPECT_NE(text.find("EXIT"), std::string::npos);
    // Branch profile annotated on the latch.
    EXPECT_NE(text.find("loop latch, trip 5 +-1"), std::string::npos);
}

TEST(Dump, ListingShowsDeadOperandMarks)
{
    KernelBuilder b("dead");
    b.mov(0);
    b.mov(1, 0);   // last use of r0
    Kernel k = b.build();
    annotateDeadOperands(k);
    std::string text = kernelToString(k);
    EXPECT_NE(text.find("r0!"), std::string::npos);
}

TEST(Dump, DotIsWellFormed)
{
    Kernel k = sampleKernel();
    std::ostringstream os;
    dumpCfgDot(os, k);
    std::string dot = os.str();
    EXPECT_EQ(dot.find("digraph"), 0u);
    EXPECT_NE(dot.find("B0"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
    EXPECT_NE(dot.find("}"), std::string::npos);
    // Two-successor edges carry taken/fall labels.
    EXPECT_NE(dot.find("taken"), std::string::npos);
    EXPECT_NE(dot.find("fall"), std::string::npos);
}

TEST(Dump, DotClustersByInterval)
{
    Kernel k = sampleKernel();
    FormationOptions opt;
    opt.max_regs = 16;
    IntervalAnalysis ia = formRegisterIntervals(k, opt);
    std::ostringstream os;
    dumpCfgDot(os, ia.kernel, &ia);
    std::string dot = os.str();
    for (const auto &iv : ia.intervals) {
        EXPECT_NE(dot.find("cluster_" + std::to_string(iv.id)),
                  std::string::npos);
    }
    EXPECT_NE(dot.find("ws="), std::string::npos);
    EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}
