/**
 * @file
 * Determinism and distribution sanity tests for the RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace ltrf;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    EXPECT_NE(r.next(), r.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; i++) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolProbabilityRoughlyCorrect)
{
    Rng r(11);
    int heads = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        if (r.nextBool(0.3))
            heads++;
    double frac = static_cast<double>(heads) / n;
    EXPECT_NEAR(frac, 0.3, 0.02);
}

TEST(Rng, MixSeedsSpreads)
{
    // Derived per-warp seeds must differ for neighbouring warps.
    auto s0 = mixSeeds(42, 0);
    auto s1 = mixSeeds(42, 1);
    auto s2 = mixSeeds(43, 0);
    EXPECT_NE(s0, s1);
    EXPECT_NE(s0, s2);
    EXPECT_NE(s1, s2);
}
