/**
 * @file
 * Cross-module property tests over the whole workload suite: the
 * invariants that tie the compiler, the register file designs, and
 * the simulator together. Each property is checked on every suite
 * kernel (and several seeds) rather than on hand-picked examples.
 */

#include <gtest/gtest.h>

#include <map>

#include "compiler/liveness.hh"
#include "compiler/prefetch_insert.hh"
#include "compiler/trace_gen.hh"
#include "core/compile.hh"
#include "sim/gpu.hh"
#include "workloads/workload.hh"

using namespace ltrf;

namespace
{

const Workload &
workload(int wi)
{
    return WorkloadSuite::all()[static_cast<size_t>(wi)];
}

} // namespace

class SuiteProperty : public ::testing::TestWithParam<int>
{};

TEST_P(SuiteProperty, TraceCoversEveryReachableBlock)
{
    // With enough warps (different branch seeds), every block of the
    // CFG is exercised — no dead weight in the synthetic kernels.
    const Kernel &k = workload(GetParam()).kernel;
    std::vector<char> seen(k.blocks.size(), 0);
    for (std::uint64_t s = 0; s < 16; s++) {
        WarpTrace t = generateTrace(k, s);
        for (const TraceRef &r : t.refs)
            seen[r.bb] = 1;
    }
    for (const auto &bb : k.blocks) {
        // Empty fall-through stubs (loop exits) produce no trace
        // references even though control passes through them.
        if (bb.instrs.empty())
            continue;
        EXPECT_TRUE(seen[bb.id]) << "block " << bb.id << " never runs";
    }
}

TEST_P(SuiteProperty, EveryDynamicAccessInsideItsIntervalWorkingSet)
{
    // The LTRF contract, checked dynamically: walking any trace, the
    // registers an instruction touches are covered by the working
    // set of the interval its block belongs to.
    FormationOptions opt;
    opt.max_regs = 16;
    IntervalAnalysis ia =
            formRegisterIntervals(workload(GetParam()).kernel, opt);
    WarpTrace t = generateTrace(ia.kernel, 3);
    for (const TraceRef &r : t.refs) {
        const Instruction &in = ia.kernel.block(r.bb).instrs[r.idx];
        if (in.op == Opcode::PREFETCH)
            continue;
        const RegisterInterval &iv = ia.intervalOf(r.bb);
        RegBitVec used;
        in.collectRegs(used);
        EXPECT_TRUE(iv.working_set.contains(used))
                << "block " << r.bb << " instr " << in.toString();
    }
}

TEST_P(SuiteProperty, DynamicPrefetchSegmentsRespectWorkingSetBound)
{
    // Between two PREFETCH events a warp may touch at most N distinct
    // registers (otherwise the cache partition would overflow).
    FormationOptions opt;
    opt.max_regs = 16;
    IntervalAnalysis ia =
            formRegisterIntervals(workload(GetParam()).kernel, opt);
    insertPrefetchOps(ia);
    WarpTrace t = generateTrace(ia.kernel, 5);

    RegBitVec live;
    IntervalId cur = UNKNOWN_INTERVAL;
    for (const TraceRef &r : t.refs) {
        IntervalId itv = ia.block_interval[r.bb];
        if (itv != cur) {
            live.reset();
            cur = itv;
        }
        const Instruction &in = ia.kernel.block(r.bb).instrs[r.idx];
        if (in.op == Opcode::PREFETCH)
            continue;
        in.collectRegs(live);
        EXPECT_LE(live.count(), opt.max_regs);
    }
}

TEST_P(SuiteProperty, DeadOperandBitsAreConservative)
{
    // A register marked dead must not be read again before being
    // redefined, on any dynamic path (checked on 8 traces).
    Kernel k = workload(GetParam()).kernel;
    annotateDeadOperands(k);
    for (std::uint64_t seed = 0; seed < 8; seed++) {
        WarpTrace t = generateTrace(k, seed);
        std::map<RegId, bool> dead;
        for (const TraceRef &r : t.refs) {
            const Instruction &in = k.block(r.bb).instrs[r.idx];
            if (in.op == Opcode::PREFETCH)
                continue;
            for (int i = 0; i < 3; i++) {
                RegId s = in.srcs[i];
                if (s == INVALID_REG)
                    continue;
                auto it = dead.find(s);
                EXPECT_FALSE(it != dead.end() && it->second)
                        << "r" << s << " read after dead bit (seed "
                        << seed << ")";
            }
            // Order matters: reads happen before the write.
            for (int i = 0; i < 3; i++)
                if (in.srcs[i] != INVALID_REG && in.src_dead[i])
                    dead[in.srcs[i]] = true;
            if (in.dst != INVALID_REG)
                dead[in.dst] = false;
        }
    }
}

TEST_P(SuiteProperty, LivenessUpperBoundsIntervalWorkingSets)
{
    // maxLiveRegs bounds how many values are simultaneously alive;
    // interval working sets may exceed it (they count all names
    // touched), but both must respect the architectural cap.
    const Kernel &k = workload(GetParam()).kernel;
    int ml = maxLiveRegs(k);
    EXPECT_GE(ml, 2);
    EXPECT_LE(ml, k.num_regs);
}

TEST_P(SuiteProperty, StrandsRefineIntervalBehaviour)
{
    // Strand formation can only produce more (or equally many)
    // regions than interval formation, never fewer; and both cover
    // the same instruction count.
    const Kernel &k = workload(GetParam()).kernel;
    FormationOptions opt;
    opt.max_regs = 16;
    IntervalAnalysis ivs = formRegisterIntervals(k, opt);
    IntervalAnalysis strands = formStrands(k, 16);
    EXPECT_GE(strands.intervals.size(), ivs.intervals.size());
    EXPECT_EQ(ivs.kernel.staticInstrCount(),
              strands.kernel.staticInstrCount());
}

TEST_P(SuiteProperty, SimulationConservesInstructionCount)
{
    // Whatever the design, the simulator executes exactly the traced
    // instructions — no drops, no duplicates.
    const Workload &w = workload(GetParam());
    for (RfDesign d : {RfDesign::BL, RfDesign::LTRF}) {
        SimConfig cfg;
        cfg.num_sms = 1;
        cfg.design = d;
        Gpu gpu(cfg, w.kernel, 7);
        SimResult r = gpu.run();
        std::uint64_t expect = 0;
        int warps = Gpu::residentWarps(cfg, w.kernel);
        for (int wi = 0; wi < warps; wi++)
            expect += gpu.compiledWorkload().traces[wi].real_instrs;
        EXPECT_EQ(r.instructions, expect) << rfDesignName(d);
    }
}

TEST_P(SuiteProperty, LtrfPlusNeverMovesMoreThanLtrf)
{
    // The liveness filter only ever removes transfers.
    const Workload &w = workload(GetParam());
    SimConfig cfg;
    cfg.num_sms = 1;
    cfg.design = RfDesign::LTRF;
    SimResult ltrf = simulate(cfg, w.kernel, 9);
    cfg.design = RfDesign::LTRF_PLUS;
    SimResult plus = simulate(cfg, w.kernel, 9);
    EXPECT_LE(plus.xfer_regs, ltrf.xfer_regs) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SuiteProperty,
                         ::testing::Range(0, 14));
