/**
 * @file
 * Tests for the banked register file timing models (MainRegFile and
 * RegCache).
 */

#include <gtest/gtest.h>

#include "core/main_regfile.hh"
#include "core/reg_cache.hh"

using namespace ltrf;

TEST(MainRegFile, LatencyAndPipelining)
{
    MainRegFile mrf(16, 10);
    // First access to a bank returns after the latency.
    EXPECT_EQ(mrf.access(0, 0, 100), 110u);
    // A different bank is independent.
    EXPECT_EQ(mrf.access(0, 1, 100), 110u);
    // Same bank next cycle: pipelined, one new access per cycle.
    EXPECT_EQ(mrf.access(0, 16, 101), 111u);
    EXPECT_EQ(mrf.accesses(), 3u);
}

TEST(MainRegFile, SameCycleBankConflictSerializes)
{
    MainRegFile mrf(16, 4);
    Cycle a = mrf.access(0, 0, 50);
    Cycle b = mrf.access(0, 16, 50);  // same bank (0+16)%16 == 0
    EXPECT_EQ(a, 54u);
    EXPECT_EQ(b, 55u);               // started one cycle later
    EXPECT_GT(mrf.conflictCycles(), 0u);
}

TEST(MainRegFile, BankInterleavingByWarpAndReg)
{
    MainRegFile mrf(16, 2);
    // Consecutive registers of one warp land in consecutive banks.
    for (int r = 0; r < 16; r++)
        EXPECT_EQ(mrf.bankOf(0, static_cast<RegId>(r)), r);
    // Different warps shift the mapping.
    EXPECT_EQ(mrf.bankOf(1, 0), 1);
    EXPECT_EQ(mrf.bankOf(5, 11), 0);
}

TEST(MainRegFile, RecordWriteCountsWithoutBlocking)
{
    MainRegFile mrf(16, 8);
    mrf.recordWrite(0, 0);
    EXPECT_EQ(mrf.accesses(), 1u);
    // The write did not occupy the bank: a read at cycle 0 is
    // unaffected.
    EXPECT_EQ(mrf.access(0, 0, 0), 8u);
}

TEST(RegCache, FastPipelinedAccess)
{
    RegCache cache(16, 1);
    EXPECT_EQ(cache.access(3, 10), 11u);
    EXPECT_EQ(cache.access(3, 11), 12u);
    // Same bank, same cycle: second access slips one cycle.
    Cycle a = cache.access(5, 20);
    Cycle b = cache.access(5, 20);
    EXPECT_EQ(a, 21u);
    EXPECT_EQ(b, 22u);
}

TEST(RegCache, AccessCounting)
{
    RegCache cache(8, 1);
    cache.access(0, 0);
    cache.recordWrite();
    EXPECT_EQ(cache.accesses(), 2u);
}

TEST(RegCacheDeath, BadBankPanics)
{
    RegCache cache(8, 1);
    EXPECT_DEATH(cache.access(8, 0), "bad cache bank");
}

/** Property: under random traffic, per-bank issue times are strictly
 *  increasing (one access per cycle per bank). */
class MrfProperty : public ::testing::TestWithParam<int>
{};

TEST_P(MrfProperty, BankIssueTimesMonotonic)
{
    MainRegFile mrf(16, 3 + GetParam() % 5);
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    Cycle now = 0;
    std::vector<Cycle> last_done(16, 0);
    for (int i = 0; i < 200; i++) {
        seed = seed * 6364136223846793005ull + 1;
        WarpId w = static_cast<WarpId>(seed % 8);
        RegId r = static_cast<RegId>((seed >> 8) % 32);
        now += seed % 3;
        Cycle done = mrf.access(w, r, now);
        int bank = mrf.bankOf(w, r);
        EXPECT_GT(done, last_done[bank]);
        EXPECT_GE(done, now + mrf.latency());
        last_done[bank] = done;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrfProperty, ::testing::Range(0, 8));
