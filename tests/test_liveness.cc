/**
 * @file
 * Tests for liveness analysis and dead-operand-bit annotation.
 */

#include <gtest/gtest.h>

#include "compiler/liveness.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

TEST(Liveness, StraightLineLastUse)
{
    // r0 defined, used once; r1 used twice; last uses get dead bits.
    KernelBuilder b("straight");
    b.mov(0);                 // def r0
    b.mov(1);                 // def r1
    b.iadd(2, 0, 1);          // last use of r0, r1 still live
    b.iadd(3, 2, 1);          // last use of r1 and r2
    Kernel k = b.build();
    int marked = annotateDeadOperands(k);

    const auto &ins = k.block(0).instrs;
    // iadd r2, r0, r1: r0 dead, r1 not.
    EXPECT_TRUE(ins[2].src_dead[0]);
    EXPECT_FALSE(ins[2].src_dead[1]);
    // iadd r3, r2, r1: both dead.
    EXPECT_TRUE(ins[3].src_dead[0]);
    EXPECT_TRUE(ins[3].src_dead[1]);
    EXPECT_EQ(marked, 3);
}

TEST(Liveness, LoopKeepsCarriedRegistersLive)
{
    // r0 is loop-carried: its use inside the loop must NOT be marked
    // dead because the back edge reads it again.
    KernelBuilder b("loop");
    b.mov(0);
    b.beginLoop(4);
    b.iadd(1, 0, 1);          // reads r0 every iteration
    b.endLoop();
    b.mov(2, 1);              // r1 used after the loop
    Kernel k = b.build();
    annotateDeadOperands(k);

    const auto &body = k.block(1).instrs;
    ASSERT_EQ(body[0].op, Opcode::IADD);
    EXPECT_FALSE(body[0].src_dead[0]);  // r0 live around the back edge
    EXPECT_FALSE(body[0].src_dead[1]);  // r1 live (used after loop)

    // After the loop, r1's last use is dead.
    const auto &after = k.block(2).instrs;
    ASSERT_EQ(after[0].op, Opcode::MOV);
    EXPECT_TRUE(after[0].src_dead[0]);
}

TEST(Liveness, LiveInOfEntryOnlyUpwardExposed)
{
    KernelBuilder b("k");
    b.mov(0);
    b.iadd(1, 0, 2);  // r2 read before any def: upward exposed
    Kernel k = b.build();
    LivenessInfo info = computeLiveness(k);
    EXPECT_TRUE(info.live_in[0].test(2));
    EXPECT_FALSE(info.live_in[0].test(0));
    EXPECT_FALSE(info.live_in[0].test(1));
}

TEST(Liveness, BranchMergesLiveness)
{
    // r1 is read only on the then side, r2 only on the else side;
    // both must be live out of the cond block.
    KernelBuilder b("branchy");
    b.mov(0).mov(1).mov(2);
    b.beginIf(0.5, 0);
    b.mov(3, 1);
    b.beginElse();
    b.mov(3, 2);
    b.endIf();
    b.mov(4, 3);
    Kernel k = b.build();
    LivenessInfo info = computeLiveness(k);
    EXPECT_TRUE(info.live_out[0].test(1));
    EXPECT_TRUE(info.live_out[0].test(2));
    // r3 defined on both sides, not live into cond.
    EXPECT_FALSE(info.live_in[0].test(3));
}

TEST(Liveness, DeadAcrossConditionalIsConservative)
{
    // r1 read on one side only: its earlier use cannot be dead until
    // control flow resolves; the cond-block read must stay live.
    KernelBuilder b("cond");
    b.mov(1);
    b.isetp(0, 1, 1);   // reads r1; r1 still potentially read later
    b.beginIf(0.5, 0);
    b.mov(2, 1);        // reads r1 on then side
    b.endIf();
    Kernel k = b.build();
    annotateDeadOperands(k);
    const auto &cond = k.block(0).instrs;
    // isetp r0, r1, r1: r1 must NOT be dead (then-side may read it).
    ASSERT_EQ(cond[1].op, Opcode::ISETP);
    EXPECT_FALSE(cond[1].src_dead[0]);
}

TEST(Liveness, MaxLiveRegsBounds)
{
    KernelBuilder b("k");
    b.mov(0).mov(1).mov(2).mov(3);
    b.iadd(4, 0, 1);
    b.iadd(5, 2, 3);
    b.iadd(6, 4, 5);
    Kernel k = b.build();
    int ml = maxLiveRegs(k);
    EXPECT_GE(ml, 4);
    EXPECT_LE(ml, k.num_regs);
}

TEST(Liveness, ConvergesOnDeepLoopNest)
{
    KernelBuilder b("deep");
    b.mov(0);
    for (int i = 0; i < 6; i++)
        b.beginLoop(2);
    b.iadd(1, 0, 1);
    for (int i = 0; i < 6; i++)
        b.endLoop();
    Kernel k = b.build();
    LivenessInfo info = computeLiveness(k);
    EXPECT_GT(info.iterations, 0);
    EXPECT_LT(info.iterations, 50);
    // r0 live into every loop level.
    for (int blk = 1; blk < k.numBlocks() - 1; blk++) {
        if (!k.block(blk).instrs.empty())
            EXPECT_TRUE(info.live_in[blk].test(0) ||
                        info.def[blk].test(0));
    }
}
