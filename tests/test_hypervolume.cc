/**
 * @file
 * Property tests for the hypervolume indicator: zero on the empty
 * set, exact on hand-computed unions, invariant (bit-exact) under
 * point permutation, blind to dominated or out-of-reference points,
 * and monotone non-decreasing as points are inserted into a
 * ParetoFrontier.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "dse/hypervolume.hh"
#include "dse/pareto.hh"

using namespace ltrf;
using namespace ltrf::dse;

namespace
{

const Objectives REF{0.0, 2.0, 8.0};

Objectives
obj(double ipc, double energy, double area)
{
    return Objectives{ipc, energy, area};
}

} // namespace

TEST(Hypervolume, EmptySetIsZero)
{
    EXPECT_EQ(hypervolume({}, REF), 0.0);
    ParetoFrontier empty;
    EXPECT_EQ(hypervolume(empty.objectives(), REF), 0.0);
}

TEST(Hypervolume, SinglePointIsItsBox)
{
    // Gains over REF: (1.0, 1.0, 7.0).
    EXPECT_DOUBLE_EQ(hypervolume({obj(1.0, 1.0, 1.0)}, REF), 7.0);
}

TEST(Hypervolume, PointsOutsideTheReferenceContributeNothing)
{
    // At or beyond the reference on any axis: no volume.
    EXPECT_EQ(hypervolume({obj(0.0, 1.0, 1.0)}, REF), 0.0);
    EXPECT_EQ(hypervolume({obj(1.0, 2.5, 1.0)}, REF), 0.0);
    EXPECT_EQ(hypervolume({obj(1.0, 1.0, 9.0)}, REF), 0.0);
    // And they do not perturb in-reference points.
    EXPECT_DOUBLE_EQ(
            hypervolume({obj(1.0, 1.0, 1.0), obj(1.0, 2.5, 1.0)},
                        REF),
            7.0);
}

TEST(Hypervolume, TwoPointUnionMatchesInclusionExclusion)
{
    // Gains: a = (1, 1, 7), b = (2, 0.5, 4).
    // |a| = 7, |b| = 4, |a n b| = 1 * 0.5 * 4 = 2 -> union 9.
    const std::vector<Objectives> pts = {obj(1.0, 1.0, 1.0),
                                         obj(2.0, 1.5, 4.0)};
    EXPECT_DOUBLE_EQ(hypervolume(pts, REF), 9.0);
}

TEST(Hypervolume, ThreePointUnionMatchesInclusionExclusion)
{
    // Gains: a = (1, 1, 7), b = (2, 0.5, 4), c = (0.5, 1.5, 6).
    // |a|=7 |b|=4 |c|=4.5, |ab|=2 |ac|=3 |bc|=1, |abc|=1 -> 10.5.
    const std::vector<Objectives> pts = {obj(1.0, 1.0, 1.0),
                                         obj(2.0, 1.5, 4.0),
                                         obj(0.5, 0.5, 2.0)};
    EXPECT_DOUBLE_EQ(hypervolume(pts, REF), 10.5);
}

TEST(Hypervolume, DominatedPointsAddNothing)
{
    const Objectives strong = obj(1.0, 1.0, 1.0);
    const Objectives weak = obj(0.5, 1.5, 5.0);    // inside strong
    EXPECT_DOUBLE_EQ(hypervolume({strong}, REF),
                     hypervolume({strong, weak}, REF));
    // Duplicates add nothing either.
    EXPECT_DOUBLE_EQ(hypervolume({strong}, REF),
                     hypervolume({strong, strong}, REF));
}

TEST(Hypervolume, BitExactUnderPermutation)
{
    std::vector<Objectives> pts = {
            obj(1.0, 1.0, 1.0), obj(2.0, 1.5, 4.0),
            obj(0.5, 0.5, 2.0), obj(1.2, 0.9, 0.5),
            obj(1.0, 1.0, 1.0),    // duplicate on purpose
    };
    const double expected = hypervolume(pts, REF);
    std::vector<std::size_t> perm{0, 1, 2, 3, 4};
    int checked = 0;
    while (std::next_permutation(perm.begin(), perm.end())) {
        std::vector<Objectives> shuffled;
        for (std::size_t i : perm)
            shuffled.push_back(pts[i]);
        // EXPECT_EQ, not NEAR: the canonical internal sort makes
        // the sum a function of the point set alone.
        EXPECT_EQ(hypervolume(shuffled, REF), expected);
        checked++;
    }
    EXPECT_EQ(checked, 119);    // 5! - 1 permutations
}

TEST(Hypervolume, MonotoneNonDecreasingUnderFrontierInsertion)
{
    // Seeded random stream of objective vectors, some outside the
    // reference box, inserted into a live frontier (which evicts
    // dominated members): the indicator must never shrink.
    Rng rng(2018);
    ParetoFrontier frontier;
    double prev = 0.0;
    for (int i = 0; i < 128; i++) {
        Objectives o;
        o.ipc = rng.nextDouble() * 1.6 - 0.1;
        o.energy = rng.nextDouble() * 2.4;
        o.area = rng.nextDouble() * 9.5;
        frontier.insert(i, o);
        const double hv = hypervolume(frontier.objectives(), REF);
        EXPECT_GE(hv, prev - 1e-9 * std::max(1.0, prev))
                << "shrank at insertion " << i;
        // Bounded by the reference box over the sampled ranges.
        EXPECT_LE(hv, 1.6 * 2.0 * 8.0);
        prev = hv;
    }
    EXPECT_GT(prev, 0.0);
}
