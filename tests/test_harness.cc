/**
 * @file
 * Tests for the experiment-runner subsystem: sweep-spec expansion,
 * thread-pool determinism (identical results for 1 and 8 jobs),
 * JSON round-tripping, and baseline normalization against the
 * 256KB-baseline rule bench_util.hh documents.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "harness/emit.hh"
#include "harness/json.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::harness;

namespace
{

/** A 2-workload x 2-design micro-sweep that runs in ~a second. */
SweepSpec
microSpec()
{
    SweepSpec spec;
    spec.workloads = {"bfs", "btree"};
    spec.designs = {RfDesign::BL, RfDesign::LTRF};
    spec.rf_cfg_ids = {6};
    spec.num_sms = 1;
    spec.seed = bench::BENCH_SEED;
    return spec;
}

} // namespace

// ----- Sweep expansion -----

TEST(SweepSpec, ExpansionOrderAndCount)
{
    SweepSpec spec;
    spec.workloads = {"bfs", "btree"};
    spec.designs = {RfDesign::BL, RfDesign::LTRF};
    spec.rf_cfg_ids = {0, 6};
    spec.num_sms = 2;

    std::vector<SweepCell> cells = expandSweep(spec);
    ASSERT_EQ(cells.size(), 8u);

    // Workload-major, then design, then configuration.
    EXPECT_EQ(cells[0].workload, "bfs");
    EXPECT_EQ(cells[0].design, RfDesign::BL);
    EXPECT_EQ(cells[0].rf_cfg_id, 0);
    EXPECT_EQ(cells[1].rf_cfg_id, 6);
    EXPECT_EQ(cells[2].design, RfDesign::LTRF);
    EXPECT_EQ(cells[4].workload, "btree");
    for (size_t i = 0; i < cells.size(); i++)
        EXPECT_EQ(cells[i].index, static_cast<int>(i));
}

TEST(SweepSpec, ConfigMaterialization)
{
    SweepSpec spec;
    spec.workloads = {"bfs"};
    spec.designs = {RfDesign::LTRF};
    spec.rf_cfg_ids = {6};
    spec.num_sms = 2;
    spec.num_active_warps = 4;

    std::vector<SweepCell> cells = expandSweep(spec);
    ASSERT_EQ(cells.size(), 1u);
    const SimConfig &cfg = cells[0].config;
    EXPECT_EQ(cfg.design, RfDesign::LTRF);
    EXPECT_EQ(cfg.num_sms, 2);
    EXPECT_EQ(cfg.num_active_warps, 4);
    // Table 2 row applied: capacity, latency, and bank count.
    const RfConfig &rc = rfConfig(6);
    EXPECT_EQ(cfg.rf_capacity_mult, static_cast<int>(rc.capacity));
    EXPECT_DOUBLE_EQ(cfg.mrf_latency_mult, rc.latency);
    EXPECT_EQ(cfg.num_mrf_banks, 16 * rc.banks_mult);
}

TEST(SweepSpec, LatencyAxisOverridesConfig)
{
    SweepSpec spec;
    spec.workloads = {"bfs"};
    spec.designs = {RfDesign::BL};
    spec.latency_mults = {1.0, 3.5};

    std::vector<SweepCell> cells = expandSweep(spec);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_DOUBLE_EQ(cells[0].config.mrf_latency_mult, 1.0);
    EXPECT_DOUBLE_EQ(cells[1].config.mrf_latency_mult, 3.5);
    EXPECT_DOUBLE_EQ(cells[1].latency_mult, 3.5);
}

TEST(SweepSpecDeathTest, UnknownWorkloadIsFatal)
{
    SweepSpec spec;
    spec.workloads = {"no-such-workload"};
    spec.designs = {RfDesign::BL};
    EXPECT_EXIT(expandSweep(spec), ::testing::ExitedWithCode(1),
                "no-such-workload");
}

TEST(SweepSpec, Selectors)
{
    EXPECT_EQ(resolveWorkloads("all").size(),
              WorkloadSuite::all().size());
    EXPECT_EQ(resolveWorkloads("sensitive").size(),
              WorkloadSuite::sensitive().size());
    EXPECT_EQ(resolveWorkloads("bfs,btree").size(), 2u);
    EXPECT_EQ(parseRfDesign("ltrf+"), RfDesign::LTRF_PLUS);
    EXPECT_EQ(parseRfDesign("LTRF-plus"), RfDesign::LTRF_PLUS);
    EXPECT_EQ(parseRfDesign("Ideal"), RfDesign::IDEAL);
    EXPECT_EQ(resolveDesigns("all").size(), 7u);
}

// ----- Thread-pool determinism -----

TEST(ExperimentRunner, SameResultsForOneAndEightJobs)
{
    std::vector<SweepCell> cells = expandSweep(microSpec());

    ExperimentRunner serial(1);
    BaselineCache base1(baselineConfigFor(microSpec()),
                        bench::BENCH_SEED);
    ResultSet rs1 = serial.run(cells, &base1);

    ExperimentRunner parallel(8);
    BaselineCache base8(baselineConfigFor(microSpec()),
                        bench::BENCH_SEED);
    ResultSet rs8 = parallel.run(cells, &base8);

    ASSERT_EQ(rs1.size(), rs8.size());
    for (size_t i = 0; i < rs1.size(); i++) {
        EXPECT_EQ(rs1.rows()[i].cell.workload,
                  rs8.rows()[i].cell.workload);
        EXPECT_EQ(rs1.rows()[i].result.cycles,
                  rs8.rows()[i].result.cycles);
        EXPECT_EQ(rs1.rows()[i].result.instructions,
                  rs8.rows()[i].result.instructions);
    }
    // The strong form the CI smoke test relies on: byte-identical
    // serialized output regardless of the job count.
    EXPECT_EQ(rs1.dumpJson(), rs8.dumpJson());
}

// ----- The streaming (submit/drain) work-stealing pool -----

TEST(ExperimentRunner, SubmitDrainRunsEverySubmittedTask)
{
    for (int jobs : {1, 2, 4}) {
        ExperimentRunner runner(jobs);
        std::vector<int> slots(64, 0);
        for (std::size_t i = 0; i < slots.size(); i++)
            runner.submit([&slots, i] {
                slots[i] = static_cast<int>(i) + 1;
            });
        runner.drain();
        for (std::size_t i = 0; i < slots.size(); i++)
            EXPECT_EQ(slots[i], static_cast<int>(i) + 1)
                    << "slot " << i << " at " << jobs << " jobs";
        // drain() is idempotent and the pool accepts more work
        // afterwards.
        runner.drain();
        bool late = false;
        runner.submit([&late] { late = true; });
        runner.drain();
        EXPECT_TRUE(late);
    }
}

/**
 * The pipeline stress case from the DSE engine, reduced to the
 * scheduling layer it actually exercises: one artificially slow
 * cell in a batch must not serialize the cells of the next batch.
 * With 2 workers, one chews the slow cell while the other steals
 * and finishes every fast cell submitted after it — so all fast
 * completions land strictly before the slow one. Under the old
 * batch-barrier scheduling the second batch could not even start
 * until the slow cell finished.
 */
TEST(ExperimentRunner, StragglerDoesNotSerializeLaterSubmissions)
{
    using Clock = std::chrono::steady_clock;
    ExperimentRunner runner(2);

    Clock::time_point slow_done;
    std::vector<Clock::time_point> fast_done(4);

    // Batch 1: the straggler.
    runner.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        slow_done = Clock::now();
    });
    // Batch 2, admitted while batch 1 is still in flight.
    for (std::size_t i = 0; i < fast_done.size(); i++)
        runner.submit([&fast_done, i] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            fast_done[i] = Clock::now();
        });
    runner.drain();

    for (std::size_t i = 0; i < fast_done.size(); i++)
        EXPECT_LT(fast_done[i], slow_done)
                << "fast task " << i << " was serialized behind "
                << "the straggler";
}

/**
 * Wall-clock makespan: the same task set finishes measurably
 * earlier on the streaming pool than under batch barriers. The
 * sleep schedule is chosen so the gap dwarfs scheduler noise: the
 * barrier schedule has a guaranteed >= 450ms floor (the 300ms
 * straggler's batch, then three 50ms rounds of the remaining
 * batches on 2 workers), while the pipelined schedule hides all
 * six 50ms tasks (300ms of work for the second worker) behind the
 * straggler for a ~300ms makespan — 150ms of slack before the
 * comparison could flip.
 */
TEST(ExperimentRunner, PipelineBeatsBatchBarrierMakespan)
{
    using Clock = std::chrono::steady_clock;
    auto slow = [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
    };
    auto fast = [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    };

    ExperimentRunner barrier(2);
    const Clock::time_point b0 = Clock::now();
    barrier.runTasks({slow, fast});
    barrier.runTasks({fast, fast});
    barrier.runTasks({fast, fast});
    barrier.runTasks({fast});
    const auto barrier_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - b0);

    ExperimentRunner pipelined(2);
    const Clock::time_point p0 = Clock::now();
    pipelined.submit(slow);
    for (int i = 0; i < 6; i++)
        pipelined.submit(fast);
    pipelined.drain();
    const auto pipeline_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - p0);

    EXPECT_GE(barrier_ms.count(), 450);
    EXPECT_LT(pipeline_ms.count(), barrier_ms.count());
}

TEST(BaselineCache, ConcurrentRequestsAgree)
{
    BaselineCache cache(baselineConfigFor(microSpec()),
                        bench::BENCH_SEED);
    const Workload &w = WorkloadSuite::byName("bfs");
    std::vector<double> got(8, 0.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; t++)
        threads.emplace_back(
                [&cache, &w, &got, t] { got[t] = cache.ipc(w); });
    for (auto &t : threads)
        t.join();
    for (int t = 1; t < 8; t++)
        EXPECT_EQ(got[0], got[t]);
    EXPECT_GT(got[0], 0.0);
    EXPECT_TRUE(cache.contains("bfs"));
    EXPECT_FALSE(cache.contains("btree"));
}

// ----- JSON -----

TEST(Json, DumpFormatting)
{
    Json j = Json::object();
    j.set("int", 42);
    j.set("big", std::uint64_t{123456789012345ull});
    j.set("frac", 0.25);
    j.set("text", "a\"b\\c\n");
    j.set("flag", true);
    j.set("none", Json());
    EXPECT_EQ(j.dump(),
              "{\"int\":42,\"big\":123456789012345,\"frac\":0.25,"
              "\"text\":\"a\\\"b\\\\c\\n\",\"flag\":true,"
              "\"none\":null}");
}

TEST(Json, ParseRoundTrip)
{
    const char *text = "{\"a\":[1,2.5,-3],\"b\":{\"c\":\"x\"},"
                       "\"d\":false,\"e\":null}";
    Json j = Json::parse(text);
    EXPECT_EQ(j.at("a").size(), 3u);
    EXPECT_DOUBLE_EQ(j.at("a").at(1).asDouble(), 2.5);
    EXPECT_EQ(j.at("b").at("c").asString(), "x");
    EXPECT_EQ(j.dump(), text);
    EXPECT_TRUE(Json::parse(j.dump()) == j);
}

TEST(Json, PreservesInsertionOrder)
{
    Json j = Json::object();
    j.set("zebra", 1);
    j.set("alpha", 2);
    EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2}");
}

TEST(JsonDeathTest, MalformedInputIsFatal)
{
    EXPECT_EXIT(Json::parse("{\"a\":}"), ::testing::ExitedWithCode(1),
                "JSON parse error");
}

TEST(ResultSet, JsonRoundTrip)
{
    std::vector<SweepCell> cells = expandSweep(microSpec());
    ExperimentRunner runner(2);
    BaselineCache base(baselineConfigFor(microSpec()),
                       bench::BENCH_SEED);
    ResultSet rs = runner.run(cells, &base);

    ResultSet back = ResultSet::fromJson(Json::parse(rs.dumpJson()));
    ASSERT_EQ(back.size(), rs.size());
    for (size_t i = 0; i < rs.size(); i++) {
        const ResultRow &a = rs.rows()[i];
        const ResultRow &b = back.rows()[i];
        EXPECT_EQ(a.cell.workload, b.cell.workload);
        EXPECT_EQ(a.cell.design, b.cell.design);
        EXPECT_EQ(a.cell.rf_cfg_id, b.cell.rf_cfg_id);
        EXPECT_EQ(a.result.cycles, b.result.cycles);
        EXPECT_EQ(a.result.instructions, b.result.instructions);
        EXPECT_EQ(a.result.ipc, b.result.ipc);
        EXPECT_EQ(a.result.main_accesses, b.result.main_accesses);
        EXPECT_EQ(a.baseline_ipc, b.baseline_ipc);
    }
    // And the re-serialization is byte-identical.
    EXPECT_EQ(back.dumpJson(), rs.dumpJson());

    // The loaded cells carry a re-materialized SimConfig matching
    // what was simulated (Table 2 row re-applied).
    const SimConfig &cfg = back.rows()[1].cell.config;
    EXPECT_EQ(cfg.rf_capacity_mult, static_cast<int>(rfConfig(6).capacity));
    EXPECT_DOUBLE_EQ(cfg.mrf_latency_mult, rfConfig(6).latency);
}

TEST(ResultSet, CsvMirrorsJsonCells)
{
    std::vector<SweepCell> cells = expandSweep(microSpec());
    ExperimentRunner runner(2);
    BaselineCache base(baselineConfigFor(microSpec()),
                       bench::BENCH_SEED);
    ResultSet rs = runner.run(cells, &base);

    std::string csv = rs.toCsv();
    // Header + one line per cell.
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, rs.size() + 1);
    EXPECT_EQ(csv.rfind("workload,design,rf_config", 0), 0u);
    // First data row carries the first cell's grid key, and numbers
    // use the JSON writer's formatting.
    std::size_t nl = csv.find('\n');
    std::string row2 = csv.substr(nl + 1, csv.find('\n', nl + 1) - nl - 1);
    EXPECT_EQ(row2.rfind("bfs,BL,6,", 0), 0u);
    EXPECT_NE(row2.find(jsonNumberText(rs.rows()[0].result.ipc)),
              std::string::npos);
}

/** Minimal RFC 4180 field splitter for the round-trip check. */
std::vector<std::string>
splitCsvRow(const std::string &row)
{
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < row.size(); i++) {
        const char c = row[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < row.size() && row[i + 1] == '"') {
                    cur += '"';
                    i++;
                } else {
                    quoted = false;
                }
            } else {
                cur += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    fields.push_back(cur);
    return fields;
}

TEST(ResultSet, CsvQuotesCommaAndQuoteBearingFields)
{
    // A workload tagged with a comma, a double quote, and a
    // newline-free tag with both: without RFC 4180 quoting these
    // shear the row into extra columns.
    const std::string tricky = "bfs,variant \"hot\"";
    ResultRow row;
    row.cell.workload = tricky;
    row.cell.tag = "a,b";
    ResultSet rs;
    rs.add(row);

    const std::string csv = rs.toCsv();
    const std::size_t nl = csv.find('\n');
    const std::string header = csv.substr(0, nl);
    const std::string data =
            csv.substr(nl + 1, csv.find('\n', nl + 1) - nl - 1);

    const std::vector<std::string> cols = splitCsvRow(header);
    const std::vector<std::string> fields = splitCsvRow(data);
    // The row still has exactly one field per column...
    ASSERT_EQ(fields.size(), cols.size());
    // ...and the tricky strings round-trip through the quoting.
    EXPECT_EQ(fields[0], tricky);
    EXPECT_EQ(fields[4], "a,b");
    // The raw text is quoted per RFC 4180: embedded quotes doubled.
    EXPECT_NE(csv.find("\"bfs,variant \"\"hot\"\"\""),
              std::string::npos);
    // Plain fields stay unquoted.
    EXPECT_EQ(csvField("plain"), "plain");
    EXPECT_EQ(csvField("with space"), "with space");
}

TEST(OutputFormat, ParseAndName)
{
    OutputFormat f = OutputFormat::JSON;
    EXPECT_TRUE(parseOutputFormat("csv", f));
    EXPECT_EQ(f, OutputFormat::CSV);
    EXPECT_TRUE(parseOutputFormat("JSON", f));
    EXPECT_EQ(f, OutputFormat::JSON);
    EXPECT_FALSE(parseOutputFormat("xml", f));
    EXPECT_EQ(f, OutputFormat::JSON);    // untouched on failure
    EXPECT_STREQ(outputFormatName(OutputFormat::CSV), "csv");
}

TEST(ResultSet, SeedSurvivesJsonExactly)
{
    // Seeds ride through JSON as strings: a double would round
    // anything above 2^53.
    ResultSet rs;
    ResultRow row;
    row.cell.workload = "bfs";
    row.cell.design = RfDesign::BL;
    row.cell.seed = 18446744073709551615ull; // 2^64 - 1
    rs.add(row);
    ResultSet back = ResultSet::fromJson(Json::parse(rs.dumpJson()));
    EXPECT_EQ(back.rows()[0].cell.seed, 18446744073709551615ull);
}

// ----- Baseline normalization -----

TEST(BaselineCache, MatchesBenchUtilBaselineRule)
{
    // bench_util.hh documents the normalization baseline: the BL
    // design on the unmodified 256KB register file.
    SimConfig base_cfg = bench::baselineConfig();
    EXPECT_EQ(base_cfg.design, RfDesign::BL);
    EXPECT_EQ(base_cfg.rf_bytes, 256u * 1024u);
    EXPECT_EQ(base_cfg.rf_capacity_mult, 1);

    const Workload &w = WorkloadSuite::byName("bfs");
    BaselineCache cache(base_cfg, bench::BENCH_SEED);
    // Same simulation as bench_util's baselineIpc() (which now
    // delegates to a process-wide BaselineCache).
    EXPECT_DOUBLE_EQ(cache.ipc(w), bench::baselineIpc(w));
    EXPECT_DOUBLE_EQ(cache.ipc(w),
                     simulate(base_cfg, w.kernel, bench::BENCH_SEED).ipc);
}

TEST(ResultSet, NormalizationAndGeomean)
{
    std::vector<SweepCell> cells = expandSweep(microSpec());
    ExperimentRunner runner(2);
    BaselineCache base(baselineConfigFor(microSpec()),
                       bench::BENCH_SEED);
    ResultSet rs = runner.run(cells, &base);

    // Each row's normalized IPC is its IPC over its workload's
    // baseline IPC.
    for (const ResultRow &row : rs.rows()) {
        ASSERT_TRUE(row.normalized());
        const Workload &w = WorkloadSuite::byName(row.cell.workload);
        EXPECT_DOUBLE_EQ(row.baseline_ipc, base.ipc(w));
        EXPECT_DOUBLE_EQ(row.normalizedIpc(),
                         row.result.ipc / base.ipc(w));
    }

    // Geomean helper agrees with the bench_util definition.
    std::vector<double> ltrf =
            rs.normalizedByDesign(RfDesign::LTRF, 6);
    EXPECT_EQ(ltrf.size(), 2u);
    EXPECT_DOUBLE_EQ(rs.geomeanNormalized(RfDesign::LTRF, 6),
                     bench::geomean(ltrf));

    // BL on configuration #6 pays 5.3x latency with no cache: it
    // must not beat its own baseline.
    EXPECT_LT(rs.geomeanNormalized(RfDesign::BL, 6), 1.0);
}

TEST(ResultSet, GeomeanOfKnownValues)
{
    EXPECT_DOUBLE_EQ(ResultSet::geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(ResultSet::mean({2.0, 8.0}), 5.0);
    EXPECT_DOUBLE_EQ(ResultSet::geomean({}), 0.0);
}

TEST(ResultSet, FindTagged)
{
    ResultSet rs;
    ResultRow row;
    row.cell.workload = "bfs";
    row.cell.tag = "variant-a";
    row.result.ipc = 1.5;
    rs.add(row);
    EXPECT_DOUBLE_EQ(rs.findTagged("bfs", "variant-a").result.ipc, 1.5);
}
