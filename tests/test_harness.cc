/**
 * @file
 * Tests for the experiment-runner subsystem: sweep-spec expansion,
 * thread-pool determinism (identical results for 1 and 8 jobs),
 * JSON round-tripping, and baseline normalization against the
 * 256KB-baseline rule bench_util.hh documents.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "bench_util.hh"
#include "harness/json.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::harness;

namespace
{

/** A 2-workload x 2-design micro-sweep that runs in ~a second. */
SweepSpec
microSpec()
{
    SweepSpec spec;
    spec.workloads = {"bfs", "btree"};
    spec.designs = {RfDesign::BL, RfDesign::LTRF};
    spec.rf_cfg_ids = {6};
    spec.num_sms = 1;
    spec.seed = bench::BENCH_SEED;
    return spec;
}

} // namespace

// ----- Sweep expansion -----

TEST(SweepSpec, ExpansionOrderAndCount)
{
    SweepSpec spec;
    spec.workloads = {"bfs", "btree"};
    spec.designs = {RfDesign::BL, RfDesign::LTRF};
    spec.rf_cfg_ids = {0, 6};
    spec.num_sms = 2;

    std::vector<SweepCell> cells = expandSweep(spec);
    ASSERT_EQ(cells.size(), 8u);

    // Workload-major, then design, then configuration.
    EXPECT_EQ(cells[0].workload, "bfs");
    EXPECT_EQ(cells[0].design, RfDesign::BL);
    EXPECT_EQ(cells[0].rf_cfg_id, 0);
    EXPECT_EQ(cells[1].rf_cfg_id, 6);
    EXPECT_EQ(cells[2].design, RfDesign::LTRF);
    EXPECT_EQ(cells[4].workload, "btree");
    for (size_t i = 0; i < cells.size(); i++)
        EXPECT_EQ(cells[i].index, static_cast<int>(i));
}

TEST(SweepSpec, ConfigMaterialization)
{
    SweepSpec spec;
    spec.workloads = {"bfs"};
    spec.designs = {RfDesign::LTRF};
    spec.rf_cfg_ids = {6};
    spec.num_sms = 2;
    spec.num_active_warps = 4;

    std::vector<SweepCell> cells = expandSweep(spec);
    ASSERT_EQ(cells.size(), 1u);
    const SimConfig &cfg = cells[0].config;
    EXPECT_EQ(cfg.design, RfDesign::LTRF);
    EXPECT_EQ(cfg.num_sms, 2);
    EXPECT_EQ(cfg.num_active_warps, 4);
    // Table 2 row applied: capacity, latency, and bank count.
    const RfConfig &rc = rfConfig(6);
    EXPECT_EQ(cfg.rf_capacity_mult, static_cast<int>(rc.capacity));
    EXPECT_DOUBLE_EQ(cfg.mrf_latency_mult, rc.latency);
    EXPECT_EQ(cfg.num_mrf_banks, 16 * rc.banks_mult);
}

TEST(SweepSpec, LatencyAxisOverridesConfig)
{
    SweepSpec spec;
    spec.workloads = {"bfs"};
    spec.designs = {RfDesign::BL};
    spec.latency_mults = {1.0, 3.5};

    std::vector<SweepCell> cells = expandSweep(spec);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_DOUBLE_EQ(cells[0].config.mrf_latency_mult, 1.0);
    EXPECT_DOUBLE_EQ(cells[1].config.mrf_latency_mult, 3.5);
    EXPECT_DOUBLE_EQ(cells[1].latency_mult, 3.5);
}

TEST(SweepSpecDeathTest, UnknownWorkloadIsFatal)
{
    SweepSpec spec;
    spec.workloads = {"no-such-workload"};
    spec.designs = {RfDesign::BL};
    EXPECT_EXIT(expandSweep(spec), ::testing::ExitedWithCode(1),
                "no-such-workload");
}

TEST(SweepSpec, Selectors)
{
    EXPECT_EQ(resolveWorkloads("all").size(),
              WorkloadSuite::all().size());
    EXPECT_EQ(resolveWorkloads("sensitive").size(),
              WorkloadSuite::sensitive().size());
    EXPECT_EQ(resolveWorkloads("bfs,btree").size(), 2u);
    EXPECT_EQ(parseRfDesign("ltrf+"), RfDesign::LTRF_PLUS);
    EXPECT_EQ(parseRfDesign("LTRF-plus"), RfDesign::LTRF_PLUS);
    EXPECT_EQ(parseRfDesign("Ideal"), RfDesign::IDEAL);
    EXPECT_EQ(resolveDesigns("all").size(), 7u);
}

// ----- Thread-pool determinism -----

TEST(ExperimentRunner, SameResultsForOneAndEightJobs)
{
    std::vector<SweepCell> cells = expandSweep(microSpec());

    ExperimentRunner serial(1);
    BaselineCache base1(baselineConfigFor(microSpec()),
                        bench::BENCH_SEED);
    ResultSet rs1 = serial.run(cells, &base1);

    ExperimentRunner parallel(8);
    BaselineCache base8(baselineConfigFor(microSpec()),
                        bench::BENCH_SEED);
    ResultSet rs8 = parallel.run(cells, &base8);

    ASSERT_EQ(rs1.size(), rs8.size());
    for (size_t i = 0; i < rs1.size(); i++) {
        EXPECT_EQ(rs1.rows()[i].cell.workload,
                  rs8.rows()[i].cell.workload);
        EXPECT_EQ(rs1.rows()[i].result.cycles,
                  rs8.rows()[i].result.cycles);
        EXPECT_EQ(rs1.rows()[i].result.instructions,
                  rs8.rows()[i].result.instructions);
    }
    // The strong form the CI smoke test relies on: byte-identical
    // serialized output regardless of the job count.
    EXPECT_EQ(rs1.dumpJson(), rs8.dumpJson());
}

TEST(BaselineCache, ConcurrentRequestsAgree)
{
    BaselineCache cache(baselineConfigFor(microSpec()),
                        bench::BENCH_SEED);
    const Workload &w = WorkloadSuite::byName("bfs");
    std::vector<double> got(8, 0.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; t++)
        threads.emplace_back(
                [&cache, &w, &got, t] { got[t] = cache.ipc(w); });
    for (auto &t : threads)
        t.join();
    for (int t = 1; t < 8; t++)
        EXPECT_EQ(got[0], got[t]);
    EXPECT_GT(got[0], 0.0);
    EXPECT_TRUE(cache.contains("bfs"));
    EXPECT_FALSE(cache.contains("btree"));
}

// ----- JSON -----

TEST(Json, DumpFormatting)
{
    Json j = Json::object();
    j.set("int", 42);
    j.set("big", std::uint64_t{123456789012345ull});
    j.set("frac", 0.25);
    j.set("text", "a\"b\\c\n");
    j.set("flag", true);
    j.set("none", Json());
    EXPECT_EQ(j.dump(),
              "{\"int\":42,\"big\":123456789012345,\"frac\":0.25,"
              "\"text\":\"a\\\"b\\\\c\\n\",\"flag\":true,"
              "\"none\":null}");
}

TEST(Json, ParseRoundTrip)
{
    const char *text = "{\"a\":[1,2.5,-3],\"b\":{\"c\":\"x\"},"
                       "\"d\":false,\"e\":null}";
    Json j = Json::parse(text);
    EXPECT_EQ(j.at("a").size(), 3u);
    EXPECT_DOUBLE_EQ(j.at("a").at(1).asDouble(), 2.5);
    EXPECT_EQ(j.at("b").at("c").asString(), "x");
    EXPECT_EQ(j.dump(), text);
    EXPECT_TRUE(Json::parse(j.dump()) == j);
}

TEST(Json, PreservesInsertionOrder)
{
    Json j = Json::object();
    j.set("zebra", 1);
    j.set("alpha", 2);
    EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2}");
}

TEST(JsonDeathTest, MalformedInputIsFatal)
{
    EXPECT_EXIT(Json::parse("{\"a\":}"), ::testing::ExitedWithCode(1),
                "JSON parse error");
}

TEST(ResultSet, JsonRoundTrip)
{
    std::vector<SweepCell> cells = expandSweep(microSpec());
    ExperimentRunner runner(2);
    BaselineCache base(baselineConfigFor(microSpec()),
                       bench::BENCH_SEED);
    ResultSet rs = runner.run(cells, &base);

    ResultSet back = ResultSet::fromJson(Json::parse(rs.dumpJson()));
    ASSERT_EQ(back.size(), rs.size());
    for (size_t i = 0; i < rs.size(); i++) {
        const ResultRow &a = rs.rows()[i];
        const ResultRow &b = back.rows()[i];
        EXPECT_EQ(a.cell.workload, b.cell.workload);
        EXPECT_EQ(a.cell.design, b.cell.design);
        EXPECT_EQ(a.cell.rf_cfg_id, b.cell.rf_cfg_id);
        EXPECT_EQ(a.result.cycles, b.result.cycles);
        EXPECT_EQ(a.result.instructions, b.result.instructions);
        EXPECT_EQ(a.result.ipc, b.result.ipc);
        EXPECT_EQ(a.result.main_accesses, b.result.main_accesses);
        EXPECT_EQ(a.baseline_ipc, b.baseline_ipc);
    }
    // And the re-serialization is byte-identical.
    EXPECT_EQ(back.dumpJson(), rs.dumpJson());

    // The loaded cells carry a re-materialized SimConfig matching
    // what was simulated (Table 2 row re-applied).
    const SimConfig &cfg = back.rows()[1].cell.config;
    EXPECT_EQ(cfg.rf_capacity_mult, static_cast<int>(rfConfig(6).capacity));
    EXPECT_DOUBLE_EQ(cfg.mrf_latency_mult, rfConfig(6).latency);
}

TEST(ResultSet, CsvMirrorsJsonCells)
{
    std::vector<SweepCell> cells = expandSweep(microSpec());
    ExperimentRunner runner(2);
    BaselineCache base(baselineConfigFor(microSpec()),
                       bench::BENCH_SEED);
    ResultSet rs = runner.run(cells, &base);

    std::string csv = rs.toCsv();
    // Header + one line per cell.
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, rs.size() + 1);
    EXPECT_EQ(csv.rfind("workload,design,rf_config", 0), 0u);
    // First data row carries the first cell's grid key, and numbers
    // use the JSON writer's formatting.
    std::size_t nl = csv.find('\n');
    std::string row2 = csv.substr(nl + 1, csv.find('\n', nl + 1) - nl - 1);
    EXPECT_EQ(row2.rfind("bfs,BL,6,", 0), 0u);
    EXPECT_NE(row2.find(jsonNumberText(rs.rows()[0].result.ipc)),
              std::string::npos);
}

TEST(OutputFormat, ParseAndName)
{
    OutputFormat f = OutputFormat::JSON;
    EXPECT_TRUE(parseOutputFormat("csv", f));
    EXPECT_EQ(f, OutputFormat::CSV);
    EXPECT_TRUE(parseOutputFormat("JSON", f));
    EXPECT_EQ(f, OutputFormat::JSON);
    EXPECT_FALSE(parseOutputFormat("xml", f));
    EXPECT_EQ(f, OutputFormat::JSON);    // untouched on failure
    EXPECT_STREQ(outputFormatName(OutputFormat::CSV), "csv");
}

TEST(ResultSet, SeedSurvivesJsonExactly)
{
    // Seeds ride through JSON as strings: a double would round
    // anything above 2^53.
    ResultSet rs;
    ResultRow row;
    row.cell.workload = "bfs";
    row.cell.design = RfDesign::BL;
    row.cell.seed = 18446744073709551615ull; // 2^64 - 1
    rs.add(row);
    ResultSet back = ResultSet::fromJson(Json::parse(rs.dumpJson()));
    EXPECT_EQ(back.rows()[0].cell.seed, 18446744073709551615ull);
}

// ----- Baseline normalization -----

TEST(BaselineCache, MatchesBenchUtilBaselineRule)
{
    // bench_util.hh documents the normalization baseline: the BL
    // design on the unmodified 256KB register file.
    SimConfig base_cfg = bench::baselineConfig();
    EXPECT_EQ(base_cfg.design, RfDesign::BL);
    EXPECT_EQ(base_cfg.rf_bytes, 256u * 1024u);
    EXPECT_EQ(base_cfg.rf_capacity_mult, 1);

    const Workload &w = WorkloadSuite::byName("bfs");
    BaselineCache cache(base_cfg, bench::BENCH_SEED);
    // Same simulation as bench_util's baselineIpc() (which now
    // delegates to a process-wide BaselineCache).
    EXPECT_DOUBLE_EQ(cache.ipc(w), bench::baselineIpc(w));
    EXPECT_DOUBLE_EQ(cache.ipc(w),
                     simulate(base_cfg, w.kernel, bench::BENCH_SEED).ipc);
}

TEST(ResultSet, NormalizationAndGeomean)
{
    std::vector<SweepCell> cells = expandSweep(microSpec());
    ExperimentRunner runner(2);
    BaselineCache base(baselineConfigFor(microSpec()),
                       bench::BENCH_SEED);
    ResultSet rs = runner.run(cells, &base);

    // Each row's normalized IPC is its IPC over its workload's
    // baseline IPC.
    for (const ResultRow &row : rs.rows()) {
        ASSERT_TRUE(row.normalized());
        const Workload &w = WorkloadSuite::byName(row.cell.workload);
        EXPECT_DOUBLE_EQ(row.baseline_ipc, base.ipc(w));
        EXPECT_DOUBLE_EQ(row.normalizedIpc(),
                         row.result.ipc / base.ipc(w));
    }

    // Geomean helper agrees with the bench_util definition.
    std::vector<double> ltrf =
            rs.normalizedByDesign(RfDesign::LTRF, 6);
    EXPECT_EQ(ltrf.size(), 2u);
    EXPECT_DOUBLE_EQ(rs.geomeanNormalized(RfDesign::LTRF, 6),
                     bench::geomean(ltrf));

    // BL on configuration #6 pays 5.3x latency with no cache: it
    // must not beat its own baseline.
    EXPECT_LT(rs.geomeanNormalized(RfDesign::BL, 6), 1.0);
}

TEST(ResultSet, GeomeanOfKnownValues)
{
    EXPECT_DOUBLE_EQ(ResultSet::geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(ResultSet::mean({2.0, 8.0}), 5.0);
    EXPECT_DOUBLE_EQ(ResultSet::geomean({}), 0.0);
}

TEST(ResultSet, FindTagged)
{
    ResultSet rs;
    ResultRow row;
    row.cell.workload = "bfs";
    row.cell.tag = "variant-a";
    row.result.ipc = 1.5;
    rs.add(row);
    EXPECT_DOUBLE_EQ(rs.findTagged("bfs", "variant-a").result.ipc, 1.5);
}
