/**
 * @file
 * SM pipeline tests: issue mechanics, scoreboarding, operand
 * collector pressure, and deactivation on misses.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "sim/gpu.hh"

using namespace ltrf;

namespace
{

SimConfig
oneSm(RfDesign d = RfDesign::BL)
{
    SimConfig cfg;
    cfg.num_sms = 1;
    cfg.design = d;
    return cfg;
}

} // namespace

TEST(Sm, DependentChainBoundByExecLatency)
{
    // A strictly serial FFMA chain cannot beat one instruction per
    // exec-latency cycles per warp, no matter the warp count.
    KernelBuilder b("chain");
    b.mov(0);
    b.mov(1);
    for (int i = 0; i < 30; i++)
        b.ffma(1, 0, 0, 1);       // reads its own previous result
    b.regDemand(256);             // a single resident warp
    Kernel k = b.build();

    SimConfig cfg = oneSm();
    SimResult r = simulate(cfg, k, 1);
    // 31 instructions, each waiting ~exec latency on the previous.
    EXPECT_GT(r.cycles, 30u * execLatency(Opcode::FFMA) * 8 / 10);
}

TEST(Sm, IndependentInstructionsPipeline)
{
    // Independent instructions from one warp issue back-to-back.
    KernelBuilder b("ilp");
    b.mov(0);
    for (int r = 1; r <= 8; r++)
        b.mov(r);
    for (int i = 0; i < 30; i++)
        b.ffma(1 + i % 8, 0, 0, 1 + i % 8);
    b.regDemand(256);
    Kernel k = b.build();

    SimConfig cfg = oneSm();
    SimResult dep_free = simulate(cfg, k, 1);
    // Far faster than the serial chain: at least 3 instrs per
    // exec-latency window. The 9 seeding movs are independent and
    // issue one per cycle on top of that.
    EXPECT_LT(dep_free.cycles, 9u + 30u * execLatency(Opcode::FFMA));
}

TEST(Sm, CollectorPressureThrottlesSlowRf)
{
    // With a slow MRF, collectors are held longer; fewer collectors
    // must reduce throughput.
    KernelBuilder b("pressure");
    b.mov(0).mov(1);
    b.beginLoop(50);
    for (int i = 0; i < 6; i++)
        b.ffma(2 + i, 0, 1, 2 + i);
    b.endLoop();
    Kernel k = b.build();

    SimConfig few = oneSm();
    few.mrf_latency_mult = 6.0;
    few.num_operand_collectors = 4;
    SimConfig many = oneSm();
    many.mrf_latency_mult = 6.0;
    many.num_operand_collectors = 16;
    EXPECT_LT(simulate(few, k).ipc, simulate(many, k).ipc);
}

TEST(Sm, L1MissDeactivatesAndReturns)
{
    // A kernel whose loads always miss forces warp switching; the
    // run must still complete with all instructions executed.
    KernelBuilder b("missy");
    MemStreamSpec ms;
    ms.working_set_lines = 4096;
    int s = b.stream(ms);
    b.mov(0);
    b.beginLoop(20);
    b.load(1, 0, s);
    b.iadd(0, 0, 1);   // does not depend on the load
    b.endLoop();
    Kernel k = b.build();

    SimConfig cfg = oneSm();
    Gpu gpu(cfg, k, 1);
    SimResult r = gpu.run();
    EXPECT_GT(gpu.sm(0).pipeStats().deactivations, 0u);
    EXPECT_EQ(r.instructions,
              static_cast<std::uint64_t>(
                      Gpu::residentWarps(cfg, k)) *
                      gpu.compiledWorkload().traces[0].real_instrs);
}

TEST(Sm, LoadConsumerWaitsForData)
{
    // The instruction reading a loaded register cannot issue before
    // the memory completion: cycles reflect at least one L1 latency
    // per iteration.
    KernelBuilder b("consume");
    MemStreamSpec ms;
    ms.working_set_lines = 2;  // hits after warmup
    int s = b.stream(ms);
    b.mov(0);
    b.beginLoop(20);
    b.load(1, 0, s);
    b.iadd(2, 1, 1);           // depends on the load
    b.endLoop();
    b.regDemand(256);          // single warp: no overlap
    Kernel k = b.build();

    SimConfig cfg = oneSm();
    SimResult r = simulate(cfg, k, 1);
    EXPECT_GT(r.cycles, 18u * cfg.l1d_hit_latency);
}

TEST(Sm, PrefetchBlocksOnlyTheIssuingWarp)
{
    // With several warps, one warp's PREFETCH stall is overlapped:
    // total cycles grow far less than the summed prefetch stalls.
    KernelBuilder b("overlap");
    MemStreamSpec ms;
    ms.working_set_lines = 16;
    int s = b.stream(ms);
    b.mov(0).mov(1);
    b.beginLoop(30);
    b.load(2, 0, s);
    for (int i = 0; i < 10; i++)
        b.ffma(3 + i % 10, 0, 1, 3 + i % 10);
    b.endLoop();
    b.regDemand(32);           // full occupancy
    Kernel k = b.build();

    SimConfig cfg = oneSm(RfDesign::LTRF);
    cfg.mrf_latency_mult = 6.0;
    SimResult r = simulate(cfg, k, 1);
    EXPECT_GT(r.prefetch_ops, 0u);
    EXPECT_GT(r.prefetch_stall_cycles, 0u);

    // Overlap check: with the full active pool, LTRF at 6x latency
    // stays close to the no-latency Ideal despite its warp-level
    // prefetch stalls.
    SimConfig ideal = oneSm(RfDesign::IDEAL);
    ideal.mrf_latency_mult = 6.0;
    SimResult ri = simulate(ideal, k, 1);
    EXPECT_GT(r.ipc, ri.ipc * 0.75);
}
