/**
 * @file
 * Observability-layer tests: the issue-slot accounting invariant
 * (instructions + prefetch slots + stalls == cycles x issue_width,
 * per SM and in aggregate), trace-sink JSON validity and bounding,
 * warn-once dedup, and the SimResult fields the report emits.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/json.hh"
#include "harness/result_set.hh"
#include "obs/stall.hh"
#include "obs/trace_sink.hh"
#include "sim/gpu.hh"
#include "workloads/workload.hh"

using namespace ltrf;

namespace
{

SimConfig
obsConfig(RfDesign d, bool skip_ahead)
{
    SimConfig cfg;
    cfg.num_sms = 2;
    cfg.design = d;
    cfg.mrf_latency_mult = 4.0;
    cfg.skip_ahead = skip_ahead;
    cfg.collect_stall_stats = true;
    return cfg;
}

} // namespace

/** Every design x fast-forward mode satisfies the slot account. */
class StallAccounting
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{};

TEST_P(StallAccounting, BreakdownSumsToIssueSlots)
{
    auto [di, skip] = GetParam();
    const RfDesign d = static_cast<RfDesign>(di);
    const Workload &w = WorkloadSuite::byName("bfs");
    SimResult r = simulate(obsConfig(d, skip), w.kernel, 11);

    ASSERT_TRUE(r.stall_collected);
    ASSERT_EQ(r.sm_stall.size(), 2u);
    const SimConfig cfg = obsConfig(d, skip);
    const std::uint64_t per_sm_slots =
            r.cycles * static_cast<std::uint64_t>(cfg.issue_width);
    obs::StallBreakdown sum;
    for (const obs::StallBreakdown &b : r.sm_stall) {
        EXPECT_EQ(b.issue_slots, per_sm_slots);
        EXPECT_EQ(b.accountedSlots(), b.issue_slots)
                << "per-SM slot account out of balance";
        sum += b;
    }
    EXPECT_EQ(r.stall_total.issue_slots, sum.issue_slots);
    EXPECT_EQ(r.stall_total.accountedSlots(),
              r.stall_total.issue_slots);
    EXPECT_EQ(r.stall_total.instructions, r.instructions);

    // LTRF and strand semantics always consume slots on triggered
    // prefetches; LTRF+ may skip every transfer on a light workload,
    // so only the non-prefetch designs get the exact-zero check.
    if (d == RfDesign::LTRF || d == RfDesign::LTRF_STRAND)
        EXPECT_GT(r.stall_total.prefetch_slots, 0u);
    else if (!usesPrefetch(d))
        EXPECT_EQ(r.stall_total.prefetch_slots, 0u);
}

INSTANTIATE_TEST_SUITE_P(
        Sweep, StallAccounting,
        ::testing::Combine(::testing::Range(0, 7),
                           ::testing::Bool()));

TEST(StallAccounting, CollectionDoesNotPerturbTheSimulation)
{
    const Workload &w = WorkloadSuite::byName("btree");
    SimConfig on = obsConfig(RfDesign::LTRF, true);
    SimConfig off = on;
    off.collect_stall_stats = false;
    SimResult a = simulate(on, w.kernel, 3);
    SimResult b = simulate(off, w.kernel, 3);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.main_accesses, b.main_accesses);
    EXPECT_EQ(a.prefetch_stall_cycles, b.prefetch_stall_cycles);
    EXPECT_FALSE(b.stall_collected);
    EXPECT_TRUE(b.stats_lines.empty());
    EXPECT_TRUE(b.sm_stall.empty());
}

TEST(StallAccounting, StatsLinesMatchTheBreakdown)
{
    const Workload &w = WorkloadSuite::byName("bfs");
    SimResult r = simulate(obsConfig(RfDesign::LTRF, true), w.kernel, 5);
    ASSERT_FALSE(r.stats_lines.empty());
    auto value = [&](const std::string &name) {
        for (const StatLine &l : r.stats_lines)
            if (l.name == name)
                return l.value;
        ADD_FAILURE() << "missing stat line " << name;
        return std::uint64_t{0};
    };
    for (int s = 0; s < 2; s++) {
        const std::string p = "sm" + std::to_string(s);
        const obs::StallBreakdown &b =
                r.sm_stall[static_cast<std::size_t>(s)];
        EXPECT_EQ(value(p + ".issue_slots"), b.issue_slots);
        EXPECT_EQ(value(p + ".instructions"), b.instructions);
        EXPECT_EQ(value(p + ".prefetch_slots"), b.prefetch_slots);
        std::uint64_t stall_sum = 0;
        for (int c = 0; c < obs::NUM_STALL_CAUSES; c++)
            stall_sum += value(p + ".stall." +
                               obs::stallCauseName(static_cast<
                                               obs::StallCause>(c)));
        EXPECT_EQ(stall_sum, b.stallSlots());
    }
}

TEST(TraceSink, EmitsParseableTraceEventJson)
{
    obs::TraceSink sink;
    sink.processName(0, "proc \"zero\"");    // exercises escaping
    sink.threadName(0, 1, "lane");
    sink.complete("span", 0, 1, 10, 5);
    sink.instant("mark", 0, 1, 12);
    sink.counter("depth", 0, 13, 3);
    const harness::Json j = harness::Json::parse(sink.toJsonText());
    const harness::Json &ev = j.at("traceEvents");
    ASSERT_EQ(ev.size(), 5u);
    EXPECT_EQ(j.at("otherData").numberOr("dropped_events", -1), 0.0);
    // Spans carry their duration; instants their scope.
    bool saw_span = false;
    for (std::size_t i = 0; i < ev.size(); i++) {
        const harness::Json &e = ev.at(i);
        if (e.at("ph").asString() == "X") {
            EXPECT_EQ(e.numberOr("dur", -1), 5.0);
            EXPECT_EQ(e.at("name").asString(), "span");
            saw_span = true;
        }
    }
    EXPECT_TRUE(saw_span);
}

TEST(TraceSink, BoundsEventCountAndCountsDrops)
{
    obs::TraceSink sink(2);
    sink.complete("a", 0, 0, 0, 1);
    sink.complete("b", 0, 0, 1, 1);
    sink.complete("c", 0, 0, 2, 1);    // past the cap: dropped
    sink.processName(0, "p");          // metadata is never dropped
    EXPECT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.droppedCount(), 1u);
    const harness::Json j = harness::Json::parse(sink.toJsonText());
    EXPECT_EQ(j.at("otherData").numberOr("dropped_events", -1), 1.0);
    EXPECT_EQ(j.at("traceEvents").size(), 3u);    // 2 events + meta
}

TEST(TraceSink, WorkerTidIsStablePerThread)
{
    obs::TraceSink sink;
    const int a = sink.workerTid();
    EXPECT_EQ(sink.workerTid(), a);
}

TEST(TraceSink, SimulationTimelineLoads)
{
    obs::TraceSink sink;
    SimConfig cfg = obsConfig(RfDesign::LTRF, true);
    cfg.trace = &sink;
    const Workload &w = WorkloadSuite::byName("bfs");
    simulate(cfg, w.kernel, 2);
    EXPECT_GT(sink.size(), 0u);
    const harness::Json j = harness::Json::parse(sink.toJsonText());
    EXPECT_GT(j.at("traceEvents").size(), 0u);
}

TEST(Log, WarnOnceDedupsPerCallSite)
{
    detail::resetWarnOnce();
    ::testing::internal::CaptureStderr();
    for (int i = 0; i < 3; i++)
        ltrf_warn_once("repeated warning %d", 7);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("repeated warning 7"), std::string::npos);
    EXPECT_EQ(err.find("repeated warning 7"),
              err.rfind("repeated warning 7"))
            << "warn-once printed more than once:\n"
            << err;
    detail::resetWarnOnce();
}

TEST(ResultSet, ReportCarriesTheSurfacedSimResultFields)
{
    // The fields the observability issue surfaces (prefetch stall
    // cycles, WCB accesses, transferred registers) ride in the
    // report cells; cross-check the emitted JSON against the raw
    // SimResult.
    const Workload &w = WorkloadSuite::byName("bfs");
    SimConfig cfg;
    cfg.num_sms = 2;
    cfg.design = RfDesign::LTRF;
    cfg.mrf_latency_mult = 4.0;
    SimResult r = simulate(cfg, w.kernel, 11);
    EXPECT_GT(r.prefetch_stall_cycles, 0u);
    EXPECT_GT(r.xfer_regs, 0u);

    harness::ResultRow row;
    row.cell.workload = w.name;
    row.cell.config = cfg;
    row.cell.design = cfg.design;
    row.result = r;
    harness::ResultSet rs;
    rs.add(row);
    const harness::Json cell = rs.toJson().at("cells").at(0);
    EXPECT_EQ(cell.numberOr("prefetch_stall_cycles", -1),
              static_cast<double>(r.prefetch_stall_cycles));
    EXPECT_EQ(cell.numberOr("wcb_accesses", -1),
              static_cast<double>(r.wcb_accesses));
    EXPECT_EQ(cell.numberOr("xfer_regs", -1),
              static_cast<double>(r.xfer_regs));
}
