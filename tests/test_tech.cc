/**
 * @file
 * Tests for the Table 2 configuration table and the energy model.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "tech/energy_model.hh"
#include "tech/rf_config.hh"

using namespace ltrf;

TEST(RfConfigTable, MatchesPaperTable2)
{
    ASSERT_EQ(rfConfigTable().size(), 7u);
    const RfConfig &c1 = rfConfig(1);
    EXPECT_EQ(c1.tech, CellTech::HP_SRAM);
    EXPECT_DOUBLE_EQ(c1.latency, 1.0);
    EXPECT_DOUBLE_EQ(c1.capacity, 1.0);

    const RfConfig &c6 = rfConfig(6);
    EXPECT_EQ(c6.tech, CellTech::TFET_SRAM);
    EXPECT_DOUBLE_EQ(c6.capacity, 8.0);
    EXPECT_DOUBLE_EQ(c6.power, 1.05);
    EXPECT_DOUBLE_EQ(c6.latency, 5.3);

    const RfConfig &c7 = rfConfig(7);
    EXPECT_EQ(c7.tech, CellTech::DWM);
    EXPECT_DOUBLE_EQ(c7.area, 0.25);
    EXPECT_DOUBLE_EQ(c7.cap_per_area, 32.0);
    EXPECT_DOUBLE_EQ(c7.latency, 6.3);
}

TEST(RfConfigTable, LatencyGrowsWithDensityTradeoff)
{
    // The paper's key observation: denser/cheaper designs are slower.
    EXPECT_LT(rfConfig(1).latency, rfConfig(4).latency);
    EXPECT_LT(rfConfig(4).latency, rfConfig(6).latency);
    EXPECT_LT(rfConfig(6).latency, rfConfig(7).latency);
    EXPECT_GT(rfConfig(7).cap_per_power, rfConfig(1).cap_per_power);
}

TEST(RfConfigTable, ApplyToSimConfig)
{
    SimConfig cfg;
    applyRfConfig(cfg, rfConfig(7));
    EXPECT_EQ(cfg.rf_capacity_mult, 8);
    EXPECT_DOUBLE_EQ(cfg.mrf_latency_mult, 6.3);
    EXPECT_EQ(cfg.num_mrf_banks, 128);

    applyRfConfig(cfg, rfConfig(2));
    EXPECT_EQ(cfg.num_mrf_banks, 16);   // 8x bank *size*, not count
}

TEST(GenerationTable, PascalRegisterFileDominates)
{
    const auto &gens = generationMemoryTable();
    ASSERT_EQ(gens.size(), 4u);
    const GenerationMemory &pascal = gens.back();
    EXPECT_STREQ(pascal.name, "Pascal");
    EXPECT_DOUBLE_EQ(pascal.rf_mb, 14.3);
    EXPECT_GT(pascal.rfFraction(), 0.6);   // ">60% of on-chip storage"
    // Register file capacity grows monotonically per generation.
    for (size_t i = 1; i < gens.size(); i++)
        EXPECT_GT(gens[i].rf_mb, gens[i - 1].rf_mb);
}

TEST(EnergyModel, BaselineNormalizesToOne)
{
    RfActivity act;
    act.main_accesses_per_cycle = 3.0;
    double p = rfPower(rfConfig(1), act, false, 3.0);
    EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(EnergyModel, PowerScalesWithActivity)
{
    RfActivity half;
    half.main_accesses_per_cycle = 1.5;
    double p = rfPower(rfConfig(1), half, false, 3.0);
    // Leakage fraction + half the dynamic share.
    EXPECT_NEAR(p, 0.4 + 0.6 / 2, 1e-9);
}

TEST(EnergyModel, FewerMainAccessesCutDwmPower)
{
    // LTRF's raison d'etre for Figure 10: 4-6x fewer main RF
    // accesses on configuration #7 cuts power well below baseline
    // even after paying for cache, WCB, and transfers.
    RfActivity bl;
    bl.main_accesses_per_cycle = 3.0;
    RfActivity ltrf;
    ltrf.main_accesses_per_cycle = 0.6;   // 5x reduction
    ltrf.cache_accesses_per_cycle = 3.0;
    ltrf.wcb_accesses_per_cycle = 2.0;
    ltrf.xfer_regs_per_cycle = 0.5;
    double p_bl = rfPower(rfConfig(7), bl, false, 3.0);
    double p_ltrf = rfPower(rfConfig(7), ltrf, true, 3.0);
    EXPECT_LT(p_ltrf, p_bl);
    EXPECT_LT(p_ltrf, 1.0);
}

TEST(EnergyModel, CacheStructuresAddPower)
{
    RfActivity act;
    act.main_accesses_per_cycle = 1.0;
    double without = rfPower(rfConfig(7), act, false, 3.0);
    double with = rfPower(rfConfig(7), act, true, 3.0);
    EXPECT_GT(with, without);
}

TEST(EnergyModel, LeakageFractionsOrdered)
{
    // HP SRAM leaks the most; the emerging technologies exist
    // because their standby power is tiny.
    EXPECT_GT(leakageFraction(CellTech::HP_SRAM),
              leakageFraction(CellTech::LSTP_SRAM));
    EXPECT_GT(leakageFraction(CellTech::LSTP_SRAM),
              leakageFraction(CellTech::TFET_SRAM));
    EXPECT_GT(leakageFraction(CellTech::TFET_SRAM),
              leakageFraction(CellTech::DWM));
}
