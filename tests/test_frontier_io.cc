/**
 * @file
 * Round-trip tests for frontier persistence: a DseResult report
 * parses back into the exact same points and objectives
 * (ParetoFrontier -> JSON -> parse -> ParetoFrontier is lossless),
 * resuming a finished search reproduces the saved frontier without
 * simulating anything, and malformed or mismatched reports are
 * rejected.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "dse/explorer.hh"
#include "dse/frontier_io.hh"
#include "harness/emit.hh"
#include "harness/json.hh"

using namespace ltrf;
using namespace ltrf::dse;

namespace
{

/** A 4-point space that evaluates in ~a second. */
DesignSpace
microSpace()
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM};
    s.banks = {1, 8};
    s.bank_sizes = {1};
    s.networks = {};    // auto
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};
    return s;
}

ExploreOptions
microOptions()
{
    ExploreOptions opt;
    opt.workloads = {"bfs", "btree"};
    opt.num_sms = 1;
    opt.seed = 2018;
    return opt;
}

/** One finished grid search over the micro space, cached: every
 *  test round-trips the same report. */
const DseResult &
gridResult()
{
    static const DseResult res = [] {
        ExploreOptions opt = microOptions();
        opt.strategy = Strategy::GRID;
        return explore(microSpace(), opt);
    }();
    return res;
}

} // namespace

TEST(FrontierIo, ReportParsesBackLossless)
{
    const DseResult &res = gridResult();
    const FrontierSeed seed = parseDseReport(res.toJson());

    ASSERT_EQ(seed.points.size(), res.evaluated.size());
    ASSERT_EQ(seed.workloads, res.workloads);
    EXPECT_EQ(seed.strategy, "grid");
    EXPECT_EQ(seed.seed, res.seed);
    EXPECT_EQ(seed.num_sms, res.num_sms);
    for (std::size_t i = 0; i < seed.points.size(); i++) {
        const SeedPoint &sp = seed.points[i];
        const PointResult &pr = res.evaluated[i];
        EXPECT_EQ(sp.point.key(), pr.point.key());
        EXPECT_EQ(sp.point, pr.point);
        // Bit-exact: the writer's %.17g numbers round-trip doubles.
        EXPECT_EQ(sp.obj.ipc, pr.obj.ipc);
        EXPECT_EQ(sp.obj.energy, pr.obj.energy);
        EXPECT_EQ(sp.obj.area, pr.obj.area);
        EXPECT_EQ(sp.on_frontier, pr.on_frontier);
    }
}

TEST(FrontierIo, RebuiltFrontierMatchesOriginal)
{
    const DseResult &res = gridResult();
    const FrontierSeed seed = parseDseReport(res.toJson());

    // Re-offer every parsed point in evaluation order: the frontier
    // that emerges must be the one the report recorded, member for
    // member.
    ParetoFrontier rebuilt;
    for (std::size_t i = 0; i < seed.points.size(); i++)
        rebuilt.insert(static_cast<int>(i), seed.points[i].obj);
    ASSERT_EQ(rebuilt.size(), res.frontier.size());
    for (std::size_t k = 0; k < rebuilt.size(); k++) {
        EXPECT_EQ(rebuilt.members()[k].point_index, res.frontier[k]);
        const Objectives &a = rebuilt.members()[k].obj;
        const Objectives &b =
                res.evaluated[static_cast<std::size_t>(
                                      res.frontier[k])]
                        .obj;
        EXPECT_EQ(a.ipc, b.ipc);
        EXPECT_EQ(a.energy, b.energy);
        EXPECT_EQ(a.area, b.area);
    }
}

TEST(FrontierIo, FileRoundTrip)
{
    const DseResult &res = gridResult();
    const std::string path =
            testing::TempDir() + "/ltrf_frontier_io_roundtrip.json";
    harness::writeTextFile(path,
                           res.toJson().dump(2) + "\n");
    const FrontierSeed seed = loadFrontierFile(path);
    std::remove(path.c_str());

    ASSERT_EQ(seed.points.size(), res.evaluated.size());
    for (std::size_t i = 0; i < seed.points.size(); i++) {
        EXPECT_EQ(seed.points[i].point, res.evaluated[i].point);
        EXPECT_EQ(seed.points[i].obj.ipc, res.evaluated[i].obj.ipc);
    }
}

TEST(FrontierIo, ResumingAFinishedSearchReproducesTheFrontier)
{
    const DseResult &res = gridResult();
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.generations = 0;    // pure replay
    opt.resume = parseDseReport(res.toJson());

    const DseResult replay = explore(microSpace(), opt);

    // Nothing simulated — not even baselines.
    EXPECT_EQ(replay.sim_cells, 0u);
    EXPECT_EQ(replay.resumed, res.evaluated.size());
    ASSERT_EQ(replay.evaluated.size(), res.evaluated.size());
    for (const PointResult &pr : replay.evaluated)
        EXPECT_TRUE(pr.resumed);

    // The saved frontier comes back identically, keys and order.
    ASSERT_EQ(replay.frontier.size(), res.frontier.size());
    for (std::size_t k = 0; k < replay.frontier.size(); k++)
        EXPECT_EQ(replay.evaluated[static_cast<std::size_t>(
                                           replay.frontier[k])]
                          .point.key(),
                  res.evaluated[static_cast<std::size_t>(
                                        res.frontier[k])]
                          .point.key());

    // And the replayed report's hypervolume matches the original's.
    ASSERT_FALSE(replay.progress.empty());
    EXPECT_EQ(replay.hv, res.hv);
}

TEST(FrontierIo, OutOfSpaceResumedPointsDoNotExhaustSampling)
{
    // Resume a 6-point report into a different 6-point space that
    // shares only the two c16 HP points: the four unseen in-space
    // points must still be sampled and evaluated — resumed keys
    // from the wider space must not count toward the exhaustion
    // test.
    DesignSpace wide = microSpace();
    wide.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM,
                  CellTech::DWM};
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    const DseResult saved = explore(wide, opt);

    DesignSpace narrow = microSpace();
    narrow.techs = {CellTech::HP_SRAM};
    narrow.cache_kbs = {8, 16, 32};
    ASSERT_EQ(narrow.size(), 6u);

    ExploreOptions resume_opt = microOptions();
    resume_opt.strategy = Strategy::RANDOM;
    resume_opt.budget = 4;
    resume_opt.prune = 0;    // count evaluations, not prunes
    resume_opt.resume = parseDseReport(saved.toJson());
    const DseResult res = explore(narrow, resume_opt);

    std::size_t fresh = 0;
    for (const PointResult &pr : res.evaluated)
        if (!pr.resumed) {
            fresh++;
            EXPECT_TRUE(narrow.contains(pr.point));
        }
    EXPECT_EQ(fresh, 4u);
    EXPECT_EQ(res.resumed, 6u);
}

TEST(FrontierIo, ResumedPointsAreNotReevaluated)
{
    const DseResult &res = gridResult();
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::RANDOM;
    opt.budget = 8;    // > space size
    opt.resume = parseDseReport(res.toJson());

    // Every point of the 4-point space is in the resume seed, so
    // random sampling finds nothing new to run.
    const DseResult again = explore(microSpace(), opt);
    EXPECT_EQ(again.evaluated.size(), 4u);
    EXPECT_EQ(again.sim_cells, 0u);
    for (const PointResult &pr : again.evaluated)
        EXPECT_TRUE(pr.resumed);
}

TEST(FrontierIo, LegacySevenAxisKeysResumeIntoTheWidenedSpace)
{
    // A pre-widening (schema v2) report carries 7-segment keys; the
    // missing registry axes take their auto derivation (interval =
    // the per-warp cache partition, exactly what v2 simulated) or
    // the DesignPoint default.
    const harness::Json root = harness::Json::parse(
            "{\"schema\": \"ltrf.dse.v2\", "
            "\"strategy\": \"grid\", "
            "\"workloads\": [\"bfs\", \"btree\"], "
            "\"num_sms\": 1, \"seed\": \"2018\", "
            "\"points\": ["
            "{\"key\": \"hp/b1/z1/xbar/c16/interval/w8\", "
            "\"ipc\": 1.0, \"energy\": 0.8, \"total_area\": 1.0, "
            "\"frontier\": true}, "
            "{\"key\": \"tfet/b8/z1/fbfly/c16/interval/w8\", "
            "\"ipc\": 1.1, \"energy\": 0.9, \"total_area\": 1.2, "
            "\"frontier\": true}], "
            "\"frontier\": [\"a\", \"b\"]}");
    const FrontierSeed seed = parseDseReport(root);
    ASSERT_EQ(seed.points.size(), 2u);
    const DesignPoint &p = seed.points[0].point;
    EXPECT_EQ(p.regs_per_interval, 16);    // 16KB / 8 warps
    EXPECT_EQ(p.num_operand_collectors, 8);
    EXPECT_EQ(p.dram_service_cycles, 1);
    EXPECT_EQ(p.key(), "hp/b1/z1/xbar/c16/interval/w8/i16/o8/d1");

    // And it replays cleanly into the widened 10-axis space.
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.generations = 0;
    opt.resume = seed;
    const DseResult replay = explore(microSpace(), opt);
    EXPECT_EQ(replay.sim_cells, 0u);
    EXPECT_EQ(replay.resumed, 2u);
    for (const PointResult &pr : replay.evaluated)
        EXPECT_TRUE(microSpace().contains(pr.point))
                << pr.point.key();
}

TEST(FrontierIo, LegacyV3ReportsResumeWithoutRungCounters)
{
    // A pre-rung (schema v3) report: full 10-axis keys, no
    // rungs/rung_screened/rung_promoted arrays. Resume ignores the
    // missing counters and replays the points untouched.
    const harness::Json root = harness::Json::parse(
            "{\"schema\": \"ltrf.dse.v3\", "
            "\"strategy\": \"random\", "
            "\"workloads\": [\"bfs\", \"btree\"], "
            "\"num_sms\": 1, \"seed\": \"2018\", "
            "\"points\": ["
            "{\"key\": \"hp/b1/z1/xbar/c16/interval/w8/i16/o8/d1\", "
            "\"ipc\": 1.0, \"energy\": 0.8, \"total_area\": 1.0, "
            "\"frontier\": true}], "
            "\"frontier\": [\"a\"]}");
    const FrontierSeed seed = parseDseReport(root);
    ASSERT_EQ(seed.points.size(), 1u);

    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.generations = 0;
    opt.resume = seed;
    const DseResult replay = explore(microSpace(), opt);
    EXPECT_EQ(replay.sim_cells, 0u);
    EXPECT_EQ(replay.resumed, 1u);
    // The re-serialized report carries the current schema.
    EXPECT_NE(replay.toJson().dump().find("ltrf.dse.v4"),
              std::string::npos);
}

TEST(FrontierIoDeathTest, RejectsUnknownSchema)
{
    harness::Json j = harness::Json::object();
    j.set("schema", "ltrf.sweep.v1");
    EXPECT_EXIT(parseDseReport(j), testing::ExitedWithCode(1),
                "not an ltrf_dse report");
}

TEST(FrontierIoDeathTest, RejectsInconsistentFrontierViews)
{
    DseResult res = gridResult();    // copy
    ASSERT_FALSE(res.frontier.empty());
    res.evaluated[static_cast<std::size_t>(res.frontier[0])]
            .on_frontier = false;
    EXPECT_EXIT(parseDseReport(res.toJson()),
                testing::ExitedWithCode(1), "inconsistent");
}

TEST(FrontierIoDeathTest, RejectsMismatchedWorkloadSuite)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.generations = 0;
    opt.resume = parseDseReport(gridResult().toJson());
    opt.workloads = {"bfs"};    // saved report used {bfs, btree}
    EXPECT_EXIT(explore(microSpace(), opt),
                testing::ExitedWithCode(1),
                "different workload suite");
}

TEST(FrontierIoDeathTest, RejectsMismatchedSmCount)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.generations = 0;
    opt.resume = parseDseReport(gridResult().toJson());
    opt.num_sms = 2;    // saved report ran at 1 SM
    EXPECT_EXIT(explore(microSpace(), opt),
                testing::ExitedWithCode(1), "measured at 1 SMs");
}

TEST(FrontierIoDeathTest, RejectsMismatchedWorkloadSeed)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::EVOLVE;
    opt.generations = 0;
    opt.resume = parseDseReport(gridResult().toJson());
    opt.seed = 7;    // saved report used seed 2018
    EXPECT_EXIT(explore(microSpace(), opt),
                testing::ExitedWithCode(1), "workload seed 2018");
}

TEST(FrontierIoDeathTest, RejectsMalformedPointKeys)
{
    harness::Json j = gridResult().toJson();
    // Rebuild with a corrupted key: parse the dumped text so we can
    // edit a nested value without mutating the cached result.
    harness::Json root = harness::Json::parse(j.dump());
    harness::Json pts = harness::Json::array();
    harness::Json bad = harness::Json::object();
    bad.set("key", "tfet/b8/z1");    // truncated
    bad.set("ipc", 1.0);
    bad.set("energy", 1.0);
    bad.set("total_area", 1.0);
    pts.push(std::move(bad));
    root.set("points", std::move(pts));
    root.set("frontier", harness::Json::array());
    EXPECT_EXIT(parseDseReport(root), testing::ExitedWithCode(1),
                "malformed design point key");
}

TEST(FrontierIoDeathTest, RejectsNonFiniteObjectives)
{
    // 1e999 overflows strtod to +Inf during parse; resumed
    // objectives bypass evaluation, so the parser must reject it.
    const harness::Json root = harness::Json::parse(
            "{\"schema\": \"ltrf.dse.v2\", \"points\": "
            "[{\"key\": \"hp/b1/z1/xbar/c16/interval/w8\", "
            "\"ipc\": 1e999, \"energy\": 1.0, "
            "\"total_area\": 1.0}]}");
    EXPECT_EXIT(parseDseReport(root), testing::ExitedWithCode(1),
                "non-finite objectives");
}

TEST(FrontierIoDeathTest, RejectsMalformedSavedSeed)
{
    harness::Json root = harness::Json::parse(
            gridResult().toJson().dump());
    root.set("seed", "20x18");
    EXPECT_EXIT(parseDseReport(root), testing::ExitedWithCode(1),
                "malformed seed");
}

TEST(FrontierIoDeathTest, RejectsOutOfRangeAxisValues)
{
    // A hand-edited key with a non-power-of-two bank count must die
    // with a clean fatal() at parse time, not an ltrf_assert panic
    // deep inside the RF model during resume seeding.
    harness::Json root = harness::Json::parse(
            gridResult().toJson().dump());
    harness::Json pts = harness::Json::array();
    harness::Json bad = harness::Json::object();
    bad.set("key", "hp/b3/z1/xbar/c16/interval/w8");
    bad.set("ipc", 1.0);
    bad.set("energy", 1.0);
    bad.set("total_area", 1.0);
    pts.push(std::move(bad));
    root.set("points", std::move(pts));
    root.set("frontier", harness::Json::array());
    EXPECT_EXIT(parseDseReport(root), testing::ExitedWithCode(1),
                "power of two");
}
