/**
 * @file
 * Tests for strand formation (the SHRF / LTRF(strand) baselines,
 * paper section 6.6).
 */

#include <gtest/gtest.h>

#include "compiler/register_interval.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

TEST(Strand, SplitsAfterGlobalLoad)
{
    // A global load mid-block terminates the strand; the remainder
    // of the block must land in a different strand.
    KernelBuilder b("memsplit");
    b.mov(0);
    b.load(1, 0, 0);
    b.iadd(2, 1, 1);
    Kernel k = b.build();
    IntervalAnalysis ia = formStrands(k, 16);
    EXPECT_GT(ia.intervals.size(), 1u);
    // The instruction after the load is in a different strand.
    // Find the block holding the IADD in the transformed kernel.
    IntervalId load_itv = UNKNOWN_INTERVAL, add_itv = UNKNOWN_INTERVAL;
    for (const auto &bb : ia.kernel.blocks) {
        for (const auto &in : bb.instrs) {
            if (in.op == Opcode::LD_GLOBAL)
                load_itv = ia.block_interval[bb.id];
            if (in.op == Opcode::IADD)
                add_itv = ia.block_interval[bb.id];
        }
    }
    ASSERT_NE(load_itv, UNKNOWN_INTERVAL);
    ASSERT_NE(add_itv, UNKNOWN_INTERVAL);
    EXPECT_NE(load_itv, add_itv);
}

TEST(Strand, SharedMemoryDoesNotSplit)
{
    // Shared-memory accesses have fixed latency; they are not
    // long/variable-latency and must not terminate a strand.
    KernelBuilder b("shared");
    b.mov(0);
    b.sharedLoad(1, 0);
    b.iadd(2, 1, 1);
    Kernel k = b.build();
    IntervalAnalysis ia = formStrands(k, 16);
    EXPECT_EQ(ia.intervals.size(), 1u);
}

TEST(Strand, MoreStrandsThanIntervals)
{
    // On a loop with memory accesses, strands are strictly more
    // numerous than register-intervals (the paper's reason LTRF
    // (strand) tolerates less latency, section 6.6).
    KernelBuilder b("loopy");
    b.mov(0);
    b.beginLoop(8);
    b.load(1, 0, 0);
    b.ffma(2, 1, 1, 2);
    b.store(2, 0, 0);
    b.endLoop();
    Kernel k = b.build();

    size_t strands = formStrands(k, 16).intervals.size();
    FormationOptions o;
    o.max_regs = 16;
    size_t intervals = formRegisterIntervals(k, o).intervals.size();
    EXPECT_GT(strands, intervals);
}

TEST(Strand, WorkingSetsRespectN)
{
    KernelBuilder b("k");
    for (int i = 0; i < 30; i += 3) {
        b.iadd(i + 2, i, i + 1);
        if (i % 6 == 0)
            b.load(i, i + 1, 0);
    }
    Kernel k = b.build();
    for (int n : {8, 16}) {
        IntervalAnalysis ia = formStrands(k, n);
        ia.validate(n);
        for (const auto &iv : ia.intervals)
            EXPECT_LE(iv.working_set.count(), n);
    }
}

TEST(Strand, NoPass2Merging)
{
    KernelBuilder b("k");
    b.mov(0);
    b.beginLoop(4);
    b.iadd(1, 0, 1);
    b.endLoop();
    Kernel k = b.build();
    IntervalAnalysis ia = formStrands(k, 16);
    EXPECT_EQ(ia.pass2_rounds, 0);
    EXPECT_EQ(static_cast<int>(ia.intervals.size()),
              ia.intervals_after_pass1);
}
