/**
 * @file
 * Tests for the L1D -> LLC -> DRAM hierarchy glue.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"

using namespace ltrf;

namespace
{

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.num_sms = 2;
    return cfg;
}

} // namespace

TEST(MemSystem, L1HitIsFast)
{
    SimConfig cfg = smallConfig();
    MemSystem mem(cfg);
    mem.accessGlobal(0, 42, false, 0);          // cold
    MemAccessResult r = mem.accessGlobal(0, 42, false, 1000);
    EXPECT_TRUE(r.l1_hit);
    EXPECT_EQ(r.done, 1000u + cfg.l1d_hit_latency);
}

TEST(MemSystem, LlcHitCostsLlcLatency)
{
    SimConfig cfg = smallConfig();
    MemSystem mem(cfg);
    mem.accessGlobal(0, 7, false, 0);           // fills L1(0) and LLC
    // Other SM misses its own L1 but hits the shared LLC.
    MemAccessResult r = mem.accessGlobal(1, 7, false, 5000);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_TRUE(r.llc_hit);
    EXPECT_EQ(r.done, 5000u + cfg.l1d_hit_latency + cfg.llc_latency);
}

TEST(MemSystem, ColdMissGoesToDram)
{
    SimConfig cfg = smallConfig();
    MemSystem mem(cfg);
    MemAccessResult r = mem.accessGlobal(0, 99, false, 0);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_FALSE(r.llc_hit);
    EXPECT_GT(r.done, static_cast<Cycle>(cfg.l1d_hit_latency +
                                         cfg.llc_latency));
    EXPECT_EQ(mem.dram().requests(), 1u);
}

TEST(MemSystem, PerSmL1sArePrivate)
{
    SimConfig cfg = smallConfig();
    MemSystem mem(cfg);
    mem.accessGlobal(0, 5, false, 0);
    EXPECT_TRUE(mem.accessGlobal(0, 5, false, 100).l1_hit);
    EXPECT_FALSE(mem.accessGlobal(1, 5, false, 100).l1_hit);
}

TEST(MemSystem, DramOrderPreservedPerBank)
{
    SimConfig cfg = smallConfig();
    MemSystem mem(cfg);
    Cycle a = mem.accessGlobal(0, 1000, false, 0).done;
    Cycle b = mem.accessGlobal(1, 1000 + 16 * cfg.num_dram_banks,
                               false, 0).done;
    // Same bank (same row index modulo banks): strictly ordered.
    EXPECT_GT(b, a);
}

TEST(MemSystem, HitRateAggregation)
{
    SimConfig cfg = smallConfig();
    MemSystem mem(cfg);
    mem.accessGlobal(0, 1, false, 0);
    mem.accessGlobal(0, 1, false, 10);
    mem.accessGlobal(1, 2, false, 0);
    EXPECT_NEAR(mem.l1dHitRate(), 1.0 / 3.0, 1e-9);
}

TEST(MemSystem, DramBandwidthScalesWithSmCount)
{
    // Per-SM bandwidth share is held constant: fewer simulated SMs
    // get proportionally slower DRAM service.
    SimConfig four = smallConfig();
    four.num_sms = 4;
    SimConfig eight = smallConfig();
    eight.num_sms = 8;
    MemSystem m4(four), m8(eight);
    // Saturate both with back-to-back same-row requests and compare
    // the completion of the last one.
    Cycle last4 = 0, last8 = 0;
    for (int i = 0; i < 64; i++) {
        last4 = m4.accessGlobal(0, static_cast<std::uint64_t>(i) * 997,
                                false, 0).done;
        last8 = m8.accessGlobal(0, static_cast<std::uint64_t>(i) * 997,
                                false, 0).done;
    }
    EXPECT_GT(last4, last8);
}
