/**
 * @file
 * Tests for the persistent content-addressed cell store
 * (dse/cell_store) and its explorer integration: exact result
 * round-trips, corruption-tolerant loads, sim-version invalidation,
 * concurrent writers on one directory, and the headline property —
 * a repeated exploration against a warm store simulates zero cells
 * and serializes a byte-identical report.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/cell_store.hh"
#include "dse/explorer.hh"
#include "dse/space.hh"
#include "sim/gpu.hh"

using namespace ltrf;
using namespace ltrf::dse;

namespace
{

namespace fs = std::filesystem;

/** A fresh per-test directory under the system temp root. */
class CellStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (fs::temp_directory_path() /
               ("ltrf_cell_store_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()))
                      .string();
        fs::remove_all(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

SimResult
sampleResult()
{
    SimResult r;
    r.workload = "bfs";
    r.cycles = 123456;
    r.instructions = 654321;
    r.ipc = 1.2345678901234567;
    r.resident_warps = 12;
    r.main_accesses = 1111;
    r.cache_accesses = 2222;
    r.wcb_accesses = 3333;
    r.xfer_regs = 4444;
    r.prefetch_ops = 555;
    r.writeback_regs = 666;
    r.prefetch_stall_cycles = 77;
    r.cache_hit_rate = 0.875;
    r.l1d_hit_rate = 0.662607015;
    r.activity.main_accesses_per_cycle = 3.217;
    r.activity.cache_accesses_per_cycle = 1.414213562373095;
    r.activity.wcb_accesses_per_cycle = 0.301029995663981;
    r.activity.xfer_regs_per_cycle = 0.0001;
    return r;
}

void
expectSame(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    // Exact equality on purpose: the JSON number codec round-trips
    // doubles bit-for-bit (%.17g), which is what lets a loaded cell
    // fold into a byte-identical report.
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.resident_warps, b.resident_warps);
    EXPECT_EQ(a.main_accesses, b.main_accesses);
    EXPECT_EQ(a.cache_accesses, b.cache_accesses);
    EXPECT_EQ(a.wcb_accesses, b.wcb_accesses);
    EXPECT_EQ(a.xfer_regs, b.xfer_regs);
    EXPECT_EQ(a.prefetch_ops, b.prefetch_ops);
    EXPECT_EQ(a.writeback_regs, b.writeback_regs);
    EXPECT_EQ(a.prefetch_stall_cycles, b.prefetch_stall_cycles);
    EXPECT_EQ(a.cache_hit_rate, b.cache_hit_rate);
    EXPECT_EQ(a.l1d_hit_rate, b.l1d_hit_rate);
    EXPECT_EQ(a.activity.main_accesses_per_cycle,
              b.activity.main_accesses_per_cycle);
    EXPECT_EQ(a.activity.cache_accesses_per_cycle,
              b.activity.cache_accesses_per_cycle);
    EXPECT_EQ(a.activity.wcb_accesses_per_cycle,
              b.activity.wcb_accesses_per_cycle);
    EXPECT_EQ(a.activity.xfer_regs_per_cycle,
              b.activity.xfer_regs_per_cycle);
}

constexpr const char *KEY = "tfet/b8/z1/fbfly/c16/interval/w8/i16/o8/d1";

} // namespace

TEST_F(CellStoreTest, RoundTripsEveryField)
{
    CellStore store(dir, "sms=2|seed=7");
    const SimResult in = sampleResult();

    SimResult out;
    EXPECT_FALSE(store.load(KEY, "bfs", out));    // cold: miss
    store.store(KEY, "bfs", in);
    ASSERT_TRUE(store.load(KEY, "bfs", out));
    expectSame(in, out);
    EXPECT_EQ(out.workload, "bfs");

    const CellStore::Counts c = store.counts();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.stores, 1u);
    EXPECT_EQ(c.errors, 0u);
}

TEST_F(CellStoreTest, DistinctCellsGetDistinctEntries)
{
    CellStore store(dir, "sms=2|seed=7");
    EXPECT_NE(store.entryPath(KEY, "bfs"), store.entryPath(KEY, "btree"));
    EXPECT_NE(store.entryPath(KEY, "bfs"),
              store.entryPath("hp/b1/z1/xbar/c16/interval/w8/i16/o8/d1",
                              "bfs"));

    SimResult a = sampleResult(), b = sampleResult();
    b.ipc = 9.75;
    store.store(KEY, "bfs", a);
    store.store(KEY, "btree", b);
    SimResult out;
    ASSERT_TRUE(store.load(KEY, "btree", out));
    EXPECT_EQ(out.ipc, 9.75);
    ASSERT_TRUE(store.load(KEY, "bfs", out));
    EXPECT_EQ(out.ipc, a.ipc);
}

TEST_F(CellStoreTest, CorruptedEntryIsAMissNotACrash)
{
    CellStore store(dir, "ctx");
    store.store(KEY, "bfs", sampleResult());
    const std::string path = store.entryPath(KEY, "bfs");

    {
        std::ofstream f(path, std::ios::trunc);
        f << "{ this is not json";
    }
    SimResult out;
    EXPECT_FALSE(store.load(KEY, "bfs", out));
    EXPECT_GE(store.counts().errors, 1u);

    // Re-simulating and re-storing repairs the entry.
    store.store(KEY, "bfs", sampleResult());
    EXPECT_TRUE(store.load(KEY, "bfs", out));
}

TEST_F(CellStoreTest, TruncatedEntryIsAMissNotACrash)
{
    CellStore store(dir, "ctx");
    store.store(KEY, "bfs", sampleResult());
    const std::string path = store.entryPath(KEY, "bfs");

    std::string text;
    {
        std::ifstream f(path);
        text.assign(std::istreambuf_iterator<char>(f),
                    std::istreambuf_iterator<char>());
    }
    ASSERT_GT(text.size(), 40u);
    {
        // A torn write (which the atomic rename protocol prevents,
        // but a full disk or a copied file can still produce).
        std::ofstream f(path, std::ios::trunc);
        f << text.substr(0, text.size() / 2);
    }
    SimResult out;
    EXPECT_FALSE(store.load(KEY, "bfs", out));
    EXPECT_GE(store.counts().errors, 1u);
}

TEST_F(CellStoreTest, ValidJsonWithMissingFieldsIsAMiss)
{
    CellStore store(dir, "ctx");
    store.store(KEY, "bfs", sampleResult());
    {
        std::ofstream f(store.entryPath(KEY, "bfs"), std::ios::trunc);
        f << "{\"ltrf_cell_schema\": 1}\n";
    }
    SimResult out;
    EXPECT_FALSE(store.load(KEY, "bfs", out));
    EXPECT_GE(store.counts().errors, 1u);
}

TEST_F(CellStoreTest, SimVersionChangeInvalidatesPassively)
{
    // The version is part of the entry address: after a bump, old
    // entries are simply never found (no scan, no deletion).
    {
        CellStore v1(dir, "ctx", "version-one");
        v1.store(KEY, "bfs", sampleResult());
    }
    CellStore v2(dir, "ctx", "version-two");
    SimResult out;
    EXPECT_FALSE(v2.load(KEY, "bfs", out));
    EXPECT_EQ(v2.counts().errors, 0u) << "stale entries are plain "
                                          "misses, not errors";

    // A hand-copied foreign entry *at the right address* is caught
    // by the stored-key verification instead.
    CellStore v1b(dir, "ctx", "version-one");
    fs::copy_file(v1b.entryPath(KEY, "bfs"),
                  v2.entryPath(KEY, "bfs"),
                  fs::copy_options::overwrite_existing);
    EXPECT_FALSE(v2.load(KEY, "bfs", out));
    EXPECT_GE(v2.counts().errors, 1u);
}

TEST_F(CellStoreTest, ContextSeparatesRuns)
{
    // Same sim key + workload at different SM counts / seeds must
    // not share entries (simKey() does not encode either).
    CellStore sms2(dir, "sms=2|seed=7");
    CellStore sms4(dir, "sms=4|seed=7");
    sms2.store(KEY, "bfs", sampleResult());
    SimResult out;
    EXPECT_FALSE(sms4.load(KEY, "bfs", out));
    EXPECT_TRUE(sms2.load(KEY, "bfs", out));
}

TEST_F(CellStoreTest, ConcurrentWritersOnOneDirectory)
{
    // Shards of one exploration share a cache dir: concurrent
    // stores of the same and of distinct cells must never produce a
    // torn read. (With tsan/asan in CI this also proves the
    // counters' locking.)
    constexpr int THREADS = 8, ITERS = 25;
    CellStore store(dir, "ctx");
    std::vector<std::thread> ts;
    for (int t = 0; t < THREADS; t++) {
        ts.emplace_back([&store, t] {
            for (int i = 0; i < ITERS; i++) {
                SimResult r = sampleResult();
                r.ipc = 1.0 + t;    // per-thread payload
                const std::string wl =
                        "w" + std::to_string(i % 5);
                store.store(KEY, wl, r);
                SimResult out;
                if (store.load(KEY, wl, out)) {
                    // Whatever thread's store won, the entry is
                    // complete and self-consistent.
                    EXPECT_GE(out.ipc, 1.0);
                    EXPECT_LE(out.ipc, 1.0 + THREADS);
                    EXPECT_EQ(out.cycles, r.cycles);
                }
            }
        });
    }
    for (std::thread &t : ts)
        t.join();
    EXPECT_EQ(store.counts().errors, 0u);
}

// ----- Explorer integration -----

namespace
{

DesignSpace
microSpace()
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM};
    s.banks = {1, 8};
    s.bank_sizes = {1};
    s.networks = {};    // auto
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};
    return s;
}

ExploreOptions
microOptions()
{
    ExploreOptions opt;
    opt.workloads = {"bfs", "btree"};
    opt.num_sms = 1;
    opt.seed = 2018;
    return opt;
}

} // namespace

TEST_F(CellStoreTest, SecondExplorationSimulatesNothing)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;

    const DseResult plain = explore(microSpace(), opt);
    ASSERT_EQ(plain.store_hits + plain.store_misses, 0u)
            << "no cache dir, no store traffic";

    opt.cache_dir = dir;
    const DseResult cold = explore(microSpace(), opt);
    EXPECT_EQ(cold.store_hits, 0u);
    EXPECT_EQ(cold.store_misses, cold.sim_cells);
    EXPECT_EQ(cold.store_stores, cold.sim_cells);

    const DseResult warm = explore(microSpace(), opt);
    EXPECT_EQ(warm.store_misses, 0u) << "a warm store simulates "
                                        "zero cells";
    EXPECT_EQ(warm.store_stores, 0u);
    EXPECT_EQ(warm.store_hits, warm.sim_cells);

    // The headline determinism property: the report cannot tell a
    // cached run from a fresh one, byte for byte.
    const std::string golden = plain.toJson().dump(2);
    EXPECT_EQ(golden, cold.toJson().dump(2));
    EXPECT_EQ(golden, warm.toJson().dump(2));

    // The side-channel stat lines surface the store counters.
    ASSERT_FALSE(warm.stats_lines.empty());
    bool saw_hits = false;
    for (const StatLine &l : warm.stats_lines)
        if (l.name == "cell_store.hits") {
            saw_hits = true;
            EXPECT_EQ(l.value, warm.store_hits);
        }
    EXPECT_TRUE(saw_hits);
}

TEST_F(CellStoreTest, ConcurrentShardsShareACacheDirectory)
{
    // Two GRID shards of one space explore concurrently into one
    // cache dir (the sharded-DSE workflow). Their stripes are
    // disjoint but the baseline cells collide — the atomic rename
    // protocol makes that race benign.
    ExploreOptions base = microOptions();
    base.strategy = Strategy::GRID;
    base.cache_dir = dir;
    base.shard_count = 2;

    DseResult shard_res[2];
    std::vector<std::thread> ts;
    for (int sh = 0; sh < 2; sh++) {
        ts.emplace_back([&, sh] {
            ExploreOptions o = base;
            o.shard_index = sh;
            shard_res[sh] = explore(microSpace(), o);
        });
    }
    for (std::thread &t : ts)
        t.join();
    EXPECT_EQ(shard_res[0].store_errors, 0u);
    EXPECT_EQ(shard_res[1].store_errors, 0u);
    EXPECT_EQ(shard_res[0].evaluated.size() +
                      shard_res[1].evaluated.size(),
              microSpace().size());

    // The union of the shards warmed every cell of the full space.
    ExploreOptions full = microOptions();
    full.strategy = Strategy::GRID;
    full.cache_dir = dir;
    const DseResult warm = explore(microSpace(), full);
    EXPECT_EQ(warm.store_misses, 0u);
    EXPECT_EQ(warm.store_hits, warm.sim_cells);
}
