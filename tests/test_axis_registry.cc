/**
 * @file
 * Properties of the data-driven axis registry and the widened
 * design space: token codecs round-trip, enumeration/indexOf are
 * inverse bijections, keys are unique across the widened space,
 * neighborhoods are symmetric, auto axes derive consistently, the
 * three new axes (interval length, operand collectors, DRAM
 * service cycles) reach the simulator end-to-end with the expected
 * IPC direction, and sharded exploration stripes partition the
 * space exactly.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dse/explorer.hh"
#include "dse/space.hh"

using namespace ltrf;
using namespace ltrf::dse;

namespace
{

/** A widened space exercising every registry axis, 256 points. */
DesignSpace
widenedSpace()
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM};
    s.banks = {1, 8};
    s.bank_sizes = {1};
    s.networks = {};    // auto
    s.cache_kbs = {8, 16};
    s.policies = {PrefetchPolicy::INTERVAL,
                  PrefetchPolicy::INTERVAL_PLUS};
    s.warps = {4, 8};
    s.intervals = {4, 8};
    s.collectors = {4, 8};
    s.dram_service = {1, 4};
    return s;
}

ExploreOptions
microOptions()
{
    ExploreOptions opt;
    opt.workloads = {"bfs", "btree"};
    opt.num_sms = 1;
    opt.seed = 2018;
    return opt;
}

std::set<std::string>
evaluatedKeySet(const DseResult &res)
{
    std::set<std::string> keys;
    for (const PointResult &pr : res.evaluated)
        keys.insert(pr.point.key());
    return keys;
}

} // namespace

// ----- Registry declarations -----

TEST(AxisRegistry, NamesAndFlagsAreUniqueAndComplete)
{
    const auto &registry = axisRegistry();
    ASSERT_EQ(registry.size(),
              static_cast<std::size_t>(NUM_AXES));
    std::set<std::string> names, flags;
    for (const AxisDesc &a : registry) {
        EXPECT_TRUE(names.insert(a.name).second)
                << "duplicate axis name " << a.name;
        EXPECT_TRUE(flags.insert(a.cli_flag).second)
                << "duplicate axis flag " << a.cli_flag;
        // Every axis must be either applied to the SimConfig or
        // consumed by the RF model — never silently dropped.
        EXPECT_TRUE(a.model_axis != (a.apply != nullptr))
                << a.name << " is neither model- nor sim-applied";
    }
}

TEST(AxisRegistry, TokensRoundTripOverTheWidenedSpace)
{
    const DesignSpace s = widenedSpace();
    for (const AxisDesc &a : axisRegistry()) {
        std::vector<int> vals = a.values(s);
        if (vals.empty())    // auto axis: probe the derived values
            for (const DesignPoint &p : s.enumerate(16))
                vals.push_back(a.get(p));
        for (int v : vals) {
            int back = -1;
            ASSERT_TRUE(a.parse(a.token(v), back))
                    << a.name << " token " << a.token(v);
            EXPECT_EQ(back, v) << a.name;
        }
    }
}

TEST(AxisRegistry, KeyIsTheJoinedRegistryTokens)
{
    DesignPoint p;    // defaults
    EXPECT_EQ(p.key(), "hp/b1/z1/xbar/c16/interval/w8/i16/o8/d1");
    p.tech = CellTech::DWM;
    p.policy = PrefetchPolicy::INTERVAL_PLUS;
    p.regs_per_interval = 8;
    p.num_operand_collectors = 4;
    p.dram_service_cycles = 4;
    EXPECT_EQ(p.key(), "dwm/b1/z1/xbar/c16/interval+/w8/i8/o4/d4");
}

// ----- Space bijections -----

TEST(WidenedSpace, EnumeratePointAtIndexOfRoundTrip)
{
    const DesignSpace s = widenedSpace();
    ASSERT_EQ(s.size(), 256u);
    const std::vector<DesignPoint> all = s.enumerate();
    ASSERT_EQ(all.size(), 256u);
    for (std::uint64_t i = 0; i < all.size(); i++) {
        EXPECT_TRUE(s.contains(all[i])) << all[i].key();
        EXPECT_EQ(s.indexOf(all[i]), i) << all[i].key();
    }
}

TEST(WidenedSpace, KeysAreUniqueAcrossTheSpace)
{
    const DesignSpace s = widenedSpace();
    std::set<std::string> keys;
    for (const DesignPoint &p : s.enumerate())
        EXPECT_TRUE(keys.insert(p.key()).second)
                << "duplicate key " << p.key();
    EXPECT_EQ(keys.size(), s.size());
}

TEST(WidenedSpace, NeighborsAreSymmetric)
{
    const DesignSpace s = widenedSpace();
    for (const DesignPoint &p : s.enumerate()) {
        for (const DesignPoint &q : s.neighbors(p)) {
            EXPECT_TRUE(s.contains(q)) << q.key();
            bool back = false;
            for (const DesignPoint &r : s.neighbors(q))
                back = back || r == p;
            EXPECT_TRUE(back) << p.key() << " -> " << q.key()
                              << " has no reverse step";
        }
    }
}

TEST(WidenedSpace, AutoIntervalDerivesThePerWarpPartition)
{
    DesignSpace s = widenedSpace();
    s.intervals = {};    // auto
    for (const DesignPoint &p : s.enumerate()) {
        const SimConfig cfg = configFor(p, 1);
        EXPECT_EQ(p.regs_per_interval, cfg.cacheRegsPerWarp())
                << p.key();
    }
    // A point whose interval deviates from the partition is outside
    // an auto-interval space, but inside one that lists the value.
    DesignPoint p = s.pointAt(0);
    p.regs_per_interval = 4;
    EXPECT_FALSE(s.contains(p));
    DesignSpace explicit_ivl = widenedSpace();
    EXPECT_TRUE(explicit_ivl.contains(p));
}

TEST(WidenedSpace, ConfigForAppliesEveryNonModelAxis)
{
    DesignPoint p;
    p.cache_kb = 8;
    p.policy = PrefetchPolicy::INTERVAL_PLUS;
    p.active_warps = 4;
    p.regs_per_interval = 8;
    p.num_operand_collectors = 4;
    p.dram_service_cycles = 4;
    const SimConfig cfg = configFor(p, 2);
    EXPECT_EQ(cfg.rf_cache_bytes, 8u * 1024);
    EXPECT_EQ(cfg.design, RfDesign::LTRF_PLUS);
    EXPECT_EQ(cfg.num_active_warps, 4);
    EXPECT_EQ(cfg.regs_per_interval, 8);
    EXPECT_EQ(cfg.num_operand_collectors, 4);
    EXPECT_EQ(cfg.dram_service_cycles, 4);
}

TEST(WidenedSpace, ContainsIsTotalOnEmptyNonAutoAxes)
{
    // validate() rejects spaces with empty non-auto axes, but
    // contains() must stay total (no derivation to fall back on
    // means the axis contains nothing).
    const DesignSpace empty;
    EXPECT_FALSE(empty.contains(DesignPoint{}));
}

TEST(NewAxes, QuantizedDramServiceValuesShareASimKey)
{
    // At 24 SMs the baseline per-line occupancy is 0.5 bus cycles:
    // knob values 2 and 3 both rescale to 1 effective cycle and
    // must share one simulation (like coinciding network latencies
    // at 1x banks) instead of simulating twice.
    DesignPoint a, b;
    a.dram_service_cycles = 2;
    b.dram_service_cycles = 3;
    EXPECT_EQ(simKey(configFor(a, 24)), simKey(configFor(b, 24)));
    // At 1 SM they are distinguishable (24 vs 36 bus cycles).
    EXPECT_NE(simKey(configFor(a, 1)), simKey(configFor(b, 1)));
}

TEST(WidenedSpaceDeathTest, ValidateRejectsBadNewAxisValues)
{
    DesignSpace s = widenedSpace();
    s.intervals = {3};
    EXPECT_EXIT(s.validate(), ::testing::ExitedWithCode(1),
                "registers per interval");

    DesignSpace s2 = widenedSpace();
    s2.intervals = {32};    // > the 8KB/4-warp partition of 16
    EXPECT_EXIT(s2.validate(), ::testing::ExitedWithCode(1),
                "exceeds the per-warp cache partition");

    DesignSpace s3 = widenedSpace();
    s3.collectors = {1};    // below the issue width
    EXPECT_EXIT(s3.validate(), ::testing::ExitedWithCode(1),
                "operand collector count");

    DesignSpace s4 = widenedSpace();
    s4.dram_service = {0};
    EXPECT_EXIT(s4.validate(), ::testing::ExitedWithCode(1),
                "DRAM service-cycle scale");
}

// ----- New axes reach the simulator (direction checks) -----

TEST(NewAxes, LongerIntervalsRaiseIpcFromTheShortEnd)
{
    // Very short intervals prefetch-stall constantly; lengthening
    // them toward the cache partition recovers IPC (Figure 12's
    // methodology, now decoupled from the cache size).
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM};
    s.banks = {1};
    s.bank_sizes = {1};
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};
    s.intervals = {4, 16};

    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    const DseResult res = explore(s, opt);
    ASSERT_EQ(res.evaluated.size(), 2u);
    const double short_ipc = res.evaluated[0].obj.ipc;    // i4
    const double long_ipc = res.evaluated[1].obj.ipc;     // i16
    EXPECT_EQ(res.evaluated[0].point.regs_per_interval, 4);
    EXPECT_EQ(res.evaluated[1].point.regs_per_interval, 16);
    EXPECT_LT(short_ipc, long_ipc);
}

TEST(NewAxes, MoreDramServiceCyclesLowerIpc)
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM};
    s.banks = {1};
    s.bank_sizes = {1};
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};
    s.dram_service = {1, 16};

    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    const DseResult res = explore(s, opt);
    ASSERT_EQ(res.evaluated.size(), 2u);
    EXPECT_GT(res.evaluated[0].obj.ipc,     // d1: full bandwidth
              res.evaluated[1].obj.ipc);    // d16: starved bus
}

TEST(NewAxes, MoreOperandCollectorsRaiseIpc)
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM};
    s.banks = {1};
    s.bank_sizes = {1};
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};
    s.collectors = {2, 8};

    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    const DseResult res = explore(s, opt);
    ASSERT_EQ(res.evaluated.size(), 2u);
    EXPECT_LT(res.evaluated[0].obj.ipc,     // o2: issue-starved
              res.evaluated[1].obj.ipc);    // o8
}

// ----- Sharded exploration -----

TEST(Sharding, StripeUnionEqualsTheUnshardedGrid)
{
    // The balanced index-range stripes partition the space: the
    // union of the shards' grid walks is exactly the unsharded
    // walk, with no overlap.
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM};
    s.banks = {1, 8};
    s.bank_sizes = {1};
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};
    s.dram_service = {1, 4};    // 8 points

    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    const std::set<std::string> full =
            evaluatedKeySet(explore(s, opt));

    for (int count : {2, 3}) {
        std::set<std::string> merged;
        std::size_t total = 0;
        for (int i = 0; i < count; i++) {
            opt.shard_index = i;
            opt.shard_count = count;
            const std::set<std::string> shard =
                    evaluatedKeySet(explore(s, opt));
            total += shard.size();
            merged.insert(shard.begin(), shard.end());
        }
        EXPECT_EQ(merged, full) << count << " shards";
        EXPECT_EQ(total, full.size())
                << "shards overlap at count " << count;
    }
}

TEST(Sharding, SamplingStaysInsideTheStripe)
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM,
               CellTech::DWM};
    s.banks = {1, 8};
    s.bank_sizes = {1};
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};    // 6 points; shard 0/2 = indices 0..2

    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::RANDOM;
    opt.budget = 6;    // > stripe size: exhausts the stripe
    opt.prune = 0;
    opt.shard_index = 0;
    opt.shard_count = 2;
    const DseResult res = explore(s, opt);
    EXPECT_EQ(res.evaluated.size(), 3u);
    for (const PointResult &pr : res.evaluated)
        EXPECT_LT(s.indexOf(pr.point), 3u) << pr.point.key();
    EXPECT_EQ(res.shard_index, 0);
    EXPECT_EQ(res.shard_count, 2);
}

TEST(Sharding, ShardThenResumeMergesIntoTheFullFrontier)
{
    // The documented workflow: run shard 0, then run shard 1 with
    // --resume on shard 0's report. The merged run's frontier must
    // equal the unsharded grid's frontier, key for key.
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM};
    s.banks = {1, 8};
    s.bank_sizes = {1};
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};

    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    const DseResult full = explore(s, opt);

    opt.shard_index = 0;
    opt.shard_count = 2;
    const DseResult shard0 = explore(s, opt);

    opt.shard_index = 1;
    opt.resume = parseDseReport(shard0.toJson());
    const DseResult merged = explore(s, opt);

    EXPECT_EQ(merged.resumed, shard0.evaluated.size());
    EXPECT_EQ(evaluatedKeySet(merged), evaluatedKeySet(full));
    std::set<std::string> full_front, merged_front;
    for (int idx : full.frontier)
        full_front.insert(
                full.evaluated[static_cast<std::size_t>(idx)]
                        .point.key());
    for (int idx : merged.frontier)
        merged_front.insert(
                merged.evaluated[static_cast<std::size_t>(idx)]
                        .point.key());
    EXPECT_EQ(merged_front, full_front);
    // Bit-exact objectives: resumed points carry their saved
    // numbers, fresh points simulate identically.
    for (const PointResult &m : merged.evaluated)
        for (const PointResult &f : full.evaluated)
            if (f.point == m.point) {
                EXPECT_EQ(f.obj.ipc, m.obj.ipc);
                EXPECT_EQ(f.obj.energy, m.obj.energy);
                EXPECT_EQ(f.obj.area, m.obj.area);
            }
}

TEST(ShardingDeathTest, RejectsOutOfRangeShard)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    opt.shard_index = 2;
    opt.shard_count = 2;
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM};
    s.banks = {1};
    s.bank_sizes = {1};
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};
    EXPECT_EXIT(explore(s, opt), ::testing::ExitedWithCode(1),
                "--shard");
}
