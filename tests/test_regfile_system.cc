/**
 * @file
 * Behavioural tests for the register file system designs, driven
 * directly through the RegFileSystem interface (no SM pipeline).
 */

#include <gtest/gtest.h>

#include "core/regfile_system.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

namespace
{

/** A loop kernel whose working set fits one interval. */
Kernel
loopKernel()
{
    KernelBuilder b("k");
    b.mov(0).mov(1);
    b.beginLoop(4);
    b.ffma(2, 0, 1, 2);
    b.iadd(3, 2, 0);
    b.endLoop();
    b.store(3, 0, 0);
    return b.build();
}

struct Rig
{
    Rig(RfDesign design, Kernel k = loopKernel())
    {
        cfg.num_sms = 1;
        cfg.design = design;
        cfg.validate();
        cw = compileWorkload(k, cfg, 1);
        rf = makeRegFileSystem(cfg, cw, 8);
    }

    /** The PREFETCH instruction at the header of interval 0. */
    const Instruction &
    headerPrefetch() const
    {
        const BasicBlock &h =
                cw.analysis.kernel.block(cw.analysis.intervals[0].header);
        return h.instrs.front();
    }

    SimConfig cfg;
    CompiledWorkload cw;
    std::unique_ptr<RegFileSystem> rf;
};

} // namespace

TEST(BaselineRf, ReadLatencyScalesWithMultiplier)
{
    Rig slow(RfDesign::BL);
    Rig fast(RfDesign::IDEAL);
    // Rebuild the slow rig with a 6x multiplier.
    SimConfig cfg;
    cfg.design = RfDesign::BL;
    cfg.mrf_latency_mult = 6.0;
    CompiledWorkload cw = compileWorkload(loopKernel(), cfg, 1);
    auto rf = makeRegFileSystem(cfg, cw, 8);

    Instruction in = Instruction::alu(Opcode::IADD, 2, 0, 1);
    Cycle t_slow = rf->readOperands(0, in, 100);
    Cycle t_fast = fast.rf->readOperands(0, in, 100);
    EXPECT_GT(t_slow, t_fast);
    EXPECT_EQ(t_slow - 100,
              static_cast<Cycle>(cfg.mrfLatency() +
                                 cfg.operand_xbar_latency));
}

TEST(BaselineRf, CountsMainAccesses)
{
    Rig rig(RfDesign::BL);
    Instruction in = Instruction::alu(Opcode::FFMA, 3, 0, 1, 2);
    rig.rf->readOperands(0, in, 0);
    rig.rf->writeResult(0, in, 10, true);
    EXPECT_EQ(rig.rf->rfStats().main_accesses.value(), 4u);
    EXPECT_EQ(rig.rf->rfStats().cache_accesses.value(), 0u);
}

TEST(RfcRf, MissThenHit)
{
    Rig rig(RfDesign::RFC);
    Instruction in = Instruction::alu(Opcode::MOV, 5, 4);
    rig.rf->readOperands(0, in, 0);     // cold: miss on r4
    rig.rf->readOperands(0, in, 50);    // now cached
    const RfStats &s = rig.rf->rfStats();
    EXPECT_EQ(s.cache_misses.value(), 1u);
    EXPECT_EQ(s.cache_hits.value(), 1u);
}

TEST(RfcRf, WriteAllocatesForLaterRead)
{
    Rig rig(RfDesign::RFC);
    Instruction def = Instruction::alu(Opcode::MOV, 7);
    rig.rf->writeResult(0, def, 5, true);
    Instruction use = Instruction::alu(Opcode::MOV, 8, 7);
    rig.rf->readOperands(0, use, 20);
    EXPECT_EQ(rig.rf->rfStats().cache_hits.value(), 1u);
}

TEST(RfcRf, DeactivationFlushesWarpEntries)
{
    Rig rig(RfDesign::RFC);
    Instruction def = Instruction::alu(Opcode::MOV, 7);
    rig.rf->writeResult(0, def, 5, true);
    rig.rf->deactivate(0, 10);
    // Re-read after reactivation: the entry is gone.
    Instruction use = Instruction::alu(Opcode::MOV, 8, 7);
    rig.rf->readOperands(0, use, 20);
    EXPECT_EQ(rig.rf->rfStats().cache_hits.value(), 0u);
    EXPECT_EQ(rig.rf->rfStats().cache_misses.value(), 1u);
    // The dirty value went back to the MRF.
    EXPECT_GE(rig.rf->rfStats().writeback_regs.value(), 1u);
}

TEST(PrefetchRf, PrefetchLoadsWorkingSetOnce)
{
    Rig rig(RfDesign::LTRF);
    rig.rf->activate(0, 0);
    BlockId header = rig.cw.analysis.intervals[0].header;
    Cycle done = rig.rf->prefetch(0, header, rig.headerPrefetch(), 10);
    EXPECT_GT(done, 10u);
    EXPECT_EQ(rig.rf->rfStats().prefetch_ops.value(), 1u);
    // Re-executing the same PREFETCH (loop back edge) is free.
    Cycle again = rig.rf->prefetch(0, header, rig.headerPrefetch(), done);
    EXPECT_EQ(again, done);
    EXPECT_EQ(rig.rf->rfStats().prefetch_ops.value(), 1u);
}

TEST(PrefetchRf, AllReadsHitCacheAfterPrefetch)
{
    // The LTRF guarantee: within an interval every register access
    // is serviced by the register file cache.
    Rig rig(RfDesign::LTRF);
    rig.rf->activate(0, 0);
    BlockId header = rig.cw.analysis.intervals[0].header;
    Cycle t = rig.rf->prefetch(0, header, rig.headerPrefetch(), 0);

    std::uint64_t main_before = rig.rf->rfStats().main_accesses.value();
    Instruction in = Instruction::alu(Opcode::FFMA, 2, 0, 1, 2);
    rig.rf->readOperands(0, in, t);
    rig.rf->writeResult(0, in, t + 10, true);
    EXPECT_EQ(rig.rf->rfStats().main_accesses.value(), main_before);
    EXPECT_GT(rig.rf->rfStats().cache_accesses.value(), 0u);
}

TEST(PrefetchRf, DeactivateWritesBackAndReleasesSlots)
{
    Rig rig(RfDesign::LTRF);
    rig.rf->activate(0, 0);
    BlockId header = rig.cw.analysis.intervals[0].header;
    rig.rf->prefetch(0, header, rig.headerPrefetch(), 0);
    int ws = rig.headerPrefetch().prefetch_mask.count();

    rig.rf->deactivate(0, 100);
    // LTRF writes back the whole working set (section 3.2).
    EXPECT_EQ(rig.rf->rfStats().writeback_regs.value(),
              static_cast<std::uint64_t>(ws));

    // Reactivation refetches it.
    std::uint64_t xfers = rig.rf->rfStats().xfer_regs.value();
    Cycle done = rig.rf->activate(0, 200);
    EXPECT_GT(done, 200u);
    EXPECT_EQ(rig.rf->rfStats().xfer_regs.value(),
              xfers + static_cast<std::uint64_t>(ws));
}

TEST(PrefetchRf, LtrfPlusSkipsDeadRegistersOnPrefetch)
{
    // At kernel start all registers are dead (the liveness vector is
    // cleared), so LTRF+'s first PREFETCH allocates space without
    // fetching anything, while LTRF fetches the full working set.
    Rig plus(RfDesign::LTRF_PLUS);
    Rig base(RfDesign::LTRF);
    plus.rf->activate(0, 0);
    base.rf->activate(0, 0);
    BlockId hp = plus.cw.analysis.intervals[0].header;
    BlockId hb = base.cw.analysis.intervals[0].header;
    plus.rf->prefetch(0, hp, plus.headerPrefetch(), 0);
    base.rf->prefetch(0, hb, base.headerPrefetch(), 0);
    EXPECT_LT(plus.rf->rfStats().xfer_regs.value(),
              base.rf->rfStats().xfer_regs.value());
}

TEST(PrefetchRf, LtrfPlusWritesBackOnlyLiveRegisters)
{
    Rig rig(RfDesign::LTRF_PLUS);
    rig.rf->activate(0, 0);
    BlockId header = rig.cw.analysis.intervals[0].header;
    Cycle t = rig.rf->prefetch(0, header, rig.headerPrefetch(), 0);

    // Make exactly one register live.
    Instruction def = Instruction::alu(Opcode::MOV, 0);
    rig.rf->writeResult(0, def, t, true);

    rig.rf->deactivate(0, t + 10);
    EXPECT_EQ(rig.rf->rfStats().writeback_regs.value(), 1u);
}

TEST(PrefetchRf, DeadOperandBitKillsRegister)
{
    Rig rig(RfDesign::LTRF_PLUS);
    rig.rf->activate(0, 0);
    BlockId header = rig.cw.analysis.intervals[0].header;
    Cycle t = rig.rf->prefetch(0, header, rig.headerPrefetch(), 0);

    Instruction def = Instruction::alu(Opcode::MOV, 0);
    rig.rf->writeResult(0, def, t, true);
    // Read r0 with the dead bit set: it dies.
    Instruction last_use = Instruction::alu(Opcode::MOV, 1, 0);
    last_use.src_dead[0] = true;
    rig.rf->readOperands(0, last_use, t + 5);
    // r1 write makes it live; r0 is now dead.
    rig.rf->writeResult(0, last_use, t + 15, true);

    rig.rf->deactivate(0, t + 20);
    EXPECT_EQ(rig.rf->rfStats().writeback_regs.value(), 1u);  // r1 only
}

TEST(PrefetchRf, ShrfReadsUncachedFromMainRf)
{
    // SHRF only caches registers defined inside the strand;
    // registers from other strands read the main register file.
    KernelBuilder b("shrf");
    b.mov(0);
    b.load(1, 0, 0);     // strand split after this load
    b.iadd(2, 0, 1);     // r0 defined in strand 0, read in strand 1
    Kernel k = b.build();

    SimConfig cfg;
    cfg.design = RfDesign::SHRF;
    CompiledWorkload cw = compileWorkload(k, cfg, 1);
    auto rf = makeRegFileSystem(cfg, cw, 8);
    rf->activate(0, 0);

    // Enter the second strand (holding the IADD).
    IntervalId itv2 = UNKNOWN_INTERVAL;
    BlockId bb2 = INVALID_BLOCK;
    for (const auto &bb : cw.analysis.kernel.blocks)
        for (const auto &in : bb.instrs)
            if (in.op == Opcode::IADD) {
                itv2 = cw.analysis.block_interval[bb.id];
                bb2 = cw.analysis.intervals[itv2].header;
            }
    ASSERT_NE(itv2, UNKNOWN_INTERVAL);
    const Instruction &pf =
            cw.analysis.kernel.block(bb2).instrs.front();
    ASSERT_EQ(pf.op, Opcode::PREFETCH);
    Cycle t = rf->prefetch(0, bb2, pf, 0);

    Instruction iadd = Instruction::alu(Opcode::IADD, 2, 0, 1);
    std::uint64_t main_before = rf->rfStats().main_accesses.value();
    rf->readOperands(0, iadd, t);
    // At least one source (r0, defined in the other strand) went to
    // the main register file.
    EXPECT_GT(rf->rfStats().main_accesses.value(), main_before);
    EXPECT_GT(rf->rfStats().cache_misses.value(), 0u);
}

TEST(RegFileSystemDeath, LtrfNonResidentReadPanics)
{
    // Reading a register outside the prefetched working set under
    // LTRF violates the design's core guarantee and must panic.
    Rig rig(RfDesign::LTRF);
    rig.rf->activate(0, 0);
    Instruction in = Instruction::alu(Opcode::MOV, 1, 0);
    EXPECT_DEATH(rig.rf->readOperands(0, in, 0), "non-resident");
}

TEST(RegFileSystem, FactoryMatchesDesign)
{
    for (RfDesign d : {RfDesign::BL, RfDesign::RFC, RfDesign::SHRF,
                       RfDesign::LTRF_STRAND, RfDesign::LTRF,
                       RfDesign::LTRF_PLUS, RfDesign::IDEAL}) {
        SimConfig cfg;
        cfg.design = d;
        CompiledWorkload cw = compileWorkload(loopKernel(), cfg, 1);
        auto rf = makeRegFileSystem(cfg, cw, 4);
        EXPECT_NE(rf, nullptr);
    }
}
