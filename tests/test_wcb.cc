/**
 * @file
 * Tests for the Warp Control Block (paper Figure 7, section 4.3).
 */

#include <gtest/gtest.h>

#include "core/wcb.hh"

using namespace ltrf;

TEST(Wcb, StorageCostMatchesPaper)
{
    // 256 x 5-bit address table + 3-bit warp offset + two 256-bit
    // vectors; 64 warps -> 114880 bits per SM (section 4.3).
    EXPECT_EQ(Wcb::bitsPerWarp(), 1795);
    EXPECT_EQ(64 * Wcb::bitsPerWarp(), 114880);
}

TEST(Wcb, EntryLifecycle)
{
    Wcb wcb;
    EXPECT_FALSE(wcb.resident(5));
    wcb.setEntry(5, 3);
    EXPECT_TRUE(wcb.resident(5));
    EXPECT_EQ(wcb.bank(5), 3);
    EXPECT_EQ(wcb.clearEntry(5), 3);
    EXPECT_FALSE(wcb.resident(5));
}

TEST(Wcb, ResidentSetTracksEntries)
{
    Wcb wcb;
    wcb.setEntry(0, 0);
    wcb.setEntry(100, 7);
    wcb.setEntry(255, 15);
    EXPECT_EQ(wcb.residentSet().count(), 3);
    EXPECT_TRUE(wcb.residentSet().test(100));
    wcb.clearEntry(100);
    EXPECT_EQ(wcb.residentSet().count(), 2);
}

TEST(Wcb, LivenessVectorStartsDead)
{
    // Paper section 3.2: the liveness vector is cleared when a warp
    // starts executing.
    Wcb wcb;
    for (int r = 0; r < MAX_ARCH_REGS; r += 17)
        EXPECT_FALSE(wcb.live(static_cast<RegId>(r)));
    wcb.markLive(9);
    EXPECT_TRUE(wcb.live(9));
    wcb.markDead(9);
    EXPECT_FALSE(wcb.live(9));
}

TEST(Wcb, WorkingSetVector)
{
    Wcb wcb;
    RegBitVec ws{1, 2, 3};
    wcb.setWorkingSet(ws);
    EXPECT_EQ(wcb.workingSet(), ws);
}

TEST(Wcb, ResetClearsEverything)
{
    Wcb wcb;
    wcb.setEntry(7, 2);
    wcb.markLive(7);
    wcb.setWarpOffset(5);
    wcb.reset();
    EXPECT_FALSE(wcb.resident(7));
    EXPECT_FALSE(wcb.live(7));
    EXPECT_EQ(wcb.warpOffset(), -1);
    EXPECT_TRUE(wcb.workingSet().empty());
}

TEST(WcbDeath, LookupOfNonResidentPanics)
{
    Wcb wcb;
    EXPECT_DEATH(wcb.bank(3), "non-resident");
    EXPECT_DEATH(wcb.clearEntry(3), "non-resident");
}
