/**
 * @file
 * Determinism guard for the event-driven fast-forward.
 *
 * SimConfig::skip_ahead is observationally pure by design: the
 * fast-forward may only skip cycles at which no SM can make
 * progress, so every counter the simulator reports must be
 * bit-identical whether the global loop jumps to the next event or
 * polls every cycle. This test runs both modes across several
 * workloads and all four benchmarked designs and compares the full
 * SimResult — any divergence means a skipped cycle actually
 * mattered, i.e. an Sm::nextEvent bound is wrong.
 */

#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "tech/rf_config.hh"
#include "workloads/workload.hh"

using namespace ltrf;

namespace
{

constexpr std::uint64_t SEED = 2018;

const char *const WORKLOADS[] = {"bfs", "btree", "streamcluster"};

const RfDesign DESIGNS[] = {RfDesign::BL, RfDesign::RFC,
                            RfDesign::LTRF, RfDesign::LTRF_PLUS};

SimConfig
configFor(RfDesign d, bool skip_ahead)
{
    SimConfig cfg;
    applyRfConfig(cfg, rfConfig(6));
    cfg.design = d;
    cfg.num_sms = 2;
    cfg.skip_ahead = skip_ahead;
    return cfg;
}

/** Field-by-field equality; exact comparison is the whole point. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc); // exact: same integer quotient
    EXPECT_EQ(a.resident_warps, b.resident_warps);
    EXPECT_EQ(a.main_accesses, b.main_accesses);
    EXPECT_EQ(a.cache_accesses, b.cache_accesses);
    EXPECT_EQ(a.wcb_accesses, b.wcb_accesses);
    EXPECT_EQ(a.xfer_regs, b.xfer_regs);
    EXPECT_EQ(a.prefetch_ops, b.prefetch_ops);
    EXPECT_EQ(a.writeback_regs, b.writeback_regs);
    EXPECT_EQ(a.prefetch_stall_cycles, b.prefetch_stall_cycles);
    EXPECT_EQ(a.cache_hit_rate, b.cache_hit_rate);
    EXPECT_EQ(a.l1d_hit_rate, b.l1d_hit_rate);
}

} // namespace

TEST(FastForward, BitIdenticalAcrossWorkloadsAndDesigns)
{
    for (const char *name : WORKLOADS) {
        const Workload &w = WorkloadSuite::byName(name);
        for (RfDesign d : DESIGNS) {
            SCOPED_TRACE(std::string(name) + " / " + rfDesignName(d));
            SimResult fast =
                    simulate(configFor(d, true), w.kernel, SEED);
            SimResult slow =
                    simulate(configFor(d, false), w.kernel, SEED);
            expectIdentical(fast, slow);
        }
    }
}

TEST(FastForward, SkipAheadIsActuallyExercised)
{
    // Sanity-check the toggle reaches the run loop: with memory-bound
    // bfs, a per-cycle walk and a fast-forwarded run must still agree
    // while spending very different wall time — here we just assert
    // both complete and report nonzero work, so a future refactor
    // that silently drops the flag fails loudly.
    const Workload &w = WorkloadSuite::byName("bfs");
    SimResult r = simulate(configFor(RfDesign::LTRF, true), w.kernel,
                           SEED);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
}
