/**
 * @file
 * Tests for the parametric register file model (tech/rf_model):
 * bit-exact reproduction of the seven published Table 2 rows from
 * their axes, monotonicity of the scaling rules, and sanity of the
 * off-table extrapolations the DSE searches through.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/config.hh"
#include "tech/rf_model.hh"

using namespace ltrf;

namespace
{

RfModelPoint
pointFor(const RfConfig &rc)
{
    RfModelPoint p;
    p.tech = rc.tech;
    p.banks_mult = rc.banks_mult;
    p.bank_size_mult = rc.bank_size_mult;
    p.network = std::strcmp(rc.network, "Crossbar") == 0
                        ? NetworkKind::CROSSBAR
                        : NetworkKind::FLAT_BUTTERFLY;
    return p;
}

const std::vector<CellTech> ALL_TECHS = {
        CellTech::HP_SRAM, CellTech::LSTP_SRAM, CellTech::TFET_SRAM,
        CellTech::DWM};

} // namespace

TEST(RfModel, ReproducesAllSevenTable2RowsExactly)
{
    for (const RfConfig &pub : rfConfigTable()) {
        RfConfig gen = makeRfConfig(pointFor(pub));
        // Bit-exact (operator== on doubles, no tolerance): the
        // published rows are anchor points of the model.
        EXPECT_EQ(gen.id, pub.id);
        EXPECT_EQ(gen.tech, pub.tech);
        EXPECT_EQ(gen.banks_mult, pub.banks_mult);
        EXPECT_EQ(gen.bank_size_mult, pub.bank_size_mult);
        EXPECT_STREQ(gen.network, pub.network);
        EXPECT_EQ(gen.capacity, pub.capacity);
        EXPECT_EQ(gen.area, pub.area);
        EXPECT_EQ(gen.power, pub.power);
        EXPECT_EQ(gen.latency, pub.latency);
        EXPECT_EQ(gen.cap_per_area, pub.cap_per_area);
        EXPECT_EQ(gen.cap_per_power, pub.cap_per_power);
    }
}

TEST(RfModel, AreaAndPowerMonotonicInBanks)
{
    for (CellTech t : ALL_TECHS) {
        double prev_area = 0.0, prev_power = 0.0;
        for (int b : {1, 2, 4, 8}) {
            RfModelPoint p;
            p.tech = t;
            p.banks_mult = b;
            p.network = defaultNetwork(b);
            RfConfig rc = makeRfConfig(p);
            EXPECT_GT(rc.area, prev_area)
                    << cellTechName(t) << " banks " << b;
            EXPECT_GT(rc.power, prev_power)
                    << cellTechName(t) << " banks " << b;
            prev_area = rc.area;
            prev_power = rc.power;
        }
    }
}

TEST(RfModel, AreaAndPowerMonotonicInBankSize)
{
    for (CellTech t : ALL_TECHS) {
        double prev_area = 0.0, prev_power = 0.0;
        for (int z : {1, 2, 4, 8}) {
            RfModelPoint p;
            p.tech = t;
            p.bank_size_mult = z;
            RfConfig rc = makeRfConfig(p);
            EXPECT_GT(rc.area, prev_area)
                    << cellTechName(t) << " bank size " << z;
            EXPECT_GT(rc.power, prev_power)
                    << cellTechName(t) << " bank size " << z;
            prev_area = rc.area;
            prev_power = rc.power;
        }
    }
}

TEST(RfModel, LatencyMonotonicInBothAxes)
{
    for (CellTech t : ALL_TECHS) {
        // Growing bank count (paper-paired network).
        double prev = 0.0;
        for (int b : {1, 2, 4, 8}) {
            RfModelPoint p;
            p.tech = t;
            p.banks_mult = b;
            p.network = defaultNetwork(b);
            double lat = makeRfConfig(p).latency;
            EXPECT_GT(lat, prev) << cellTechName(t) << " banks " << b;
            prev = lat;
        }
        // Growing bank size.
        prev = 0.0;
        for (int z : {1, 2, 4, 8}) {
            RfModelPoint p;
            p.tech = t;
            p.bank_size_mult = z;
            double lat = makeRfConfig(p).latency;
            EXPECT_GT(lat, prev)
                    << cellTechName(t) << " bank size " << z;
            prev = lat;
        }
    }
}

TEST(RfModel, LatencyOrderedByTechnologySlowness)
{
    // At any fixed structure, the paper's ordering holds: HP
    // fastest, then LSTP, TFET, DWM.
    for (int b : {1, 8}) {
        for (int z : {1, 8}) {
            RfModelPoint p;
            p.banks_mult = b;
            p.bank_size_mult = z;
            p.network = defaultNetwork(b);
            double prev = 0.0;
            for (CellTech t : ALL_TECHS) {
                p.tech = t;
                double lat = makeRfConfig(p).latency;
                EXPECT_GT(lat, prev)
                        << cellTechName(t) << " b" << b << " z" << z;
                prev = lat;
            }
        }
    }
}

TEST(RfModel, CrossbarOutgrowsButterflyAtHighBankCounts)
{
    // The reason Table 2's 128-bank rows use the butterfly.
    EXPECT_GT(structureLatency(8, 1, NetworkKind::CROSSBAR),
              structureLatency(8, 1, NetworkKind::FLAT_BUTTERFLY));
    // And the networks tie at the baseline bank count.
    EXPECT_EQ(structureLatency(1, 1, NetworkKind::CROSSBAR),
              structureLatency(1, 1, NetworkKind::FLAT_BUTTERFLY));
}

TEST(RfModel, OffTablePointsSynthesizeSanely)
{
    // DWM at the baseline organization: never measured by the
    // paper; the model extrapolates its per-bit scalars.
    RfModelPoint p;
    p.tech = CellTech::DWM;
    RfConfig rc = makeRfConfig(p);
    EXPECT_EQ(rc.id, 0);
    EXPECT_EQ(rc.capacity, 1.0);
    EXPECT_EQ(rc.area, 0.25 / 8.0);
    EXPECT_EQ(rc.power, 0.65 / 8.0);
    EXPECT_GE(rc.latency, 1.0);
    EXPECT_LT(rc.latency, 6.3);
    EXPECT_EQ(rc.cap_per_area, 32.0);

    // Simulator-facing invariant: every point in the DSE bounds
    // yields a latency multiplier the simulator accepts (>= 1).
    for (CellTech t : ALL_TECHS)
        for (int b : {1, 2, 4, 8})
            for (int z : {1, 2, 4, 8})
                for (NetworkKind n : {NetworkKind::CROSSBAR,
                                      NetworkKind::FLAT_BUTTERFLY}) {
                    RfModelPoint q{t, b, z, n};
                    EXPECT_GE(makeRfConfig(q).latency, 1.0);
                }
}

TEST(RfModel, DefaultNetworkPairsLikeThePaper)
{
    EXPECT_EQ(defaultNetwork(1), NetworkKind::CROSSBAR);
    for (int b : {2, 4, 8})
        EXPECT_EQ(defaultNetwork(b), NetworkKind::FLAT_BUTTERFLY);
}

TEST(RfModel, ApplyRfModelSetsSimKnobs)
{
    SimConfig cfg;
    RfModelPoint p;
    p.tech = CellTech::DWM;
    p.banks_mult = 8;
    p.bank_size_mult = 1;
    p.network = NetworkKind::FLAT_BUTTERFLY;
    applyRfModel(cfg, p);
    EXPECT_EQ(cfg.rf_capacity_mult, 8);
    EXPECT_EQ(cfg.num_mrf_banks, 128);
    EXPECT_DOUBLE_EQ(cfg.mrf_latency_mult, 6.3);
}
