/**
 * @file
 * Tests for the two-level warp scheduler.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "sim/scheduler.hh"

using namespace ltrf;

namespace
{

/** Minimal fixture: warps over a one-instruction trace. */
struct Rig
{
    explicit Rig(int num_warps, int active_slots,
                 RfDesign design = RfDesign::BL)
    {
        KernelBuilder b("k");
        b.mov(0);
        kernel = b.build();
        cfg.design = design;
        cw = compileWorkload(kernel, cfg, 1);
        rf = makeRegFileSystem(cfg, cw, num_warps);
        arena = std::make_unique<WarpStateArena>(num_warps,
                                                 kernel.num_regs, 1);
        for (int i = 0; i < num_warps; i++)
            warps.emplace_back(i, &cw.traces[i], *arena);
        sched = std::make_unique<TwoLevelScheduler>(active_slots, warps);
    }

    Kernel kernel;
    SimConfig cfg;
    CompiledWorkload cw;
    std::unique_ptr<RegFileSystem> rf;
    std::unique_ptr<WarpStateArena> arena;
    std::vector<Warp> warps;
    std::unique_ptr<TwoLevelScheduler> sched;
};

} // namespace

TEST(Scheduler, FillsActivePoolUpToLimit)
{
    Rig rig(16, 8);
    rig.sched->tick(0, *rig.rf);
    EXPECT_EQ(rig.sched->activePool().size(), 8u);
    int active = 0;
    for (const Warp &w : rig.warps)
        if (w.state == WarpState::ACTIVE)
            active++;
    EXPECT_EQ(active, 8);
}

TEST(Scheduler, FewWarpsAllActivate)
{
    Rig rig(3, 8);
    rig.sched->tick(0, *rig.rf);
    EXPECT_EQ(rig.sched->activePool().size(), 3u);
}

TEST(Scheduler, DeactivationFreesSlotForNextWarp)
{
    Rig rig(10, 8);
    rig.sched->tick(0, *rig.rf);
    Warp &victim = rig.warps[rig.sched->activePool()[0]];
    rig.sched->deactivate(victim, 500, *rig.rf, 10);
    EXPECT_EQ(victim.state, WarpState::INACTIVE_WAIT);
    EXPECT_EQ(rig.sched->activePool().size(), 7u);

    rig.sched->tick(11, *rig.rf);
    EXPECT_EQ(rig.sched->activePool().size(), 8u);
    // The victim is not back yet.
    EXPECT_EQ(victim.state, WarpState::INACTIVE_WAIT);
}

TEST(Scheduler, WaitExpiryRequeues)
{
    Rig rig(9, 8);
    rig.sched->tick(0, *rig.rf);
    Warp &victim = rig.warps[rig.sched->activePool()[0]];
    WarpId vid = victim.id;
    rig.sched->deactivate(victim, 100, *rig.rf, 0);
    rig.sched->tick(1, *rig.rf);     // warp 8 takes the slot
    // Deactivate another warp so a slot opens for the victim later.
    Warp &other = rig.warps[rig.sched->activePool()[0]];
    rig.sched->deactivate(other, 1000, *rig.rf, 2);

    rig.sched->tick(100, *rig.rf);
    EXPECT_EQ(rig.warps[vid].state, WarpState::ACTIVE);
}

TEST(Scheduler, FinishReleasesSlotPermanently)
{
    Rig rig(8, 8);
    rig.sched->tick(0, *rig.rf);
    for (int i = 0; i < 8; i++) {
        Warp &w = rig.warps[rig.sched->activePool()[0]];
        rig.sched->finish(w, *rig.rf, i);
    }
    EXPECT_EQ(rig.sched->finishedCount(), 8);
    EXPECT_TRUE(rig.sched->activePool().empty());
    rig.sched->tick(100, *rig.rf);
    EXPECT_TRUE(rig.sched->activePool().empty());
}

TEST(Scheduler, ActivationDelayGatesIssue)
{
    // LTRF activation refetches registers: the warp sits in
    // ACTIVATING until the register file system's completion time.
    // Only two warps exist so no third warp can steal the slot.
    Rig rig(2, 2, RfDesign::LTRF);
    // Give warp 0 a non-empty working set, then deactivate it.
    rig.sched->tick(0, *rig.rf);
    Warp &w0 = rig.warps[0];
    // Seed a working set via a prefetch.
    RegBitVec ws{0, 1, 2, 3};
    Instruction pf = Instruction::prefetch(ws);
    BlockId header = rig.cw.analysis.intervals[0].header;
    rig.rf->prefetch(0, header, pf, 0);
    rig.sched->deactivate(w0, 10, *rig.rf, 5);

    // When it reactivates, the refetch takes time: ACTIVATING.
    rig.sched->deactivate(rig.warps[rig.sched->activePool()[0]],
                          10000, *rig.rf, 6);
    rig.sched->tick(10, *rig.rf);
    EXPECT_EQ(w0.state, WarpState::ACTIVATING);
    EXPECT_GT(w0.wait_until, 10u);

    rig.sched->tick(w0.wait_until, *rig.rf);
    EXPECT_EQ(w0.state, WarpState::ACTIVE);
}

TEST(Scheduler, RoundRobinIndexStaysInRange)
{
    Rig rig(12, 8);
    rig.sched->tick(0, *rig.rf);
    for (int i = 0; i < 30; i++) {
        rig.sched->advanceRr();
        EXPECT_GE(rig.sched->rrIndex(), 0);
        EXPECT_LT(rig.sched->rrIndex(),
                  static_cast<int>(rig.sched->activePool().size()));
    }
    // Removal keeps the index valid.
    rig.sched->deactivate(rig.warps[rig.sched->activePool()[5]],
                          1000000, *rig.rf, 1);
    EXPECT_LT(rig.sched->rrIndex(),
              static_cast<int>(rig.sched->activePool().size()));
}
