/**
 * @file
 * Tests for per-design workload compilation.
 */

#include <gtest/gtest.h>

#include "core/compile.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

namespace
{

Kernel
sampleKernel()
{
    KernelBuilder b("sample");
    b.mov(0).mov(1);
    b.beginLoop(6);
    b.load(2, 0, 0);
    b.ffma(3, 2, 1, 3);
    b.endLoop();
    b.store(3, 0, 0);
    return b.build();
}

} // namespace

TEST(Compile, PrefetchDesignsGetIntervalsAndPrefetches)
{
    for (RfDesign d : {RfDesign::LTRF, RfDesign::LTRF_PLUS}) {
        SimConfig cfg;
        cfg.design = d;
        CompiledWorkload cw = compileWorkload(sampleKernel(), cfg, 1);
        EXPECT_FALSE(cw.analysis.intervals.empty());
        EXPECT_GT(cw.code_size.num_prefetch_ops, 0);
        EXPECT_FALSE(cw.strand_semantics);
        // Every block is mapped to an interval.
        for (const auto &bb : cw.kernel().blocks)
            EXPECT_NE(cw.intervalOf(bb.id), UNKNOWN_INTERVAL);
    }
}

TEST(Compile, StrandDesignsUseStrandSemantics)
{
    for (RfDesign d : {RfDesign::LTRF_STRAND, RfDesign::SHRF}) {
        SimConfig cfg;
        cfg.design = d;
        CompiledWorkload cw = compileWorkload(sampleKernel(), cfg, 1);
        EXPECT_TRUE(cw.strand_semantics);
        EXPECT_FALSE(cw.analysis.intervals.empty());
    }
}

TEST(Compile, ShrfCachedSetsAreDefsWithinWorkingSet)
{
    SimConfig cfg;
    cfg.design = RfDesign::SHRF;
    CompiledWorkload cw = compileWorkload(sampleKernel(), cfg, 1);
    ASSERT_EQ(cw.shrf_cached.size(), cw.analysis.intervals.size());
    for (const auto &iv : cw.analysis.intervals) {
        const RegBitVec &cached = cw.shrf_cached[iv.id];
        EXPECT_TRUE(iv.working_set.contains(cached));
        // Cached regs must actually be defined inside the strand.
        RegBitVec defs;
        for (BlockId b : iv.blocks)
            for (const auto &in : cw.kernel().block(b).instrs)
                if (in.op != Opcode::PREFETCH && in.dst != INVALID_REG)
                    defs.set(in.dst);
        EXPECT_TRUE(defs.contains(cached));
    }
}

TEST(Compile, PlainDesignsKeepKernelUntouched)
{
    Kernel k = sampleKernel();
    int static_count = k.staticInstrCount();
    for (RfDesign d : {RfDesign::BL, RfDesign::RFC, RfDesign::IDEAL}) {
        SimConfig cfg;
        cfg.design = d;
        CompiledWorkload cw = compileWorkload(k, cfg, 1);
        EXPECT_TRUE(cw.analysis.intervals.empty());
        EXPECT_EQ(cw.kernel().staticInstrCountWithPrefetch(),
                  static_count);
    }
}

TEST(Compile, TracesPerWarpAndDeterministic)
{
    SimConfig cfg;
    cfg.design = RfDesign::LTRF;
    CompiledWorkload a = compileWorkload(sampleKernel(), cfg, 42);
    CompiledWorkload b = compileWorkload(sampleKernel(), cfg, 42);
    ASSERT_EQ(a.traces.size(),
              static_cast<size_t>(cfg.max_warps_per_sm));
    for (size_t w = 0; w < a.traces.size(); w++)
        EXPECT_EQ(a.traces[w].real_instrs, b.traces[w].real_instrs);
}

TEST(Compile, DeadOperandsAnnotatedForAllDesigns)
{
    SimConfig cfg;
    cfg.design = RfDesign::LTRF_PLUS;
    CompiledWorkload cw = compileWorkload(sampleKernel(), cfg, 1);
    bool any_dead = false;
    for (const auto &bb : cw.kernel().blocks)
        for (const auto &in : bb.instrs)
            for (bool d : in.src_dead)
                any_dead |= d;
    EXPECT_TRUE(any_dead);
}

TEST(Compile, IntervalWorkingSetsFitCachePartition)
{
    SimConfig cfg;
    cfg.design = RfDesign::LTRF;
    cfg.regs_per_interval = 8;
    cfg.rf_cache_bytes = static_cast<std::size_t>(8) *
                         cfg.num_active_warps * BYTES_PER_WARP_REG;
    CompiledWorkload cw = compileWorkload(sampleKernel(), cfg, 1);
    for (const auto &iv : cw.analysis.intervals)
        EXPECT_LE(iv.working_set.count(), 8);
}
