/**
 * @file
 * Tests for reverse postorder, dominators, back edges, and natural
 * loop discovery.
 */

#include <gtest/gtest.h>

#include "compiler/cfg_analysis.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

namespace
{

Kernel
loopKernel()
{
    KernelBuilder b("loop");
    b.mov(0);
    b.beginLoop(4);
    b.iadd(1, 0, 1);
    b.endLoop();
    b.mov(2);
    return b.build();
}

} // namespace

TEST(CfgAnalysis, RpoStartsAtEntry)
{
    Kernel k = loopKernel();
    CfgInfo info = analyzeCfg(k);
    ASSERT_FALSE(info.rpo.empty());
    EXPECT_EQ(info.rpo.front(), k.entry());
    // All blocks reachable.
    EXPECT_EQ(info.rpo.size(), static_cast<size_t>(k.numBlocks()));
    for (BlockId b = 0; b < k.numBlocks(); b++)
        EXPECT_TRUE(info.reachable(b));
}

TEST(CfgAnalysis, RpoRespectsForwardEdges)
{
    Kernel k = loopKernel();
    CfgInfo info = analyzeCfg(k);
    // Forward (non-back) edges must go from lower to higher RPO index.
    for (const auto &bb : k.blocks) {
        for (BlockId s : bb.succs) {
            bool is_back = false;
            for (auto [t, h] : info.back_edges)
                if (t == bb.id && h == s)
                    is_back = true;
            if (!is_back)
                EXPECT_LT(info.rpo_index[bb.id], info.rpo_index[s]);
        }
    }
}

TEST(CfgAnalysis, EntryDominatesEverything)
{
    Kernel k = loopKernel();
    CfgInfo info = analyzeCfg(k);
    for (BlockId b = 0; b < k.numBlocks(); b++)
        EXPECT_TRUE(info.dominates(k.entry(), b));
}

TEST(CfgAnalysis, SimpleLoopBackEdge)
{
    Kernel k = loopKernel();
    CfgInfo info = analyzeCfg(k);
    ASSERT_EQ(info.back_edges.size(), 1u);
    auto [tail, head] = info.back_edges[0];
    // Builder makes the single-block loop: header == latch == block 1.
    EXPECT_EQ(tail, 1);
    EXPECT_EQ(head, 1);
    EXPECT_TRUE(info.reducible);
    ASSERT_EQ(info.loops.size(), 1u);
    EXPECT_EQ(info.loops[0].header, 1);
    EXPECT_EQ(info.loops[0].body.size(), 1u);
}

TEST(CfgAnalysis, NestedLoopsBodyContainment)
{
    KernelBuilder b("nested");
    b.beginLoop(2);
    b.mov(0);
    b.beginLoop(3);
    b.mov(1);
    b.endLoop();
    b.mov(2);
    b.endLoop();
    Kernel k = b.build();
    CfgInfo info = analyzeCfg(k);

    ASSERT_EQ(info.loops.size(), 2u);
    // Loops are sorted inner-first.
    const LoopInfo &inner = info.loops[0];
    const LoopInfo &outer = info.loops[1];
    EXPECT_LT(inner.body.size(), outer.body.size());
    // Inner body is a subset of the outer body.
    for (BlockId bb : inner.body) {
        EXPECT_NE(std::find(outer.body.begin(), outer.body.end(), bb),
                  outer.body.end());
    }
    // Outer loop header dominates the inner header.
    EXPECT_TRUE(info.dominates(outer.header, inner.header));
}

TEST(CfgAnalysis, DiamondDominators)
{
    KernelBuilder b("diamond");
    b.mov(0);
    b.beginIf(0.5, 0);
    b.mov(1);
    b.beginElse();
    b.mov(2);
    b.endIf();
    b.mov(3);
    Kernel k = b.build();
    CfgInfo info = analyzeCfg(k);

    BlockId cond = 0;
    BlockId then_b = k.block(cond).succs[0];
    BlockId else_b = k.block(cond).succs[1];
    BlockId join = k.block(then_b).succs[0];

    EXPECT_TRUE(info.dominates(cond, join));
    EXPECT_FALSE(info.dominates(then_b, join));
    EXPECT_FALSE(info.dominates(else_b, join));
    EXPECT_EQ(info.idom[join], cond);
    EXPECT_TRUE(info.back_edges.empty());
    EXPECT_TRUE(info.reducible);
}

TEST(CfgAnalysis, BuilderCfgsAreReducible)
{
    KernelBuilder b("big");
    b.mov(0);
    for (int i = 0; i < 3; i++) {
        b.beginLoop(4);
        b.beginIf(0.5, 0);
        b.mov(1);
        b.beginElse();
        b.mov(2);
        b.endIf();
    }
    for (int i = 0; i < 3; i++)
        b.endLoop();
    Kernel k = b.build();
    CfgInfo info = analyzeCfg(k);
    EXPECT_TRUE(info.reducible);
    EXPECT_EQ(info.loops.size(), 3u);
}

TEST(CfgAnalysis, InvalidAndOutOfRangeIdsAreHandled)
{
    // reachable()/dominates() must reject INVALID_BLOCK and
    // out-of-range ids instead of indexing out of bounds — the
    // static verifier probes possibly-corrupt CFGs through them.
    KernelBuilder b("diamond");
    b.beginIf(0.5, 0);
    b.mov(1);
    b.beginElse();
    b.mov(2);
    b.endIf();
    Kernel k = b.build();
    CfgInfo info = analyzeCfg(k);
    const BlockId n = static_cast<BlockId>(k.numBlocks());

    EXPECT_FALSE(info.reachable(INVALID_BLOCK));
    EXPECT_FALSE(info.reachable(-5));
    EXPECT_FALSE(info.reachable(n));
    EXPECT_FALSE(info.reachable(n + 100));
    EXPECT_TRUE(info.reachable(k.entry()));

    EXPECT_FALSE(info.dominates(INVALID_BLOCK, k.entry()));
    EXPECT_FALSE(info.dominates(k.entry(), INVALID_BLOCK));
    EXPECT_FALSE(info.dominates(n, k.entry()));
    EXPECT_FALSE(info.dominates(k.entry(), n + 7));
    EXPECT_TRUE(info.dominates(k.entry(), k.entry()));
}

TEST(CfgAnalysis, UnreachableBlocksNeitherDominateNorAreDominated)
{
    // Hand-build a CFG with an unreachable block: entry -> exit,
    // plus an orphan that also branches to the exit.
    Kernel k;
    k.name = "orphan";
    k.num_regs = 1;
    k.blocks.resize(3);
    for (int i = 0; i < 3; i++)
        k.blocks[i].id = i;
    k.blocks[0].instrs.push_back(Instruction::branch(INVALID_REG));
    k.blocks[0].succs = {2};
    k.blocks[1].instrs.push_back(Instruction::branch(INVALID_REG));
    k.blocks[1].succs = {2};
    k.blocks[2].instrs.push_back(Instruction::exit());
    k.blocks[2].preds = {0, 1};

    CfgInfo info = analyzeCfg(k);
    EXPECT_TRUE(info.reachable(0));
    EXPECT_FALSE(info.reachable(1));
    EXPECT_TRUE(info.reachable(2));
    EXPECT_FALSE(info.dominates(1, 2));
    EXPECT_FALSE(info.dominates(0, 1));
    EXPECT_FALSE(info.dominates(1, 1));
}
