/**
 * @file
 * Tests for dynamic trace generation and interval-length statistics
 * (paper Table 4 machinery).
 */

#include <gtest/gtest.h>

#include "compiler/prefetch_insert.hh"
#include "compiler/trace_gen.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

TEST(TraceGen, StraightLineTraceMatchesStaticCount)
{
    KernelBuilder b("straight");
    b.mov(0).mov(1).iadd(2, 0, 1);
    Kernel k = b.build();
    WarpTrace t = generateTrace(k, 1);
    EXPECT_EQ(t.real_instrs, static_cast<std::uint64_t>(
                                     k.staticInstrCount()));
    EXPECT_FALSE(t.truncated);
}

TEST(TraceGen, LoopTripCountHonored)
{
    KernelBuilder b("loop");
    b.mov(0);
    b.beginLoop(7);
    b.iadd(1, 0, 1);
    b.endLoop();
    Kernel k = b.build();
    WarpTrace t = generateTrace(k, 1);
    // Body (iadd + BRA) runs 7x; plus mov and final EXIT.
    int iadds = 0;
    for (auto ref : t.refs)
        if (k.block(ref.bb).instrs[ref.idx].op == Opcode::IADD)
            iadds++;
    EXPECT_EQ(iadds, 7);
}

TEST(TraceGen, DeterministicPerSeed)
{
    KernelBuilder b("cond");
    b.mov(0);
    b.beginLoop(50);
    b.beginIf(0.5, 0);
    b.iadd(1, 0, 1);
    b.beginElse();
    b.imul(2, 0, 0);
    b.endIf();
    b.endLoop();
    Kernel k = b.build();

    WarpTrace a = generateTrace(k, 42);
    WarpTrace b2 = generateTrace(k, 42);
    WarpTrace c = generateTrace(k, 43);
    ASSERT_EQ(a.refs.size(), b2.refs.size());
    for (size_t i = 0; i < a.refs.size(); i++) {
        EXPECT_EQ(a.refs[i].bb, b2.refs[i].bb);
        EXPECT_EQ(a.refs[i].idx, b2.refs[i].idx);
    }
    // A different seed takes a different path through the
    // conditionals somewhere (the then/else bodies are the same
    // length, so compare block sequences, not sizes).
    bool diverged = a.refs.size() != c.refs.size();
    for (size_t i = 0; !diverged && i < a.refs.size(); i++)
        diverged = a.refs[i].bb != c.refs[i].bb;
    EXPECT_TRUE(diverged);
}

TEST(TraceGen, CondProbabilityShapesPath)
{
    KernelBuilder b("cond");
    b.mov(0);
    b.beginLoop(2000);
    b.beginIf(0.25, 0);
    b.iadd(1, 0, 1);   // then side
    b.beginElse();
    b.imul(2, 0, 0);   // else side
    b.endIf();
    b.endLoop();
    Kernel k = b.build();
    WarpTrace t = generateTrace(k, 99);
    int thens = 0, elses = 0;
    for (auto ref : t.refs) {
        Opcode op = k.block(ref.bb).instrs[ref.idx].op;
        if (op == Opcode::IADD)
            thens++;
        if (op == Opcode::IMUL)
            elses++;
    }
    double frac = static_cast<double>(thens) / (thens + elses);
    EXPECT_NEAR(frac, 0.25, 0.05);
}

TEST(TraceGen, TripJitterVariesAcrossWarpsDeterministically)
{
    KernelBuilder b("jitter");
    b.beginLoop(10, 3);
    b.mov(0);
    b.endLoop();
    Kernel k = b.build();
    std::uint64_t len0 = generateTrace(k, 0).real_instrs;
    bool any_different = false;
    for (std::uint64_t s = 1; s < 16; s++) {
        std::uint64_t len = generateTrace(k, s).real_instrs;
        if (len != len0)
            any_different = true;
        // Re-generation is stable.
        EXPECT_EQ(generateTrace(k, s).real_instrs, len);
    }
    EXPECT_TRUE(any_different);
}

TEST(TraceGen, TruncationGuard)
{
    KernelBuilder b("huge");
    b.beginLoop(1000000);
    b.mov(0);
    b.endLoop();
    Kernel k = b.build();
    WarpTrace t = generateTrace(k, 1, 5000);
    EXPECT_TRUE(t.truncated);
    EXPECT_EQ(t.refs.size(), 5000u);
}

TEST(IntervalLength, RealSegmentsOnLoopKernel)
{
    // One interval covering a loop: the whole execution is a single
    // prefetch segment.
    KernelBuilder b("loop");
    b.mov(0);
    b.beginLoop(10);
    b.iadd(1, 0, 1);
    b.endLoop();
    Kernel k = b.build();
    FormationOptions o;
    o.max_regs = 16;
    IntervalAnalysis ia = formRegisterIntervals(k, o);
    ASSERT_EQ(ia.intervals.size(), 1u);
    insertPrefetchOps(ia);

    WarpTrace t = generateTrace(ia.kernel, 1);
    IntervalLengthStats st = realIntervalLengths(ia, t);
    EXPECT_EQ(st.segments, 1u);
    EXPECT_EQ(st.max, t.real_instrs);
}

TEST(IntervalLength, StrandSemanticsReprefetchesPerIteration)
{
    // With strand semantics, re-entering the region header via the
    // back edge closes a segment each iteration.
    KernelBuilder b("loop");
    b.mov(0);
    b.beginLoop(10);
    b.iadd(1, 0, 1);
    b.endLoop();
    Kernel k = b.build();
    IntervalAnalysis ia = formStrands(k, 16);
    insertPrefetchOps(ia);

    WarpTrace t = generateTrace(ia.kernel, 1);
    IntervalLengthStats interval_like = realIntervalLengths(ia, t, false);
    IntervalLengthStats strand_like = realIntervalLengths(ia, t, true);
    EXPECT_GT(strand_like.segments, interval_like.segments);
    EXPECT_GE(strand_like.segments, 10u);
}

TEST(IntervalLength, OptimalAtLeastAsLongAsReal)
{
    // Optimal lengths ignore control-flow constraints, so the average
    // optimal segment is >= the average real segment (Table 4 shows
    // real ~ 89% of optimal).
    KernelBuilder b("mix");
    b.mov(0);
    for (int l = 0; l < 3; l++) {
        b.beginLoop(5);
        for (int i = 0; i < 9; i += 3)
            b.iadd(9 * l + i + 2, 9 * l + i, 9 * l + i + 1);
    }
    for (int l = 0; l < 3; l++)
        b.endLoop();
    Kernel k = b.build();
    FormationOptions o;
    o.max_regs = 16;
    IntervalAnalysis ia = formRegisterIntervals(k, o);
    insertPrefetchOps(ia);

    WarpTrace t = generateTrace(ia.kernel, 7);
    IntervalLengthStats real = realIntervalLengths(ia, t);
    IntervalLengthStats opt =
            optimalIntervalLengths(ia.kernel, t, o.max_regs);
    EXPECT_GE(opt.avg, real.avg * 0.999);
}

TEST(IntervalLength, MergeCombinesSamples)
{
    IntervalLengthStats a;
    a.avg = 10.0;
    a.min = 5;
    a.max = 15;
    a.segments = 2;
    IntervalLengthStats b;
    b.avg = 20.0;
    b.min = 18;
    b.max = 22;
    b.segments = 2;
    a.merge(b);
    EXPECT_EQ(a.segments, 4u);
    EXPECT_DOUBLE_EQ(a.avg, 15.0);
    EXPECT_EQ(a.min, 5u);
    EXPECT_EQ(a.max, 22u);

    IntervalLengthStats empty;
    empty.merge(a);
    EXPECT_EQ(empty.segments, 4u);
    a.merge(IntervalLengthStats{});
    EXPECT_EQ(a.segments, 4u);
}
