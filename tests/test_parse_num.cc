/**
 * @file
 * Tests for the checked CLI numeric parsers (common/parse_num):
 * whole-string parsing, explicit range failures instead of strtol's
 * silent saturation, and rejection of the silent int-narrowing wrap
 * (`--budget 4294967297` becoming 1) that motivated them.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/parse_num.hh"

using namespace ltrf;

TEST(ParseNum, IntAcceptsPlainBase10)
{
    int v = -1;
    EXPECT_TRUE(parseInt("0", v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-17", v));
    EXPECT_EQ(v, -17);
    EXPECT_TRUE(parseInt("2147483647", v));
    EXPECT_EQ(v, 2147483647);
    EXPECT_TRUE(parseInt("-2147483648", v));
    EXPECT_EQ(v, -2147483648);
}

TEST(ParseNum, IntRejectsMalformedTokens)
{
    int v = 99;
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("x12", v));
    EXPECT_FALSE(parseInt("1 2", v));
    EXPECT_FALSE(parseInt(" 12", v));    // strtol would skip the ws
    EXPECT_FALSE(parseInt("+12", v));    // strtol would accept '+'
    EXPECT_FALSE(parseInt("-", v));
    EXPECT_FALSE(parseInt("0x10", v));   // base 10 only
    EXPECT_FALSE(parseInt("1.5", v));
    EXPECT_EQ(v, 99) << "failed parses must not touch the output";
}

TEST(ParseNum, IntRejectsOutOfRangeInsteadOfWrapping)
{
    int v = 0;
    // 2^32 + 1: static_cast<int>(strtol(...)) used to yield 1.
    EXPECT_FALSE(parseInt("4294967297", v));
    EXPECT_FALSE(parseInt("2147483648", v));      // INT_MAX + 1
    EXPECT_FALSE(parseInt("-2147483649", v));     // INT_MIN - 1
    // Beyond even long long: strtol saturates, we reject.
    EXPECT_FALSE(parseInt("99999999999999999999999999", v));
}

TEST(ParseNum, Int64CoversTheWiderRange)
{
    std::int64_t v = 0;
    EXPECT_TRUE(parseInt64("4294967297", v));
    EXPECT_EQ(v, 4294967297ll);
    EXPECT_TRUE(parseInt64("9223372036854775807", v));
    EXPECT_EQ(v, INT64_MAX);
    EXPECT_TRUE(parseInt64("-9223372036854775808", v));
    EXPECT_EQ(v, INT64_MIN);
    EXPECT_FALSE(parseInt64("9223372036854775808", v));
}

TEST(ParseNum, Uint64AcceptsFullRangeRejectsNegatives)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseUint64("4294967297", v));
    EXPECT_EQ(v, 4294967297ull);
    EXPECT_TRUE(parseUint64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
    EXPECT_FALSE(parseUint64("18446744073709551616", v));
    // strtoull wraps "-1" to UINT64_MAX; the checked parse refuses.
    EXPECT_FALSE(parseUint64("-1", v));
    EXPECT_FALSE(parseUint64("+1", v));
    EXPECT_FALSE(parseUint64("", v));
    EXPECT_FALSE(parseUint64("12, 13", v));
}

TEST(ParseNum, DoubleParsesFiniteWholeStrings)
{
    double v = 0.0;
    EXPECT_TRUE(parseDouble("0.5", v));
    EXPECT_DOUBLE_EQ(v, 0.5);
    EXPECT_TRUE(parseDouble("-3.25e2", v));
    EXPECT_DOUBLE_EQ(v, -325.0);
    EXPECT_FALSE(parseDouble("", v));
    EXPECT_FALSE(parseDouble("1.5x", v));
    EXPECT_FALSE(parseDouble(" 1.5", v));
    EXPECT_FALSE(parseDouble("nan", v));
    EXPECT_FALSE(parseDouble("inf", v));
    EXPECT_FALSE(parseDouble("1e999", v));    // overflows to inf
}
