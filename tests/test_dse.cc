/**
 * @file
 * Tests for the design-space exploration subsystem: space
 * enumeration/sampling/neighborhoods, the Pareto frontier, and the
 * explorer's determinism guarantees (same seed + any --jobs value
 * -> byte-identical serialized results), including the Table 2
 * grid-reproduction property the CLI acceptance check relies on.
 */

#include <gtest/gtest.h>

#include <set>

#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "dse/space.hh"

using namespace ltrf;
using namespace ltrf::dse;

namespace
{

/** A 4-point space that evaluates in ~a second. */
DesignSpace
microSpace()
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM};
    s.banks = {1, 8};
    s.bank_sizes = {1};
    s.networks = {};    // auto
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};
    return s;
}

ExploreOptions
microOptions()
{
    ExploreOptions opt;
    opt.workloads = {"bfs", "btree"};
    opt.num_sms = 1;
    opt.seed = 2018;
    return opt;
}

} // namespace

// ----- Design space -----

TEST(DesignSpace, DefaultsSizeAndDistinctEnumeration)
{
    DesignSpace s = DesignSpace::defaults();
    s.validate();
    EXPECT_EQ(s.size(), 4u * 4 * 4 * 3 * 1 * 3);

    DesignSpace micro = microSpace();
    EXPECT_EQ(micro.size(), 4u);
    std::set<std::string> keys;
    for (const DesignPoint &p : micro.enumerate())
        keys.insert(p.key());
    EXPECT_EQ(keys.size(), 4u);
}

TEST(DesignSpace, PointAtDecodesLexicographically)
{
    DesignSpace s = microSpace();
    // warps is the fastest axis; with one value each for the minor
    // axes, index order is (hp,b1), (hp,b8), (tfet,b1), (tfet,b8).
    EXPECT_EQ(s.pointAt(0).tech, CellTech::HP_SRAM);
    EXPECT_EQ(s.pointAt(0).banks_mult, 1);
    EXPECT_EQ(s.pointAt(0).network, NetworkKind::CROSSBAR);
    EXPECT_EQ(s.pointAt(1).banks_mult, 8);
    EXPECT_EQ(s.pointAt(1).network, NetworkKind::FLAT_BUTTERFLY);
    EXPECT_EQ(s.pointAt(2).tech, CellTech::TFET_SRAM);
    EXPECT_EQ(s.enumerate(3).size(), 3u);
}

TEST(DesignSpace, SamplingIsSeededAndInBounds)
{
    DesignSpace s = DesignSpace::defaults();
    Rng a(7), b(7);
    for (int i = 0; i < 32; i++) {
        DesignPoint pa = s.sample(a);
        DesignPoint pb = s.sample(b);
        EXPECT_EQ(pa.key(), pb.key());
    }
}

TEST(DesignSpace, NeighborsStepOneAxis)
{
    DesignSpace s = DesignSpace::defaults();
    DesignPoint p = s.pointAt(0);    // every axis at its minimum
    std::vector<DesignPoint> n = s.neighbors(p);
    // One step up each of tech, banks, bank size, cache, warps
    // (policy axis has a single value; network is auto).
    EXPECT_EQ(n.size(), 5u);
    for (const DesignPoint &q : n)
        EXPECT_NE(q.key(), p.key());

    // Auto-network retargets when the bank count steps.
    DesignPoint banks_up;
    bool found = false;
    for (const DesignPoint &q : n)
        if (q.banks_mult == 2) {
            banks_up = q;
            found = true;
        }
    ASSERT_TRUE(found);
    EXPECT_EQ(banks_up.network, NetworkKind::FLAT_BUTTERFLY);
}

TEST(DesignSpace, ConfigForFollowsFigureMethodology)
{
    DesignPoint p;
    p.tech = CellTech::TFET_SRAM;
    p.banks_mult = 8;
    p.bank_size_mult = 1;
    p.network = NetworkKind::FLAT_BUTTERFLY;
    p.cache_kb = 32;
    p.policy = PrefetchPolicy::INTERVAL_PLUS;
    p.active_warps = 16;

    SimConfig cfg = configFor(p, 2);
    EXPECT_EQ(cfg.num_sms, 2);
    EXPECT_EQ(cfg.design, RfDesign::LTRF_PLUS);
    EXPECT_EQ(cfg.rf_capacity_mult, 8);
    EXPECT_EQ(cfg.num_mrf_banks, 128);
    EXPECT_DOUBLE_EQ(cfg.mrf_latency_mult, 5.3);
    EXPECT_EQ(cfg.rf_cache_bytes, 32u * 1024);
    EXPECT_EQ(cfg.num_active_warps, 16);
    // The point carries its interval budget; in auto-interval
    // spaces finalize() pins it to the per-warp cache partition
    // (Figures 12/13), and configFor honors whatever the point says
    // — the axes are decoupled.
    EXPECT_EQ(cfg.regs_per_interval, cfg.cacheRegsPerWarp());
    p.regs_per_interval = 8;
    EXPECT_EQ(configFor(p, 2).regs_per_interval, 8);
}

TEST(DesignSpace, SimKeyCollapsesEquivalentConfigs)
{
    // At 1x banks the two networks model identical latency, so the
    // points simulate identically and must share a sim key.
    DesignPoint a, b;
    a.network = NetworkKind::CROSSBAR;
    b.network = NetworkKind::FLAT_BUTTERFLY;
    EXPECT_EQ(simKey(configFor(a, 2)), simKey(configFor(b, 2)));

    DesignPoint c = a;
    c.cache_kb = 32;
    EXPECT_NE(simKey(configFor(a, 2)), simKey(configFor(c, 2)));
}

TEST(DesignSpaceDeathTest, ValidateRejectsBadAxes)
{
    DesignSpace s = DesignSpace::defaults();
    s.banks = {3};
    EXPECT_EXIT(s.validate(), ::testing::ExitedWithCode(1),
                "power of two");

    DesignSpace s2 = DesignSpace::defaults();
    s2.cache_kbs = {9};    // 72 regs, not divisible by 16 warps
    EXPECT_EXIT(s2.validate(), ::testing::ExitedWithCode(1),
                "not divisible");
}

// ----- Pareto frontier -----

TEST(Pareto, DominanceDefinition)
{
    Objectives a{1.2, 0.8, 1.0};
    Objectives worse{1.1, 0.9, 1.0};
    Objectives tradeoff{1.3, 1.5, 1.0};
    EXPECT_TRUE(dominates(a, worse));
    EXPECT_FALSE(dominates(worse, a));
    EXPECT_FALSE(dominates(a, tradeoff));
    EXPECT_FALSE(dominates(tradeoff, a));
    // Equal objectives: neither dominates.
    EXPECT_FALSE(dominates(a, a));
}

TEST(Pareto, InsertEvictsDominatedMembers)
{
    ParetoFrontier f;
    EXPECT_TRUE(f.insert(0, {1.0, 1.0, 1.0}));
    EXPECT_TRUE(f.insert(1, {1.2, 1.2, 1.0}));    // tradeoff: joins
    EXPECT_EQ(f.size(), 2u);
    // Dominates both: evicts both.
    EXPECT_TRUE(f.insert(2, {1.3, 0.9, 0.9}));
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.members()[0].point_index, 2);
    // Dominated: rejected.
    EXPECT_FALSE(f.insert(3, {1.2, 1.0, 1.0}));
    EXPECT_EQ(f.size(), 1u);
}

TEST(Pareto, MembersOrderedByIpcThenIndex)
{
    ParetoFrontier f;
    f.insert(0, {1.0, 0.5, 1.0});
    f.insert(1, {1.4, 0.9, 1.0});
    f.insert(2, {1.2, 0.7, 1.0});
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f.members()[0].point_index, 1);
    EXPECT_EQ(f.members()[1].point_index, 2);
    EXPECT_EQ(f.members()[2].point_index, 0);
}

// ----- Explorer -----

TEST(Explorer, RandomSearchIsDeterministicAcrossJobs)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::RANDOM;
    opt.budget = 8;    // > space size: collects all 4 points

    opt.jobs = 1;
    DseResult serial = explore(microSpace(), opt);
    opt.jobs = 8;
    DseResult parallel = explore(microSpace(), opt);

    EXPECT_EQ(serial.evaluated.size(), 4u);
    // The strong property the CI smoke step relies on:
    // byte-identical serialized output regardless of the job count.
    EXPECT_EQ(serial.toJson().dump(2), parallel.toJson().dump(2));
    EXPECT_EQ(serial.toCsv(), parallel.toCsv());
    EXPECT_FALSE(serial.frontier.empty());
}

TEST(Explorer, GridRestrictedToTable2AxesReproducesPublishedRows)
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::LSTP_SRAM,
               CellTech::TFET_SRAM, CellTech::DWM};
    s.banks = {1, 8};
    s.bank_sizes = {1, 8};
    s.networks = {};    // auto: the paper's pairing
    s.cache_kbs = {16};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {8};

    ExploreOptions opt = microOptions();
    opt.workloads = {"bfs"};
    opt.strategy = Strategy::GRID;

    DseResult res = explore(s, opt);
    EXPECT_EQ(res.evaluated.size(), 16u);

    // Exactly the seven published rows appear, each with its model
    // scalars bit-identical to Table 2.
    std::set<int> ids;
    for (const PointResult &pr : res.evaluated) {
        if (pr.model.id == 0)
            continue;
        ids.insert(pr.model.id);
        const RfConfig &pub = rfConfig(pr.model.id);
        EXPECT_EQ(pr.model.capacity, pub.capacity);
        EXPECT_EQ(pr.model.area, pub.area);
        EXPECT_EQ(pr.model.power, pub.power);
        EXPECT_EQ(pr.model.latency, pub.latency);
    }
    EXPECT_EQ(ids, (std::set<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(Explorer, HillClimbPrunesModelDominatedNeighbors)
{
    // One bank organization under both networks: the crossbar point
    // is identical except for a higher modeled latency, so once the
    // butterfly point is evaluated the crossbar neighbor is pruned.
    DesignSpace s = microSpace();
    s.techs = {CellTech::HP_SRAM};
    s.banks = {8};
    s.networks = {NetworkKind::FLAT_BUTTERFLY, NetworkKind::CROSSBAR};

    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::HILL_CLIMB;
    opt.budget = 2;

    DseResult res = explore(s, opt);
    EXPECT_TRUE(res.prune);
    EXPECT_EQ(res.evaluated.size(), 1u);
    EXPECT_EQ(res.pruned, 1u);
    EXPECT_EQ(res.evaluated[0].point.network,
              NetworkKind::FLAT_BUTTERFLY);
}

TEST(Explorer, PruneCanFireOnlyWithAnExplicitNetworkPair)
{
    // The heuristic's only dominance source is two networks
    // competing at one bank count. The auto pairing (the fallback
    // the prune context derives network values from) assigns each
    // bank count a single network, so nothing is ever dominated.
    DesignSpace auto_nets = microSpace();
    auto_nets.networks = {};
    EXPECT_FALSE(pruneCanFire(auto_nets));

    DesignSpace one_net = microSpace();
    one_net.networks = {NetworkKind::FLAT_BUTTERFLY};
    EXPECT_FALSE(pruneCanFire(one_net));

    DesignSpace both = microSpace();
    both.networks = {NetworkKind::CROSSBAR,
                     NetworkKind::FLAT_BUTTERFLY};
    EXPECT_TRUE(pruneCanFire(both));
}

TEST(Explorer, AutoNetworkPruningIsInactiveButHarmless)
{
    // Forcing --prune on an auto-network space warns (pruning is
    // structurally inactive) but must not change any result: the
    // same points evaluate to the same report as with pruning off.
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::RANDOM;
    opt.budget = 4;

    opt.prune = 1;
    const DseResult on = explore(microSpace(), opt);
    opt.prune = 0;
    const DseResult off = explore(microSpace(), opt);

    EXPECT_TRUE(on.prune);
    EXPECT_EQ(on.pruned, 0u);
    ASSERT_EQ(on.evaluated.size(), off.evaluated.size());
    for (std::size_t i = 0; i < on.evaluated.size(); i++)
        EXPECT_EQ(on.evaluated[i].point, off.evaluated[i].point);
    EXPECT_EQ(on.frontier, off.frontier);
}

TEST(Explorer, ExplicitNetworkPairPrunesDominatedVariants)
{
    // Regression for the heuristic actually firing: with both
    // networks enumerated, every bank organization appears twice
    // and the dominated variant (higher latency, area, and power at
    // the same capacity/banks) is pruned once its twin has been
    // admitted in an earlier batch. The space must span more than
    // one 16-point admission batch — points are never pruned
    // against their own batch.
    DesignSpace s = microSpace();
    s.techs = {CellTech::HP_SRAM, CellTech::TFET_SRAM,
               CellTech::DWM};
    s.banks = {1, 2, 4, 8};
    s.networks = {NetworkKind::FLAT_BUTTERFLY,
                  NetworkKind::CROSSBAR};
    ASSERT_TRUE(pruneCanFire(s));

    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::RANDOM;
    opt.budget = 24;    // the whole doubled space
    opt.prune = 1;
    const DseResult res = explore(s, opt);
    EXPECT_GT(res.pruned, 0u);
    EXPECT_EQ(res.evaluated.size() + res.pruned, 24u);
}

TEST(Explorer, GridDefaultsToNoPruning)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::GRID;
    DseResult res = explore(microSpace(), opt);
    EXPECT_FALSE(res.prune);
    EXPECT_EQ(res.pruned, 0u);
    EXPECT_EQ(res.evaluated.size(), 4u);
    // Frontier membership flags agree with the frontier list.
    std::size_t flagged = 0;
    for (const PointResult &pr : res.evaluated)
        flagged += pr.on_frontier ? 1 : 0;
    EXPECT_EQ(flagged, res.frontier.size());
}

TEST(ExplorerDeathTest, RandomWithoutBudgetIsFatal)
{
    ExploreOptions opt = microOptions();
    opt.strategy = Strategy::RANDOM;
    opt.budget = 0;
    EXPECT_EXIT(explore(microSpace(), opt),
                ::testing::ExitedWithCode(1), "budget");
}

// ----- Streaming enumeration (PointCursor) -----

TEST(PointCursor, YieldsExactlyThePointAtOrder)
{
    const DesignSpace s = DesignSpace::defaults();
    PointCursor cur(s, 0, s.size());
    DesignPoint p;
    std::uint64_t i = 0;
    while (cur.next(p)) {
        ASSERT_EQ(p, s.pointAt(i)) << "index " << i;
        i++;
    }
    EXPECT_EQ(i, s.size());
    EXPECT_FALSE(cur.next(p)) << "exhausted cursors stay exhausted";
}

TEST(PointCursor, StripesMatchTheShardMath)
{
    const DesignSpace s = DesignSpace::defaults();
    // An interior stripe starting mid-odometer.
    const std::uint64_t lo = 123, n = 77;
    PointCursor cur(s, lo, n);
    EXPECT_EQ(cur.index(), lo);
    DesignPoint p;
    for (std::uint64_t i = 0; i < n; i++) {
        ASSERT_TRUE(cur.next(p));
        ASSERT_EQ(p, s.pointAt(lo + i));
    }
    EXPECT_FALSE(cur.next(p));

    // Count clamps to the space end; a start past the end is empty
    // (the "shard past the end" case).
    PointCursor tail(s, s.size() - 3, 1000);
    std::uint64_t got = 0;
    while (tail.next(p))
        got++;
    EXPECT_EQ(got, 3u);
    PointCursor past(s, s.size() + 5, 10);
    EXPECT_FALSE(past.next(p));
    PointCursor empty(s, 0, 0);
    EXPECT_FALSE(empty.next(p));
}

namespace
{

/** A >10^6-point space (streaming-admission scale; never simulated). */
DesignSpace
megaSpace()
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::LSTP_SRAM,
               CellTech::TFET_SRAM, CellTech::DWM};
    s.banks = {1, 2, 4, 8};
    s.bank_sizes = {1, 2, 4, 8};
    s.networks = {NetworkKind::CROSSBAR, NetworkKind::FLAT_BUTTERFLY};
    s.cache_kbs = {8, 16, 32};
    s.policies = {PrefetchPolicy::NONE,     PrefetchPolicy::HW_CACHE,
                  PrefetchPolicy::SW_CACHE, PrefetchPolicy::STRAND,
                  PrefetchPolicy::INTERVAL,
                  PrefetchPolicy::INTERVAL_PLUS};
    s.warps = {2, 4, 6, 8, 16};
    s.intervals = {4, 8, 16, 32, 64};
    s.collectors = {2, 4, 8, 16};
    s.dram_service = {1, 2, 3, 4, 5};
    return s;
}

} // namespace

TEST(PointCursor, StreamsAMillionPointSpaceWithoutMaterializing)
{
    const DesignSpace s = megaSpace();
    ASSERT_GE(s.size(), 1'000'000u);

    // Walk the whole space one point at a time — the enumerate()
    // formulation would materialize s.size() DesignPoints up front.
    // Spot-check the odometer against the mixed-radix decode at
    // scattered indices.
    PointCursor cur(s, 0, s.size());
    DesignPoint p;
    std::uint64_t i = 0;
    while (cur.next(p)) {
        if (i % 99991 == 0)
            ASSERT_EQ(p, s.pointAt(i)) << "index " << i;
        i++;
    }
    EXPECT_EQ(i, s.size());

    // A deep stripe seeks directly instead of skipping.
    const std::uint64_t lo = s.size() - 7;
    PointCursor tail(s, lo, 7);
    for (std::uint64_t k = 0; k < 7; k++) {
        ASSERT_TRUE(tail.next(p));
        ASSERT_EQ(p, s.pointAt(lo + k));
    }
}

TEST(DesignSpace, EnumerateMatchesCursorAndSurvivesHugeLimits)
{
    const DesignSpace s = DesignSpace::defaults();
    const std::vector<DesignPoint> all = s.enumerate();
    ASSERT_EQ(all.size(), s.size());
    for (std::size_t i = 0; i < all.size(); i++)
        ASSERT_EQ(all[i], s.pointAt(i));

    EXPECT_EQ(s.enumerate(5).size(), 5u);
    // A limit far beyond the space (or beyond addressable memory)
    // clamps instead of driving a multi-GB reserve().
    const std::vector<DesignPoint> huge =
            s.enumerate(UINT64_MAX);
    EXPECT_EQ(huge.size(), s.size());
    EXPECT_EQ(huge.front(), all.front());
    EXPECT_EQ(huge.back(), all.back());
}
