/**
 * @file
 * Tests for PREFETCH insertion and the section 4.3 code-size model.
 */

#include <gtest/gtest.h>

#include "compiler/prefetch_insert.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

namespace
{

IntervalAnalysis
analyzed(Kernel k, int n = 16)
{
    FormationOptions o;
    o.max_regs = n;
    return formRegisterIntervals(k, o);
}

Kernel
loopyKernel()
{
    KernelBuilder b("loopy");
    b.mov(0);
    for (int l = 0; l < 2; l++) {
        b.beginLoop(4);
        for (int i = 0; i < 12; i += 3)
            b.iadd(12 * l + i + 2, 12 * l + i, 12 * l + i + 1);
    }
    b.endLoop();
    b.endLoop();
    return b.build();
}

} // namespace

TEST(PrefetchInsert, OnePrefetchPerInterval)
{
    IntervalAnalysis ia = analyzed(loopyKernel(), 8);
    size_t n_intervals = ia.intervals.size();
    PrefetchCodeSize cs = insertPrefetchOps(ia);
    EXPECT_EQ(static_cast<size_t>(cs.num_prefetch_ops), n_intervals);

    int prefetches = 0;
    for (const auto &bb : ia.kernel.blocks)
        for (const auto &in : bb.instrs)
            if (in.op == Opcode::PREFETCH)
                prefetches++;
    EXPECT_EQ(static_cast<size_t>(prefetches), n_intervals);
}

TEST(PrefetchInsert, PrefetchAtHeaderTopWithWorkingSet)
{
    IntervalAnalysis ia = analyzed(loopyKernel(), 8);
    insertPrefetchOps(ia);
    for (const auto &iv : ia.intervals) {
        const auto &header = ia.kernel.block(iv.header);
        ASSERT_FALSE(header.instrs.empty());
        EXPECT_EQ(header.instrs.front().op, Opcode::PREFETCH);
        EXPECT_EQ(header.instrs.front().prefetch_mask, iv.working_set);
    }
}

TEST(PrefetchInsert, RealInstrCountUnchanged)
{
    Kernel k = loopyKernel();
    int before = k.staticInstrCount();
    IntervalAnalysis ia = analyzed(std::move(k), 8);
    insertPrefetchOps(ia);
    EXPECT_EQ(ia.kernel.staticInstrCount(), before);
    EXPECT_GT(ia.kernel.staticInstrCountWithPrefetch(), before);
}

TEST(PrefetchInsert, CodeSizeAccounting)
{
    IntervalAnalysis ia = analyzed(loopyKernel(), 8);
    PrefetchCodeSize cs = insertPrefetchOps(ia);

    EXPECT_EQ(cs.base_bytes,
              static_cast<std::uint64_t>(ia.kernel.staticInstrCount()) *
                      INSTR_BYTES);
    EXPECT_EQ(cs.bitvec_only_bytes,
              cs.base_bytes + static_cast<std::uint64_t>(
                                      cs.num_prefetch_ops) *
                                      PREFETCH_VECTOR_BYTES);
    EXPECT_EQ(cs.with_instr_bytes,
              cs.bitvec_only_bytes + static_cast<std::uint64_t>(
                                             cs.num_prefetch_ops) *
                                             INSTR_BYTES);
    // The explicit-instruction encoding always costs more (paper: 9%
    // vs 7%).
    EXPECT_GT(cs.instrOverhead(), cs.bitvecOverhead());
    EXPECT_GT(cs.bitvecOverhead(), 0.0);
}

TEST(PrefetchInsert, TransformedKernelStillValid)
{
    IntervalAnalysis ia = analyzed(loopyKernel(), 8);
    insertPrefetchOps(ia);
    ia.kernel.validate();  // panics on breakage
}
