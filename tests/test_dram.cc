/**
 * @file
 * Tests for the banked DRAM timing model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace ltrf;

namespace
{

DramParams
params()
{
    DramParams p;
    p.num_banks = 4;
    p.row_hit_latency = 10;
    p.row_miss_latency = 30;
    p.service_cycles = 2;
    p.lines_per_row = 16;
    return p;
}

} // namespace

TEST(Dram, FirstAccessIsRowMiss)
{
    Dram d(params());
    Cycle done = d.schedule(0, 100);
    EXPECT_EQ(done, 100 + 30 + 2u);
    EXPECT_EQ(d.requests(), 1u);
    EXPECT_EQ(d.rowHits(), 0u);
}

TEST(Dram, SequentialLinesRowHit)
{
    Dram d(params());
    d.schedule(0, 0);
    // Lines 1..15 are in the same row as line 0 (row-aligned banks).
    Cycle prev = 0;
    for (std::uint64_t l = 1; l < 16; l++) {
        Cycle done = d.schedule(l, 1000 + l * 50);
        EXPECT_GT(done, prev);
        prev = done;
    }
    EXPECT_EQ(d.rowHits(), 15u);
}

TEST(Dram, RowConflictPaysMissLatency)
{
    Dram d(params());
    d.schedule(0, 0);
    // Row 4 maps to bank 0 too (4 banks): closing row 0.
    Cycle done = d.schedule(4 * 16, 1000);
    EXPECT_EQ(done, 1000 + 30 + 2u);
    // Going back to row 0: another miss.
    Cycle done2 = d.schedule(0, 2000);
    EXPECT_EQ(done2, 2000 + 30 + 2u);
    EXPECT_EQ(d.rowHits(), 0u);
}

TEST(Dram, BankLevelParallelism)
{
    Dram d(params());
    // Rows 0..3 map to banks 0..3: all proceed in parallel, but the
    // shared data bus serializes the transfers by service_cycles.
    Cycle d0 = d.schedule(0 * 16, 0);
    Cycle d1 = d.schedule(1 * 16, 0);
    Cycle d2 = d.schedule(2 * 16, 0);
    EXPECT_EQ(d0, 32u);
    EXPECT_EQ(d1, 34u);   // bus after d0
    EXPECT_EQ(d2, 36u);
}

TEST(Dram, SameBankQueues)
{
    Dram d(params());
    Cycle a = d.schedule(0, 0);          // row 0, bank 0
    Cycle b = d.schedule(4 * 16, 0);     // row 4, bank 0: queued
    EXPECT_EQ(a, 32u);
    // Bank busy until 30, then a 30-cycle row miss, then bus.
    EXPECT_EQ(b, 30 + 30 + 2u);
}

TEST(Dram, BusUtilizationBoundsThroughput)
{
    Dram d(params());
    // 100 row-hit-friendly requests: steady state is bus-limited at
    // one line per service_cycles.
    Cycle last = 0;
    for (int i = 0; i < 100; i++)
        last = d.schedule(static_cast<std::uint64_t>(i % 16), 0);
    EXPECT_GE(last, 100u * 2u);
    EXPECT_EQ(d.requests(), 100u);
}

TEST(Dram, RowHitRateStat)
{
    Dram d(params());
    for (std::uint64_t l = 0; l < 16; l++)
        d.schedule(l, l * 100);
    EXPECT_NEAR(d.rowHitRate(), 15.0 / 16.0, 1e-9);
}
