/**
 * @file
 * Tests for register-interval formation (paper Algorithms 1 and 2).
 */

#include <gtest/gtest.h>

#include "compiler/register_interval.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

namespace
{

FormationOptions
opts(int n)
{
    FormationOptions o;
    o.max_regs = n;
    return o;
}

} // namespace

TEST(RegisterInterval, StraightLineSingleInterval)
{
    KernelBuilder b("straight");
    b.mov(0).mov(1).iadd(2, 0, 1);
    Kernel k = b.build();
    IntervalAnalysis ia = formRegisterIntervals(k, opts(16));
    EXPECT_EQ(ia.intervals.size(), 1u);
    EXPECT_EQ(ia.intervals[0].header, 0);
    EXPECT_EQ(ia.intervals[0].working_set.count(), 3);
}

TEST(RegisterInterval, WorkingSetNeverExceedsN)
{
    KernelBuilder b("wide");
    for (int i = 0; i < 60; i += 3)
        b.iadd(i + 2, i, i + 1);
    Kernel k = b.build();
    for (int n : {8, 16, 32}) {
        IntervalAnalysis ia = formRegisterIntervals(k, opts(n));
        for (const auto &iv : ia.intervals)
            EXPECT_LE(iv.working_set.count(), n);
        ia.validate(n);
    }
}

TEST(RegisterInterval, OverflowSplitsBlock)
{
    // One block touching 20 registers with N=8 must be split into
    // several intervals; the transformed kernel has more blocks.
    KernelBuilder b("overflow");
    for (int i = 0; i < 20; i += 2)
        b.iadd(i, i + 1, i + 1);
    Kernel k = b.build();
    int blocks_before = k.numBlocks();
    IntervalAnalysis ia = formRegisterIntervals(k, opts(8));
    EXPECT_GT(ia.kernel.numBlocks(), blocks_before);
    EXPECT_GT(ia.intervals.size(), 1u);
    // The transformed kernel must still be a valid CFG and execute
    // the same instruction count.
    EXPECT_EQ(ia.kernel.staticInstrCount(), k.staticInstrCount());
}

TEST(RegisterInterval, LoopFitsInOneInterval)
{
    // A loop whose working set fits in N collapses into a single
    // interval (the point of pass 2, paper Figure 6).
    KernelBuilder b("loop");
    b.mov(0);
    b.beginLoop(10);
    b.iadd(1, 0, 1);
    b.endLoop();
    b.mov(2);
    Kernel k = b.build();
    IntervalAnalysis ia = formRegisterIntervals(k, opts(16));
    EXPECT_EQ(ia.intervals.size(), 1u);
    EXPECT_GE(ia.pass2_rounds, 1);
}

TEST(RegisterInterval, Pass1AloneKeepsLoopSeparate)
{
    // Without pass 2 the loop header must start its own interval
    // ("backward edges and thus loop headers always create new
    // intervals", section 3.3).
    KernelBuilder b("loop");
    b.mov(0);
    b.beginLoop(10);
    b.iadd(1, 0, 1);
    b.endLoop();
    b.mov(2);
    Kernel k = b.build();
    FormationOptions o = opts(16);
    o.enable_pass2 = false;
    IntervalAnalysis ia = formRegisterIntervals(k, o);
    EXPECT_GT(ia.intervals.size(), 1u);
    // The loop header (block 1) heads its own interval.
    EXPECT_EQ(ia.intervals[ia.block_interval[1]].header, 1);
}

TEST(RegisterInterval, NestedLoopsMergeFigure6)
{
    // Figure 6: after pass 2, a whole nest whose registers fit
    // becomes one interval; each pass-2 round strips one nest level.
    KernelBuilder b("nest");
    b.mov(0);
    b.beginLoop(4);
    b.mov(1);
    b.beginLoop(4);
    b.iadd(2, 1, 2);
    b.endLoop();
    b.mov(3);
    b.endLoop();
    Kernel k = b.build();
    IntervalAnalysis ia = formRegisterIntervals(k, opts(16));
    EXPECT_EQ(ia.intervals.size(), 1u);
    EXPECT_GE(ia.pass2_rounds, 1);
    EXPECT_GT(ia.intervals_after_pass1,
              static_cast<int>(ia.intervals.size()));
}

TEST(RegisterInterval, NestTooBigStaysSplit)
{
    // Inner loop uses few regs, outer body uses many: with small N
    // the nest cannot collapse completely.
    KernelBuilder b("bignest");
    b.beginLoop(4);
    for (int i = 0; i < 12; i += 3)
        b.iadd(i + 2, i, i + 1);       // outer body: 12 registers
    b.beginLoop(4);
    b.iadd(20, 21, 22);                // inner: 3 registers
    b.endLoop();
    b.endLoop();
    Kernel k = b.build();
    IntervalAnalysis ia = formRegisterIntervals(k, opts(8));
    EXPECT_GT(ia.intervals.size(), 1u);
    for (const auto &iv : ia.intervals)
        EXPECT_LE(iv.working_set.count(), 8);
}

TEST(RegisterInterval, SingleEntryInvariant)
{
    // Randomized-ish structure: all cross-interval edges must enter
    // at interval headers (validate() enforces; exercised here on a
    // branchy kernel).
    KernelBuilder b("branchy");
    b.mov(0);
    b.beginLoop(3);
    b.beginIf(0.5, 0);
    b.iadd(1, 0, 1);
    b.beginElse();
    b.iadd(2, 0, 2);
    b.endIf();
    b.iadd(3, 1, 2);
    b.endLoop();
    Kernel k = b.build();
    for (int n : {8, 12, 16}) {
        IntervalAnalysis ia = formRegisterIntervals(k, opts(n));
        ia.validate(n);  // panics on violation
        // Every block is assigned to exactly one interval that lists
        // it as a member.
        for (const auto &bb : ia.kernel.blocks) {
            const auto &iv = ia.intervalOf(bb.id);
            EXPECT_NE(std::find(iv.blocks.begin(), iv.blocks.end(),
                                bb.id),
                      iv.blocks.end());
        }
    }
}

TEST(RegisterInterval, WorkingSetCoversAllUsedRegs)
{
    KernelBuilder b("cover");
    b.mov(0);
    b.beginLoop(2);
    b.iadd(1, 0, 1);
    b.iadd(2, 1, 0);
    b.endLoop();
    b.iadd(3, 2, 1);
    Kernel k = b.build();
    IntervalAnalysis ia = formRegisterIntervals(k, opts(16));
    for (const auto &iv : ia.intervals) {
        RegBitVec used;
        for (BlockId blk : iv.blocks)
            used |= ia.kernel.block(blk).usedRegs();
        EXPECT_TRUE(iv.working_set.contains(used));
    }
}

TEST(RegisterInterval, SmallerNMeansMoreIntervals)
{
    KernelBuilder b("monotone");
    b.mov(0);
    for (int l = 0; l < 3; l++) {
        b.beginLoop(4);
        for (int i = 0; i < 9; i += 3)
            b.iadd(8 * l + i + 2, 8 * l + i, 8 * l + i + 1);
    }
    for (int l = 0; l < 3; l++)
        b.endLoop();
    Kernel k = b.build();
    size_t n8 = formRegisterIntervals(k, opts(8)).intervals.size();
    size_t n16 = formRegisterIntervals(k, opts(16)).intervals.size();
    size_t n32 = formRegisterIntervals(k, opts(32)).intervals.size();
    EXPECT_GE(n8, n16);
    EXPECT_GE(n16, n32);
}

/** Property sweep over generated kernels and interval sizes. */
class IntervalProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(IntervalProperty, InvariantsHoldOnGeneratedKernels)
{
    auto [seed, n] = GetParam();
    // Deterministically generate a structured kernel from the seed.
    KernelBuilder b("gen" + std::to_string(seed));
    std::uint64_t s = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
    auto next = [&]() { return s = s * 6364136223846793005ull + 1442695040888963407ull; };
    int depth = 0;
    int reg = 0;
    for (int step = 0; step < 24; step++) {
        switch (next() % 5) {
          case 0:
            b.iadd((reg + 2) % 40, reg % 40, (reg + 1) % 40);
            reg += 3;
            break;
          case 1:
            b.load((reg + 1) % 40, reg % 40, 0);
            reg += 2;
            break;
          case 2:
            if (depth < 3) {
                b.beginLoop(2 + static_cast<int>(next() % 4));
                depth++;
            }
            break;
          case 3:
            if (depth > 0) {
                b.endLoop();
                depth--;
            }
            break;
          default:
            b.mov(reg % 40);
            reg++;
            break;
        }
    }
    while (depth-- > 0)
        b.endLoop();
    Kernel k = b.build();

    IntervalAnalysis ia = formRegisterIntervals(k, opts(n));
    ia.validate(n);
    EXPECT_EQ(ia.kernel.staticInstrCount(), k.staticInstrCount());
    EXPECT_LE(ia.intervals.size(),
              static_cast<size_t>(ia.intervals_after_pass1));
}

INSTANTIATE_TEST_SUITE_P(
        Sweep, IntervalProperty,
        ::testing::Combine(::testing::Range(0, 12),
                           ::testing::Values(8, 16, 32)));
