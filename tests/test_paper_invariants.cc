/**
 * @file
 * Integration tests pinning the paper's headline claims on a
 * scaled-down configuration (2 SMs, a 3-workload sample) so they run
 * in seconds. EXPERIMENTS.md holds the full-suite numbers; these
 * tests keep the claims from silently regressing.
 */

#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "tech/rf_config.hh"
#include "workloads/workload.hh"

using namespace ltrf;

namespace
{

constexpr int SMS = 2;

SimConfig
baseline()
{
    SimConfig cfg;
    cfg.num_sms = SMS;
    cfg.design = RfDesign::BL;
    return cfg;
}

SimConfig
onConfig7(RfDesign d)
{
    SimConfig cfg;
    cfg.num_sms = SMS;
    cfg.design = d;
    applyRfConfig(cfg, rfConfig(7));
    return cfg;
}

double
normIpc(const Workload &w, const SimConfig &cfg)
{
    return simulate(cfg, w.kernel, 2018).ipc /
           simulate(baseline(), w.kernel, 2018).ipc;
}

} // namespace

TEST(PaperInvariants, LtrfBeatsRfcAndBlOnSlowBigRf)
{
    // Figure 9's ordering on configuration #7 for a register-
    // sensitive workload: LTRF(+) > 1 > RFC ~ BL.
    const Workload &w = WorkloadSuite::byName("lavaMD");
    double bl = normIpc(w, onConfig7(RfDesign::BL));
    double rfc = normIpc(w, onConfig7(RfDesign::RFC));
    double ltrf = normIpc(w, onConfig7(RfDesign::LTRF));
    double ideal = normIpc(w, onConfig7(RfDesign::IDEAL));

    EXPECT_GT(ltrf, 1.0);
    EXPECT_GT(ltrf, rfc);
    EXPECT_GT(ltrf, bl);
    EXPECT_LT(bl, 0.85);
    // "LTRF performance is within 5% of an ideal" (abstract). At
    // this scaled-down 2-SM configuration the prefetch traffic shares
    // fewer DRAM banks, so allow wider slack than the 4-SM harness.
    EXPECT_GT(ltrf, ideal * 0.75);
}

TEST(PaperInvariants, InsensitiveWorkloadsUnaffectedByCapacity)
{
    // Section 6.1 second observation: for register-insensitive
    // workloads the overhead of the larger register file is minimal
    // under LTRF/LTRF+.
    const Workload &w = WorkloadSuite::byName("kmeans");
    EXPECT_NEAR(normIpc(w, onConfig7(RfDesign::IDEAL)), 1.0, 0.05);
    EXPECT_GT(normIpc(w, onConfig7(RfDesign::LTRF)), 0.9);
    EXPECT_GT(normIpc(w, onConfig7(RfDesign::LTRF_PLUS)), 0.9);
}

TEST(PaperInvariants, LatencyToleranceOrdering)
{
    // Figure 14's essence at a 5x-latency point (capacity constant):
    // LTRF(interval) > LTRF(strand) > RFC-class designs, on a small
    // three-workload mean (single workloads can tie LTRF and strand
    // when their intervals are short anyway).
    auto at5x = [&](RfDesign d) {
        double sum = 0.0;
        for (const char *n : {"gaussian", "sgemm", "backprop"}) {
            SimConfig cfg;
            cfg.num_sms = SMS;
            cfg.design = d;
            cfg.mrf_latency_mult = 5.0;
            sum += simulate(cfg, WorkloadSuite::byName(n).kernel, 2018)
                           .ipc;
        }
        return sum;
    };
    double bl = at5x(RfDesign::BL);
    double rfc = at5x(RfDesign::RFC);
    double shrf = at5x(RfDesign::SHRF);
    double strand = at5x(RfDesign::LTRF_STRAND);
    double ltrf = at5x(RfDesign::LTRF);

    // At 2 SMs the LTRF-vs-strand gap sits within a few percent
    // (strand prefetches here are small and well overlapped; the
    // full-suite Figure 14 harness shows the separation), so this
    // guards against gross inversions only.
    EXPECT_GT(ltrf, strand * 0.95);
    EXPECT_GT(strand, rfc);
    EXPECT_GT(ltrf, shrf * 0.98);
    EXPECT_GT(ltrf, bl * 1.2);
}

TEST(PaperInvariants, MainRfAccessReduction4to6x)
{
    // Section 4.2: LTRF cuts main register file accesses by 4-6x.
    const Workload &w = WorkloadSuite::byName("backprop");
    SimResult bl = simulate(baseline(), w.kernel, 2018);
    SimConfig cfg;
    cfg.num_sms = SMS;
    cfg.design = RfDesign::LTRF;
    SimResult ltrf = simulate(cfg, w.kernel, 2018);
    double reduction = static_cast<double>(bl.main_accesses) /
                       static_cast<double>(ltrf.main_accesses);
    // The 4-SM harness measures ~4-5x (paper: 4-6x); the 2-SM
    // configuration used here runs fewer warps and lands lower.
    EXPECT_GT(reduction, 1.7);
    EXPECT_LT(reduction, 12.0);
}

TEST(PaperInvariants, RegisterCacheHitRatesAreLow)
{
    // Figure 4: demand register caching cannot reach the hit rates
    // needed to hide MRF latency (paper band 8-30%; we accept <60%).
    const Workload &w = WorkloadSuite::byName("mri-q");
    SimConfig cfg;
    cfg.num_sms = SMS;
    cfg.design = RfDesign::RFC;
    SimResult r = simulate(cfg, w.kernel, 2018);
    EXPECT_GT(r.cache_hit_rate, 0.02);
    EXPECT_LT(r.cache_hit_rate, 0.60);
}

TEST(PaperInvariants, LtrfPlusReducesTransfersVsLtrf)
{
    // The liveness bit-vector's purpose (section 3.2): fewer
    // registers written back and refetched.
    const Workload &w = WorkloadSuite::byName("srad");
    SimConfig cfg;
    cfg.num_sms = SMS;
    cfg.design = RfDesign::LTRF;
    SimResult ltrf = simulate(cfg, w.kernel, 2018);
    cfg.design = RfDesign::LTRF_PLUS;
    SimResult plus = simulate(cfg, w.kernel, 2018);
    EXPECT_LT(plus.xfer_regs, ltrf.xfer_regs);
    EXPECT_LT(plus.writeback_regs, ltrf.writeback_regs);
}

TEST(PaperInvariants, Figure10PowerOrdering)
{
    // LTRF+ consumes the least register file power on config #7.
    const Workload &w = WorkloadSuite::byName("hotspot");
    SimResult base = simulate(baseline(), w.kernel, 2018);
    double base_rate = base.activity.main_accesses_per_cycle;
    double base_power = rfPower(rfConfig(1), base.activity, false,
                                base_rate);
    auto power_of = [&](RfDesign d) {
        SimResult r = simulate(onConfig7(d), w.kernel, 2018);
        return rfPower(rfConfig(7), r.activity, true, base_rate) /
               base_power;
    };
    double p_ltrf_plus = power_of(RfDesign::LTRF_PLUS);
    double p_ltrf = power_of(RfDesign::LTRF);
    EXPECT_LT(p_ltrf_plus, p_ltrf * 1.02);
    EXPECT_LT(p_ltrf_plus, 1.0);   // well below the baseline
    EXPECT_LT(p_ltrf, 1.0);
}
