/**
 * @file
 * Tests for the static kernel-IR verifier (src/compiler/verify.hh).
 *
 * Two halves:
 *  - positive: every suite workload compiled for every design
 *    verifies clean (the gate the Gpu constructor applies);
 *  - negative: a seeded mutation harness plants one corruption class
 *    at a time into compiled suite kernels and asserts the verifier
 *    reports the planted defect under the expected check id — the
 *    proof the analysis has teeth.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "compiler/verify.hh"
#include "core/compile.hh"
#include "isa/kernel_builder.hh"
#include "workloads/workload.hh"

using namespace ltrf;

namespace
{

SimConfig
configFor(RfDesign d, int regs_per_interval = 16)
{
    SimConfig cfg;
    cfg.design = d;
    cfg.regs_per_interval = regs_per_interval;
    return cfg;
}

constexpr RfDesign ALL_DESIGNS[] = {
        RfDesign::BL,   RfDesign::RFC,         RfDesign::SHRF,
        RfDesign::LTRF, RfDesign::LTRF_STRAND, RfDesign::LTRF_PLUS,
        RfDesign::IDEAL,
};

} // namespace

// ---------------------------------------------------------------------
// Positive half: the whole suite is clean under every compile config.
// ---------------------------------------------------------------------

TEST(Verifier, SuiteCleanUnderEveryDesign)
{
    for (const Workload &w : WorkloadSuite::all()) {
        for (RfDesign d : ALL_DESIGNS) {
            SimConfig cfg = configFor(d);
            CompiledWorkload cw = compileWorkloadStatic(w.kernel, cfg);
            VerifyResult r =
                    verifyAnalysis(cw.analysis, cfg.regs_per_interval);
            EXPECT_TRUE(r.clean())
                    << w.name << " / " << rfDesignName(d) << ":\n"
                    << r.report();
        }
    }
}

TEST(Verifier, SuiteCleanAtSmallerPartition)
{
    // Interval formation must respect a tighter fast-RF partition
    // too; the capacity check proves it did.
    for (const Workload &w : WorkloadSuite::all()) {
        SimConfig cfg = configFor(RfDesign::LTRF, 8);
        CompiledWorkload cw = compileWorkloadStatic(w.kernel, cfg);
        VerifyResult r = verifyAnalysis(cw.analysis, 8);
        EXPECT_TRUE(r.clean()) << w.name << ":\n" << r.report();
    }
}

TEST(Verifier, RawSuiteKernelsClean)
{
    for (const Workload &w : WorkloadSuite::all()) {
        VerifyResult r = verifyKernel(w.kernel);
        EXPECT_TRUE(r.clean()) << w.name << ":\n" << r.report();
    }
}

// ---------------------------------------------------------------------
// Diagnostics plumbing.
// ---------------------------------------------------------------------

TEST(Verifier, CheckNamesRoundTrip)
{
    for (VerifyCheck c : {VerifyCheck::CFG, VerifyCheck::DEF_USE,
                          VerifyCheck::INTERVAL, VerifyCheck::RESIDENCY,
                          VerifyCheck::DEAD_BIT, VerifyCheck::CAPACITY,
                          VerifyCheck::PREFETCH}) {
        VerifyCheck back = VerifyCheck::CFG;
        ASSERT_TRUE(parseVerifyCheck(verifyCheckName(c), back));
        EXPECT_EQ(back, c);
    }
    VerifyCheck dummy;
    EXPECT_FALSE(parseVerifyCheck("bogus", dummy));
    EXPECT_FALSE(parseVerifyCheck("", dummy));
}

TEST(Verifier, UndefinedReadReported)
{
    KernelBuilder b("undef");
    b.mov(0);
    b.iadd(2, 0, 1); // r1 never defined anywhere
    Kernel k = b.build();
    VerifyResult r = verifyKernel(k);
    EXPECT_TRUE(r.has(VerifyCheck::DEF_USE)) << r.report();

    // ...and the check is individually toggleable.
    VerifyOptions opt;
    opt.disable(VerifyCheck::DEF_USE);
    EXPECT_TRUE(verifyKernel(k, opt).clean());
}

TEST(Verifier, LoopCarriedAccumulatorIsClean)
{
    // The suite's standard idiom: an accumulator seeded by its own
    // first iteration. The weak (exists-a-path) def-use check must
    // tolerate it.
    KernelBuilder b("acc");
    b.mov(0).mov(1);
    b.beginLoop(8);
    b.ffma(2, 0, 1, 2);
    b.endLoop();
    Kernel k = b.build();
    EXPECT_TRUE(verifyKernel(k).clean()) << verifyKernel(k).report();
}

TEST(Verifier, MaxDiagnosticsBounded)
{
    KernelBuilder b("many-undef");
    b.mov(0);
    for (int i = 1; i <= 20; i++)
        b.iadd(0, i, i); // 40 undefined reads
    Kernel k = b.build();
    VerifyOptions opt;
    opt.max_diagnostics = 5;
    VerifyResult r = verifyKernel(k, opt);
    EXPECT_EQ(r.diags.size(), 5u);
    EXPECT_GT(r.dropped, 0);
    EXPECT_FALSE(r.clean());
}

TEST(Verifier, DiagToStringNamesCheckAndLocation)
{
    VerifyDiag d;
    d.check = VerifyCheck::RESIDENCY;
    d.block = 3;
    d.instr = 2;
    d.message = "boom";
    EXPECT_EQ(d.toString(), "[residency] block 3 instr 2: boom");
}

// ---------------------------------------------------------------------
// Negative half: the seeded kernel-mutation harness. Each corruption
// class plants one defect into an LTRF-compiled suite kernel; the
// verifier must report the planted class. Mutators return false when
// a kernel offers no applicable site; every class must apply to at
// least one suite kernel.
// ---------------------------------------------------------------------

namespace
{

struct Corruption
{
    const char *name;
    VerifyCheck expect;
    std::function<bool(CompiledWorkload &)> apply;
};

/** Count defs/reads of every register in @p k (PREFETCH excluded). */
void
countAccesses(const Kernel &k, std::vector<int> &defs,
              std::vector<int> &reads)
{
    defs.assign(static_cast<size_t>(k.num_regs), 0);
    reads.assign(static_cast<size_t>(k.num_regs), 0);
    for (const BasicBlock &bb : k.blocks) {
        for (const Instruction &in : bb.instrs) {
            if (in.op == Opcode::PREFETCH)
                continue;
            if (in.dst != INVALID_REG)
                defs[in.dst]++;
            for (RegId s : in.srcs)
                if (s != INVALID_REG)
                    reads[s]++;
        }
    }
}

bool
retargetBranch(CompiledWorkload &cw)
{
    Kernel &k = cw.analysis.kernel;
    const int n = k.numBlocks();
    for (BasicBlock &bb : k.blocks) {
        if (bb.succs.empty())
            continue;
        for (BlockId v = 0; v < n; v++) {
            if (v == bb.id ||
                std::find(bb.succs.begin(), bb.succs.end(), v) !=
                        bb.succs.end()) {
                continue;
            }
            // Redirect the edge without fixing v's preds: the
            // pred/succ lists go asymmetric.
            bb.succs[0] = v;
            return true;
        }
    }
    return false;
}

bool
orphanBlock(CompiledWorkload &cw)
{
    Kernel &k = cw.analysis.kernel;
    for (BasicBlock &bb : k.blocks) {
        if (bb.id == k.entry() || bb.preds.empty())
            continue;
        // Cleanly remove every incoming edge (both sides), leaving
        // the block unreachable but the CFG otherwise symmetric.
        for (BlockId p : bb.preds) {
            auto &ps = k.block(p).succs;
            ps.erase(std::remove(ps.begin(), ps.end(), bb.id),
                     ps.end());
        }
        bb.preds.clear();
        return true;
    }
    return false;
}

bool
dropPrefetch(CompiledWorkload &cw)
{
    IntervalAnalysis &ia = cw.analysis;
    if (ia.intervals.size() < 2)
        return false; // must leave another PREFETCH in the kernel
    for (const RegisterInterval &iv : ia.intervals) {
        if (iv.working_set.empty())
            continue;
        auto &instrs = ia.kernel.block(iv.header).instrs;
        if (instrs.empty() || instrs.front().op != Opcode::PREFETCH)
            continue;
        instrs.erase(instrs.begin());
        return true;
    }
    return false;
}

bool
clearIntervalCrossing(CompiledWorkload &cw)
{
    IntervalAnalysis &ia = cw.analysis;
    const int ni = static_cast<int>(ia.intervals.size());
    if (ni < 2)
        return false;
    // Reassign one block in the map without updating member lists.
    for (BlockId b = 0;
         b < static_cast<BlockId>(ia.block_interval.size()); b++) {
        IntervalId i = ia.block_interval[b];
        if (i == UNKNOWN_INTERVAL)
            continue;
        ia.block_interval[b] = (i + 1) % ni;
        return true;
    }
    return false;
}

bool
clearMaskBit(CompiledWorkload &cw)
{
    IntervalAnalysis &ia = cw.analysis;
    for (const RegisterInterval &iv : ia.intervals) {
        if (iv.working_set.empty())
            continue;
        auto &instrs = ia.kernel.block(iv.header).instrs;
        if (instrs.empty() || instrs.front().op != Opcode::PREFETCH)
            continue;
        // Evict one working-set register from the header PREFETCH
        // only; the interval metadata stays intact.
        instrs.front().prefetch_mask.clear(
                iv.working_set.toList().front());
        return true;
    }
    return false;
}

bool
shrinkWorkingSet(CompiledWorkload &cw)
{
    IntervalAnalysis &ia = cw.analysis;
    for (RegisterInterval &iv : ia.intervals) {
        RegBitVec used;
        for (BlockId b : iv.blocks)
            used |= ia.kernel.block(b).usedRegs();
        if (used.empty())
            continue;
        iv.working_set.clear(used.toList().front());
        return true;
    }
    return false;
}

bool
flipDeadBit(CompiledWorkload &cw)
{
    Kernel &k = cw.analysis.kernel;
    for (BasicBlock &bb : k.blocks) {
        for (size_t i = 0; i < bb.instrs.size(); i++) {
            Instruction &in = bb.instrs[i];
            if (in.op == Opcode::PREFETCH)
                continue;
            for (int s = 0; s < 3; s++) {
                RegId r = in.srcs[s];
                if (r == INVALID_REG || in.src_dead[s])
                    continue;
                // r must demonstrably be read again in this block
                // with no redefinition in between.
                bool live = false;
                for (size_t j = i + 1;
                     j < bb.instrs.size() && !live; j++) {
                    const Instruction &later = bb.instrs[j];
                    if (later.op == Opcode::PREFETCH)
                        continue;
                    for (RegId ls : later.srcs)
                        if (ls == r)
                            live = true;
                    if (!live && later.dst == r)
                        break; // redefined first: not live
                }
                if (live) {
                    in.src_dead[s] = true;
                    return true;
                }
            }
        }
    }
    return false;
}

bool
swapOperands(CompiledWorkload &cw)
{
    Kernel &k = cw.analysis.kernel;
    for (BasicBlock &bb : k.blocks) {
        for (Instruction &in : bb.instrs) {
            if (in.op == Opcode::PREFETCH)
                continue;
            for (int a = 0; a < 3; a++) {
                for (int b2 = a + 1; b2 < 3; b2++) {
                    if (in.srcs[a] == INVALID_REG ||
                        in.srcs[b2] == INVALID_REG ||
                        in.srcs[a] == in.srcs[b2] ||
                        in.src_dead[a] == in.src_dead[b2]) {
                        continue;
                    }
                    // Swap the registers but keep the dead bits in
                    // place: the live register lands under the dead
                    // mark (annotateDeadOperands guarantees the
                    // unmarked one was live).
                    std::swap(in.srcs[a], in.srcs[b2]);
                    return true;
                }
            }
        }
    }
    return false;
}

bool
dropDef(CompiledWorkload &cw)
{
    Kernel &k = cw.analysis.kernel;
    std::vector<int> defs, reads;
    countAccesses(k, defs, reads);
    for (RegId r = 0; r < k.num_regs; r++) {
        if (defs[r] != 1 || reads[r] == 0)
            continue;
        for (BasicBlock &bb : k.blocks) {
            for (Instruction &in : bb.instrs) {
                if (in.op != Opcode::PREFETCH && in.dst == r) {
                    in.dst = INVALID_REG;
                    return true;
                }
            }
        }
    }
    return false;
}

bool
overflowCapacity(CompiledWorkload &cw)
{
    IntervalAnalysis &ia = cw.analysis;
    constexpr int PARTITION = 16; // must match the verify call below
    for (RegisterInterval &iv : ia.intervals) {
        auto &instrs = ia.kernel.block(iv.header).instrs;
        if (instrs.empty() || instrs.front().op != Opcode::PREFETCH)
            continue;
        // Widen both the working set and its header PREFETCH (so
        // only the capacity invariant breaks) past the partition.
        for (int r = RegBitVec::NUM_BITS - 1;
             r >= 0 && iv.working_set.count() <= PARTITION; r--) {
            iv.working_set.set(r);
            instrs.front().prefetch_mask.set(r);
        }
        return true;
    }
    return false;
}

bool
plantWastedPrefetch(CompiledWorkload &cw)
{
    if (cw.analysis.intervals.empty())
        return false;
    Kernel &k = cw.analysis.kernel;
    for (BasicBlock &bb : k.blocks) {
        if (!bb.succs.empty() || bb.instrs.empty() ||
            bb.instrs.back().op != Opcode::EXIT) {
            continue;
        }
        // A PREFETCH of a never-touched register right before EXIT:
        // nothing can consume it, and nothing after it reads any
        // register, so only the wasted-slot invariant breaks.
        RegBitVec mask;
        mask.set(RegBitVec::NUM_BITS - 1);
        bb.instrs.insert(bb.instrs.end() - 1,
                         Instruction::prefetch(mask));
        return true;
    }
    return false;
}

std::vector<Corruption>
corruptions()
{
    return {
            {"retarget-branch", VerifyCheck::CFG, retargetBranch},
            {"orphan-block", VerifyCheck::CFG, orphanBlock},
            {"drop-prefetch", VerifyCheck::RESIDENCY, dropPrefetch},
            {"clear-crossing", VerifyCheck::INTERVAL,
             clearIntervalCrossing},
            {"clear-mask-bit", VerifyCheck::RESIDENCY, clearMaskBit},
            {"shrink-working-set", VerifyCheck::INTERVAL,
             shrinkWorkingSet},
            {"flip-dead-bit", VerifyCheck::DEAD_BIT, flipDeadBit},
            {"swap-operands", VerifyCheck::DEAD_BIT, swapOperands},
            {"drop-def", VerifyCheck::DEF_USE, dropDef},
            {"overflow-capacity", VerifyCheck::CAPACITY,
             overflowCapacity},
            {"wasted-prefetch", VerifyCheck::PREFETCH,
             plantWastedPrefetch},
    };
}

} // namespace

TEST(VerifierMutation, EveryPlantedDefectClassDetected)
{
    SimConfig cfg = configFor(RfDesign::LTRF, 16);
    for (const Corruption &c : corruptions()) {
        int applied = 0;
        for (const Workload &w : WorkloadSuite::all()) {
            CompiledWorkload cw = compileWorkloadStatic(w.kernel, cfg);
            if (!c.apply(cw))
                continue;
            applied++;
            VerifyResult r = verifyAnalysis(cw.analysis, 16);
            EXPECT_FALSE(r.clean())
                    << c.name << " on " << w.name
                    << ": mutation went undetected";
            EXPECT_TRUE(r.has(c.expect))
                    << c.name << " on " << w.name << " expected a "
                    << verifyCheckName(c.expect)
                    << " diagnostic, got:\n"
                    << r.report();
        }
        EXPECT_GE(applied, 1)
                << c.name << " found no applicable suite kernel";
    }
}

TEST(VerifierMutation, DisablingTheCheckSilencesTheDefect)
{
    // The toggles must really gate their checks: with the expected
    // check disabled, the planted drop-prefetch defect goes silent.
    SimConfig cfg = configFor(RfDesign::LTRF, 16);
    for (const Workload &w : WorkloadSuite::all()) {
        CompiledWorkload cw = compileWorkloadStatic(w.kernel, cfg);
        if (!dropPrefetch(cw))
            continue;
        VerifyOptions opt;
        opt.disable(VerifyCheck::RESIDENCY);
        VerifyResult r = verifyAnalysis(cw.analysis, 16, opt);
        EXPECT_FALSE(r.has(VerifyCheck::RESIDENCY)) << r.report();
        return; // one applicable kernel is enough
    }
    FAIL() << "drop-prefetch applied to no suite kernel";
}
