/**
 * @file
 * Unit and property tests for the 256-bit register bit-vector.
 */

#include <gtest/gtest.h>

#include "common/bitvec.hh"
#include "common/rng.hh"

using namespace ltrf;

TEST(RegBitVec, StartsEmpty)
{
    RegBitVec v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.count(), 0);
    for (int r = 0; r < RegBitVec::NUM_BITS; r++)
        EXPECT_FALSE(v.test(r));
}

TEST(RegBitVec, SetTestClear)
{
    RegBitVec v;
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(255);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(255));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.count(), 4);
    v.clear(63);
    EXPECT_FALSE(v.test(63));
    EXPECT_EQ(v.count(), 3);
}

TEST(RegBitVec, InitializerList)
{
    RegBitVec v{3, 7, 100};
    EXPECT_EQ(v.count(), 3);
    EXPECT_TRUE(v.test(3));
    EXPECT_TRUE(v.test(7));
    EXPECT_TRUE(v.test(100));
}

TEST(RegBitVec, SetAlgebra)
{
    RegBitVec a{1, 2, 3};
    RegBitVec b{3, 4, 5};
    EXPECT_EQ((a | b).count(), 5);
    EXPECT_EQ((a & b).count(), 1);
    EXPECT_TRUE((a & b).test(3));
    RegBitVec d = a - b;
    EXPECT_EQ(d.count(), 2);
    EXPECT_TRUE(d.test(1));
    EXPECT_TRUE(d.test(2));
    EXPECT_FALSE(d.test(3));
}

TEST(RegBitVec, ContainsAndIntersects)
{
    RegBitVec a{1, 2, 3, 200};
    RegBitVec sub{2, 200};
    RegBitVec other{7};
    EXPECT_TRUE(a.contains(sub));
    EXPECT_FALSE(sub.contains(a));
    EXPECT_TRUE(a.contains(a));
    EXPECT_TRUE(a.contains(RegBitVec{}));
    EXPECT_TRUE(a.intersects(sub));
    EXPECT_FALSE(a.intersects(other));
}

TEST(RegBitVec, ToListSortedAscending)
{
    RegBitVec v{200, 5, 64, 63};
    auto list = v.toList();
    ASSERT_EQ(list.size(), 4u);
    EXPECT_EQ(list[0], 5);
    EXPECT_EQ(list[1], 63);
    EXPECT_EQ(list[2], 64);
    EXPECT_EQ(list[3], 200);
}

TEST(RegBitVec, ForEachMatchesToList)
{
    RegBitVec v{0, 17, 42, 128, 255};
    std::vector<RegId> seen;
    v.forEach([&](RegId r) { seen.push_back(r); });
    EXPECT_EQ(seen, v.toList());
}

TEST(RegBitVec, EqualityAndReset)
{
    RegBitVec a{9, 10};
    RegBitVec b{9, 10};
    EXPECT_EQ(a, b);
    b.set(11);
    EXPECT_NE(a, b);
    b.reset();
    EXPECT_TRUE(b.empty());
}

TEST(RegBitVec, ToStringFormat)
{
    RegBitVec v{1, 5};
    EXPECT_EQ(v.toString(), "{1, 5}");
    EXPECT_EQ(RegBitVec{}.toString(), "{}");
}

/** Property sweep: random sets obey algebraic identities. */
class RegBitVecProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RegBitVecProperty, AlgebraicIdentities)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    RegBitVec a, b;
    for (int i = 0; i < 40; i++) {
        a.set(static_cast<int>(rng.nextBounded(256)));
        b.set(static_cast<int>(rng.nextBounded(256)));
    }

    // |A u B| = |A| + |B| - |A n B|
    EXPECT_EQ((a | b).count(), a.count() + b.count() - (a & b).count());
    // (A - B) n B = {}
    EXPECT_TRUE(((a - b) & b).empty());
    // (A - B) u (A n B) = A
    EXPECT_EQ(((a - b) | (a & b)), a);
    // A u B contains both
    EXPECT_TRUE((a | b).contains(a));
    EXPECT_TRUE((a | b).contains(b));
    // count matches list size
    EXPECT_EQ(static_cast<size_t>(a.count()), a.toList().size());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RegBitVecProperty,
                         ::testing::Range(0, 20));
