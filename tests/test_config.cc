/**
 * @file
 * Tests for the simulated-system configuration (Table 3 defaults and
 * derived quantities).
 */

#include <gtest/gtest.h>

#include "common/config.hh"

using namespace ltrf;

TEST(SimConfig, Table3Defaults)
{
    SimConfig cfg;
    // 256KB register file = 2048 warp-wide registers = 65536 thread
    // registers (Table 3 counts 32-bit registers).
    EXPECT_EQ(cfg.numMrfRegs(), 2048);
    // 16KB register cache = 128 warp-wide registers = 4096 32-bit.
    EXPECT_EQ(cfg.numCacheRegs(), 128);
    EXPECT_EQ(cfg.num_active_warps, 8);
    EXPECT_EQ(cfg.regs_per_interval, 16);
    EXPECT_EQ(cfg.max_warps_per_sm, 64);
    // 128 cache registers / 8 active warps = 16 per warp, matching
    // the interval size.
    EXPECT_EQ(cfg.cacheRegsPerWarp(), 16);
    cfg.validate();
}

TEST(SimConfig, CapacityMultiplier)
{
    SimConfig cfg;
    cfg.rf_capacity_mult = 8;
    EXPECT_EQ(cfg.numMrfRegs(), 16384);  // 2MB
}

TEST(SimConfig, LatencyMultiplierRounds)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.mrfLatency(), cfg.base_mrf_latency);
    cfg.mrf_latency_mult = 6.3;
    EXPECT_EQ(cfg.mrfLatency(),
              static_cast<int>(std::lround(cfg.base_mrf_latency * 6.3)));
    cfg.mrf_latency_mult = 1.0;
    cfg.base_mrf_latency = 1;
    EXPECT_GE(cfg.mrfLatency(), 1);
}

TEST(SimConfig, DesignPredicates)
{
    EXPECT_FALSE(usesRegCache(RfDesign::BL));
    EXPECT_FALSE(usesRegCache(RfDesign::IDEAL));
    EXPECT_TRUE(usesRegCache(RfDesign::RFC));
    EXPECT_TRUE(usesRegCache(RfDesign::LTRF));
    EXPECT_TRUE(usesRegCache(RfDesign::LTRF_PLUS));
    EXPECT_TRUE(usesRegCache(RfDesign::SHRF));

    EXPECT_TRUE(usesPrefetch(RfDesign::LTRF));
    EXPECT_TRUE(usesPrefetch(RfDesign::LTRF_PLUS));
    EXPECT_TRUE(usesPrefetch(RfDesign::LTRF_STRAND));
    EXPECT_FALSE(usesPrefetch(RfDesign::RFC));
    EXPECT_FALSE(usesPrefetch(RfDesign::BL));
}

TEST(SimConfig, DesignNames)
{
    EXPECT_STREQ(rfDesignName(RfDesign::BL), "BL");
    EXPECT_STREQ(rfDesignName(RfDesign::LTRF_PLUS), "LTRF+");
    EXPECT_STREQ(rfDesignName(RfDesign::LTRF_STRAND), "LTRF(strand)");
    EXPECT_STREQ(rfDesignName(RfDesign::IDEAL), "Ideal");
}
