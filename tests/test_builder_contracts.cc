/**
 * @file
 * API-contract death tests: misusing the builder DSL or the kernel
 * invariants must fail loudly (gem5-style panic), not corrupt state.
 */

#include <gtest/gtest.h>

#include "compiler/register_interval.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

TEST(BuilderContractDeath, EndLoopWithoutBegin)
{
    KernelBuilder b("k");
    b.mov(0);
    EXPECT_DEATH(b.endLoop(), "no open loop");
}

TEST(BuilderContractDeath, EndIfWithoutBegin)
{
    KernelBuilder b("k");
    b.mov(0);
    EXPECT_DEATH(b.endIf(), "no open if");
}

TEST(BuilderContractDeath, ElseWithoutIf)
{
    KernelBuilder b("k");
    EXPECT_DEATH(b.beginElse(), "no open if");
}

TEST(BuilderContractDeath, DoubleElse)
{
    KernelBuilder b("k");
    b.mov(0);
    b.beginIf(0.5, 0);
    b.beginElse();
    EXPECT_DEATH(b.beginElse(), "duplicate beginElse");
}

TEST(BuilderContractDeath, BuildWithUnclosedLoop)
{
    KernelBuilder b("k");
    b.beginLoop(2);
    b.mov(0);
    EXPECT_DEATH(b.build(), "unclosed loop");
}

TEST(BuilderContractDeath, BuildTwice)
{
    KernelBuilder b("k");
    b.mov(0);
    b.build();
    EXPECT_DEATH(b.build(), "already consumed");
}

TEST(BuilderContractDeath, ZeroTripLoop)
{
    KernelBuilder b("k");
    EXPECT_DEATH(b.beginLoop(0), "trip count");
}

TEST(BuilderContractDeath, BadProbability)
{
    KernelBuilder b("k");
    b.mov(0);
    EXPECT_DEATH(b.beginIf(1.5, 0), "out of");
}

TEST(BuilderContractDeath, RegisterIdOutOfRange)
{
    KernelBuilder b("k");
    EXPECT_DEATH(b.mov(256), "out of range");
}

TEST(BuilderContractDeath, TooSmallIntervalBudget)
{
    KernelBuilder b("k");
    b.mov(0);
    Kernel k = b.build();
    FormationOptions opt;
    opt.max_regs = 2;   // below the 4-operand minimum
    EXPECT_DEATH(formRegisterIntervals(k, opt), "too small");
}

TEST(BuilderContract, EmitIntoTerminatedBlockDies)
{
    // After endLoop() the latch is terminated; the builder must have
    // moved on to a fresh block, so emitting still works...
    KernelBuilder b("k");
    b.beginLoop(2);
    b.mov(0);
    b.endLoop();
    b.mov(1);   // fine: goes to the loop-exit block
    Kernel k = b.build();
    EXPECT_GE(k.numBlocks(), 3);
}
