/**
 * @file
 * Quickstart: build a small kernel with the DSL, compile it for each
 * register file design, simulate, and print IPC and register file
 * statistics.
 *
 * This is the 30-second tour of the public API:
 *   KernelBuilder -> Kernel -> SimConfig -> simulate() -> SimResult.
 */

#include <cstdio>

#include "isa/kernel_builder.hh"
#include "sim/gpu.hh"

using namespace ltrf;

int
main()
{
    // 1. Describe a kernel: a register-hungry multiply-add loop over
    //    a cached tile. Branch trip counts and memory stream shapes
    //    are workload metadata the trace generator uses.
    KernelBuilder b("quickstart");
    MemStreamSpec xs;
    xs.working_set_lines = 48;          // tile that lives in the LLC
    int sx = b.stream(xs);

    b.mov(0).mov(1);                    // pointers
    b.beginLoop(48);
    b.load(2, 0, sx);                   // x[i]
    for (int u = 0; u < 12; u++)        // unrolled MAD block
        b.ffma(3 + u % 8, 2, 1, 3 + u % 8);
    b.iadd(0, 0, 1);
    b.endLoop();
    b.store(3, 0, sx);
    b.regDemand(96);                    // register-hungry kernel
    Kernel kernel = b.build();

    std::printf("kernel '%s': %d blocks, %d static instructions, "
                "%d registers\n\n",
                kernel.name.c_str(), kernel.numBlocks(),
                kernel.staticInstrCount(), kernel.num_regs);

    // 2. Simulate it under each register file design with an 8x
    //    larger but 6.3x slower main register file (Table 2, #7).
    std::printf("%-14s %10s %8s %12s %12s\n", "design", "cycles", "IPC",
                "MRF accesses", "prefetches");
    for (RfDesign d : {RfDesign::BL, RfDesign::RFC, RfDesign::SHRF,
                       RfDesign::LTRF, RfDesign::LTRF_PLUS,
                       RfDesign::IDEAL}) {
        SimConfig cfg;
        cfg.num_sms = 2;                // keep the example quick
        cfg.design = d;
        cfg.rf_capacity_mult = 8;
        cfg.mrf_latency_mult = 6.3;

        SimResult r = simulate(cfg, kernel);
        std::printf("%-14s %10llu %8.3f %12llu %12llu\n", rfDesignName(d),
                    static_cast<unsigned long long>(r.cycles), r.ipc,
                    static_cast<unsigned long long>(r.main_accesses),
                    static_cast<unsigned long long>(r.prefetch_ops));
    }

    std::printf("\nLTRF keeps the warps fed from the register cache, "
                "so the slow main register file\nbarely shows; BL "
                "pays its full latency on every operand.\n");
    return 0;
}
