/**
 * @file
 * Command-line simulator front end: run any suite workload under any
 * register file design, latency multiplier, and capacity, and print
 * the full statistics block. This is the "driver binary" a user
 * would script their own studies with.
 *
 * Usage:
 *   latency_explorer [workload] [design] [latency-mult] [capacity-mult]
 *   latency_explorer --list
 *
 * Examples:
 *   latency_explorer sgemm LTRF 6.3 8
 *   latency_explorer btree RFC 2.0 1
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/gpu.hh"
#include "workloads/workload.hh"

using namespace ltrf;

namespace
{

RfDesign
parseDesign(const std::string &s)
{
    for (RfDesign d : {RfDesign::BL, RfDesign::RFC, RfDesign::SHRF,
                       RfDesign::LTRF_STRAND, RfDesign::LTRF,
                       RfDesign::LTRF_PLUS, RfDesign::IDEAL}) {
        if (s == rfDesignName(d))
            return d;
    }
    std::fprintf(stderr, "unknown design '%s' (try BL, RFC, SHRF, "
                 "\"LTRF(strand)\", LTRF, LTRF+, Ideal)\n", s.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        std::printf("%-16s %10s %6s %12s\n", "workload", "sensitive",
                    "regs", "static instr");
        for (const Workload &w : WorkloadSuite::all()) {
            std::printf("%-16s %10s %6d %12d\n", w.name.c_str(),
                        w.register_sensitive ? "yes" : "no",
                        w.kernel.reg_demand,
                        w.kernel.staticInstrCount());
        }
        return 0;
    }

    std::string workload = argc > 1 ? argv[1] : "sgemm";
    RfDesign design = parseDesign(argc > 2 ? argv[2] : "LTRF");
    double mult = argc > 3 ? std::atof(argv[3]) : 6.3;
    int cap = argc > 4 ? std::atoi(argv[4]) : 8;

    const Workload &w = WorkloadSuite::byName(workload);

    SimConfig cfg;
    cfg.num_sms = 4;
    cfg.design = design;
    cfg.mrf_latency_mult = mult;
    cfg.rf_capacity_mult = cap;
    cfg.num_mrf_banks = cap > 1 ? 128 : 16;

    std::printf("workload %s | design %s | MRF latency %.1fx | "
                "capacity %dx\n\n", w.name.c_str(), rfDesignName(design),
                mult, cap);

    Gpu gpu(cfg, w.kernel, 2018);
    SimResult r = gpu.run();

    std::printf("cycles                 %12llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions           %12llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("IPC (all SMs)          %12.3f\n", r.ipc);
    std::printf("resident warps per SM  %12d\n", r.resident_warps);
    std::printf("L1D hit rate           %12.3f\n", r.l1d_hit_rate);
    std::printf("MRF accesses           %12llu\n",
                static_cast<unsigned long long>(r.main_accesses));
    std::printf("cache accesses         %12llu\n",
                static_cast<unsigned long long>(r.cache_accesses));
    if (usesRegCache(design))
        std::printf("cache read hit rate    %12.3f\n", r.cache_hit_rate);
    if (r.prefetch_ops) {
        std::printf("PREFETCH operations    %12llu\n",
                    static_cast<unsigned long long>(r.prefetch_ops));
        std::printf("registers transferred  %12llu\n",
                    static_cast<unsigned long long>(r.xfer_regs));
        std::printf("prefetch stall cycles  %12llu\n",
                    static_cast<unsigned long long>(
                            r.prefetch_stall_cycles));
    }
    return 0;
}
