/**
 * @file
 * Walkthrough of the compiler side of LTRF: build the paper's
 * Figure 6 nested-loop CFG, run register-interval formation
 * (Algorithms 1 and 2), compare against strand formation, and show
 * where the PREFETCH operations land.
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "compiler/dump.hh"
#include "compiler/prefetch_insert.hh"
#include "compiler/trace_gen.hh"
#include "isa/kernel_builder.hh"

using namespace ltrf;

namespace
{

void
dumpAnalysis(const char *title, const IntervalAnalysis &ia)
{
    std::printf("%s: %zu region(s)", title, ia.intervals.size());
    if (ia.pass2_rounds)
        std::printf(" (pass 1 made %d, pass 2 merged in %d round(s))",
                    ia.intervals_after_pass1, ia.pass2_rounds);
    std::printf("\n");
    for (const auto &iv : ia.intervals) {
        std::printf("  region %d: header B%d, blocks {", iv.id,
                    iv.header);
        for (size_t i = 0; i < iv.blocks.size(); i++)
            std::printf("%s%d", i ? ", " : "", iv.blocks[i]);
        std::printf("}, working set %s (%d regs)\n",
                    iv.working_set.toString().c_str(),
                    iv.working_set.count());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // The paper's Figure 6 shape: an outer loop whose body contains
    // an inner loop -- A -> B <-> C, C -> A.
    KernelBuilder b("figure6");
    b.beginLoop(4);              // outer loop: block A is its header
    b.mov(0);
    b.mov(1);
    b.beginLoop(8);              // inner loop: blocks B/C
    b.ffma(2, 0, 1, 2);
    b.load(3, 0, 0);
    b.iadd(4, 3, 2);
    b.endLoop();
    b.fmul(5, 4, 2);
    b.endLoop();
    Kernel k = b.build();

    std::printf("kernel '%s': %d blocks, %d static instructions\n\n",
                k.name.c_str(), k.numBlocks(), k.staticInstrCount());

    // --dot: emit a Graphviz CFG clustered by register-interval and
    // exit (pipe into `dot -Tsvg` to see Figure 6 for yourself).
    if (argc > 1 && std::strcmp(argv[1], "--dot") == 0) {
        FormationOptions o;
        o.max_regs = 16;
        IntervalAnalysis ia = formRegisterIntervals(k, o);
        dumpCfgDot(std::cout, ia.kernel, &ia);
        return 0;
    }
    if (argc > 1 && std::strcmp(argv[1], "--asm") == 0) {
        dumpKernel(std::cout, k);
        return 0;
    }

    // 1. Register-interval formation with the Table 3 partition size.
    FormationOptions opt;
    opt.max_regs = 16;
    IntervalAnalysis intervals = formRegisterIntervals(k, opt);
    dumpAnalysis("register-intervals (N=16)", intervals);
    std::printf("  -> the whole nest fits one interval: ONE PREFETCH "
                "for the entire loop nest.\n\n");

    // 2. The same CFG with a tiny partition: pass 2 cannot merge.
    FormationOptions small;
    small.max_regs = 4;
    IntervalAnalysis tight = formRegisterIntervals(k, small);
    dumpAnalysis("register-intervals (N=4)", tight);
    std::printf("\n");

    // 3. Strands terminate at the global load and the back edges.
    IntervalAnalysis strands = formStrands(k, 16);
    dumpAnalysis("strands (SHRF / LTRF-strand baselines)", strands);
    std::printf("\n");

    // 4. Insert PREFETCH operations and measure code growth and the
    //    dynamic interval length (paper Table 4's metric).
    PrefetchCodeSize cs = insertPrefetchOps(intervals);
    std::printf("PREFETCH insertion: %d op(s); code size +%.1f%% "
                "(bit-vectors only) / +%.1f%% (explicit instructions)\n",
                cs.num_prefetch_ops, cs.bitvecOverhead() * 100.0,
                cs.instrOverhead() * 100.0);

    WarpTrace trace = generateTrace(intervals.kernel, 1);
    IntervalLengthStats real = realIntervalLengths(intervals, trace);
    IntervalLengthStats opt_len =
            optimalIntervalLengths(intervals.kernel, trace, 16);
    std::printf("dynamic interval length: real avg %.1f vs optimal "
                "avg %.1f (%.0f%% of optimal)\n",
                real.avg, opt_len.avg, 100.0 * real.avg / opt_len.avg);
    return 0;
}
