/**
 * @file
 * Design-space exploration: what LTRF is *for*. Sweeps the seven
 * register file configurations of paper Table 2 under BL and LTRF
 * and prints performance alongside capacity/area/power, showing that
 * LTRF unlocks the dense-but-slow corner of the space (the paper's
 * concluding argument).
 */

#include <cstdio>

#include "sim/gpu.hh"
#include "tech/rf_config.hh"
#include "workloads/workload.hh"

using namespace ltrf;

int
main()
{
    const int sms = 2;
    const Workload &w = WorkloadSuite::byName("sgemm");

    SimConfig base;
    base.num_sms = sms;
    base.design = RfDesign::BL;
    double base_ipc = simulate(base, w.kernel).ipc;

    std::printf("Design space sweep on '%s' (normalized IPC vs "
                "configuration #1 BL)\n\n", w.name.c_str());
    std::printf("%-4s %-10s %5s %6s %8s %9s | %8s %8s\n", "Cfg", "Cell",
                "Cap.", "Area", "Latency", "Cap/Power", "BL", "LTRF");

    for (const RfConfig &rc : rfConfigTable()) {
        double ipc_bl, ipc_ltrf;
        {
            SimConfig cfg;
            cfg.num_sms = sms;
            cfg.design = RfDesign::BL;
            applyRfConfig(cfg, rc);
            ipc_bl = simulate(cfg, w.kernel).ipc / base_ipc;
        }
        {
            SimConfig cfg;
            cfg.num_sms = sms;
            cfg.design = RfDesign::LTRF;
            applyRfConfig(cfg, rc);
            ipc_ltrf = simulate(cfg, w.kernel).ipc / base_ipc;
        }
        std::printf("#%-3d %-10s %4.0fx %5.2fx %7.2fx %8.1fx | %8.3f "
                    "%8.3f\n",
                    rc.id, cellTechName(rc.tech), rc.capacity, rc.area,
                    rc.latency, rc.cap_per_power, ipc_bl, ipc_ltrf);
    }

    std::printf("\nReading the table: without LTRF, the dense designs "
                "(#6, #7) lose their capacity\ngains to latency; with "
                "LTRF they keep them — #7 offers 32x bits/area at a "
                "75%%\narea reduction and still wins on performance.\n");
    return 0;
}
