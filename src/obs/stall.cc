#include "obs/stall.hh"

#include "common/log.hh"

namespace ltrf::obs
{

const char *
stallCauseName(StallCause c)
{
    switch (c) {
      case StallCause::SCOREBOARD:    return "scoreboard";
      case StallCause::COLLECTOR:     return "collector";
      case StallCause::PREFETCH_WAIT: return "prefetch_wait";
      case StallCause::NO_READY_WARP: return "no_ready_warp";
      case StallCause::DRAIN:         return "drain";
    }
    ltrf_panic("bad StallCause %d", static_cast<int>(c));
}

} // namespace ltrf::obs
