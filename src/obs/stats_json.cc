#include "obs/stats_json.hh"

#include <string>

namespace ltrf::obs
{

namespace
{

using harness::Json;

std::vector<std::string>
splitDots(const std::string &name)
{
    std::vector<std::string> segs;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= name.size(); i++) {
        if (i == name.size() || name[i] == '.') {
            segs.push_back(name.substr(start, i - start));
            start = i + 1;
        }
    }
    return segs;
}

/**
 * Lines [lo, hi) share their first @p depth segments; group
 * consecutive runs on segment @p depth (flatten() emits children
 * depth-first, so every group is one consecutive run).
 */
Json
buildTree(const std::vector<StatLine> &lines,
          const std::vector<std::vector<std::string>> &segs,
          std::size_t lo, std::size_t hi, std::size_t depth)
{
    Json node = Json::object();
    std::size_t i = lo;
    while (i < hi) {
        const std::string &key = segs[i][depth];
        std::size_t j = i + 1;
        while (j < hi && segs[j].size() > depth && segs[j][depth] == key)
            j++;
        if (j == i + 1 && segs[i].size() == depth + 1)
            node.set(key, Json(lines[i].value));
        else
            node.set(key, buildTree(lines, segs, i, j, depth + 1));
        i = j;
    }
    return node;
}

} // namespace

Json
breakdownToJson(const StallBreakdown &b)
{
    Json j = Json::object();
    j.set("issue_slots", Json(b.issue_slots));
    j.set("instructions", Json(b.instructions));
    j.set("prefetch_slots", Json(b.prefetch_slots));
    for (int c = 0; c < NUM_STALL_CAUSES; c++)
        j.set(stallCauseName(static_cast<StallCause>(c)),
              Json(b.stalls[c]));
    j.set("stall_slots", Json(b.stallSlots()));
    j.set("issue_slot_utilization",
          Json(b.issue_slots == 0
                       ? 0.0
                       : static_cast<double>(b.instructions) /
                                 static_cast<double>(b.issue_slots)));
    j.set("bank_conflict_cycles", Json(b.bank_conflict_cycles));
    return j;
}

Json
statsTreeToJson(const std::vector<StatLine> &lines)
{
    std::vector<std::vector<std::string>> segs;
    segs.reserve(lines.size());
    for (const StatLine &l : lines)
        segs.push_back(splitDots(l.name));
    return buildTree(lines, segs, 0, lines.size(), 0);
}

Json
runStatsToJson(const harness::ResultSet &rs, const HarnessMetrics &hm)
{
    Json doc = Json::object();
    doc.set("ltrf_stats_schema", Json(STATS_SCHEMA_VERSION));

    Json h = Json::object();
    h.set("jobs", Json(hm.jobs));
    h.set("cells", Json(static_cast<std::uint64_t>(hm.cells)));
    h.set("queue_high_water",
          Json(static_cast<std::uint64_t>(hm.queue_high_water)));
    h.set("in_flight_high_water",
          Json(static_cast<std::uint64_t>(hm.in_flight_high_water)));
    doc.set("harness", h);

    Json cells = Json::array();
    for (const harness::ResultRow &row : rs.rows()) {
        const SimResult &r = row.result;
        Json c = Json::object();
        c.set("workload", Json(row.cell.workload));
        c.set("design", Json(rfDesignName(row.cell.design)));
        c.set("rf_cfg_id", Json(row.cell.rf_cfg_id));
        if (!row.cell.tag.empty())
            c.set("tag", Json(row.cell.tag));
        c.set("cycles", Json(static_cast<std::uint64_t>(r.cycles)));
        c.set("issue_width", Json(row.cell.config.issue_width));
        c.set("collected", Json(r.stall_collected));
        if (r.stall_collected) {
            c.set("aggregate", breakdownToJson(r.stall_total));
            Json per_sm = Json::array();
            for (const StallBreakdown &b : r.sm_stall)
                per_sm.push(breakdownToJson(b));
            c.set("per_sm", per_sm);
            c.set("tree", statsTreeToJson(r.stats_lines));
        }
        cells.push(c);
    }
    doc.set("cells", cells);
    return doc;
}

} // namespace ltrf::obs
