/**
 * @file
 * JSON serialization of the observability stats (`ltrf_run --stats`).
 *
 * Lives in src/obs/ rather than src/common/ so the stats core stays
 * free of harness includes. The emitted document is schema-versioned
 * (`ltrf_stats_schema`) and deterministic given a deterministic
 * simulation — but it is a *separate* file from the golden sweep
 * reports, which must stay byte-identical with observability off.
 */

#ifndef LTRF_OBS_STATS_JSON_HH
#define LTRF_OBS_STATS_JSON_HH

#include <cstddef>
#include <vector>

#include "common/stats.hh"
#include "harness/json.hh"
#include "harness/result_set.hh"
#include "obs/stall.hh"

namespace ltrf::obs
{

/** Version of the `ltrf_run --stats` document layout. */
constexpr int STATS_SCHEMA_VERSION = 1;

/** One StallBreakdown as a flat object (reporting order). */
harness::Json breakdownToJson(const StallBreakdown &b);

/**
 * Rebuild the hierarchical group tree from flattened dotted stat
 * lines ("sm0.stall.scoreboard" -> {"sm0":{"stall":{...}}}). The
 * lines must be in flatten() order (children depth-first).
 */
harness::Json statsTreeToJson(const std::vector<StatLine> &lines);

/** Experiment-pool metrics riding along in the stats document. */
struct HarnessMetrics
{
    int jobs = 1;
    std::size_t cells = 0;
    std::size_t queue_high_water = 0;
    std::size_t in_flight_high_water = 0;
};

/**
 * The full `--stats` document: schema version, harness metrics, and
 * one entry per executed cell with the aggregate breakdown, per-SM
 * breakdowns, and the hierarchical stat tree.
 */
harness::Json runStatsToJson(const harness::ResultSet &rs,
                             const HarnessMetrics &hm);

} // namespace ltrf::obs

#endif // LTRF_OBS_STATS_JSON_HH
