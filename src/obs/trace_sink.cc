#include "obs/trace_sink.hh"

#include <algorithm>
#include <cstdio>

#include "harness/emit.hh"

namespace ltrf::obs
{

namespace
{

/** Minimal JSON string escaping (names are short ASCII labels). */
void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNum(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

} // namespace

TraceSink::TraceSink(std::size_t max_events_)
    : max_events(max_events_), t0(std::chrono::steady_clock::now())
{
    events.reserve(std::min<std::size_t>(max_events, 4096));
}

bool
TraceSink::push(Event e)
{
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() >= max_events) {
        dropped++;
        return false;
    }
    events.push_back(std::move(e));
    return true;
}

void
TraceSink::complete(const char *name, int pid, int tid, std::uint64_t ts,
                    std::uint64_t dur)
{
    push({name, 'X', pid, tid, ts, dur});
}

void
TraceSink::instant(const char *name, int pid, int tid, std::uint64_t ts)
{
    push({name, 'i', pid, tid, ts, 0});
}

void
TraceSink::counter(const char *name, int pid, std::uint64_t ts,
                   std::uint64_t value)
{
    push({name, 'C', pid, 0, ts, value});
}

void
TraceSink::processName(int pid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    meta.push_back({name, 'P', pid, 0, 0, 0});
}

void
TraceSink::threadName(int pid, int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    meta.push_back({name, 'T', pid, tid, 0, 0});
}

std::uint64_t
TraceSink::wallUs() const
{
    return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
}

int
TraceSink::workerTid()
{
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = worker_tids.emplace(
            std::this_thread::get_id(),
            static_cast<int>(worker_tids.size() + 1));
    (void)inserted;
    return it->second;
}

std::size_t
TraceSink::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
}

std::size_t
TraceSink::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return dropped;
}

std::string
TraceSink::toJsonText() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out += ',';
        first = false;
    };
    for (const Event &e : meta) {
        comma();
        out += "{\"name\":";
        out += e.ph == 'P' ? "\"process_name\"" : "\"thread_name\"";
        out += ",\"ph\":\"M\",\"pid\":";
        appendNum(out, static_cast<std::uint64_t>(e.pid));
        out += ",\"tid\":";
        appendNum(out, static_cast<std::uint64_t>(e.tid));
        out += ",\"args\":{\"name\":";
        appendEscaped(out, e.name);
        out += "}}";
    }
    for (const Event &e : events) {
        comma();
        out += "{\"name\":";
        appendEscaped(out, e.name);
        out += ",\"ph\":\"";
        out += e.ph;
        out += "\",\"pid\":";
        appendNum(out, static_cast<std::uint64_t>(e.pid));
        out += ",\"tid\":";
        appendNum(out, static_cast<std::uint64_t>(e.tid));
        out += ",\"ts\":";
        appendNum(out, e.ts);
        if (e.ph == 'X') {
            out += ",\"dur\":";
            appendNum(out, e.dur);
        } else if (e.ph == 'C') {
            out += ",\"args\":{\"value\":";
            appendNum(out, e.dur);
            out += "}";
        } else if (e.ph == 'i') {
            out += ",\"s\":\"t\"";
        }
        out += "}";
    }
    out += "],\"otherData\":{\"dropped_events\":";
    appendNum(out, dropped);
    out += "}}\n";
    return out;
}

void
TraceSink::write(const std::string &path) const
{
    harness::writeTextFile(path, toJsonText());
}

} // namespace ltrf::obs
