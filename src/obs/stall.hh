/**
 * @file
 * Issue-slot stall attribution (the observability layer's cycle
 * accounting contract).
 *
 * Every SM issue slot — cycles x issue_width of them over a run — is
 * attributed to exactly one bucket: an issued instruction, a
 * triggered-PREFETCH slot (the slot a PREFETCH consumes while
 * blocking its warp), or one of the stall causes below. DRAIN is the
 * closing remainder: slots after an SM ran out of work while other
 * SMs kept the global clock running. The invariant
 *
 *   instructions + prefetch_slots + sum(stalls) == cycles x issue_width
 *
 * holds per SM and in aggregate (tests/test_obs.cc asserts it), so
 * the breakdown can be trusted as a complete account rather than a
 * sampled profile.
 */

#ifndef LTRF_OBS_STALL_HH
#define LTRF_OBS_STALL_HH

#include <cstdint>

namespace ltrf::obs
{

/** Why an issue slot went unused. Order is the reporting order. */
enum class StallCause : std::uint8_t
{
    SCOREBOARD,     ///< source/destination register not ready
    COLLECTOR,      ///< all operand collectors busy
    PREFETCH_WAIT,  ///< warp blocked on an interval prefetch/refetch
    NO_READY_WARP,  ///< active pool empty or smaller than issue width
    DRAIN,          ///< SM finished; other SMs still running
};

/** Attributable causes recorded live by the SM (DRAIN is derived). */
constexpr int NUM_LIVE_STALL_CAUSES = 4;
constexpr int NUM_STALL_CAUSES = 5;

/** Short lower-case name, e.g. "scoreboard". */
const char *stallCauseName(StallCause c);

/** Per-SM (or aggregated) issue-slot account of one simulation. */
struct StallBreakdown
{
    std::uint64_t issue_slots = 0;   ///< cycles x issue_width
    std::uint64_t instructions = 0;  ///< slots that issued (incl. EXIT)
    std::uint64_t prefetch_slots = 0;///< slots consumed by PREFETCH
    std::uint64_t stalls[NUM_STALL_CAUSES] = {};

    /**
     * MRF bank-conflict wait cycles: an auxiliary latency metric
     * (conflicts lengthen operand collection, they do not block
     * issue slots), so deliberately outside the slot sum.
     */
    std::uint64_t bank_conflict_cycles = 0;

    std::uint64_t
    stallSlots() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t v : stalls)
            s += v;
        return s;
    }

    /** Left side of the accounting invariant. */
    std::uint64_t
    accountedSlots() const
    {
        return instructions + prefetch_slots + stallSlots();
    }

    StallBreakdown &
    operator+=(const StallBreakdown &o)
    {
        issue_slots += o.issue_slots;
        instructions += o.instructions;
        prefetch_slots += o.prefetch_slots;
        for (int i = 0; i < NUM_STALL_CAUSES; i++)
            stalls[i] += o.stalls[i];
        bank_conflict_cycles += o.bank_conflict_cycles;
        return *this;
    }
};

} // namespace ltrf::obs

#endif // LTRF_OBS_STALL_HH
