/**
 * @file
 * Chrome trace-event emitter (the Trace Event Format JSON that
 * chrome://tracing and Perfetto's legacy importer load).
 *
 * One TraceSink collects timeline events from many threads behind a
 * mutex and serializes them as `{"traceEvents": [...]}` on demand.
 * Two clock conventions share the format:
 *   - simulator traces map 1 simulated cycle to 1 microsecond, so a
 *     span's visual length *is* its cycle count;
 *   - harness/DSE traces use wall-clock microseconds since sink
 *     construction (wallUs()).
 * Producers hold only a `TraceSink *` and guard every emission with a
 * null check, so a disabled trace costs one predictable branch.
 *
 * The sink is bounded: past max_events, new events are counted as
 * dropped instead of stored (the drop count lands in the trace
 * metadata), so a runaway simulation cannot exhaust memory.
 */

#ifndef LTRF_OBS_TRACE_SINK_HH
#define LTRF_OBS_TRACE_SINK_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ltrf::obs
{

/** Thread-safe collector of Chrome trace-event timelines. */
class TraceSink
{
  public:
    explicit TraceSink(std::size_t max_events = 1'000'000);

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** A span [ts, ts+dur) on track (pid, tid). Zero-dur spans kept. */
    void complete(const char *name, int pid, int tid, std::uint64_t ts,
                  std::uint64_t dur);

    /** A point event at @p ts on track (pid, tid). */
    void instant(const char *name, int pid, int tid, std::uint64_t ts);

    /** A counter track sample (rendered as a graph over time). */
    void counter(const char *name, int pid, std::uint64_t ts,
                 std::uint64_t value);

    /** Label process @p pid in the trace UI. */
    void processName(int pid, const std::string &name);

    /** Label thread (pid, tid) in the trace UI. */
    void threadName(int pid, int tid, const std::string &name);

    /** Wall-clock microseconds since this sink was constructed. */
    std::uint64_t wallUs() const;

    /** Small stable integer id for the calling thread (pool lanes). */
    int workerTid();

    std::size_t size() const;
    std::size_t droppedCount() const;

    /** Serialize everything as trace-event JSON (one line). */
    std::string toJsonText() const;

    /** Write toJsonText() to @p path ("-" = stdout). */
    void write(const std::string &path) const;

  private:
    struct Event
    {
        std::string name;
        char ph;        ///< 'X' complete, 'i' instant, 'C' counter,
                        ///< 'P'/'T' process/thread name metadata
        int pid = 0;
        int tid = 0;
        std::uint64_t ts = 0;
        std::uint64_t dur = 0;  ///< 'X': duration; 'C': sample value
    };

    bool push(Event e);

    mutable std::mutex mu;
    std::vector<Event> events;
    std::vector<Event> meta;    ///< name metadata, never dropped
    std::size_t max_events;
    std::size_t dropped = 0;
    std::map<std::thread::id, int> worker_tids;
    std::chrono::steady_clock::time_point t0;
};

} // namespace ltrf::obs

#endif // LTRF_OBS_TRACE_SINK_HH
