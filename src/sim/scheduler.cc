#include "sim/scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace ltrf
{

TwoLevelScheduler::TwoLevelScheduler(int num_active,
                                     std::vector<Warp> &warps_)
    : num_active_slots(num_active), warps(warps_)
{
    ltrf_assert(num_active >= 1, "active pool must hold >= 1 warp");
    for (const Warp &w : warps)
        ready_queue.push_back(w.id);
}

void
TwoLevelScheduler::tick(Cycle now, RegFileSystem &rf)
{
    // Promote warps whose activation or memory wait has resolved.
    // Gated on the tracked earliest transition: when nothing can
    // promote yet, the whole warp walk is skipped. When it runs, the
    // walk visits warps in id order exactly as an ungated scan
    // would, so the ready queue fills in the same order.
    if (next_transition <= now) {
        next_transition = NEVER;
        for (Warp &w : warps) {
            if (w.state == WarpState::ACTIVATING) {
                if (w.wait_until <= now) {
                    w.state = WarpState::ACTIVE;
                    w.ready_at = std::max(w.ready_at, w.wait_until);
                } else {
                    next_transition =
                            std::min(next_transition, w.wait_until);
                }
            } else if (w.state == WarpState::INACTIVE_WAIT) {
                if (w.wait_until <= now) {
                    w.state = WarpState::INACTIVE_READY;
                    ready_queue.push_back(w.id);
                    num_wait--;
                } else {
                    next_transition =
                            std::min(next_transition, w.wait_until);
                }
            }
        }
    }

    // Fill free active slots from the inactive-ready queue.
    while (static_cast<int>(active.size()) < num_active_slots &&
           !ready_queue.empty()) {
        WarpId id = ready_queue.front();
        ready_queue.pop_front();
        Warp &w = warps[id];
        ltrf_assert(w.state == WarpState::INACTIVE_READY,
                    "warp %d in ready queue but state %d", id,
                    static_cast<int>(w.state));
        Cycle done = rf.activate(id, now);
        active.push_back(id);
        stat_activations++;
        if (done <= now) {
            w.state = WarpState::ACTIVE;
            w.ready_at = std::max(w.ready_at, now);
        } else {
            w.state = WarpState::ACTIVATING;
            w.wait_until = done;
            next_transition = std::min(next_transition, done);
            stat_slow_activations++;
        }
    }
    ltrf_assert(static_cast<int>(active.size()) == num_active_slots ||
                ready_queue.empty(),
                "pool %zu/%d with %zu ready warps queued", active.size(),
                num_active_slots, ready_queue.size());
}

void
TwoLevelScheduler::deactivate(Warp &w, Cycle until, RegFileSystem &rf,
                              Cycle now)
{
    ltrf_assert(w.state == WarpState::ACTIVE,
                "deactivating non-active warp %d", w.id);
    rf.deactivate(w.id, now);
    removeActive(w.id);
    w.state = WarpState::INACTIVE_WAIT;
    w.wait_until = until;
    num_wait++;
    next_transition = std::min(next_transition, until);
    stat_deactivations++;
}

void
TwoLevelScheduler::finish(Warp &w, RegFileSystem &rf, Cycle now)
{
    ltrf_assert(w.state == WarpState::ACTIVE,
                "finishing non-active warp %d", w.id);
    rf.deactivate(w.id, now);
    removeActive(w.id);
    w.state = WarpState::FINISHED;
    num_finished++;
    stat_finishes++;
}

void
TwoLevelScheduler::removeActive(WarpId id)
{
    auto it = std::find(active.begin(), active.end(), id);
    ltrf_assert(it != active.end(), "warp %d not in active pool", id);
    size_t pos = static_cast<size_t>(it - active.begin());
    active.erase(it);
    if (rr > static_cast<int>(pos))
        rr--;
    if (!active.empty())
        rr %= static_cast<int>(active.size());
    else
        rr = 0;
}

} // namespace ltrf
