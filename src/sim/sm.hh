/**
 * @file
 * Streaming multiprocessor cycle model.
 *
 * Per cycle: the two-level scheduler refills the active pool, then
 * up to issue_width instructions issue from ready active warps in
 * round-robin order. Each issued instruction occupies an operand
 * collector until its source operands are collected through the
 * register file system (which models WCB lookups, cache/MRF bank
 * contention, and crossbars), then executes on its functional-unit
 * latency. Global memory accesses walk the real cache hierarchy;
 * an L1D miss deactivates the warp until the data returns (the
 * latency-hiding the whole paper builds on).
 */

#ifndef LTRF_SIM_SM_HH
#define LTRF_SIM_SM_HH

#include <memory>
#include <vector>

#include "core/regfile_system.hh"
#include "mem/mem_system.hh"
#include "obs/stall.hh"
#include "sim/scheduler.hh"
#include "sim/warp.hh"

namespace ltrf
{

/** One streaming multiprocessor. */
class Sm
{
  public:
    /**
     * @param sm_id          index within the GPU
     * @param cfg            system configuration
     * @param cw             compiled workload (shared, read-only)
     * @param mem            shared memory hierarchy
     * @param resident_warps warps admitted by the occupancy model
     */
    Sm(int sm_id, const SimConfig &cfg, const CompiledWorkload &cw,
       MemSystem &mem, int resident_warps);

    /** Advance one cycle at global time @p now. */
    void step(Cycle now);

    /** @return true once every resident warp has finished. */
    bool
    done() const
    {
        return sched.finishedCount() ==
               static_cast<int>(warps.size());
    }

    /** Earliest future cycle at which stepping can make progress. */
    Cycle nextEvent(Cycle now) const;

    /** Dynamic (non-PREFETCH) instructions issued so far. */
    std::uint64_t instructionsIssued() const;

    const RegFileSystem &rf() const { return *regfile; }

    /** Pipeline introspection (diagnostics and tests). */
    struct PipeStats
    {
        std::uint64_t stepped_cycles = 0;  ///< cycles this SM stepped
        std::uint64_t active_warp_sum = 0; ///< sum of pool sizes
        std::uint64_t issued_sum = 0;      ///< instructions issued
        std::uint64_t dep_stalls = 0;      ///< issue blocked on deps
        std::uint64_t collector_stalls = 0;///< blocked on collectors
        std::uint64_t deactivations = 0;
        std::uint64_t ready_sum = 0;       ///< inactive-ready warps
        std::uint64_t wait_sum = 0;        ///< inactive-waiting warps
        std::uint64_t mem_stall_sum = 0;   ///< total load-miss latency
        std::uint64_t mem_stall_max = 0;   ///< worst load-miss latency
    };

    const PipeStats &pipeStats() const { return pipe; }

    /**
     * Close the stall account once the run is over: derives the
     * DRAIN remainder against @p total_cycles (panics if the live
     * attribution over-counted), backfills the derived counters into
     * the stat tree, and returns this SM's breakdown. Only
     * meaningful when collect_stall_stats was on.
     */
    obs::StallBreakdown finalizeStallStats(Cycle total_cycles);

    /** Flatten this SM's stat tree ("smN.stall.scoreboard", ...). */
    void
    flattenStats(std::vector<StatLine> &out) const
    {
        stat_root.flatten(out);
    }

    const StatGroup &statGroup() const { return stat_root; }

  private:
    /** Try to issue one instruction from @p w; true if a slot used. */
    bool tryIssue(Warp &w, Cycle now);

    /**
     * Find an operand collector free at @p now, or -1 — in which
     * case @p earliest_free holds the earliest cycle one frees.
     */
    int freeCollector(Cycle now, Cycle &earliest_free) const;

    /** Generate the cache-line address for a memory instruction. */
    std::uint64_t lineFor(Warp &w, const Instruction &in);

    int id;
    const SimConfig &config;
    const CompiledWorkload &compiled;
    MemSystem &mem;
    std::unique_ptr<RegFileSystem> regfile;
    /** SoA backing store for all warps' scoreboard/stream state;
     *  must be constructed before (and outlive) `warps`. */
    WarpStateArena arena;
    std::vector<Warp> warps;
    TwoLevelScheduler sched;
    std::vector<Cycle> collectors;  ///< busy-until per operand collector
    /** Reused snapshot of the active pool (deactivations mutate the
     *  pool mid-issue); hoisted here so step() never allocates. */
    std::vector<WarpId> pool_scratch;
    PipeStats pipe;

    // ----- Observability (src/obs/) -----
    /** Attribute the fast-forwarded gap before a step at @p now. */
    void accountGap(Cycle now);

    bool collect;            ///< config.collect_stall_stats, cached
    obs::TraceSink *trace;   ///< null = per-warp tracing off
    int trace_pid;           ///< trace_pid_base + sm id
    /** Failure causes seen this cycle, in RR arbitration order;
     *  unused issue slots are attributed round-robin over them. */
    std::vector<obs::StallCause> fail_scratch;
    /** Cycle of the previous step (NEVER before the first). */
    Cycle prev_step = NEVER;

    // Live stall counters (DRAIN derived in finalizeStallStats).
    Counter stall_counters[obs::NUM_STALL_CAUSES];
    // Derived slot counters, backfilled at finalize.
    Counter stat_issue_slots;
    Counter stat_instructions;
    Counter stat_prefetch_slots;
    Counter stat_bank_conflicts;
    Distribution issue_per_cycle;   ///< issued per stepped cycle
    Distribution collector_wait;    ///< collector-stall defer length
    Distribution mem_stall;         ///< load-miss deactivation latency

    StatGroup stat_root;            ///< "smN"
    StatGroup stall_group;          ///< "smN.stall"
    StatGroup rf_group;             ///< "smN.rf"
    StatGroup sched_group;          ///< "smN.sched"
};

} // namespace ltrf

#endif // LTRF_SIM_SM_HH
