/**
 * @file
 * Per-warp execution state.
 *
 * The scoreboard and address-generation arrays live in a WarpStateArena
 * (structure-of-arrays): one flat allocation per SM instead of two
 * heap vectors per warp, so the issue loop's scoreboard lookups walk
 * contiguous memory and warp construction costs no per-warp
 * allocations. Warp itself keeps only the hot scalars the scheduler
 * and issue loop touch every cycle.
 */

#ifndef LTRF_SIM_WARP_HH
#define LTRF_SIM_WARP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "compiler/trace_gen.hh"
#include "obs/stall.hh"

namespace ltrf
{

/**
 * Flat structure-of-arrays backing store for all resident warps'
 * scoreboard (reg_ready) and per-stream access counters. Owned by
 * the SM and constructed before its warps; Warp holds raw pointers
 * into it, so the arena must not move or resize while warps live.
 */
class WarpStateArena
{
  public:
    WarpStateArena(int num_warps, int num_regs, int num_streams)
        : num_regs_(num_regs), num_streams_(num_streams),
          reg_ready_(static_cast<std::size_t>(num_warps) *
                             static_cast<std::size_t>(num_regs),
                     0),
          stream_pos_(static_cast<std::size_t>(num_warps) *
                              static_cast<std::size_t>(num_streams),
                      0)
    {}

    /** Warp @p w's scoreboard: cycle each register's value lands. */
    Cycle *
    regReady(WarpId w)
    {
        return reg_ready_.data() +
               static_cast<std::size_t>(w) *
                       static_cast<std::size_t>(num_regs_);
    }

    /** Warp @p w's per-memory-stream access counters. */
    std::uint32_t *
    streamPos(WarpId w)
    {
        return stream_pos_.data() +
               static_cast<std::size_t>(w) *
                       static_cast<std::size_t>(num_streams_);
    }

  private:
    int num_regs_;
    int num_streams_;
    std::vector<Cycle> reg_ready_;
    std::vector<std::uint32_t> stream_pos_;
};

/** Two-level scheduler warp states (paper section 3.2). */
enum class WarpState
{
    INACTIVE_READY,   ///< in the inactive pool, eligible to activate
    ACTIVATING,       ///< activation (register refetch) in flight
    ACTIVE,           ///< in the active pool, may issue
    INACTIVE_WAIT,    ///< deactivated, waiting on a long-latency op
    FINISHED,         ///< reached EXIT
};

/** One warp's dynamic state in the SM pipeline. */
struct Warp
{
    Warp(WarpId id_, const WarpTrace *trace_, WarpStateArena &arena)
        : id(id_), trace(trace_), reg_ready(arena.regReady(id_)),
          stream_pos(arena.streamPos(id_))
    {}

    WarpId id;
    const WarpTrace *trace;
    std::size_t pc = 0;
    WarpState state = WarpState::INACTIVE_READY;
    /** ACTIVATING / INACTIVE_WAIT: cycle the condition resolves. */
    Cycle wait_until = 0;
    /** ACTIVE: earliest cycle the next issue attempt can succeed. */
    Cycle ready_at = 0;
    /** Scoreboard: cycle each architectural register's value lands
     *  (points into the SM's WarpStateArena). */
    Cycle *reg_ready;
    /** Per memory stream access counter (address generation). */
    std::uint32_t *stream_pos;
    /** Dynamic (non-PREFETCH) instructions issued. */
    std::uint64_t issued = 0;
    /** Why ready_at was last pushed into the future (stall
     *  attribution; written unconditionally — a 1-byte store — read
     *  only when collect_stall_stats is on). */
    obs::StallCause last_stall = obs::StallCause::SCOREBOARD;

    bool finished() const { return state == WarpState::FINISHED; }
    bool atEnd() const { return pc >= trace->refs.size(); }
};

} // namespace ltrf

#endif // LTRF_SIM_WARP_HH
