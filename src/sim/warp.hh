/**
 * @file
 * Per-warp execution state.
 */

#ifndef LTRF_SIM_WARP_HH
#define LTRF_SIM_WARP_HH

#include <vector>

#include "common/types.hh"
#include "compiler/trace_gen.hh"

namespace ltrf
{

/** Two-level scheduler warp states (paper section 3.2). */
enum class WarpState
{
    INACTIVE_READY,   ///< in the inactive pool, eligible to activate
    ACTIVATING,       ///< activation (register refetch) in flight
    ACTIVE,           ///< in the active pool, may issue
    INACTIVE_WAIT,    ///< deactivated, waiting on a long-latency op
    FINISHED,         ///< reached EXIT
};

/** One warp's dynamic state in the SM pipeline. */
struct Warp
{
    Warp(WarpId id_, const WarpTrace *trace_, int num_regs,
         int num_streams)
        : id(id_), trace(trace_),
          reg_ready(static_cast<size_t>(num_regs), 0),
          stream_pos(static_cast<size_t>(num_streams), 0)
    {}

    WarpId id;
    const WarpTrace *trace;
    std::size_t pc = 0;
    WarpState state = WarpState::INACTIVE_READY;
    /** ACTIVATING / INACTIVE_WAIT: cycle the condition resolves. */
    Cycle wait_until = 0;
    /** ACTIVE: earliest cycle the next issue attempt can succeed. */
    Cycle ready_at = 0;
    /** Scoreboard: cycle each architectural register's value lands. */
    std::vector<Cycle> reg_ready;
    /** Per memory stream access counter (address generation). */
    std::vector<std::uint32_t> stream_pos;
    /** Dynamic (non-PREFETCH) instructions issued. */
    std::uint64_t issued = 0;

    bool finished() const { return state == WarpState::FINISHED; }
    bool atEnd() const { return pc >= trace->refs.size(); }
};

} // namespace ltrf

#endif // LTRF_SIM_WARP_HH
