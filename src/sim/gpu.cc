#include "sim/gpu.hh"

#include <algorithm>

#include "common/log.hh"
#include "compiler/verify.hh"

namespace ltrf
{

int
Gpu::residentWarps(const SimConfig &cfg, const Kernel &kernel)
{
    ltrf_assert(kernel.reg_demand >= 1, "kernel without register demand");
    int by_capacity = cfg.numMrfRegs() / kernel.reg_demand;
    // Thread blocks are allocated whole: round down to CTA
    // granularity (4 warps) as real occupancy calculations do.
    if (by_capacity >= 4)
        by_capacity -= by_capacity % 4;
    return std::clamp(by_capacity, 1, cfg.max_warps_per_sm);
}

Gpu::Gpu(const SimConfig &cfg, const Kernel &kernel, std::uint64_t seed)
    : config(cfg), workload_name(kernel.name)
{
    config.validate();
    compiled = compileWorkload(kernel, config, seed);
    if (config.verify_kernels) {
        VerifyResult vr = verifyAnalysis(compiled.analysis,
                                         config.regs_per_interval);
        if (!vr.clean()) {
            ltrf_fatal("kernel '%s' failed static verification "
                       "(%zu diagnostics):\n%s",
                       workload_name.c_str(), vr.diags.size(),
                       vr.report().c_str());
        }
    }
    mem = std::make_unique<MemSystem>(config);
    int resident = residentWarps(config, kernel);
    for (int s = 0; s < config.num_sms; s++) {
        sms.push_back(std::make_unique<Sm>(s, config, compiled, *mem,
                                           resident));
    }
}

SimResult
Gpu::run(Cycle max_cycles)
{
    // Per-SM event scheduling: an SM is stepped only at cycles where
    // it can make progress; the global clock advances to the minimum
    // pending event so idle stretches (everything waiting on memory)
    // are skipped. With cfg.skip_ahead off, every live SM is stepped
    // every cycle instead — the slow reference mode the fast-forward
    // determinism test compares against.
    const bool skip = config.skip_ahead;
    Cycle cycle = 0;
    std::vector<Cycle> wake(sms.size(), 0);
    while (cycle < max_cycles) {
        Cycle next = NEVER;
        bool all_done = true;
        for (size_t i = 0; i < sms.size(); i++) {
            Sm &sm = *sms[i];
            if (sm.done())
                continue;
            all_done = false;
            if (!skip || wake[i] <= cycle) {
                sm.step(cycle);
                wake[i] = sm.done() ? NEVER : sm.nextEvent(cycle);
            }
            next = std::min(next, wake[i]);
        }
        if (all_done)
            break;
        cycle = (skip && next != NEVER) ? std::max(next, cycle + 1)
                                        : cycle + 1;
    }
    ltrf_assert(cycle < max_cycles,
                "simulation of '%s' exceeded %llu cycles",
                workload_name.c_str(),
                static_cast<unsigned long long>(max_cycles));

    SimResult r;
    r.workload = workload_name;
    r.design = config.design;
    r.cycles = cycle;
    r.resident_warps = Gpu::residentWarps(
            config, compiled.kernel());

    std::uint64_t hits = 0, reads = 0;
    for (auto &sm : sms) {
        r.instructions += sm->instructionsIssued();
        const RfStats &s = sm->rf().rfStats();
        r.main_accesses += s.main_accesses.value();
        r.cache_accesses += s.cache_accesses.value();
        r.wcb_accesses += s.wcb_accesses.value();
        r.xfer_regs += s.xfer_regs.value();
        r.prefetch_ops += s.prefetch_ops.value();
        r.writeback_regs += s.writeback_regs.value();
        r.prefetch_stall_cycles += s.prefetch_stall_cycles.value();
        hits += s.cache_hits.value();
        reads += s.cache_hits.value() + s.cache_misses.value();
    }
    r.ipc = r.cycles == 0 ? 0.0
                          : static_cast<double>(r.instructions) /
                                    static_cast<double>(r.cycles);
    r.cache_hit_rate = reads == 0 ? 0.0
                                  : static_cast<double>(hits) /
                                            static_cast<double>(reads);
    r.l1d_hit_rate = mem->l1dHitRate();

    if (config.collect_stall_stats) {
        r.stall_collected = true;
        for (auto &sm : sms) {
            r.sm_stall.push_back(sm->finalizeStallStats(r.cycles));
            r.stall_total += r.sm_stall.back();
        }
        for (auto &sm : sms)
            sm->flattenStats(r.stats_lines);
    }

    // Per-SM activity rates: totals divided by SM count and cycles.
    double denom = static_cast<double>(config.num_sms) *
                   static_cast<double>(r.cycles ? r.cycles : 1);
    r.activity.main_accesses_per_cycle =
            static_cast<double>(r.main_accesses) / denom;
    r.activity.cache_accesses_per_cycle =
            static_cast<double>(r.cache_accesses) / denom;
    r.activity.wcb_accesses_per_cycle =
            static_cast<double>(r.wcb_accesses) / denom;
    r.activity.xfer_regs_per_cycle =
            static_cast<double>(r.xfer_regs) / denom;
    return r;
}

SimResult
simulate(const SimConfig &cfg, const Kernel &kernel, std::uint64_t seed)
{
    Gpu gpu(cfg, kernel, seed);
    return gpu.run();
}

} // namespace ltrf
