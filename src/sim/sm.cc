#include "sim/sm.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace ltrf
{

namespace
{

/**
 * Regions are placed at hashed base addresses so that concurrent
 * warps' streams spread uniformly over cache sets and DRAM banks
 * (consecutive or arithmetically related bases alias into the same
 * index bits and fake conflict misses). The odd multiplier keeps
 * bases misaligned with power-of-two set counts while leaving
 * REGION_SPAN lines of room for the stream itself.
 */
constexpr std::uint64_t REGION_SPAN = 32771;

std::uint64_t
regionBase(std::uint64_t region)
{
    return (mixSeeds(region, 0x517e0ull) % (1ull << 40)) * REGION_SPAN;
}

std::vector<Warp>
makeWarps(const CompiledWorkload &cw, int resident_warps,
          WarpStateArena &arena)
{
    std::vector<Warp> out;
    out.reserve(static_cast<size_t>(resident_warps));
    for (int w = 0; w < resident_warps; w++)
        out.emplace_back(w, &cw.traces[w], arena);
    return out;
}

} // namespace

Sm::Sm(int sm_id, const SimConfig &cfg, const CompiledWorkload &cw,
       MemSystem &mem_, int resident_warps)
    : id(sm_id), config(cfg), compiled(cw), mem(mem_),
      regfile(makeRegFileSystem(cfg, cw, resident_warps)),
      arena(resident_warps, cw.kernel().num_regs,
            static_cast<int>(cw.kernel().mem_streams.size())),
      warps(makeWarps(cw, resident_warps, arena)),
      sched(cfg.num_active_warps, warps),
      collectors(static_cast<size_t>(cfg.num_operand_collectors), 0)
{
    ltrf_assert(resident_warps >= 1 &&
                resident_warps <= cfg.max_warps_per_sm,
                "resident warp count %d out of range", resident_warps);
    ltrf_assert(static_cast<size_t>(resident_warps) <= cw.traces.size(),
                "not enough traces for %d resident warps",
                resident_warps);
}

int
Sm::freeCollector(Cycle now, Cycle &earliest_free) const
{
    earliest_free = NEVER;
    for (size_t i = 0; i < collectors.size(); i++) {
        if (collectors[i] <= now)
            return static_cast<int>(i);
        earliest_free = std::min(earliest_free, collectors[i]);
    }
    return -1;
}

std::uint64_t
Sm::lineFor(Warp &w, const Instruction &in)
{
    const MemStreamSpec &spec =
            compiled.kernel().mem_streams[in.mem_stream];
    std::uint64_t pos = w.stream_pos[in.mem_stream]++;
    std::uint64_t within =
            (pos % static_cast<std::uint64_t>(spec.working_set_lines)) *
            static_cast<std::uint64_t>(spec.stride_lines);
    // Shared streams use one region for all warps and SMs
    // (inter-warp reuse); private streams get disjoint regions.
    ltrf_assert(static_cast<std::uint64_t>(spec.working_set_lines) *
                static_cast<std::uint64_t>(spec.stride_lines) <=
                REGION_SPAN,
                "memory stream exceeds its region span");
    std::uint64_t region =
            static_cast<std::uint64_t>(in.mem_stream) * 4096 +
            (spec.shared_across_warps
                     ? 0
                     : 1 + static_cast<std::uint64_t>(id) * 64 +
                               static_cast<std::uint64_t>(w.id));
    return regionBase(region) + within;
}

bool
Sm::tryIssue(Warp &w, Cycle now)
{
    const Kernel &kernel = compiled.kernel();

    // Skip no-op PREFETCHes for free; a triggered PREFETCH blocks the
    // warp until the working set arrives and consumes the slot.
    while (!w.atEnd()) {
        const TraceRef &ref = w.trace->refs[w.pc];
        const Instruction &in = kernel.block(ref.bb).instrs[ref.idx];
        if (in.op != Opcode::PREFETCH)
            break;
        Cycle done = regfile->prefetch(w.id, ref.bb, in, now);
        w.pc++;
        if (done > now) {
            w.ready_at = done;
            return true;
        }
    }
    ltrf_assert(!w.atEnd(), "warp %d ran past its trace", w.id);

    const TraceRef &ref = w.trace->refs[w.pc];
    const Instruction &in = kernel.block(ref.bb).instrs[ref.idx];

    // Scoreboard: all sources ready, destination write ordered.
    Cycle dep = now;
    for (RegId s : in.srcs)
        if (s != INVALID_REG)
            dep = std::max(dep, w.reg_ready[s]);
    if (in.hasDst())
        dep = std::max(dep, w.reg_ready[in.dst]);
    if (dep > now) {
        w.ready_at = dep;
        pipe.dep_stalls++;
        return false;
    }

    if (in.op == Opcode::EXIT) {
        w.pc++;
        w.issued++;
        sched.finish(w, *regfile, now);
        return true;
    }

    // Structural hazard: need a free operand collector. On a stall,
    // no issue can succeed before the earliest busy-until, so defer
    // the next attempt to that cycle — identical issue behaviour
    // (retries in between would all fail without touching state),
    // but the fast-forward can now skip the stalled stretch instead
    // of polling it.
    Cycle earliest_free = NEVER;
    int c = freeCollector(now, earliest_free);
    if (c < 0) {
        pipe.collector_stalls++;
        w.ready_at = earliest_free;
        return false;
    }

    Cycle ops_ready = regfile->readOperands(w.id, in, now);
    collectors[c] = ops_ready;
    w.pc++;
    w.issued++;

    if (isGlobalMem(in.op)) {
        MemAccessResult res = mem.accessGlobal(id, lineFor(w, in),
                                               isStore(in.op), ops_ready);
        if (isLoad(in.op)) {
            w.reg_ready[in.dst] = res.done;
            if (!res.l1_hit) {
                // Long-latency miss: the two-level scheduler swaps
                // the warp out; the result lands in the MRF.
                regfile->writeResult(w.id, in, res.done, false);
                sched.deactivate(w, res.done, *regfile, now);
                pipe.deactivations++;
                pipe.mem_stall_sum += res.done - ops_ready;
                pipe.mem_stall_max =
                        std::max(pipe.mem_stall_max,
                                 static_cast<std::uint64_t>(res.done -
                                                            ops_ready));
            } else {
                regfile->writeResult(w.id, in, res.done, true);
                w.ready_at = now + 1;
            }
        } else {
            // Stores retire through write buffers; the warp runs on.
            w.ready_at = now + 1;
        }
    } else {
        Cycle done = ops_ready + execLatency(in.op);
        if (in.hasDst()) {
            w.reg_ready[in.dst] = done;
            regfile->writeResult(w.id, in, done, true);
        }
        w.ready_at = now + 1;
    }
    return true;
}

void
Sm::step(Cycle now)
{
    sched.tick(now, *regfile);

    // Snapshot the pool: deactivations mutate it mid-loop. The
    // assignment reuses pool_scratch's capacity, so no allocation.
    pool_scratch = sched.activePool();
    const std::vector<WarpId> &pool = pool_scratch;
    pipe.stepped_cycles++;
    pipe.active_warp_sum += pool.size();
    pipe.ready_sum += static_cast<std::uint64_t>(sched.readyCount());
    pipe.wait_sum += static_cast<std::uint64_t>(sched.waitCount());
    if (pool.empty())
        return;
    int issued = 0;
    int n = static_cast<int>(pool.size());
    int start = sched.rrIndex() % n;
    for (int k = 0; k < n && issued < config.issue_width; k++) {
        // start + k < 2n, so a conditional subtract replaces the
        // modulo in this per-cycle loop.
        int idx = start + k;
        if (idx >= n)
            idx -= n;
        Warp &w = warps[pool[idx]];
        if (w.state != WarpState::ACTIVE || w.ready_at > now)
            continue;
        if (tryIssue(w, now))
            issued++;
    }
    pipe.issued_sum += static_cast<std::uint64_t>(issued);
    if (issued > 0)
        sched.advanceRr();
}

Cycle
Sm::nextEvent(Cycle now) const
{
    // Equivalent to scanning every resident warp, but built from the
    // scheduler's incremental bookkeeping: the active pool holds
    // exactly the ACTIVE/ACTIVATING warps, nextTransition() bounds
    // every ACTIVATING/INACTIVE_WAIT wait_until from below (and the
    // ACTIVATING ones are already covered exactly by the pool scan),
    // and the ready queue holds exactly the INACTIVE_READY warps.
    if (done())
        return NEVER;
    Cycle e = NEVER;
    for (WarpId id : sched.activePool()) {
        const Warp &w = warps[id];
        Cycle t = w.state == WarpState::ACTIVE ? w.ready_at
                                               : w.wait_until;
        e = std::min(e, std::max(t, now + 1));
    }
    if (sched.waitCount() > 0)
        e = std::min(e, std::max(sched.nextTransition(), now + 1));
    if (sched.readyCount() > 0 &&
        static_cast<int>(sched.activePool().size()) <
                config.num_active_warps)
        e = std::min(e, now + 1);
    return e;
}

std::uint64_t
Sm::instructionsIssued() const
{
    std::uint64_t n = 0;
    for (const Warp &w : warps)
        n += w.issued;
    return n;
}

} // namespace ltrf
