#include "sim/sm.hh"

#include <algorithm>
#include <string>

#include "common/log.hh"
#include "common/rng.hh"
#include "obs/trace_sink.hh"

namespace ltrf
{

namespace
{

/**
 * Regions are placed at hashed base addresses so that concurrent
 * warps' streams spread uniformly over cache sets and DRAM banks
 * (consecutive or arithmetically related bases alias into the same
 * index bits and fake conflict misses). The odd multiplier keeps
 * bases misaligned with power-of-two set counts while leaving
 * REGION_SPAN lines of room for the stream itself.
 */
constexpr std::uint64_t REGION_SPAN = 32771;

std::uint64_t
regionBase(std::uint64_t region)
{
    return (mixSeeds(region, 0x517e0ull) % (1ull << 40)) * REGION_SPAN;
}

std::vector<Warp>
makeWarps(const CompiledWorkload &cw, int resident_warps,
          WarpStateArena &arena)
{
    std::vector<Warp> out;
    out.reserve(static_cast<size_t>(resident_warps));
    for (int w = 0; w < resident_warps; w++)
        out.emplace_back(w, &cw.traces[w], arena);
    return out;
}

} // namespace

Sm::Sm(int sm_id, const SimConfig &cfg, const CompiledWorkload &cw,
       MemSystem &mem_, int resident_warps)
    : id(sm_id), config(cfg), compiled(cw), mem(mem_),
      regfile(makeRegFileSystem(cfg, cw, resident_warps)),
      arena(resident_warps, cw.kernel().num_regs,
            static_cast<int>(cw.kernel().mem_streams.size())),
      warps(makeWarps(cw, resident_warps, arena)),
      sched(cfg.num_active_warps, warps),
      collectors(static_cast<size_t>(cfg.num_operand_collectors), 0),
      collect(cfg.collect_stall_stats), trace(cfg.trace),
      trace_pid(cfg.trace_pid_base + sm_id),
      stat_root("sm" + std::to_string(sm_id)), stall_group("stall"),
      rf_group("rf"), sched_group("sched")
{
    ltrf_assert(resident_warps >= 1 &&
                resident_warps <= cfg.max_warps_per_sm,
                "resident warp count %d out of range", resident_warps);
    ltrf_assert(static_cast<size_t>(resident_warps) <= cw.traces.size(),
                "not enough traces for %d resident warps",
                resident_warps);

    // Stat-tree registration (once per SM; dumping is opt-in).
    for (int c = 0; c < obs::NUM_STALL_CAUSES; c++)
        stall_group.add(obs::stallCauseName(
                                static_cast<obs::StallCause>(c)),
                        &stall_counters[c]);
    stat_root.add("issue_slots", &stat_issue_slots);
    stat_root.add("instructions", &stat_instructions);
    stat_root.add("prefetch_slots", &stat_prefetch_slots);
    stat_root.addDist("issue_per_cycle", &issue_per_cycle);
    stat_root.addDist("collector_wait", &collector_wait);
    stat_root.addDist("mem_stall", &mem_stall);
    stat_root.addChild(&stall_group);
    regfile->registerStats(rf_group);
    rf_group.add("bank_conflict_cycles", &stat_bank_conflicts);
    stat_root.addChild(&rf_group);
    sched.registerStats(sched_group);
    stat_root.addChild(&sched_group);

    if (trace)
        trace->processName(
                trace_pid,
                cw.kernel().name + "/" +
                        std::string(rfDesignName(cfg.design)) + " sm" +
                        std::to_string(sm_id));
}

int
Sm::freeCollector(Cycle now, Cycle &earliest_free) const
{
    earliest_free = NEVER;
    for (size_t i = 0; i < collectors.size(); i++) {
        if (collectors[i] <= now)
            return static_cast<int>(i);
        earliest_free = std::min(earliest_free, collectors[i]);
    }
    return -1;
}

std::uint64_t
Sm::lineFor(Warp &w, const Instruction &in)
{
    const MemStreamSpec &spec =
            compiled.kernel().mem_streams[in.mem_stream];
    std::uint64_t pos = w.stream_pos[in.mem_stream]++;
    std::uint64_t within =
            (pos % static_cast<std::uint64_t>(spec.working_set_lines)) *
            static_cast<std::uint64_t>(spec.stride_lines);
    // Shared streams use one region for all warps and SMs
    // (inter-warp reuse); private streams get disjoint regions.
    ltrf_assert(static_cast<std::uint64_t>(spec.working_set_lines) *
                static_cast<std::uint64_t>(spec.stride_lines) <=
                REGION_SPAN,
                "memory stream exceeds its region span");
    std::uint64_t region =
            static_cast<std::uint64_t>(in.mem_stream) * 4096 +
            (spec.shared_across_warps
                     ? 0
                     : 1 + static_cast<std::uint64_t>(id) * 64 +
                               static_cast<std::uint64_t>(w.id));
    return regionBase(region) + within;
}

bool
Sm::tryIssue(Warp &w, Cycle now)
{
    const Kernel &kernel = compiled.kernel();

    // Skip no-op PREFETCHes for free; a triggered PREFETCH blocks the
    // warp until the working set arrives and consumes the slot.
    while (!w.atEnd()) {
        const TraceRef &ref = w.trace->refs[w.pc];
        const Instruction &in = kernel.block(ref.bb).instrs[ref.idx];
        if (in.op != Opcode::PREFETCH)
            break;
        Cycle done = regfile->prefetch(w.id, ref.bb, in, now);
        w.pc++;
        if (done > now) {
            w.ready_at = done;
            w.last_stall = obs::StallCause::PREFETCH_WAIT;
            if (trace)
                trace->complete("prefetch", trace_pid, w.id, now,
                                done - now);
            return true;
        }
    }
    ltrf_assert(!w.atEnd(), "warp %d ran past its trace", w.id);

    const TraceRef &ref = w.trace->refs[w.pc];
    const Instruction &in = kernel.block(ref.bb).instrs[ref.idx];

    // Scoreboard: all sources ready, destination write ordered.
    Cycle dep = now;
    for (RegId s : in.srcs)
        if (s != INVALID_REG)
            dep = std::max(dep, w.reg_ready[s]);
    if (in.hasDst())
        dep = std::max(dep, w.reg_ready[in.dst]);
    if (dep > now) {
        w.ready_at = dep;
        w.last_stall = obs::StallCause::SCOREBOARD;
        pipe.dep_stalls++;
        if (trace)
            trace->complete("stall:scoreboard", trace_pid, w.id, now,
                            dep - now);
        return false;
    }

    if (in.op == Opcode::EXIT) {
        w.pc++;
        w.issued++;
        sched.finish(w, *regfile, now);
        return true;
    }

    // Structural hazard: need a free operand collector. On a stall,
    // no issue can succeed before the earliest busy-until, so defer
    // the next attempt to that cycle — identical issue behaviour
    // (retries in between would all fail without touching state),
    // but the fast-forward can now skip the stalled stretch instead
    // of polling it.
    Cycle earliest_free = NEVER;
    int c = freeCollector(now, earliest_free);
    if (c < 0) {
        pipe.collector_stalls++;
        w.ready_at = earliest_free;
        w.last_stall = obs::StallCause::COLLECTOR;
        if (collect)
            collector_wait.sample(earliest_free - now);
        if (trace)
            trace->complete("stall:collector", trace_pid, w.id, now,
                            earliest_free - now);
        return false;
    }

    Cycle ops_ready = regfile->readOperands(w.id, in, now);
    collectors[c] = ops_ready;
    w.pc++;
    w.issued++;
    if (trace)
        trace->complete("issue", trace_pid, w.id, now, ops_ready - now);

    if (isGlobalMem(in.op)) {
        MemAccessResult res = mem.accessGlobal(id, lineFor(w, in),
                                               isStore(in.op), ops_ready);
        if (isLoad(in.op)) {
            w.reg_ready[in.dst] = res.done;
            if (!res.l1_hit) {
                // Long-latency miss: the two-level scheduler swaps
                // the warp out; the result lands in the MRF.
                regfile->writeResult(w.id, in, res.done, false);
                sched.deactivate(w, res.done, *regfile, now);
                pipe.deactivations++;
                if (collect)
                    mem_stall.sample(res.done - ops_ready);
                if (trace)
                    trace->complete("memwait", trace_pid, w.id,
                                    ops_ready, res.done - ops_ready);
                pipe.mem_stall_sum += res.done - ops_ready;
                pipe.mem_stall_max =
                        std::max(pipe.mem_stall_max,
                                 static_cast<std::uint64_t>(res.done -
                                                            ops_ready));
            } else {
                regfile->writeResult(w.id, in, res.done, true);
                w.ready_at = now + 1;
            }
        } else {
            // Stores retire through write buffers; the warp runs on.
            w.ready_at = now + 1;
        }
    } else {
        Cycle done = ops_ready + execLatency(in.op);
        if (in.hasDst()) {
            w.reg_ready[in.dst] = done;
            regfile->writeResult(w.id, in, done, true);
        }
        w.ready_at = now + 1;
    }
    return true;
}

void
Sm::accountGap(Cycle now)
{
    // Attribute the fast-forwarded cycles since the previous step.
    // The pool has not been re-ticked yet, so it still holds exactly
    // the warps that were asleep across the gap; the slots go to the
    // cause of the warp whose wake time ends the gap (what the SM
    // was actually waiting for), or NO_READY_WARP on an empty pool.
    if (prev_step == NEVER) {
        prev_step = now;
        return;
    }
    Cycle gap = now - prev_step - 1;
    prev_step = now;
    if (gap == 0)
        return;
    obs::StallCause cause = obs::StallCause::NO_READY_WARP;
    Cycle best = NEVER;
    for (WarpId wid : sched.activePool()) {
        const Warp &w = warps[wid];
        Cycle t = w.state == WarpState::ACTIVE ? w.ready_at
                                               : w.wait_until;
        if (t < best) {
            best = t;
            cause = w.state == WarpState::ACTIVE
                            ? w.last_stall
                            : obs::StallCause::PREFETCH_WAIT;
        }
    }
    stall_counters[static_cast<int>(cause)] +=
            gap * static_cast<std::uint64_t>(config.issue_width);
}

void
Sm::step(Cycle now)
{
    if (collect)
        accountGap(now);

    sched.tick(now, *regfile);

    // Snapshot the pool: deactivations mutate it mid-loop. The
    // assignment reuses pool_scratch's capacity, so no allocation.
    pool_scratch = sched.activePool();
    const std::vector<WarpId> &pool = pool_scratch;
    pipe.stepped_cycles++;
    pipe.active_warp_sum += pool.size();
    pipe.ready_sum += static_cast<std::uint64_t>(sched.readyCount());
    pipe.wait_sum += static_cast<std::uint64_t>(sched.waitCount());
    if (pool.empty()) {
        if (collect) {
            stall_counters[static_cast<int>(
                    obs::StallCause::NO_READY_WARP)] +=
                    static_cast<std::uint64_t>(config.issue_width);
            issue_per_cycle.sample(0);
        }
        return;
    }
    int issued = 0;
    int n = static_cast<int>(pool.size());
    int start = sched.rrIndex() % n;
    if (collect)
        fail_scratch.clear();
    for (int k = 0; k < n && issued < config.issue_width; k++) {
        // start + k < 2n, so a conditional subtract replaces the
        // modulo in this per-cycle loop.
        int idx = start + k;
        if (idx >= n)
            idx -= n;
        Warp &w = warps[pool[idx]];
        if (w.state != WarpState::ACTIVE || w.ready_at > now) {
            if (collect)
                fail_scratch.push_back(
                        w.state == WarpState::ACTIVE
                                ? w.last_stall
                                : obs::StallCause::PREFETCH_WAIT);
            continue;
        }
        if (tryIssue(w, now))
            issued++;
        else if (collect)
            fail_scratch.push_back(w.last_stall);
    }
    pipe.issued_sum += static_cast<std::uint64_t>(issued);
    if (issued > 0)
        sched.advanceRr();
    if (collect) {
        issue_per_cycle.sample(static_cast<std::uint64_t>(issued));
        // Unused slots round-robin over this cycle's failure causes
        // (NO_READY_WARP when every pool warp issued but the pool is
        // narrower than the issue width).
        int unused = config.issue_width - issued;
        for (int i = 0; i < unused; i++) {
            obs::StallCause c =
                    fail_scratch.empty()
                            ? obs::StallCause::NO_READY_WARP
                            : fail_scratch[static_cast<std::size_t>(i) %
                                           fail_scratch.size()];
            stall_counters[static_cast<int>(c)]++;
        }
    }
}

Cycle
Sm::nextEvent(Cycle now) const
{
    // Equivalent to scanning every resident warp, but built from the
    // scheduler's incremental bookkeeping: the active pool holds
    // exactly the ACTIVE/ACTIVATING warps, nextTransition() bounds
    // every ACTIVATING/INACTIVE_WAIT wait_until from below (and the
    // ACTIVATING ones are already covered exactly by the pool scan),
    // and the ready queue holds exactly the INACTIVE_READY warps.
    if (done())
        return NEVER;
    Cycle e = NEVER;
    for (WarpId id : sched.activePool()) {
        const Warp &w = warps[id];
        Cycle t = w.state == WarpState::ACTIVE ? w.ready_at
                                               : w.wait_until;
        e = std::min(e, std::max(t, now + 1));
    }
    if (sched.waitCount() > 0)
        e = std::min(e, std::max(sched.nextTransition(), now + 1));
    if (sched.readyCount() > 0 &&
        static_cast<int>(sched.activePool().size()) <
                config.num_active_warps)
        e = std::min(e, now + 1);
    return e;
}

std::uint64_t
Sm::instructionsIssued() const
{
    std::uint64_t n = 0;
    for (const Warp &w : warps)
        n += w.issued;
    return n;
}

obs::StallBreakdown
Sm::finalizeStallStats(Cycle total_cycles)
{
    obs::StallBreakdown b;
    b.issue_slots = static_cast<std::uint64_t>(total_cycles) *
                    static_cast<std::uint64_t>(config.issue_width);
    b.instructions = instructionsIssued();
    // tryIssue() returns true (slot consumed) for triggered
    // PREFETCHes without bumping Warp::issued, so the difference is
    // exactly the slots PREFETCH occupied.
    ltrf_assert(pipe.issued_sum >= b.instructions,
                "issued slots below instruction count");
    b.prefetch_slots = pipe.issued_sum - b.instructions;
    for (int c = 0; c < obs::NUM_LIVE_STALL_CAUSES; c++)
        b.stalls[c] = stall_counters[c].value();
    std::uint64_t used = b.accountedSlots();
    // The real over-count check: live attribution must never claim
    // more slots than the run had. The remainder is DRAIN — cycles
    // after this SM finished while others kept the clock running.
    ltrf_assert(used <= b.issue_slots,
                "stall attribution over-counted: %llu of %llu slots",
                static_cast<unsigned long long>(used),
                static_cast<unsigned long long>(b.issue_slots));
    std::uint64_t drain = b.issue_slots - used;
    b.stalls[static_cast<int>(obs::StallCause::DRAIN)] = drain;
    stall_counters[static_cast<int>(obs::StallCause::DRAIN)] += drain;
    b.bank_conflict_cycles = regfile->bankConflictCycles();

    // Backfill the derived counters so the flattened tree is a
    // complete account too.
    stat_issue_slots += b.issue_slots;
    stat_instructions += b.instructions;
    stat_prefetch_slots += b.prefetch_slots;
    stat_bank_conflicts += b.bank_conflict_cycles;
    return b;
}

} // namespace ltrf
