/**
 * @file
 * Two-level warp scheduler (paper section 3.2, after [19, 53]).
 *
 * A fixed-size active pool issues in round-robin; warps hitting a
 * long-latency operation are deactivated into the inactive pool and
 * replaced by a ready inactive warp. Activation may itself take time
 * (LTRF refetches the warp's register working set), which the
 * scheduler tracks through the ACTIVATING state.
 *
 * The scheduler is event-gated: it tracks the earliest cycle any
 * ACTIVATING or INACTIVE_WAIT warp can change state, so tick() only
 * walks the warp array on cycles where a promotion is actually due
 * instead of polling every resident warp every cycle. The walk
 * itself is unchanged (warp-id order), so promotion order — and with
 * it every downstream result — is bit-identical to the polling
 * implementation.
 */

#ifndef LTRF_SIM_SCHEDULER_HH
#define LTRF_SIM_SCHEDULER_HH

#include <deque>
#include <vector>

#include "core/regfile_system.hh"
#include "sim/warp.hh"

namespace ltrf
{

/** Active/inactive pool manager for one SM. */
class TwoLevelScheduler
{
  public:
    /**
     * @param num_active active pool size (Table 3: 8)
     * @param warps      all resident warps (owned by the SM)
     */
    TwoLevelScheduler(int num_active, std::vector<Warp> &warps);

    /**
     * Promote finished activations and expired waits, then fill free
     * active slots from the inactive-ready queue (activating through
     * @p rf, which may impose a refetch delay).
     */
    void tick(Cycle now, RegFileSystem &rf);

    /** Deactivate @p w until @p until (long-latency stall). */
    void deactivate(Warp &w, Cycle until, RegFileSystem &rf, Cycle now);

    /** Retire @p w (reached EXIT); frees its active slot. */
    void finish(Warp &w, RegFileSystem &rf, Cycle now);

    /** Warps currently in the active pool, in slot order. */
    const std::vector<WarpId> &activePool() const { return active; }

    /** Round-robin start index, advanced by the SM after each issue. */
    int rrIndex() const { return rr; }
    void advanceRr() { rr = active.empty() ? 0 : (rr + 1) % active.size(); }

    int finishedCount() const { return num_finished; }

    /** Warps in INACTIVE_READY (== the ready queue's occupancy). */
    int readyCount() const { return static_cast<int>(ready_queue.size()); }

    /** Warps in INACTIVE_WAIT. */
    int waitCount() const { return num_wait; }

    /**
     * Earliest wait_until over all ACTIVATING and INACTIVE_WAIT
     * warps (NEVER if none): the next cycle tick() can promote.
     */
    Cycle nextTransition() const { return next_transition; }

    /** Register scheduler event counters into @p g (obs layer). */
    void
    registerStats(StatGroup &g)
    {
        g.add("activations", &stat_activations);
        g.add("slow_activations", &stat_slow_activations);
        g.add("deactivations", &stat_deactivations);
        g.add("finishes", &stat_finishes);
    }

  private:
    void removeActive(WarpId id);

    int num_active_slots;
    std::vector<Warp> &warps;
    std::vector<WarpId> active;
    std::deque<WarpId> ready_queue;
    int rr = 0;
    int num_finished = 0;
    int num_wait = 0;               ///< INACTIVE_WAIT population
    /** Min wait_until over ACTIVATING + INACTIVE_WAIT warps. */
    Cycle next_transition = NEVER;

    // Event counters (rare events, so unconditionally maintained).
    Counter stat_activations;       ///< warps entering the active pool
    Counter stat_slow_activations;  ///< activations with refetch delay
    Counter stat_deactivations;     ///< long-latency swap-outs
    Counter stat_finishes;          ///< warps reaching EXIT
};

} // namespace ltrf

#endif // LTRF_SIM_SCHEDULER_HH
