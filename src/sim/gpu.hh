/**
 * @file
 * Whole-GPU driver: occupancy model, per-SM instantiation around a
 * shared memory hierarchy, the global cycle loop (with idle-period
 * skipping), and result aggregation.
 */

#ifndef LTRF_SIM_GPU_HH
#define LTRF_SIM_GPU_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/compile.hh"
#include "obs/stall.hh"
#include "sim/sm.hh"

namespace ltrf
{

/** Aggregated results of one simulation run. */
struct SimResult
{
    std::string workload;
    RfDesign design = RfDesign::BL;
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    /** Warps the occupancy model admitted per SM. */
    int resident_warps = 0;

    // Register file activity (aggregated over SMs).
    std::uint64_t main_accesses = 0;
    std::uint64_t cache_accesses = 0;
    std::uint64_t wcb_accesses = 0;
    std::uint64_t xfer_regs = 0;
    std::uint64_t prefetch_ops = 0;
    std::uint64_t writeback_regs = 0;
    std::uint64_t prefetch_stall_cycles = 0;
    double cache_hit_rate = 0.0;    ///< RFC/SHRF read hit rate
    double l1d_hit_rate = 0.0;

    /** Per-SM register file activity rates (power model input). */
    RfActivity activity;

    // ----- Observability (populated iff collect_stall_stats) -----
    /** True when the run collected the issue-slot stall account. */
    bool stall_collected = false;
    /** Aggregate breakdown over all SMs. */
    obs::StallBreakdown stall_total;
    /** Per-SM breakdowns, in SM id order. */
    std::vector<obs::StallBreakdown> sm_stall;
    /** Flattened hierarchical stat tree ("sm0.stall.scoreboard"). */
    std::vector<StatLine> stats_lines;
};

/**
 * One GPU simulation: compiles the kernel for the configured design,
 * instantiates SMs, and runs to completion.
 */
class Gpu
{
  public:
    /**
     * @param cfg    validated configuration (design, latencies, ...)
     * @param kernel the workload kernel (uncompiled)
     * @param seed   workload seed for traces and branch outcomes
     */
    Gpu(const SimConfig &cfg, const Kernel &kernel, std::uint64_t seed);

    /** Run to completion (or @p max_cycles) and aggregate results. */
    SimResult run(Cycle max_cycles = 500'000'000);

    /**
     * Occupancy model: warps resident per SM, limited by main
     * register file capacity over per-thread register demand
     * (sections 2.1-2.2).
     */
    static int residentWarps(const SimConfig &cfg, const Kernel &kernel);

    const CompiledWorkload &compiledWorkload() const { return compiled; }
    const MemSystem &memSystem() const { return *mem; }
    const Sm &sm(int i) const { return *sms[i]; }

  private:
    SimConfig config;
    CompiledWorkload compiled;
    std::unique_ptr<MemSystem> mem;
    std::vector<std::unique_ptr<Sm>> sms;
    std::string workload_name;
};

/** Convenience: construct a Gpu and run it. */
SimResult simulate(const SimConfig &cfg, const Kernel &kernel,
                   std::uint64_t seed = 1);

} // namespace ltrf

#endif // LTRF_SIM_GPU_HH
