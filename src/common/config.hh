/**
 * @file
 * Simulated system configuration (paper Table 3) plus the design
 * knobs the evaluation sweeps (register file design, main register
 * file latency multiplier, capacity multiplier, interval size, and
 * active warp count).
 */

#ifndef LTRF_COMMON_CONFIG_HH
#define LTRF_COMMON_CONFIG_HH

#include <algorithm>
#include <cmath>
#include <string>

#include "common/types.hh"

namespace ltrf
{

namespace obs
{
class TraceSink;
}

/**
 * The register file system designs evaluated in the paper.
 *
 * BL          - conventional non-cached register file (baseline).
 * RFC         - hardware register file cache, Gebhart et al. [19].
 * SHRF        - software-managed hierarchical RF with strands [20].
 * LTRF_STRAND - LTRF prefetching at strand boundaries (section 6.6).
 * LTRF        - LTRF with register-intervals (the contribution).
 * LTRF_PLUS   - operand-liveness-aware LTRF (section 3.2).
 * IDEAL       - any capacity with no latency overhead.
 */
enum class RfDesign
{
    BL,
    RFC,
    SHRF,
    LTRF_STRAND,
    LTRF,
    LTRF_PLUS,
    IDEAL,
};

/** @return a short printable name, e.g. "LTRF+". */
const char *rfDesignName(RfDesign d);

/** @return true for designs that use the register file cache. */
inline bool
usesRegCache(RfDesign d)
{
    return d != RfDesign::BL && d != RfDesign::IDEAL;
}

/** @return true for designs that prefetch at compiler-chosen points. */
inline bool
usesPrefetch(RfDesign d)
{
    return d == RfDesign::LTRF_STRAND || d == RfDesign::LTRF ||
           d == RfDesign::LTRF_PLUS;
}

/**
 * Full simulated-system configuration.
 *
 * Defaults follow paper Table 3 (NVIDIA Maxwell-like), with the one
 * practical difference that benches may scale down num_sms; DRAM
 * bandwidth is scaled with the SM count so per-SM pressure matches.
 */
struct SimConfig
{
    // ----- Chip organization (Table 3) -----
    int num_sms = 8;                ///< paper: 24; benches scale DRAM with it
    int max_warps_per_sm = 64;      ///< resident warp contexts
    int num_active_warps = 8;       ///< two-level scheduler active pool

    // ----- Register file organization -----
    /** Baseline main register file bytes per SM (256KB). */
    std::size_t rf_bytes = 256 * 1024;
    /** Capacity multiplier for enlarged designs (8x in the paper). */
    int rf_capacity_mult = 1;
    /** Register file cache bytes per SM (16KB). */
    std::size_t rf_cache_bytes = 16 * 1024;
    /** Number of main register file banks. */
    int num_mrf_banks = 16;
    /** Maximum registers allowed in a register-interval (= cache banks). */
    int regs_per_interval = 16;

    // ----- Latencies (core cycles) -----
    /** Baseline main RF access latency (operand collectors hold it). */
    int base_mrf_latency = 2;
    /** Main RF latency multiplier (Table 2 column "Latency"). */
    double mrf_latency_mult = 1.0;
    /** Register file cache bank access latency. */
    int cache_latency = 1;
    /** Operand crossbar / arbitration overhead added to a collection. */
    int operand_xbar_latency = 1;
    /** MRF-to-cache prefetch crossbar transfer latency (1/4-width). */
    int prefetch_xbar_latency = 4;
    /** Extra cycle to consult the Warp Control Block (section 4.3). */
    int wcb_latency = 1;

    // ----- Pipeline -----
    int issue_width = 2;            ///< instructions issued per SM cycle
    int num_operand_collectors = 8; ///< concurrent operand collections

    // ----- Memory hierarchy (Table 3) -----
    std::size_t l1d_bytes = 16 * 1024;
    int l1d_assoc = 4;
    /** Table 3 L1I organization, echoed for completeness:
     *  instruction fetch is not simulated (traces drive the SMs), so
     *  these two knobs deliberately reach no model. Every other
     *  memory knob below is consumed by MemSystem/DramParams. */
    std::size_t l1i_bytes = 2 * 1024;
    int l1i_assoc = 4;
    std::size_t llc_bytes = 2 * 1024 * 1024;
    int llc_assoc = 8;
    int line_bytes = 128;
    int l1d_hit_latency = 28;       ///< core cycles to return an L1D hit
    /**
     * Additional cycles for an LLC hit. Microbenchmarked Maxwell L2
     * latency is ~190-200 core cycles, which is also what makes the
     * occupancy gains of larger register files (Figure 3) match the
     * paper: the two-level scheduler needs enough resident warps to
     * cover this latency.
     */
    int llc_latency = 200;
    int dram_latency = 200;         ///< DRAM bank access latency
    /**
     * 8 GDDR5 channels x 16 banks per device. Bank-level parallelism
     * matters: with too few banks, synchronized warp waves convoy
     * behind 200-cycle row misses and memory latency balloons.
     */
    int num_dram_banks = 128;
    /**
     * DRAM data-bus cycles occupied per 128B line at the paper's
     * full 24-SM chip (bandwidth scale; `ltrf_dse` sweeps it as the
     * DRAM-bandwidth axis). MemSystem rescales it with num_sms so
     * the per-SM bandwidth share stays constant when benches
     * simulate fewer SMs; DramParams::service_cycles carries the
     * rescaled per-line bus time and shares this default.
     */
    int dram_service_cycles = 1;

    // ----- Design selection -----
    RfDesign design = RfDesign::BL;

    // ----- Simulator execution (not a hardware parameter) -----
    /**
     * Event-driven fast-forward: the global cycle loop jumps to the
     * next cycle at which any SM can make progress (warp ready,
     * activation or memory wait expiring) instead of stepping every
     * cycle. Observationally pure: simulated results are
     * bit-identical with it on or off (tests/test_fast_forward.cc
     * asserts this); off is the slow per-cycle-polling reference
     * mode. Deliberately not part of the DSE simKey — it cannot
     * change what a design point measures.
     */
    bool skip_ahead = true;

    /**
     * Collect per-cause issue-slot stall attribution (src/obs/):
     * every slot accounted to issued / prefetch / a StallCause.
     * Observationally pure — the attribution only reads decisions
     * the pipeline already made — and off by default so the hot
     * issue loop pays one predictable branch. Deliberately not part
     * of the DSE simKey — it cannot change what a design point
     * measures.
     */
    bool collect_stall_stats = false;

    /**
     * Run the static kernel-IR verifier (src/compiler/verify.hh)
     * over the compiled artifact before simulating; any diagnostic
     * is fatal. Observationally pure — verification only reads the
     * compiled kernel — so it is deliberately not part of the DSE
     * simKey. Default on (tests/CI catch broken kernels at the
     * door); `ltrf_bench` turns it off on its hot path.
     */
    bool verify_kernels = true;

    /**
     * Per-warp timeline trace sink (`ltrf_run --trace`); null means
     * tracing off. Borrowed, not owned; shared by concurrent cells
     * (the sink is thread-safe). Not part of the DSE simKey.
     */
    obs::TraceSink *trace = nullptr;

    /**
     * Base of the trace pid namespace for this simulation: SM @c s
     * appears as pid trace_pid_base + s, so multiple cells sharing
     * one sink get disjoint process groups.
     */
    int trace_pid_base = 0;

    // ----- Derived quantities -----

    /** Main RF capacity in warp-wide registers (with multiplier). */
    int
    numMrfRegs() const
    {
        return static_cast<int>(rf_bytes * rf_capacity_mult /
                                BYTES_PER_WARP_REG);
    }

    /** Register cache capacity in warp-wide registers. */
    int
    numCacheRegs() const
    {
        return static_cast<int>(rf_cache_bytes / BYTES_PER_WARP_REG);
    }

    /** Effective (multiplied) main RF bank access latency in cycles. */
    int
    mrfLatency() const
    {
        return std::max(1, static_cast<int>(
                std::lround(base_mrf_latency * mrf_latency_mult)));
    }

    /** Registers of cache space dedicated to one active warp. */
    int
    cacheRegsPerWarp() const
    {
        return numCacheRegs() / num_active_warps;
    }

    /**
     * Per-line DRAM bus occupancy after rescaling
     * dram_service_cycles (defined at the paper's 24-SM chip) to
     * the simulated SM count, keeping the per-SM bandwidth share
     * constant (see DESIGN.md). Integer quantization means nearby
     * knob values can coincide; simKey() uses this effective value,
     * so such design points share one simulation.
     */
    int
    effectiveDramServiceCycles() const
    {
        return std::max(1, dram_service_cycles * 24 / (num_sms * 2));
    }

    /** Sanity-check the configuration; calls fatal() on user error. */
    void validate() const;
};

} // namespace ltrf

#endif // LTRF_COMMON_CONFIG_HH
