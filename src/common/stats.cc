#include "common/stats.hh"

namespace ltrf
{

void
StatGroup::flatten(std::vector<StatLine> &out,
                   const std::string &prefix) const
{
    std::string base = prefix.empty() ? name : prefix + "." + name;
    for (const auto &[n, c] : counters)
        out.push_back({base + "." + n, c->value()});
    for (const auto &[n, d] : dists) {
        out.push_back({base + "." + n + ".count", d->count()});
        out.push_back({base + "." + n + ".sum", d->sum()});
        out.push_back({base + "." + n + ".min", d->min()});
        out.push_back({base + "." + n + ".max", d->max()});
    }
    for (const StatGroup *g : children)
        g->flatten(out, base);
}

void
StatGroup::dump(std::ostream &os) const
{
    std::vector<StatLine> lines;
    flatten(lines);
    for (const StatLine &l : lines)
        os << l.name << " " << l.value << "\n";
}

} // namespace ltrf
