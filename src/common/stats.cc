#include "common/stats.hh"

namespace ltrf
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[n, c] : counters)
        os << name << "." << n << " " << c->value() << "\n";
}

} // namespace ltrf
