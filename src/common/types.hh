/**
 * @file
 * Fundamental scalar types shared across the LTRF code base.
 */

#ifndef LTRF_COMMON_TYPES_HH
#define LTRF_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ltrf
{

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Architectural register identifier within a warp (0..255). */
using RegId = std::int16_t;

/** Warp identifier within an SM. */
using WarpId = std::int32_t;

/** Basic-block identifier within a kernel CFG. */
using BlockId = std::int32_t;

/** Register-interval identifier produced by the formation passes. */
using IntervalId = std::int32_t;

/** Sentinel for "no register". */
constexpr RegId INVALID_REG = -1;

/** Sentinel for "no basic block". */
constexpr BlockId INVALID_BLOCK = -1;

/** Sentinel for "no interval" (Algorithm 1's "Unknown"). */
constexpr IntervalId UNKNOWN_INTERVAL = -1;

/** Sentinel cycle meaning "never". */
constexpr Cycle NEVER = std::numeric_limits<Cycle>::max();

/**
 * Maximum number of architectural registers the CUDA compiler can
 * allocate to a thread (latest CUDA versions, per the paper); this is
 * also the width of PREFETCH bit-vectors.
 */
constexpr int MAX_ARCH_REGS = 256;

/** Threads per warp. */
constexpr int WARP_WIDTH = 32;

/** Bytes per warp-wide register (32 threads x 32 bits). */
constexpr int BYTES_PER_WARP_REG = WARP_WIDTH * 4;

} // namespace ltrf

#endif // LTRF_COMMON_TYPES_HH
