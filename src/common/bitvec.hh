/**
 * @file
 * Fixed-width 256-bit register bit-vector.
 *
 * PREFETCH operations, the Warp Control Block working-set vector, and
 * the LTRF+ liveness vector are all 256 bits wide — one bit per
 * architectural register a warp may own (see paper section 3.2).
 */

#ifndef LTRF_COMMON_BITVEC_HH
#define LTRF_COMMON_BITVEC_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace ltrf
{

/**
 * A 256-bit vector with one bit per architectural register.
 *
 * Provides set algebra (union, intersection, difference), population
 * count, and iteration over set bits; all operations are O(words) or
 * O(set bits).
 */
class RegBitVec
{
  public:
    static constexpr int NUM_BITS = MAX_ARCH_REGS;
    static constexpr int NUM_WORDS = NUM_BITS / 64;

    /** Construct an all-zero vector. */
    RegBitVec() : words{} {}

    /** Construct from a list of register ids. */
    RegBitVec(std::initializer_list<int> regs) : words{}
    {
        for (int r : regs)
            set(r);
    }

    /** Set the bit for register @p r. */
    void
    set(int r)
    {
        checkIndex(r);
        words[r >> 6] |= (std::uint64_t{1} << (r & 63));
    }

    /** Clear the bit for register @p r. */
    void
    clear(int r)
    {
        checkIndex(r);
        words[r >> 6] &= ~(std::uint64_t{1} << (r & 63));
    }

    /** @return true if the bit for register @p r is set. */
    bool
    test(int r) const
    {
        checkIndex(r);
        return (words[r >> 6] >> (r & 63)) & 1;
    }

    /** Clear every bit. */
    void
    reset()
    {
        words.fill(0);
    }

    /** @return the number of set bits. */
    int
    count() const
    {
        int n = 0;
        for (auto w : words)
            n += std::popcount(w);
        return n;
    }

    /** @return true if no bit is set. */
    bool
    empty() const
    {
        for (auto w : words)
            if (w)
                return false;
        return true;
    }

    /** In-place union. */
    RegBitVec &
    operator|=(const RegBitVec &o)
    {
        for (int i = 0; i < NUM_WORDS; i++)
            words[i] |= o.words[i];
        return *this;
    }

    /** In-place intersection. */
    RegBitVec &
    operator&=(const RegBitVec &o)
    {
        for (int i = 0; i < NUM_WORDS; i++)
            words[i] &= o.words[i];
        return *this;
    }

    /** In-place difference (this and-not other). */
    RegBitVec &
    operator-=(const RegBitVec &o)
    {
        for (int i = 0; i < NUM_WORDS; i++)
            words[i] &= ~o.words[i];
        return *this;
    }

    friend RegBitVec
    operator|(RegBitVec a, const RegBitVec &b)
    {
        a |= b;
        return a;
    }

    friend RegBitVec
    operator&(RegBitVec a, const RegBitVec &b)
    {
        a &= b;
        return a;
    }

    friend RegBitVec
    operator-(RegBitVec a, const RegBitVec &b)
    {
        a -= b;
        return a;
    }

    bool
    operator==(const RegBitVec &o) const
    {
        return words == o.words;
    }

    bool
    operator!=(const RegBitVec &o) const
    {
        return !(*this == o);
    }

    /** @return true if every bit set in @p o is also set in this. */
    bool
    contains(const RegBitVec &o) const
    {
        for (int i = 0; i < NUM_WORDS; i++)
            if ((o.words[i] & ~words[i]) != 0)
                return false;
        return true;
    }

    /** @return true if this and @p o share at least one set bit. */
    bool
    intersects(const RegBitVec &o) const
    {
        for (int i = 0; i < NUM_WORDS; i++)
            if (words[i] & o.words[i])
                return true;
        return false;
    }

    /** Collect the ids of all set bits in ascending order. */
    std::vector<RegId>
    toList() const
    {
        std::vector<RegId> out;
        out.reserve(static_cast<size_t>(count()));
        for (int i = 0; i < NUM_WORDS; i++) {
            std::uint64_t w = words[i];
            while (w) {
                int bit = std::countr_zero(w);
                out.push_back(static_cast<RegId>(i * 64 + bit));
                w &= w - 1;
            }
        }
        return out;
    }

    /** Apply @p fn to every set bit id in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (int i = 0; i < NUM_WORDS; i++) {
            std::uint64_t w = words[i];
            while (w) {
                int bit = std::countr_zero(w);
                fn(static_cast<RegId>(i * 64 + bit));
                w &= w - 1;
            }
        }
    }

    /** Render as e.g. "{1, 5, 17}" for diagnostics. */
    std::string toString() const;

  private:
    static void
    checkIndex(int r)
    {
        ltrf_assert(r >= 0 && r < NUM_BITS,
                    "register id %d out of range [0, %d)", r, NUM_BITS);
    }

    std::array<std::uint64_t, NUM_WORDS> words;
};

} // namespace ltrf

#endif // LTRF_COMMON_BITVEC_HH
