/**
 * @file
 * Deterministic xorshift64* random number generator.
 *
 * Every source of randomness in the simulator (branch outcomes,
 * per-warp trip-count jitter, memory address streams) draws from a
 * seeded Rng so that runs are bit-for-bit reproducible.
 */

#ifndef LTRF_COMMON_RNG_HH
#define LTRF_COMMON_RNG_HH

#include <cstdint>

namespace ltrf
{

/** Small, fast, deterministic PRNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** @return the next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** @return a uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

  private:
    std::uint64_t state;
};

/** Mix two seeds into one (splitmix-style), for per-warp derivation. */
inline std::uint64_t
mixSeeds(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace ltrf

#endif // LTRF_COMMON_RNG_HH
