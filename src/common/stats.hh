/**
 * @file
 * Lightweight named statistics, in the spirit of gem5's stats package.
 *
 * A StatGroup owns a set of named scalar counters, distributions, and
 * child groups; components register their stats at construction time
 * and the harnesses dump them uniformly. Groups form a tree (one per
 * SM, with register-file and scheduler child groups), flattened into
 * dotted "parent.child.stat" names for dumping and serialization.
 */

#ifndef LTRF_COMMON_STATS_HH
#define LTRF_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace ltrf
{

/** A monotonically increasing scalar counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++(int) { val++; }
    void operator+=(std::uint64_t d) { val += d; }
    std::uint64_t value() const { return val; }
    void reset() { val = 0; }

  private:
    std::uint64_t val = 0;
};

/**
 * A sampled distribution: count, sum, min, and max of the observed
 * values (mean derived). Cheap enough for per-cycle sampling.
 */
class Distribution
{
  public:
    Distribution() = default;

    void
    sample(std::uint64_t v)
    {
        cnt++;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return cnt; }
    std::uint64_t sum() const { return sum_; }
    /** Minimum observed value; 0 when no samples. */
    std::uint64_t min() const { return cnt == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return cnt == 0 ? 0.0
                        : static_cast<double>(sum_) /
                                  static_cast<double>(cnt);
    }

    void
    reset()
    {
        cnt = 0;
        sum_ = 0;
        min_ = UINT64_MAX;
        max_ = 0;
    }

  private:
    std::uint64_t cnt = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = UINT64_MAX;
    std::uint64_t max_ = 0;
};

/** One flattened "dotted.name value" stat line (see StatGroup). */
struct StatLine
{
    std::string name;
    std::uint64_t value = 0;
};

/**
 * A named collection of counters, distributions, and child groups.
 *
 * Stats live inside the owning component; the group stores pointers
 * so that dumping and resetting can be done generically. Dump order
 * is deterministic: counters alphabetically, then distributions
 * alphabetically, then children in registration order.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name) : name(std::move(group_name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register @p c under @p stat_name; names must be unique. */
    void
    add(const std::string &stat_name, Counter *c)
    {
        ltrf_assert(c != nullptr, "null counter '%s'", stat_name.c_str());
        ltrf_assert(dists.count(stat_name) == 0,
                    "stat '%s' in group '%s' already a distribution",
                    stat_name.c_str(), name.c_str());
        auto [it, inserted] = counters.emplace(stat_name, c);
        (void)it;
        ltrf_assert(inserted, "duplicate stat '%s' in group '%s'",
                    stat_name.c_str(), name.c_str());
    }

    /** Register distribution @p d under @p stat_name (unique). */
    void
    addDist(const std::string &stat_name, Distribution *d)
    {
        ltrf_assert(d != nullptr, "null distribution '%s'",
                    stat_name.c_str());
        ltrf_assert(counters.count(stat_name) == 0,
                    "stat '%s' in group '%s' already a counter",
                    stat_name.c_str(), name.c_str());
        auto [it, inserted] = dists.emplace(stat_name, d);
        (void)it;
        ltrf_assert(inserted, "duplicate stat '%s' in group '%s'",
                    stat_name.c_str(), name.c_str());
    }

    /**
     * Register @p g as a child group; dumped under
     * "this.child.stat". The child must outlive this group.
     */
    void
    addChild(StatGroup *g)
    {
        ltrf_assert(g != nullptr && g != this,
                    "bad child group in '%s'", name.c_str());
        children.push_back(g);
    }

    /** Look a counter up by name; panics if missing. */
    std::uint64_t
    value(const std::string &stat_name) const
    {
        auto it = counters.find(stat_name);
        ltrf_assert(it != counters.end(), "no stat '%s' in group '%s'",
                    stat_name.c_str(), name.c_str());
        return it->second->value();
    }

    /** @return true if a counter named @p stat_name exists. */
    bool
    has(const std::string &stat_name) const
    {
        return counters.count(stat_name) > 0;
    }

    /** Reset every registered counter and distribution (recursive). */
    void
    resetAll()
    {
        for (auto &[n, c] : counters)
            c->reset();
        for (auto &[n, d] : dists)
            d->reset();
        for (StatGroup *g : children)
            g->resetAll();
    }

    /** Print "group.stat value" lines to @p os (recursive). */
    void dump(std::ostream &os) const;

    /**
     * Append one StatLine per stat to @p out, names prefixed with
     * @p prefix + groupName(). Distributions flatten to four lines
     * (.count/.sum/.min/.max). Same deterministic order as dump().
     */
    void flatten(std::vector<StatLine> &out,
                 const std::string &prefix = "") const;

    const std::string &groupName() const { return name; }

  private:
    std::string name;
    std::map<std::string, Counter *> counters;
    std::map<std::string, Distribution *> dists;
    std::vector<StatGroup *> children;
};

} // namespace ltrf

#endif // LTRF_COMMON_STATS_HH
