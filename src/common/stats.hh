/**
 * @file
 * Lightweight named statistics, in the spirit of gem5's stats package.
 *
 * A StatGroup owns a set of named scalar counters and formula results;
 * components register their counters at construction time and the
 * harnesses dump them uniformly.
 */

#ifndef LTRF_COMMON_STATS_HH
#define LTRF_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "common/log.hh"

namespace ltrf
{

/** A monotonically increasing scalar counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++(int) { val++; }
    void operator+=(std::uint64_t d) { val += d; }
    std::uint64_t value() const { return val; }
    void reset() { val = 0; }

  private:
    std::uint64_t val = 0;
};

/**
 * A named collection of counters.
 *
 * Counters live inside the owning component; the group stores
 * pointers so that dumping and resetting can be done generically.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name) : name(std::move(group_name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register @p c under @p stat_name; names must be unique. */
    void
    add(const std::string &stat_name, Counter *c)
    {
        ltrf_assert(c != nullptr, "null counter '%s'", stat_name.c_str());
        auto [it, inserted] = counters.emplace(stat_name, c);
        (void)it;
        ltrf_assert(inserted, "duplicate stat '%s' in group '%s'",
                    stat_name.c_str(), name.c_str());
    }

    /** Look a counter up by name; panics if missing. */
    std::uint64_t
    value(const std::string &stat_name) const
    {
        auto it = counters.find(stat_name);
        ltrf_assert(it != counters.end(), "no stat '%s' in group '%s'",
                    stat_name.c_str(), name.c_str());
        return it->second->value();
    }

    /** @return true if a counter named @p stat_name exists. */
    bool
    has(const std::string &stat_name) const
    {
        return counters.count(stat_name) > 0;
    }

    /** Reset every registered counter to zero. */
    void
    resetAll()
    {
        for (auto &[n, c] : counters)
            c->reset();
    }

    /** Print "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    const std::string &groupName() const { return name; }

  private:
    std::string name;
    std::map<std::string, Counter *> counters;
};

} // namespace ltrf

#endif // LTRF_COMMON_STATS_HH
