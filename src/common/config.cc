#include "common/config.hh"

#include "common/log.hh"

namespace ltrf
{

const char *
rfDesignName(RfDesign d)
{
    switch (d) {
      case RfDesign::BL:          return "BL";
      case RfDesign::RFC:         return "RFC";
      case RfDesign::SHRF:        return "SHRF";
      case RfDesign::LTRF_STRAND: return "LTRF(strand)";
      case RfDesign::LTRF:        return "LTRF";
      case RfDesign::LTRF_PLUS:   return "LTRF+";
      case RfDesign::IDEAL:       return "Ideal";
    }
    return "?";
}

void
SimConfig::validate() const
{
    if (num_sms < 1)
        ltrf_fatal("num_sms must be >= 1 (got %d)", num_sms);
    if (num_active_warps < 1 || num_active_warps > max_warps_per_sm)
        ltrf_fatal("num_active_warps %d out of range [1, %d]",
                   num_active_warps, max_warps_per_sm);
    if (numCacheRegs() % num_active_warps != 0)
        ltrf_fatal("register cache (%d regs) not divisible by %d "
                   "active warps", numCacheRegs(), num_active_warps);
    if (regs_per_interval > cacheRegsPerWarp())
        ltrf_fatal("regs_per_interval %d exceeds per-warp cache space %d",
                   regs_per_interval, cacheRegsPerWarp());
    if (regs_per_interval < 1 || regs_per_interval > MAX_ARCH_REGS)
        ltrf_fatal("regs_per_interval %d out of range", regs_per_interval);
    if (num_mrf_banks < 1)
        ltrf_fatal("num_mrf_banks must be >= 1");
    if (mrf_latency_mult < 1.0)
        ltrf_fatal("mrf_latency_mult %.2f must be >= 1.0", mrf_latency_mult);
    if (issue_width < 1 || num_operand_collectors < issue_width)
        ltrf_fatal("need at least issue_width operand collectors");
    if (num_dram_banks < 1)
        ltrf_fatal("num_dram_banks must be >= 1");
    if (dram_service_cycles < 1)
        ltrf_fatal("dram_service_cycles must be >= 1 (got %d)",
                   dram_service_cycles);
}

} // namespace ltrf
