#include "common/parse_num.hh"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

namespace ltrf
{

namespace
{

/**
 * True if @p s may enter the strtol family at all: non-empty and
 * starting with a digit or (when @p allow_minus) a minus sign.
 * strtol itself would skip leading whitespace and accept '+'; both
 * make "  7" or "+7" parse differently from how they were typed, so
 * the CLIs reject them.
 */
bool
leadOk(const std::string &s, bool allow_minus)
{
    if (s.empty())
        return false;
    const unsigned char c = static_cast<unsigned char>(s[0]);
    return std::isdigit(c) || (allow_minus && s[0] == '-' &&
                               s.size() > 1 &&
                               std::isdigit(static_cast<unsigned char>(
                                       s[1])));
}

} // namespace

bool
parseInt64(const std::string &s, std::int64_t &out)
{
    if (!leadOk(s, /*allow_minus=*/true))
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return false;
    out = static_cast<std::int64_t>(v);
    return true;
}

bool
parseInt(const std::string &s, int &out)
{
    std::int64_t v = 0;
    if (!parseInt64(s, v) || v < INT_MIN || v > INT_MAX)
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
parseUint64(const std::string &s, std::uint64_t &out)
{
    if (!leadOk(s, /*allow_minus=*/false))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty() ||
        std::isspace(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    // ERANGE underflow to a denormal/zero is fine; overflow to an
    // infinite value is not representable in reports and rejected.
    if (end != s.c_str() + s.size() || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

} // namespace ltrf
