#include "common/bitvec.hh"

#include <sstream>

namespace ltrf
{

std::string
RegBitVec::toString() const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    forEach([&](RegId r) {
        if (!first)
            os << ", ";
        os << static_cast<int>(r);
        first = false;
    });
    os << "}";
    return os.str();
}

} // namespace ltrf
