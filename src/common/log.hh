/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts the process.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits cleanly.
 * warn()   - something is modeled approximately but execution can go on.
 * inform() - a purely informational status message.
 *
 * warn()/inform() lines are serialized through one mutex-guarded
 * sink, so pool workers emitting concurrently under `--jobs` cannot
 * interleave partial lines on stderr. ltrf_warn_once() additionally
 * dedups by call site: the first occurrence prints, repeats are
 * swallowed (for warnings that would otherwise repeat per shard,
 * generation, or worker).
 */

#ifndef LTRF_COMMON_LOG_HH
#define LTRF_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ltrf
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
/** warn(), deduplicated on (file, line): repeats print nothing. */
void warnOnceImpl(const char *file, int line, const std::string &msg);
/** Forget every warn-once call site (tests only). */
void resetWarnOnce();

/** Minimal printf-style formatter returning a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

#define ltrf_panic(...) \
    ::ltrf::detail::panicImpl(__FILE__, __LINE__, \
                              ::ltrf::detail::format(__VA_ARGS__))

#define ltrf_fatal(...) \
    ::ltrf::detail::fatalImpl(__FILE__, __LINE__, \
                              ::ltrf::detail::format(__VA_ARGS__))

#define ltrf_warn(...) \
    ::ltrf::detail::warnImpl(::ltrf::detail::format(__VA_ARGS__))

#define ltrf_warn_once(...) \
    ::ltrf::detail::warnOnceImpl(__FILE__, __LINE__, \
                                 ::ltrf::detail::format(__VA_ARGS__))

#define ltrf_inform(...) \
    ::ltrf::detail::informImpl(::ltrf::detail::format(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define ltrf_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ltrf_panic("assertion '%s' failed: %s", #cond, \
                       ::ltrf::detail::format(__VA_ARGS__).c_str()); \
        } \
    } while (0)

} // namespace ltrf

#endif // LTRF_COMMON_LOG_HH
