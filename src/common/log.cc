#include "common/log.hh"

#include <cstdarg>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace ltrf
{
namespace detail
{

namespace
{

/** One lock for every status line and the warn-once call-site set. */
std::mutex &
sinkMutex()
{
    static std::mutex mu;
    return mu;
}

std::set<std::pair<const char *, int>> &
warnOnceSeen()
{
    static std::set<std::pair<const char *, int>> seen;
    return seen;
}

void
emitLine(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emitLine("warn", msg);
}

void
warnOnceImpl(const char *file, int line, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (!warnOnceSeen().insert({file, line}).second)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
resetWarnOnce()
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    warnOnceSeen().clear();
}

void
informImpl(const std::string &msg)
{
    emitLine("info", msg);
}

} // namespace detail
} // namespace ltrf
