/**
 * @file
 * Small shared string helpers (the CLI parsers all want
 * case-insensitive token matching).
 */

#ifndef LTRF_COMMON_STRUTIL_HH
#define LTRF_COMMON_STRUTIL_HH

#include <algorithm>
#include <cctype>
#include <string>

namespace ltrf
{

/** @return @p s lowercased byte-wise (ASCII; tokens only). */
inline std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace ltrf

#endif // LTRF_COMMON_STRUTIL_HH
