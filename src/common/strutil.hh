/**
 * @file
 * Small shared string helpers (the CLI parsers all want
 * case-insensitive token matching).
 */

#ifndef LTRF_COMMON_STRUTIL_HH
#define LTRF_COMMON_STRUTIL_HH

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

namespace ltrf
{

/** @return @p s lowercased byte-wise (ASCII; tokens only). */
inline std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** @return the elements of @p v joined with @p sep. */
inline std::string
joined(const std::vector<std::string> &v, const char *sep = ",")
{
    std::string out;
    for (const std::string &s : v)
        out += (out.empty() ? "" : sep) + s;
    return out;
}

} // namespace ltrf

#endif // LTRF_COMMON_STRUTIL_HH
