/**
 * @file
 * Checked whole-string numeric parsing for CLI flags and saved-key
 * tokens.
 *
 * The raw `std::strtol` idiom the CLIs used to copy around has two
 * silent failure modes: it saturates on ERANGE without any caller
 * noticing (errno is never checked), and the common
 * `static_cast<int>(long)` narrowing afterwards wraps anything
 * outside int range — `--budget 4294967297` used to become 1. These
 * helpers parse the *entire* string in base 10, report range
 * violations as failures instead of clamping or wrapping, and reject
 * the leading whitespace / '+' forms strtol quietly accepts, so a
 * CLI error message can always name the offending token.
 */

#ifndef LTRF_COMMON_PARSE_NUM_HH
#define LTRF_COMMON_PARSE_NUM_HH

#include <cstdint>
#include <string>

namespace ltrf
{

/**
 * Parse @p s as a base-10 int. @return false (leaving @p out
 * untouched) on an empty string, leading whitespace or '+', trailing
 * characters, or a value outside [INT_MIN, INT_MAX].
 */
bool parseInt(const std::string &s, int &out);

/** parseInt() for the full std::int64_t range. */
bool parseInt64(const std::string &s, std::int64_t &out);

/**
 * Parse @p s as a base-10 std::uint64_t. Rejects a leading '-'
 * (strtoull wraps negatives into huge positives), leading
 * whitespace or '+', trailing characters, and values above 2^64-1.
 */
bool parseUint64(const std::string &s, std::uint64_t &out);

/**
 * Parse @p s as a finite double (strtod grammar, whole string).
 * Rejects empty strings, leading whitespace, trailing characters,
 * overflow to infinity, and NaN.
 */
bool parseDouble(const std::string &s, double &out);

} // namespace ltrf

#endif // LTRF_COMMON_PARSE_NUM_HH
