/**
 * @file
 * Parametric register file model: an analytic generator that
 * generalizes the seven fixed Table 2 rows into a design space over
 * (cell technology x bank count x bank size x operand network).
 *
 * Scaling rules (all relative to configuration #1, the 256KB HP-SRAM
 * register file with 16 banks and a crossbar):
 *
 *  - capacity  = banks_mult x bank_size_mult (bits scale linearly).
 *  - area      = capacity x areaPerBit(tech); DWM packs 32x more
 *                bits per unit area (Table 2 row 7).
 *  - power     = capacity x powerPerBit(tech), Table 2's total-power
 *                scalar per bit at baseline activity.
 *  - latency   = structureLatency(banks, bank size, network)
 *                x technology factor. The structure factor is
 *                anchored on the published HP-SRAM rows (8x bank
 *                size -> 1.25x, 8x banks behind a flattened
 *                butterfly -> 1.5x) and grows per capacity doubling;
 *                the technology factor is anchored per (tech,
 *                monolithic-vs-banked) class on the published rows.
 *
 * The published Table 2 rows are *anchor points* of the model: a
 * point whose axes match a published row reproduces that row
 * bit-identically (see makeRfConfig), which tests and the `ltrf_dse`
 * grid-reproduction acceptance check rely on. Between anchors the
 * model interpolates geometrically per capacity doubling; outside
 * them (crossbars over many banks, technologies the paper never
 * paired with a structure) it extrapolates with the rules above and
 * documents the assumption inline.
 */

#ifndef LTRF_TECH_RF_MODEL_HH
#define LTRF_TECH_RF_MODEL_HH

#include "tech/rf_config.hh"

namespace ltrf
{

/** Operand-delivery network between banks and operand collectors. */
enum class NetworkKind
{
    CROSSBAR,           ///< full crossbar (the baseline's network)
    FLAT_BUTTERFLY,     ///< flattened butterfly (high bank counts)
};

/** @return the Table 2 spelling: "Crossbar" or "F. Butterfly". */
const char *networkName(NetworkKind n);

/**
 * One point of the parametric register file space. Multipliers are
 * relative to the baseline organization (16 banks of 16KB), and must
 * be powers of two >= 1.
 */
struct RfModelPoint
{
    CellTech tech = CellTech::HP_SRAM;
    int banks_mult = 1;         ///< 1x = 16 banks
    int bank_size_mult = 1;     ///< 1x = 16KB per bank
    NetworkKind network = NetworkKind::CROSSBAR;
};

/**
 * The network the paper pairs with a bank organization: a crossbar
 * up to 16 banks, a flattened butterfly above (the crossbar's radix
 * cost is why Table 2's 128-bank rows all use the butterfly).
 */
NetworkKind defaultNetwork(int banks_mult);

// ----- Per-technology scaling primitives (exposed for tests) -----

/** Relative area per bit; 1.0 for the SRAMs, 1/32 for DWM. */
double areaPerBit(CellTech t);

/** Relative total power per bit at baseline activity. */
double powerPerBit(CellTech t);

/**
 * Structure-only latency factor (technology-independent): 1.0 for
 * the baseline organization, growing per bank-size doubling and per
 * bank-count doubling (network-dependent slope; the crossbar's
 * radix penalty outgrows the butterfly's, which is why high-bank
 * designs switch networks).
 */
double structureLatency(int banks_mult, int bank_size_mult,
                        NetworkKind network);

/**
 * Generate the full scalar row for @p p.
 *
 * If the axes match one of the seven published Table 2 rows, that
 * row is returned verbatim (same id, same derived columns) — the
 * analytic path is required to agree with the published physical
 * scalars bit-for-bit, and an assertion enforces it. Otherwise the
 * row is synthesized with id 0 and unrounded derived columns.
 */
RfConfig makeRfConfig(const RfModelPoint &p);

/**
 * Apply the generated configuration of @p p to @p cfg (capacity
 * multiplier, latency multiplier, bank count), like applyRfConfig
 * does for published rows.
 */
void applyRfModel(SimConfig &cfg, const RfModelPoint &p);

} // namespace ltrf

#endif // LTRF_TECH_RF_MODEL_HH
