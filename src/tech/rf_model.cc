#include "tech/rf_model.hh"

#include <cmath>
#include <cstring>

#include "common/config.hh"
#include "common/log.hh"

namespace ltrf
{

namespace
{

/** Latency growth per bank-size doubling (HP rows 1->2: 1.25 at 8x). */
constexpr double SIZE_SLOPE = 0.25 / 3.0;
/** Butterfly growth per bank doubling (HP rows 1->3: 1.5 at 8x). */
constexpr double FB_BANK_SLOPE = 0.5 / 3.0;
/**
 * Crossbar growth per bank doubling. Unanchored: the paper never
 * builds a high-radix crossbar precisely because its wiring outgrows
 * the butterfly's, so the model gives it a steeper slope — at 128
 * banks a crossbar costs 1.75x vs the butterfly's 1.5x.
 */
constexpr double XBAR_BANK_SLOPE = 0.75 / 3.0;

bool
isPow2(int v)
{
    return v >= 1 && (v & (v - 1)) == 0;
}

void
checkPoint(const RfModelPoint &p)
{
    ltrf_assert(isPow2(p.banks_mult) && p.banks_mult <= 64,
                "banks_mult %d must be a power of two in [1, 64]",
                p.banks_mult);
    ltrf_assert(isPow2(p.bank_size_mult) && p.bank_size_mult <= 64,
                "bank_size_mult %d must be a power of two in [1, 64]",
                p.bank_size_mult);
}

/**
 * Published (or, for the two technologies the paper only built in
 * the banked organization, derived) latency at the class anchor
 * structure. Monolithic-class anchors sit at (1x banks, 8x size,
 * crossbar) = Table 2 rows 2 and 4; banked-class anchors at (8x
 * banks, 1x size, butterfly) = rows 3 and 5-7. TFET/DWM monolithic
 * anchors are extrapolated with LSTP's mono/banked ratio (1.6/2.8):
 * the slow cell dominates both structures similarly.
 */
double
techAnchorLatency(CellTech t, bool banked)
{
    switch (t) {
      case CellTech::HP_SRAM:   return banked ? 1.5 : 1.25;
      case CellTech::LSTP_SRAM: return banked ? 2.8 : 1.6;
      case CellTech::TFET_SRAM: return banked ? 5.3 : 5.3 * 1.6 / 2.8;
      case CellTech::DWM:       return banked ? 6.3 : 6.3 * 1.6 / 2.8;
    }
    return banked ? 1.5 : 1.25;
}

bool
isAnchorStructure(const RfModelPoint &p, bool banked)
{
    if (banked)
        return p.banks_mult == 8 && p.bank_size_mult == 1 &&
               p.network == NetworkKind::FLAT_BUTTERFLY;
    return p.banks_mult == 1 && p.bank_size_mult == 8 &&
           p.network == NetworkKind::CROSSBAR;
}

/**
 * Relative access latency of @p p. Exactness contract: at the class
 * anchor axes the published scalar is returned verbatim, and HP-SRAM
 * (the technology the structure factors are calibrated on) returns
 * the pure structure factor — so every Table 2 row reproduces
 * bit-identically (rows 2-7 are anchors; row 1 is HP at the baseline
 * structure, whose factor is exactly 1.0).
 */
double
modelLatency(const RfModelPoint &p)
{
    const bool banked = p.banks_mult > 1;
    if (isAnchorStructure(p, banked))
        return techAnchorLatency(p.tech, banked);
    if (p.tech == CellTech::HP_SRAM)
        return structureLatency(p.banks_mult, p.bank_size_mult,
                                p.network);

    RfModelPoint anchor;
    anchor.banks_mult = banked ? 8 : 1;
    anchor.bank_size_mult = banked ? 1 : 8;
    anchor.network = banked ? NetworkKind::FLAT_BUTTERFLY
                            : NetworkKind::CROSSBAR;
    const double tech_ratio =
            techAnchorLatency(p.tech, banked) /
            structureLatency(anchor.banks_mult, anchor.bank_size_mult,
                             anchor.network);
    return structureLatency(p.banks_mult, p.bank_size_mult, p.network) *
           tech_ratio;
}

/** The published row with @p p's axes, or nullptr. */
const RfConfig *
publishedRow(const RfModelPoint &p)
{
    for (const RfConfig &rc : rfConfigTable()) {
        if (rc.tech == p.tech && rc.banks_mult == p.banks_mult &&
            rc.bank_size_mult == p.bank_size_mult &&
            std::strcmp(rc.network, networkName(p.network)) == 0)
            return &rc;
    }
    return nullptr;
}

} // namespace

const char *
networkName(NetworkKind n)
{
    switch (n) {
      case NetworkKind::CROSSBAR:       return "Crossbar";
      case NetworkKind::FLAT_BUTTERFLY: return "F. Butterfly";
    }
    return "?";
}

NetworkKind
defaultNetwork(int banks_mult)
{
    return banks_mult > 1 ? NetworkKind::FLAT_BUTTERFLY
                          : NetworkKind::CROSSBAR;
}

double
areaPerBit(CellTech t)
{
    // Row 7: DWM stores 8x the bits in a quarter of the area.
    return t == CellTech::DWM ? 0.25 / 8.0 : 1.0;
}

double
powerPerBit(CellTech t)
{
    // Table 2's total-power scalars at 8x capacity, per bit. Powers
    // of two in the divisions keep the 8x rows bit-exact.
    switch (t) {
      case CellTech::HP_SRAM:   return 8.0 / 8.0;
      case CellTech::LSTP_SRAM: return 3.2 / 8.0;
      case CellTech::TFET_SRAM: return 1.05 / 8.0;
      case CellTech::DWM:       return 0.65 / 8.0;
    }
    return 1.0;
}

double
structureLatency(int banks_mult, int bank_size_mult, NetworkKind network)
{
    const double size_factor =
            1.0 + std::log2(static_cast<double>(bank_size_mult)) *
                          SIZE_SLOPE;
    const double bank_slope = network == NetworkKind::FLAT_BUTTERFLY
                                      ? FB_BANK_SLOPE
                                      : XBAR_BANK_SLOPE;
    const double bank_factor =
            1.0 + std::log2(static_cast<double>(banks_mult)) * bank_slope;
    return size_factor * bank_factor;
}

RfConfig
makeRfConfig(const RfModelPoint &p)
{
    checkPoint(p);

    RfConfig rc;
    rc.id = 0;
    rc.tech = p.tech;
    rc.banks_mult = p.banks_mult;
    rc.bank_size_mult = p.bank_size_mult;
    rc.network = networkName(p.network);
    rc.capacity = static_cast<double>(p.banks_mult * p.bank_size_mult);
    rc.area = rc.capacity * areaPerBit(p.tech);
    rc.power = rc.capacity * powerPerBit(p.tech);
    rc.latency = modelLatency(p);
    rc.cap_per_area = rc.capacity / rc.area;
    rc.cap_per_power = rc.capacity / rc.power;

    if (const RfConfig *pub = publishedRow(p)) {
        // The analytic path must land exactly on the published
        // physical scalars — the anchor calibration guarantees it,
        // and the DSE grid-reproduction check depends on it.
        ltrf_assert(rc.capacity == pub->capacity &&
                    rc.area == pub->area && rc.power == pub->power &&
                    rc.latency == pub->latency,
                    "parametric model diverged from published Table 2 "
                    "row #%d", pub->id);
        // Return the row verbatim: same id, and the paper's rounded
        // derived columns instead of our unrounded quotients.
        return *pub;
    }
    return rc;
}

void
applyRfModel(SimConfig &cfg, const RfModelPoint &p)
{
    applyRfConfig(cfg, makeRfConfig(p));
}

} // namespace ltrf
