#include "tech/rf_config.hh"

#include "common/config.hh"
#include "common/log.hh"

namespace ltrf
{

const char *
cellTechName(CellTech t)
{
    switch (t) {
      case CellTech::HP_SRAM:   return "HP SRAM";
      case CellTech::LSTP_SRAM: return "LSTP SRAM";
      case CellTech::TFET_SRAM: return "TFET SRAM";
      case CellTech::DWM:       return "DWM";
    }
    return "?";
}

double
leakageFraction(CellTech t)
{
    // Split of total RF power into static leakage at baseline
    // activity. HP-SRAM GPU register files are leakage-heavy; the
    // alternative technologies exist precisely because their
    // standby power is far lower (paper section 2.2 references).
    switch (t) {
      case CellTech::HP_SRAM:   return 0.40;
      case CellTech::LSTP_SRAM: return 0.10;
      case CellTech::TFET_SRAM: return 0.05;
      case CellTech::DWM:       return 0.02;
    }
    return 0.40;
}

const std::array<RfConfig, 7> &
rfConfigTable()
{
    // Paper Table 2, verbatim.
    static const std::array<RfConfig, 7> table = {{
        {1, CellTech::HP_SRAM, 1, 1, "Crossbar",
         1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
        {2, CellTech::HP_SRAM, 1, 8, "Crossbar",
         8.0, 8.0, 8.0, 1.0, 1.0, 1.25},
        {3, CellTech::HP_SRAM, 8, 1, "F. Butterfly",
         8.0, 8.0, 8.0, 1.0, 1.0, 1.5},
        {4, CellTech::LSTP_SRAM, 1, 8, "Crossbar",
         8.0, 8.0, 3.2, 1.0, 2.5, 1.6},
        {5, CellTech::LSTP_SRAM, 8, 1, "F. Butterfly",
         8.0, 8.0, 3.2, 1.0, 2.5, 2.8},
        {6, CellTech::TFET_SRAM, 8, 1, "F. Butterfly",
         8.0, 8.0, 1.05, 1.0, 7.6, 5.3},
        {7, CellTech::DWM, 8, 1, "F. Butterfly",
         8.0, 0.25, 0.65, 32.0, 12.0, 6.3},
    }};
    return table;
}

const RfConfig &
rfConfig(int id)
{
    ltrf_assert(id >= 1 && id <= 7, "RF configuration #%d out of range", id);
    return rfConfigTable()[id - 1];
}

const std::array<GenerationMemory, 4> &
generationMemoryTable()
{
    // Published capacities per generation (Figure 2): flagship dies
    // GF100, GK110, GM200, GP100. The Pascal register file is 14.3MB,
    // more than 60% of on-chip storage (paper section 2.2).
    static const std::array<GenerationMemory, 4> table = {{
        {"Fermi", 2010, 1.00, 0.75, 2.00},
        {"Kepler", 2012, 0.96, 1.50, 3.75},
        {"Maxwell", 2014, 3.40, 3.00, 6.00},
        {"Pascal", 2016, 5.00, 4.00, 14.30},
    }};
    return table;
}

void
applyRfConfig(SimConfig &cfg, const RfConfig &rc)
{
    cfg.rf_capacity_mult = static_cast<int>(rc.capacity);
    cfg.mrf_latency_mult = rc.latency;
    cfg.num_mrf_banks = 16 * rc.banks_mult;
}

const std::array<GpuProduct, 2> &
gpuProductTable()
{
    static const std::array<GpuProduct, 2> table = {{
        {"Fermi", 64, 128 * 1024, 48},
        {"Maxwell", 256, 256 * 1024, 64},
    }};
    return table;
}

} // namespace ltrf
