/**
 * @file
 * Register file design points (paper Table 2) and published GPU
 * generation data (paper Figure 2, Table 1).
 *
 * The paper derives these numbers with CACTI 6.0 and NVSim and only
 * ever consumes them as scalars relative to the baseline 256KB
 * HP-SRAM register file with 16 banks; we encode the published
 * scalars directly (see DESIGN.md, substitutions).
 */

#ifndef LTRF_TECH_RF_CONFIG_HH
#define LTRF_TECH_RF_CONFIG_HH

#include <array>
#include <string>

namespace ltrf
{

/** Memory cell technologies evaluated in Table 2. */
enum class CellTech
{
    HP_SRAM,    ///< high-performance CMOS SRAM
    LSTP_SRAM,  ///< low-standby-power CMOS SRAM
    TFET_SRAM,  ///< tunnel-FET SRAM
    DWM,        ///< domain-wall (racetrack) memory
};

/** @return a printable technology name. */
const char *cellTechName(CellTech t);

/**
 * Fraction of total register file power that is leakage for a
 * design built in technology @p t, at baseline activity. Used to
 * split Table 2's total-power scalar into dynamic and static parts
 * for the event-based power model.
 */
double leakageFraction(CellTech t);

/** One row of Table 2; all values relative to configuration #1. */
struct RfConfig
{
    int id;                 ///< 1..7
    CellTech tech;
    int banks_mult;         ///< 1x = 16 banks
    int bank_size_mult;     ///< 1x = 16KB
    const char *network;    ///< "Crossbar" or "F. Butterfly"
    double capacity;        ///< relative capacity
    double area;            ///< relative area
    double power;           ///< relative total power
    double cap_per_area;
    double cap_per_power;
    double latency;         ///< relative access latency
};

/** All seven configurations of Table 2, in order. */
const std::array<RfConfig, 7> &rfConfigTable();

/** Look up configuration #id (1-based, as in the paper). */
const RfConfig &rfConfig(int id);

/** Published per-generation on-chip memory capacities (Figure 2). */
struct GenerationMemory
{
    const char *name;
    int year;
    double l1_shared_mb;    ///< L1D caches + shared memory
    double l2_mb;           ///< L2 / LLC
    double rf_mb;           ///< aggregate register file

    double total() const { return l1_shared_mb + l2_mb + rf_mb; }
    double rfFraction() const { return rf_mb / total(); }
};

/** Fermi, Kepler, Maxwell, Pascal (Figure 2). */
const std::array<GenerationMemory, 4> &generationMemoryTable();

/** Register allocation model for Table 1's two GPU products. */
struct GpuProduct
{
    const char *name;
    int max_regs_per_thread;    ///< nvcc maxregcount limit
    std::size_t rf_bytes;       ///< baseline register file per SM
    int max_warps;              ///< resident warp limit
};

/** Fermi (64 regs, 128KB) and Maxwell (256 regs, 256KB). */
const std::array<GpuProduct, 2> &gpuProductTable();

struct SimConfig;

/**
 * Apply Table 2 configuration @p rc to @p cfg: capacity multiplier,
 * access-latency multiplier, and bank count (configurations with 8x
 * banks use the flattened-butterfly network precisely so the paper
 * can afford 128 banks).
 */
void applyRfConfig(SimConfig &cfg, const RfConfig &rc);

} // namespace ltrf

#endif // LTRF_TECH_RF_CONFIG_HH
