#include "tech/energy_model.hh"

#include "common/log.hh"

namespace ltrf
{

double
rfPower(const RfConfig &cfg, const RfActivity &act, bool has_cache,
        double baseline_main_rate, const EnergyParams &p)
{
    ltrf_assert(baseline_main_rate > 0.0,
                "baseline main access rate must be positive");

    // Normalization: the BL design on configuration #1 at activity
    // baseline_main_rate has power 1.0 = leak_frac + dynamic share,
    // so one baseline access costs (1 - leak_frac(HP)) /
    // baseline_main_rate in normalized power units.
    const double baseline_access_energy =
            (1.0 - leakageFraction(CellTech::HP_SRAM)) /
            baseline_main_rate;

    // This configuration's static power and per-access energy, from
    // Table 2's total-power scalar.
    const double leak_frac = leakageFraction(cfg.tech);
    const double static_power = cfg.power * leak_frac;
    const double main_access_energy =
            cfg.power * (1.0 - leak_frac) / baseline_main_rate;

    double power = static_power +
                   main_access_energy * act.main_accesses_per_cycle;

    if (has_cache) {
        power += p.cache_access * baseline_access_energy *
                 act.cache_accesses_per_cycle;
        power += p.wcb_access * baseline_access_energy *
                 act.wcb_accesses_per_cycle;
        power += p.xbar_transfer * baseline_access_energy *
                 act.xfer_regs_per_cycle;
        power += p.cache_leakage + p.wcb_leakage;
    }
    return power;
}

} // namespace ltrf
