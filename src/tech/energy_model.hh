/**
 * @file
 * Event-based register file power model (paper Figure 10, GPUWattch
 * substitution).
 *
 * All energies are expressed relative to one access to the baseline
 * 256KB HP-SRAM main register file (configuration #1), and power is
 * normalized against the baseline design's power on the same
 * workload. Table 2's total-power scalar for a configuration is
 * split into a static (leakage) part and a dynamic part using the
 * technology's leakage fraction; the dynamic part scales with the
 * measured main-RF access rate. Auxiliary LTRF structures (register
 * file cache, WCB, prefetch crossbar) add their own event energies
 * and leakage, which is how the model reproduces the paper's finding
 * that LTRF's extra structures offset part of its main-RF access
 * savings (section 6.2).
 */

#ifndef LTRF_TECH_ENERGY_MODEL_HH
#define LTRF_TECH_ENERGY_MODEL_HH

#include "tech/rf_config.hh"

namespace ltrf
{

/** Energy coefficients, relative to one baseline main-RF access. */
struct EnergyParams
{
    /**
     * Register file cache access energy. The baseline 256KB register
     * file is 16 banks of 16KB, so one access is dominated by a
     * 16KB-bank read plus the wide crossbar; a 16KB cache access
     * pays a comparable bank energy with a smaller crossbar, i.e. a
     * large fraction of a main-RF access. This is also why the paper
     * finds LTRF's structures offset much of its main-RF access
     * savings (section 6.2).
     */
    double cache_access = 0.55;
    /** Cache leakage per cycle: 0.4 x (16KB / 256KB). */
    double cache_leakage = 0.025;
    /** WCB lookup energy (a 256x5b indexed table + vectors). */
    double wcb_access = 0.06;
    /** WCB leakage per cycle (114880 bits/SM, section 4.3). */
    double wcb_leakage = 0.012;
    /** Per-register transfer over the narrow prefetch crossbar. */
    double xbar_transfer = 0.08;
};

/** Measured register file activity, in events per core cycle. */
struct RfActivity
{
    double main_accesses_per_cycle = 0.0;   ///< MRF bank reads+writes
    double cache_accesses_per_cycle = 0.0;  ///< RF cache reads+writes
    double wcb_accesses_per_cycle = 0.0;    ///< WCB lookups
    double xfer_regs_per_cycle = 0.0;       ///< prefetch/writeback regs
};

/**
 * Register file power for design activity @p act on configuration
 * @p cfg, in units where the baseline (configuration #1, no cache)
 * at activity rate @p baseline_main_rate equals 1.0.
 *
 * @param cfg                the main register file configuration
 * @param act                measured activity of the evaluated design
 * @param has_cache          include cache/WCB/crossbar components
 * @param baseline_main_rate main-RF accesses per cycle of the BL
 *                           design on configuration #1 for the same
 *                           workload (the normalization anchor)
 */
double rfPower(const RfConfig &cfg, const RfActivity &act, bool has_cache,
               double baseline_main_rate,
               const EnergyParams &p = EnergyParams{});

} // namespace ltrf

#endif // LTRF_TECH_ENERGY_MODEL_HH
