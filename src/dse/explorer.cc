#include "dse/explorer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/strutil.hh"
#include "dse/cell_store.hh"
#include "harness/runner.hh"
#include "obs/trace_sink.hh"
#include "sim/gpu.hh"
#include "tech/energy_model.hh"
#include "workloads/workload.hh"

namespace ltrf::dse
{

using harness::Json;

namespace
{

/**
 * Candidates are admitted to the cell pipeline in fixed-size
 * batches: pruning decisions happen at admission boundaries and
 * frontier commits in admission order, so both depend on the
 * admission sequence alone — never on the job count or on which
 * cell finishes first. The batch size is a constant for the same
 * reason.
 */
constexpr std::size_t POINT_BATCH = 16;

/**
 * Disjoint RNG stream tags, mixed with the search seed (mixSeeds)
 * plus a per-restart / per-generation index. Every random decision
 * sequence therefore depends only on (seed, purpose, index) — a
 * hill-climb restart or an evolutionary generation draws the same
 * values no matter how many samples earlier phases consumed.
 */
constexpr std::uint64_t STREAM_HILL_RESTART = 0x10000000ull;
constexpr std::uint64_t STREAM_EVOLVE_INIT = 0x20000000ull;
constexpr std::uint64_t STREAM_EVOLVE_GEN = 0x30000000ull;
constexpr std::uint64_t STREAM_HALVING_GEN = 0x40000000ull;

/** Chance that an offspring steps to a random neighbor. */
constexpr double MUTATION_P = 0.25;

/** Per-workload baseline measurements (BL on configuration #1). */
struct BaselineRow
{
    double ipc = 0.0;
    double main_rate = 0.0;
};

/** Analytic summary used by the model-dominance pruning heuristic. */
struct PruneEntry
{
    /** All non-model axis values (cache, policy, warps, interval,
     *  collectors, DRAM service), joined from the registry: only
     *  entries with identical contexts are comparable. */
    std::string context;
    int capacity;
    int banks_mult;
    double latency;
    double area;
    double power;
};

/**
 * Evaluates design points across workload subsets on a cell-level
 * pipeline, memoizing each simulated (simKey, workload) cell: a
 * point screened on a workload subset and later promoted to a
 * larger one only simulates the workloads it has not already run.
 *
 * The pipeline splits evaluation into begin() — claim the missing
 * cells and submit each one as an independent task on the harness
 * work-stealing pool — and collect() — block until a ticket's cells
 * have landed and fold them into objectives. Because admission and
 * collection are decoupled, the explorer can admit the next batch's
 * cells while a straggler from an earlier batch is still
 * simulating; because every cell simulation is a pure seeded
 * function of its configuration, the folded objectives are
 * bit-identical no matter which worker ran which cell when.
 */
class Evaluator
{
  public:
    /** The trace pid all harness pool activity lands on. */
    static constexpr int POOL_PID = 0;

    Evaluator(const ExploreOptions &opt,
              std::vector<std::string> workload_names)
        : runner(opt.jobs), names(std::move(workload_names)),
          num_sms(opt.num_sms), seed(opt.seed), trace(opt.trace),
          progress(opt.progress), t0(std::chrono::steady_clock::now())
    {
        if (trace)
            trace->processName(POOL_PID, "ltrf_dse harness pool");
        if (!opt.cache_dir.empty()) {
            // simKey() deliberately omits the SM count and the
            // workload seed (the in-memory cache lives inside one
            // run, where both are fixed); on disk they must join the
            // entry address or runs with different parameters would
            // poison each other.
            store = std::make_unique<CellStore>(
                    opt.cache_dir,
                    "sms=" + std::to_string(num_sms) +
                            "|seed=" + std::to_string(seed));
        }
    }

    /** Workers write into cache cells the fold reads; finish them
     *  before the cache goes away. */
    ~Evaluator() { runner.drain(); }

    /** One simulation cell: a (simKey, workload) result slot. */
    struct Cell
    {
        SimResult result;
        /** A ticket owns the simulation (submitted or finished);
         *  later tickets reuse instead of resubmitting. */
        bool claimed = false;
        /** result is valid. Guarded by mu. */
        bool done = false;
    };

    /**
     * A batch admitted to the pipeline: every missing cell has been
     * submitted; collect() folds once they land. Cells claimed by
     * earlier tickets that this batch also reads are listed too —
     * collect() must wait for them even though it did not submit
     * them.
     */
    struct Ticket
    {
        std::vector<DesignPoint> points;
        std::vector<std::size_t> wsel;
        std::vector<const Cell *> cells;
    };

    /**
     * Admit @p points (deduplicated by the caller) for evaluation
     * on the workloads selected by @p wsel (indices into the
     * suite): claim and submit every cell not already claimed, and
     * return the ticket collect() redeems. Baseline cells are
     * submitted lazily on the first non-empty admission — a resumed
     * search that evaluates nothing new (--resume with
     * --generations 0) must not simulate at all.
     */
    Ticket
    begin(std::vector<DesignPoint> points,
          std::vector<std::size_t> wsel)
    {
        Ticket t;
        t.points = std::move(points);
        t.wsel = std::move(wsel);
        if (t.points.empty())
            return t;
        ensureBaselines();
        for (const DesignPoint &p : t.points) {
            SimConfig cfg = configFor(p, num_sms);
            CacheRow &row = rowFor(simKey(cfg));
            for (std::size_t w : t.wsel) {
                Cell &cell = row.cells[w];
                t.cells.push_back(&cell);
                if (cell.claimed) {
                    sim_reuse++;
                    continue;
                }
                cell.claimed = true;
                sim_cells++;
                submitCell(cell, cfg, names[w]);
            }
        }
        // Folding normalizes against the baselines, so the ticket
        // waits on them like any other cell.
        for (const Cell &b : baseline_cells)
            t.cells.push_back(&b);
        return t;
    }

    /**
     * Block until every cell @p t reads has landed, then fold each
     * point's rows into an objective vector over the ticket's
     * workload subset.
     */
    std::vector<PointResult>
    collect(const Ticket &t)
    {
        if (t.points.empty())
            return {};
        {
            std::unique_lock<std::mutex> lk(mu);
            cell_done.wait(lk, [&] {
                for (const Cell *c : t.cells)
                    if (!c->done)
                        return false;
                return true;
            });
        }
        ensureBaselineRows();
        std::vector<PointResult> out;
        out.reserve(t.points.size());
        for (const DesignPoint &p : t.points)
            out.push_back(fold(p, t.wsel));
        return out;
    }

    std::uint64_t simCells() const { return sim_cells; }
    std::uint64_t simReuse() const { return sim_reuse; }

    /** Distinct simKey rows the cell cache ever created. */
    std::uint64_t rowInserts() const { return row_inserts; }

    /** Per-cell wall-time distribution (only collected when the
     *  trace or the progress heartbeat is on). */
    struct CellTimes
    {
        std::uint64_t count = 0;
        double p50_ms = 0.0;
        double p90_ms = 0.0;
        double max_ms = 0.0;
    };

    CellTimes
    cellTimes()
    {
        std::vector<std::uint64_t> us;
        {
            std::lock_guard<std::mutex> lk(mu);
            us = cell_us;
        }
        CellTimes ct;
        ct.count = us.size();
        if (us.empty())
            return ct;
        std::sort(us.begin(), us.end());
        auto ms_at = [&](double q) {
            const std::size_t i = std::min(
                    us.size() - 1,
                    static_cast<std::size_t>(
                            q * static_cast<double>(us.size())));
            return static_cast<double>(us[i]) / 1000.0;
        };
        ct.p50_ms = ms_at(0.50);
        ct.p90_ms = ms_at(0.90);
        ct.max_ms = static_cast<double>(us.back()) / 1000.0;
        return ct;
    }

    /** Emit the end-of-run pool summary on stderr (--progress). */
    void
    informSummary()
    {
        const CellTimes ct = cellTimes();
        ltrf_inform("pool: %llu cells simulated (%llu reused, %llu "
                    "cache rows), cell wall time p50 %.1f ms / p90 "
                    "%.1f ms / max %.1f ms, queue high-water %zu, "
                    "in-flight high-water %zu",
                    static_cast<unsigned long long>(sim_cells),
                    static_cast<unsigned long long>(sim_reuse),
                    static_cast<unsigned long long>(row_inserts),
                    ct.p50_ms, ct.p90_ms, ct.max_ms,
                    runner.queueHighWater(),
                    runner.inFlightHighWater());
        if (store) {
            // Misses are the cells this run actually simulated; a
            // fully warm store reports "0 misses, 0 stores" (CI's
            // cache-reuse smoke greps this line).
            const CellStore::Counts c = store->counts();
            ltrf_inform("cell store: %llu hits, %llu misses, %llu "
                        "stores, %llu errors (%s)",
                        static_cast<unsigned long long>(c.hits),
                        static_cast<unsigned long long>(c.misses),
                        static_cast<unsigned long long>(c.stores),
                        static_cast<unsigned long long>(c.errors),
                        store->dir().c_str());
        }
    }

    /** The persistent cell store, or null when cache_dir is off. */
    const CellStore *cellStore() const { return store.get(); }

  private:
    struct CacheRow
    {
        /** One slot per suite workload; sized once at creation so
         *  cell addresses stay stable for in-flight tasks. */
        std::vector<Cell> cells;
    };

    CacheRow &
    rowFor(const std::string &key)
    {
        auto it = sim_cache.find(key);
        if (it == sim_cache.end()) {
            CacheRow row;
            row.cells.resize(names.size());
            it = sim_cache.emplace(key, std::move(row)).first;
            row_inserts++;
        }
        return it->second;
    }

    /** Microseconds on the observability clock: the trace's own
     *  epoch when tracing (so spans line up with the instants the
     *  explorer emits), this evaluator's otherwise. */
    std::uint64_t
    tickUs() const
    {
        if (trace)
            return trace->wallUs();
        return static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
    }

    /** Submit @p cell's simulation; the task publishes its result
     *  under the evaluator lock and wakes any collector. @p kind
     *  labels the trace span ("sim" or "baseline"). */
    void
    submitCell(Cell &cell, const SimConfig &cfg,
               const std::string &workload,
               const char *kind = "sim")
    {
        const bool timing = trace || progress;
        if (trace) {
            cells_submitted++;
            trace->counter("cells in flight", POOL_PID, tickUs(),
                           cells_submitted - cells_landed);
        }
        runner.submit([this, &cell, cfg, workload, kind, timing] {
            const std::uint64_t start_us = timing ? tickUs() : 0;
            // Persistent store first: a hit replaces the whole
            // simulation. simulate() is a pure seeded function of
            // (cfg, kernel, seed) and the stored numbers round-trip
            // exactly, so a loaded cell folds bit-identically to a
            // fresh one — the committed report cannot tell them
            // apart.
            SimResult r;
            bool from_store = false;
            if (store) {
                const std::string skey = simKey(cfg);
                from_store = store->load(skey, workload, r);
                if (!from_store) {
                    r = simulate(cfg,
                                 WorkloadSuite::byName(workload).kernel,
                                 seed);
                    store->store(skey, workload, r);
                } else {
                    r.design = cfg.design;
                }
            } else {
                r = simulate(cfg, WorkloadSuite::byName(workload).kernel,
                             seed);
            }
            const std::uint64_t end_us = timing ? tickUs() : 0;
            if (trace) {
                const int tid = trace->workerTid();
                {
                    std::lock_guard<std::mutex> lk(mu);
                    if (named_tids.insert(tid).second)
                        trace->threadName(
                                POOL_PID, tid,
                                "worker " + std::to_string(tid));
                }
                trace->complete(
                        (std::string(kind) +
                         (from_store ? " [store hit] " : " ") +
                         workload)
                                .c_str(),
                        POOL_PID, tid, start_us, end_us - start_us);
            }
            bool beat = false;
            std::uint64_t landed = 0;
            {
                std::lock_guard<std::mutex> lk(mu);
                cell.result = std::move(r);
                cell.done = true;
                cells_landed++;
                landed = cells_landed;
                if (timing)
                    cell_us.push_back(end_us - start_us);
                if (progress && end_us >= next_beat_us) {
                    next_beat_us = end_us + 1'000'000;
                    beat = true;
                }
            }
            if (trace)
                trace->counter("cells in flight", POOL_PID, end_us,
                               cells_submitted >= landed
                                       ? cells_submitted - landed
                                       : 0);
            if (beat)
                ltrf_inform("progress: %llu/%llu cells landed "
                            "(%llu reused, %.1f s)",
                            static_cast<unsigned long long>(landed),
                            static_cast<unsigned long long>(
                                    sim_cells),
                            static_cast<unsigned long long>(
                                    sim_reuse),
                            static_cast<double>(end_us) / 1e6);
            cell_done.notify_all();
        });
    }

    void
    ensureBaselines()
    {
        if (!baseline_cells.empty())
            return;
        baseline_cells.resize(names.size());
        for (std::size_t w = 0; w < names.size(); w++) {
            SimConfig cfg;
            cfg.num_sms = num_sms;
            cfg.design = RfDesign::BL;
            baseline_cells[w].claimed = true;
            sim_cells++;
            submitCell(baseline_cells[w], cfg, names[w], "baseline");
        }
    }

    /** Derive the per-workload normalization rows once the baseline
     *  cells have landed (collect() waited on them already). */
    void
    ensureBaselineRows()
    {
        if (!baselines.empty())
            return;
        for (std::size_t w = 0; w < names.size(); w++) {
            const SimResult &r = baseline_cells[w].result;
            ltrf_assert(r.ipc > 0.0, "baseline IPC of %s is zero",
                        names[w].c_str());
            baselines.push_back(
                    {r.ipc, r.activity.main_accesses_per_cycle});
        }
    }

    /** Fold @p p's cached rows over @p wsel into objectives. */
    PointResult
    fold(const DesignPoint &p, const std::vector<std::size_t> &wsel)
    {
        PointResult pr;
        pr.point = p;
        pr.model = makeRfConfig(p.modelPoint());
        const bool cached_design =
                usesRegCache(policyDesign(p.policy));

        const CacheRow &row =
                sim_cache.at(simKey(configFor(p, num_sms)));
        std::vector<double> norm_ipc;
        double energy_sum = 0.0;
        for (std::size_t w : wsel) {
            const SimResult &r = row.cells[w].result;
            norm_ipc.push_back(r.ipc / baselines[w].ipc);
            // rfPower() is normalized so the baseline design on
            // configuration #1 at the baseline access rate is 1.0,
            // so the per-workload quotient is rfPower itself.
            energy_sum += rfPower(pr.model, r.activity, cached_design,
                                  baselines[w].main_rate);
        }
        pr.obj.ipc = harness::ResultSet::geomean(norm_ipc);
        pr.obj.energy =
                energy_sum / static_cast<double>(wsel.size());
        // The 256KB baseline array is area 1.0; a cache-based design
        // spends cache_kb more KB of HP-SRAM next to the cores.
        pr.obj.area =
                pr.model.area +
                (cached_design ? p.cache_kb / 256.0 : 0.0);
        return pr;
    }

    harness::ExperimentRunner runner;
    std::vector<std::string> names;
    /** Persistent cell store (null = off). Internally locked; the
     *  worker tasks use it without taking mu. */
    std::unique_ptr<CellStore> store;
    int num_sms;
    std::uint64_t seed;
    obs::TraceSink *trace;
    bool progress;
    std::chrono::steady_clock::time_point t0;
    std::vector<BaselineRow> baselines;
    std::vector<Cell> baseline_cells;
    std::map<std::string, CacheRow> sim_cache;
    std::mutex mu;
    std::condition_variable cell_done;
    // Admission happens on one thread but workers read the counters
    // for the heartbeat and the in-flight track, so they are atomic.
    std::atomic<std::uint64_t> sim_cells{0};
    std::atomic<std::uint64_t> sim_reuse{0};
    std::atomic<std::uint64_t> cells_submitted{0};
    std::atomic<std::uint64_t> cells_landed{0};
    std::uint64_t row_inserts = 0;    ///< admission thread only
    std::vector<std::uint64_t> cell_us;    ///< guarded by mu
    std::set<int> named_tids;              ///< guarded by mu
    std::uint64_t next_beat_us = 0;        ///< guarded by mu
};

/**
 * True if an already-evaluated entry makes simulating @p c
 * pointless: same non-model axes, at least as much capacity and
 * banking, no more latency, and no more area or power — under the
 * model's monotonicity, such an entry is at least as good on every
 * objective. A heuristic (activity-dependent power can in principle
 * reorder), so exhaustive grids leave it off.
 */
bool
modelDominated(const std::vector<PruneEntry> &entries,
               const PruneEntry &c)
{
    for (const PruneEntry &e : entries) {
        if (e.context != c.context)
            continue;
        if (e.capacity < c.capacity || e.banks_mult < c.banks_mult ||
            e.latency > c.latency || e.area > c.area ||
            e.power > c.power)
            continue;
        if (e.capacity > c.capacity || e.banks_mult > c.banks_mult ||
            e.latency < c.latency || e.area < c.area ||
            e.power < c.power)
            return true;
    }
    return false;
}

PruneEntry
pruneEntryFor(const DesignPoint &p)
{
    const RfConfig rc = makeRfConfig(p.modelPoint());
    PruneEntry e;
    for (const AxisDesc &a : axisRegistry())
        if (!a.model_axis)
            e.context += a.token(a.get(p)) + "/";
    e.capacity = p.banks_mult * p.bank_size_mult;
    e.banks_mult = p.banks_mult;
    e.latency = rc.latency;
    e.area = rc.area;
    e.power = rc.power;
    return e;
}

/**
 * The network values the prune context compares across: the space's
 * explicit `--networks` list, falling back to the distinct values
 * the auto pairing derives over the banks axis when the list is
 * empty. Pruning itself needs no network equality (the network
 * reaches the simulation only through the latency multiplier, and
 * the cost objectives only through area/power — all three are in
 * the dominance scalars), but this list determines whether any
 * dominated variant can exist at all: see pruneCanFire().
 */
std::vector<NetworkKind>
pruneNetworks(const DesignSpace &space)
{
    if (!space.networks.empty())
        return space.networks;
    std::vector<NetworkKind> fallback;
    for (int b : space.banks) {
        const NetworkKind n = defaultNetwork(b);
        if (std::find(fallback.begin(), fallback.end(), n) ==
            fallback.end())
            fallback.push_back(n);
    }
    return fallback;
}

// ----- NSGA-II machinery (EVOLVE selection, HALVING promotion) -----

/**
 * Non-domination rank per objective vector: 0 for the Pareto set,
 * 1 for the Pareto set of the remainder, and so on (repeated
 * peeling, O(n^2) per front — populations are tens of points).
 */
std::vector<int>
nonDominationRanks(const std::vector<Objectives> &objs)
{
    const std::size_t n = objs.size();
    std::vector<int> rank(n, -1);
    std::size_t assigned = 0;
    for (int r = 0; assigned < n; r++) {
        std::vector<std::size_t> front;
        for (std::size_t i = 0; i < n; i++) {
            if (rank[i] >= 0)
                continue;
            bool dom = false;
            for (std::size_t j = 0; j < n && !dom; j++)
                dom = j != i && rank[j] < 0 &&
                      dominates(objs[j], objs[i]);
            if (!dom)
                front.push_back(i);
        }
        for (std::size_t i : front)
            rank[i] = r;
        assigned += front.size();
    }
    return rank;
}

/**
 * NSGA-II crowding distance, computed per front: boundary points of
 * each objective get infinity, interior points accumulate the
 * normalized span of their neighbors. Sorts break ties on the index
 * so the result is deterministic.
 */
std::vector<double>
crowdingDistances(const std::vector<Objectives> &objs,
                  const std::vector<int> &rank)
{
    const std::size_t n = objs.size();
    std::vector<double> crowd(n, 0.0);
    const int max_rank =
            n ? *std::max_element(rank.begin(), rank.end()) : -1;
    auto axis = [](const Objectives &o, int a) {
        return a == 0 ? o.ipc : a == 1 ? o.energy : o.area;
    };
    for (int r = 0; r <= max_rank; r++) {
        std::vector<std::size_t> front;
        for (std::size_t i = 0; i < n; i++)
            if (rank[i] == r)
                front.push_back(i);
        for (int a = 0; a < 3; a++) {
            std::sort(front.begin(), front.end(),
                      [&](std::size_t x, std::size_t y) {
                          const double vx = axis(objs[x], a);
                          const double vy = axis(objs[y], a);
                          if (vx != vy)
                              return vx < vy;
                          return x < y;
                      });
            const double lo = axis(objs[front.front()], a);
            const double hi = axis(objs[front.back()], a);
            crowd[front.front()] =
                    std::numeric_limits<double>::infinity();
            crowd[front.back()] =
                    std::numeric_limits<double>::infinity();
            if (hi <= lo)
                continue;
            for (std::size_t k = 1; k + 1 < front.size(); k++)
                crowd[front[k]] += (axis(objs[front[k + 1]], a) -
                                    axis(objs[front[k - 1]], a)) /
                                   (hi - lo);
        }
    }
    return crowd;
}

/** NSGA-II total order: rank up, crowding down, index up. */
bool
nsgaBetter(std::size_t a, std::size_t b, const std::vector<int> &rank,
           const std::vector<double> &crowd)
{
    if (rank[a] != rank[b])
        return rank[a] < rank[b];
    if (crowd[a] != crowd[b])
        return crowd[a] > crowd[b];
    return a < b;
}

/**
 * Order 0..n-1 by NSGA-II preference over @p objs (used both for
 * EVOLVE's environmental selection and HALVING's promotion cut).
 */
std::vector<std::size_t>
nsgaOrder(const std::vector<Objectives> &objs)
{
    const std::vector<int> rank = nonDominationRanks(objs);
    const std::vector<double> crowd = crowdingDistances(objs, rank);
    std::vector<std::size_t> order(objs.size());
    for (std::size_t i = 0; i < order.size(); i++)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return nsgaBetter(a, b, rank, crowd);
              });
    return order;
}

/** Registry-wise uniform crossover; auto axes (network pairing,
 *  derived interval length) are re-derived on the child. */
DesignPoint
crossover(const DesignPoint &a, const DesignPoint &b, Rng &rng,
          const DesignSpace &space)
{
    DesignPoint c;
    for (const AxisDesc &axis : axisRegistry())
        axis.set(c, rng.nextBool(0.5) ? axis.get(a) : axis.get(b));
    space.finalize(c);
    return c;
}

Json
pointToJson(const PointResult &pr)
{
    const DesignPoint &p = pr.point;
    Json j = Json::object();
    j.set("key", p.key());
    // The explicit axis map: one entry per registry axis, numeric
    // axes as numbers, token axes as their parseable CLI tokens.
    Json axes = Json::object();
    for (const AxisDesc &a : axisRegistry()) {
        if (a.numeric)
            axes.set(a.name, a.get(p));
        else
            axes.set(a.name, a.token(a.get(p)));
    }
    j.set("axes", std::move(axes));
    j.set("rf_config", pr.model.id);
    j.set("capacity", pr.model.capacity);
    j.set("area", pr.model.area);
    j.set("power", pr.model.power);
    j.set("latency", pr.model.latency);
    j.set("ipc", pr.obj.ipc);
    j.set("energy", pr.obj.energy);
    j.set("total_area", pr.obj.area);
    j.set("frontier", pr.on_frontier);
    j.set("resumed", pr.resumed);
    j.set("gen", pr.gen);
    return j;
}

} // namespace

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::GRID:       return "grid";
      case Strategy::RANDOM:     return "random";
      case Strategy::HILL_CLIMB: return "hill";
      case Strategy::EVOLVE:     return "evolve";
      case Strategy::HALVING:    return "halving";
    }
    return "?";
}

bool
parseStrategy(const std::string &name, Strategy &out)
{
    const std::string low = lowered(name);
    if (low == "grid") {
        out = Strategy::GRID;
        return true;
    }
    if (low == "random") {
        out = Strategy::RANDOM;
        return true;
    }
    if (low == "hill" || low == "hillclimb" || low == "hill-climb") {
        out = Strategy::HILL_CLIMB;
        return true;
    }
    if (low == "evolve" || low == "nsga" || low == "nsga2" ||
        low == "ea") {
        out = Strategy::EVOLVE;
        return true;
    }
    if (low == "halving" || low == "sh" ||
        low == "successive-halving") {
        out = Strategy::HALVING;
        return true;
    }
    return false;
}

bool
pruneCanFire(const DesignSpace &space)
{
    // Two networks competing at one bank count is the analytic
    // model's only dominance source (see the header comment). The
    // explicit axis crosses every listed value with every bank
    // count; the auto fallback pairs exactly one per bank count, so
    // only an explicit list with both values leaves anything to
    // prune.
    if (space.networks.empty())
        return false;
    std::vector<NetworkKind> distinct;
    for (NetworkKind n : space.networks)
        if (std::find(distinct.begin(), distinct.end(), n) ==
            distinct.end())
            distinct.push_back(n);
    return distinct.size() >= 2;
}

DseResult
explore(const DesignSpace &space, const ExploreOptions &opt)
{
    space.validate();
    const bool generational = opt.strategy == Strategy::EVOLVE ||
                              opt.strategy == Strategy::HALVING;
    if ((opt.strategy == Strategy::RANDOM ||
         opt.strategy == Strategy::HILL_CLIMB) &&
        opt.budget == 0)
        ltrf_fatal("--budget is required for the %s strategy (grid "
                   "alone may walk the whole space)",
                   strategyName(opt.strategy));
    if (generational) {
        if (opt.population < 2)
            ltrf_fatal("--population must be >= 2 (got %d)",
                       opt.population);
        if (opt.generations < 0)
            ltrf_fatal("--generations must be >= 0 (got %d)",
                       opt.generations);
    }
    if (!(opt.promote_frac > 0.0 && opt.promote_frac < 1.0))
        ltrf_fatal("--promote-frac must be in (0, 1) (got %g)",
                   opt.promote_frac);
    if (opt.shard_count < 1 || opt.shard_index < 0 ||
        opt.shard_index >= opt.shard_count)
        ltrf_fatal("--shard %d/%d out of range (need 0 <= index < "
                   "count)", opt.shard_index, opt.shard_count);

    std::vector<std::string> names = opt.workloads;
    if (names.empty())
        for (const Workload &w : WorkloadSuite::all())
            names.push_back(w.name);
    else
        for (const std::string &n : names)
            WorkloadSuite::byName(n);    // fatal(), listing names

    std::vector<std::size_t> all_sel;
    for (std::size_t w = 0; w < names.size(); w++)
        all_sel.push_back(w);

    // The rung schedule (HALVING): fidelity levels as workload index
    // subsets, smallest first, each a subset of the next, ending
    // with the full suite. --rungs builds K prefix subsets; the
    // default is the legacy two-rung schedule [screening subset,
    // all] with the subset from explicit names or screen_count.
    std::vector<std::vector<std::size_t>> rung_sel;
    std::vector<int> rung_counts;
    std::vector<std::string> screen_names;
    if (opt.strategy == Strategy::HALVING) {
        if (!opt.rungs.empty()) {
            if (!opt.screen_workloads.empty())
                ltrf_fatal("--rungs and an explicit "
                           "--screen-workloads list are mutually "
                           "exclusive (the rung schedule defines "
                           "every screening subset)");
            if (opt.rungs.size() < 2)
                ltrf_fatal("--rungs needs at least two fidelity "
                           "levels (a screening rung and the full "
                           "suite)");
            int prev = 0;
            for (std::size_t k = 0; k < opt.rungs.size(); k++) {
                int n = opt.rungs[k];
                if (n == 0)    // "all"
                    n = static_cast<int>(names.size());
                if (n < 1 ||
                    n > static_cast<int>(names.size()))
                    ltrf_fatal("rung %zu asks for %d workloads but "
                               "the active suite has %zu", k,
                               opt.rungs[k], names.size());
                if (n <= prev)
                    ltrf_fatal("rung workload counts must be "
                               "strictly increasing (rung %zu: %d "
                               "after %d)", k, n, prev);
                prev = n;
                rung_counts.push_back(n);
                std::vector<std::size_t> sel;
                for (std::size_t w = 0;
                     w < static_cast<std::size_t>(n); w++)
                    sel.push_back(w);
                rung_sel.push_back(std::move(sel));
            }
            if (rung_counts.back() !=
                static_cast<int>(names.size()))
                ltrf_fatal("the last rung must be the full suite "
                           "(\"all\" or %zu workloads); got %d",
                           names.size(), rung_counts.back());
        } else {
            // The legacy two-rung schedule: explicit screening
            // names, or the first screen_count workloads of the
            // active suite, then everything.
            std::vector<std::size_t> screen_sel;
            if (!opt.screen_workloads.empty()) {
                for (const std::string &s : opt.screen_workloads) {
                    const auto it =
                            std::find(names.begin(), names.end(), s);
                    if (it == names.end())
                        ltrf_fatal("screening workload \"%s\" is "
                                   "not in the active suite",
                                   s.c_str());
                    const std::size_t w = static_cast<std::size_t>(
                            it - names.begin());
                    if (std::find(screen_sel.begin(),
                                  screen_sel.end(), w) !=
                        screen_sel.end())
                        ltrf_fatal("screening workload \"%s\" "
                                   "listed twice", s.c_str());
                    screen_sel.push_back(w);
                }
            } else {
                if (opt.screen_count < 1)
                    ltrf_fatal("--screen-workloads must name at "
                               "least one workload");
                const std::size_t n = std::min(
                        static_cast<std::size_t>(opt.screen_count),
                        names.size());
                for (std::size_t w = 0; w < n; w++)
                    screen_sel.push_back(w);
            }
            rung_counts.push_back(
                    static_cast<int>(screen_sel.size()));
            rung_counts.push_back(static_cast<int>(names.size()));
            rung_sel.push_back(std::move(screen_sel));
            rung_sel.push_back(all_sel);
        }
        for (std::size_t w : rung_sel.front())
            screen_names.push_back(names[w]);
    } else if (!opt.rungs.empty()) {
        ltrf_fatal("--rungs only applies to the halving strategy "
                   "(got --strategy %s)", strategyName(opt.strategy));
    }

    // A resumed frontier's objectives were measured under the saved
    // report's simulation parameters; mixing suites, SM counts, or
    // workload seeds would compare incomparable numbers. (A field
    // absent from the report cannot be checked.)
    if (!opt.resume.empty()) {
        if (!opt.resume.workloads.empty() &&
            opt.resume.workloads != names)
            ltrf_fatal("--resume report was measured on a different "
                       "workload suite (saved {%s}, active {%s}; "
                       "order matters)",
                       joined(opt.resume.workloads).c_str(),
                       joined(names).c_str());
        if (opt.resume.has_num_sms &&
            opt.resume.num_sms != opt.num_sms)
            ltrf_fatal("--resume report was measured at %d SMs, not "
                       "%d", opt.resume.num_sms, opt.num_sms);
        if (opt.resume.has_seed && opt.resume.seed != opt.seed)
            ltrf_fatal("--resume report used workload seed %llu, "
                       "not %llu",
                       static_cast<unsigned long long>(
                               opt.resume.seed),
                       static_cast<unsigned long long>(opt.seed));
    }

    DseResult res;
    res.strategy = opt.strategy;
    res.budget = opt.budget;
    res.seed = opt.seed;
    res.workloads = names;
    res.num_sms = opt.num_sms;
    res.prune = opt.prune < 0
                        ? (opt.strategy == Strategy::RANDOM ||
                           opt.strategy == Strategy::HILL_CLIMB)
                        : opt.prune > 0;
    res.space_size = space.size();
    if (generational) {
        res.generations = opt.generations;
        res.population = opt.population;
    }
    res.screen_workloads = screen_names;
    res.promote_frac = opt.promote_frac;
    res.rungs = rung_counts;
    res.rung_screened.assign(rung_counts.size(), 0);
    res.rung_promoted.assign(rung_counts.size(), 0);
    res.shard_index = opt.shard_index;
    res.shard_count = opt.shard_count;
    res.hv_ref = opt.hv_ref;

    // The heuristic is enabled but structurally inactive on spaces
    // whose (possibly fallback-derived) network axis pairs each
    // bank count with a single network — say so instead of silently
    // pruning nothing, so a default (auto-network) run that forces
    // --prune knows why its pruned counter stays zero.
    if (res.prune && !pruneCanFire(space)) {
        std::string nets;
        for (NetworkKind n : pruneNetworks(space))
            nets += std::string(nets.empty() ? "" : ", ") +
                    networkToken(n);
        ltrf_warn_once("model-dominance pruning is enabled but cannot "
                  "fire: the %s network axis pairs each bank count "
                  "with a single network ({%s}), so the space holds "
                  "no model-dominated variants; pass --networks "
                  "xbar,fbfly to prune across the network axis",
                  space.networks.empty() ? "auto (fallback)"
                                         : "explicit",
                  nets.c_str());
    }

    Evaluator ev(opt, names);
    ParetoFrontier frontier;
    std::vector<PruneEntry> prune_entries;

    // Admission-thread instants (batch commits, rung promotions) get
    // a dedicated trace lane well clear of the pool worker ids.
    constexpr int kExplorerTid = 1000;
    if (opt.trace)
        opt.trace->threadName(Evaluator::POOL_PID, kExplorerTid,
                              "explorer");

    // The sampled stripe of the enumeration order: all of it for an
    // unsharded run, the shard_index-th of shard_count balanced
    // index ranges otherwise.
    const std::uint64_t full_size = space.size();
    const std::uint64_t stripe_base = full_size /
            static_cast<std::uint64_t>(opt.shard_count);
    const std::uint64_t stripe_rem = full_size %
            static_cast<std::uint64_t>(opt.shard_count);
    const std::uint64_t shard_i =
            static_cast<std::uint64_t>(opt.shard_index);
    const std::uint64_t stripe_lo =
            stripe_base * shard_i + std::min(shard_i, stripe_rem);
    const std::uint64_t stripe_size =
            stripe_base + (shard_i < stripe_rem ? 1 : 0);

    // Keys ever admitted (evaluated, pruned, screened, or resumed):
    // no strategy offers the same point twice. in_stripe_seen counts
    // only keys inside this run's stripe of the current space —
    // resumed points from a wider space (or another shard) must not
    // make sampling think the stripe is exhausted.
    std::set<std::string> seen;
    std::uint64_t in_stripe_seen = 0;
    auto inStripe = [&](const DesignPoint &p) {
        if (!space.contains(p))
            return false;
        const std::uint64_t idx = space.indexOf(p);
        return idx >= stripe_lo && idx < stripe_lo + stripe_size;
    };

    // Distinct candidates admitted so far (evaluated + pruned +
    // screened); the budget caps this count. Resumed points are
    // free.
    std::uint64_t considered = 0;

    int current_gen = -1;    // stamped into PointResult::gen

    // ----- The cell pipeline: full-fidelity batches are *admitted*
    // (pruned against everything admitted so far, their missing
    // cells submitted to the pool) and later *committed* (cells
    // awaited, objectives folded, frontier updated) strictly in
    // admission order. Strategies interleave the two however their
    // data dependencies allow; the committed state sequence only
    // ever depends on the admission sequence. -----

    struct Admission
    {
        Evaluator::Ticket ticket;
        int gen;
    };
    std::deque<Admission> pipeline;
    std::uint64_t batches_admitted = 0;
    std::uint64_t batches_committed = 0;

    /** Prune @p batch against every earlier admission, then submit
     *  the survivors' cells. Points within one batch are never
     *  pruned against each other (pre-pipeline behavior, kept). */
    auto admitBatch = [&](const std::vector<DesignPoint> &batch) {
        std::vector<DesignPoint> kept;
        for (const DesignPoint &p : batch) {
            if (res.prune &&
                modelDominated(prune_entries, pruneEntryFor(p))) {
                res.pruned++;
                continue;
            }
            kept.push_back(p);
        }
        for (const DesignPoint &p : kept)
            prune_entries.push_back(pruneEntryFor(p));
        if (kept.empty())
            return;
        pipeline.push_back(
                {ev.begin(std::move(kept), all_sel), current_gen});
        batches_admitted++;
    };

    /** Commit the oldest admission; returns the indices it added to
     *  res.evaluated. */
    auto commitBatch = [&]() {
        Admission a = std::move(pipeline.front());
        pipeline.pop_front();
        batches_committed++;
        std::vector<int> added;
        for (PointResult &pr : ev.collect(a.ticket)) {
            const int idx = static_cast<int>(res.evaluated.size());
            pr.gen = a.gen;
            frontier.insert(idx, pr.obj);
            res.evaluated.push_back(std::move(pr));
            added.push_back(idx);
        }
        if (opt.trace)
            opt.trace->instant(
                    ("commit batch " +
                     std::to_string(batches_committed) + " (+" +
                     std::to_string(added.size()) + " points)")
                            .c_str(),
                    Evaluator::POOL_PID, kExplorerTid,
                    opt.trace->wallUs());
        return added;
    };

    auto commitAll = [&]() {
        std::vector<int> added;
        while (!pipeline.empty()) {
            const std::vector<int> b = commitBatch();
            added.insert(added.end(), b.begin(), b.end());
        }
        return added;
    };

    /** Admit @p cands in fixed POINT_BATCH slices, counting them
     *  toward the budget unless @p counted already were. */
    auto beginAll = [&](const std::vector<DesignPoint> &cands,
                        bool counted = false) {
        for (std::size_t i = 0; i < cands.size(); i += POINT_BATCH) {
            std::vector<DesignPoint> batch(
                    cands.begin() + static_cast<std::ptrdiff_t>(i),
                    cands.begin() +
                            static_cast<std::ptrdiff_t>(std::min(
                                    i + POINT_BATCH, cands.size())));
            if (!counted)
                considered += batch.size();
            admitBatch(batch);
        }
    };

    /** Admit every slice of @p cands before collecting any of them
     *  (cells of later slices overlap stragglers of earlier ones),
     *  then commit in admission order. */
    auto processAll = [&](const std::vector<DesignPoint> &cands,
                          bool counted = false) {
        beginAll(cands, counted);
        return commitAll();
    };

    auto processBatch = [&](const std::vector<DesignPoint> &batch) {
        considered += batch.size();
        admitBatch(batch);
        return commitAll();
    };

    // ----- Streaming admission (GRID, RANDOM): candidates arrive
    // one at a time from a generator (a PointCursor or an RNG) and
    // are admitted in exactly the POINT_BATCH slices beginAll()
    // would have cut from the materialized list, so admission order
    // — and therefore every committed byte — is unchanged; but the
    // pipeline is drained whenever it exceeds a fixed depth, so peak
    // memory is bounded by the depth, not the candidate count. -----

    /** Admitted-but-uncommitted batches the stream tolerates before
     *  draining. Deep enough that the pool never starves (depth x
     *  POINT_BATCH cells in flight), fixed so a 10^7-point walk
     *  holds 10^7 / POINT_BATCH tickets never. */
    constexpr std::size_t MAX_STREAM_DEPTH = 64;
    std::vector<DesignPoint> stream_batch;
    auto streamPush = [&](const DesignPoint &p) {
        stream_batch.push_back(p);
        if (stream_batch.size() == POINT_BATCH) {
            considered += stream_batch.size();
            admitBatch(stream_batch);
            stream_batch.clear();
            while (pipeline.size() > MAX_STREAM_DEPTH)
                commitBatch();
        }
    };
    auto streamFlush = [&]() {
        if (!stream_batch.empty()) {
            considered += stream_batch.size();
            admitBatch(stream_batch);
            stream_batch.clear();
        }
        commitAll();
    };

    auto recordProgress = [&](int gen) {
        DseResult::GenStat s;
        s.gen = gen;
        s.evaluated = res.evaluated.size();
        s.frontier_size = frontier.size();
        s.hypervolume =
                hypervolume(frontier.objectives(), opt.hv_ref);
        res.progress.push_back(s);
    };

    // ----- Resume seeding: saved points re-enter the frontier with
    // their saved objectives, without re-simulation. -----
    std::vector<int> resumed_indices;
    for (const SeedPoint &sp : opt.resume.points) {
        if (!seen.insert(sp.point.key()).second)
            continue;
        if (inStripe(sp.point))
            in_stripe_seen++;
        PointResult pr;
        pr.point = sp.point;
        pr.model = makeRfConfig(sp.point.modelPoint());
        pr.obj = sp.obj;
        pr.resumed = true;
        const int idx = static_cast<int>(res.evaluated.size());
        frontier.insert(idx, pr.obj);
        prune_entries.push_back(pruneEntryFor(sp.point));
        res.evaluated.push_back(std::move(pr));
        resumed_indices.push_back(idx);
        res.resumed++;
    }

    auto budgetLeft = [&]() {
        return opt.budget == 0
                       ? std::numeric_limits<std::uint64_t>::max()
                       : opt.budget > considered
                                 ? opt.budget - considered
                                 : 0;
    };

    /** Up to @p want distinct unseen samples (from this run's
     *  stripe) from @p rng. */
    auto sampleDistinct = [&](Rng &rng, std::uint64_t want) {
        std::vector<DesignPoint> out;
        std::uint64_t attempts = 0;
        const std::uint64_t max_attempts = want * 64 + 1024;
        while (out.size() < want && in_stripe_seen < stripe_size &&
               attempts++ < max_attempts) {
            DesignPoint p = space.pointAt(
                    stripe_lo + rng.nextBounded(stripe_size));
            if (seen.insert(p.key()).second) {
                in_stripe_seen++;
                out.push_back(p);
            }
        }
        return out;
    };

    switch (opt.strategy) {
      case Strategy::GRID: {
          // Stripe enumeration order, skipping resumed points, up
          // to the budget — streamed from a cursor, so walking a
          // 10^7-point space with (or without) a budget never
          // materializes the stripe. `seen` is only *checked* here:
          // grid enumeration cannot yield a key twice and no later
          // phase reads the set, so inserting every admitted key
          // would grow it with the stripe for nothing.
          PointCursor cur(space, stripe_lo, stripe_size);
          std::uint64_t admitted = 0;
          for (DesignPoint p;
               (!opt.budget || admitted < opt.budget) && cur.next(p);) {
              if (seen.count(p.key()))
                  continue;
              admitted++;
              streamPush(p);
          }
          streamFlush();
          recordProgress(0);
          break;
      }
      case Strategy::RANDOM: {
          // The exact draw/acceptance sequence of
          // sampleDistinct(rng, budget) — same attempt cap, same
          // dedup against `seen` — with each accepted point admitted
          // immediately instead of collected first.
          Rng rng(opt.seed);
          const std::uint64_t want = opt.budget;
          std::uint64_t got = 0, attempts = 0;
          const std::uint64_t max_attempts = want * 64 + 1024;
          while (got < want && in_stripe_seen < stripe_size &&
                 attempts++ < max_attempts) {
              DesignPoint p = space.pointAt(
                      stripe_lo + rng.nextBounded(stripe_size));
              if (!seen.insert(p.key()).second)
                  continue;
              in_stripe_seen++;
              got++;
              streamPush(p);
          }
          streamFlush();
          recordProgress(0);
          break;
      }
      case Strategy::HILL_CLIMB: {
          std::set<std::string> expanded;
          if (stripe_size > 0) {
              DesignPoint start = space.pointAt(stripe_lo);
              if (seen.insert(start.key()).second) {
                  in_stripe_seen++;
                  processBatch({start});
              }
          }
          while (considered < opt.budget) {
              // First in-space frontier member (best IPC) not yet
              // expanded. Resumed members outside the restricted
              // space still anchor the frontier, but expanding them
              // would step sideways out of the space the user asked
              // for (neighbors() only skips the out-of-range axis
              // itself).
              const DesignPoint *pick = nullptr;
              for (const ParetoFrontier::Member &m :
                   frontier.members()) {
                  const DesignPoint &p =
                          res.evaluated[static_cast<std::size_t>(
                                                m.point_index)]
                                  .point;
                  if (!expanded.count(p.key()) &&
                      space.contains(p)) {
                      pick = &p;
                      break;
                  }
              }
              if (pick) {
                  expanded.insert(pick->key());
                  std::vector<DesignPoint> cands;
                  for (const DesignPoint &n : space.neighbors(*pick)) {
                      if (considered + cands.size() >= opt.budget)
                          break;
                      if (seen.insert(n.key()).second) {
                          // Expansion follows the frontier and may
                          // leave a shard's stripe; only in-stripe
                          // keys count toward sampling exhaustion.
                          if (inStripe(n))
                              in_stripe_seen++;
                          cands.push_back(n);
                      }
                  }
                  if (!cands.empty())
                      processBatch(cands);
                  continue;
              }
              // Every frontier member expanded: seeded restart. Each
              // restart draws from its own (seed, restart index)
              // stream, so restart K's samples cannot drift with how
              // many draws earlier restarts or batches consumed.
              Rng rrng(mixSeeds(opt.seed,
                                STREAM_HILL_RESTART + res.restarts));
              res.restarts++;
              const std::vector<DesignPoint> restart =
                      sampleDistinct(rrng, 1);
              if (restart.empty())
                  break;    // space exhausted
              processBatch(restart);
          }
          recordProgress(0);
          break;
      }
      case Strategy::EVOLVE: {
          // Generation 0: in-space resumed points plus a random
          // top-up. A resume with --generations 0 is a pure replay
          // and evaluates nothing.
          std::vector<int> population;
          for (int idx : resumed_indices)
              if (space.contains(
                          res.evaluated[static_cast<std::size_t>(idx)]
                                  .point))
                  population.push_back(idx);
          current_gen = 0;
          if (opt.generations > 0 || resumed_indices.empty()) {
              Rng init_rng(
                      mixSeeds(opt.seed, STREAM_EVOLVE_INIT));
              const std::uint64_t want = std::min(
                      budgetLeft(),
                      population.size() <
                                      static_cast<std::size_t>(
                                              opt.population)
                              ? static_cast<std::uint64_t>(
                                        opt.population) -
                                        population.size()
                              : 0);
              const std::vector<int> added =
                      processAll(sampleDistinct(init_rng, want));
              population.insert(population.end(), added.begin(),
                                added.end());
          }
          recordProgress(0);

          auto objsOf = [&](const std::vector<int> &idxs) {
              std::vector<Objectives> objs;
              objs.reserve(idxs.size());
              for (int i : idxs)
                  objs.push_back(
                          res.evaluated[static_cast<std::size_t>(i)]
                                  .obj);
              return objs;
          };

          for (int g = 1; g <= opt.generations; g++) {
              if (population.size() < 2 || budgetLeft() == 0)
                  break;
              current_gen = g;
              Rng rng(mixSeeds(opt.seed, STREAM_EVOLVE_GEN +
                                       static_cast<std::uint64_t>(g)));
              const std::vector<Objectives> objs = objsOf(population);
              const std::vector<int> rank = nonDominationRanks(objs);
              const std::vector<double> crowd =
                      crowdingDistances(objs, rank);
              auto tournament = [&]() {
                  const std::size_t a =
                          rng.nextBounded(population.size());
                  const std::size_t b =
                          rng.nextBounded(population.size());
                  return nsgaBetter(a, b, rank, crowd) ? a : b;
              };

              // Breed up to a population of distinct, unseen
              // offspring (bounded attempts: a tight space or a
              // converged population may have nothing new to offer).
              std::vector<DesignPoint> offspring;
              const std::uint64_t want = std::min(
                      budgetLeft(),
                      static_cast<std::uint64_t>(opt.population));
              std::uint64_t attempts = 0;
              const std::uint64_t max_attempts = want * 64 + 256;
              while (offspring.size() < want &&
                     attempts++ < max_attempts) {
                  const std::size_t pa = tournament();
                  const std::size_t pb = tournament();
                  DesignPoint child = crossover(
                          res.evaluated[static_cast<std::size_t>(
                                                population[pa])]
                                  .point,
                          res.evaluated[static_cast<std::size_t>(
                                                population[pb])]
                                  .point,
                          rng, space);
                  if (rng.nextBool(MUTATION_P)) {
                      const std::vector<DesignPoint> nb =
                              space.neighbors(child);
                      if (!nb.empty())
                          child = nb[rng.nextBounded(nb.size())];
                  }
                  if (seen.insert(child.key()).second) {
                      if (inStripe(child))
                          in_stripe_seen++;
                      offspring.push_back(child);
                  }
              }
              if (offspring.empty()) {
                  recordProgress(g);
                  break;
              }
              const std::vector<int> added = processAll(offspring);

              // Environmental selection over parents + offspring.
              std::vector<int> pool = population;
              pool.insert(pool.end(), added.begin(), added.end());
              const std::vector<std::size_t> order =
                      nsgaOrder(objsOf(pool));
              population.clear();
              for (std::size_t k = 0;
                   k < order.size() &&
                   k < static_cast<std::size_t>(opt.population);
                   k++)
                  population.push_back(
                          pool[order[k]]);
              recordProgress(g);
          }
          break;
      }
      case Strategy::HALVING: {
          recordProgress(0);
          const std::size_t num_rungs = rung_sel.size();

          // Phase A: the admission schedule is simulation-free —
          // pool sampling reads only `seen` and the budget — so
          // every generation's pool is sampled and its first-rung
          // screening submitted before any result is collected.
          // Later generations' screens run while earlier
          // generations' promotions are still in flight.
          struct GenPlan
          {
              std::vector<DesignPoint> pool;
              Evaluator::Ticket screen;
          };
          std::vector<GenPlan> plan;
          for (int g = 0; g < opt.generations; g++) {
              if (budgetLeft() == 0)
                  break;
              Rng rng(mixSeeds(opt.seed, STREAM_HALVING_GEN +
                                       static_cast<std::uint64_t>(g)));
              const std::uint64_t want = std::min(
                      budgetLeft(),
                      static_cast<std::uint64_t>(opt.population));
              std::vector<DesignPoint> pool =
                      sampleDistinct(rng, want);
              if (pool.empty())
                  break;    // space exhausted
              considered += pool.size();
              res.screened += pool.size();
              res.rung_screened[0] += pool.size();
              GenPlan gp;
              gp.screen = ev.begin(pool, rung_sel[0]);
              gp.pool = std::move(pool);
              plan.push_back(std::move(gp));
          }

          /** At least one, at most all: the per-rung promotion
           *  cut. */
          auto promoteCut = [&](std::size_t n) {
              return std::min(
                      n, std::max<std::size_t>(
                                 1, static_cast<std::size_t>(
                                            std::ceil(static_cast<
                                                              double>(
                                                              n) *
                                                      opt.promote_frac))));
          };

          // Phase B: cascade each generation through the rung
          // schedule. Ranking the k-th rung's survivors waits only
          // on that rung's cells; each promotion reuses every cell
          // screened at lower rungs, simulating just the workloads
          // the next rung adds. Full-fidelity admissions queue up
          // behind `marks` and commit — in admission order — after
          // the cascades, so one generation's stragglers never gate
          // the next generation's rungs.
          struct Mark
          {
              std::uint64_t batches;
              int gen;
          };
          std::vector<Mark> marks;
          for (std::size_t gi = 0; gi < plan.size(); gi++) {
              current_gen = static_cast<int>(gi) + 1;
              std::vector<DesignPoint> survivors =
                      std::move(plan[gi].pool);
              Evaluator::Ticket ticket = std::move(plan[gi].screen);
              for (std::size_t k = 0; k + 1 < num_rungs; k++) {
                  const std::vector<PointResult> screened =
                          ev.collect(ticket);
                  std::vector<Objectives> objs;
                  objs.reserve(screened.size());
                  for (const PointResult &pr : screened)
                      objs.push_back(pr.obj);
                  const std::vector<std::size_t> order =
                          nsgaOrder(objs);
                  const std::size_t promote =
                          promoteCut(survivors.size());
                  std::vector<DesignPoint> next;
                  next.reserve(promote);
                  for (std::size_t j = 0; j < promote; j++)
                      next.push_back(survivors[order[j]]);
                  res.rung_promoted[k] += promote;
                  if (opt.trace)
                      opt.trace->instant(
                              ("gen " +
                               std::to_string(current_gen) +
                               " rung " + std::to_string(k) +
                               ": promote " +
                               std::to_string(promote) + "/" +
                               std::to_string(survivors.size()))
                                      .c_str(),
                              Evaluator::POOL_PID, kExplorerTid,
                              opt.trace->wallUs());
                  survivors = std::move(next);
                  if (k + 2 < num_rungs) {
                      // An intermediate screening rung: still below
                      // full fidelity, so its points count as
                      // screened, not evaluated.
                      res.screened += survivors.size();
                      res.rung_screened[k + 1] += survivors.size();
                      ticket = ev.begin(survivors, rung_sel[k + 1]);
                  }
              }
              res.rung_screened[num_rungs - 1] += survivors.size();
              beginAll(survivors, /*counted=*/true);
              marks.push_back({batches_admitted, current_gen});
          }
          for (const Mark &m : marks) {
              while (batches_committed < m.batches)
                  commitBatch();
              recordProgress(m.gen);
          }
          break;
      }
    }

    for (const ParetoFrontier::Member &m : frontier.members()) {
        res.frontier.push_back(m.point_index);
        res.evaluated[static_cast<std::size_t>(m.point_index)]
                .on_frontier = true;
    }
    res.sim_reuse = ev.simReuse();
    res.sim_cells = ev.simCells();
    if (const CellStore *cs = ev.cellStore()) {
        const CellStore::Counts c = cs->counts();
        res.store_hits = c.hits;
        res.store_misses = c.misses;
        res.store_stores = c.stores;
        res.store_errors = c.errors;
        cs->stats().flatten(res.stats_lines);
    }
    res.hv = res.progress.empty() ? 0.0
                                  : res.progress.back().hypervolume;
    if (opt.progress)
        ev.informSummary();
    return res;
}

Json
DseResult::toJson() const
{
    Json root = Json::object();
    root.set("schema", "ltrf.dse.v4");
    root.set("strategy", strategyName(strategy));
    root.set("budget", budget);
    // As a string, like ResultSet seeds: doubles round above 2^53.
    root.set("seed", std::to_string(seed));
    root.set("num_sms", num_sms);
    root.set("prune", prune);
    root.set("space_size", space_size);
    root.set("shard_index", shard_index);
    root.set("shard_count", shard_count);
    root.set("generations", generations);
    root.set("population", population);
    if (!screen_workloads.empty()) {
        Json sw = Json::array();
        for (const std::string &w : screen_workloads)
            sw.push(w);
        root.set("screen_workloads", std::move(sw));
        root.set("promote_frac", promote_frac);
    }
    if (!rungs.empty()) {
        // The rung schedule and its per-rung counters (v4): how
        // many points entered each fidelity level and how many it
        // promoted, summed over generations.
        Json rc = Json::array();
        for (int n : rungs)
            rc.push(n);
        root.set("rungs", std::move(rc));
        Json rs = Json::array();
        for (std::uint64_t v : rung_screened)
            rs.push(v);
        root.set("rung_screened", std::move(rs));
        Json rp = Json::array();
        for (std::uint64_t v : rung_promoted)
            rp.push(v);
        root.set("rung_promoted", std::move(rp));
    }
    Json ref = Json::object();
    ref.set("ipc", hv_ref.ipc);
    ref.set("energy", hv_ref.energy);
    ref.set("area", hv_ref.area);
    root.set("hv_ref", std::move(ref));
    Json wl = Json::array();
    for (const std::string &w : workloads)
        wl.push(w);
    root.set("workloads", std::move(wl));

    Json counters = Json::object();
    counters.set("evaluated", std::uint64_t{evaluated.size()});
    counters.set("pruned", pruned);
    counters.set("sim_reuse", sim_reuse);
    counters.set("sim_cells", sim_cells);
    counters.set("screened", screened);
    counters.set("resumed", resumed);
    counters.set("restarts", restarts);
    root.set("counters", std::move(counters));

    root.set("hypervolume", hv);
    Json prog = Json::array();
    for (const GenStat &s : progress) {
        Json j = Json::object();
        j.set("gen", s.gen);
        j.set("evaluated", s.evaluated);
        j.set("frontier_size", s.frontier_size);
        j.set("hypervolume", s.hypervolume);
        prog.push(std::move(j));
    }
    root.set("progress", std::move(prog));

    Json pts = Json::array();
    for (const PointResult &pr : evaluated)
        pts.push(pointToJson(pr));
    root.set("points", std::move(pts));

    Json front = Json::array();
    for (int idx : frontier)
        front.push(evaluated[static_cast<std::size_t>(idx)]
                           .point.key());
    root.set("frontier", std::move(front));
    return root;
}

std::string
DseResult::toCsv() const
{
    // Header and rows walk pointToJson()'s keys (the nested axis
    // map flattens to one column per registry axis), so the column
    // set cannot drift from the JSON schema. String fields are
    // RFC 4180-quoted; number/bool texts never need it.
    auto cell = [](const Json &v) {
        return v.type() == Json::Type::STRING
                       ? harness::csvField(v.asString())
                       : v.dump();
    };
    std::string out;
    for (std::size_t i = 0; i < evaluated.size(); i++) {
        const Json j = pointToJson(evaluated[i]);
        if (i == 0) {
            bool first = true;
            for (const auto &[key, v] : j.items()) {
                if (v.type() == Json::Type::OBJECT) {
                    for (const auto &[name, av] : v.items()) {
                        (void)av;
                        if (!first)
                            out += ',';
                        first = false;
                        out += name;
                    }
                    continue;
                }
                if (!first)
                    out += ',';
                first = false;
                out += key;
            }
            out += '\n';
        }
        bool first = true;
        for (const auto &[key, v] : j.items()) {
            (void)key;
            if (v.type() == Json::Type::OBJECT) {
                for (const auto &[name, av] : v.items()) {
                    (void)name;
                    if (!first)
                        out += ',';
                    first = false;
                    out += cell(av);
                }
                continue;
            }
            if (!first)
                out += ',';
            first = false;
            out += cell(v);
        }
        out += '\n';
    }
    // The per-generation hypervolume table, as a second CSV block.
    if (!progress.empty()) {
        if (!out.empty())
            out += '\n';
        out += "gen,evaluated,frontier_size,hypervolume\n";
        for (const GenStat &s : progress) {
            out += std::to_string(s.gen);
            out += ',' + std::to_string(s.evaluated);
            out += ',' + std::to_string(s.frontier_size);
            out += ',' + harness::jsonNumberText(s.hypervolume);
            out += '\n';
        }
    }
    return out;
}

std::string
DseResult::dumpAs(harness::OutputFormat format) const
{
    return format == harness::OutputFormat::CSV
                   ? toCsv()
                   : toJson().dump(2) + "\n";
}

} // namespace ltrf::dse
