#include "dse/explorer.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.hh"
#include "common/strutil.hh"
#include "harness/runner.hh"
#include "tech/energy_model.hh"
#include "workloads/workload.hh"

namespace ltrf::dse
{

using harness::Json;

namespace
{

/**
 * Candidates are admitted in fixed-size batches: pruning and
 * frontier updates happen only at batch boundaries, so decisions
 * depend on batch order alone — never on the job count. The batch
 * size is a constant for the same reason.
 */
constexpr std::size_t POINT_BATCH = 16;

/** Per-workload baseline measurements (BL on configuration #1). */
struct BaselineRow
{
    double ipc = 0.0;
    double main_rate = 0.0;
};

/** Analytic summary used by the model-dominance pruning heuristic. */
struct PruneEntry
{
    int cache_kb;
    PrefetchPolicy policy;
    int active_warps;
    int capacity;
    int banks_mult;
    double latency;
    double area;
    double power;
};

/** Evaluates design points across the suite, memoizing by simKey. */
class Evaluator
{
  public:
    Evaluator(const ExploreOptions &opt,
              std::vector<std::string> workload_names)
        : runner(opt.jobs), names(std::move(workload_names)),
          num_sms(opt.num_sms), seed(opt.seed)
    {
        computeBaselines();
    }

    /**
     * Evaluate @p points (deduplicated by the caller): simulate the
     * distinct configurations across all workloads on the pool, then
     * fold each point's rows into its objective vector.
     */
    std::vector<PointResult>
    evaluate(const std::vector<DesignPoint> &points)
    {
        // Collect configurations this batch still needs to simulate.
        std::vector<harness::SweepCell> cells;
        std::vector<std::string> fresh_keys;
        for (const DesignPoint &p : points) {
            SimConfig cfg = configFor(p, num_sms);
            const std::string key = simKey(cfg);
            if (sim_cache.count(key) ||
                std::find(fresh_keys.begin(), fresh_keys.end(), key) !=
                        fresh_keys.end()) {
                sim_reuse++;
                continue;
            }
            fresh_keys.push_back(key);
            for (const std::string &w : names) {
                harness::SweepCell c;
                c.index = static_cast<int>(cells.size());
                c.workload = w;
                c.tag = key;
                c.config = cfg;
                c.seed = seed;
                cells.push_back(std::move(c));
            }
        }

        harness::ResultSet rs = runner.run(cells);
        sim_cells += cells.size();
        for (std::size_t k = 0; k < fresh_keys.size(); k++) {
            std::vector<SimResult> rows;
            for (std::size_t w = 0; w < names.size(); w++)
                rows.push_back(
                        rs.rows()[k * names.size() + w].result);
            sim_cache.emplace(fresh_keys[k], std::move(rows));
        }

        std::vector<PointResult> out;
        out.reserve(points.size());
        for (const DesignPoint &p : points)
            out.push_back(fold(p));
        return out;
    }

    std::uint64_t simCells() const { return sim_cells; }
    std::uint64_t simReuse() const { return sim_reuse; }
    const harness::ExperimentRunner &experimentRunner() const
    {
        return runner;
    }

  private:
    void
    computeBaselines()
    {
        std::vector<harness::SweepCell> cells;
        for (const std::string &w : names) {
            harness::SweepCell c;
            c.index = static_cast<int>(cells.size());
            c.workload = w;
            c.tag = "baseline";
            c.config.num_sms = num_sms;
            c.config.design = RfDesign::BL;
            c.seed = seed;
            cells.push_back(std::move(c));
        }
        harness::ResultSet rs = runner.run(cells);
        sim_cells += cells.size();
        for (std::size_t w = 0; w < names.size(); w++) {
            const SimResult &r = rs.rows()[w].result;
            ltrf_assert(r.ipc > 0.0, "baseline IPC of %s is zero",
                        names[w].c_str());
            baselines.push_back(
                    {r.ipc, r.activity.main_accesses_per_cycle});
        }
    }

    /** Fold @p p's cached per-workload rows into objectives. */
    PointResult
    fold(const DesignPoint &p)
    {
        PointResult pr;
        pr.point = p;
        pr.model = makeRfConfig(p.modelPoint());
        const bool cached_design =
                usesRegCache(policyDesign(p.policy));

        const std::vector<SimResult> &rows =
                sim_cache.at(simKey(configFor(p, num_sms)));
        std::vector<double> norm_ipc;
        double energy_sum = 0.0;
        for (std::size_t w = 0; w < names.size(); w++) {
            const SimResult &r = rows[w];
            norm_ipc.push_back(r.ipc / baselines[w].ipc);
            // rfPower() is normalized so the baseline design on
            // configuration #1 at the baseline access rate is 1.0,
            // so the per-workload quotient is rfPower itself.
            energy_sum += rfPower(pr.model, r.activity, cached_design,
                                  baselines[w].main_rate);
        }
        pr.obj.ipc = harness::ResultSet::geomean(norm_ipc);
        pr.obj.energy =
                energy_sum / static_cast<double>(names.size());
        // The 256KB baseline array is area 1.0; a cache-based design
        // spends cache_kb more KB of HP-SRAM next to the cores.
        pr.obj.area =
                pr.model.area +
                (cached_design ? p.cache_kb / 256.0 : 0.0);
        return pr;
    }

    harness::ExperimentRunner runner;
    std::vector<std::string> names;
    int num_sms;
    std::uint64_t seed;
    std::vector<BaselineRow> baselines;
    std::map<std::string, std::vector<SimResult>> sim_cache;
    std::uint64_t sim_cells = 0;
    std::uint64_t sim_reuse = 0;
};

/**
 * True if an already-evaluated entry makes simulating @p c
 * pointless: same cache/policy/warp axes, at least as much capacity
 * and banking, no more latency, and no more area or power — under
 * the model's monotonicity, such an entry is at least as good on
 * every objective. A heuristic (activity-dependent power can in
 * principle reorder), so exhaustive grids leave it off.
 */
bool
modelDominated(const std::vector<PruneEntry> &entries,
               const PruneEntry &c)
{
    for (const PruneEntry &e : entries) {
        if (e.cache_kb != c.cache_kb || e.policy != c.policy ||
            e.active_warps != c.active_warps)
            continue;
        if (e.capacity < c.capacity || e.banks_mult < c.banks_mult ||
            e.latency > c.latency || e.area > c.area ||
            e.power > c.power)
            continue;
        if (e.capacity > c.capacity || e.banks_mult > c.banks_mult ||
            e.latency < c.latency || e.area < c.area ||
            e.power < c.power)
            return true;
    }
    return false;
}

PruneEntry
pruneEntryFor(const DesignPoint &p)
{
    const RfConfig rc = makeRfConfig(p.modelPoint());
    PruneEntry e;
    e.cache_kb = p.cache_kb;
    e.policy = p.policy;
    e.active_warps = p.active_warps;
    e.capacity = p.banks_mult * p.bank_size_mult;
    e.banks_mult = p.banks_mult;
    e.latency = rc.latency;
    e.area = rc.area;
    e.power = rc.power;
    return e;
}

Json
pointToJson(const PointResult &pr)
{
    const DesignPoint &p = pr.point;
    Json j = Json::object();
    j.set("key", p.key());
    j.set("tech", cellTechName(p.tech));
    j.set("banks_mult", p.banks_mult);
    j.set("bank_size_mult", p.bank_size_mult);
    j.set("network", pr.model.network);
    j.set("cache_kb", p.cache_kb);
    j.set("policy", prefetchPolicyName(p.policy));
    j.set("active_warps", p.active_warps);
    j.set("rf_config", pr.model.id);
    j.set("capacity", pr.model.capacity);
    j.set("area", pr.model.area);
    j.set("power", pr.model.power);
    j.set("latency", pr.model.latency);
    j.set("ipc", pr.obj.ipc);
    j.set("energy", pr.obj.energy);
    j.set("total_area", pr.obj.area);
    j.set("frontier", pr.on_frontier);
    return j;
}

} // namespace

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::GRID:       return "grid";
      case Strategy::RANDOM:     return "random";
      case Strategy::HILL_CLIMB: return "hill";
    }
    return "?";
}

bool
parseStrategy(const std::string &name, Strategy &out)
{
    const std::string low = lowered(name);
    if (low == "grid") {
        out = Strategy::GRID;
        return true;
    }
    if (low == "random") {
        out = Strategy::RANDOM;
        return true;
    }
    if (low == "hill" || low == "hillclimb" || low == "hill-climb") {
        out = Strategy::HILL_CLIMB;
        return true;
    }
    return false;
}

DseResult
explore(const DesignSpace &space, const ExploreOptions &opt)
{
    space.validate();
    if (opt.strategy != Strategy::GRID && opt.budget == 0)
        ltrf_fatal("--budget is required for the %s strategy (grid "
                   "alone may walk the whole space)",
                   strategyName(opt.strategy));

    std::vector<std::string> names = opt.workloads;
    if (names.empty())
        for (const Workload &w : WorkloadSuite::all())
            names.push_back(w.name);
    else
        for (const std::string &n : names)
            WorkloadSuite::byName(n);    // fatal(), listing names

    DseResult res;
    res.strategy = opt.strategy;
    res.budget = opt.budget;
    res.seed = opt.seed;
    res.workloads = names;
    res.num_sms = opt.num_sms;
    res.prune = opt.prune < 0 ? opt.strategy != Strategy::GRID
                              : opt.prune > 0;
    res.space_size = space.size();

    Evaluator ev(opt, names);
    ParetoFrontier frontier;
    std::vector<PruneEntry> prune_entries;

    // Distinct candidates admitted so far (evaluated + pruned);
    // the budget caps this count.
    std::uint64_t considered = 0;

    auto processBatch = [&](const std::vector<DesignPoint> &batch) {
        considered += batch.size();
        std::vector<DesignPoint> kept;
        for (const DesignPoint &p : batch) {
            if (res.prune &&
                modelDominated(prune_entries, pruneEntryFor(p))) {
                res.pruned++;
                continue;
            }
            kept.push_back(p);
        }
        for (PointResult &pr : ev.evaluate(kept)) {
            const int idx = static_cast<int>(res.evaluated.size());
            frontier.insert(idx, pr.obj);
            prune_entries.push_back(pruneEntryFor(pr.point));
            res.evaluated.push_back(std::move(pr));
        }
    };

    auto processAll = [&](const std::vector<DesignPoint> &cands) {
        for (std::size_t i = 0; i < cands.size(); i += POINT_BATCH) {
            std::vector<DesignPoint> batch(
                    cands.begin() + static_cast<std::ptrdiff_t>(i),
                    cands.begin() +
                            static_cast<std::ptrdiff_t>(std::min(
                                    i + POINT_BATCH, cands.size())));
            processBatch(batch);
        }
    };

    switch (opt.strategy) {
      case Strategy::GRID: {
          processAll(space.enumerate(opt.budget));
          break;
      }
      case Strategy::RANDOM: {
          Rng rng(opt.seed);
          std::set<std::string> seen;
          std::vector<DesignPoint> cands;
          // Distinct-point rejection sampling; the attempt cap only
          // matters when the budget nears the space size.
          std::uint64_t attempts = 0;
          const std::uint64_t max_attempts = opt.budget * 64 + 1024;
          while (cands.size() < opt.budget &&
                 seen.size() < space.size() &&
                 attempts++ < max_attempts) {
              DesignPoint p = space.sample(rng);
              if (seen.insert(p.key()).second)
                  cands.push_back(p);
          }
          processAll(cands);
          break;
      }
      case Strategy::HILL_CLIMB: {
          Rng rng(opt.seed);
          std::set<std::string> seen;
          std::set<std::string> expanded;
          DesignPoint start = space.pointAt(0);
          seen.insert(start.key());
          processBatch({start});
          while (considered < opt.budget) {
              // First frontier member (best IPC) not yet expanded.
              const DesignPoint *pick = nullptr;
              for (const ParetoFrontier::Member &m :
                   frontier.members()) {
                  const DesignPoint &p =
                          res.evaluated[static_cast<std::size_t>(
                                                m.point_index)]
                                  .point;
                  if (!expanded.count(p.key())) {
                      pick = &p;
                      break;
                  }
              }
              if (pick) {
                  expanded.insert(pick->key());
                  std::vector<DesignPoint> cands;
                  for (const DesignPoint &n : space.neighbors(*pick)) {
                      if (considered + cands.size() >= opt.budget)
                          break;
                      if (seen.insert(n.key()).second)
                          cands.push_back(n);
                  }
                  if (!cands.empty())
                      processBatch(cands);
                  continue;
              }
              // Every frontier member expanded: seeded restart.
              bool restarted = false;
              for (int tries = 0;
                   tries < 256 && seen.size() < space.size();
                   tries++) {
                  DesignPoint p = space.sample(rng);
                  if (seen.insert(p.key()).second) {
                      processBatch({p});
                      restarted = true;
                      break;
                  }
              }
              if (!restarted)
                  break;    // space exhausted
          }
          break;
      }
    }

    for (const ParetoFrontier::Member &m : frontier.members()) {
        res.frontier.push_back(m.point_index);
        res.evaluated[static_cast<std::size_t>(m.point_index)]
                .on_frontier = true;
    }
    res.sim_reuse = ev.simReuse();
    res.sim_cells = ev.simCells();
    return res;
}

Json
DseResult::toJson() const
{
    Json root = Json::object();
    root.set("schema", "ltrf.dse.v1");
    root.set("strategy", strategyName(strategy));
    root.set("budget", budget);
    // As a string, like ResultSet seeds: doubles round above 2^53.
    root.set("seed", std::to_string(seed));
    root.set("num_sms", num_sms);
    root.set("prune", prune);
    root.set("space_size", space_size);
    Json wl = Json::array();
    for (const std::string &w : workloads)
        wl.push(w);
    root.set("workloads", std::move(wl));

    Json counters = Json::object();
    counters.set("evaluated", std::uint64_t{evaluated.size()});
    counters.set("pruned", pruned);
    counters.set("sim_reuse", sim_reuse);
    counters.set("sim_cells", sim_cells);
    root.set("counters", std::move(counters));

    Json pts = Json::array();
    for (const PointResult &pr : evaluated)
        pts.push(pointToJson(pr));
    root.set("points", std::move(pts));

    Json front = Json::array();
    for (int idx : frontier)
        front.push(evaluated[static_cast<std::size_t>(idx)]
                           .point.key());
    root.set("frontier", std::move(front));
    return root;
}

std::string
DseResult::toCsv() const
{
    // Header and rows walk pointToJson()'s keys, so the column set
    // cannot drift from the JSON schema.
    std::string out;
    for (std::size_t i = 0; i < evaluated.size(); i++) {
        const Json j = pointToJson(evaluated[i]);
        if (i == 0) {
            bool first = true;
            for (const auto &[key, v] : j.items()) {
                (void)v;
                if (!first)
                    out += ',';
                first = false;
                out += key;
            }
            out += '\n';
        }
        bool first = true;
        for (const auto &[key, v] : j.items()) {
            (void)key;
            if (!first)
                out += ',';
            first = false;
            out += v.type() == Json::Type::STRING ? v.asString()
                                                  : v.dump();
        }
        out += '\n';
    }
    return out;
}

std::string
DseResult::dumpAs(harness::OutputFormat format) const
{
    return format == harness::OutputFormat::CSV
                   ? toCsv()
                   : toJson().dump(2) + "\n";
}

} // namespace ltrf::dse
