#include "dse/cell_store.hh"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hh"
#include "harness/json.hh"

namespace ltrf::dse
{

namespace
{

using harness::Json;

/**
 * Bump whenever a change can alter simulate()'s outputs for a fixed
 * (SimConfig, kernel, seed): timing model changes, new workload trace
 * generation, occupancy model tweaks, RNG stream reordering.
 */
constexpr int SIM_CONTENT_VERSION = 1;

/** Schema of the entry files themselves (not of the simulator). */
constexpr int CELL_SCHEMA = 1;

/** 64-bit FNV-1a over @p s, continuing from @p h. */
std::uint64_t
fnv1a(const std::string &s, std::uint64_t h)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * Extract object key @p k as a finite-typed number into @p v;
 * false if absent or not a number. The tolerant complement of
 * Json::at(), which is fatal on both failure modes.
 */
bool
getNum(const Json &j, const char *k, double &v)
{
    if (j.type() != Json::Type::OBJECT || !j.contains(k))
        return false;
    const Json &x = j.at(k);
    if (x.type() != Json::Type::NUMBER)
        return false;
    v = x.asDouble();
    return true;
}

bool
getStr(const Json &j, const char *k, std::string &v)
{
    if (j.type() != Json::Type::OBJECT || !j.contains(k))
        return false;
    const Json &x = j.at(k);
    if (x.type() != Json::Type::STRING)
        return false;
    v = x.asString();
    return true;
}

/** getNum() narrowed to a uint64 counter field. */
bool
getU64(const Json &j, const char *k, std::uint64_t &v)
{
    double d = 0.0;
    if (!getNum(j, k, d) || d < 0.0)
        return false;
    v = static_cast<std::uint64_t>(d);
    return true;
}

} // namespace

std::string
simVersionHash()
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a("ltrf-sim-v" + std::to_string(SIM_CONTENT_VERSION), h);
    // Struct-layout fingerprint: catches (some) forgotten bumps when
    // the config or result surface changes shape across rebuilds.
    h = fnv1a("|cfg=" + std::to_string(sizeof(SimConfig)) +
                      "|res=" + std::to_string(sizeof(SimResult)),
              h);
    return hex64(h);
}

CellStore::CellStore(std::string dir, std::string ctx, std::string ver)
    : root(std::move(dir)), context(std::move(ctx)),
      version(std::move(ver))
{
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec || !std::filesystem::is_directory(root)) {
        ltrf_fatal("--cache-dir %s: cannot create directory (%s)",
                   root.c_str(), ec.message().c_str());
    }
    group.add("hits", &hits_);
    group.add("misses", &misses_);
    group.add("stores", &stores_);
    group.add("errors", &errors_);
}

std::string
CellStore::entryPath(const std::string &sim_key,
                     const std::string &workload) const
{
    // Two FNV-1a streams over the same material with different seeds
    // give a 128-bit address; collisions are additionally caught by
    // the stored-key verification in load().
    const std::string material =
            version + "\x1f" + context + "\x1f" + sim_key + "\x1f" +
            workload;
    const std::uint64_t lo = fnv1a(material, 0xcbf29ce484222325ull);
    const std::uint64_t hi = fnv1a(material, 0x9ae16a3b2f90404full);
    return root + "/" + hex64(hi) + hex64(lo) + ".json";
}

bool
CellStore::load(const std::string &sim_key,
                const std::string &workload, SimResult &out)
{
    const std::string path = entryPath(sim_key, workload);

    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        // The common cold-cache case: nothing on disk yet.
        std::lock_guard<std::mutex> lk(mu);
        misses_++;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    const auto reject = [&](const char *why) {
        ltrf_warn_once("cell store: ignoring bad entry %s (%s); "
                       "re-simulating",
                       path.c_str(), why);
        std::lock_guard<std::mutex> lk(mu);
        errors_++;
        misses_++;
        return false;
    };

    Json j;
    if (!Json::tryParse(text, j))
        return reject("unparseable");
    if (j.type() != Json::Type::OBJECT ||
        j.numberOr("ltrf_cell_schema", 0) != CELL_SCHEMA) {
        return reject("unrecognized schema");
    }

    // Verify the stored key material: a 128-bit hash collision or a
    // hand-copied foreign entry must not smuggle in a wrong result.
    std::string v, c, k, w;
    if (!getStr(j, "sim_version", v) || !getStr(j, "context", c) ||
        !getStr(j, "sim_key", k) || !getStr(j, "workload", w)) {
        return reject("missing key fields");
    }
    if (v != version || c != context || k != sim_key || w != workload)
        return reject("key mismatch");

    if (!j.contains("result"))
        return reject("missing result");
    const Json &r = j.at("result");

    SimResult res;
    res.workload = workload;
    double warps = 0.0;
    const bool ok = getNum(r, "ipc", res.ipc) &&
                    getU64(r, "cycles", res.cycles) &&
                    getU64(r, "instructions", res.instructions) &&
                    getNum(r, "resident_warps", warps) &&
                    getU64(r, "main_accesses", res.main_accesses) &&
                    getU64(r, "cache_accesses", res.cache_accesses) &&
                    getU64(r, "wcb_accesses", res.wcb_accesses) &&
                    getU64(r, "xfer_regs", res.xfer_regs) &&
                    getU64(r, "prefetch_ops", res.prefetch_ops) &&
                    getU64(r, "writeback_regs", res.writeback_regs) &&
                    getU64(r, "prefetch_stall_cycles",
                           res.prefetch_stall_cycles) &&
                    getNum(r, "cache_hit_rate", res.cache_hit_rate) &&
                    getNum(r, "l1d_hit_rate", res.l1d_hit_rate) &&
                    getNum(r, "act_main",
                           res.activity.main_accesses_per_cycle) &&
                    getNum(r, "act_cache",
                           res.activity.cache_accesses_per_cycle) &&
                    getNum(r, "act_wcb",
                           res.activity.wcb_accesses_per_cycle) &&
                    getNum(r, "act_xfer",
                           res.activity.xfer_regs_per_cycle);
    if (!ok)
        return reject("incomplete result");
    res.resident_warps = static_cast<int>(warps);

    out = std::move(res);
    std::lock_guard<std::mutex> lk(mu);
    hits_++;
    return true;
}

void
CellStore::store(const std::string &sim_key,
                 const std::string &workload, const SimResult &r)
{
    Json res = Json::object();
    res.set("ipc", r.ipc);
    res.set("cycles", std::uint64_t(r.cycles));
    res.set("instructions", r.instructions);
    res.set("resident_warps", r.resident_warps);
    res.set("main_accesses", r.main_accesses);
    res.set("cache_accesses", r.cache_accesses);
    res.set("wcb_accesses", r.wcb_accesses);
    res.set("xfer_regs", r.xfer_regs);
    res.set("prefetch_ops", r.prefetch_ops);
    res.set("writeback_regs", r.writeback_regs);
    res.set("prefetch_stall_cycles", r.prefetch_stall_cycles);
    res.set("cache_hit_rate", r.cache_hit_rate);
    res.set("l1d_hit_rate", r.l1d_hit_rate);
    res.set("act_main", r.activity.main_accesses_per_cycle);
    res.set("act_cache", r.activity.cache_accesses_per_cycle);
    res.set("act_wcb", r.activity.wcb_accesses_per_cycle);
    res.set("act_xfer", r.activity.xfer_regs_per_cycle);

    Json j = Json::object();
    j.set("ltrf_cell_schema", CELL_SCHEMA);
    j.set("sim_version", version);
    j.set("context", context);
    j.set("sim_key", sim_key);
    j.set("workload", workload);
    j.set("result", std::move(res));
    const std::string text = j.dump(2) + "\n";

    // Atomic publish: write a thread-unique temp file in the same
    // directory, then rename over the final name. Readers either see
    // the old entry, no entry, or the complete new one — never a
    // torn write, even with concurrent shards on one cache dir.
    const std::string path = entryPath(sim_key, workload);
    const std::string tmp =
            path + ".tmp." +
            std::to_string(static_cast<unsigned long>(::getpid())) +
            "." + std::to_string(tmp_seq.fetch_add(1));

    const auto fail = [&](const char *what) {
        ltrf_warn_once("cell store: cannot %s %s; caching disabled "
                       "for affected cells",
                       what, tmp.c_str());
        std::remove(tmp.c_str());
        std::lock_guard<std::mutex> lk(mu);
        errors_++;
    };

    {
        std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
        if (!outf.is_open())
            return fail("create");
        outf << text;
        outf.flush();
        if (!outf.good())
            return fail("write");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return fail("publish");

    std::lock_guard<std::mutex> lk(mu);
    stores_++;
}

CellStore::Counts
CellStore::counts() const
{
    std::lock_guard<std::mutex> lk(mu);
    Counts c;
    c.hits = hits_.value();
    c.misses = misses_.value();
    c.stores = stores_.value();
    c.errors = errors_.value();
    return c;
}

} // namespace ltrf::dse
