/**
 * @file
 * Persistent, content-addressed store of simulated DSE cells.
 *
 * The explorer's in-memory cell cache (one slot per (simKey,
 * workload) pair) dies with the process, so resumed runs, shards of
 * one exploration, rung promotions in later invocations, and
 * separate users all re-simulate identical cells. The CellStore
 * persists each landed cell to disk in the style of a distributed
 * build cache: the filename is a content hash of everything that
 * determines the simulation's output —
 *
 *   simKey(cfg)  - the simulation-equivalence key of the
 *                  configuration (design, capacity, banks, latency,
 *                  cache bytes, warps, interval, collectors, DRAM
 *                  service),
 *   workload     - the workload name (the suite's kernels are
 *                  deterministic given the name and seed),
 *   context      - run parameters outside simKey that change the
 *                  result (SM count, workload seed),
 *   sim version  - a hash that must change whenever simulate()'s
 *                  outputs can change for a fixed (config, kernel,
 *                  seed); see simVersionHash().
 *
 * Because the version is part of the address, a simulator upgrade
 * invalidates the whole store passively: old entries are simply
 * never found again. Writes are atomic (temp file + rename), so
 * concurrent writers — shards of one exploration sharing a cache
 * directory, or unrelated runs — can race on the same entry and
 * readers still only ever observe complete entries. Loads are
 * corruption-tolerant: a truncated, malformed, or mismatched entry
 * is a warn-once miss that falls back to re-simulation, never a
 * crash.
 *
 * Hit/miss/store/error counters are registered in a StatGroup
 * ("cell_store") so the observability layer can surface them
 * alongside the rest of the stat trees.
 */

#ifndef LTRF_DSE_CELL_STORE_HH
#define LTRF_DSE_CELL_STORE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/stats.hh"
#include "sim/gpu.hh"

namespace ltrf::dse
{

/**
 * The current simulation content version. Composed of a manually
 * bumped tag — bump SIM_CONTENT_VERSION in cell_store.cc whenever a
 * change can alter simulate()'s outputs for a fixed (SimConfig,
 * kernel, seed) — plus a layout fingerprint of the config/result
 * structs as a safety net against forgotten bumps across rebuilds.
 */
std::string simVersionHash();

/** On-disk cell cache; safe to share across pool worker threads. */
class CellStore
{
  public:
    /**
     * Open (creating if needed) the store at @p dir. fatal() if the
     * directory cannot be created — a user pointed --cache-dir at an
     * unusable path.
     *
     * @param context run parameters baked into every entry address
     *                (SM count, workload seed), "key=value|..." text
     * @param version overrides simVersionHash() (tests only)
     */
    CellStore(std::string dir, std::string context,
              std::string version = simVersionHash());

    /**
     * Look the (sim_key, workload) cell up. On a hit, @p out carries
     * the persisted result (numeric fields; stall observability is
     * never persisted) and true returns. Any failure — absent entry,
     * unparseable JSON, a verification mismatch against the stored
     * key material, missing fields — is a miss; the non-absent
     * failures warn once and count as errors.
     */
    bool load(const std::string &sim_key, const std::string &workload,
              SimResult &out);

    /**
     * Persist @p r for the (sim_key, workload) cell. Write errors
     * warn once and count; the run continues uncached.
     */
    void store(const std::string &sim_key,
               const std::string &workload, const SimResult &r);

    /** Entry path for @p sim_key/@p workload (tests: corruption). */
    std::string entryPath(const std::string &sim_key,
                          const std::string &workload) const;

    const std::string &dir() const { return root; }

    struct Counts
    {
        std::uint64_t hits = 0;      ///< cells served from disk
        std::uint64_t misses = 0;    ///< absent entries (simulated)
        std::uint64_t stores = 0;    ///< entries written
        std::uint64_t errors = 0;    ///< bad entries + write failures
    };
    Counts counts() const;

    /** The "cell_store" stat group the counters are registered in. */
    const StatGroup &stats() const { return group; }

  private:
    std::string root;
    std::string context;
    std::string version;

    mutable std::mutex mu;    ///< guards the counters
    Counter hits_, misses_, stores_, errors_;
    StatGroup group{"cell_store"};

    /** Uniquifies temp names against sibling threads. */
    std::atomic<std::uint64_t> tmp_seq{0};
};

} // namespace ltrf::dse

#endif // LTRF_DSE_CELL_STORE_HH
