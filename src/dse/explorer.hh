/**
 * @file
 * Design-space exploration driver.
 *
 * The explorer evaluates candidate DesignPoints across the workload
 * suite on the harness thread pool and maintains the
 * IPC/energy/area Pareto frontier incrementally. Five strategies:
 *
 *  - GRID:       walk the (restricted) space exhaustively in
 *                enumeration order, up to the budget.
 *  - RANDOM:     seeded uniform sampling of distinct points.
 *  - HILL_CLIMB: expand single-step neighborhoods of frontier
 *                members, with seeded random restarts when every
 *                frontier member has been expanded.
 *  - EVOLVE:     NSGA-II-style evolutionary search: binary
 *                tournament selection on (non-domination rank,
 *                crowding distance), axis-wise crossover, and
 *                mutation to a random single-step neighbor.
 *  - HALVING:    successive-halving multi-fidelity search: each
 *                generation screens a fresh candidate pool on a
 *                small workload subset and promotes the top half to
 *                the full suite. Only full-fidelity results enter
 *                the frontier; promotions reuse the screened
 *                (config, workload) cells, never re-simulating them.
 *
 * Cost controls: points whose simulated configuration is identical
 * (simKey) are simulated once and share results; RANDOM and
 * HILL_CLIMB additionally prune candidates whose analytic scalars
 * are dominated by an already-evaluated point with the same
 * cache/policy/warp axes (a monotonicity heuristic — disabled by
 * default for GRID so exhaustive walks really are exhaustive, and
 * for the generational strategies so population sizes mean what
 * they say).
 *
 * Analytics and persistence: the report carries the frontier's
 * hypervolume (per generation for the generational strategies) and
 * can be fed back via ExploreOptions::resume — saved points re-seed
 * the frontier without re-simulation and, for EVOLVE, form the
 * initial population.
 *
 * Determinism: all strategy decisions (sampling, selection,
 * promotion, pruning, frontier updates) happen between fixed-size
 * candidate batches, every random draw comes from a seeded stream
 * derived only from (seed, purpose, generation/restart index), and
 * batch contents never depend on the job count — so the result, and
 * its serialized form, is byte-identical for any `--jobs` value.
 */

#ifndef LTRF_DSE_EXPLORER_HH
#define LTRF_DSE_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dse/frontier_io.hh"
#include "dse/hypervolume.hh"
#include "dse/pareto.hh"
#include "dse/space.hh"
#include "harness/emit.hh"
#include "harness/json.hh"

namespace ltrf::dse
{

enum class Strategy
{
    GRID,
    RANDOM,
    HILL_CLIMB,
    EVOLVE,
    HALVING,
};

/** @return "grid", "random", "hill", "evolve", or "halving". */
const char *strategyName(Strategy s);

/** Parse a strategyName() token (case-insensitive). */
bool parseStrategy(const std::string &name, Strategy &out);

struct ExploreOptions
{
    Strategy strategy = Strategy::GRID;

    /**
     * Maximum distinct candidate points considered (screened points
     * count). 0 means "the whole space" for GRID, "bounded by
     * generations x population" for EVOLVE/HALVING, and is a user
     * error for RANDOM/HILL_CLIMB (an unbounded random walk is
     * never intended).
     */
    std::uint64_t budget = 0;

    /** Search seed: drives sampling, restarts, and workload traces. */
    std::uint64_t seed = 2018;

    /** Workload names; empty = the full 14-workload suite. */
    std::vector<std::string> workloads;

    int num_sms = 4;

    /** Worker threads (0 = hardware concurrency). Results do not
     *  depend on it. */
    int jobs = 0;

    /** -1 = per-strategy default (RANDOM/HILL on, others off);
     *  0/1 force. */
    int prune = -1;

    /**
     * Space partitioning for sharded exploration: restrict grid
     * enumeration and every sampling draw (random, hill restarts,
     * evolve init, halving pools) to the shard_index-th of
     * shard_count balanced index-range stripes of the enumeration
     * order. Neighbor expansion and offspring may still step
     * outside the stripe (they follow the frontier, not the
     * partition). Shard reports merge via resume: run the next
     * shard with --resume on the previous shard's report and the
     * already-evaluated points are skipped as seen.
     */
    int shard_index = 0;
    int shard_count = 1;

    // ----- Generational strategies (EVOLVE, HALVING) -----

    /** Generations after the initial population (EVOLVE) or
     *  screening rounds (HALVING). 0 with a resume seed replays the
     *  saved frontier without any new simulation. */
    int generations = 8;

    /** Population (EVOLVE) / per-generation candidate pool
     *  (HALVING) size. */
    int population = 16;

    /**
     * HALVING's screening subset: explicit workload names (must be
     * drawn from the active suite), or empty = the first
     * screen_count workloads of the active suite.
     */
    std::vector<std::string> screen_workloads;
    int screen_count = 2;

    /** HALVING's promotion fraction: ceil(pool * promote_frac)
     *  screened candidates (at least one) advance to the full
     *  suite. Must lie in (0, 1); 0.5 is the classic top half. */
    double promote_frac = 0.5;

    /** Hypervolume reference point (see defaultHvRef()). */
    Objectives hv_ref = defaultHvRef();

    /**
     * Saved points to resume from (frontier_io). All of them
     * re-seed the frontier with their saved objectives — no
     * re-simulation — and the in-space ones join EVOLVE's initial
     * population. The saved workload list, SM count, and workload
     * seed must match the active ones: objectives measured under
     * different simulation parameters do not compare.
     */
    FrontierSeed resume;
};

/** One evaluated design point. */
struct PointResult
{
    DesignPoint point;
    /** Generated RF scalars; id != 0 marks a published Table 2 row. */
    RfConfig model;
    Objectives obj;
    bool on_frontier = false;
    /** Carried over from a saved report, not simulated in this run. */
    bool resumed = false;
    /** Generation that evaluated the point (-1 outside EVOLVE /
     *  HALVING and for resumed points). */
    int gen = -1;
};

/** The outcome of an exploration. */
struct DseResult
{
    // Inputs, echoed for the report.
    Strategy strategy = Strategy::GRID;
    std::uint64_t budget = 0;
    std::uint64_t seed = 0;
    std::vector<std::string> workloads;
    int num_sms = 0;
    bool prune = false;
    std::uint64_t space_size = 0;
    int generations = 0;
    int population = 0;
    std::vector<std::string> screen_workloads;    ///< HALVING only
    double promote_frac = 0.5;                    ///< HALVING only
    int shard_index = 0;
    int shard_count = 1;
    Objectives hv_ref;

    /** Evaluated points, in evaluation order (resumed seed first). */
    std::vector<PointResult> evaluated;
    /** Indices into evaluated, IPC-descending (frontier order). */
    std::vector<int> frontier;

    /** Frontier state after a generation (one entry, gen 0, for the
     *  non-generational strategies). */
    struct GenStat
    {
        int gen = 0;
        std::uint64_t evaluated = 0;    ///< cumulative full-fidelity
        std::uint64_t frontier_size = 0;
        double hypervolume = 0.0;
    };
    std::vector<GenStat> progress;

    /** Final frontier hypervolume against hv_ref. */
    double hv = 0.0;

    // Cost counters.
    std::uint64_t pruned = 0;       ///< candidates skipped by dominance
    std::uint64_t sim_reuse = 0;    ///< cells served from the sim cache
    std::uint64_t sim_cells = 0;    ///< (config, workload) cells simulated
    std::uint64_t screened = 0;     ///< points screened at low fidelity
    std::uint64_t resumed = 0;      ///< points seeded from --resume
    std::uint64_t restarts = 0;     ///< HILL_CLIMB seeded restarts

    /** Deterministic report (schema ltrf.dse.v3: per-point axis
     *  maps keyed by the axis registry, shard echo). */
    harness::Json toJson() const;
    /** One row per evaluated point, frontier flag included, then a
     *  per-generation hypervolume table. */
    std::string toCsv() const;
    /** toJson().dump(2)+"\n" or toCsv() per @p format. */
    std::string dumpAs(harness::OutputFormat format) const;
};

/**
 * Run the exploration. fatal() on invalid spaces, unknown workload
 * names, a missing budget for RANDOM/HILL_CLIMB, bad generational
 * parameters, or a resume seed measured on a different workload
 * suite.
 */
DseResult explore(const DesignSpace &space, const ExploreOptions &opt);

} // namespace ltrf::dse

#endif // LTRF_DSE_EXPLORER_HH
