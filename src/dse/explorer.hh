/**
 * @file
 * Design-space exploration driver.
 *
 * The explorer evaluates candidate DesignPoints across the workload
 * suite on the harness thread pool and maintains the
 * IPC/energy/area Pareto frontier incrementally. Five strategies:
 *
 *  - GRID:       walk the (restricted) space exhaustively in
 *                enumeration order, up to the budget.
 *  - RANDOM:     seeded uniform sampling of distinct points.
 *  - HILL_CLIMB: expand single-step neighborhoods of frontier
 *                members, with seeded random restarts when every
 *                frontier member has been expanded.
 *  - EVOLVE:     NSGA-II-style evolutionary search: binary
 *                tournament selection on (non-domination rank,
 *                crowding distance), axis-wise crossover, and
 *                mutation to a random single-step neighbor.
 *  - HALVING:    successive-halving multi-fidelity search: each
 *                generation screens a fresh candidate pool through a
 *                rung schedule of growing workload subsets,
 *                promoting the top promote_frac at every rung until
 *                the survivors reach the full suite (the default
 *                schedule is the classic two rungs: one screening
 *                subset, then everything). Only full-fidelity
 *                results enter the frontier; promotions reuse the
 *                screened (config, workload) cells, never
 *                re-simulating them.
 *
 * Cost controls: points whose simulated configuration is identical
 * (simKey) are simulated once and share results; RANDOM and
 * HILL_CLIMB additionally prune candidates whose analytic scalars
 * are dominated by an already-evaluated point with the same
 * cache/policy/warp axes (a monotonicity heuristic — disabled by
 * default for GRID so exhaustive walks really are exhaustive, and
 * for the generational strategies so population sizes mean what
 * they say). The heuristic's comparison set spans the network axis
 * (explicit `--networks` values, or the auto pairing's derived
 * values as the fallback); when the space pairs each bank count
 * with a single network the heuristic cannot fire, and enabling it
 * warns instead of silently pruning nothing (see pruneCanFire()).
 *
 * Analytics and persistence: the report carries the frontier's
 * hypervolume (per generation for the generational strategies) and
 * can be fed back via ExploreOptions::resume — saved points re-seed
 * the frontier without re-simulation and, for EVOLVE, form the
 * initial population.
 *
 * Determinism model: candidates are *admitted* to a cell-level
 * pipeline in a sequence that depends only on (seed, options) —
 * every admission decision (sampling, pruning, selection,
 * promotion) reads either seeded RNG streams, analytic scalars, or
 * results that were themselves committed deterministically — and
 * frontier/report *commits* happen strictly in admission order. In
 * between, each admitted (simKey, workload) cell is an independent
 * task on a work-stealing pool, so a straggler cell never gates the
 * cells admitted after it (the next halving pool's screens run
 * while a previous rung's promotions finish), yet the committed
 * result, and its serialized form, is byte-identical for any
 * `--jobs` value.
 *
 * GRID and RANDOM admit from streaming generators (a PointCursor
 * over the stripe, the sampling RNG) against a bounded pipeline
 * depth instead of materializing their candidate lists, so peak
 * memory is independent of the space size; the admission sequence —
 * and therefore every committed byte — is identical to the
 * materializing formulation. With ExploreOptions::cache_dir set,
 * each admitted cell is additionally served from / persisted to an
 * on-disk content-addressed store, replacing re-simulation across
 * processes without touching the report (a loaded cell folds
 * bit-identically to a fresh one).
 */

#ifndef LTRF_DSE_EXPLORER_HH
#define LTRF_DSE_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "dse/frontier_io.hh"
#include "dse/hypervolume.hh"
#include "dse/pareto.hh"
#include "dse/space.hh"
#include "harness/emit.hh"
#include "harness/json.hh"

namespace ltrf::obs
{
class TraceSink;
}

namespace ltrf::dse
{

enum class Strategy
{
    GRID,
    RANDOM,
    HILL_CLIMB,
    EVOLVE,
    HALVING,
};

/** @return "grid", "random", "hill", "evolve", or "halving". */
const char *strategyName(Strategy s);

/** Parse a strategyName() token (case-insensitive). */
bool parseStrategy(const std::string &name, Strategy &out);

struct ExploreOptions
{
    Strategy strategy = Strategy::GRID;

    /**
     * Maximum distinct candidate points considered (screened points
     * count). 0 means "the whole space" for GRID, "bounded by
     * generations x population" for EVOLVE/HALVING, and is a user
     * error for RANDOM/HILL_CLIMB (an unbounded random walk is
     * never intended).
     */
    std::uint64_t budget = 0;

    /** Search seed: drives sampling, restarts, and workload traces. */
    std::uint64_t seed = 2018;

    /** Workload names; empty = the full 14-workload suite. */
    std::vector<std::string> workloads;

    int num_sms = 4;

    /** Worker threads (0 = hardware concurrency). Results do not
     *  depend on it. */
    int jobs = 0;

    /** -1 = per-strategy default (RANDOM/HILL on, others off);
     *  0/1 force. */
    int prune = -1;

    /**
     * Space partitioning for sharded exploration: restrict grid
     * enumeration and every sampling draw (random, hill restarts,
     * evolve init, halving pools) to the shard_index-th of
     * shard_count balanced index-range stripes of the enumeration
     * order. Neighbor expansion and offspring may still step
     * outside the stripe (they follow the frontier, not the
     * partition). Shard reports merge via resume: run the next
     * shard with --resume on the previous shard's report and the
     * already-evaluated points are skipped as seen.
     */
    int shard_index = 0;
    int shard_count = 1;

    // ----- Generational strategies (EVOLVE, HALVING) -----

    /** Generations after the initial population (EVOLVE) or
     *  screening rounds (HALVING). 0 with a resume seed replays the
     *  saved frontier without any new simulation. */
    int generations = 8;

    /** Population (EVOLVE) / per-generation candidate pool
     *  (HALVING) size. */
    int population = 16;

    /**
     * HALVING's screening subset: explicit workload names (must be
     * drawn from the active suite), or empty = the first
     * screen_count workloads of the active suite.
     */
    std::vector<std::string> screen_workloads;
    int screen_count = 2;

    /** HALVING's promotion fraction, applied at every rung:
     *  ceil(rung pool * promote_frac) candidates (at least one)
     *  advance to the next rung. Must lie in (0, 1); 0.5 is the
     *  classic top half. */
    double promote_frac = 0.5;

    /**
     * HALVING's rung schedule: per-rung workload counts (each rung
     * evaluates the first N workloads of the active suite; 0 means
     * "all"). Counts must be strictly increasing and the last rung
     * must be the full suite. Empty = the legacy two-rung schedule
     * [screen subset, all] built from screen_workloads /
     * screen_count; a non-empty schedule excludes explicit
     * screen_workloads names (the schedule defines every subset).
     */
    std::vector<int> rungs;

    /** Hypervolume reference point (see defaultHvRef()). */
    Objectives hv_ref = defaultHvRef();

    // ----- Observability -----
    //
    // Neither knob reaches the report: DseResult::toJson() stays
    // byte-identical with both on, off, or anything in between.

    /**
     * Wall-clock Chrome-trace sink for harness pool activity: one
     * lane per pool worker with a span for every simulated cell
     * (screens, promotions, baseline fills), instants for batch
     * commits and rung promotions, and an in-flight-cells counter
     * track. Null = off.
     */
    obs::TraceSink *trace = nullptr;

    /** Rate-limited (>= 1 s apart) stderr heartbeat of cells landed
     *  vs submitted, plus a final pool wall-time summary. */
    bool progress = false;

    /**
     * Directory of the persistent cell store (dse/cell_store);
     * empty = off. Every (simKey, workload) cell a worker would
     * simulate is first looked up on disk and stored after
     * simulating, so a repeated run — same space, workloads, SM
     * count, and seed — performs zero simulations. Entries are
     * addressed by content (simKey + workload + SM/seed context +
     * simulator version), so runs with different parameters share a
     * directory without mixing results, and a simulator upgrade
     * invalidates stale entries passively. Like trace/progress, the
     * store never reaches the report: DseResult::toJson() is
     * byte-identical with a cold store, a warm store, or none.
     */
    std::string cache_dir;

    /**
     * Saved points to resume from (frontier_io). All of them
     * re-seed the frontier with their saved objectives — no
     * re-simulation — and the in-space ones join EVOLVE's initial
     * population. The saved workload list, SM count, and workload
     * seed must match the active ones: objectives measured under
     * different simulation parameters do not compare.
     */
    FrontierSeed resume;
};

/** One evaluated design point. */
struct PointResult
{
    DesignPoint point;
    /** Generated RF scalars; id != 0 marks a published Table 2 row. */
    RfConfig model;
    Objectives obj;
    bool on_frontier = false;
    /** Carried over from a saved report, not simulated in this run. */
    bool resumed = false;
    /** Generation that evaluated the point (-1 outside EVOLVE /
     *  HALVING and for resumed points). */
    int gen = -1;
};

/** The outcome of an exploration. */
struct DseResult
{
    // Inputs, echoed for the report.
    Strategy strategy = Strategy::GRID;
    std::uint64_t budget = 0;
    std::uint64_t seed = 0;
    std::vector<std::string> workloads;
    int num_sms = 0;
    bool prune = false;
    std::uint64_t space_size = 0;
    int generations = 0;
    int population = 0;
    std::vector<std::string> screen_workloads;    ///< HALVING only
    double promote_frac = 0.5;                    ///< HALVING only
    /** Resolved per-rung workload counts (HALVING only; the last
     *  entry is the full suite). */
    std::vector<int> rungs;
    int shard_index = 0;
    int shard_count = 1;
    Objectives hv_ref;

    /** Evaluated points, in evaluation order (resumed seed first). */
    std::vector<PointResult> evaluated;
    /** Indices into evaluated, IPC-descending (frontier order). */
    std::vector<int> frontier;

    /** Frontier state after a generation (one entry, gen 0, for the
     *  non-generational strategies). */
    struct GenStat
    {
        int gen = 0;
        std::uint64_t evaluated = 0;    ///< cumulative full-fidelity
        std::uint64_t frontier_size = 0;
        double hypervolume = 0.0;
    };
    std::vector<GenStat> progress;

    /** Final frontier hypervolume against hv_ref. */
    double hv = 0.0;

    // Cost counters.
    std::uint64_t pruned = 0;       ///< candidates skipped by dominance
    std::uint64_t sim_reuse = 0;    ///< cells served from the sim cache
    std::uint64_t sim_cells = 0;    ///< (config, workload) cells simulated
    std::uint64_t screened = 0;     ///< points screened below full fidelity
    std::uint64_t resumed = 0;      ///< points seeded from --resume
    std::uint64_t restarts = 0;     ///< HILL_CLIMB seeded restarts

    // ----- Side channels (never serialized: toJson()/toCsv() stay
    // byte-identical whether the run had a cold cell store, a warm
    // one, or none at all). -----

    /** Persistent cell store traffic (zero when cache_dir is off).
     *  store_misses counts the cells this run actually simulated;
     *  sim_cells above keeps meaning "cells claimed" so the report
     *  counter cannot depend on the store's temperature. */
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;
    std::uint64_t store_stores = 0;
    std::uint64_t store_errors = 0;
    /** Flattened obs stat tree ("cell_store.hits", ...) for
     *  `ltrf_dse --stats`; empty when cache_dir is off. */
    std::vector<StatLine> stats_lines;

    /** Points admitted to each rung, summed over generations
     *  (HALVING only; one entry per rung, the last being the
     *  full-fidelity entrants). */
    std::vector<std::uint64_t> rung_screened;
    /** Points promoted out of each rung (the last entry stays 0:
     *  full-fidelity survivors have nowhere further to go). */
    std::vector<std::uint64_t> rung_promoted;

    /** Deterministic report (schema ltrf.dse.v4: per-point axis
     *  maps keyed by the axis registry, shard echo, per-rung
     *  screened/promoted counters for HALVING). */
    harness::Json toJson() const;
    /** One row per evaluated point, frontier flag included, then a
     *  per-generation hypervolume table. */
    std::string toCsv() const;
    /** toJson().dump(2)+"\n" or toCsv() per @p format. */
    std::string dumpAs(harness::OutputFormat format) const;
};

/**
 * Run the exploration. fatal() on invalid spaces, unknown workload
 * names, a missing budget for RANDOM/HILL_CLIMB, bad generational
 * parameters, a malformed rung schedule, or a resume seed measured
 * on a different workload suite.
 */
DseResult explore(const DesignSpace &space, const ExploreOptions &opt);

/**
 * True when the model-dominance pruning heuristic can fire on
 * @p space at all. The analytic RF model is strictly monotone
 * within a technology (more capacity always costs more area and
 * power) and the four technologies form a latency/power Pareto
 * front by construction, so the heuristic's only dominance source
 * is two networks competing at one bank count — present exactly
 * when the network axis is an explicit list with both values. The
 * auto pairing (the fallback the prune context derives network
 * values from when `--networks` is not given) assigns each bank
 * count its dominant network, leaving nothing to prune; explore()
 * warns instead of silently pruning nothing in that case.
 */
bool pruneCanFire(const DesignSpace &space);

} // namespace ltrf::dse

#endif // LTRF_DSE_EXPLORER_HH
