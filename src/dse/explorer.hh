/**
 * @file
 * Design-space exploration driver.
 *
 * The explorer evaluates candidate DesignPoints across the workload
 * suite on the harness thread pool and maintains the
 * IPC/energy/area Pareto frontier incrementally. Three strategies:
 *
 *  - GRID:       walk the (restricted) space exhaustively in
 *                enumeration order, up to the budget.
 *  - RANDOM:     seeded uniform sampling of distinct points.
 *  - HILL_CLIMB: expand single-step neighborhoods of frontier
 *                members, with seeded random restarts when every
 *                frontier member has been expanded.
 *
 * Cost controls: points whose simulated configuration is identical
 * (simKey) are simulated once and share results; RANDOM and
 * HILL_CLIMB additionally prune candidates whose analytic scalars
 * are dominated by an already-evaluated point with the same
 * cache/policy/warp axes (a monotonicity heuristic — disabled by
 * default for GRID so exhaustive walks really are exhaustive).
 *
 * Determinism: all strategy decisions (sampling, pruning, frontier
 * updates) happen between fixed-size candidate batches, and batch
 * contents never depend on the job count — so the result, and its
 * serialized form, is byte-identical for any `--jobs` value.
 */

#ifndef LTRF_DSE_EXPLORER_HH
#define LTRF_DSE_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dse/pareto.hh"
#include "dse/space.hh"
#include "harness/emit.hh"
#include "harness/json.hh"

namespace ltrf::dse
{

enum class Strategy
{
    GRID,
    RANDOM,
    HILL_CLIMB,
};

/** @return "grid", "random", or "hill". */
const char *strategyName(Strategy s);

/** Parse "grid" / "random" / "hill" (case-insensitive). */
bool parseStrategy(const std::string &name, Strategy &out);

struct ExploreOptions
{
    Strategy strategy = Strategy::GRID;

    /**
     * Maximum distinct candidate points considered. 0 means "the
     * whole space" for GRID and is a user error for the other
     * strategies (an unbounded random walk is never intended).
     */
    std::uint64_t budget = 0;

    /** Search seed: drives sampling, restarts, and workload traces. */
    std::uint64_t seed = 2018;

    /** Workload names; empty = the full 14-workload suite. */
    std::vector<std::string> workloads;

    int num_sms = 4;

    /** Worker threads (0 = hardware concurrency). Results do not
     *  depend on it. */
    int jobs = 0;

    /** -1 = per-strategy default (GRID off, others on); 0/1 force. */
    int prune = -1;
};

/** One evaluated design point. */
struct PointResult
{
    DesignPoint point;
    /** Generated RF scalars; id != 0 marks a published Table 2 row. */
    RfConfig model;
    Objectives obj;
    bool on_frontier = false;
};

/** The outcome of an exploration. */
struct DseResult
{
    // Inputs, echoed for the report.
    Strategy strategy = Strategy::GRID;
    std::uint64_t budget = 0;
    std::uint64_t seed = 0;
    std::vector<std::string> workloads;
    int num_sms = 0;
    bool prune = false;
    std::uint64_t space_size = 0;

    /** Evaluated points, in evaluation order. */
    std::vector<PointResult> evaluated;
    /** Indices into evaluated, IPC-descending (frontier order). */
    std::vector<int> frontier;

    // Cost counters.
    std::uint64_t pruned = 0;       ///< candidates skipped by dominance
    std::uint64_t sim_reuse = 0;    ///< points served from the sim cache
    std::uint64_t sim_cells = 0;    ///< (config, workload) cells simulated

    /** Deterministic report (schema ltrf.dse.v1). */
    harness::Json toJson() const;
    /** One row per evaluated point, frontier flag included. */
    std::string toCsv() const;
    /** toJson().dump(2)+"\n" or toCsv() per @p format. */
    std::string dumpAs(harness::OutputFormat format) const;
};

/**
 * Run the exploration. fatal() on invalid spaces, unknown workload
 * names, or a missing budget for non-grid strategies.
 */
DseResult explore(const DesignSpace &space, const ExploreOptions &opt);

} // namespace ltrf::dse

#endif // LTRF_DSE_EXPLORER_HH
