/**
 * @file
 * Incremental Pareto frontier over the three DSE objectives:
 * normalized IPC (maximize), normalized register file energy
 * (minimize), and relative area including the register cache
 * (minimize).
 *
 * The frontier is maintained incrementally — every evaluated point
 * is offered once, dominated members are evicted on insert — and is
 * kept in a deterministic order (IPC descending, insertion index as
 * the tiebreak) so that serialized frontiers are byte-identical
 * regardless of thread count.
 */

#ifndef LTRF_DSE_PARETO_HH
#define LTRF_DSE_PARETO_HH

#include <vector>

namespace ltrf::dse
{

/** One point's objective vector. */
struct Objectives
{
    double ipc = 0.0;       ///< geomean normalized IPC (maximize)
    double energy = 0.0;    ///< mean normalized RF power (minimize)
    double area = 0.0;      ///< RF + cache area, baseline = 1 (minimize)
};

/**
 * @return true if @p a dominates @p b: no worse in every objective
 * and strictly better in at least one.
 */
bool dominates(const Objectives &a, const Objectives &b);

class ParetoFrontier
{
  public:
    struct Member
    {
        int point_index;    ///< caller's identifier (evaluation order)
        Objectives obj;
    };

    /**
     * Offer a point. If no member dominates it, it joins the
     * frontier (evicting members it dominates) and insert() returns
     * true. Points with identical objectives co-exist: neither
     * dominates the other.
     */
    bool insert(int point_index, const Objectives &obj);

    /** @return true if some member dominates @p obj. */
    bool dominated(const Objectives &obj) const;

    /** Members ordered by IPC descending, then insertion index. */
    const std::vector<Member> &members() const { return members_; }

    /** The members' objective vectors, in members() order (the
     *  hypervolume indicator's input). */
    std::vector<Objectives> objectives() const;

    std::size_t size() const { return members_.size(); }

  private:
    std::vector<Member> members_;
};

} // namespace ltrf::dse

#endif // LTRF_DSE_PARETO_HH
