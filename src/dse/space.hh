/**
 * @file
 * The LTRF design space: the cross product of the parametric
 * register file axes (cell technology x bank count x bank size x
 * network, via tech/rf_model) with the microarchitectural knobs the
 * paper sweeps one at a time (register cache size, prefetch policy,
 * active warp count — Figures 12-14) and the latency-tolerance
 * knobs the paper's central claim opens up (register-interval
 * length decoupled from the cache partition, operand-collector
 * count, DRAM bandwidth scaling).
 *
 * Every axis is declared exactly once, as an AxisDesc entry in
 * axisRegistry(): its report name, key-token codec, DesignPoint
 * accessors, DesignSpace allowed-value accessor, auto-derivation
 * rule, range check, and SimConfig application. All generic
 * machinery — enumeration, sampling, neighborhoods, containment,
 * validation, stable keys, crossover, report round-trips — iterates
 * the registry instead of hand-written per-axis code, so adding an
 * axis is one registry entry plus a DesignPoint field and a
 * DesignSpace value list.
 *
 * A DesignSpace is a set of allowed values per axis; it enumerates
 * deterministically (lexicographic, tech-major, last axis fastest),
 * samples uniformly, and yields single-step neighborhoods for
 * hill-climbing. Points are identified by a stable key string used
 * for deduplication, tagging sweep cells, and report output.
 */

#ifndef LTRF_DSE_SPACE_HH
#define LTRF_DSE_SPACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "tech/rf_model.hh"

namespace ltrf::dse
{

/**
 * How registers reach the operand collectors ahead of demand. Maps
 * onto the RfDesign the simulator implements; IDEAL is deliberately
 * absent — it is an oracle, not a buildable design point.
 */
enum class PrefetchPolicy
{
    NONE,           ///< no register cache (BL)
    HW_CACHE,       ///< demand-filled hardware cache (RFC)
    SW_CACHE,       ///< software-managed cache, strand allocation (SHRF)
    STRAND,         ///< LTRF prefetch at strand boundaries
    INTERVAL,       ///< LTRF prefetch at register-interval boundaries
    INTERVAL_PLUS,  ///< operand-liveness-aware LTRF (LTRF+)
};

/** @return the CLI token: "none", "rfc", "shrf", "strand", ... */
const char *prefetchPolicyName(PrefetchPolicy p);

/** The RfDesign the simulator runs for @p p. */
RfDesign policyDesign(PrefetchPolicy p);

/** @return the CLI token: "hp", "lstp", "tfet", "dwm". */
const char *cellTechToken(CellTech t);

/** @return the CLI token: "xbar" or "fbfly". */
const char *networkToken(NetworkKind n);

// Case-insensitive token parsers; return false on unknown names.
bool parseCellTech(const std::string &name, CellTech &out);
bool parseNetwork(const std::string &name, NetworkKind &out);
bool parsePolicy(const std::string &name, PrefetchPolicy &out);

/**
 * Registry index of each axis. The order is load-bearing: it is the
 * key segment order, the enumeration radix order (last axis
 * fastest), and the neighbor/crossover iteration order. Legacy
 * seven-axis keys (report schemas v1/v2) are a prefix of it.
 */
enum AxisId
{
    AXIS_TECH = 0,
    AXIS_BANKS,
    AXIS_BANK_SIZE,
    AXIS_NETWORK,
    AXIS_CACHE_KB,
    AXIS_POLICY,
    AXIS_WARPS,
    AXIS_INTERVAL,      ///< registers per interval (decoupled)
    AXIS_COLLECTORS,    ///< operand collectors per SM
    AXIS_DRAM,          ///< DRAM service cycles per line
    NUM_AXES,
};

/** Key segments in a legacy (schema v1/v2) design point key. */
constexpr int NUM_LEGACY_AXES = 7;

struct DesignPoint;
struct DesignSpace;

/**
 * One axis, declared once. Axis values are carried as plain ints in
 * generic code (enum axes store the enum cast to int); the typed
 * DesignPoint fields and DesignSpace value lists stay strongly
 * typed underneath, with the accessors below bridging the two.
 */
struct AxisDesc
{
    /** Report/axis-map name, e.g. "banks". */
    const char *name;
    /** CLI list flag that restricts this axis, e.g. "--banks". */
    const char *cli_flag;
    /** Consumed by the parametric RF model (tech layer) rather than
     *  an apply() write into SimConfig. */
    bool model_axis;
    /** True if the axis map serializes the value as a JSON number;
     *  false for token axes (tech/network/policy). */
    bool numeric;
    /** Stable key token for value @p v, prefix included ("b8"). */
    std::string (*token)(int v);
    /** Inverse of token(); false on malformed/unknown tokens. */
    bool (*parse)(const std::string &tok, int &v);
    int (*get)(const DesignPoint &p);
    void (*set)(DesignPoint &p, int v);
    /** This axis's allowed-value list in @p s, as ints. */
    std::vector<int> (*values)(const DesignSpace &s);
    /**
     * Derived value when the axis's allowed list is empty ("auto");
     * nullptr for axes that must not be empty. Derivations read
     * only non-derived axes, so one finalize() pass suffices.
     */
    int (*derive)(const DesignPoint &p);
    /** fatal() if @p v can never be simulated (range checks shared
     *  by space validation and saved-key parsing). */
    void (*check)(int v);
    /** Write the axis into the simulated configuration; nullptr for
     *  model axes (configFor applies those via applyRfModel). */
    void (*apply)(SimConfig &cfg, int v);
};

/** The axis registry, indexed by AxisId. */
const std::array<AxisDesc, NUM_AXES> &axisRegistry();

/** One candidate design: RF organization + microarchitecture knobs. */
struct DesignPoint
{
    CellTech tech = CellTech::HP_SRAM;
    int banks_mult = 1;
    int bank_size_mult = 1;
    NetworkKind network = NetworkKind::CROSSBAR;
    int cache_kb = 16;
    PrefetchPolicy policy = PrefetchPolicy::INTERVAL;
    int active_warps = 8;
    /** Registers per interval. Spaces with an empty interval axis
     *  derive it as the per-warp cache partition (the Figure 12/13
     *  methodology); the point always carries the concrete value. */
    int regs_per_interval = 16;
    int num_operand_collectors = 8;
    /** DRAM data-bus cycles per 128B line (bandwidth scale). */
    int dram_service_cycles = 1;

    /** The tech-layer axes of this point. */
    RfModelPoint modelPoint() const;

    /** Stable identity over all registry axes, e.g.
     *  "tfet/b8/z1/fbfly/c16/interval/w8/i16/o8/d1". */
    std::string key() const;

    bool operator==(const DesignPoint &o) const = default;
};

/**
 * Materialize the simulated configuration for @p p at @p num_sms
 * SMs: applyRfModel for the model axes, then every non-model axis's
 * registry apply() (cache size, design, active warps, interval
 * budget, operand collectors, DRAM service cycles).
 */
SimConfig configFor(const DesignPoint &p, int num_sms);

/**
 * Simulation-equivalence key of @p cfg: two design points with equal
 * sim keys produce identical simulations (e.g. crossbar vs butterfly
 * at 1x banks, where the latency model coincides), so the explorer
 * simulates once and reuses the results.
 */
std::string simKey(const SimConfig &cfg);

/** Allowed values per axis; the cross product is the search space. */
struct DesignSpace
{
    std::vector<CellTech> techs;
    std::vector<int> banks;         ///< banks_mult values
    std::vector<int> bank_sizes;    ///< bank_size_mult values
    /**
     * Empty means "auto": each point gets defaultNetwork() for its
     * bank count (the paper's pairing) instead of a network axis.
     */
    std::vector<NetworkKind> networks;
    std::vector<int> cache_kbs;
    std::vector<PrefetchPolicy> policies;
    std::vector<int> warps;
    /**
     * Registers per interval. Empty means "auto": each point's
     * interval budget matches its per-warp cache partition (the
     * paper's cache-size sweep methodology); a non-empty list
     * decouples the two.
     */
    std::vector<int> intervals;
    /** Operand collectors per SM. */
    std::vector<int> collectors = {8};
    /** DRAM service cycles per 128B line (bandwidth scaling). */
    std::vector<int> dram_service = {1};

    /**
     * The full space: all four technologies, 1-8x banks and bank
     * sizes, auto network, 8-32KB caches, interval prefetch, 4-16
     * active warps, auto interval length, 8 collectors, 1x DRAM
     * service.
     */
    static DesignSpace defaults();

    /** Number of points (product of non-empty axis sizes). */
    std::uint64_t size() const;

    /**
     * The @p index-th point in lexicographic order (registry order,
     * tech-major, last axis fastest).
     */
    DesignPoint pointAt(std::uint64_t index) const;

    /** Enumeration index of @p p; requires contains(p). */
    std::uint64_t indexOf(const DesignPoint &p) const;

    /** All points in pointAt() order (optionally the first @p limit). */
    std::vector<DesignPoint> enumerate(std::uint64_t limit = 0) const;

    /** A uniform sample (deterministic given @p rng's state). */
    DesignPoint sample(Rng &rng) const;

    /** Re-derive every auto axis of @p p (empty allowed list). */
    void finalize(DesignPoint &p) const;

    /**
     * All points one axis step away from @p p (previous/next allowed
     * value per axis), in registry order. Axes where @p p's value is
     * not in the allowed list contribute no neighbors; auto axes are
     * re-derived on every neighbor.
     */
    std::vector<DesignPoint> neighbors(const DesignPoint &p) const;

    /**
     * True if every axis value of @p p is allowed by this space
     * (auto axes must carry their derived value). Used when
     * resuming: points from a saved frontier seed the Pareto
     * frontier regardless, but only in-space points can join a
     * strategy's population.
     */
    bool contains(const DesignPoint &p) const;

    /** fatal() on empty axes or values the simulator cannot run. */
    void validate() const;
};

/**
 * Streaming generator over a contiguous stripe of a space's
 * enumeration order: yields pointAt(first), pointAt(first + 1), ...
 * one point at a time, without materializing the stripe.
 *
 * This is how the explorer admits candidates from very large spaces
 * (10^6-10^7 points): enumerate() would allocate every point up
 * front just to have most of them rejected by the budget, while a
 * cursor keeps peak memory independent of the space size. The cursor
 * caches the axis value lists once and steps a mixed-radix odometer,
 * so advancing is O(axes) with no per-point allocation; the yielded
 * sequence is exactly the pointAt() order (asserted by tests), so
 * admission order — and therefore every downstream report — is
 * unchanged relative to the materializing path.
 *
 * The referenced space must outlive the cursor and not change while
 * iterating.
 */
class PointCursor
{
  public:
    /**
     * Iterate the stripe [first, first + count) of @p s's
     * enumeration order, clamped to the space size. @p first at or
     * past size() yields an empty cursor, matching the explorer's
     * "shard past the end" case.
     */
    PointCursor(const DesignSpace &s, std::uint64_t first,
                std::uint64_t count);

    /** Yield the next point into @p out; false when exhausted. */
    bool next(DesignPoint &out);

    /** Enumeration index the next next() call will yield. */
    std::uint64_t index() const { return idx; }

  private:
    const DesignSpace *space;
    /** Non-empty axes in registry order with their value lists. */
    std::vector<std::pair<const AxisDesc *, std::vector<int>>> radix;
    /** Current mixed-radix digits, one per radix entry. */
    std::vector<std::size_t> digits;
    std::uint64_t idx = 0;        ///< enumeration index of digits
    std::uint64_t remaining = 0;  ///< points left to yield
};

} // namespace ltrf::dse

#endif // LTRF_DSE_SPACE_HH
