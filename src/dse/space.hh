/**
 * @file
 * The LTRF design space: the cross product of the parametric
 * register file axes (cell technology x bank count x bank size x
 * network, via tech/rf_model) with the microarchitectural knobs the
 * paper sweeps one at a time (register cache size, prefetch policy,
 * active warp count — Figures 12-14).
 *
 * A DesignSpace is a set of allowed values per axis; it enumerates
 * deterministically (lexicographic, tech-major), samples uniformly,
 * and yields single-step neighborhoods for hill-climbing. Points are
 * identified by a stable key string used for deduplication, tagging
 * sweep cells, and report output.
 */

#ifndef LTRF_DSE_SPACE_HH
#define LTRF_DSE_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "tech/rf_model.hh"

namespace ltrf::dse
{

/**
 * How registers reach the operand collectors ahead of demand. Maps
 * onto the RfDesign the simulator implements; IDEAL is deliberately
 * absent — it is an oracle, not a buildable design point.
 */
enum class PrefetchPolicy
{
    NONE,           ///< no register cache (BL)
    HW_CACHE,       ///< demand-filled hardware cache (RFC)
    SW_CACHE,       ///< software-managed cache, strand allocation (SHRF)
    STRAND,         ///< LTRF prefetch at strand boundaries
    INTERVAL,       ///< LTRF prefetch at register-interval boundaries
    INTERVAL_PLUS,  ///< operand-liveness-aware LTRF (LTRF+)
};

/** @return the CLI token: "none", "rfc", "shrf", "strand", ... */
const char *prefetchPolicyName(PrefetchPolicy p);

/** The RfDesign the simulator runs for @p p. */
RfDesign policyDesign(PrefetchPolicy p);

/** @return the CLI token: "hp", "lstp", "tfet", "dwm". */
const char *cellTechToken(CellTech t);

/** @return the CLI token: "xbar" or "fbfly". */
const char *networkToken(NetworkKind n);

// Case-insensitive token parsers; return false on unknown names.
bool parseCellTech(const std::string &name, CellTech &out);
bool parseNetwork(const std::string &name, NetworkKind &out);
bool parsePolicy(const std::string &name, PrefetchPolicy &out);

/** One candidate design: RF organization + cache/policy/warp knobs. */
struct DesignPoint
{
    CellTech tech = CellTech::HP_SRAM;
    int banks_mult = 1;
    int bank_size_mult = 1;
    NetworkKind network = NetworkKind::CROSSBAR;
    int cache_kb = 16;
    PrefetchPolicy policy = PrefetchPolicy::INTERVAL;
    int active_warps = 8;

    /** The tech-layer axes of this point. */
    RfModelPoint modelPoint() const;

    /** Stable identity, e.g. "tfet/b8/z1/fbfly/c16/interval/w8". */
    std::string key() const;

    bool operator==(const DesignPoint &o) const = default;
};

/**
 * Materialize the simulated configuration for @p p at @p num_sms
 * SMs: the generated RF scalars (capacity, latency, banks), the
 * cache size and active-warp pool, and a register-interval budget
 * matched to the per-warp cache partition (the Figure 12/13
 * methodology).
 */
SimConfig configFor(const DesignPoint &p, int num_sms);

/**
 * Simulation-equivalence key of @p cfg: two design points with equal
 * sim keys produce identical simulations (e.g. crossbar vs butterfly
 * at 1x banks, where the latency model coincides), so the explorer
 * simulates once and reuses the results.
 */
std::string simKey(const SimConfig &cfg);

/** Allowed values per axis; the cross product is the search space. */
struct DesignSpace
{
    std::vector<CellTech> techs;
    std::vector<int> banks;         ///< banks_mult values
    std::vector<int> bank_sizes;    ///< bank_size_mult values
    /**
     * Empty means "auto": each point gets defaultNetwork() for its
     * bank count (the paper's pairing) instead of a network axis.
     */
    std::vector<NetworkKind> networks;
    std::vector<int> cache_kbs;
    std::vector<PrefetchPolicy> policies;
    std::vector<int> warps;

    /**
     * The full space: all four technologies, 1-8x banks and bank
     * sizes, auto network, 8-32KB caches, interval prefetch, 4-16
     * active warps.
     */
    static DesignSpace defaults();

    /** Number of points (product of axis sizes). */
    std::uint64_t size() const;

    /**
     * The @p index-th point in lexicographic order (tech-major, then
     * banks, bank size, network, cache, policy, warps).
     */
    DesignPoint pointAt(std::uint64_t index) const;

    /** All points in pointAt() order (optionally the first @p limit). */
    std::vector<DesignPoint> enumerate(std::uint64_t limit = 0) const;

    /** A uniform sample (deterministic given @p rng's state). */
    DesignPoint sample(Rng &rng) const;

    /**
     * All points one axis step away from @p p (previous/next allowed
     * value per axis), in a deterministic order. Axes where @p p's
     * value is not in the allowed list contribute no neighbors.
     */
    std::vector<DesignPoint> neighbors(const DesignPoint &p) const;

    /**
     * True if every axis value of @p p is allowed by this space
     * (with an auto network axis, the network must be the default
     * pairing for @p p's bank count). Used when resuming: points
     * from a saved frontier seed the Pareto frontier regardless, but
     * only in-space points can join a strategy's population.
     */
    bool contains(const DesignPoint &p) const;

    /** fatal() on empty axes or values the simulator cannot run. */
    void validate() const;
};

} // namespace ltrf::dse

#endif // LTRF_DSE_SPACE_HH
