#include "dse/frontier_io.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"
#include "harness/emit.hh"

namespace ltrf::dse
{

using harness::Json;

namespace
{

/**
 * Rebuild a DesignPoint from its stable key
 * ("tech/bN/zN/net/cN/policy/wN"). The key is the report's identity
 * field and is made of the CLI tokens, unlike the human-readable
 * tech/network display columns.
 */
DesignPoint
parsePoint(const std::string &key)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : key) {
        if (c == '/') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    if (parts.size() != 7)
        ltrf_fatal("malformed design point key \"%s\"", key.c_str());

    auto number = [&](const std::string &s, char prefix) {
        if (s.size() < 2 || s[0] != prefix)
            ltrf_fatal("malformed axis \"%s\" in key \"%s\"",
                       s.c_str(), key.c_str());
        char *end = nullptr;
        const long n = std::strtol(s.c_str() + 1, &end, 10);
        if (end != s.c_str() + s.size())
            ltrf_fatal("malformed axis \"%s\" in key \"%s\"",
                       s.c_str(), key.c_str());
        return static_cast<int>(n);
    };

    DesignPoint p;
    if (!parseCellTech(parts[0], p.tech))
        ltrf_fatal("unknown tech \"%s\" in key \"%s\"",
                   parts[0].c_str(), key.c_str());
    p.banks_mult = number(parts[1], 'b');
    p.bank_size_mult = number(parts[2], 'z');
    if (!parseNetwork(parts[3], p.network))
        ltrf_fatal("unknown network \"%s\" in key \"%s\"",
                   parts[3].c_str(), key.c_str());
    p.cache_kb = number(parts[4], 'c');
    if (!parsePolicy(parts[5], p.policy))
        ltrf_fatal("unknown policy \"%s\" in key \"%s\"",
                   parts[5].c_str(), key.c_str());
    p.active_warps = number(parts[6], 'w');

    // Resumed points flow straight into the RF model, whose range
    // checks are asserts (internal errors) — a hand-edited report
    // is a user error and must die with a clean fatal() instead.
    auto pow2 = [](int v) { return v >= 1 && (v & (v - 1)) == 0; };
    if (!pow2(p.banks_mult) || p.banks_mult > 64)
        ltrf_fatal("banks multiplier in key \"%s\" must be a power "
                   "of two in [1, 64]", key.c_str());
    if (!pow2(p.bank_size_mult) || p.bank_size_mult > 64)
        ltrf_fatal("bank-size multiplier in key \"%s\" must be a "
                   "power of two in [1, 64]", key.c_str());
    if (p.cache_kb < 1)
        ltrf_fatal("cache size in key \"%s\" must be >= 1KB",
                   key.c_str());
    if (p.active_warps < 1)
        ltrf_fatal("active warp count in key \"%s\" must be >= 1",
                   key.c_str());
    return p;
}

} // namespace

FrontierSeed
parseDseReport(const Json &root)
{
    const std::string schema = root.stringOr("schema", "(missing)");
    if (schema != "ltrf.dse.v1" && schema != "ltrf.dse.v2")
        ltrf_fatal("not an ltrf_dse report: schema \"%s\" (expected "
                   "ltrf.dse.v1 or ltrf.dse.v2)",
                   schema.c_str());

    FrontierSeed seed;
    seed.strategy = root.stringOr("strategy", "");
    if (root.contains("seed")) {
        const std::string &s = root.at("seed").asString();
        char *end = nullptr;
        seed.seed = std::strtoull(s.c_str(), &end, 10);
        if (s.empty() || end != s.c_str() + s.size())
            ltrf_fatal("malformed seed \"%s\" in saved report",
                       s.c_str());
        seed.has_seed = true;
    }
    if (root.contains("num_sms")) {
        seed.num_sms =
                static_cast<int>(root.at("num_sms").asInt());
        seed.has_num_sms = true;
    }
    if (root.contains("workloads"))
        for (std::size_t i = 0; i < root.at("workloads").size(); i++)
            seed.workloads.push_back(
                    root.at("workloads").at(i).asString());

    const Json &points = root.at("points");
    for (std::size_t i = 0; i < points.size(); i++) {
        const Json &j = points.at(i);
        SeedPoint sp;
        sp.point = parsePoint(j.at("key").asString());
        sp.obj.ipc = j.at("ipc").asDouble();
        sp.obj.energy = j.at("energy").asDouble();
        sp.obj.area = j.at("total_area").asDouble();
        // Resumed objectives bypass evaluation, so a hand-edited
        // non-finite value (1e999 parses to +Inf) would otherwise
        // poison the frontier and only die at serialization time.
        if (!std::isfinite(sp.obj.ipc) ||
            !std::isfinite(sp.obj.energy) ||
            !std::isfinite(sp.obj.area))
            ltrf_fatal("non-finite objectives for \"%s\" in saved "
                       "report", sp.point.key().c_str());
        sp.on_frontier = j.boolOr("frontier", false);
        seed.points.push_back(sp);
    }

    // Cross-check the frontier list against the per-point flags: a
    // hand-edited report whose two views disagree is not resumable.
    if (root.contains("frontier")) {
        std::size_t flagged = 0;
        for (const SeedPoint &sp : seed.points)
            flagged += sp.on_frontier ? 1 : 0;
        if (flagged != root.at("frontier").size())
            ltrf_fatal("saved report is inconsistent: %zu points "
                       "flagged frontier but %zu frontier keys",
                       flagged, root.at("frontier").size());
    }
    return seed;
}

FrontierSeed
loadFrontierFile(const std::string &path)
{
    return parseDseReport(
            Json::parse(harness::readTextFile(path)));
}

} // namespace ltrf::dse
