#include "dse/frontier_io.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"
#include "harness/emit.hh"

namespace ltrf::dse
{

using harness::Json;

namespace
{

/**
 * Rebuild a DesignPoint from its stable key by walking the axis
 * registry ("tech/bN/zN/net/cN/policy/wN/iN/oN/dN"). Legacy keys
 * from v1/v2 reports carry only the first NUM_LEGACY_AXES segments;
 * the missing axes take their auto derivation (interval = the
 * per-warp cache partition, exactly what those reports simulated)
 * or the DesignPoint default, so a saved 7-axis report resumes
 * cleanly into the widened space.
 */
DesignPoint
parsePoint(const std::string &key)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : key) {
        if (c == '/') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    if (parts.size() != NUM_AXES &&
        parts.size() != NUM_LEGACY_AXES)
        ltrf_fatal("malformed design point key \"%s\"", key.c_str());

    DesignPoint p;
    const auto &registry = axisRegistry();
    for (std::size_t i = 0; i < registry.size(); i++) {
        const AxisDesc &a = registry[i];
        if (i >= parts.size()) {
            if (a.derive)
                a.set(p, a.derive(p));
            continue;    // otherwise: the DesignPoint default
        }
        int v = 0;
        if (!a.parse(parts[i], v))
            ltrf_fatal("malformed %s axis \"%s\" in key \"%s\"",
                       a.name, parts[i].c_str(), key.c_str());
        // Resumed points flow straight into the RF model, whose
        // range checks are asserts (internal errors) — a
        // hand-edited report is a user error and must die with a
        // clean fatal() instead.
        a.check(v);
        a.set(p, v);
    }
    return p;
}

} // namespace

FrontierSeed
parseDseReport(const Json &root)
{
    const std::string schema = root.stringOr("schema", "(missing)");
    if (schema != "ltrf.dse.v1" && schema != "ltrf.dse.v2" &&
        schema != "ltrf.dse.v3" && schema != "ltrf.dse.v4")
        ltrf_fatal("not an ltrf_dse report: schema \"%s\" (expected "
                   "ltrf.dse.v1 through v4)",
                   schema.c_str());

    FrontierSeed seed;
    seed.strategy = root.stringOr("strategy", "");
    if (root.contains("seed")) {
        const std::string &s = root.at("seed").asString();
        char *end = nullptr;
        seed.seed = std::strtoull(s.c_str(), &end, 10);
        if (s.empty() || end != s.c_str() + s.size())
            ltrf_fatal("malformed seed \"%s\" in saved report",
                       s.c_str());
        seed.has_seed = true;
    }
    if (root.contains("num_sms")) {
        seed.num_sms =
                static_cast<int>(root.at("num_sms").asInt());
        seed.has_num_sms = true;
    }
    if (root.contains("workloads"))
        for (std::size_t i = 0; i < root.at("workloads").size(); i++)
            seed.workloads.push_back(
                    root.at("workloads").at(i).asString());

    const Json &points = root.at("points");
    for (std::size_t i = 0; i < points.size(); i++) {
        const Json &j = points.at(i);
        SeedPoint sp;
        sp.point = parsePoint(j.at("key").asString());
        sp.obj.ipc = j.at("ipc").asDouble();
        sp.obj.energy = j.at("energy").asDouble();
        sp.obj.area = j.at("total_area").asDouble();
        // Resumed objectives bypass evaluation, so a hand-edited
        // non-finite value (1e999 parses to +Inf) would otherwise
        // poison the frontier and only die at serialization time.
        if (!std::isfinite(sp.obj.ipc) ||
            !std::isfinite(sp.obj.energy) ||
            !std::isfinite(sp.obj.area))
            ltrf_fatal("non-finite objectives for \"%s\" in saved "
                       "report", sp.point.key().c_str());
        sp.on_frontier = j.boolOr("frontier", false);
        seed.points.push_back(sp);
    }

    // Cross-check the frontier list against the per-point flags: a
    // hand-edited report whose two views disagree is not resumable.
    if (root.contains("frontier")) {
        std::size_t flagged = 0;
        for (const SeedPoint &sp : seed.points)
            flagged += sp.on_frontier ? 1 : 0;
        if (flagged != root.at("frontier").size())
            ltrf_fatal("saved report is inconsistent: %zu points "
                       "flagged frontier but %zu frontier keys",
                       flagged, root.at("frontier").size());
    }
    return seed;
}

FrontierSeed
loadFrontierFile(const std::string &path)
{
    return parseDseReport(
            Json::parse(harness::readTextFile(path)));
}

} // namespace ltrf::dse
