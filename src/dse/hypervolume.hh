/**
 * @file
 * Reference-point hypervolume indicator over the three DSE
 * objectives (IPC maximized; energy and area minimized).
 *
 * The hypervolume of a point set is the volume of objective space
 * dominated by the set and bounded by a reference point: the
 * standard scalar measure of frontier quality (larger is better).
 * Reported per generation by the evolutionary and
 * successive-halving strategies so a search's convergence is
 * visible in the report, and used by tests as a frontier-quality
 * invariant (inserting points can never shrink it).
 *
 * The computation is exact (a 3D sweep over the union of
 * reference-anchored boxes, O(n^2 log n)) and permutation-invariant
 * down to the bit: points are canonically sorted before any
 * floating-point accumulation, so the same point set always
 * produces the same double.
 */

#ifndef LTRF_DSE_HYPERVOLUME_HH
#define LTRF_DSE_HYPERVOLUME_HH

#include <vector>

#include "dse/pareto.hh"

namespace ltrf::dse
{

/**
 * The default reference point: IPC 0 (every design beats a stalled
 * GPU), energy 2.0 and area 8.0 (well above any sane design; the
 * worst Table 2 organizations sit near 1.0 energy and 4x area).
 * Override with `ltrf_dse --hv-ref`.
 */
Objectives defaultHvRef();

/**
 * Hypervolume of @p points against @p ref: the volume of the region
 * { ipc in [ref.ipc, p.ipc], energy in [p.energy, ref.energy],
 * area in [p.area, ref.area] } unioned over all points. Points that
 * do not strictly improve on the reference in every objective
 * contribute nothing; an empty set has hypervolume 0.
 */
double hypervolume(const std::vector<Objectives> &points,
                   const Objectives &ref);

} // namespace ltrf::dse

#endif // LTRF_DSE_HYPERVOLUME_HH
