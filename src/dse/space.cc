#include "dse/space.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/strutil.hh"
#include "common/types.hh"
#include "harness/json.hh"

namespace ltrf::dse
{

namespace
{

/** Index of @p v in @p axis, or -1. */
template <typename T>
int
axisIndex(const std::vector<T> &axis, const T &v)
{
    for (std::size_t i = 0; i < axis.size(); i++)
        if (axis[i] == v)
            return static_cast<int>(i);
    return -1;
}

} // namespace

const char *
prefetchPolicyName(PrefetchPolicy p)
{
    switch (p) {
      case PrefetchPolicy::NONE:          return "none";
      case PrefetchPolicy::HW_CACHE:      return "rfc";
      case PrefetchPolicy::SW_CACHE:      return "shrf";
      case PrefetchPolicy::STRAND:        return "strand";
      case PrefetchPolicy::INTERVAL:      return "interval";
      case PrefetchPolicy::INTERVAL_PLUS: return "interval+";
    }
    return "?";
}

RfDesign
policyDesign(PrefetchPolicy p)
{
    switch (p) {
      case PrefetchPolicy::NONE:          return RfDesign::BL;
      case PrefetchPolicy::HW_CACHE:      return RfDesign::RFC;
      case PrefetchPolicy::SW_CACHE:      return RfDesign::SHRF;
      case PrefetchPolicy::STRAND:        return RfDesign::LTRF_STRAND;
      case PrefetchPolicy::INTERVAL:      return RfDesign::LTRF;
      case PrefetchPolicy::INTERVAL_PLUS: return RfDesign::LTRF_PLUS;
    }
    return RfDesign::BL;
}

const char *
cellTechToken(CellTech t)
{
    switch (t) {
      case CellTech::HP_SRAM:   return "hp";
      case CellTech::LSTP_SRAM: return "lstp";
      case CellTech::TFET_SRAM: return "tfet";
      case CellTech::DWM:       return "dwm";
    }
    return "?";
}

const char *
networkToken(NetworkKind n)
{
    return n == NetworkKind::FLAT_BUTTERFLY ? "fbfly" : "xbar";
}

bool
parseCellTech(const std::string &name, CellTech &out)
{
    const std::string want = lowered(name);
    for (CellTech t : {CellTech::HP_SRAM, CellTech::LSTP_SRAM,
                       CellTech::TFET_SRAM, CellTech::DWM})
        if (want == cellTechToken(t)) {
            out = t;
            return true;
        }
    return false;
}

bool
parseNetwork(const std::string &name, NetworkKind &out)
{
    const std::string want = lowered(name);
    if (want == "xbar" || want == "crossbar") {
        out = NetworkKind::CROSSBAR;
        return true;
    }
    if (want == "fbfly" || want == "butterfly") {
        out = NetworkKind::FLAT_BUTTERFLY;
        return true;
    }
    return false;
}

bool
parsePolicy(const std::string &name, PrefetchPolicy &out)
{
    const std::string want = lowered(name);
    for (PrefetchPolicy p :
         {PrefetchPolicy::NONE, PrefetchPolicy::HW_CACHE,
          PrefetchPolicy::SW_CACHE, PrefetchPolicy::STRAND,
          PrefetchPolicy::INTERVAL, PrefetchPolicy::INTERVAL_PLUS})
        if (want == prefetchPolicyName(p)) {
            out = p;
            return true;
        }
    return false;
}

RfModelPoint
DesignPoint::modelPoint() const
{
    RfModelPoint mp;
    mp.tech = tech;
    mp.banks_mult = banks_mult;
    mp.bank_size_mult = bank_size_mult;
    mp.network = network;
    return mp;
}

std::string
DesignPoint::key() const
{
    std::string k = cellTechToken(tech);
    k += "/b" + std::to_string(banks_mult);
    k += "/z" + std::to_string(bank_size_mult);
    k += "/";
    k += networkToken(network);
    k += "/c" + std::to_string(cache_kb);
    k += "/";
    k += prefetchPolicyName(policy);
    k += "/w" + std::to_string(active_warps);
    return k;
}

SimConfig
configFor(const DesignPoint &p, int num_sms)
{
    SimConfig cfg;
    cfg.num_sms = num_sms;
    cfg.design = policyDesign(p.policy);
    applyRfModel(cfg, p.modelPoint());
    cfg.rf_cache_bytes =
            static_cast<std::size_t>(p.cache_kb) * 1024;
    cfg.num_active_warps = p.active_warps;
    // Match the interval budget to the per-warp cache partition, as
    // the paper's cache-size sweeps do (Figures 12/13).
    cfg.regs_per_interval = cfg.cacheRegsPerWarp();
    cfg.validate();
    return cfg;
}

std::string
simKey(const SimConfig &cfg)
{
    std::string k = rfDesignName(cfg.design);
    k += "|cap" + std::to_string(cfg.rf_capacity_mult);
    k += "|banks" + std::to_string(cfg.num_mrf_banks);
    k += "|lat" + harness::jsonNumberText(cfg.mrf_latency_mult);
    k += "|cache" + std::to_string(cfg.rf_cache_bytes);
    k += "|aw" + std::to_string(cfg.num_active_warps);
    k += "|ivl" + std::to_string(cfg.regs_per_interval);
    return k;
}

DesignSpace
DesignSpace::defaults()
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::LSTP_SRAM,
               CellTech::TFET_SRAM, CellTech::DWM};
    s.banks = {1, 2, 4, 8};
    s.bank_sizes = {1, 2, 4, 8};
    s.networks = {};    // auto: crossbar at 1x banks, butterfly above
    s.cache_kbs = {8, 16, 32};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {4, 8, 16};
    return s;
}

std::uint64_t
DesignSpace::size() const
{
    const std::uint64_t nets = networks.empty() ? 1 : networks.size();
    return static_cast<std::uint64_t>(techs.size()) * banks.size() *
           bank_sizes.size() * nets * cache_kbs.size() *
           policies.size() * warps.size();
}

DesignPoint
DesignSpace::pointAt(std::uint64_t index) const
{
    ltrf_assert(index < size(), "design point index %llu out of range",
                static_cast<unsigned long long>(index));
    DesignPoint p;
    // Mixed-radix decode, warps fastest.
    p.active_warps = warps[index % warps.size()];
    index /= warps.size();
    p.policy = policies[index % policies.size()];
    index /= policies.size();
    p.cache_kb = cache_kbs[index % cache_kbs.size()];
    index /= cache_kbs.size();
    if (networks.empty()) {
        // network decided by the bank count below
    } else {
        p.network = networks[index % networks.size()];
        index /= networks.size();
    }
    p.bank_size_mult = bank_sizes[index % bank_sizes.size()];
    index /= bank_sizes.size();
    p.banks_mult = banks[index % banks.size()];
    index /= banks.size();
    p.tech = techs[index % techs.size()];
    if (networks.empty())
        p.network = defaultNetwork(p.banks_mult);
    return p;
}

std::vector<DesignPoint>
DesignSpace::enumerate(std::uint64_t limit) const
{
    const std::uint64_t n =
            limit > 0 ? std::min(limit, size()) : size();
    std::vector<DesignPoint> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; i++)
        out.push_back(pointAt(i));
    return out;
}

DesignPoint
DesignSpace::sample(Rng &rng) const
{
    return pointAt(rng.nextBounded(size()));
}

std::vector<DesignPoint>
DesignSpace::neighbors(const DesignPoint &p) const
{
    std::vector<DesignPoint> out;
    auto step = [&](auto &axis, auto DesignPoint::*field,
                    bool renet = false) {
        int i = axisIndex(axis, p.*field);
        if (i < 0)
            return;
        for (int d : {-1, +1}) {
            int j = i + d;
            if (j < 0 || j >= static_cast<int>(axis.size()))
                continue;
            DesignPoint q = p;
            q.*field = axis[static_cast<std::size_t>(j)];
            if (renet && networks.empty())
                q.network = defaultNetwork(q.banks_mult);
            out.push_back(q);
        }
    };
    step(techs, &DesignPoint::tech);
    step(banks, &DesignPoint::banks_mult, /*renet=*/true);
    step(bank_sizes, &DesignPoint::bank_size_mult);
    if (!networks.empty())
        step(networks, &DesignPoint::network);
    step(cache_kbs, &DesignPoint::cache_kb);
    step(policies, &DesignPoint::policy);
    step(warps, &DesignPoint::active_warps);
    return out;
}

bool
DesignSpace::contains(const DesignPoint &p) const
{
    if (axisIndex(techs, p.tech) < 0 ||
        axisIndex(banks, p.banks_mult) < 0 ||
        axisIndex(bank_sizes, p.bank_size_mult) < 0 ||
        axisIndex(cache_kbs, p.cache_kb) < 0 ||
        axisIndex(policies, p.policy) < 0 ||
        axisIndex(warps, p.active_warps) < 0)
        return false;
    if (networks.empty())
        return p.network == defaultNetwork(p.banks_mult);
    return axisIndex(networks, p.network) >= 0;
}

void
DesignSpace::validate() const
{
    if (techs.empty() || banks.empty() || bank_sizes.empty() ||
        cache_kbs.empty() || policies.empty() || warps.empty())
        ltrf_fatal("design space has an empty axis");
    auto pow2 = [](int v) { return v >= 1 && (v & (v - 1)) == 0; };
    for (int b : banks)
        if (!pow2(b) || b > 64)
            ltrf_fatal("banks multiplier %d must be a power of two "
                       "in [1, 64]", b);
    for (int z : bank_sizes)
        if (!pow2(z) || z > 64)
            ltrf_fatal("bank-size multiplier %d must be a power of "
                       "two in [1, 64]", z);
    SimConfig def;
    for (int w : warps)
        if (w < 1 || w > def.max_warps_per_sm)
            ltrf_fatal("active warp count %d out of range [1, %d]", w,
                       def.max_warps_per_sm);
    for (int c : cache_kbs) {
        if (c < 1)
            ltrf_fatal("register cache size %dKB out of range", c);
        const int regs = c * 1024 / BYTES_PER_WARP_REG;
        for (int w : warps) {
            if (regs % w != 0)
                ltrf_fatal("register cache (%d regs at %dKB) not "
                           "divisible by %d active warps", regs, c, w);
            const int per_warp = regs / w;
            if (per_warp < 1 || per_warp > MAX_ARCH_REGS)
                ltrf_fatal("per-warp cache partition %d regs (cache "
                           "%dKB, %d warps) out of range", per_warp,
                           c, w);
        }
    }
}

} // namespace ltrf::dse
