#include "dse/space.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/parse_num.hh"
#include "common/strutil.hh"
#include "common/types.hh"
#include "harness/json.hh"

namespace ltrf::dse
{

namespace
{

/** Index of @p v in @p axis, or -1. */
int
axisIndex(const std::vector<int> &axis, int v)
{
    for (std::size_t i = 0; i < axis.size(); i++)
        if (axis[i] == v)
            return static_cast<int>(i);
    return -1;
}

/** "b8"-style integer token with a one-letter prefix. */
std::string
intToken(char prefix, int v)
{
    std::string s(1, prefix);
    s += std::to_string(v);
    return s;
}

bool
parseIntToken(char prefix, const std::string &tok, int &v)
{
    if (tok.size() < 2 || tok[0] != prefix)
        return false;
    // Checked parse: an out-of-int-range digit string in a saved key
    // is a malformed token, not a silently wrapped value.
    return parseInt(tok.substr(1), v);
}

bool
isPow2(int v)
{
    return v >= 1 && (v & (v - 1)) == 0;
}

std::vector<int>
asInts(const std::vector<int> &v)
{
    return v;
}

template <typename E>
std::vector<int>
asInts(const std::vector<E> &v)
{
    std::vector<int> out;
    out.reserve(v.size());
    for (E e : v)
        out.push_back(static_cast<int>(e));
    return out;
}

} // namespace

const char *
prefetchPolicyName(PrefetchPolicy p)
{
    switch (p) {
      case PrefetchPolicy::NONE:          return "none";
      case PrefetchPolicy::HW_CACHE:      return "rfc";
      case PrefetchPolicy::SW_CACHE:      return "shrf";
      case PrefetchPolicy::STRAND:        return "strand";
      case PrefetchPolicy::INTERVAL:      return "interval";
      case PrefetchPolicy::INTERVAL_PLUS: return "interval+";
    }
    return "?";
}

RfDesign
policyDesign(PrefetchPolicy p)
{
    switch (p) {
      case PrefetchPolicy::NONE:          return RfDesign::BL;
      case PrefetchPolicy::HW_CACHE:      return RfDesign::RFC;
      case PrefetchPolicy::SW_CACHE:      return RfDesign::SHRF;
      case PrefetchPolicy::STRAND:        return RfDesign::LTRF_STRAND;
      case PrefetchPolicy::INTERVAL:      return RfDesign::LTRF;
      case PrefetchPolicy::INTERVAL_PLUS: return RfDesign::LTRF_PLUS;
    }
    return RfDesign::BL;
}

const char *
cellTechToken(CellTech t)
{
    switch (t) {
      case CellTech::HP_SRAM:   return "hp";
      case CellTech::LSTP_SRAM: return "lstp";
      case CellTech::TFET_SRAM: return "tfet";
      case CellTech::DWM:       return "dwm";
    }
    return "?";
}

const char *
networkToken(NetworkKind n)
{
    return n == NetworkKind::FLAT_BUTTERFLY ? "fbfly" : "xbar";
}

bool
parseCellTech(const std::string &name, CellTech &out)
{
    const std::string want = lowered(name);
    for (CellTech t : {CellTech::HP_SRAM, CellTech::LSTP_SRAM,
                       CellTech::TFET_SRAM, CellTech::DWM})
        if (want == cellTechToken(t)) {
            out = t;
            return true;
        }
    return false;
}

bool
parseNetwork(const std::string &name, NetworkKind &out)
{
    const std::string want = lowered(name);
    if (want == "xbar" || want == "crossbar") {
        out = NetworkKind::CROSSBAR;
        return true;
    }
    if (want == "fbfly" || want == "butterfly") {
        out = NetworkKind::FLAT_BUTTERFLY;
        return true;
    }
    return false;
}

bool
parsePolicy(const std::string &name, PrefetchPolicy &out)
{
    const std::string want = lowered(name);
    for (PrefetchPolicy p :
         {PrefetchPolicy::NONE, PrefetchPolicy::HW_CACHE,
          PrefetchPolicy::SW_CACHE, PrefetchPolicy::STRAND,
          PrefetchPolicy::INTERVAL, PrefetchPolicy::INTERVAL_PLUS})
        if (want == prefetchPolicyName(p)) {
            out = p;
            return true;
        }
    return false;
}

const std::array<AxisDesc, NUM_AXES> &
axisRegistry()
{
    static const std::array<AxisDesc, NUM_AXES> registry = {{
        // AXIS_TECH
        {"tech", "--techs", /*model=*/true, /*numeric=*/false,
         [](int v) {
             return std::string(
                     cellTechToken(static_cast<CellTech>(v)));
         },
         [](const std::string &t, int &v) {
             CellTech c;
             if (!parseCellTech(t, c))
                 return false;
             v = static_cast<int>(c);
             return true;
         },
         [](const DesignPoint &p) { return static_cast<int>(p.tech); },
         [](DesignPoint &p, int v) {
             p.tech = static_cast<CellTech>(v);
         },
         [](const DesignSpace &s) { return asInts(s.techs); },
         nullptr, [](int) {}, nullptr},
        // AXIS_BANKS
        {"banks", "--banks", /*model=*/true, /*numeric=*/true,
         [](int v) { return intToken('b', v); },
         [](const std::string &t, int &v) {
             return parseIntToken('b', t, v);
         },
         [](const DesignPoint &p) { return p.banks_mult; },
         [](DesignPoint &p, int v) { p.banks_mult = v; },
         [](const DesignSpace &s) { return asInts(s.banks); },
         nullptr,
         [](int v) {
             if (!isPow2(v) || v > 64)
                 ltrf_fatal("banks multiplier %d must be a power of "
                            "two in [1, 64]", v);
         },
         nullptr},
        // AXIS_BANK_SIZE
        {"bank_size", "--bank-sizes", /*model=*/true, /*numeric=*/true,
         [](int v) { return intToken('z', v); },
         [](const std::string &t, int &v) {
             return parseIntToken('z', t, v);
         },
         [](const DesignPoint &p) { return p.bank_size_mult; },
         [](DesignPoint &p, int v) { p.bank_size_mult = v; },
         [](const DesignSpace &s) { return asInts(s.bank_sizes); },
         nullptr,
         [](int v) {
             if (!isPow2(v) || v > 64)
                 ltrf_fatal("bank-size multiplier %d must be a power "
                            "of two in [1, 64]", v);
         },
         nullptr},
        // AXIS_NETWORK
        {"network", "--networks", /*model=*/true, /*numeric=*/false,
         [](int v) {
             return std::string(
                     networkToken(static_cast<NetworkKind>(v)));
         },
         [](const std::string &t, int &v) {
             NetworkKind n;
             if (!parseNetwork(t, n))
                 return false;
             v = static_cast<int>(n);
             return true;
         },
         [](const DesignPoint &p) {
             return static_cast<int>(p.network);
         },
         [](DesignPoint &p, int v) {
             p.network = static_cast<NetworkKind>(v);
         },
         [](const DesignSpace &s) { return asInts(s.networks); },
         [](const DesignPoint &p) {
             return static_cast<int>(defaultNetwork(p.banks_mult));
         },
         [](int) {}, nullptr},
        // AXIS_CACHE_KB
        {"cache_kb", "--cache-kb", /*model=*/false, /*numeric=*/true,
         [](int v) { return intToken('c', v); },
         [](const std::string &t, int &v) {
             return parseIntToken('c', t, v);
         },
         [](const DesignPoint &p) { return p.cache_kb; },
         [](DesignPoint &p, int v) { p.cache_kb = v; },
         [](const DesignSpace &s) { return asInts(s.cache_kbs); },
         nullptr,
         [](int v) {
             if (v < 1)
                 ltrf_fatal("register cache size %dKB out of range",
                            v);
         },
         [](SimConfig &cfg, int v) {
             cfg.rf_cache_bytes =
                     static_cast<std::size_t>(v) * 1024;
         }},
        // AXIS_POLICY
        {"policy", "--policies", /*model=*/false, /*numeric=*/false,
         [](int v) {
             return std::string(prefetchPolicyName(
                     static_cast<PrefetchPolicy>(v)));
         },
         [](const std::string &t, int &v) {
             PrefetchPolicy p;
             if (!parsePolicy(t, p))
                 return false;
             v = static_cast<int>(p);
             return true;
         },
         [](const DesignPoint &p) { return static_cast<int>(p.policy); },
         [](DesignPoint &p, int v) {
             p.policy = static_cast<PrefetchPolicy>(v);
         },
         [](const DesignSpace &s) { return asInts(s.policies); },
         nullptr, [](int) {},
         [](SimConfig &cfg, int v) {
             cfg.design =
                     policyDesign(static_cast<PrefetchPolicy>(v));
         }},
        // AXIS_WARPS
        {"warps", "--warps", /*model=*/false, /*numeric=*/true,
         [](int v) { return intToken('w', v); },
         [](const std::string &t, int &v) {
             return parseIntToken('w', t, v);
         },
         [](const DesignPoint &p) { return p.active_warps; },
         [](DesignPoint &p, int v) { p.active_warps = v; },
         [](const DesignSpace &s) { return asInts(s.warps); },
         nullptr,
         [](int v) {
             const SimConfig def;
             if (v < 1 || v > def.max_warps_per_sm)
                 ltrf_fatal("active warp count %d out of range "
                            "[1, %d]", v, def.max_warps_per_sm);
         },
         [](SimConfig &cfg, int v) { cfg.num_active_warps = v; }},
        // AXIS_INTERVAL
        {"interval", "--intervals", /*model=*/false, /*numeric=*/true,
         [](int v) { return intToken('i', v); },
         [](const std::string &t, int &v) {
             return parseIntToken('i', t, v);
         },
         [](const DesignPoint &p) { return p.regs_per_interval; },
         [](DesignPoint &p, int v) { p.regs_per_interval = v; },
         [](const DesignSpace &s) { return asInts(s.intervals); },
         // Auto: the per-warp cache partition (Figures 12/13).
         [](const DesignPoint &p) {
             return p.cache_kb * 1024 / BYTES_PER_WARP_REG /
                    p.active_warps;
         },
         [](int v) {
             // Interval formation needs room for one 4-operand
             // instruction (register_interval.cc).
             if (v < 4 || v > MAX_ARCH_REGS)
                 ltrf_fatal("registers per interval %d out of range "
                            "[4, %d]", v, MAX_ARCH_REGS);
         },
         [](SimConfig &cfg, int v) { cfg.regs_per_interval = v; }},
        // AXIS_COLLECTORS
        {"collectors", "--collectors", /*model=*/false,
         /*numeric=*/true,
         [](int v) { return intToken('o', v); },
         [](const std::string &t, int &v) {
             return parseIntToken('o', t, v);
         },
         [](const DesignPoint &p) { return p.num_operand_collectors; },
         [](DesignPoint &p, int v) { p.num_operand_collectors = v; },
         [](const DesignSpace &s) { return asInts(s.collectors); },
         nullptr,
         [](int v) {
             const SimConfig def;
             if (v < def.issue_width || v > 64)
                 ltrf_fatal("operand collector count %d out of range "
                            "[%d, 64]", v, def.issue_width);
         },
         [](SimConfig &cfg, int v) {
             cfg.num_operand_collectors = v;
         }},
        // AXIS_DRAM
        {"dram_service", "--dram-service", /*model=*/false,
         /*numeric=*/true,
         [](int v) { return intToken('d', v); },
         [](const std::string &t, int &v) {
             return parseIntToken('d', t, v);
         },
         [](const DesignPoint &p) { return p.dram_service_cycles; },
         [](DesignPoint &p, int v) { p.dram_service_cycles = v; },
         [](const DesignSpace &s) { return asInts(s.dram_service); },
         nullptr,
         [](int v) {
             if (v < 1 || v > 64)
                 ltrf_fatal("DRAM service-cycle scale %d out of "
                            "range [1, 64]", v);
         },
         [](SimConfig &cfg, int v) { cfg.dram_service_cycles = v; }},
    }};
    return registry;
}

RfModelPoint
DesignPoint::modelPoint() const
{
    RfModelPoint mp;
    mp.tech = tech;
    mp.banks_mult = banks_mult;
    mp.bank_size_mult = bank_size_mult;
    mp.network = network;
    return mp;
}

std::string
DesignPoint::key() const
{
    std::string k;
    for (const AxisDesc &a : axisRegistry()) {
        if (!k.empty())
            k += '/';
        k += a.token(a.get(*this));
    }
    return k;
}

SimConfig
configFor(const DesignPoint &p, int num_sms)
{
    SimConfig cfg;
    cfg.num_sms = num_sms;
    applyRfModel(cfg, p.modelPoint());
    for (const AxisDesc &a : axisRegistry())
        if (a.apply)
            a.apply(cfg, a.get(p));
    cfg.validate();
    return cfg;
}

std::string
simKey(const SimConfig &cfg)
{
    std::string k = rfDesignName(cfg.design);
    k += "|cap" + std::to_string(cfg.rf_capacity_mult);
    k += "|banks" + std::to_string(cfg.num_mrf_banks);
    k += "|lat" + harness::jsonNumberText(cfg.mrf_latency_mult);
    k += "|cache" + std::to_string(cfg.rf_cache_bytes);
    k += "|aw" + std::to_string(cfg.num_active_warps);
    k += "|ivl" + std::to_string(cfg.regs_per_interval);
    k += "|oc" + std::to_string(cfg.num_operand_collectors);
    // The effective (SM-rescaled) value: knob settings that
    // quantize to the same bus occupancy simulate identically and
    // must share one simulation, like coinciding network latencies.
    k += "|dsc" + std::to_string(cfg.effectiveDramServiceCycles());
    return k;
}

DesignSpace
DesignSpace::defaults()
{
    DesignSpace s;
    s.techs = {CellTech::HP_SRAM, CellTech::LSTP_SRAM,
               CellTech::TFET_SRAM, CellTech::DWM};
    s.banks = {1, 2, 4, 8};
    s.bank_sizes = {1, 2, 4, 8};
    s.networks = {};    // auto: crossbar at 1x banks, butterfly above
    s.cache_kbs = {8, 16, 32};
    s.policies = {PrefetchPolicy::INTERVAL};
    s.warps = {4, 8, 16};
    s.intervals = {};    // auto: the per-warp cache partition
    s.collectors = {8};
    s.dram_service = {1};
    return s;
}

std::uint64_t
DesignSpace::size() const
{
    std::uint64_t n = 1;
    for (const AxisDesc &a : axisRegistry()) {
        const std::vector<int> vals = a.values(*this);
        n *= vals.empty() ? 1 : vals.size();
    }
    return n;
}

void
DesignSpace::finalize(DesignPoint &p) const
{
    for (const AxisDesc &a : axisRegistry())
        if (a.derive && a.values(*this).empty())
            a.set(p, a.derive(p));
}

DesignPoint
DesignSpace::pointAt(std::uint64_t index) const
{
    ltrf_assert(index < size(), "design point index %llu out of range",
                static_cast<unsigned long long>(index));
    DesignPoint p;
    // Mixed-radix decode in reverse registry order: the last
    // registry axis is the fastest; auto axes are derived below.
    const auto &registry = axisRegistry();
    for (std::size_t k = registry.size(); k-- > 0;) {
        const AxisDesc &a = registry[k];
        const std::vector<int> vals = a.values(*this);
        if (vals.empty())
            continue;
        a.set(p, vals[index % vals.size()]);
        index /= vals.size();
    }
    finalize(p);
    return p;
}

std::uint64_t
DesignSpace::indexOf(const DesignPoint &p) const
{
    std::uint64_t index = 0;
    for (const AxisDesc &a : axisRegistry()) {
        const std::vector<int> vals = a.values(*this);
        if (vals.empty())
            continue;
        const int i = axisIndex(vals, a.get(p));
        ltrf_assert(i >= 0, "indexOf() of a point outside the space "
                    "(%s axis)", a.name);
        index = index * vals.size() + static_cast<std::uint64_t>(i);
    }
    return index;
}

std::vector<DesignPoint>
DesignSpace::enumerate(std::uint64_t limit) const
{
    const std::uint64_t n =
            limit > 0 ? std::min(limit, size()) : size();
    std::vector<DesignPoint> out;
    // Cap the up-front reservation: a huge space (or a huge caller
    // limit) must not turn into one multi-GB allocation before a
    // single point exists. Past the cap the vector grows
    // geometrically like any other.
    constexpr std::uint64_t MAX_RESERVE = 4096;
    out.reserve(static_cast<std::size_t>(std::min(n, MAX_RESERVE)));
    PointCursor cur(*this, 0, n);
    for (DesignPoint p; cur.next(p);)
        out.push_back(p);
    return out;
}

PointCursor::PointCursor(const DesignSpace &s, std::uint64_t first,
                         std::uint64_t count)
    : space(&s)
{
    for (const AxisDesc &a : axisRegistry()) {
        std::vector<int> vals = a.values(s);
        if (!vals.empty())
            radix.emplace_back(&a, std::move(vals));
    }

    const std::uint64_t n = s.size();
    if (first >= n)
        return;
    remaining = std::min(count, n - first);
    idx = first;

    // Decode `first` into mixed-radix digits exactly the way
    // pointAt() does: reverse registry order, last axis fastest.
    digits.assign(radix.size(), 0);
    std::uint64_t rem = first;
    for (std::size_t k = radix.size(); k-- > 0;) {
        const std::size_t base = radix[k].second.size();
        digits[k] = static_cast<std::size_t>(rem % base);
        rem /= base;
    }
}

bool
PointCursor::next(DesignPoint &out)
{
    if (remaining == 0)
        return false;

    DesignPoint p;
    for (std::size_t k = 0; k < radix.size(); k++)
        radix[k].first->set(p, radix[k].second[digits[k]]);
    space->finalize(p);
    out = p;

    // Advance the odometer (last axis fastest), carrying left.
    for (std::size_t k = radix.size(); k-- > 0;) {
        if (++digits[k] < radix[k].second.size())
            break;
        digits[k] = 0;
    }
    idx++;
    remaining--;
    return true;
}

DesignPoint
DesignSpace::sample(Rng &rng) const
{
    return pointAt(rng.nextBounded(size()));
}

std::vector<DesignPoint>
DesignSpace::neighbors(const DesignPoint &p) const
{
    std::vector<DesignPoint> out;
    for (const AxisDesc &a : axisRegistry()) {
        const std::vector<int> vals = a.values(*this);
        if (vals.empty())
            continue;
        const int i = axisIndex(vals, a.get(p));
        if (i < 0)
            continue;
        for (int d : {-1, +1}) {
            const int j = i + d;
            if (j < 0 || j >= static_cast<int>(vals.size()))
                continue;
            DesignPoint q = p;
            a.set(q, vals[static_cast<std::size_t>(j)]);
            finalize(q);
            out.push_back(q);
        }
    }
    return out;
}

bool
DesignSpace::contains(const DesignPoint &p) const
{
    for (const AxisDesc &a : axisRegistry()) {
        const std::vector<int> vals = a.values(*this);
        if (vals.empty()) {
            // A non-derivable axis with no allowed values contains
            // nothing (validate() rejects such spaces as a user
            // error, but contains() must stay total).
            if (!a.derive || a.get(p) != a.derive(p))
                return false;
        } else if (axisIndex(vals, a.get(p)) < 0) {
            return false;
        }
    }
    return true;
}

void
DesignSpace::validate() const
{
    for (const AxisDesc &a : axisRegistry()) {
        const std::vector<int> vals = a.values(*this);
        if (vals.empty()) {
            if (!a.derive)
                ltrf_fatal("design space has an empty %s axis",
                           a.name);
            continue;
        }
        for (int v : vals)
            a.check(v);
    }
    // Cross-axis constraints the per-value checks cannot see: the
    // cache must partition evenly over the warps, and every explicit
    // interval length must fit the smallest per-warp partition it
    // can be paired with (grid enumeration walks the full cross
    // product, so one bad pairing is a user error up front).
    for (int c : cache_kbs) {
        const int regs = c * 1024 / BYTES_PER_WARP_REG;
        for (int w : warps) {
            if (regs % w != 0)
                ltrf_fatal("register cache (%d regs at %dKB) not "
                           "divisible by %d active warps", regs, c, w);
            const int per_warp = regs / w;
            if (per_warp < 1 || per_warp > MAX_ARCH_REGS)
                ltrf_fatal("per-warp cache partition %d regs (cache "
                           "%dKB, %d warps) out of range", per_warp,
                           c, w);
            for (int ivl : intervals)
                if (ivl > per_warp)
                    ltrf_fatal("interval length %d regs exceeds the "
                               "per-warp cache partition %d (cache "
                               "%dKB, %d warps)", ivl, per_warp, c,
                               w);
        }
    }
}

} // namespace ltrf::dse
