/**
 * @file
 * Frontier persistence: parse a saved `ltrf_dse` JSON report back
 * into design points + objectives so a search can resume from it.
 *
 * The report written by DseResult::toJson() is the save format —
 * there is no second serialization to drift from it. Every point in
 * the report (frontier members and dominated points alike) is
 * recovered: the frontier members re-seed the ParetoFrontier
 * byte-identically, and the full set gives generational strategies
 * their initial population. Objectives are recovered exactly (the
 * writer's %.17g numbers round-trip doubles), which the
 * resume-equivalence tests rely on.
 */

#ifndef LTRF_DSE_FRONTIER_IO_HH
#define LTRF_DSE_FRONTIER_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dse/pareto.hh"
#include "dse/space.hh"
#include "harness/json.hh"

namespace ltrf::dse
{

/** One point recovered from a saved report. */
struct SeedPoint
{
    DesignPoint point;
    Objectives obj;
    bool on_frontier = false;
};

/** A parsed report: the seed for a resumed exploration. */
struct FrontierSeed
{
    /** All evaluated points, in the original evaluation order. */
    std::vector<SeedPoint> points;
    /** The workload suite the objectives were measured on. */
    std::vector<std::string> workloads;
    /** Echoed report inputs; has_* distinguishes "saved as 0" from
     *  "absent from the report" for the resume-compatibility
     *  guards. */
    std::string strategy;
    std::uint64_t seed = 0;
    bool has_seed = false;
    int num_sms = 0;
    bool has_num_sms = false;

    bool empty() const { return points.empty(); }
};

/**
 * Parse a DseResult::toJson() report. fatal() on an unrecognized
 * schema or malformed point entries; accepts schema ltrf.dse.v1
 * (pre-resume reports), v2 (seven-axis keys; the widened-space
 * axes take their auto/default values), v3 (pre-rung reports —
 * the per-rung counters a resume ignores are simply absent), and
 * v4.
 */
FrontierSeed parseDseReport(const harness::Json &root);

/** readTextFile() + Json::parse() + parseDseReport(). */
FrontierSeed loadFrontierFile(const std::string &path);

} // namespace ltrf::dse

#endif // LTRF_DSE_FRONTIER_IO_HH
