#include "dse/hypervolume.hh"

#include <algorithm>
#include <array>

namespace ltrf::dse
{

namespace
{

/** A point's gains over the reference, all axes maximized. */
using Gain = std::array<double, 3>;

/**
 * Area of the union of origin-anchored rectangles [0,a]x[0,b].
 * @p rects must be sorted descending by first coordinate. The union
 * is integrated as sum over slabs of (slab width) x (max height of
 * rectangles wide enough to cover the slab).
 */
double
unionArea(const std::vector<std::array<double, 2>> &rects)
{
    double area = 0.0;
    double max_b = 0.0;
    for (std::size_t i = 0; i < rects.size(); i++) {
        max_b = std::max(max_b, rects[i][1]);
        const double next_a =
                i + 1 < rects.size() ? rects[i + 1][0] : 0.0;
        area += (rects[i][0] - next_a) * max_b;
    }
    return area;
}

} // namespace

Objectives
defaultHvRef()
{
    Objectives ref;
    ref.ipc = 0.0;
    ref.energy = 2.0;
    ref.area = 8.0;
    return ref;
}

double
hypervolume(const std::vector<Objectives> &points,
            const Objectives &ref)
{
    // Translate into gain space (all axes maximized, reference at
    // the origin); points at or beyond the reference contribute no
    // volume and are dropped so they cannot perturb the sums.
    std::vector<Gain> gains;
    gains.reserve(points.size());
    for (const Objectives &p : points) {
        Gain g{p.ipc - ref.ipc, ref.energy - p.energy,
               ref.area - p.area};
        if (g[0] > 0.0 && g[1] > 0.0 && g[2] > 0.0)
            gains.push_back(g);
    }
    // Canonical order before any accumulation: the result is a
    // function of the point *set*, bit-identical under permutation.
    std::sort(gains.begin(), gains.end(),
              [](const Gain &a, const Gain &b) {
                  if (a[0] != b[0])
                      return a[0] > b[0];
                  if (a[1] != b[1])
                      return a[1] > b[1];
                  return a[2] > b[2];
              });
    gains.erase(std::unique(gains.begin(), gains.end()), gains.end());

    // Sweep the first axis: between consecutive distinct g0 values
    // exactly the prefix of boxes is active, and the slab volume is
    // the slab width times the 2D union area of that prefix.
    double volume = 0.0;
    std::vector<std::array<double, 2>> rects;
    for (std::size_t i = 0; i < gains.size(); i++) {
        rects.push_back({gains[i][1], gains[i][2]});
        const double next_g0 =
                i + 1 < gains.size() ? gains[i + 1][0] : 0.0;
        const double width = gains[i][0] - next_g0;
        if (width == 0.0)
            continue;
        std::vector<std::array<double, 2>> sorted = rects;
        std::sort(sorted.begin(), sorted.end(),
                  [](const std::array<double, 2> &a,
                     const std::array<double, 2> &b) {
                      if (a[0] != b[0])
                          return a[0] > b[0];
                      return a[1] > b[1];
                  });
        volume += width * unionArea(sorted);
    }
    return volume;
}

} // namespace ltrf::dse
