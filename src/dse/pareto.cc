#include "dse/pareto.hh"

#include <algorithm>

namespace ltrf::dse
{

bool
dominates(const Objectives &a, const Objectives &b)
{
    if (a.ipc < b.ipc || a.energy > b.energy || a.area > b.area)
        return false;
    return a.ipc > b.ipc || a.energy < b.energy || a.area < b.area;
}

std::vector<Objectives>
ParetoFrontier::objectives() const
{
    std::vector<Objectives> out;
    out.reserve(members_.size());
    for (const Member &m : members_)
        out.push_back(m.obj);
    return out;
}

bool
ParetoFrontier::dominated(const Objectives &obj) const
{
    for (const Member &m : members_)
        if (dominates(m.obj, obj))
            return true;
    return false;
}

bool
ParetoFrontier::insert(int point_index, const Objectives &obj)
{
    if (dominated(obj))
        return false;
    members_.erase(std::remove_if(members_.begin(), members_.end(),
                                  [&](const Member &m) {
                                      return dominates(obj, m.obj);
                                  }),
                   members_.end());
    Member add{point_index, obj};
    auto pos = std::lower_bound(
            members_.begin(), members_.end(), add,
            [](const Member &a, const Member &b) {
                if (a.obj.ipc != b.obj.ipc)
                    return a.obj.ipc > b.obj.ipc;
                return a.point_index < b.point_index;
            });
    members_.insert(pos, add);
    return true;
}

} // namespace ltrf::dse
