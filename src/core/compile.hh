/**
 * @file
 * Per-design kernel compilation: interval/strand formation, PREFETCH
 * insertion, dead-operand annotation, SHRF register classification,
 * and per-warp trace generation.
 *
 * Different register file designs consume different compiled
 * artifacts (paper section 5): LTRF/LTRF+ need register-intervals,
 * LTRF(strand) and SHRF need strands, and BL/RFC/Ideal run the
 * unmodified kernel. This module produces the right artifact for the
 * design selected in the configuration.
 */

#ifndef LTRF_CORE_COMPILE_HH
#define LTRF_CORE_COMPILE_HH

#include <vector>

#include "common/config.hh"
#include "compiler/prefetch_insert.hh"
#include "compiler/register_interval.hh"
#include "compiler/trace_gen.hh"

namespace ltrf
{

/** A kernel compiled for one register file design. */
struct CompiledWorkload
{
    RfDesign design = RfDesign::BL;
    /**
     * Formation result; for designs without prefetching this wraps
     * the unmodified kernel with an empty interval list.
     */
    IntervalAnalysis analysis;
    /** Strand dynamics: re-prefetch when a header is re-entered. */
    bool strand_semantics = false;
    /**
     * SHRF [20]: per-interval set of compiler-cache-allocated
     * registers (strand-local temporaries: neither live-in nor
     * live-out of the strand). Accesses to these hit the register
     * file cache; everything else goes to the main register file.
     */
    std::vector<RegBitVec> shrf_cached;
    /** Code-size accounting (prefetch designs only). */
    PrefetchCodeSize code_size;
    /** Per-warp dynamic traces (max_warps_per_sm entries). */
    std::vector<WarpTrace> traces;

    const Kernel &kernel() const { return analysis.kernel; }

    /** Interval of block @p b, or UNKNOWN_INTERVAL. */
    IntervalId
    intervalOf(BlockId b) const
    {
        return analysis.block_interval.empty()
                       ? UNKNOWN_INTERVAL
                       : analysis.block_interval[b];
    }
};

/**
 * The static half of compilation: formation, PREFETCH insertion,
 * SHRF classification, and dead-operand annotation for the design in
 * @p cfg — everything except trace generation (the result's `traces`
 * is left empty). This is what the static verifier inspects; the
 * `--verify-only` CLI mode uses it to check the whole suite without
 * paying for per-warp traces.
 */
CompiledWorkload compileWorkloadStatic(const Kernel &kernel,
                                       const SimConfig &cfg);

/**
 * Compile @p kernel for the design in @p cfg and generate
 * per-warp traces seeded from @p seed.
 *
 * @param max_trace_instrs safety cap per warp trace
 */
CompiledWorkload compileWorkload(const Kernel &kernel, const SimConfig &cfg,
                                 std::uint64_t seed,
                                 std::uint64_t max_trace_instrs = 1u << 20);

} // namespace ltrf

#endif // LTRF_CORE_COMPILE_HH
