#include "core/alloc_unit.hh"

#include "common/log.hh"

namespace ltrf
{

AllocUnit::AllocUnit(int n) : allocated(static_cast<size_t>(n), 0)
{
    ltrf_assert(n >= 1, "allocation unit needs at least one entry");
    for (int i = 0; i < n; i++)
        unused.push_back(i);
}

int
AllocUnit::allocate()
{
    ltrf_assert(!unused.empty(), "allocation unit exhausted");
    int id = unused.front();
    unused.pop_front();
    allocated[id] = 1;
    return id;
}

void
AllocUnit::release(int id)
{
    ltrf_assert(id >= 0 && id < capacity(), "release of bad id %d", id);
    ltrf_assert(allocated[id], "double release of id %d", id);
    allocated[id] = 0;
    unused.push_back(id);
}

bool
AllocUnit::isAllocated(int id) const
{
    ltrf_assert(id >= 0 && id < capacity(), "query of bad id %d", id);
    return allocated[id];
}

void
AllocUnit::reset()
{
    unused.clear();
    for (size_t i = 0; i < allocated.size(); i++) {
        allocated[i] = 0;
        unused.push_back(static_cast<int>(i));
    }
}

} // namespace ltrf
