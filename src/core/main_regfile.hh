/**
 * @file
 * Banked main register file timing model.
 *
 * Banks accept one access per cycle (pipelined) and return data after
 * the access latency; concurrent accesses to the same bank serialize
 * by one cycle each. The performance cost of a slow register file
 * does not come from bank bandwidth but from occupancy upstream: the
 * issuing instruction holds an operand collector for the full read
 * latency (see Sm), which is exactly how GPGPU-Sim's operand
 * collection exposes register file latency. Registers of a warp are
 * interleaved across banks by (warp + register) so that bulk
 * prefetches spread across all banks.
 */

#ifndef LTRF_CORE_MAIN_REGFILE_HH
#define LTRF_CORE_MAIN_REGFILE_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltrf
{

/** Timing model of the banked main register file of one SM. */
class MainRegFile
{
  public:
    /**
     * @param num_banks number of banks (Table 3: 16)
     * @param latency   non-pipelined bank access latency in cycles
     */
    MainRegFile(int num_banks, int latency);

    /**
     * Access register @p r of warp @p w starting no earlier than
     * @p now. The bank accepts one access per cycle.
     * @return the cycle the data is available.
     */
    Cycle access(WarpId w, RegId r, Cycle now);

    /**
     * Record a result write that retires at some future completion
     * time. Writes go through dedicated write ports and must never
     * delay the in-order read stream that is being scheduled at the
     * current cycle, so only the access count (for the power model)
     * is updated.
     */
    void
    recordWrite(WarpId w, RegId r)
    {
        (void)w;
        (void)r;
        stat_accesses++;
    }

    /** Bank mapping: registers interleave by warp and register id. */
    int
    bankOf(WarpId w, RegId r) const
    {
        return static_cast<int>((w + r) % static_cast<int>(banks.size()));
    }

    int numBanks() const { return static_cast<int>(banks.size()); }
    int latency() const { return access_latency; }

    std::uint64_t accesses() const { return stat_accesses.value(); }
    std::uint64_t conflictCycles() const { return stat_conflicts.value(); }

  private:
    std::vector<Cycle> banks;   ///< busy-until per bank
    int access_latency;

    StatGroup stat_group;
    Counter stat_accesses;
    Counter stat_conflicts;     ///< cycles spent waiting on busy banks
};

} // namespace ltrf

#endif // LTRF_CORE_MAIN_REGFILE_HH
