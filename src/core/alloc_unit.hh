/**
 * @file
 * Address Allocation Unit (paper Figure 8).
 *
 * Two hardware queues track free and allocated identifiers: the
 * unused queue supplies the next free register-cache bank (or warp
 * offset) on allocation, and deallocated entries return to it. One
 * instance per warp manages cache-bank slots; a global instance
 * manages warp-offset addresses.
 */

#ifndef LTRF_CORE_ALLOC_UNIT_HH
#define LTRF_CORE_ALLOC_UNIT_HH

#include <deque>
#include <vector>

#include "common/types.hh"

namespace ltrf
{

/** FIFO allocator over identifiers [0, n). */
class AllocUnit
{
  public:
    explicit AllocUnit(int n);

    /** Pop the head of the unused queue; panics if empty. */
    int allocate();

    /** Return @p id to the unused queue; panics on double free. */
    void release(int id);

    int freeCount() const { return static_cast<int>(unused.size()); }
    int capacity() const { return static_cast<int>(allocated.size()); }
    bool isAllocated(int id) const;

    /** Release everything (warp teardown). */
    void reset();

  private:
    std::deque<int> unused;
    std::vector<char> allocated;
};

} // namespace ltrf

#endif // LTRF_CORE_ALLOC_UNIT_HH
