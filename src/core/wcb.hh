/**
 * @file
 * Warp Control Block (paper Figure 7).
 *
 * Per-warp metadata controlling register prefetching and locating
 * architectural registers inside the register file cache: a 256-entry
 * register-cache address table (bank number per architectural
 * register, with a valid bit), the warp-offset address, the
 * working-set bit-vector, and — for LTRF+ — the liveness bit-vector.
 */

#ifndef LTRF_CORE_WCB_HH
#define LTRF_CORE_WCB_HH

#include <array>

#include "common/bitvec.hh"
#include "common/types.hh"

namespace ltrf
{

/** One warp's control block. */
class Wcb
{
  public:
    Wcb() { reset(); }

    /** Map register @p r to cache bank @p bank and mark it resident. */
    void
    setEntry(RegId r, int bank)
    {
        bank_of[r] = static_cast<std::int8_t>(bank);
        resident_set.set(r);
    }

    /** Drop register @p r's mapping. @return the bank it occupied. */
    int
    clearEntry(RegId r)
    {
        ltrf_assert(resident_set.test(r), "clearing non-resident r%d", r);
        resident_set.clear(r);
        return bank_of[r];
    }

    /** @return the cache bank holding register @p r. */
    int
    bank(RegId r) const
    {
        ltrf_assert(resident_set.test(r), "lookup of non-resident r%d", r);
        return bank_of[r];
    }

    bool resident(RegId r) const { return resident_set.test(r); }
    const RegBitVec &residentSet() const { return resident_set; }

    // ----- Working-set bit-vector (valid bits) -----

    void setWorkingSet(const RegBitVec &ws) { working_set = ws; }
    const RegBitVec &workingSet() const { return working_set; }

    // ----- Liveness bit-vector (LTRF+) -----

    void markLive(RegId r) { liveness.set(r); }
    void markDead(RegId r) { liveness.clear(r); }
    bool live(RegId r) const { return liveness.test(r); }
    const RegBitVec &livenessSet() const { return liveness; }

    // ----- Warp-offset address -----

    void setWarpOffset(int off) { warp_offset = off; }
    int warpOffset() const { return warp_offset; }

    /** Clear all state (warp start: everything dead, nothing cached). */
    void
    reset()
    {
        bank_of.fill(-1);
        resident_set.reset();
        working_set.reset();
        liveness.reset();
        warp_offset = -1;
    }

    /**
     * Storage cost in bits for one warp (paper section 4.3):
     * 256 x 5-bit table entries (4-bit bank + valid), 3-bit warp
     * offset, 256-bit working-set and liveness vectors. For 64 warps
     * this totals 114880 bits per SM.
     */
    static constexpr int
    bitsPerWarp()
    {
        return MAX_ARCH_REGS * 5 + 3 + MAX_ARCH_REGS + MAX_ARCH_REGS;
    }

  private:
    std::array<std::int8_t, MAX_ARCH_REGS> bank_of;
    RegBitVec resident_set;
    RegBitVec working_set;
    RegBitVec liveness;
    int warp_offset = -1;
};

} // namespace ltrf

#endif // LTRF_CORE_WCB_HH
