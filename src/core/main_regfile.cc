#include "core/main_regfile.hh"

#include <algorithm>

#include "common/log.hh"

namespace ltrf
{

MainRegFile::MainRegFile(int num_banks, int latency)
    : banks(static_cast<size_t>(num_banks), 0), access_latency(latency),
      stat_group("mrf")
{
    ltrf_assert(num_banks >= 1, "need at least one MRF bank");
    ltrf_assert(latency >= 1, "MRF latency must be >= 1 cycle");
    stat_group.add("accesses", &stat_accesses);
    stat_group.add("conflict_cycles", &stat_conflicts);
}

Cycle
MainRegFile::access(WarpId w, RegId r, Cycle now)
{
    Cycle &busy = banks[bankOf(w, r)];
    Cycle start = std::max(now, busy);
    if (start > now)
        stat_conflicts += start - now;
    busy = start + 1;   // pipelined: one new access per cycle
    stat_accesses++;
    return start + access_latency;
}

} // namespace ltrf
