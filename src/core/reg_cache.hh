/**
 * @file
 * Register file cache bank timing model.
 *
 * The cache has #Registers_per_Interval banks, each hosting one
 * register slot per active warp (paper Figure 5). Banks are fast and
 * pipelined: an access occupies its bank for one cycle and returns
 * data after the (short) cache latency. Which register lives in
 * which bank is the Warp Control Block's business; this class only
 * models bank occupancy and latency.
 */

#ifndef LTRF_CORE_REG_CACHE_HH
#define LTRF_CORE_REG_CACHE_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltrf
{

/** Timing model of the register file cache banks of one SM. */
class RegCache
{
  public:
    /**
     * @param num_banks cache banks (= registers per interval)
     * @param latency   access latency in cycles
     */
    RegCache(int num_banks, int latency);

    /**
     * Access @p bank no earlier than @p now; the bank is occupied
     * for one cycle (pipelined). @return data-ready cycle.
     */
    Cycle access(int bank, Cycle now);

    /**
     * Record a result write retiring at a future completion time;
     * counts the access without occupying the bank (write ports are
     * separate from the read path being scheduled now).
     */
    void recordWrite() { stat_accesses++; }

    int numBanks() const { return static_cast<int>(banks.size()); }

    std::uint64_t accesses() const { return stat_accesses.value(); }
    std::uint64_t conflictCycles() const { return stat_conflicts.value(); }

  private:
    std::vector<Cycle> banks;   ///< next-free cycle per bank
    int access_latency;

    StatGroup stat_group;
    Counter stat_accesses;
    Counter stat_conflicts;
};

} // namespace ltrf

#endif // LTRF_CORE_REG_CACHE_HH
