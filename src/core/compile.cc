#include "core/compile.hh"

#include "common/log.hh"
#include "common/rng.hh"
#include "compiler/liveness.hh"

namespace ltrf
{

namespace
{

/** SHRF register classification per strand. */
std::vector<RegBitVec>
classifyShrfRegisters(const IntervalAnalysis &ia)
{
    std::vector<RegBitVec> cached(ia.intervals.size());

    for (const auto &iv : ia.intervals) {
        // The compile-time managed hierarchy of [20] allocates the
        // values produced inside a strand to the register file cache
        // for the remainder of the strand; values produced in earlier
        // strands (long-lived inputs) stay in the main register file.
        // So a strand's cache-allocated set is the registers it
        // defines.
        RegBitVec defs;
        for (BlockId b : iv.blocks) {
            for (const auto &in : ia.kernel.block(b).instrs) {
                if (in.op != Opcode::PREFETCH && in.dst != INVALID_REG)
                    defs.set(in.dst);
            }
        }
        cached[iv.id] = defs & iv.working_set;
    }
    return cached;
}

} // namespace

CompiledWorkload
compileWorkloadStatic(const Kernel &kernel, const SimConfig &cfg)
{
    CompiledWorkload out;
    out.design = cfg.design;

    switch (cfg.design) {
      case RfDesign::LTRF:
      case RfDesign::LTRF_PLUS: {
          FormationOptions opt;
          opt.max_regs = cfg.regs_per_interval;
          out.analysis = formRegisterIntervals(kernel, opt);
          out.code_size = insertPrefetchOps(out.analysis);
          break;
      }
      case RfDesign::LTRF_STRAND:
      case RfDesign::SHRF: {
          out.analysis = formStrands(kernel, cfg.regs_per_interval);
          out.code_size = insertPrefetchOps(out.analysis);
          out.strand_semantics = true;
          if (cfg.design == RfDesign::SHRF)
              out.shrf_cached = classifyShrfRegisters(out.analysis);
          break;
      }
      case RfDesign::BL:
      case RfDesign::RFC:
      case RfDesign::IDEAL: {
          // No transformation: wrap the kernel as-is.
          out.analysis.kernel = kernel;
          out.analysis.block_interval.assign(kernel.blocks.size(),
                                             UNKNOWN_INTERVAL);
          break;
      }
    }

    // Dead-operand bits (consumed by LTRF+; harmless otherwise).
    annotateDeadOperands(out.analysis.kernel);
    return out;
}

CompiledWorkload
compileWorkload(const Kernel &kernel, const SimConfig &cfg,
                std::uint64_t seed, std::uint64_t max_trace_instrs)
{
    CompiledWorkload out = compileWorkloadStatic(kernel, cfg);

    // Per-warp traces. All SMs share the same per-warp trace set;
    // memory address streams still differ per SM at simulation time.
    out.traces.reserve(static_cast<size_t>(cfg.max_warps_per_sm));
    for (int w = 0; w < cfg.max_warps_per_sm; w++) {
        out.traces.push_back(generateTrace(
                out.analysis.kernel,
                mixSeeds(seed, static_cast<std::uint64_t>(w)),
                max_trace_instrs));
        ltrf_assert(!out.traces.back().truncated,
                    "kernel '%s' warp %d trace hit the %llu-instruction "
                    "cap; shrink the workload", kernel.name.c_str(), w,
                    static_cast<unsigned long long>(max_trace_instrs));
    }
    return out;
}

} // namespace ltrf
