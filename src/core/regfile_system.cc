#include "core/regfile_system.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"
#include "core/alloc_unit.hh"
#include "core/main_regfile.hh"
#include "core/reg_cache.hh"
#include "core/wcb.hh"

namespace ltrf
{

namespace
{

/**
 * BL and Ideal: every operand access goes to the banked main
 * register file; Ideal simply keeps the baseline latency.
 */
class BaselineRf final : public RegFileSystem
{
  public:
    BaselineRf(const SimConfig &cfg, const CompiledWorkload &cw,
               bool ideal)
        : RegFileSystem(cfg, cw),
          mrf(cfg.num_mrf_banks,
              ideal ? cfg.base_mrf_latency : cfg.mrfLatency())
    {}

    Cycle
    readOperands(WarpId w, const Instruction &in, Cycle now) override
    {
        Cycle ready = now;
        for (RegId s : in.srcs) {
            if (s == INVALID_REG)
                continue;
            ready = std::max(ready, mrf.access(w, s, now));
            stats.main_accesses++;
        }
        return ready + config.operand_xbar_latency;
    }

    void
    writeResult(WarpId w, const Instruction &in, Cycle when,
                bool warp_active) override
    {
        (void)when;
        (void)warp_active;
        if (!in.hasDst())
            return;
        mrf.recordWrite(w, in.dst);
        stats.main_accesses++;
    }

    std::uint64_t
    bankConflictCycles() const override
    {
        return mrf.conflictCycles();
    }

  private:
    MainRegFile mrf;
};

/**
 * RFC: a demand-filled register cache shared by all resident warps,
 * approximating the hardware register file cache of [19]. Entries
 * are keyed by (warp, register) and placed by a multiplicative hash,
 * so concurrent warps displace each other's registers — reproducing
 * the thrashing behind the paper's low measured hit rates (Figure 4).
 */
class RfcRf final : public RegFileSystem
{
  public:
    RfcRf(const SimConfig &cfg, const CompiledWorkload &cw)
        : RegFileSystem(cfg, cw), mrf(cfg.num_mrf_banks, cfg.mrfLatency()),
          cache(cfg.regs_per_interval, cfg.cache_latency),
          slots(static_cast<size_t>(cfg.numCacheRegs()))
    {}

    Cycle
    readOperands(WarpId w, const Instruction &in, Cycle now) override
    {
        Cycle ready = now;
        for (RegId s : in.srcs) {
            if (s == INVALID_REG)
                continue;
            Slot &slot = slotFor(w, s);
            if (slot.valid && slot.key == keyOf(w, s)) {
                stats.cache_hits++;
                stats.cache_accesses++;
                ready = std::max(ready,
                                 cache.access(bankOf(w, s), now));
            } else {
                stats.cache_misses++;
                Cycle fill = mrf.access(w, s, now);
                stats.main_accesses++;
                install(slot, w, s, /*dirty=*/false);
                stats.cache_accesses++;   // fill write
                ready = std::max(ready, fill);
            }
        }
        return ready + config.operand_xbar_latency;
    }

    void
    writeResult(WarpId w, const Instruction &in, Cycle when,
                bool warp_active) override
    {
        (void)when;
        if (!in.hasDst())
            return;
        if (!warp_active) {
            // Late load return: the warp's cached state may be gone;
            // results land in the main register file.
            mrf.recordWrite(w, in.dst);
            stats.main_accesses++;
            return;
        }
        Slot &slot = slotFor(w, in.dst);
        install(slot, w, in.dst, /*dirty=*/true);
        cache.recordWrite();
        stats.cache_accesses++;
    }

    std::uint64_t
    bankConflictCycles() const override
    {
        return mrf.conflictCycles();
    }

  private:
    struct Slot
    {
        std::uint32_t key = 0;
        bool valid = false;
        bool dirty = false;
    };

    static std::uint32_t
    keyOf(WarpId w, RegId r)
    {
        return static_cast<std::uint32_t>(w) * MAX_ARCH_REGS +
               static_cast<std::uint32_t>(r);
    }

    Slot &
    slotFor(WarpId w, RegId r)
    {
        std::uint32_t h = keyOf(w, r) * 2654435761u;
        return slots[h % slots.size()];
    }

    int
    bankOf(WarpId w, RegId r) const
    {
        return static_cast<int>((w + r) % cache.numBanks());
    }

  public:
    void
    deactivate(WarpId w, Cycle now) override
    {
        (void)now;
        // The two-level scheduler of [19] flushes a swapped-out
        // warp's cache entries: dirty ones write back to the MRF,
        // and the slots are freed for the incoming warp. This is
        // the displacement that caps the achievable hit rate
        // (paper section 2.3, reason 1).
        for (Slot &slot : slots) {
            if (!slot.valid ||
                static_cast<WarpId>(slot.key / MAX_ARCH_REGS) != w)
                continue;
            if (slot.dirty) {
                mrf.recordWrite(w, static_cast<RegId>(slot.key %
                                                      MAX_ARCH_REGS));
                stats.main_accesses++;
                stats.writeback_regs++;
            }
            slot.valid = false;
        }
    }

  private:

    void
    install(Slot &slot, WarpId w, RegId r, bool dirty)
    {
        if (slot.valid && slot.key != keyOf(w, r) && slot.dirty) {
            // Evicted dirty victim: write it back to the MRF
            // (background traffic on the write ports).
            WarpId vw = static_cast<WarpId>(slot.key / MAX_ARCH_REGS);
            RegId vr = static_cast<RegId>(slot.key % MAX_ARCH_REGS);
            mrf.recordWrite(vw, vr);
            stats.main_accesses++;
            stats.writeback_regs++;
        }
        bool same = slot.valid && slot.key == keyOf(w, r);
        slot.key = keyOf(w, r);
        slot.valid = true;
        slot.dirty = dirty || (same && slot.dirty);
    }

    MainRegFile mrf;
    RegCache cache;
    std::vector<Slot> slots;
};

/**
 * The prefetch-based designs: LTRF, LTRF+, LTRF(strand), and SHRF.
 *
 * A Warp Control Block per warp maps architectural registers to
 * cache banks; an Address Allocation Unit per warp hands out bank
 * slots; PREFETCH operations bulk-move region working sets between
 * the main register file and the cache, holding MRF banks busy and
 * paying the narrow-crossbar transfer latency, while other active
 * warps keep executing.
 */
class PrefetchRf final : public RegFileSystem
{
  public:
    PrefetchRf(const SimConfig &cfg, const CompiledWorkload &cw,
               int resident_warps)
        : RegFileSystem(cfg, cw),
          mrf(cfg.num_mrf_banks, cfg.mrfLatency()),
          cache(cfg.regs_per_interval, cfg.cache_latency),
          warp_offsets(cfg.num_active_warps)
    {
        warps.reserve(static_cast<size_t>(resident_warps));
        for (int w = 0; w < resident_warps; w++)
            warps.emplace_back(cfg.regs_per_interval);
    }

    Cycle
    readOperands(WarpId w, const Instruction &in, Cycle now) override
    {
        WarpRf &wrf = warps[w];
        Cycle ready = now;
        for (int i = 0; i < 3; i++) {
            RegId s = in.srcs[i];
            if (s == INVALID_REG)
                continue;
            stats.wcb_accesses++;
            Cycle lookup_done = now + config.wcb_latency;
            if (!wrf.wcb.resident(s)) {
                // Only SHRF reads non-cache-allocated registers from
                // the main register file; for LTRF the working set
                // guarantee makes this a simulator bug.
                ltrf_assert(compiled.design == RfDesign::SHRF,
                            "%s: warp %d read non-resident r%d",
                            rfDesignName(compiled.design), w, s);
                stats.cache_misses++;
                ready = std::max(ready, mrf.access(w, s, lookup_done));
                stats.main_accesses++;
            } else {
                if (compiled.design == RfDesign::SHRF)
                    stats.cache_hits++;
                stats.cache_accesses++;
                ready = std::max(ready, cache.access(wrf.wcb.bank(s),
                                                     lookup_done));
            }
            if (isPlus() && in.src_dead[i])
                wrf.wcb.markDead(s);
        }
        return ready + config.operand_xbar_latency;
    }

    void
    writeResult(WarpId w, const Instruction &in, Cycle when,
                bool warp_active) override
    {
        if (!in.hasDst())
            return;
        (void)when;
        WarpRf &wrf = warps[w];
        if (isPlus())
            wrf.wcb.markLive(in.dst);
        if (warp_active && wrf.wcb.resident(in.dst)) {
            cache.recordWrite();
            stats.cache_accesses++;
        } else {
            // Inactive warp (late load return) or, under SHRF, a
            // register the compiler left in the main register file.
            mrf.recordWrite(w, in.dst);
            stats.main_accesses++;
        }
    }

    Cycle
    prefetch(WarpId w, BlockId bb, const Instruction &in,
             Cycle now) override
    {
        WarpRf &wrf = warps[w];
        IntervalId itv = compiled.intervalOf(bb);
        ltrf_assert(itv != UNKNOWN_INTERVAL, "PREFETCH outside interval");

        bool entered = itv != wrf.cur_interval;
        // Strand semantics: re-executing the header's PREFETCH via a
        // back edge re-triggers the operation (strands end at
        // backward branches, section 6.6).
        bool reenter = compiled.strand_semantics && !entered &&
                       compiled.analysis.intervals[itv].header == bb;
        if (!entered && !reenter)
            return now;    // all valid bits already set: free

        stats.prefetch_ops++;
        const RegBitVec &target =
                compiled.design == RfDesign::SHRF
                        ? compiled.shrf_cached[itv]
                        : in.prefetch_mask;

        Cycle done = swapTo(wrf, w, target, now,
                            /*writeback_all=*/!isPlus());
        wrf.wcb.setWorkingSet(target);
        wrf.cur_interval = itv;
        stats.prefetch_stall_cycles += done - now;
        return done;
    }

    Cycle
    activate(WarpId w, Cycle now) override
    {
        WarpRf &wrf = warps[w];
        ltrf_assert(wrf.warp_offset < 0, "warp %d already active", w);
        wrf.warp_offset = warp_offsets.allocate();
        wrf.wcb.setWarpOffset(wrf.warp_offset);

        // Refetch the working set recorded at deactivation. SHRF's
        // cache-allocated registers are strand-local temporaries and
        // need allocation only; LTRF refetches everything, LTRF+
        // only live registers.
        RegBitVec target = wrf.wcb.workingSet();
        return swapTo(wrf, w, target, now, /*writeback_all=*/false);
    }

    void
    deactivate(WarpId w, Cycle /*now*/) override
    {
        WarpRf &wrf = warps[w];
        ltrf_assert(wrf.warp_offset >= 0, "warp %d not active", w);

        // Write back the register working set (LTRF: all of it;
        // LTRF+: live registers only; SHRF: nothing, temporaries are
        // dead at strand boundaries) and release all cache slots.
        RegBitVec wb = wrf.wcb.residentSet();
        if (compiled.design == RfDesign::SHRF)
            wb.reset();
        else if (isPlus())
            wb &= wrf.wcb.livenessSet();
        wb.forEach([&](RegId r) {
            // Background write-port traffic: counted for energy but
            // not allowed to delay the foreground read path.
            mrf.recordWrite(w, r);
            stats.main_accesses++;
            stats.writeback_regs++;
            stats.xfer_regs++;
        });
        RegBitVec resident = wrf.wcb.residentSet();
        resident.forEach([&](RegId r) {
            wrf.bank_alloc.release(wrf.wcb.clearEntry(r));
        });
        warp_offsets.release(wrf.warp_offset);
        wrf.warp_offset = -1;
        wrf.wcb.setWarpOffset(-1);
    }

    std::uint64_t
    bankConflictCycles() const override
    {
        return mrf.conflictCycles();
    }

  private:
    struct WarpRf
    {
        explicit WarpRf(int banks) : bank_alloc(banks) {}

        Wcb wcb;
        AllocUnit bank_alloc;
        IntervalId cur_interval = UNKNOWN_INTERVAL;
        int warp_offset = -1;
    };

    bool isPlus() const { return compiled.design == RfDesign::LTRF_PLUS; }

    /**
     * Move the warp's cached register set to @p target: write back
     * evicted registers, allocate banks for new ones, and fetch data
     * from the MRF (liveness-filtered for LTRF+, none for SHRF whose
     * cached registers are dead at region entry). @return completion.
     */
    Cycle
    swapTo(WarpRf &wrf, WarpId w, const RegBitVec &target, Cycle now,
           bool writeback_all)
    {
        const RegBitVec resident = wrf.wcb.residentSet();
        RegBitVec evict = resident - target;
        RegBitVec incoming = target - resident;

        RegBitVec wb = evict;
        if (compiled.design == RfDesign::SHRF)
            wb.reset();
        else if (!writeback_all || isPlus())
            wb &= wrf.wcb.livenessSet();

        RegBitVec fetch = incoming;
        if (compiled.design == RfDesign::SHRF)
            fetch.reset();   // temporaries: allocate space only
        else if (isPlus())
            fetch &= wrf.wcb.livenessSet();

        Cycle done = now;
        wb.forEach([&](RegId r) {
            // Evicted registers drain through the MRF write ports in
            // the background; the warp only waits for the fetches.
            mrf.recordWrite(w, r);
            stats.main_accesses++;
            stats.writeback_regs++;
            stats.xfer_regs++;
        });
        evict.forEach([&](RegId r) {
            wrf.bank_alloc.release(wrf.wcb.clearEntry(r));
        });
        incoming.forEach([&](RegId r) {
            wrf.wcb.setEntry(r, wrf.bank_alloc.allocate());
        });
        fetch.forEach([&](RegId r) {
            done = std::max(done, mrf.access(w, r, now));
            stats.main_accesses++;
            stats.xfer_regs++;
        });
        if (done != now)
            done += config.prefetch_xbar_latency;
        return done;
    }

    MainRegFile mrf;
    RegCache cache;
    AllocUnit warp_offsets;
    std::vector<WarpRf> warps;
};

} // namespace

std::unique_ptr<RegFileSystem>
makeRegFileSystem(const SimConfig &cfg, const CompiledWorkload &cw,
                  int resident_warps)
{
    ltrf_assert(cw.design == cfg.design,
                "workload compiled for %s but config selects %s",
                rfDesignName(cw.design), rfDesignName(cfg.design));
    switch (cfg.design) {
      case RfDesign::BL:
        return std::make_unique<BaselineRf>(cfg, cw, /*ideal=*/false);
      case RfDesign::IDEAL:
        return std::make_unique<BaselineRf>(cfg, cw, /*ideal=*/true);
      case RfDesign::RFC:
        return std::make_unique<RfcRf>(cfg, cw);
      case RfDesign::SHRF:
      case RfDesign::LTRF_STRAND:
      case RfDesign::LTRF:
      case RfDesign::LTRF_PLUS:
        return std::make_unique<PrefetchRf>(cfg, cw, resident_warps);
    }
    ltrf_panic("unknown register file design");
}

} // namespace ltrf
