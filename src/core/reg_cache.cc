#include "core/reg_cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace ltrf
{

RegCache::RegCache(int num_banks, int latency)
    : banks(static_cast<size_t>(num_banks), 0), access_latency(latency),
      stat_group("regcache")
{
    ltrf_assert(num_banks >= 1, "need at least one cache bank");
    ltrf_assert(latency >= 1, "cache latency must be >= 1 cycle");
    stat_group.add("accesses", &stat_accesses);
    stat_group.add("conflict_cycles", &stat_conflicts);
}

Cycle
RegCache::access(int bank, Cycle now)
{
    ltrf_assert(bank >= 0 && bank < numBanks(), "bad cache bank %d", bank);
    Cycle &busy = banks[bank];
    Cycle start = std::max(now, busy);
    if (start > now)
        stat_conflicts += start - now;
    busy = start + 1;   // pipelined: one-cycle bank occupancy
    stat_accesses++;
    return start + access_latency;
}

} // namespace ltrf
