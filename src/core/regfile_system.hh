/**
 * @file
 * Register file system designs (paper section 5, "Comparison
 * Points"): the common interface the SM pipeline drives, a factory,
 * and the per-design activity statistics the power model consumes.
 *
 * Designs:
 *  - BL: conventional non-cached register file; every operand read
 *    and result write accesses the banked main register file.
 *  - Ideal: BL with the baseline access latency regardless of the
 *    configured latency multiplier (any capacity, no latency cost).
 *  - RFC: hardware register file cache in the spirit of Gebhart et
 *    al. [19]: demand-filled, shared among resident warps, so warps
 *    displace each other's registers (the thrashing the paper
 *    diagnoses in section 2.3).
 *  - SHRF: software-managed hierarchy [20]: the compiler allocates
 *    strand-local temporaries to the cache; long-lived registers
 *    keep reading the main register file.
 *  - LTRF / LTRF(strand): software PREFETCH of the region working
 *    set at region entry; all in-region accesses hit the cache.
 *  - LTRF+: LTRF plus the liveness bit-vector: dead registers are
 *    neither written back nor refetched.
 */

#ifndef LTRF_CORE_REGFILE_SYSTEM_HH
#define LTRF_CORE_REGFILE_SYSTEM_HH

#include <memory>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/compile.hh"
#include "tech/energy_model.hh"

namespace ltrf
{

/** Event counters shared by all designs; inputs to rfPower(). */
struct RfStats
{
    Counter main_accesses;      ///< MRF bank accesses (all causes)
    Counter cache_accesses;     ///< register cache bank accesses
    Counter cache_hits;         ///< RFC/SHRF: reads served by cache
    Counter cache_misses;       ///< RFC/SHRF: reads that went to MRF
    Counter wcb_accesses;       ///< WCB lookups
    Counter xfer_regs;          ///< regs moved MRF<->cache
    Counter prefetch_ops;       ///< triggered PREFETCH operations
    Counter writeback_regs;     ///< regs written back to the MRF
    Counter prefetch_stall_cycles; ///< warp-cycles blocked on prefetch

    /** Register cache read hit rate (Figure 4). */
    double
    hitRate() const
    {
        std::uint64_t t = cache_hits.value() + cache_misses.value();
        return t == 0 ? 0.0
                      : static_cast<double>(cache_hits.value()) /
                                static_cast<double>(t);
    }

    /** Activity rates for the power model, given elapsed cycles. */
    RfActivity
    activity(Cycle cycles) const
    {
        RfActivity a;
        double c = static_cast<double>(cycles ? cycles : 1);
        a.main_accesses_per_cycle =
                static_cast<double>(main_accesses.value()) / c;
        a.cache_accesses_per_cycle =
                static_cast<double>(cache_accesses.value()) / c;
        a.wcb_accesses_per_cycle =
                static_cast<double>(wcb_accesses.value()) / c;
        a.xfer_regs_per_cycle =
                static_cast<double>(xfer_regs.value()) / c;
        return a;
    }
};

/** Interface the SM pipeline drives; one instance per SM. */
class RegFileSystem
{
  public:
    RegFileSystem(const SimConfig &cfg, const CompiledWorkload &cw)
        : config(cfg), compiled(cw)
    {}

    virtual ~RegFileSystem() = default;

    /**
     * Collect all source operands of @p in for warp @p w starting at
     * @p now. Models WCB lookups, cache/MRF bank contention, and the
     * operand crossbar. @return the cycle all operands are ready.
     */
    virtual Cycle readOperands(WarpId w, const Instruction &in,
                               Cycle now) = 0;

    /**
     * Write @p in's destination register at cycle @p when.
     * @p warp_active is false when a load completes after its warp
     * was deactivated; the result then goes to the main register
     * file, where the inactive warp's live state resides.
     */
    virtual void writeResult(WarpId w, const Instruction &in, Cycle when,
                             bool warp_active) = 0;

    /**
     * Execute a PREFETCH operation in block @p bb. No-op (returns
     * @p now) when the warp is already in the target region with all
     * valid bits set. @return the cycle the warp may resume.
     */
    virtual Cycle
    prefetch(WarpId w, BlockId bb, const Instruction &in, Cycle now)
    {
        (void)w;
        (void)bb;
        (void)in;
        return now;
    }

    /**
     * The two-level scheduler activated warp @p w. @return the cycle
     * the warp may start issuing (after any register refetch).
     */
    virtual Cycle
    activate(WarpId w, Cycle now)
    {
        (void)w;
        return now;
    }

    /** The two-level scheduler deactivated warp @p w. */
    virtual void
    deactivate(WarpId w, Cycle now)
    {
        (void)w;
        (void)now;
    }

    const RfStats &rfStats() const { return stats; }

    /**
     * Total cycles operand reads spent waiting on busy MRF banks, for
     * the stall-attribution breakdown. An auxiliary latency metric:
     * conflicts lengthen collections (occupying collectors longer),
     * they do not themselves consume issue slots.
     */
    virtual std::uint64_t bankConflictCycles() const { return 0; }

    /** Register the shared activity counters into @p g (obs layer). */
    void
    registerStats(StatGroup &g)
    {
        g.add("main_accesses", &stats.main_accesses);
        g.add("cache_accesses", &stats.cache_accesses);
        g.add("cache_hits", &stats.cache_hits);
        g.add("cache_misses", &stats.cache_misses);
        g.add("wcb_accesses", &stats.wcb_accesses);
        g.add("xfer_regs", &stats.xfer_regs);
        g.add("prefetch_ops", &stats.prefetch_ops);
        g.add("writeback_regs", &stats.writeback_regs);
        g.add("prefetch_stall_cycles", &stats.prefetch_stall_cycles);
    }

  protected:
    const SimConfig &config;
    const CompiledWorkload &compiled;
    RfStats stats;
};

/**
 * Build the register file system selected by @p cfg.design.
 * @param resident_warps warps the occupancy model admits per SM.
 */
std::unique_ptr<RegFileSystem>
makeRegFileSystem(const SimConfig &cfg, const CompiledWorkload &cw,
                  int resident_warps);

} // namespace ltrf

#endif // LTRF_CORE_REGFILE_SYSTEM_HH
