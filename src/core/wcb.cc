#include "core/wcb.hh"

// Wcb is header-only; this translation unit anchors the library and
// statically checks the section 4.3 storage arithmetic.

namespace ltrf
{

static_assert(Wcb::bitsPerWarp() == 256 * 5 + 3 + 256 + 256,
              "WCB storage layout must match paper section 4.3");
static_assert(64 * Wcb::bitsPerWarp() == 114880,
              "64-warp WCB storage must equal the paper's 114880 bits");

} // namespace ltrf
