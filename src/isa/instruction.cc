#include "isa/instruction.hh"

#include <sstream>

namespace ltrf
{

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    if (op == Opcode::PREFETCH) {
        os << " " << prefetch_mask.toString();
        return os.str();
    }
    bool first = true;
    auto emit_reg = [&](RegId r, bool dead) {
        os << (first ? " " : ", ") << "r" << static_cast<int>(r);
        if (dead)
            os << "!";
        first = false;
    };
    if (dst != INVALID_REG)
        emit_reg(dst, false);
    for (int i = 0; i < 3; i++)
        if (srcs[i] != INVALID_REG)
            emit_reg(srcs[i], src_dead[i]);
    if (isLoad(op) || isStore(op))
        os << " [s" << mem_stream << "]";
    return os.str();
}

} // namespace ltrf
