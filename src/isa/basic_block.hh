/**
 * @file
 * Basic blocks and control-flow edges.
 */

#ifndef LTRF_ISA_BASIC_BLOCK_HH
#define LTRF_ISA_BASIC_BLOCK_HH

#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace ltrf
{

/**
 * Dynamic behaviour of a block's terminating branch, used by the
 * trace generator. This is workload metadata, not architectural
 * state: a real GPU resolves branches from register values, which a
 * timing-only simulator replaces with a declared branch profile.
 */
struct BranchProfile
{
    enum class Kind
    {
        NONE,   ///< unconditional fall-through / jump / exit
        LOOP,   ///< back edge taken (trip_count - 1) times per entry
        COND,   ///< taken (successor 0) with probability taken_prob
    };

    Kind kind = Kind::NONE;
    int trip_count = 1;
    double taken_prob = 0.5;
    /** Per-warp trip count jitter: +-jitter, deterministic per warp. */
    int trip_jitter = 0;
};

/**
 * A basic block: a straight-line instruction sequence with a single
 * entry (top) and a single exit (bottom).
 *
 * Successor convention: if the block ends in a conditional branch,
 * succs[0] is the taken target and succs[1] the fall-through. Blocks
 * with one successor fall through to succs[0].
 */
struct BasicBlock
{
    BlockId id = INVALID_BLOCK;
    std::vector<Instruction> instrs;
    std::vector<BlockId> succs;
    std::vector<BlockId> preds;
    BranchProfile branch;

    /** Union of all registers referenced by the block's instructions. */
    RegBitVec
    usedRegs() const
    {
        RegBitVec v;
        for (const auto &in : instrs)
            in.collectRegs(v);
        return v;
    }

    /** Number of non-PREFETCH instructions. */
    int
    realInstrCount() const
    {
        int n = 0;
        for (const auto &in : instrs)
            if (in.op != Opcode::PREFETCH)
                n++;
        return n;
    }
};

} // namespace ltrf

#endif // LTRF_ISA_BASIC_BLOCK_HH
