#include "isa/kernel.hh"

#include <algorithm>

#include "common/log.hh"

namespace ltrf
{

int
Kernel::staticInstrCount() const
{
    int n = 0;
    for (const auto &bb : blocks)
        n += bb.realInstrCount();
    return n;
}

int
Kernel::staticInstrCountWithPrefetch() const
{
    int n = 0;
    for (const auto &bb : blocks)
        n += static_cast<int>(bb.instrs.size());
    return n;
}

RegBitVec
Kernel::allRegs() const
{
    RegBitVec v;
    for (const auto &bb : blocks)
        v |= bb.usedRegs();
    return v;
}

void
Kernel::validate() const
{
    ltrf_assert(!blocks.empty(), "kernel '%s' has no blocks", name.c_str());
    ltrf_assert(num_regs >= 1 && num_regs <= MAX_ARCH_REGS,
                "kernel '%s': num_regs %d out of range", name.c_str(),
                num_regs);
    ltrf_assert(reg_demand >= num_regs,
                "kernel '%s': reg_demand %d < num_regs %d", name.c_str(),
                reg_demand, num_regs);

    for (const auto &bb : blocks) {
        ltrf_assert(bb.id >= 0 && bb.id < numBlocks(),
                    "kernel '%s': bad block id %d", name.c_str(), bb.id);
        ltrf_assert(&block(bb.id) == &bb,
                    "kernel '%s': block id %d misplaced", name.c_str(),
                    bb.id);
        ltrf_assert(bb.succs.size() <= 2,
                    "kernel '%s': block %d has %zu successors",
                    name.c_str(), bb.id, bb.succs.size());

        // Pred/succ symmetry.
        for (BlockId s : bb.succs) {
            ltrf_assert(s >= 0 && s < numBlocks(),
                        "kernel '%s': block %d successor %d out of range",
                        name.c_str(), bb.id, s);
            const auto &sp = block(s).preds;
            ltrf_assert(std::find(sp.begin(), sp.end(), bb.id) != sp.end(),
                        "kernel '%s': edge %d->%d missing from preds",
                        name.c_str(), bb.id, s);
        }
        for (BlockId p : bb.preds) {
            ltrf_assert(p >= 0 && p < numBlocks(),
                        "kernel '%s': block %d pred %d out of range",
                        name.c_str(), bb.id, p);
            const auto &ps = block(p).succs;
            ltrf_assert(std::find(ps.begin(), ps.end(), bb.id) != ps.end(),
                        "kernel '%s': edge %d->%d missing from succs",
                        name.c_str(), p, bb.id);
        }

        // Control-flow instructions may appear only as terminators, and
        // two-successor blocks must end with a branch.
        for (size_t i = 0; i < bb.instrs.size(); i++) {
            const auto &in = bb.instrs[i];
            if (isControl(in.op)) {
                ltrf_assert(i + 1 == bb.instrs.size(),
                            "kernel '%s': control op mid-block %d",
                            name.c_str(), bb.id);
            }
            if (isLoad(in.op) || isStore(in.op)) {
                ltrf_assert(in.mem_stream >= 0 &&
                            in.mem_stream <
                                static_cast<int>(mem_streams.size()),
                            "kernel '%s': block %d references memory "
                            "stream %d of %zu", name.c_str(), bb.id,
                            in.mem_stream, mem_streams.size());
            }
            for (RegId s : in.srcs) {
                ltrf_assert(s == INVALID_REG || (s >= 0 && s < num_regs),
                            "kernel '%s': source reg %d out of range",
                            name.c_str(), s);
            }
            ltrf_assert(in.dst == INVALID_REG ||
                        (in.dst >= 0 && in.dst < num_regs),
                        "kernel '%s': dest reg %d out of range",
                        name.c_str(), in.dst);
        }
        if (bb.succs.size() == 2) {
            ltrf_assert(!bb.instrs.empty() &&
                        bb.instrs.back().op == Opcode::BRA,
                        "kernel '%s': two-successor block %d lacks BRA",
                        name.c_str(), bb.id);
        }
        if (bb.succs.empty()) {
            ltrf_assert(!bb.instrs.empty() &&
                        bb.instrs.back().op == Opcode::EXIT,
                        "kernel '%s': terminal block %d lacks EXIT",
                        name.c_str(), bb.id);
        }
    }

    // The entry block must not be a branch target (single entry CFG).
    ltrf_assert(block(entry()).preds.empty(),
                "kernel '%s': entry block has predecessors", name.c_str());
}

} // namespace ltrf
