#include "isa/kernel_builder.hh"

#include <algorithm>

#include "common/log.hh"

namespace ltrf
{

KernelBuilder::KernelBuilder(std::string name)
{
    kernel.name = std::move(name);
    BasicBlock entry;
    entry.id = 0;
    kernel.blocks.push_back(entry);
    cur = 0;
}

BlockId
KernelBuilder::newBlock()
{
    BasicBlock bb;
    bb.id = static_cast<BlockId>(kernel.blocks.size());
    kernel.blocks.push_back(bb);
    return bb.id;
}

void
KernelBuilder::fallTo(BlockId next)
{
    ltrf_assert(curBlock().succs.empty(),
                "block %d already terminated", cur);
    curBlock().succs.push_back(next);
}

KernelBuilder &
KernelBuilder::emit(const Instruction &in)
{
    ltrf_assert(!built, "builder already consumed");
    ltrf_assert(curBlock().succs.empty(),
                "emitting into terminated block %d", cur);
    ltrf_assert(in.dst == INVALID_REG ||
                (in.dst >= 0 && in.dst < MAX_ARCH_REGS),
                "destination register %d out of range", in.dst);
    for (RegId s : in.srcs) {
        ltrf_assert(s == INVALID_REG || (s >= 0 && s < MAX_ARCH_REGS),
                    "source register %d out of range", s);
    }
    curBlock().instrs.push_back(in);
    return *this;
}

KernelBuilder &
KernelBuilder::iadd(int dst, int a, int b)
{
    return emit(Instruction::alu(Opcode::IADD, static_cast<RegId>(dst),
                                 static_cast<RegId>(a),
                                 static_cast<RegId>(b)));
}

KernelBuilder &
KernelBuilder::imul(int dst, int a, int b)
{
    return emit(Instruction::alu(Opcode::IMUL, static_cast<RegId>(dst),
                                 static_cast<RegId>(a),
                                 static_cast<RegId>(b)));
}

KernelBuilder &
KernelBuilder::fadd(int dst, int a, int b)
{
    return emit(Instruction::alu(Opcode::FADD, static_cast<RegId>(dst),
                                 static_cast<RegId>(a),
                                 static_cast<RegId>(b)));
}

KernelBuilder &
KernelBuilder::fmul(int dst, int a, int b)
{
    return emit(Instruction::alu(Opcode::FMUL, static_cast<RegId>(dst),
                                 static_cast<RegId>(a),
                                 static_cast<RegId>(b)));
}

KernelBuilder &
KernelBuilder::ffma(int dst, int a, int b, int c)
{
    return emit(Instruction::alu(Opcode::FFMA, static_cast<RegId>(dst),
                                 static_cast<RegId>(a),
                                 static_cast<RegId>(b),
                                 static_cast<RegId>(c)));
}

KernelBuilder &
KernelBuilder::mov(int dst, int src)
{
    return emit(Instruction::alu(Opcode::MOV, static_cast<RegId>(dst),
                                 static_cast<RegId>(src)));
}

KernelBuilder &
KernelBuilder::isetp(int dst, int a, int b)
{
    return emit(Instruction::alu(Opcode::ISETP, static_cast<RegId>(dst),
                                 static_cast<RegId>(a),
                                 static_cast<RegId>(b)));
}

KernelBuilder &
KernelBuilder::sfu(int dst, int a)
{
    return emit(Instruction::alu(Opcode::SFU, static_cast<RegId>(dst),
                                 static_cast<RegId>(a)));
}

KernelBuilder &
KernelBuilder::load(int dst, int addr, int stream)
{
    return emit(Instruction::load(Opcode::LD_GLOBAL,
                                  static_cast<RegId>(dst),
                                  static_cast<RegId>(addr),
                                  static_cast<std::int16_t>(stream)));
}

KernelBuilder &
KernelBuilder::store(int value, int addr, int stream)
{
    return emit(Instruction::store(Opcode::ST_GLOBAL,
                                   static_cast<RegId>(value),
                                   static_cast<RegId>(addr),
                                   static_cast<std::int16_t>(stream)));
}

KernelBuilder &
KernelBuilder::sharedLoad(int dst, int addr)
{
    return emit(Instruction::load(Opcode::LD_SHARED,
                                  static_cast<RegId>(dst),
                                  static_cast<RegId>(addr), 0));
}

KernelBuilder &
KernelBuilder::sharedStore(int value, int addr)
{
    return emit(Instruction::store(Opcode::ST_SHARED,
                                   static_cast<RegId>(value),
                                   static_cast<RegId>(addr), 0));
}

int
KernelBuilder::stream(const MemStreamSpec &spec)
{
    ltrf_assert(spec.stride_lines >= 1 && spec.working_set_lines >= 1,
                "invalid memory stream spec");
    kernel.mem_streams.push_back(spec);
    return static_cast<int>(kernel.mem_streams.size()) - 1;
}

KernelBuilder &
KernelBuilder::beginLoop(int trip_count, int trip_jitter)
{
    ltrf_assert(trip_count >= 1, "loop trip count %d < 1", trip_count);
    BlockId header = newBlock();
    fallTo(header);
    cur = header;
    loop_stack.push_back({header, trip_count, trip_jitter});
    return *this;
}

KernelBuilder &
KernelBuilder::endLoop()
{
    ltrf_assert(!loop_stack.empty(), "endLoop with no open loop");
    LoopCtx ctx = loop_stack.back();
    loop_stack.pop_back();

    // The current block becomes the latch: a conditional branch whose
    // taken target is the loop header and whose fall-through is the
    // loop exit.
    BlockId exit_block = newBlock();
    curBlock().instrs.push_back(Instruction::branch());
    ltrf_assert(curBlock().succs.empty(),
                "latch block %d already terminated", cur);
    curBlock().succs = {ctx.header, exit_block};
    curBlock().branch.kind = BranchProfile::Kind::LOOP;
    curBlock().branch.trip_count = ctx.trip_count;
    curBlock().branch.trip_jitter = ctx.trip_jitter;
    cur = exit_block;
    return *this;
}

KernelBuilder &
KernelBuilder::beginIf(double taken_prob, int pred_reg)
{
    ltrf_assert(taken_prob >= 0.0 && taken_prob <= 1.0,
                "taken_prob %.2f out of [0,1]", taken_prob);
    BlockId cond = cur;
    BlockId then_entry = newBlock();
    curBlock().instrs.push_back(
            Instruction::branch(static_cast<RegId>(pred_reg)));
    // succs[1] (the else/join fall-through) is patched later.
    curBlock().succs = {then_entry, INVALID_BLOCK};
    curBlock().branch.kind = BranchProfile::Kind::COND;
    curBlock().branch.taken_prob = taken_prob;
    if_stack.push_back({cond, INVALID_BLOCK, false});
    cur = then_entry;
    return *this;
}

KernelBuilder &
KernelBuilder::beginElse()
{
    ltrf_assert(!if_stack.empty(), "beginElse with no open if");
    IfCtx &ctx = if_stack.back();
    ltrf_assert(!ctx.has_else, "duplicate beginElse");
    ctx.has_else = true;
    ctx.then_exit = cur;
    BlockId else_entry = newBlock();
    kernel.blocks[ctx.cond_block].succs[1] = else_entry;
    cur = else_entry;
    return *this;
}

KernelBuilder &
KernelBuilder::endIf()
{
    ltrf_assert(!if_stack.empty(), "endIf with no open if");
    IfCtx ctx = if_stack.back();
    if_stack.pop_back();

    BlockId join = newBlock();
    if (ctx.has_else) {
        // cur is the else-side exit; ctx.then_exit the then-side exit.
        fallTo(join);
        BasicBlock &te = kernel.blocks[ctx.then_exit];
        ltrf_assert(te.succs.empty(), "then-exit already terminated");
        te.succs.push_back(join);
    } else {
        // cur is the then-side exit; the cond falls through to join.
        fallTo(join);
        kernel.blocks[ctx.cond_block].succs[1] = join;
    }
    cur = join;
    return *this;
}

KernelBuilder &
KernelBuilder::regDemand(int regs)
{
    ltrf_assert(regs >= 1 && regs <= MAX_ARCH_REGS,
                "reg demand %d out of range", regs);
    kernel.reg_demand = regs;
    return *this;
}

Kernel
KernelBuilder::build()
{
    ltrf_assert(!built, "builder already consumed");
    ltrf_assert(loop_stack.empty(), "unclosed loop at build()");
    ltrf_assert(if_stack.empty(), "unclosed if at build()");
    built = true;

    if (curBlock().succs.empty() &&
        (curBlock().instrs.empty() ||
         curBlock().instrs.back().op != Opcode::EXIT)) {
        curBlock().instrs.push_back(Instruction::exit());
    }

    // Default memory stream so stray stream id 0 never dangles.
    if (kernel.mem_streams.empty())
        kernel.mem_streams.push_back(MemStreamSpec{});

    // Compute num_regs.
    RegBitVec all = kernel.allRegs();
    int max_reg = -1;
    all.forEach([&](RegId r) { max_reg = std::max<int>(max_reg, r); });
    kernel.num_regs = max_reg + 1;
    if (kernel.num_regs == 0)
        kernel.num_regs = 1;
    if (kernel.reg_demand < kernel.num_regs)
        kernel.reg_demand = kernel.num_regs;

    // Wire predecessor lists from successor lists.
    for (auto &bb : kernel.blocks)
        bb.preds.clear();
    for (const auto &bb : kernel.blocks) {
        for (BlockId s : bb.succs) {
            ltrf_assert(s != INVALID_BLOCK,
                        "unpatched successor in block %d", bb.id);
            kernel.blocks[s].preds.push_back(bb.id);
        }
    }

    kernel.validate();
    return std::move(kernel);
}

} // namespace ltrf
