/**
 * @file
 * Kernel: a named CFG of basic blocks plus workload metadata.
 */

#ifndef LTRF_ISA_KERNEL_HH
#define LTRF_ISA_KERNEL_HH

#include <string>
#include <vector>

#include "isa/basic_block.hh"

namespace ltrf
{

/**
 * A global-memory address stream referenced by LD/ST instructions.
 *
 * Addresses are generated deterministically at simulation time as
 *   line = base + warpOffset(warp) + (index % working_set_lines)
 * scaled by stride, so cache behaviour (and hence L1 hit rates and
 * DRAM pressure) emerges from real cache models rather than from a
 * declared hit probability.
 */
struct MemStreamSpec
{
    /** Distance between consecutive accesses, in cache lines. */
    int stride_lines = 1;
    /** Lines touched before the stream wraps (per-warp working set). */
    int working_set_lines = 1024;
    /** If true, all warps share one address region (inter-warp reuse). */
    bool shared_across_warps = false;
};

/**
 * A kernel: entry block 0, a list of basic blocks, the number of
 * architectural registers it uses, and workload metadata consumed by
 * the occupancy model.
 */
struct Kernel
{
    std::string name;
    std::vector<BasicBlock> blocks;
    std::vector<MemStreamSpec> mem_streams;

    /** Architectural registers used (max register id + 1). */
    int num_regs = 0;

    /**
     * Registers per thread the compiler would allocate with no cap
     * (Table 1's -maxregcount experiment); >= num_regs. Drives the
     * TLP/occupancy model: resident warps are limited by
     * mrf_capacity / regsPerWarp().
     */
    int reg_demand = 0;

    BlockId entry() const { return 0; }

    const BasicBlock &block(BlockId b) const { return blocks[b]; }
    BasicBlock &block(BlockId b) { return blocks[b]; }

    int numBlocks() const { return static_cast<int>(blocks.size()); }

    /** Total static (non-PREFETCH) instruction count. */
    int staticInstrCount() const;

    /** Static instruction count including PREFETCH operations. */
    int staticInstrCountWithPrefetch() const;

    /** Union of registers referenced anywhere in the kernel. */
    RegBitVec allRegs() const;

    /**
     * Check structural invariants: pred/succ symmetry, terminator
     * placement, register ids within range. Calls panic() on
     * violation (a malformed kernel is a builder bug). The
     * diagnostic counterpart for kernels from untrusted sources
     * (loaders, fuzzers, mutation tests) is the static verifier in
     * compiler/verify.hh, which reports instead of aborting and
     * additionally proves the dataflow-level invariants.
     */
    void validate() const;
};

} // namespace ltrf

#endif // LTRF_ISA_KERNEL_HH
