/**
 * @file
 * PTX-like opcodes and their static properties.
 *
 * The simulator is timing-only, so opcodes exist to classify
 * instructions into functional-unit classes with representative
 * execution latencies, and to mark control-flow and memory behaviour.
 */

#ifndef LTRF_ISA_OPCODE_HH
#define LTRF_ISA_OPCODE_HH

namespace ltrf
{

/** Instruction opcodes. */
enum class Opcode
{
    // Integer / single-precision ALU (fully pipelined).
    IADD,
    IMUL,
    ISETP,      ///< predicate-setting compare
    FADD,
    FMUL,
    FFMA,
    MOV,
    // Special function unit (transcendentals; long, unpipelined-ish).
    SFU,
    // Memory.
    LD_GLOBAL,
    ST_GLOBAL,
    LD_SHARED,
    ST_SHARED,
    // Control.
    BRA,        ///< conditional/unconditional branch (block terminator)
    EXIT,       ///< kernel end
    BAR,        ///< barrier (modeled as a long ALU-class stall)
    // LTRF software support.
    PREFETCH,   ///< carries a 256-bit register bit-vector
    NOP,
};

/** Broad functional-unit classes used by the timing model. */
enum class UnitClass
{
    ALU,
    SFU,
    MEM_GLOBAL,
    MEM_SHARED,
    CTRL,
    PREFETCH,
};

/** @return the functional-unit class of @p op. */
constexpr UnitClass
unitClass(Opcode op)
{
    switch (op) {
      case Opcode::IADD:
      case Opcode::IMUL:
      case Opcode::ISETP:
      case Opcode::FADD:
      case Opcode::FMUL:
      case Opcode::FFMA:
      case Opcode::MOV:
      case Opcode::NOP:
        return UnitClass::ALU;
      case Opcode::SFU:
        return UnitClass::SFU;
      case Opcode::LD_GLOBAL:
      case Opcode::ST_GLOBAL:
        return UnitClass::MEM_GLOBAL;
      case Opcode::LD_SHARED:
      case Opcode::ST_SHARED:
        return UnitClass::MEM_SHARED;
      case Opcode::BRA:
      case Opcode::EXIT:
      case Opcode::BAR:
        return UnitClass::CTRL;
      case Opcode::PREFETCH:
        return UnitClass::PREFETCH;
    }
    return UnitClass::ALU;
}

/**
 * Execution latency in core cycles from operand readiness to result
 * write-back, excluding register file access time (which the register
 * file system models) and excluding memory time for global accesses
 * (which the memory hierarchy models).
 */
constexpr int
execLatency(Opcode op)
{
    switch (unitClass(op)) {
      case UnitClass::ALU:
        return 6;
      case UnitClass::SFU:
        return 20;
      case UnitClass::MEM_SHARED:
        return 24;
      case UnitClass::MEM_GLOBAL:
        return 1;   // address generation; memory time added separately
      case UnitClass::CTRL:
        return 4;
      case UnitClass::PREFETCH:
        return 1;
    }
    return 1;
}

/** @return true for LD/ST to the global memory space. */
constexpr bool
isGlobalMem(Opcode op)
{
    return unitClass(op) == UnitClass::MEM_GLOBAL;
}

/** @return true for any load (defines a register from memory). */
constexpr bool
isLoad(Opcode op)
{
    return op == Opcode::LD_GLOBAL || op == Opcode::LD_SHARED;
}

/** @return true for any store. */
constexpr bool
isStore(Opcode op)
{
    return op == Opcode::ST_GLOBAL || op == Opcode::ST_SHARED;
}

/** @return true for block-terminating control flow. */
constexpr bool
isControl(Opcode op)
{
    return op == Opcode::BRA || op == Opcode::EXIT;
}

/** @return a printable mnemonic. */
const char *opcodeName(Opcode op);

} // namespace ltrf

#endif // LTRF_ISA_OPCODE_HH
