/**
 * @file
 * Static instruction representation.
 */

#ifndef LTRF_ISA_INSTRUCTION_HH
#define LTRF_ISA_INSTRUCTION_HH

#include <array>
#include <string>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "isa/opcode.hh"

namespace ltrf
{

/**
 * One static instruction.
 *
 * Up to three source registers and one destination register. The
 * per-source dead bits are the "dead operand bits" of section 3.2:
 * they are filled in by the liveness pass and consumed by LTRF+.
 * PREFETCH instructions additionally carry the 256-bit register
 * bit-vector naming the working set to load.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegId dst = INVALID_REG;
    std::array<RegId, 3> srcs = {INVALID_REG, INVALID_REG, INVALID_REG};
    /** Dead-operand bits: src i is dead after this instruction. */
    std::array<bool, 3> src_dead = {false, false, false};
    /** Memory stream id for LD/ST (indexes Kernel::mem_streams). */
    std::int16_t mem_stream = 0;
    /** PREFETCH working-set bit-vector (PREFETCH only). */
    RegBitVec prefetch_mask;

    /** @return the number of valid source operands. */
    int
    numSrcs() const
    {
        int n = 0;
        for (RegId s : srcs)
            if (s != INVALID_REG)
                n++;
        return n;
    }

    /** @return true if this instruction writes a register. */
    bool hasDst() const { return dst != INVALID_REG; }

    /** @return true if register @p r is read by this instruction. */
    bool
    reads(RegId r) const
    {
        for (RegId s : srcs)
            if (s == r)
                return true;
        return false;
    }

    /** Union all registers referenced (sources and destination). */
    void
    collectRegs(RegBitVec &vec) const
    {
        for (RegId s : srcs)
            if (s != INVALID_REG)
                vec.set(s);
        if (dst != INVALID_REG)
            vec.set(dst);
    }

    /** Render as e.g. "FFMA r4, r1, r2, r3" for diagnostics. */
    std::string toString() const;

    // ----- Convenience constructors -----

    static Instruction
    alu(Opcode op, RegId dst, RegId a = INVALID_REG, RegId b = INVALID_REG,
        RegId c = INVALID_REG)
    {
        Instruction i;
        i.op = op;
        i.dst = dst;
        i.srcs = {a, b, c};
        return i;
    }

    static Instruction
    load(Opcode op, RegId dst, RegId addr, std::int16_t stream)
    {
        Instruction i;
        i.op = op;
        i.dst = dst;
        i.srcs = {addr, INVALID_REG, INVALID_REG};
        i.mem_stream = stream;
        return i;
    }

    static Instruction
    store(Opcode op, RegId value, RegId addr, std::int16_t stream)
    {
        Instruction i;
        i.op = op;
        i.srcs = {addr, value, INVALID_REG};
        i.mem_stream = stream;
        return i;
    }

    static Instruction
    branch(RegId pred = INVALID_REG)
    {
        Instruction i;
        i.op = Opcode::BRA;
        i.srcs = {pred, INVALID_REG, INVALID_REG};
        return i;
    }

    static Instruction
    prefetch(const RegBitVec &mask)
    {
        Instruction i;
        i.op = Opcode::PREFETCH;
        i.prefetch_mask = mask;
        return i;
    }

    static Instruction
    exit()
    {
        Instruction i;
        i.op = Opcode::EXIT;
        return i;
    }
};

} // namespace ltrf

#endif // LTRF_ISA_INSTRUCTION_HH
