#include "isa/opcode.hh"

namespace ltrf
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::IADD:      return "IADD";
      case Opcode::IMUL:      return "IMUL";
      case Opcode::ISETP:     return "ISETP";
      case Opcode::FADD:      return "FADD";
      case Opcode::FMUL:      return "FMUL";
      case Opcode::FFMA:      return "FFMA";
      case Opcode::MOV:       return "MOV";
      case Opcode::SFU:       return "SFU";
      case Opcode::LD_GLOBAL: return "LD.G";
      case Opcode::ST_GLOBAL: return "ST.G";
      case Opcode::LD_SHARED: return "LD.S";
      case Opcode::ST_SHARED: return "ST.S";
      case Opcode::BRA:       return "BRA";
      case Opcode::EXIT:      return "EXIT";
      case Opcode::BAR:       return "BAR";
      case Opcode::PREFETCH:  return "PREFETCH";
      case Opcode::NOP:       return "NOP";
    }
    return "?";
}

} // namespace ltrf
