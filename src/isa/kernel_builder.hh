/**
 * @file
 * Structured-control-flow DSL for constructing kernels.
 *
 * The builder produces reducible CFGs (natural loops, if/else
 * diamonds), matching the paper's assumption that "compiler
 * infrastructures only produce reducible CFGs" (section 3.3).
 *
 * Example:
 * @code
 *   KernelBuilder b("example");
 *   b.mov(0).mov(1);
 *   b.beginLoop(16);
 *       b.ffma(2, 0, 1, 2);
 *   b.endLoop();
 *   Kernel k = b.build();
 * @endcode
 */

#ifndef LTRF_ISA_KERNEL_BUILDER_HH
#define LTRF_ISA_KERNEL_BUILDER_HH

#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace ltrf
{

/** Incrementally builds a Kernel with structured control flow. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    // ----- Instruction emitters (append to the current block) -----

    KernelBuilder &emit(const Instruction &in);

    KernelBuilder &iadd(int dst, int a, int b);
    KernelBuilder &imul(int dst, int a, int b);
    KernelBuilder &fadd(int dst, int a, int b);
    KernelBuilder &fmul(int dst, int a, int b);
    KernelBuilder &ffma(int dst, int a, int b, int c);
    KernelBuilder &mov(int dst, int src = INVALID_REG);
    KernelBuilder &isetp(int dst, int a, int b);
    KernelBuilder &sfu(int dst, int a);
    KernelBuilder &load(int dst, int addr, int stream);
    KernelBuilder &store(int value, int addr, int stream);
    KernelBuilder &sharedLoad(int dst, int addr);
    KernelBuilder &sharedStore(int value, int addr);

    // ----- Memory streams -----

    /** Declare an address stream; @return its id for load()/store(). */
    int stream(const MemStreamSpec &spec);

    // ----- Structured control flow -----

    /**
     * Open a natural loop executing @p trip_count iterations per
     * entry (per warp, jittered by +-@p trip_jitter deterministically).
     * Instructions emitted until the matching endLoop() form the body.
     */
    KernelBuilder &beginLoop(int trip_count, int trip_jitter = 0);

    /** Close the innermost open loop. */
    KernelBuilder &endLoop();

    /**
     * Open an if whose then-side executes with probability
     * @p taken_prob; @p pred_reg is the predicate source register.
     */
    KernelBuilder &beginIf(double taken_prob, int pred_reg = INVALID_REG);

    /** Switch from the then-side to the else-side. */
    KernelBuilder &beginElse();

    /** Close the innermost open if. */
    KernelBuilder &endIf();

    // ----- Metadata -----

    /** Set the uncapped per-thread register demand (Table 1 model). */
    KernelBuilder &regDemand(int regs);

    /** Finalize: terminate, wire predecessors, validate, and return. */
    Kernel build();

    /** @return the id of the block currently being appended to. */
    BlockId currentBlock() const { return cur; }

  private:
    struct LoopCtx
    {
        BlockId header;
        int trip_count;
        int trip_jitter;
    };

    struct IfCtx
    {
        BlockId cond_block;
        BlockId then_exit = INVALID_BLOCK;
        bool has_else = false;
    };

    /** Create a fresh block and return its id. */
    BlockId newBlock();

    /** End the current block with a fall-through edge to @p next. */
    void fallTo(BlockId next);

    BasicBlock &curBlock() { return kernel.blocks[cur]; }

    Kernel kernel;
    BlockId cur;
    std::vector<LoopCtx> loop_stack;
    std::vector<IfCtx> if_stack;
    bool built = false;
};

} // namespace ltrf

#endif // LTRF_ISA_KERNEL_BUILDER_HH
