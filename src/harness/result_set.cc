#include "harness/result_set.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "tech/rf_config.hh"

namespace ltrf::harness
{

namespace
{

constexpr const char *SCHEMA = "ltrf.resultset.v1";

Json
cellToJson(const ResultRow &row)
{
    const SweepCell &c = row.cell;
    const SimResult &r = row.result;
    Json j = Json::object();
    // Grid key first, then scalars, then measurements: the order is
    // load-bearing (byte-identical golden files), so append-only.
    j.set("workload", c.workload);
    j.set("design", rfDesignName(c.design));
    j.set("rf_config", c.rf_cfg_id);
    j.set("latency_mult", c.latency_mult);
    if (!c.tag.empty())
        j.set("tag", c.tag);
    j.set("num_sms", c.config.num_sms);
    // As a decimal string: JSON numbers ride through double storage,
    // which would silently round seeds above 2^53.
    j.set("seed", std::to_string(c.seed));
    j.set("cycles", static_cast<std::uint64_t>(r.cycles));
    j.set("instructions", r.instructions);
    j.set("ipc", r.ipc);
    j.set("resident_warps", r.resident_warps);
    j.set("main_accesses", r.main_accesses);
    j.set("cache_accesses", r.cache_accesses);
    j.set("wcb_accesses", r.wcb_accesses);
    j.set("xfer_regs", r.xfer_regs);
    j.set("prefetch_ops", r.prefetch_ops);
    j.set("writeback_regs", r.writeback_regs);
    j.set("prefetch_stall_cycles", r.prefetch_stall_cycles);
    j.set("cache_hit_rate", r.cache_hit_rate);
    j.set("l1d_hit_rate", r.l1d_hit_rate);
    j.set("main_accesses_per_cycle", r.activity.main_accesses_per_cycle);
    j.set("cache_accesses_per_cycle",
          r.activity.cache_accesses_per_cycle);
    j.set("wcb_accesses_per_cycle", r.activity.wcb_accesses_per_cycle);
    j.set("xfer_regs_per_cycle", r.activity.xfer_regs_per_cycle);
    if (row.normalized()) {
        j.set("baseline_ipc", row.baseline_ipc);
        j.set("normalized_ipc", row.normalizedIpc());
    }
    return j;
}

ResultRow
cellFromJson(const Json &j, int index)
{
    ResultRow row;
    SweepCell &c = row.cell;
    SimResult &r = row.result;
    c.index = index;
    c.workload = j.at("workload").asString();
    c.design = parseRfDesign(j.at("design").asString());
    c.rf_cfg_id = static_cast<int>(j.at("rf_config").asInt());
    c.latency_mult = j.at("latency_mult").asDouble();
    if (j.contains("tag"))
        c.tag = j.at("tag").asString();
    // Re-materialize the cell's configuration the way expandSweep()
    // does, so a loaded ResultSet can be re-simulated. Config edits
    // outside the grid key (SweepCell::tag cells, e.g. the ablation
    // harness's crossbar tweaks) are not serialized and cannot be
    // restored here.
    c.config.num_sms = static_cast<int>(j.at("num_sms").asInt());
    c.config.design = c.design;
    if (c.rf_cfg_id != 0)
        applyRfConfig(c.config, rfConfig(c.rf_cfg_id));
    if (c.latency_mult > 0.0)
        c.config.mrf_latency_mult = c.latency_mult;
    {
        const std::string &s = j.at("seed").asString();
        char *end = nullptr;
        c.seed = std::strtoull(s.c_str(), &end, 10);
        if (s.empty() || end != s.c_str() + s.size())
            ltrf_fatal("bad seed \"%s\" in ResultSet JSON", s.c_str());
    }
    r.workload = c.workload;
    r.design = c.design;
    r.cycles = j.at("cycles").asUint();
    r.instructions = j.at("instructions").asUint();
    r.ipc = j.at("ipc").asDouble();
    r.resident_warps = static_cast<int>(j.at("resident_warps").asInt());
    r.main_accesses = j.at("main_accesses").asUint();
    r.cache_accesses = j.at("cache_accesses").asUint();
    r.wcb_accesses = j.at("wcb_accesses").asUint();
    r.xfer_regs = j.at("xfer_regs").asUint();
    r.prefetch_ops = j.at("prefetch_ops").asUint();
    r.writeback_regs = j.at("writeback_regs").asUint();
    r.prefetch_stall_cycles = j.at("prefetch_stall_cycles").asUint();
    r.cache_hit_rate = j.at("cache_hit_rate").asDouble();
    r.l1d_hit_rate = j.at("l1d_hit_rate").asDouble();
    r.activity.main_accesses_per_cycle =
            j.at("main_accesses_per_cycle").asDouble();
    r.activity.cache_accesses_per_cycle =
            j.at("cache_accesses_per_cycle").asDouble();
    r.activity.wcb_accesses_per_cycle =
            j.at("wcb_accesses_per_cycle").asDouble();
    r.activity.xfer_regs_per_cycle =
            j.at("xfer_regs_per_cycle").asDouble();
    row.baseline_ipc = j.numberOr("baseline_ipc", 0.0);
    return row;
}

bool
keyMatches(const SweepCell &c, const std::string &workload,
           RfDesign design, int rf_cfg_id, double latency_mult)
{
    return c.workload == workload && c.design == design &&
           c.rf_cfg_id == rf_cfg_id && c.latency_mult == latency_mult;
}

} // namespace

const ResultRow &
ResultSet::find(const std::string &workload, RfDesign design,
                int rf_cfg_id, double latency_mult) const
{
    for (const ResultRow &row : rows_)
        if (keyMatches(row.cell, workload, design, rf_cfg_id,
                       latency_mult))
            return row;
    ltrf_fatal("result set has no cell (%s, %s, rf#%d, %.2fx)",
               workload.c_str(), rfDesignName(design), rf_cfg_id,
               latency_mult);
}

const ResultRow &
ResultSet::findTagged(const std::string &workload,
                      const std::string &tag) const
{
    for (const ResultRow &row : rows_)
        if (row.cell.workload == workload && row.cell.tag == tag)
            return row;
    ltrf_fatal("result set has no cell (%s, tag \"%s\")",
               workload.c_str(), tag.c_str());
}

std::vector<std::string>
ResultSet::workloads() const
{
    std::vector<std::string> names;
    for (const ResultRow &row : rows_) {
        bool seen = false;
        for (const std::string &n : names)
            if (n == row.cell.workload)
                seen = true;
        if (!seen)
            names.push_back(row.cell.workload);
    }
    return names;
}

std::vector<double>
ResultSet::normalizedByDesign(RfDesign design, int rf_cfg_id,
                              double latency_mult) const
{
    std::vector<double> vals;
    for (const std::string &w : workloads()) {
        const ResultRow &row = find(w, design, rf_cfg_id, latency_mult);
        if (!row.normalized())
            ltrf_fatal("cell (%s, %s) was not normalized", w.c_str(),
                       rfDesignName(design));
        vals.push_back(row.normalizedIpc());
    }
    return vals;
}

double
ResultSet::geomeanNormalized(RfDesign design, int rf_cfg_id,
                             double latency_mult) const
{
    return geomean(normalizedByDesign(design, rf_cfg_id, latency_mult));
}

double
ResultSet::mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
ResultSet::geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

Json
ResultSet::toJson() const
{
    Json root = Json::object();
    root.set("schema", SCHEMA);
    Json cells = Json::array();
    for (const ResultRow &row : rows_)
        cells.push(cellToJson(row));
    root.set("cells", std::move(cells));
    return root;
}

ResultSet
ResultSet::fromJson(const Json &j)
{
    if (!j.contains("schema") || j.at("schema").asString() != SCHEMA)
        ltrf_fatal("not a %s document", SCHEMA);
    ResultSet rs;
    const Json &cells = j.at("cells");
    for (std::size_t i = 0; i < cells.size(); i++)
        rs.add(cellFromJson(cells.at(i), static_cast<int>(i)));
    return rs;
}

std::string
ResultSet::dumpJson() const
{
    return toJson().dump(2) + "\n";
}

std::string
ResultSet::toCsv() const
{
    // The one source of the CSV column set: the superset of
    // cellToJson() keys (tag and the normalization columns are
    // conditional there and emit as empty cells here). Header and
    // rows both walk it, so they cannot drift apart.
    static constexpr const char *COLUMNS[] = {
            "workload", "design", "rf_config", "latency_mult", "tag",
            "num_sms", "seed", "cycles", "instructions", "ipc",
            "resident_warps", "main_accesses", "cache_accesses",
            "wcb_accesses", "xfer_regs", "prefetch_ops",
            "writeback_regs", "prefetch_stall_cycles",
            "cache_hit_rate", "l1d_hit_rate",
            "main_accesses_per_cycle", "cache_accesses_per_cycle",
            "wcb_accesses_per_cycle", "xfer_regs_per_cycle",
            "baseline_ipc", "normalized_ipc"};

    std::string out;
    bool first = true;
    for (const char *key : COLUMNS) {
        if (!first)
            out += ',';
        first = false;
        out += key;
    }
    out += '\n';

    for (const ResultRow &row : rows_) {
        // Walk the JSON cell so CSV numbers are byte-identical to
        // the JSON writer's.
        const Json j = cellToJson(row);
        first = true;
        for (const char *key : COLUMNS) {
            if (!first)
                out += ',';
            first = false;
            if (!j.contains(key))
                continue;
            const Json &v = j.at(key);
            // Only string fields can carry CSV metacharacters; the
            // JSON number/bool texts never contain commas or quotes.
            out += v.type() == Json::Type::STRING ? csvField(v.asString())
                                                  : v.dump();
        }
        out += '\n';
    }
    return out;
}

void
ResultSet::writeJsonFile(const std::string &path) const
{
    writeTextFile(path, dumpJson());
}

void
ResultSet::writeFile(const std::string &path, OutputFormat format) const
{
    writeTextFile(path,
                  format == OutputFormat::CSV ? toCsv() : dumpJson());
}

ResultSet
ResultSet::readJsonFile(const std::string &path)
{
    return fromJson(Json::parse(readTextFile(path)));
}

void
ResultSet::printTable(std::FILE *out, const std::vector<RfDesign> &designs,
                      int rf_cfg_id, double latency_mult) const
{
    std::fprintf(out, "%-16s", "workload");
    for (RfDesign d : designs)
        std::fprintf(out, " %12s", rfDesignName(d));
    std::fprintf(out, "\n");
    for (std::size_t i = 0; i < 16 + designs.size() * 13; i++)
        std::fputc('-', out);
    std::fputc('\n', out);

    bool all_normalized = true;
    for (const std::string &w : workloads()) {
        std::fprintf(out, "%-16s", w.c_str());
        for (RfDesign d : designs) {
            const ResultRow &row = find(w, d, rf_cfg_id, latency_mult);
            all_normalized = all_normalized && row.normalized();
            std::fprintf(out, " %12.3f",
                         row.normalized() ? row.normalizedIpc()
                                          : row.result.ipc);
        }
        std::fputc('\n', out);
    }

    if (all_normalized) {
        std::fprintf(out, "%-16s", "GEOMEAN");
        for (RfDesign d : designs)
            std::fprintf(out, " %12.3f",
                         geomeanNormalized(d, rf_cfg_id, latency_mult));
        std::fputc('\n', out);
    }
}

} // namespace ltrf::harness
