#include "harness/bench.hh"

#include <chrono>
#include <thread>

#ifdef __unix__
#include <unistd.h>
#endif

#include "common/log.hh"
#include "harness/sweep.hh"
#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace ltrf::harness
{

namespace
{

const std::vector<RfDesign> BENCH_DESIGNS = {
        RfDesign::BL, RfDesign::RFC, RfDesign::LTRF, RfDesign::LTRF_PLUS};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
}

double
rate(std::uint64_t n, double wall_s)
{
    return wall_s > 0.0 ? static_cast<double>(n) / wall_s : 0.0;
}

} // namespace

BenchSuiteSpec
benchSuite(const std::string &name)
{
    BenchSuiteSpec s;
    s.name = name;
    s.designs = BENCH_DESIGNS;
    if (name == "default") {
        s.workloads = resolveWorkloads("all");
        s.num_sms = 4;
    } else if (name == "quick") {
        s.workloads = {"bfs", "btree", "streamcluster", "histo"};
        s.num_sms = 2;
    } else {
        ltrf_fatal("unknown bench suite \"%s\" (expected %s)",
                   name.c_str(), benchSuiteNames().c_str());
    }
    return s;
}

std::string
benchSuiteNames()
{
    return "default, quick";
}

BenchSuiteResult
runBenchSuite(const BenchSuiteSpec &spec)
{
    ltrf_assert(spec.reps >= 1, "bench reps must be >= 1, got %d",
                spec.reps);
    SweepSpec sweep;
    sweep.workloads = spec.workloads;
    sweep.designs = spec.designs;
    sweep.rf_cfg_ids = {spec.rf_cfg_id};
    sweep.num_sms = spec.num_sms;
    sweep.seed = spec.seed;
    std::vector<SweepCell> cells = expandSweep(sweep);

    BenchSuiteResult out;
    out.spec = spec;
    for (RfDesign d : spec.designs) {
        BenchDesignResult dr;
        dr.design = d;
        out.designs.push_back(dr);
    }

    for (SweepCell &cell : cells) {
        const Workload &w = WorkloadSuite::byName(cell.workload);
        // The bench measures simulator throughput; static verification
        // is covered by tests and `ltrf_run --verify-only`, so keep it
        // off the timed path.
        cell.config.verify_kernels = false;
        SimResult best_r;
        double best_wall = 0.0;
        for (int rep = 0; rep < spec.reps; rep++) {
            auto t0 = std::chrono::steady_clock::now();
            SimResult r = simulate(cell.config, w.kernel, cell.seed);
            double wall = secondsSince(t0);
            if (rep == 0 || wall < best_wall) {
                best_wall = wall;
                best_r = r;
            }
        }
        for (BenchDesignResult &dr : out.designs) {
            if (dr.design != cell.design)
                continue;
            dr.cells++;
            dr.instructions += best_r.instructions;
            dr.sim_cycles += best_r.cycles;
            dr.wall_s += best_wall;
        }
        out.cells++;
        out.instructions += best_r.instructions;
        out.sim_cycles += best_r.cycles;
        out.wall_s += best_wall;
    }

    for (BenchDesignResult &dr : out.designs) {
        dr.instr_per_s = rate(dr.instructions, dr.wall_s);
        dr.sim_cycles_per_s = rate(dr.sim_cycles, dr.wall_s);
    }
    out.cells_per_s = rate(static_cast<std::uint64_t>(out.cells),
                           out.wall_s);
    out.instr_per_s = rate(out.instructions, out.wall_s);
    out.sim_cycles_per_s = rate(out.sim_cycles, out.wall_s);
    return out;
}

Json
machineInfo()
{
    Json m = Json::object();
    std::string host = "unknown";
#ifdef __unix__
    char buf[256] = {0};
    if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0')
        host = buf;
#endif
    m.set("host", host);
    m.set("cpus", static_cast<std::uint64_t>(
                          std::thread::hardware_concurrency()));
#if defined(__clang__)
    m.set("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
    m.set("compiler", std::string("gcc ") + __VERSION__);
#else
    m.set("compiler", "unknown");
#endif
#ifdef NDEBUG
    m.set("assertions_off", true);
#else
    m.set("assertions_off", false);
#endif
    return m;
}

Json
BenchReport::toJson() const
{
    Json j = Json::object();
    j.set("bench_schema", schema);
    j.set("generated_by", "ltrf_bench");
    j.set("machine", machine);
    Json arr = Json::array();
    for (const BenchSuiteResult &s : suites) {
        Json js = Json::object();
        js.set("name", s.spec.name);
        Json wl = Json::array();
        for (const std::string &w : s.spec.workloads)
            wl.push(w);
        js.set("workloads", std::move(wl));
        js.set("rf_config", s.spec.rf_cfg_id);
        js.set("sms", s.spec.num_sms);
        js.set("seed", s.spec.seed);
        js.set("reps", s.spec.reps);
        js.set("cells", s.cells);
        js.set("wall_s", s.wall_s);
        js.set("cells_per_s", s.cells_per_s);
        js.set("instructions", s.instructions);
        js.set("sim_cycles", s.sim_cycles);
        js.set("instr_per_s", s.instr_per_s);
        js.set("sim_cycles_per_s", s.sim_cycles_per_s);
        if (s.prior_cells_per_s > 0.0) {
            js.set("prior_cells_per_s", s.prior_cells_per_s);
            js.set("speedup", s.speedup);
        }
        Json designs = Json::array();
        for (const BenchDesignResult &d : s.designs) {
            Json jd = Json::object();
            jd.set("design", rfDesignName(d.design));
            jd.set("cells", d.cells);
            jd.set("wall_s", d.wall_s);
            jd.set("instructions", d.instructions);
            jd.set("sim_cycles", d.sim_cycles);
            jd.set("instr_per_s", d.instr_per_s);
            jd.set("sim_cycles_per_s", d.sim_cycles_per_s);
            designs.push(std::move(jd));
        }
        js.set("designs", std::move(designs));
        arr.push(std::move(js));
    }
    j.set("suites", std::move(arr));
    return j;
}

BenchReport
BenchReport::fromJson(const Json &j)
{
    BenchReport r;
    r.schema = static_cast<int>(j.at("bench_schema").asInt());
    if (r.schema > BENCH_SCHEMA_VERSION)
        ltrf_fatal("bench report schema %d is newer than this "
                   "binary's %d",
                   r.schema, BENCH_SCHEMA_VERSION);
    if (j.contains("machine"))
        r.machine = j.at("machine");
    const Json &arr = j.at("suites");
    for (std::size_t i = 0; i < arr.size(); i++) {
        const Json &js = arr.at(i);
        BenchSuiteResult s;
        s.spec.name = js.at("name").asString();
        const Json &wl = js.at("workloads");
        for (std::size_t k = 0; k < wl.size(); k++)
            s.spec.workloads.push_back(wl.at(k).asString());
        s.spec.rf_cfg_id = static_cast<int>(js.at("rf_config").asInt());
        s.spec.num_sms = static_cast<int>(js.at("sms").asInt());
        s.spec.seed = js.at("seed").asUint();
        s.spec.reps = static_cast<int>(js.numberOr("reps", 1));
        s.cells = static_cast<int>(js.at("cells").asInt());
        s.wall_s = js.at("wall_s").asDouble();
        s.cells_per_s = js.at("cells_per_s").asDouble();
        s.instructions = js.at("instructions").asUint();
        s.sim_cycles = js.at("sim_cycles").asUint();
        s.instr_per_s = js.at("instr_per_s").asDouble();
        s.sim_cycles_per_s = js.at("sim_cycles_per_s").asDouble();
        s.prior_cells_per_s = js.numberOr("prior_cells_per_s", 0.0);
        s.speedup = js.numberOr("speedup", 0.0);
        const Json &designs = js.at("designs");
        for (std::size_t k = 0; k < designs.size(); k++) {
            const Json &jd = designs.at(k);
            BenchDesignResult d;
            d.design = parseRfDesign(jd.at("design").asString());
            d.cells = static_cast<int>(jd.at("cells").asInt());
            d.wall_s = jd.at("wall_s").asDouble();
            d.instructions = jd.at("instructions").asUint();
            d.sim_cycles = jd.at("sim_cycles").asUint();
            d.instr_per_s = jd.at("instr_per_s").asDouble();
            d.sim_cycles_per_s = jd.at("sim_cycles_per_s").asDouble();
            s.designs.push_back(d);
        }
        r.suites.push_back(std::move(s));
    }
    return r;
}

const BenchSuiteResult *
BenchReport::find(const std::string &name) const
{
    for (const BenchSuiteResult &s : suites)
        if (s.spec.name == name)
            return &s;
    return nullptr;
}

void
BenchReport::annotateSpeedup(const BenchReport &prior)
{
    for (BenchSuiteResult &s : suites) {
        const BenchSuiteResult *p = prior.find(s.spec.name);
        if (!p || p->cells_per_s <= 0.0)
            continue;
        s.prior_cells_per_s = p->cells_per_s;
        s.speedup = s.cells_per_s / p->cells_per_s;
    }
}

std::vector<BenchRegression>
compareBench(const BenchReport &baseline, const BenchReport &fresh,
             double tolerance)
{
    ltrf_assert(tolerance >= 0.0 && tolerance < 1.0,
                "tolerance must be in [0, 1), got %f", tolerance);
    std::vector<BenchRegression> out;
    auto check = [&](const std::string &suite, const std::string &metric,
                     double old_v, double new_v) {
        if (old_v <= 0.0)
            return;
        if (new_v >= old_v * (1.0 - tolerance))
            return;
        BenchRegression r;
        r.suite = suite;
        r.metric = metric;
        r.old_value = old_v;
        r.new_value = new_v;
        r.ratio = new_v / old_v;
        out.push_back(std::move(r));
    };
    bool compared_any = false;
    for (const BenchSuiteResult &old_s : baseline.suites) {
        const BenchSuiteResult *new_s = fresh.find(old_s.spec.name);
        if (!new_s)
            continue;
        compared_any = true;
        check(old_s.spec.name, "cells_per_s", old_s.cells_per_s,
              new_s->cells_per_s);
        for (const BenchDesignResult &od : old_s.designs) {
            for (const BenchDesignResult &nd : new_s->designs) {
                if (nd.design != od.design)
                    continue;
                check(old_s.spec.name,
                      std::string("instr_per_s[") +
                              rfDesignName(od.design) + "]",
                      od.instr_per_s, nd.instr_per_s);
            }
        }
    }
    if (!compared_any)
        ltrf_fatal("the two reports share no suite — nothing to "
                   "compare");
    return out;
}

} // namespace ltrf::harness
