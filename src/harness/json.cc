#include "harness/json.hh"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace ltrf::harness
{

namespace
{

const char *
typeName(Json::Type t)
{
    switch (t) {
      case Json::Type::NUL: return "null";
      case Json::Type::BOOL: return "bool";
      case Json::Type::NUMBER: return "number";
      case Json::Type::STRING: return "string";
      case Json::Type::ARRAY: return "array";
      case Json::Type::OBJECT: return "object";
    }
    return "?";
}

/**
 * Canonical number formatting: integers (the bulk of SimResult —
 * cycle and event counters) print without a decimal point or
 * exponent; everything else prints with %.17g, which round-trips
 * IEEE doubles exactly.
 */
void
appendNumber(std::string &out, double d)
{
    char buf[40];
    if (std::isfinite(d) && d == std::floor(d) &&
        std::fabs(d) < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(d));
    } else if (std::isfinite(d)) {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
    } else {
        // JSON has no Inf/NaN; the harness never produces them.
        ltrf_fatal("cannot serialize non-finite number to JSON");
    }
    out += buf;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Thrown by the lenient parser instead of exiting (tryParse). */
struct ParseError
{
};

/** Recursive-descent parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text, bool lenient = false)
        : text(text), lenient(lenient)
    {
    }

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        if (pos != text.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        if (lenient)
            throw ParseError{};
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos && i < text.size(); i++) {
            if (text[i] == '\n') { line++; col = 1; } else col++;
        }
        ltrf_fatal("JSON parse error at line %zu col %zu: %s", line,
                   col, what);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            pos++;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        pos++;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            pos++;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view w)
    {
        if (text.substr(pos, w.size()) == w) {
            pos += w.size();
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json(parseString());
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        if (consumeWord("true"))
            return Json(true);
        if (consumeWord("false"))
            return Json(false);
        if (consumeWord("null"))
            return Json();
        fail("expected a JSON value");
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (consume('}'))
            return obj;
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipWs();
            expect(':');
            obj.set(key, parseValue());
            skipWs();
            if (consume(','))
                continue;
            expect('}');
            return obj;
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (consume(']'))
            return arr;
        while (true) {
            arr.push(parseValue());
            skipWs();
            if (consume(','))
                continue;
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return s;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'n': s += '\n'; break;
              case 't': s += '\t'; break;
              case 'r': s += '\r'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The harness only emits ASCII escapes; decode the
                // BMP code point as UTF-8.
                if (code < 0x80) {
                    s += static_cast<char>(code);
                } else if (code < 0x800) {
                    s += static_cast<char>(0xc0 | (code >> 6));
                    s += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    s += static_cast<char>(0xe0 | (code >> 12));
                    s += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    s += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape character");
            }
        }
    }

    Json
    parseNumber()
    {
        std::size_t start = pos;
        if (consume('-')) {}
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            pos++;
        std::string num(text.substr(start, pos - start));
        char *end = nullptr;
        double d = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size() || num.empty())
            fail("malformed number");
        return Json(d);
    }

    std::string_view text;
    std::size_t pos = 0;
    bool lenient;
};

} // namespace

bool
Json::asBool() const
{
    if (type_ != Type::BOOL)
        ltrf_fatal("JSON value is %s, expected bool", typeName(type_));
    return bool_;
}

double
Json::asDouble() const
{
    if (type_ != Type::NUMBER)
        ltrf_fatal("JSON value is %s, expected number", typeName(type_));
    return num_;
}

std::int64_t
Json::asInt() const
{
    return static_cast<std::int64_t>(asDouble());
}

std::uint64_t
Json::asUint() const
{
    double d = asDouble();
    if (d < 0)
        ltrf_fatal("JSON number %g is negative, expected unsigned", d);
    return static_cast<std::uint64_t>(d);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::STRING)
        ltrf_fatal("JSON value is %s, expected string", typeName(type_));
    return str_;
}

Json &
Json::push(Json v)
{
    if (type_ != Type::ARRAY)
        ltrf_fatal("push() on JSON %s", typeName(type_));
    arr_.push_back(std::move(v));
    return *this;
}

std::size_t
Json::size() const
{
    if (type_ == Type::ARRAY)
        return arr_.size();
    if (type_ == Type::OBJECT)
        return obj_.size();
    ltrf_fatal("size() on JSON %s", typeName(type_));
}

const Json &
Json::at(std::size_t i) const
{
    if (type_ != Type::ARRAY)
        ltrf_fatal("indexed at() on JSON %s", typeName(type_));
    if (i >= arr_.size())
        ltrf_fatal("JSON array index %zu out of range (size %zu)", i,
                   arr_.size());
    return arr_[i];
}

Json &
Json::set(const std::string &key, Json v)
{
    if (type_ != Type::OBJECT)
        ltrf_fatal("set() on JSON %s", typeName(type_));
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

bool
Json::contains(const std::string &key) const
{
    if (type_ != Type::OBJECT)
        return false;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return true;
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    if (type_ != Type::OBJECT)
        ltrf_fatal("keyed at() on JSON %s", typeName(type_));
    for (const auto &[k, v] : obj_)
        if (k == key)
            return v;
    ltrf_fatal("JSON object has no key \"%s\"", key.c_str());
}

double
Json::numberOr(const std::string &key, double fallback) const
{
    if (!contains(key))
        return fallback;
    return at(key).asDouble();
}

bool
Json::boolOr(const std::string &key, bool fallback) const
{
    if (!contains(key))
        return fallback;
    return at(key).asBool();
}

std::string
Json::stringOr(const std::string &key,
               const std::string &fallback) const
{
    if (!contains(key))
        return fallback;
    return at(key).asString();
}

const std::vector<std::pair<std::string, Json>> &
Json::items() const
{
    if (type_ != Type::OBJECT)
        ltrf_fatal("items() on JSON %s", typeName(type_));
    return obj_;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent >= 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };

    switch (type_) {
      case Type::NUL:
        out += "null";
        break;
      case Type::BOOL:
        out += bool_ ? "true" : "false";
        break;
      case Type::NUMBER:
        appendNumber(out, num_);
        break;
      case Type::STRING:
        appendEscaped(out, str_);
        break;
      case Type::ARRAY:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); i++) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::OBJECT:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); i++) {
            if (i)
                out += ',';
            newline(depth + 1);
            appendEscaped(out, obj_[i].first);
            out += indent >= 0 ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Json
Json::parse(std::string_view text)
{
    return Parser(text).parse();
}

bool
Json::tryParse(std::string_view text, Json &out)
{
    try {
        out = Parser(text, /*lenient=*/true).parse();
        return true;
    } catch (const ParseError &) {
        return false;
    }
}

std::string
jsonNumberText(double d)
{
    std::string out;
    appendNumber(out, d);
    return out;
}

bool
Json::operator==(const Json &o) const
{
    if (type_ != o.type_)
        return false;
    switch (type_) {
      case Type::NUL: return true;
      case Type::BOOL: return bool_ == o.bool_;
      case Type::NUMBER: return num_ == o.num_;
      case Type::STRING: return str_ == o.str_;
      case Type::ARRAY: return arr_ == o.arr_;
      case Type::OBJECT: return obj_ == o.obj_;
    }
    return false;
}

} // namespace ltrf::harness
