/**
 * @file
 * Shared output plumbing for the CLIs (`ltrf_run`, `ltrf_dse`):
 * the `--format json|csv` selector and the "-"-means-stdout file
 * writer both drivers use, so their emit behaviour cannot drift
 * apart.
 */

#ifndef LTRF_HARNESS_EMIT_HH
#define LTRF_HARNESS_EMIT_HH

#include <string>

namespace ltrf::harness
{

enum class OutputFormat
{
    JSON,
    CSV,
};

/** @return "json" or "csv". */
const char *outputFormatName(OutputFormat f);

/**
 * Parse a `--format` value (case-insensitive "json" or "csv") into
 * @p out. @return false on an unrecognized name, leaving @p out
 * untouched, so CLIs can issue their own usage error.
 */
bool parseOutputFormat(const std::string &s, OutputFormat &out);

/**
 * Write @p text to @p path; "-" writes to stdout. fatal() on I/O
 * errors — a sweep whose results cannot be saved should not report
 * success.
 */
void writeTextFile(const std::string &path, const std::string &text);

/**
 * Read @p path in full; "-" reads stdin. fatal() on I/O errors.
 * The inverse of writeTextFile(), used by `ltrf_dse --resume` to
 * round-trip saved frontier reports.
 */
std::string readTextFile(const std::string &path);

/**
 * RFC 4180 CSV field quoting: a value containing a comma, a double
 * quote, or a newline is wrapped in double quotes with embedded
 * quotes doubled; anything else passes through verbatim. Both CSV
 * writers (ResultSet::toCsv, DseResult::toCsv) route every field
 * through this, so a workload or axis token with a comma in its
 * name cannot shear a row.
 */
std::string csvField(const std::string &value);

} // namespace ltrf::harness

#endif // LTRF_HARNESS_EMIT_HH
