/**
 * @file
 * Declarative sweep specification for the experiment runner.
 *
 * A SweepSpec names the grid the paper's evaluation walks — workloads
 * x register file designs x Table 2 configurations (x optionally a
 * raw latency-multiplier axis, which Figure 11's tolerable-latency
 * sweep uses instead of Table 2 rows) — plus the scalar knobs shared
 * by every cell (SM count, seed, active warps). expandSweep()
 * materializes it into a flat, deterministically-ordered vector of
 * SweepCells, each carrying a fully-built SimConfig; harnesses with
 * knobs outside the grid (e.g. the ablation study's crossbar-width
 * sweep) expand first and then edit cell.config / cell.tag directly.
 */

#ifndef LTRF_HARNESS_SWEEP_HH
#define LTRF_HARNESS_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"

namespace ltrf::harness
{

/** The declarative experiment grid. */
struct SweepSpec
{
    /**
     * Workload names (resolved against WorkloadSuite::byName()).
     * resolveWorkloads() turns the selector strings "all",
     * "sensitive", and "insensitive" into explicit name lists.
     */
    std::vector<std::string> workloads;

    /** Register file designs to evaluate. */
    std::vector<RfDesign> designs;

    /**
     * Table 2 configuration ids (1-7) applied via applyRfConfig();
     * the sentinel 0 means "leave the baseline register file
     * parameters untouched".
     */
    std::vector<int> rf_cfg_ids = {0};

    /**
     * Optional raw main-RF latency multipliers, applied after the
     * Table 2 row. Empty means "no override axis" (a single pass
     * with the multiplier the Table 2 row set).
     */
    std::vector<double> latency_mults;

    // ----- Scalars shared by every cell -----
    int num_sms = 4;
    /** 0 keeps SimConfig's default active-warp pool. */
    int num_active_warps = 0;
    std::uint64_t seed = 2018;
};

/** One (workload, design, rf config, latency) point of the grid. */
struct SweepCell
{
    /** Position in expansion order; results are reported in it. */
    int index = 0;

    // ----- Grid key -----
    std::string workload;
    RfDesign design = RfDesign::BL;
    int rf_cfg_id = 0;          ///< 0 = no Table 2 row applied
    double latency_mult = 0.0;  ///< 0 = no explicit override
    /** Free-form disambiguator for cells that edit config directly. */
    std::string tag;

    /** Fully materialized configuration the cell simulates. */
    SimConfig config;
    std::uint64_t seed = 2018;
};

/**
 * Expand @p spec into cells, ordered workload-major, then design,
 * then Table 2 id, then latency multiplier. fatal() on unknown
 * workload names or out-of-range configuration ids.
 */
std::vector<SweepCell> expandSweep(const SweepSpec &spec);

/**
 * The baseline configuration cells of @p spec are normalized
 * against: BL design, no Table 2 row, same SM count / active warps.
 */
SimConfig baselineConfigFor(const SweepSpec &spec);

// ----- Selector / CLI parsing helpers -----

/** Split @p s at @p sep, dropping empty fields. */
std::vector<std::string> splitList(const std::string &s, char sep = ',');

/**
 * Resolve a workload selector — "all", "sensitive", "insensitive",
 * or a comma-separated name list — into explicit workload names.
 * fatal() on unknown names.
 */
std::vector<std::string> resolveWorkloads(const std::string &selector);

/**
 * Parse a design selector — "all" or a comma-separated list of the
 * rfDesignName() names ("BL", "RFC", "SHRF", "LTRF-strand", "LTRF",
 * "LTRF+", "Ideal"; case-insensitive). fatal() on unknown names.
 */
std::vector<RfDesign> resolveDesigns(const std::string &selector);

/** Parse one design name; fatal() if unknown. */
RfDesign parseRfDesign(const std::string &name);

} // namespace ltrf::harness

#endif // LTRF_HARNESS_SWEEP_HH
