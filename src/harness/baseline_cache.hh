/**
 * @file
 * Thread-safe cache of per-workload baseline IPCs.
 *
 * The normalization baseline of the paper's evaluation (Table 2
 * configuration #1, the 256KB HP-SRAM register file with the BL
 * design) never changes within a harness run, but it is expensive to
 * simulate, so every harness wants it computed at most once per
 * workload. The old `bench_util.hh` version used a function-local
 * `static std::map`, which races once the experiment runner executes
 * cells on a thread pool; this class replaces it with a
 * mutex-guarded future map where the first requester computes and
 * every concurrent requester blocks on the same shared_future rather
 * than duplicating the simulation.
 */

#ifndef LTRF_HARNESS_BASELINE_CACHE_HH
#define LTRF_HARNESS_BASELINE_CACHE_HH

#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>

#include "common/config.hh"

namespace ltrf
{

struct Workload;

namespace harness
{

/** Computes and memoizes baseline IPCs; safe to share across threads. */
class BaselineCache
{
  public:
    /**
     * @param baseline_cfg the configuration every workload's baseline
     *                     is simulated with (design forced to BL by
     *                     convention of the caller; the cache runs it
     *                     verbatim)
     * @param seed         workload seed, matching the measured runs
     */
    BaselineCache(const SimConfig &baseline_cfg, std::uint64_t seed);

    /** Baseline IPC of @p w, simulating it on first request. */
    double ipc(const Workload &w);

    /** True if @p workload_name has already been computed/requested. */
    bool contains(const std::string &workload_name) const;

    const SimConfig &config() const { return base_cfg; }
    std::uint64_t seed() const { return base_seed; }

  private:
    SimConfig base_cfg;
    std::uint64_t base_seed;

    mutable std::mutex mu;
    std::map<std::string, std::shared_future<double>> futures;
};

} // namespace harness
} // namespace ltrf

#endif // LTRF_HARNESS_BASELINE_CACHE_HH
