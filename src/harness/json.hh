/**
 * @file
 * Minimal JSON value type for the experiment harness: a writer with
 * deterministic output (insertion-ordered object keys, canonical
 * number formatting) and a strict parser.
 *
 * Determinism is a hard requirement here, not a nicety: CI diffs the
 * `ltrf_run` smoke-sweep output against a golden file and against a
 * run with a different thread count, so dumping the same value twice
 * must produce byte-identical text.
 */

#ifndef LTRF_HARNESS_JSON_HH
#define LTRF_HARNESS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ltrf::harness
{

/** A JSON value: null, bool, number, string, array, or object. */
class Json
{
  public:
    enum class Type
    {
        NUL,
        BOOL,
        NUMBER,
        STRING,
        ARRAY,
        OBJECT,
    };

    Json() : type_(Type::NUL) {}
    Json(bool b) : type_(Type::BOOL), bool_(b) {}
    Json(double d) : type_(Type::NUMBER), num_(d) {}
    Json(int i) : type_(Type::NUMBER), num_(i) {}
    Json(std::int64_t i)
        : type_(Type::NUMBER), num_(static_cast<double>(i)) {}
    Json(std::uint64_t u)
        : type_(Type::NUMBER), num_(static_cast<double>(u)) {}
    Json(const char *s) : type_(Type::STRING), str_(s) {}
    Json(std::string s) : type_(Type::STRING), str_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::ARRAY; return j; }
    static Json object() { Json j; j.type_ = Type::OBJECT; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::NUL; }

    // ----- Scalar access (fatal() on type mismatch) -----
    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;

    // ----- Array access -----
    /** Append an element (array only). */
    Json &push(Json v);
    std::size_t size() const;
    const Json &at(std::size_t i) const;

    // ----- Object access (insertion-ordered) -----
    /** Set @p key to @p v, replacing an existing entry in place. */
    Json &set(const std::string &key, Json v);
    bool contains(const std::string &key) const;
    /** Look @p key up; fatal() if absent. */
    const Json &at(const std::string &key) const;
    /** Look @p key up; @p fallback if absent. */
    double numberOr(const std::string &key, double fallback) const;
    /** Look @p key up; @p fallback if absent. */
    bool boolOr(const std::string &key, bool fallback) const;
    /** Look @p key up; @p fallback if absent. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    const std::vector<std::pair<std::string, Json>> &items() const;

    /**
     * Serialize. @p indent < 0 emits compact single-line output;
     * otherwise pretty-print with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /** Parse @p text; fatal() with a line/column message on error. */
    static Json parse(std::string_view text);

    /**
     * Parse @p text into @p out, returning false on malformed input
     * instead of exiting. For readers of files the process does not
     * own — the persistent cell store must treat a corrupted or
     * truncated cache entry as a miss, never as a fatal error.
     * @p out is untouched on failure.
     */
    static bool tryParse(std::string_view text, Json &out);

    bool operator==(const Json &o) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/**
 * The writer's canonical number formatting (integers without a
 * decimal point, everything else %.17g), exposed so the CSV emitter
 * produces byte-identical numbers to the JSON one.
 */
std::string jsonNumberText(double d);

} // namespace ltrf::harness

#endif // LTRF_HARNESS_JSON_HH
