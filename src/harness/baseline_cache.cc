#include "harness/baseline_cache.hh"

#include <memory>

#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace ltrf::harness
{

BaselineCache::BaselineCache(const SimConfig &baseline_cfg,
                             std::uint64_t seed)
    : base_cfg(baseline_cfg), base_seed(seed)
{
}

double
BaselineCache::ipc(const Workload &w)
{
    using Task = std::packaged_task<double()>;
    std::shared_ptr<Task> my_task;
    std::shared_future<double> fut;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = futures.find(w.name);
        if (it != futures.end()) {
            fut = it->second;
        } else {
            // Register the future under the lock, but simulate
            // outside it so concurrent requests for other workloads
            // proceed in parallel.
            my_task = std::make_shared<Task>([this, &w] {
                return simulate(base_cfg, w.kernel, base_seed).ipc;
            });
            fut = my_task->get_future().share();
            futures.emplace(w.name, fut);
        }
    }
    if (my_task)
        (*my_task)();
    return fut.get();
}

bool
BaselineCache::contains(const std::string &workload_name) const
{
    std::lock_guard<std::mutex> lock(mu);
    return futures.count(workload_name) != 0;
}

} // namespace ltrf::harness
