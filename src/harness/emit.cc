#include "harness/emit.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/log.hh"
#include "common/strutil.hh"

namespace ltrf::harness
{

const char *
outputFormatName(OutputFormat f)
{
    return f == OutputFormat::CSV ? "csv" : "json";
}

bool
parseOutputFormat(const std::string &s, OutputFormat &out)
{
    const std::string low = lowered(s);
    if (low == "json") {
        out = OutputFormat::JSON;
        return true;
    }
    if (low == "csv") {
        out = OutputFormat::CSV;
        return true;
    }
    return false;
}

std::string
csvField(const std::string &value)
{
    if (value.find_first_of(",\"\r\n") == std::string::npos)
        return value;
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        ltrf_fatal("cannot open %s for writing: %s", path.c_str(),
                   std::strerror(errno));
    std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    if (n != text.size() || std::fclose(f) != 0)
        ltrf_fatal("short write to %s", path.c_str());
}

std::string
readTextFile(const std::string &path)
{
    std::FILE *f = path == "-" ? stdin : std::fopen(path.c_str(), "r");
    if (!f)
        ltrf_fatal("cannot open %s for reading: %s", path.c_str(),
                   std::strerror(errno));
    std::string text;
    char buf[64 * 1024];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool bad = std::ferror(f) != 0;
    if (f != stdin)
        std::fclose(f);
    if (bad)
        ltrf_fatal("read error on %s", path.c_str());
    return text;
}

} // namespace ltrf::harness
