/**
 * @file
 * Aggregated results of an experiment sweep.
 *
 * A ResultSet holds one ResultRow per executed SweepCell, in cell
 * index order regardless of which pool thread finished first — that
 * ordering (plus the deterministic JSON writer) is what makes
 * `ltrf_run --jobs 1` and `--jobs 8` byte-identical. It provides the
 * aggregation the figure harnesses share: baseline-normalized IPC,
 * geometric means per series, lookup by grid key, and JSON and table
 * emission.
 */

#ifndef LTRF_HARNESS_RESULT_SET_HH
#define LTRF_HARNESS_RESULT_SET_HH

#include <cstdio>
#include <string>
#include <vector>

#include "harness/emit.hh"
#include "harness/json.hh"
#include "harness/sweep.hh"
#include "sim/gpu.hh"

namespace ltrf::harness
{

/** One executed cell. */
struct ResultRow
{
    SweepCell cell;
    SimResult result;
    /** Baseline IPC for normalization; 0 when not normalized. */
    double baseline_ipc = 0.0;

    bool normalized() const { return baseline_ipc > 0.0; }
    /** IPC relative to the baseline (0 when not normalized). */
    double
    normalizedIpc() const
    {
        return normalized() ? result.ipc / baseline_ipc : 0.0;
    }
};

/** Aggregate over all rows of a sweep, in cell index order. */
class ResultSet
{
  public:
    void add(ResultRow row) { rows_.push_back(std::move(row)); }
    const std::vector<ResultRow> &rows() const { return rows_; }
    std::size_t size() const { return rows_.size(); }

    /**
     * Look up the row with the given grid key; fatal() if absent,
     * because a harness asking for a cell it did not sweep is a bug.
     */
    const ResultRow &find(const std::string &workload, RfDesign design,
                          int rf_cfg_id = 0,
                          double latency_mult = 0.0) const;

    /** Look up a tag-disambiguated row (see SweepCell::tag). */
    const ResultRow &findTagged(const std::string &workload,
                                const std::string &tag) const;

    /** Workload names in first-appearance order. */
    std::vector<std::string> workloads() const;

    /**
     * Normalized IPCs of @p design on @p rf_cfg_id across workloads,
     * in first-appearance order. fatal() if any row is missing or
     * not normalized.
     */
    std::vector<double> normalizedByDesign(RfDesign design,
                                           int rf_cfg_id = 0,
                                           double latency_mult = 0.0) const;

    /** Geometric mean of normalizedByDesign(). */
    double geomeanNormalized(RfDesign design, int rf_cfg_id = 0,
                             double latency_mult = 0.0) const;

    // ----- Statistics helpers (shared with the figure harnesses) -----
    static double mean(const std::vector<double> &v);
    static double geomean(const std::vector<double> &v);

    // ----- Serialization -----
    Json toJson() const;
    static ResultSet fromJson(const Json &j);
    /** dump(2) of toJson() plus a trailing newline. */
    std::string dumpJson() const;
    /**
     * One header line plus one row per cell, with the same column
     * set, ordering, and number formatting as toJson() (so `--jobs`
     * determinism holds for CSV output too). The normalization
     * columns are empty when a row was not normalized.
     */
    std::string toCsv() const;
    /** Write dumpJson() to @p path ("-" = stdout); fatal() on I/O error. */
    void writeJsonFile(const std::string &path) const;
    /** Write dumpJson() or toCsv() to @p path per @p format. */
    void writeFile(const std::string &path, OutputFormat format) const;
    static ResultSet readJsonFile(const std::string &path);

    /**
     * Print a workload-rows x design-columns table of normalized (or
     * raw, if not normalized) IPC for @p rf_cfg_id, with a trailing
     * GEOMEAN row, to @p out.
     */
    void printTable(std::FILE *out, const std::vector<RfDesign> &designs,
                    int rf_cfg_id = 0, double latency_mult = 0.0) const;

  private:
    std::vector<ResultRow> rows_;
};

} // namespace ltrf::harness

#endif // LTRF_HARNESS_RESULT_SET_HH
