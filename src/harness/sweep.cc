#include "harness/sweep.hh"

#include "common/log.hh"
#include "common/strutil.hh"
#include "tech/rf_config.hh"
#include "workloads/workload.hh"

namespace ltrf::harness
{

namespace
{

void
applyScalars(SimConfig &cfg, const SweepSpec &spec)
{
    cfg.num_sms = spec.num_sms;
    if (spec.num_active_warps > 0)
        cfg.num_active_warps = spec.num_active_warps;
}

/** Every design, in evaluation order; the single source for "all". */
constexpr RfDesign ALL_DESIGNS[] = {
        RfDesign::BL,          RfDesign::RFC,  RfDesign::SHRF,
        RfDesign::LTRF_STRAND, RfDesign::LTRF, RfDesign::LTRF_PLUS,
        RfDesign::IDEAL};

} // namespace

std::vector<SweepCell>
expandSweep(const SweepSpec &spec)
{
    if (spec.workloads.empty())
        ltrf_fatal("sweep spec has no workloads");
    if (spec.designs.empty())
        ltrf_fatal("sweep spec has no designs");
    if (spec.rf_cfg_ids.empty())
        ltrf_fatal("sweep spec has no register file configurations");

    // Validate names up front so errors surface before any
    // simulation starts (byName() fatals on unknown workloads).
    for (const std::string &name : spec.workloads)
        WorkloadSuite::byName(name);
    for (int id : spec.rf_cfg_ids)
        if (id < 0 || id > static_cast<int>(rfConfigTable().size()))
            ltrf_fatal("rf configuration id %d out of range (0 keeps "
                       "the baseline register file, Table 2 rows are "
                       "1..%zu)",
                       id, rfConfigTable().size());

    std::vector<double> mults = spec.latency_mults;
    if (mults.empty())
        mults.push_back(0.0); // single pass, no override

    std::vector<SweepCell> cells;
    cells.reserve(spec.workloads.size() * spec.designs.size() *
                  spec.rf_cfg_ids.size() * mults.size());
    int index = 0;
    for (const std::string &w : spec.workloads) {
        for (RfDesign d : spec.designs) {
            for (int id : spec.rf_cfg_ids) {
                for (double m : mults) {
                    SweepCell c;
                    c.index = index++;
                    c.workload = w;
                    c.design = d;
                    c.rf_cfg_id = id;
                    c.latency_mult = m;
                    c.seed = spec.seed;
                    applyScalars(c.config, spec);
                    c.config.design = d;
                    if (id != 0)
                        applyRfConfig(c.config, rfConfig(id));
                    if (m > 0.0)
                        c.config.mrf_latency_mult = m;
                    cells.push_back(std::move(c));
                }
            }
        }
    }
    return cells;
}

SimConfig
baselineConfigFor(const SweepSpec &spec)
{
    SimConfig cfg;
    applyScalars(cfg, spec);
    cfg.design = RfDesign::BL;
    return cfg;
}

std::vector<std::string>
splitList(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::vector<std::string>
resolveWorkloads(const std::string &selector)
{
    std::vector<std::string> names;
    if (selector == "all" || selector.empty()) {
        for (const Workload &w : WorkloadSuite::all())
            names.push_back(w.name);
    } else if (selector == "sensitive") {
        for (const Workload *w : WorkloadSuite::sensitive())
            names.push_back(w->name);
    } else if (selector == "insensitive") {
        for (const Workload *w : WorkloadSuite::insensitive())
            names.push_back(w->name);
    } else {
        for (const std::string &n : splitList(selector)) {
            WorkloadSuite::byName(n); // fatal() on unknown names
            names.push_back(n);
        }
    }
    return names;
}

RfDesign
parseRfDesign(const std::string &name)
{
    const std::string want = lowered(name);
    for (RfDesign d : ALL_DESIGNS)
        if (want == lowered(rfDesignName(d)))
            return d;
    // Accept spelling variants that avoid shell-hostile characters.
    if (want == "ltrf_plus" || want == "ltrf-plus")
        return RfDesign::LTRF_PLUS;
    if (want == "ltrf_strand" || want == "ltrf-strand")
        return RfDesign::LTRF_STRAND;
    ltrf_fatal("unknown register file design \"%s\" (expected one of "
               "BL, RFC, SHRF, LTRF(strand), LTRF, LTRF+, Ideal)",
               name.c_str());
}

std::vector<RfDesign>
resolveDesigns(const std::string &selector)
{
    if (selector == "all" || selector.empty())
        return {std::begin(ALL_DESIGNS), std::end(ALL_DESIGNS)};
    std::vector<RfDesign> out;
    for (const std::string &n : splitList(selector))
        out.push_back(parseRfDesign(n));
    return out;
}

} // namespace ltrf::harness
