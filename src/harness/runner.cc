#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>
#include <utility>

#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace ltrf::harness
{

namespace
{

int
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

/**
 * Drain @p tasks on @p jobs workers. The queue is just an atomic
 * cursor: tasks are independent and their outputs land at
 * preassigned indices, so no further coordination is needed.
 */
void
runPool(const std::vector<std::function<void()>> &tasks, int jobs)
{
    if (jobs <= 1) {
        for (const auto &t : tasks)
            t();
        return;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        while (true) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                return;
            tasks[i]();
        }
    };
    std::vector<std::thread> threads;
    int spawn = std::min<int>(jobs, static_cast<int>(tasks.size()));
    threads.reserve(static_cast<std::size_t>(spawn));
    for (int t = 0; t < spawn; t++)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();
}

} // namespace

ExperimentRunner::ExperimentRunner(int jobs)
    : num_jobs(jobs > 0 ? jobs : defaultJobs())
{
}

ExperimentRunner::~ExperimentRunner()
{
    if (workers.empty())
        return;
    drain();
    {
        std::lock_guard<std::mutex> lk(pool_mu);
        stopping = true;
    }
    work_ready.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ExperimentRunner::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(pool_mu);
            work_ready.wait(lk,
                            [&] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;    // stopping with nothing left to steal
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lk(pool_mu);
            in_flight--;
            if (in_flight == 0)
                pool_idle.notify_all();
        }
    }
}

void
ExperimentRunner::submit(std::function<void()> task)
{
    // Inline with one job: single-threaded runs stay synchronous (a
    // task is finished when submit() returns), which is also what
    // makes `--jobs 1` the reference ordering the determinism guard
    // compares against.
    if (num_jobs <= 1) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lk(pool_mu);
        queue.push_back(std::move(task));
        in_flight++;
        queue_hwm = std::max(queue_hwm, queue.size());
        in_flight_hwm = std::max(in_flight_hwm, in_flight);
        // Lazy spawn under the lock: concurrent first submits must
        // not both see an empty pool (the new workers just block on
        // pool_mu until it is released below).
        if (workers.empty()) {
            workers.reserve(static_cast<std::size_t>(num_jobs));
            for (int t = 0; t < num_jobs; t++)
                workers.emplace_back([this] { workerLoop(); });
        }
    }
    work_ready.notify_one();
}

std::size_t
ExperimentRunner::queueHighWater()
{
    std::lock_guard<std::mutex> lk(pool_mu);
    return queue_hwm;
}

std::size_t
ExperimentRunner::inFlightHighWater()
{
    std::lock_guard<std::mutex> lk(pool_mu);
    return in_flight_hwm;
}

void
ExperimentRunner::drain()
{
    if (num_jobs <= 1)
        return;    // submit() already ran everything inline
    std::unique_lock<std::mutex> lk(pool_mu);
    pool_idle.wait(lk, [&] { return in_flight == 0; });
}

void
ExperimentRunner::runTasks(
        const std::vector<std::function<void()>> &tasks) const
{
    runPool(tasks, num_jobs);
}

ResultSet
ExperimentRunner::run(const std::vector<SweepCell> &cells,
                      BaselineCache *baselines)
{
    std::vector<SimResult> results(cells.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(cells.size() + 16);

    // Baseline warm-up first: with cells sorted workload-major, the
    // normalizing run of each workload would otherwise be computed
    // inside whichever cell task asks first while its siblings
    // block; as dedicated pool tasks they overlap with cell work.
    if (baselines) {
        std::vector<std::string> warm;
        for (const SweepCell &c : cells) {
            bool seen = false;
            for (const std::string &w : warm)
                if (w == c.workload)
                    seen = true;
            if (!seen)
                warm.push_back(c.workload);
        }
        for (const std::string &w : warm)
            tasks.push_back([baselines, w] {
                baselines->ipc(WorkloadSuite::byName(w));
            });
    }

    for (std::size_t i = 0; i < cells.size(); i++)
        tasks.push_back([&cells, &results, i] {
            const SweepCell &c = cells[i];
            const Workload &w = WorkloadSuite::byName(c.workload);
            results[i] = simulate(c.config, w.kernel, c.seed);
        });

    runPool(tasks, num_jobs);

    ResultSet rs;
    for (std::size_t i = 0; i < cells.size(); i++) {
        ResultRow row;
        row.cell = cells[i];
        row.result = results[i];
        if (baselines)
            row.baseline_ipc =
                    baselines->ipc(WorkloadSuite::byName(cells[i].workload));
        rs.add(std::move(row));
    }
    return rs;
}

} // namespace ltrf::harness
