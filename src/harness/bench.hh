/**
 * @file
 * Simulator performance benchmark harness (`ltrf_bench`).
 *
 * Times the canonical hot path — every DSE cell runs `src/sim/`
 * end-to-end, so cells/sec multiplies everything the exploration
 * engine does — over fixed, named suites: the default workload suite
 * x {BL, RFC, LTRF, LTRF+} at rf-config #6 and fixed seeds, plus a
 * small "quick" suite sized for CI. Results serialize to a
 * schema-versioned BENCH_*.json (machine info, per-design instr/s
 * and simulated cycles/s, suite cells/s, wall time) so the perf
 * trajectory persists across PRs, and a comparator flags gross
 * regressions against a committed baseline.
 *
 * Wall-clock numbers are machine-dependent by nature; the comparator
 * is a gate against *gross* regressions (2x slowdowns merging
 * unnoticed), not a precision instrument, and callers pick a
 * generous tolerance accordingly.
 */

#ifndef LTRF_HARNESS_BENCH_HH
#define LTRF_HARNESS_BENCH_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "harness/json.hh"

namespace ltrf::harness
{

/** Current BENCH_*.json schema version. */
constexpr int BENCH_SCHEMA_VERSION = 1;

/** One named, fixed benchmark suite. */
struct BenchSuiteSpec
{
    std::string name;
    std::vector<std::string> workloads;
    std::vector<RfDesign> designs;
    int rf_cfg_id = 6;      ///< Table 2 row every cell applies
    int num_sms = 4;
    std::uint64_t seed = 2018;
    /** Timing repetitions per cell; the fastest one is kept. */
    int reps = 1;
};

/**
 * Look a suite up by name ("default" or "quick"); fatal() on an
 * unknown name. "default" is the full 14-workload suite x
 * {BL, RFC, LTRF, LTRF+}; "quick" is a 4-workload subset at 2 SMs,
 * sized so CI can afford it on every push.
 */
BenchSuiteSpec benchSuite(const std::string &name);

/** Names benchSuite() accepts, comma-separated (for messages). */
std::string benchSuiteNames();

/** Throughput of one register file design across a suite. */
struct BenchDesignResult
{
    RfDesign design = RfDesign::BL;
    int cells = 0;
    std::uint64_t instructions = 0; ///< simulated instructions
    std::uint64_t sim_cycles = 0;   ///< simulated core cycles
    double wall_s = 0.0;
    double instr_per_s = 0.0;       ///< simulated instr / wall sec
    double sim_cycles_per_s = 0.0;  ///< simulated cycles / wall sec
};

/** Aggregate result of one suite run. */
struct BenchSuiteResult
{
    BenchSuiteSpec spec;
    int cells = 0;
    std::uint64_t instructions = 0;
    std::uint64_t sim_cycles = 0;
    double wall_s = 0.0;
    double cells_per_s = 0.0;
    double instr_per_s = 0.0;
    double sim_cycles_per_s = 0.0;
    std::vector<BenchDesignResult> designs;
    /**
     * Optional trajectory annotation (annotateSpeedup()): the prior
     * report's cells/s for this suite and the measured ratio.
     */
    double prior_cells_per_s = 0.0;
    double speedup = 0.0;
};

/** A full report: machine context plus one entry per suite run. */
struct BenchReport
{
    int schema = BENCH_SCHEMA_VERSION;
    Json machine;
    std::vector<BenchSuiteResult> suites;

    Json toJson() const;
    static BenchReport fromJson(const Json &j);

    /** Suite result by name, or nullptr. */
    const BenchSuiteResult *find(const std::string &name) const;

    /**
     * Record each matching suite's speedup relative to @p prior
     * (prior_cells_per_s and speedup fields).
     */
    void annotateSpeedup(const BenchReport &prior);
};

/**
 * Run @p spec's cells serially (timing wants an unloaded machine,
 * not pool throughput) and aggregate throughput per design and for
 * the whole suite.
 */
BenchSuiteResult runBenchSuite(const BenchSuiteSpec &spec);

/** Host context a report was measured on (hostname, cpus, compiler). */
Json machineInfo();

/** One metric that regressed beyond the comparator's tolerance. */
struct BenchRegression
{
    std::string suite;
    std::string metric;
    double old_value = 0.0;
    double new_value = 0.0;
    double ratio = 0.0;     ///< new / old
};

/**
 * Compare every suite present in both reports: the suite's cells/s
 * and each design's instr/s must not fall below
 * old * (1 - tolerance). @return the metrics that did.
 */
std::vector<BenchRegression> compareBench(const BenchReport &baseline,
                                          const BenchReport &fresh,
                                          double tolerance);

} // namespace ltrf::harness

#endif // LTRF_HARNESS_BENCH_HH
