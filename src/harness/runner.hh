/**
 * @file
 * Multi-threaded experiment runner.
 *
 * Each (workload, config) cell of a sweep is an independent Gpu
 * instance, so the runner executes cells on a fixed-size pool of
 * std::threads. Two feeding modes share the pool budget:
 *
 *  - Batched: run()/runTasks() drain a fixed task vector through an
 *    atomic work queue and return when every task finished. Results
 *    land at preassigned indices, so they are in sweep order and
 *    bit-identical regardless of the job count — the property the
 *    CI determinism guard (`--jobs 1` vs `--jobs 8`) checks.
 *
 *  - Streaming: submit()/drain() feed a persistent work-stealing
 *    pool one task at a time. Idle workers steal the next task from
 *    a shared queue the moment they finish their current one, so a
 *    straggler task never gates tasks submitted after it — the
 *    foundation of the DSE engine's cell-level pipeline, where the
 *    next candidate batch's cells run while a previous batch's slow
 *    cell is still simulating. Callers that need a specific task's
 *    output synchronize on their own completion flags; drain()
 *    waits for everything.
 *
 * When a BaselineCache is supplied, run() first warms it for every
 * distinct workload in the sweep (as pool work, so baselines also
 * run in parallel) and then attaches baseline IPCs to every row for
 * normalization.
 */

#ifndef LTRF_HARNESS_RUNNER_HH
#define LTRF_HARNESS_RUNNER_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "harness/baseline_cache.hh"
#include "harness/result_set.hh"
#include "harness/sweep.hh"

namespace ltrf::harness
{

class ExperimentRunner
{
  public:
    /**
     * @param jobs worker thread count; 0 picks the hardware
     *             concurrency, 1 runs inline without spawning.
     */
    explicit ExperimentRunner(int jobs = 0);

    /** Joins the streaming pool after finishing submitted work. */
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    /**
     * Execute every cell of @p cells (in parallel up to the job
     * count) and collect results in cell order. If @p baselines is
     * non-null, each row is normalized against its workload's
     * baseline IPC from that cache.
     */
    ResultSet run(const std::vector<SweepCell> &cells,
                  BaselineCache *baselines = nullptr);

    /**
     * Drain independent @p tasks on the worker pool. For harness
     * work that is not a simulate() cell (compiler/trace analyses,
     * DSE batches); tasks must write their outputs to preassigned
     * slots so results are deterministic regardless of the job
     * count.
     */
    void runTasks(const std::vector<std::function<void()>> &tasks) const;

    /**
     * Enqueue @p task on the streaming pool and return immediately.
     * The pool's workers (spawned lazily on the first submit) pull
     * tasks in submission order, but completion order is whatever
     * the hardware gives — the task must publish its output through
     * its own synchronization. With 1 job the task runs inline
     * before submit() returns, which keeps single-threaded runs
     * deterministic and debuggable.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void drain();

    int jobs() const { return num_jobs; }

    /**
     * Streaming-pool observability: the deepest the shared queue
     * ever got, and the most tasks ever queued + running at once.
     * Both 0 for purely batched (run()/runTasks()) use and with 1
     * job (submit() runs inline).
     */
    std::size_t queueHighWater();
    std::size_t inFlightHighWater();

  private:
    void workerLoop();

    int num_jobs;

    // Streaming-pool state. The queue is deliberately simple: one
    // mutex-guarded deque all workers steal from. Simulation cells
    // run for milliseconds to seconds, so queue contention is noise,
    // and a single queue keeps submission order = start order, which
    // makes the pipeline's admission-order commits easy to reason
    // about.
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex pool_mu;
    std::condition_variable work_ready;
    std::condition_variable pool_idle;
    std::size_t in_flight = 0;    ///< queued + running tasks
    bool stopping = false;
    std::size_t queue_hwm = 0;    ///< max queue depth observed
    std::size_t in_flight_hwm = 0;///< max in_flight observed
};

} // namespace ltrf::harness

#endif // LTRF_HARNESS_RUNNER_HH
