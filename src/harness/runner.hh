/**
 * @file
 * Multi-threaded experiment runner.
 *
 * Each (workload, config) cell of a sweep is an independent Gpu
 * instance, so the runner executes cells on a fixed-size pool of
 * std::threads fed by an atomic work queue and stores each
 * SimResult at its cell's index. Results are therefore in sweep
 * order and bit-identical regardless of the job count or which
 * thread ran which cell — the property the CI determinism guard
 * (`--jobs 1` vs `--jobs 8`) checks.
 *
 * When a BaselineCache is supplied, the runner first warms it for
 * every distinct workload in the sweep (as pool work, so baselines
 * also run in parallel) and then attaches baseline IPCs to every
 * row for normalization.
 */

#ifndef LTRF_HARNESS_RUNNER_HH
#define LTRF_HARNESS_RUNNER_HH

#include <functional>
#include <vector>

#include "harness/baseline_cache.hh"
#include "harness/result_set.hh"
#include "harness/sweep.hh"

namespace ltrf::harness
{

class ExperimentRunner
{
  public:
    /**
     * @param jobs worker thread count; 0 picks the hardware
     *             concurrency, 1 runs inline without spawning.
     */
    explicit ExperimentRunner(int jobs = 0);

    /**
     * Execute every cell of @p cells (in parallel up to the job
     * count) and collect results in cell order. If @p baselines is
     * non-null, each row is normalized against its workload's
     * baseline IPC from that cache.
     */
    ResultSet run(const std::vector<SweepCell> &cells,
                  BaselineCache *baselines = nullptr);

    /**
     * Drain independent @p tasks on the worker pool. For harness
     * work that is not a simulate() cell (compiler/trace analyses,
     * DSE batches); tasks must write their outputs to preassigned
     * slots so results are deterministic regardless of the job
     * count.
     */
    void runTasks(const std::vector<std::function<void()>> &tasks) const;

    int jobs() const { return num_jobs; }

  private:
    int num_jobs;
};

} // namespace ltrf::harness

#endif // LTRF_HARNESS_RUNNER_HH
