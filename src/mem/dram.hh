/**
 * @file
 * Banked GDDR5-like DRAM timing model.
 *
 * Approximates an FR-FCFS memory controller (Table 3) with per-bank
 * row buffers and busy times plus a shared data bus: row hits pay
 * CAS-only latency, row misses pay precharge+activate+CAS, each
 * request occupies its bank until service completes and the data bus
 * for a fixed transfer time. Requests are scheduled in arrival order
 * per bank, which under high bank-level parallelism behaves closely
 * enough to FR-FCFS for the relative comparisons this reproduction
 * needs (see DESIGN.md).
 */

#ifndef LTRF_MEM_DRAM_HH
#define LTRF_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltrf
{

/** DRAM timing parameters, in core cycles. */
struct DramParams
{
    int num_banks = 16;
    int row_hit_latency = 80;       ///< CAS only
    int row_miss_latency = 200;     ///< precharge + activate + CAS
    /**
     * Data-bus occupancy per 128B line. Matches the default
     * SimConfig::dram_service_cycles (MemSystem rescales that knob
     * with the SM count before it lands here).
     */
    int service_cycles = 1;
    int lines_per_row = 16;         ///< 2KB row / 128B line
};

/** Banked DRAM with row-buffer and bus contention modeling. */
class Dram
{
  public:
    explicit Dram(const DramParams &params);

    /**
     * Schedule a line request arriving at @p now.
     * @return the cycle the data transfer completes.
     */
    Cycle schedule(std::uint64_t line, Cycle now);

    std::uint64_t requests() const { return stat_requests.value(); }
    std::uint64_t rowHits() const { return stat_row_hits.value(); }

    double
    rowHitRate() const
    {
        auto r = requests();
        return r == 0 ? 0.0
                      : static_cast<double>(rowHits()) /
                                static_cast<double>(r);
    }

    const StatGroup &stats() const { return stat_group; }

  private:
    struct Bank
    {
        Cycle busy_until = 0;
        std::uint64_t open_row = ~0ull;
    };

    DramParams p;
    std::vector<Bank> banks;
    Cycle bus_busy_until = 0;

    StatGroup stat_group;
    Counter stat_requests;
    Counter stat_row_hits;
    Counter stat_row_misses;
};

} // namespace ltrf

#endif // LTRF_MEM_DRAM_HH
