/**
 * @file
 * Memory hierarchy glue: per-SM L1D caches in front of a shared LLC
 * and banked DRAM (paper Table 3).
 *
 * The interface is latency-resolving: an access returns the cycle
 * its data arrives. Misses propagate L1D -> LLC -> DRAM; dirty
 * victims consume DRAM bus time. The SM model deactivates a warp
 * whenever the returned completion is far enough away (an L1D miss),
 * which is what drives the two-level scheduler.
 */

#ifndef LTRF_MEM_MEM_SYSTEM_HH
#define LTRF_MEM_MEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace ltrf
{

/** Result of a global-memory access. */
struct MemAccessResult
{
    Cycle done = 0;      ///< cycle the data is available
    bool l1_hit = false;
    bool llc_hit = false;
};

/** Shared LLC + DRAM with per-SM L1D front ends. */
class MemSystem
{
  public:
    explicit MemSystem(const SimConfig &cfg);

    /** Access one line from SM @p sm at cycle @p now. */
    MemAccessResult accessGlobal(int sm, std::uint64_t line, bool is_write,
                                 Cycle now);

    const Cache &l1d(int sm) const { return *l1ds[sm]; }
    const Cache &llc() const { return *llc_cache; }
    const Dram &dram() const { return *dram_model; }

    /** Aggregate L1D hit rate across SMs. */
    double l1dHitRate() const;

  private:
    SimConfig config;
    std::vector<std::unique_ptr<Cache>> l1ds;
    std::unique_ptr<Cache> llc_cache;
    std::unique_ptr<Dram> dram_model;
};

} // namespace ltrf

#endif // LTRF_MEM_MEM_SYSTEM_HH
