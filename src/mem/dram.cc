#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"

namespace ltrf
{

Dram::Dram(const DramParams &params)
    : p(params), banks(params.num_banks), stat_group("dram")
{
    ltrf_assert(p.num_banks >= 1, "need at least one DRAM bank");
    ltrf_assert(p.row_hit_latency <= p.row_miss_latency,
                "row hit cannot be slower than row miss");
    stat_group.add("requests", &stat_requests);
    stat_group.add("row_hits", &stat_row_hits);
    stat_group.add("row_misses", &stat_row_misses);
}

Cycle
Dram::schedule(std::uint64_t line, Cycle now)
{
    stat_requests++;
    // Row-aligned bank interleaving: a row's lines live in one bank,
    // consecutive rows rotate across banks, so sequential streams
    // get row-buffer hits and bank-level parallelism.
    const std::uint64_t row = line / p.lines_per_row;
    Bank &bank = banks[row % banks.size()];

    const bool row_hit = bank.open_row == row;
    if (row_hit)
        stat_row_hits++;
    else
        stat_row_misses++;
    const int access_latency =
            row_hit ? p.row_hit_latency : p.row_miss_latency;

    const Cycle start = std::max(now, bank.busy_until);
    const Cycle data_ready = start + access_latency;
    // The shared data bus serializes transfers across banks.
    const Cycle xfer_start = std::max(data_ready, bus_busy_until);
    const Cycle done = xfer_start + p.service_cycles;

    bank.busy_until = data_ready;
    bank.open_row = row;
    bus_busy_until = done;
    return done;
}

} // namespace ltrf
