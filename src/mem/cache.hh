/**
 * @file
 * Set-associative cache timing model (tags only, LRU, write-back,
 * write-allocate). Used for the per-SM L1D/L1I and the shared LLC.
 */

#ifndef LTRF_MEM_CACHE_HH
#define LTRF_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltrf
{

/** Outcome of a cache access. */
struct CacheResult
{
    bool hit = false;
    /** A dirty line was evicted and must be written back. */
    bool writeback = false;
    /** Line address of the written-back victim (valid if writeback). */
    std::uint64_t victim_line = 0;
};

/**
 * Tag-array-only set-associative cache with true-LRU replacement.
 *
 * Addresses are cache-line indices (byte address / line size); the
 * caller owns that conversion so different levels can share line
 * addressing.
 */
class Cache
{
  public:
    /**
     * @param name       stat group name
     * @param size_bytes total capacity
     * @param assoc      ways per set
     * @param line_bytes line size (for set-count derivation only)
     */
    Cache(const std::string &name, std::size_t size_bytes, int assoc,
          int line_bytes);

    /** Look up @p line; allocate on miss. */
    CacheResult access(std::uint64_t line, bool is_write);

    /** @return true without state change if @p line is resident. */
    bool probe(std::uint64_t line) const;

    /** Invalidate everything (kernel boundary). */
    void flush();

    int numSets() const { return num_sets; }

    std::uint64_t hits() const { return stat_hits.value(); }
    std::uint64_t misses() const { return stat_misses.value(); }
    std::uint64_t writebacks() const { return stat_writebacks.value(); }

    double
    hitRate() const
    {
        std::uint64_t total = hits() + misses();
        return total == 0 ? 0.0
                          : static_cast<double>(hits()) /
                                    static_cast<double>(total);
    }

    const StatGroup &stats() const { return stat_group; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;      ///< last-use stamp
        bool valid = false;
        bool dirty = false;
    };

    int num_sets;
    int assoc;
    std::vector<Way> ways;          ///< num_sets x assoc
    std::uint64_t use_stamp = 0;

    StatGroup stat_group;
    Counter stat_hits;
    Counter stat_misses;
    Counter stat_writebacks;
};

} // namespace ltrf

#endif // LTRF_MEM_CACHE_HH
