#include "mem/cache.hh"

#include <bit>

#include "common/log.hh"

namespace ltrf
{

Cache::Cache(const std::string &name, std::size_t size_bytes, int assoc_,
             int line_bytes)
    : assoc(assoc_), stat_group(name)
{
    ltrf_assert(assoc >= 1, "associativity must be >= 1");
    ltrf_assert(line_bytes >= 1, "line size must be >= 1");
    std::size_t lines = size_bytes / static_cast<std::size_t>(line_bytes);
    ltrf_assert(lines >= static_cast<std::size_t>(assoc),
                "cache smaller than one set");
    num_sets = static_cast<int>(lines) / assoc;
    ltrf_assert(std::has_single_bit(static_cast<unsigned>(num_sets)),
                "set count %d must be a power of two", num_sets);
    ways.resize(static_cast<std::size_t>(num_sets) * assoc);

    stat_group.add("hits", &stat_hits);
    stat_group.add("misses", &stat_misses);
    stat_group.add("writebacks", &stat_writebacks);
}

CacheResult
Cache::access(std::uint64_t line, bool is_write)
{
    CacheResult res;
    const int set = static_cast<int>(line & (num_sets - 1));
    const std::uint64_t tag = line >> std::countr_zero(
            static_cast<unsigned>(num_sets));
    Way *base = &ways[static_cast<std::size_t>(set) * assoc];
    use_stamp++;

    Way *victim = base;
    for (int w = 0; w < assoc; w++) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lru = use_stamp;
            way.dirty |= is_write;
            stat_hits++;
            res.hit = true;
            return res;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lru < victim->lru) {
            victim = &way;
        }
    }

    stat_misses++;
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        res.victim_line = (victim->tag << std::countr_zero(
                                   static_cast<unsigned>(num_sets))) |
                          static_cast<std::uint64_t>(set);
        stat_writebacks++;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = use_stamp;
    victim->dirty = is_write;
    return res;
}

bool
Cache::probe(std::uint64_t line) const
{
    const int set = static_cast<int>(line & (num_sets - 1));
    const std::uint64_t tag = line >> std::countr_zero(
            static_cast<unsigned>(num_sets));
    const Way *base = &ways[static_cast<std::size_t>(set) * assoc];
    for (int w = 0; w < assoc; w++)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &w : ways)
        w = Way{};
}

} // namespace ltrf
