#include "mem/mem_system.hh"

#include <algorithm>

#include "common/log.hh"

namespace ltrf
{

MemSystem::MemSystem(const SimConfig &cfg) : config(cfg)
{
    for (int s = 0; s < cfg.num_sms; s++) {
        l1ds.push_back(std::make_unique<Cache>(
                "l1d" + std::to_string(s), cfg.l1d_bytes, cfg.l1d_assoc,
                cfg.line_bytes));
    }
    llc_cache = std::make_unique<Cache>("llc", cfg.llc_bytes,
                                        cfg.llc_assoc, cfg.line_bytes);
    DramParams dp;
    dp.num_banks = cfg.num_dram_banks;
    dp.row_miss_latency = cfg.dram_latency;
    dp.row_hit_latency = cfg.dram_latency * 2 / 5;
    // Keep the per-SM DRAM bandwidth share constant when benches
    // scale down the SM count from the paper's 24 (see DESIGN.md).
    // The baseline is ~2 lines/cycle for the full 24-SM chip
    // (GDDR5-class ~300GB/s at the Table 3 core clock), i.e.
    // dram_service_cycles=1 means one line per num_sms/48-cycle
    // share at the simulated SM count.
    dp.service_cycles = cfg.effectiveDramServiceCycles();
    dram_model = std::make_unique<Dram>(dp);
}

MemAccessResult
MemSystem::accessGlobal(int sm, std::uint64_t line, bool is_write,
                        Cycle now)
{
    ltrf_assert(sm >= 0 && sm < static_cast<int>(l1ds.size()),
                "SM index %d out of range", sm);
    MemAccessResult res;

    CacheResult l1 = l1ds[sm]->access(line, is_write);
    if (l1.hit) {
        res.l1_hit = true;
        res.done = now + config.l1d_hit_latency;
        return res;
    }

    // L1 miss: look up the shared LLC (after L1 lookup time).
    Cycle llc_time = now + config.l1d_hit_latency;
    CacheResult l2 = llc_cache->access(line, false);
    if (l1.writeback)
        llc_cache->access(l1.victim_line, true);
    if (l2.hit) {
        res.llc_hit = true;
        res.done = llc_time + config.llc_latency;
        return res;
    }

    // LLC miss: go to DRAM; dirty LLC victims consume bus time too.
    Cycle fill_done = dram_model->schedule(line, llc_time +
                                                         config.llc_latency);
    if (l2.writeback)
        dram_model->schedule(l2.victim_line, fill_done);
    res.done = fill_done + config.llc_latency;
    return res;
}

double
MemSystem::l1dHitRate() const
{
    std::uint64_t hits = 0, total = 0;
    for (const auto &c : l1ds) {
        hits += c->hits();
        total += c->hits() + c->misses();
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                                static_cast<double>(total);
}

} // namespace ltrf
