/**
 * @file
 * Static kernel-IR verifier.
 *
 * LTRF's premise (paper section 3) is a *compile-time guarantee*:
 * registers are partitioned into intervals and PREFETCH operations
 * are inserted such that every register access hits the fast register
 * file. Nothing in the simulator enforces that — a kernel violating
 * the guarantee silently simulates a wrong IPC. This module proves
 * the guarantee (and the supporting IR well-formedness invariants)
 * statically over the CFG, reporting structured diagnostics instead
 * of asserting, so it can gate hand-built suite kernels, future
 * textual-loader kernels, and fuzzer-generated kernels alike.
 *
 * Checks (each individually toggleable via VerifyOptions):
 *
 *  - cfg: structural well-formedness. Successor/predecessor targets
 *    in range and symmetric, at most two successors, control ops only
 *    as terminators (BRA for two-successor blocks, EXIT for terminal
 *    blocks), operand registers within num_regs, memory streams in
 *    range, single-entry CFG, every block reachable from the entry,
 *    and reducibility (interval formation assumes it, section 3.3).
 *
 *  - def-use: reaching-definition sanity. Every register read must be
 *    reachable by at least one definition of that register. This is
 *    deliberately the *weak* (exists-a-path) variant: the strict
 *    all-paths form is violated by design in the synthetic suite,
 *    whose loop accumulators are seeded by their own first iteration
 *    (`ffma r, a, b, r` inside a loop), the standard idiom for a
 *    timing-only simulator with no register values. A read no def
 *    can ever reach is still certainly a defect.
 *
 *  - interval: interval-map consistency. Every block assigned to an
 *    in-range interval, member lists and block_interval agree, every
 *    inter-interval edge enters through the target interval's header
 *    (the single-entry invariant), and each working set covers every
 *    register its member blocks touch.
 *
 *  - residency: the paper's fast-RF guarantee, the headline check.
 *    On every path to a register access of r, a PREFETCH whose mask
 *    contains r executes after the last crossing out of r's interval
 *    and before the access. Proven by forward dataflow: the resident
 *    set at a point is the last-executed PREFETCH mask (a prefetch
 *    loads a warp's whole fast-RF partition, evicting the previous
 *    interval), met with set intersection across predecessors; every
 *    non-PREFETCH operand (read or write — both must hit the fast
 *    RF) must be in the resident set. Also checks structurally that
 *    each interval header begins with a PREFETCH covering the
 *    interval's working set.
 *
 *  - dead-bit: dead-operand soundness (LTRF+, section 3.2). An
 *    operand marked dead must not be live after its instruction;
 *    re-derived from an independent liveness recomputation. A live
 *    operand left unmarked is merely a lost optimization and is not
 *    flagged.
 *
 *  - capacity: every interval working set fits the per-warp fast-RF
 *    partition (the configured regs_per_interval).
 *
 *  - prefetch: prefetch sanity. A PREFETCH with a non-empty mask
 *    must have at least one masked register accessed on some path
 *    before the next PREFETCH (otherwise the slot is pure waste),
 *    and PREFETCH ops may not appear in kernels compiled without
 *    interval formation. Empty-mask prefetches are tolerated: the
 *    formation passes legitimately produce register-free intervals
 *    (e.g. an exit block holding only EXIT).
 *
 * Verification is pure analysis: it never mutates the kernel and
 * never panics on malformed input (out-of-range ids short-circuit
 * the dataflow checks that would chase them).
 */

#ifndef LTRF_COMPILER_VERIFY_HH
#define LTRF_COMPILER_VERIFY_HH

#include <string>
#include <vector>

#include "compiler/register_interval.hh"
#include "isa/kernel.hh"

namespace ltrf
{

/** Identifies which invariant family a diagnostic belongs to. */
enum class VerifyCheck
{
    CFG,
    DEF_USE,
    INTERVAL,
    RESIDENCY,
    DEAD_BIT,
    CAPACITY,
    PREFETCH,
};

/** @return the stable check id, e.g. "residency". */
const char *verifyCheckName(VerifyCheck c);

/**
 * Parse a check id as printed by verifyCheckName(); @return false on
 * an unknown name (used by `ltrf_run --verify-skip`).
 */
bool parseVerifyCheck(const std::string &name, VerifyCheck &out);

/** Which checks to run (all by default) and how much to report. */
struct VerifyOptions
{
    bool check_cfg = true;
    bool check_def_use = true;
    bool check_interval = true;
    bool check_residency = true;
    bool check_dead_bit = true;
    bool check_capacity = true;
    bool check_prefetch = true;

    /** Diagnostics kept per kernel; further findings are counted
     *  (VerifyResult::dropped) but not stored. */
    int max_diagnostics = 64;

    /** Disable check @p c (for `--verify-skip` style toggles). */
    void disable(VerifyCheck c);
};

/** One verifier finding. */
struct VerifyDiag
{
    VerifyCheck check = VerifyCheck::CFG;
    /** Offending block, or INVALID_BLOCK for kernel-level findings. */
    BlockId block = INVALID_BLOCK;
    /** Instruction index within the block; -1 for block-level. */
    int instr = -1;
    std::string message;

    /** Render as "[residency] block 3 instr 2: ...". */
    std::string toString() const;
};

/** Result of verifying one kernel. */
struct VerifyResult
{
    std::string kernel;
    std::vector<VerifyDiag> diags;
    /** Findings beyond VerifyOptions::max_diagnostics. */
    int dropped = 0;

    bool clean() const { return diags.empty() && dropped == 0; }

    /** @return true if any stored diagnostic belongs to check @p c. */
    bool has(VerifyCheck c) const;

    /** Count of stored diagnostics for check @p c. */
    int count(VerifyCheck c) const;

    /** All diagnostics rendered one per line (empty when clean). */
    std::string report() const;
};

/**
 * Verify a bare kernel (no interval annotations): the cfg, def-use,
 * and dead-bit checks. Interval-dependent checks are skipped.
 */
VerifyResult verifyKernel(const Kernel &kernel,
                          const VerifyOptions &opt = VerifyOptions{});

/**
 * Verify a formation result: all checks, against the transformed
 * kernel the analysis carries. @p max_regs is the configured per-warp
 * fast-RF partition (SimConfig::regs_per_interval) the capacity
 * check proves working sets against.
 *
 * If @p analysis has intervals but its kernel contains no PREFETCH
 * op at all, it is treated as a pre-insertion intermediate: the
 * residency and prefetch checks are skipped (there is nothing to
 * prove residency with yet), while interval/capacity still run.
 */
VerifyResult verifyAnalysis(const IntervalAnalysis &analysis, int max_regs,
                            const VerifyOptions &opt = VerifyOptions{});

} // namespace ltrf

#endif // LTRF_COMPILER_VERIFY_HH
