/**
 * @file
 * PREFETCH operation insertion and code-size accounting.
 *
 * After interval formation, a PREFETCH instruction carrying the
 * interval's working-set bit-vector is placed at the top of each
 * interval's header block (paper section 3.1). Section 4.3 discusses
 * two encodings: a bare 256-bit bit-vector flagged by an extra bit in
 * the preceding instruction (+7% code size in the paper), or an
 * explicit prefetch instruction followed by the bit-vector (+9%).
 * Both are accounted for here.
 */

#ifndef LTRF_COMPILER_PREFETCH_INSERT_HH
#define LTRF_COMPILER_PREFETCH_INSERT_HH

#include "compiler/register_interval.hh"

namespace ltrf
{

/** Code-size accounting for the two PREFETCH encodings. */
struct PrefetchCodeSize
{
    int num_prefetch_ops = 0;
    std::uint64_t base_bytes = 0;          ///< original code bytes
    std::uint64_t bitvec_only_bytes = 0;   ///< embedded-bit encoding
    std::uint64_t with_instr_bytes = 0;    ///< explicit-instruction encoding

    double
    bitvecOverhead() const
    {
        return base_bytes == 0 ? 0.0
                               : static_cast<double>(bitvec_only_bytes) /
                                         static_cast<double>(base_bytes) -
                                         1.0;
    }

    double
    instrOverhead() const
    {
        return base_bytes == 0 ? 0.0
                               : static_cast<double>(with_instr_bytes) /
                                         static_cast<double>(base_bytes) -
                                         1.0;
    }
};

/** Assumed instruction encoding width (bytes). */
constexpr int INSTR_BYTES = 8;
/** PREFETCH bit-vector width (bytes): 256 bits. */
constexpr int PREFETCH_VECTOR_BYTES = MAX_ARCH_REGS / 8;

/**
 * Insert a PREFETCH at the top of every interval header in
 * @p analysis and return the code-size accounting. Idempotent use is
 * a bug: panics if a header already starts with a PREFETCH.
 */
PrefetchCodeSize insertPrefetchOps(IntervalAnalysis &analysis);

} // namespace ltrf

#endif // LTRF_COMPILER_PREFETCH_INSERT_HH
