/**
 * @file
 * Deterministic per-warp dynamic trace generation.
 *
 * A timing simulator needs each warp's dynamic instruction stream.
 * Branch outcomes come from the kernel's declared branch profiles
 * (loop trip counts with per-warp jitter, conditional probabilities),
 * all drawn from a per-warp seeded RNG so traces are reproducible.
 */

#ifndef LTRF_COMPILER_TRACE_GEN_HH
#define LTRF_COMPILER_TRACE_GEN_HH

#include <cstdint>
#include <vector>

#include "compiler/register_interval.hh"
#include "isa/kernel.hh"

namespace ltrf
{

/** Reference to one static instruction. */
struct TraceRef
{
    BlockId bb;
    std::uint32_t idx;
};

/** One warp's dynamic instruction stream. */
struct WarpTrace
{
    std::vector<TraceRef> refs;
    /** Dynamic instructions excluding PREFETCH operations. */
    std::uint64_t real_instrs = 0;
    /** True if the max_instrs safety cap cut the walk short. */
    bool truncated = false;
};

/**
 * Walk @p kernel's CFG from the entry, resolving branches with the
 * per-warp @p seed, until EXIT or @p max_instrs instructions.
 */
WarpTrace generateTrace(const Kernel &kernel, std::uint64_t seed,
                        std::uint64_t max_instrs = 1u << 20);

/** Aggregate interval-length statistics (paper Table 4). */
struct IntervalLengthStats
{
    double avg = 0.0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t segments = 0;

    /** Merge another sample set into this one. */
    void merge(const IntervalLengthStats &o);
};

/**
 * Real register-interval length: dynamic (non-PREFETCH) instructions
 * executed between PREFETCH events. A PREFETCH event occurs when
 * control enters a block of a different interval, or — when
 * @p reprefetch_on_backedge is set (strand semantics) — when control
 * re-enters the current interval's header from inside.
 */
IntervalLengthStats realIntervalLengths(const IntervalAnalysis &analysis,
                                        const WarpTrace &trace,
                                        bool reprefetch_on_backedge = false);

/**
 * Optimal register-interval length: the longest runs of consecutive
 * dynamic instructions whose cumulative register set stays within
 * @p max_regs, computed greedily over the execution trace with no
 * control-flow constraints (paper section 6.5).
 */
IntervalLengthStats optimalIntervalLengths(const Kernel &kernel,
                                           const WarpTrace &trace,
                                           int max_regs);

} // namespace ltrf

#endif // LTRF_COMPILER_TRACE_GEN_HH
