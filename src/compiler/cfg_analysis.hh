/**
 * @file
 * Classic CFG analyses: reverse postorder, dominators, back edges,
 * natural loops, and reducibility.
 *
 * Register-interval formation (paper section 3.3) relies on natural
 * loops and reducible CFGs; these analyses also back the test suite's
 * structural checks.
 */

#ifndef LTRF_COMPILER_CFG_ANALYSIS_HH
#define LTRF_COMPILER_CFG_ANALYSIS_HH

#include <utility>
#include <vector>

#include "isa/kernel.hh"

namespace ltrf
{

/** A natural loop discovered from a back edge. */
struct LoopInfo
{
    BlockId header = INVALID_BLOCK;
    BlockId latch = INVALID_BLOCK;
    /** All blocks in the loop body, header included. */
    std::vector<BlockId> body;
};

/** Results of the structural CFG analyses for one kernel. */
struct CfgInfo
{
    /** Blocks in reverse postorder (entry first). */
    std::vector<BlockId> rpo;
    /** rpo_index[b] = position of b in rpo; -1 if unreachable. */
    std::vector<int> rpo_index;
    /** Immediate dominator per block; entry's idom is itself. */
    std::vector<BlockId> idom;
    /** Back edges (tail, head) where head dominates tail. */
    std::vector<std::pair<BlockId, BlockId>> back_edges;
    /** Natural loops, one per back edge, outermost-last order. */
    std::vector<LoopInfo> loops;
    /** True if every retreating edge is a back edge. */
    bool reducible = true;

    /**
     * @return true if @p a dominates @p b. INVALID_BLOCK,
     * out-of-range, or unreachable arguments dominate nothing and
     * are dominated by nothing.
     */
    bool dominates(BlockId a, BlockId b) const;

    /**
     * @return true if block @p b is reachable from the entry.
     * INVALID_BLOCK and out-of-range ids are simply not reachable,
     * so callers probing edges of possibly-corrupt CFGs (the static
     * verifier) never index out of bounds.
     */
    bool
    reachable(BlockId b) const
    {
        return b >= 0 && b < static_cast<BlockId>(rpo_index.size()) &&
               rpo_index[b] >= 0;
    }
};

/** Run all analyses on @p kernel. */
CfgInfo analyzeCfg(const Kernel &kernel);

} // namespace ltrf

#endif // LTRF_COMPILER_CFG_ANALYSIS_HH
