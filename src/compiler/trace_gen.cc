#include "compiler/trace_gen.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace ltrf
{

WarpTrace
generateTrace(const Kernel &kernel, std::uint64_t seed,
              std::uint64_t max_instrs)
{
    WarpTrace trace;
    Rng rng(mixSeeds(seed, 0xA11CE));
    std::vector<std::uint32_t> loop_count(kernel.numBlocks(), 0);

    // Per-warp effective trip count for jittered loops.
    auto trip_for = [&](const BasicBlock &bb) {
        int trip = bb.branch.trip_count;
        int j = bb.branch.trip_jitter;
        if (j > 0) {
            auto span = static_cast<std::uint64_t>(2 * j + 1);
            trip += static_cast<int>(
                            mixSeeds(seed, 0x7121Bull + bb.id) % span) - j;
        }
        return std::max(1, trip);
    };

    BlockId cur = kernel.entry();
    while (true) {
        const BasicBlock &bb = kernel.block(cur);
        for (std::uint32_t i = 0; i < bb.instrs.size(); i++) {
            trace.refs.push_back({cur, i});
            if (bb.instrs[i].op != Opcode::PREFETCH)
                trace.real_instrs++;
            if (trace.refs.size() >= max_instrs) {
                trace.truncated = true;
                return trace;
            }
        }

        if (bb.succs.empty())
            break;  // EXIT
        if (bb.succs.size() == 1) {
            cur = bb.succs[0];
            continue;
        }

        switch (bb.branch.kind) {
          case BranchProfile::Kind::LOOP: {
              loop_count[cur]++;
              if (static_cast<int>(loop_count[cur]) < trip_for(bb)) {
                  cur = bb.succs[0];  // back edge taken
              } else {
                  loop_count[cur] = 0;
                  cur = bb.succs[1];  // fall out of the loop
              }
              break;
          }
          case BranchProfile::Kind::COND:
            cur = rng.nextBool(bb.branch.taken_prob) ? bb.succs[0]
                                                     : bb.succs[1];
            break;
          case BranchProfile::Kind::NONE:
            ltrf_panic("two-successor block %d with NONE branch profile",
                       cur);
        }
    }
    return trace;
}

void
IntervalLengthStats::merge(const IntervalLengthStats &o)
{
    if (o.segments == 0)
        return;
    if (segments == 0) {
        *this = o;
        return;
    }
    double total = avg * static_cast<double>(segments) +
                   o.avg * static_cast<double>(o.segments);
    segments += o.segments;
    avg = total / static_cast<double>(segments);
    min = std::min(min, o.min);
    max = std::max(max, o.max);
}

namespace
{

struct SegmentAccum
{
    std::uint64_t len = 0;
    IntervalLengthStats stats;

    void
    close()
    {
        if (len == 0)
            return;
        if (stats.segments == 0) {
            stats.min = stats.max = len;
        } else {
            stats.min = std::min(stats.min, len);
            stats.max = std::max(stats.max, len);
        }
        stats.avg = (stats.avg * static_cast<double>(stats.segments) +
                     static_cast<double>(len)) /
                    static_cast<double>(stats.segments + 1);
        stats.segments++;
        len = 0;
    }
};

} // namespace

IntervalLengthStats
realIntervalLengths(const IntervalAnalysis &analysis, const WarpTrace &trace,
                    bool reprefetch_on_backedge)
{
    SegmentAccum acc;
    IntervalId cur_itv = UNKNOWN_INTERVAL;
    bool first = true;

    for (const TraceRef &ref : trace.refs) {
        IntervalId itv = analysis.block_interval[ref.bb];
        // idx == 0 marks a dynamic block entry (including a self-loop
        // re-entering its own header).
        if (ref.idx == 0) {
            bool entered = itv != cur_itv;
            // Strand semantics: re-entering the header of the current
            // region from inside (the only way in is a back edge)
            // re-triggers the prefetch.
            bool backedge_reentry =
                    reprefetch_on_backedge && !first && itv == cur_itv &&
                    ref.bb == analysis.intervals[itv].header;
            if (entered || backedge_reentry) {
                acc.close();
                cur_itv = itv;
            }
        }
        if (analysis.kernel.block(ref.bb).instrs[ref.idx].op !=
            Opcode::PREFETCH) {
            acc.len++;
        }
        first = false;
    }
    acc.close();
    return acc.stats;
}

IntervalLengthStats
optimalIntervalLengths(const Kernel &kernel, const WarpTrace &trace,
                       int max_regs)
{
    SegmentAccum acc;
    RegBitVec cur;

    for (const TraceRef &ref : trace.refs) {
        const Instruction &in = kernel.block(ref.bb).instrs[ref.idx];
        if (in.op == Opcode::PREFETCH)
            continue;
        RegBitVec next = cur;
        in.collectRegs(next);
        if (next.count() > max_regs) {
            acc.close();
            cur.reset();
            in.collectRegs(cur);
        } else {
            cur = std::move(next);
        }
        acc.len++;
    }
    acc.close();
    return acc.stats;
}

} // namespace ltrf
