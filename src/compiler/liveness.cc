#include "compiler/liveness.hh"

#include <algorithm>

#include "common/log.hh"

namespace ltrf
{

LivenessInfo
computeLiveness(const Kernel &kernel)
{
    const int n = kernel.numBlocks();
    LivenessInfo info;
    info.use.assign(n, RegBitVec{});
    info.def.assign(n, RegBitVec{});
    info.live_in.assign(n, RegBitVec{});
    info.live_out.assign(n, RegBitVec{});

    // Local use/def: a read is upward-exposed if not preceded by a
    // definition of the same register within the block.
    for (int b = 0; b < n; b++) {
        for (const auto &in : kernel.block(b).instrs) {
            if (in.op == Opcode::PREFETCH)
                continue;
            for (RegId s : in.srcs) {
                if (s != INVALID_REG && !info.def[b].test(s))
                    info.use[b].set(s);
            }
            if (in.dst != INVALID_REG)
                info.def[b].set(in.dst);
        }
    }

    // Iterate to a fixed point, backward.
    bool changed = true;
    while (changed) {
        changed = false;
        info.iterations++;
        for (int b = n - 1; b >= 0; b--) {
            RegBitVec out;
            for (BlockId s : kernel.block(b).succs)
                out |= info.live_in[s];
            RegBitVec in = info.use[b] | (out - info.def[b]);
            if (out != info.live_out[b] || in != info.live_in[b]) {
                info.live_out[b] = out;
                info.live_in[b] = std::move(in);
                changed = true;
            }
        }
    }
    return info;
}

int
annotateDeadOperands(Kernel &kernel)
{
    LivenessInfo info = computeLiveness(kernel);
    int marked = 0;

    for (auto &bb : kernel.blocks) {
        // Walk instructions backward; 'live' holds the set live
        // *after* the instruction being processed.
        RegBitVec live = info.live_out[bb.id];
        for (auto it = bb.instrs.rbegin(); it != bb.instrs.rend(); ++it) {
            Instruction &in = *it;
            if (in.op == Opcode::PREFETCH)
                continue;
            for (int i = 0; i < 3; i++) {
                if (in.srcs[i] == INVALID_REG)
                    continue;
                in.src_dead[i] = !live.test(in.srcs[i]);
                if (in.src_dead[i])
                    marked++;
            }
            if (in.dst != INVALID_REG)
                live.clear(in.dst);
            for (RegId s : in.srcs)
                if (s != INVALID_REG)
                    live.set(s);
        }
    }
    return marked;
}

int
maxLiveRegs(const Kernel &kernel)
{
    LivenessInfo info = computeLiveness(kernel);
    int max_live = 0;
    for (const auto &bb : kernel.blocks) {
        RegBitVec live = info.live_out[bb.id];
        max_live = std::max(max_live, live.count());
        for (auto it = bb.instrs.rbegin(); it != bb.instrs.rend(); ++it) {
            const Instruction &in = *it;
            if (in.op == Opcode::PREFETCH)
                continue;
            if (in.dst != INVALID_REG)
                live.clear(in.dst);
            for (RegId s : in.srcs)
                if (s != INVALID_REG)
                    live.set(s);
            max_live = std::max(max_live, live.count());
        }
    }
    return max_live;
}

} // namespace ltrf
