#include "compiler/register_interval.hh"

#include <algorithm>
#include <deque>

#include "common/log.hh"

namespace ltrf
{

namespace
{

/**
 * Split @p b before instruction index @p at: instructions [at, end)
 * move into a fresh block that inherits b's successors and branch
 * profile; b falls through to the new block. @return the new block id.
 */
BlockId
splitBlock(Kernel &k, BlockId b, size_t at)
{
    BasicBlock nb;
    nb.id = static_cast<BlockId>(k.blocks.size());
    {
        BasicBlock &src = k.block(b);
        ltrf_assert(at > 0 && at < src.instrs.size(),
                    "bad split point %zu in block %d (%zu instrs)", at, b,
                    src.instrs.size());
        nb.instrs.assign(src.instrs.begin() + at, src.instrs.end());
        src.instrs.erase(src.instrs.begin() + at, src.instrs.end());
        nb.succs = src.succs;
        nb.branch = src.branch;
        src.succs = {nb.id};
        src.branch = BranchProfile{};
        nb.preds = {b};
    }
    k.blocks.push_back(std::move(nb));
    BlockId nid = k.blocks.back().id;
    // Redirect successor predecessor lists from b to the new block.
    for (BlockId s : k.blocks[nid].succs) {
        for (BlockId &p : k.block(s).preds)
            if (p == b)
                p = nid;
    }
    k.block(b).preds.erase(
            std::remove(k.block(b).preds.begin(), k.block(b).preds.end(), b),
            k.block(b).preds.end());
    // A self-loop b->b becomes nid->b after the split; the pred fixup
    // above already rewrote it, nothing more to do.
    return nid;
}

/** Worklist-driven implementation of Algorithm 1. */
class Pass1
{
  public:
    Pass1(Kernel kernel, const FormationOptions &o)
        : k(std::move(kernel)), opt(o)
    {}

    struct Itv
    {
        BlockId header;
        std::vector<BlockId> members;
        RegBitVec ws;
    };

    Kernel k;
    FormationOptions opt;
    std::vector<IntervalId> itv;      ///< per-block interval (Unknown=-1)
    std::vector<RegBitVec> input;     ///< Algorithm 1 input_list
    std::vector<RegBitVec> output;    ///< Algorithm 1 output_list
    std::vector<char> ends_region;    ///< strand: region ends at block end
    std::vector<char> traversed;      ///< TRAVERSE already ran
    std::vector<Itv> ivs;
    std::deque<BlockId> work;

    void
    run()
    {
        grow();
        newInterval(k.entry());
        work.push_back(k.entry());
        while (!work.empty()) {
            BlockId b = work.front();
            work.pop_front();
            IntervalId i = itv[b];
            if (!traversed[b])
                traverse(b);
            extend(i);
            // All unassigned successors of the finished interval
            // become headers of new intervals (Algorithm 1, 18-24).
            for (size_t mi = 0; mi < ivs[i].members.size(); mi++) {
                for (BlockId s : k.block(ivs[i].members[mi]).succs) {
                    if (itv[s] == UNKNOWN_INTERVAL) {
                        newInterval(s);
                        work.push_back(s);
                    }
                }
            }
        }
    }

  private:
    void
    grow()
    {
        size_t n = k.blocks.size();
        itv.resize(n, UNKNOWN_INTERVAL);
        input.resize(n);
        output.resize(n);
        ends_region.resize(n, 0);
        traversed.resize(n, 0);
    }

    IntervalId
    newInterval(BlockId header)
    {
        IntervalId id = static_cast<IntervalId>(ivs.size());
        itv[header] = id;
        ivs.push_back(Itv{header, {header}, RegBitVec{}});
        return id;
    }

    /**
     * Algorithm 1's TRAVERSE: walk the block accumulating its
     * register list; split when the interval working set would
     * overflow N, and (for strands) after long-latency operations.
     */
    void
    traverse(BlockId b)
    {
        traversed[b] = 1;
        IntervalId i = itv[b];
        RegBitVec regs = input[b];
        size_t idx = 0;
        while (idx < k.block(b).instrs.size()) {
            const Instruction &in = k.block(b).instrs[idx];
            RegBitVec next = regs;
            in.collectRegs(next);
            if ((ivs[i].ws | next).count() > opt.max_regs) {
                if (idx == 0) {
                    // The very first instruction overflows the
                    // interval this block just joined: undo the join
                    // and re-home the whole block as a new interval
                    // header (its own working set always fits).
                    ltrf_assert(ivs[i].members.back() == b &&
                                ivs[i].header != b,
                                "header block %d overflows empty "
                                "interval", b);
                    ivs[i].members.pop_back();
                    newInterval(b);
                    input[b].reset();
                    // Queue it so its own interval gets extended and
                    // its successors scanned by the main loop.
                    work.push_back(b);
                    traverse(b);
                    return;
                }
                // Overflow mid-block: the remainder starts a new
                // interval (Algorithm 1, lines 30-37).
                BlockId nb = splitBlock(k, b, idx);
                grow();
                newInterval(nb);
                work.push_back(nb);
                break;
            }
            regs = std::move(next);
            if (opt.split_at_long_latency && isGlobalMem(in.op)) {
                // Strand semantics: the region ends after a
                // long/variable-latency operation.
                if (idx + 1 < k.block(b).instrs.size()) {
                    BlockId nb = splitBlock(k, b, idx + 1);
                    grow();
                    newInterval(nb);
                    work.push_back(nb);
                }
                ends_region[b] = 1;
                break;
            }
            idx++;
        }
        if (opt.split_at_long_latency &&
            k.block(b).branch.kind == BranchProfile::Kind::LOOP) {
            // Strands end at backward branches.
            ends_region[b] = 1;
        }
        output[b] = regs;
        ivs[i].ws |= regs;
    }

    /** @return true if all predecessors of @p h belong to interval i. */
    bool
    allPredsIn(BlockId h, IntervalId i) const
    {
        for (BlockId p : k.block(h).preds)
            if (itv[p] != i)
                return false;
        return !k.block(h).preds.empty();
    }

    /** Greedy extension loop of Algorithm 1 (lines 13-17). */
    void
    extend(IntervalId i)
    {
        bool added = true;
        while (added) {
            added = false;
            for (size_t mi = 0; mi < ivs[i].members.size() && !added;
                 mi++) {
                for (BlockId h : k.block(ivs[i].members[mi]).succs) {
                    if (itv[h] != UNKNOWN_INTERVAL || !allPredsIn(h, i))
                        continue;
                    // Strand barrier: no joining across a region end.
                    bool barred = false;
                    RegBitVec in_list;
                    for (BlockId p : k.block(h).preds) {
                        if (ends_region[p])
                            barred = true;
                        in_list |= output[p];
                    }
                    if (barred)
                        continue;
                    if ((ivs[i].ws | in_list).count() > opt.max_regs)
                        continue;
                    itv[h] = i;
                    ivs[i].members.push_back(h);
                    input[h] = in_list;
                    traverse(h);
                    added = true;
                    break;
                }
            }
        }
    }
};

/** Result of one Algorithm 2 round. */
struct Pass2Result
{
    /** Old interval id -> group id; empty if nothing merged. */
    std::vector<int> group;
    /** Group id -> seed interval (the group's single entry). */
    std::vector<int> seed;
};

/** One round of Algorithm 2 on the interval graph. */
Pass2Result
pass2Round(const Kernel &k, const std::vector<IntervalId> &block_itv,
           const std::vector<RegisterInterval> &ivs, int max_regs)
{
    const int n = static_cast<int>(ivs.size());

    // Build the deduplicated interval graph.
    std::vector<std::vector<int>> preds(n), succs(n);
    for (const auto &bb : k.blocks) {
        int iu = block_itv[bb.id];
        for (BlockId s : bb.succs) {
            int iv = block_itv[s];
            if (iu == iv)
                continue;
            if (std::find(succs[iu].begin(), succs[iu].end(), iv) ==
                succs[iu].end()) {
                succs[iu].push_back(iv);
                preds[iv].push_back(iu);
            }
        }
    }

    std::vector<int> group(n, -1);
    std::vector<int> seeds;
    std::vector<RegBitVec> gws;
    std::vector<std::vector<int>> gmembers;
    std::deque<int> work;

    auto new_group = [&](int seed) {
        group[seed] = static_cast<int>(gws.size());
        seeds.push_back(seed);
        gws.push_back(ivs[seed].working_set);
        gmembers.push_back({seed});
        return group[seed];
    };

    new_group(block_itv[k.entry()]);
    work.push_back(block_itv[k.entry()]);
    bool merged_any = false;

    while (!work.empty()) {
        int seed = work.front();
        work.pop_front();
        int g = group[seed];
        // Greedy merge (Algorithm 2, lines 12-15).
        bool added = true;
        while (added) {
            added = false;
            for (size_t mi = 0; mi < gmembers[g].size() && !added; mi++) {
                for (int h : succs[gmembers[g][mi]]) {
                    if (group[h] != -1)
                        continue;
                    bool all_in = !preds[h].empty();
                    for (int p : preds[h])
                        if (group[p] != g)
                            all_in = false;
                    if (!all_in)
                        continue;
                    if ((gws[g] | ivs[h].working_set).count() > max_regs)
                        continue;
                    group[h] = g;
                    gws[g] |= ivs[h].working_set;
                    gmembers[g].push_back(h);
                    merged_any = true;
                    added = true;
                    break;
                }
            }
        }
        for (int m : gmembers[g]) {
            for (int s : succs[m]) {
                if (group[s] == -1) {
                    new_group(s);
                    work.push_back(s);
                }
            }
        }
    }

    if (!merged_any)
        return {};
    return {std::move(group), std::move(seeds)};
}

} // namespace

void
IntervalAnalysis::validate(int max_regs) const
{
    kernel.validate();
    ltrf_assert(block_interval.size() == kernel.blocks.size(),
                "interval map size mismatch");
    for (const auto &bb : kernel.blocks) {
        IntervalId i = block_interval[bb.id];
        ltrf_assert(i >= 0 && i < static_cast<int>(intervals.size()),
                    "block %d unassigned", bb.id);
        // Single entry point: edges from other intervals must target
        // the header.
        for (BlockId s : bb.succs) {
            IntervalId si = block_interval[s];
            if (si != i) {
                ltrf_assert(s == intervals[si].header,
                            "edge %d->%d enters interval %d at non-header",
                            bb.id, s, si);
            }
        }
    }
    for (const auto &iv : intervals) {
        ltrf_assert(iv.working_set.count() <= max_regs,
                    "interval %d working set %d exceeds %d", iv.id,
                    iv.working_set.count(), max_regs);
        ltrf_assert(block_interval[iv.header] == iv.id,
                    "interval %d header not a member", iv.id);
        // The working set must cover every register its blocks touch.
        RegBitVec used;
        for (BlockId b : iv.blocks)
            used |= kernel.block(b).usedRegs();
        ltrf_assert(iv.working_set.contains(used),
                    "interval %d working set misses used registers",
                    iv.id);
    }
}

IntervalAnalysis
formRegisterIntervals(const Kernel &kernel, const FormationOptions &opt)
{
    ltrf_assert(opt.max_regs >= 4,
                "max_regs %d too small for 4-operand instructions",
                opt.max_regs);

    Pass1 p1(kernel, opt);
    p1.run();

    IntervalAnalysis out;
    out.kernel = std::move(p1.k);
    out.block_interval.assign(out.kernel.blocks.size(), UNKNOWN_INTERVAL);

    for (size_t i = 0; i < p1.ivs.size(); i++) {
        RegisterInterval iv;
        iv.id = static_cast<IntervalId>(i);
        iv.header = p1.ivs[i].header;
        iv.blocks = p1.ivs[i].members;
        iv.working_set = p1.ivs[i].ws;
        for (BlockId b : iv.blocks)
            out.block_interval[b] = iv.id;
        out.intervals.push_back(std::move(iv));
    }
    out.intervals_after_pass1 = static_cast<int>(out.intervals.size());

    if (opt.enable_pass2) {
        // Repeat Algorithm 2 until no further reduction (section 3.3).
        while (true) {
            Pass2Result round = pass2Round(
                    out.kernel, out.block_interval, out.intervals,
                    opt.max_regs);
            if (round.group.empty())
                break;
            out.pass2_rounds++;

            // The group's header is the seed interval's header: a
            // member only joins when all its predecessors are already
            // inside, so every external edge enters through the seed.
            std::vector<RegisterInterval> merged(round.seed.size());
            for (size_t g = 0; g < round.seed.size(); g++) {
                merged[g].id = static_cast<IntervalId>(g);
                merged[g].header = out.intervals[round.seed[g]].header;
            }
            for (size_t oi = 0; oi < out.intervals.size(); oi++) {
                RegisterInterval &m = merged[round.group[oi]];
                const RegisterInterval &o = out.intervals[oi];
                m.working_set |= o.working_set;
                m.blocks.insert(m.blocks.end(), o.blocks.begin(),
                                o.blocks.end());
            }
            out.intervals = std::move(merged);
            for (auto &iv : out.intervals)
                for (BlockId b : iv.blocks)
                    out.block_interval[b] = iv.id;
        }
    }

    out.validate(opt.max_regs);
    return out;
}

IntervalAnalysis
formStrands(const Kernel &kernel, int max_regs)
{
    FormationOptions opt;
    opt.max_regs = max_regs;
    opt.split_at_long_latency = true;
    opt.enable_pass2 = false;
    return formRegisterIntervals(kernel, opt);
}

} // namespace ltrf
