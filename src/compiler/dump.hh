/**
 * @file
 * Human-readable dumps of kernels and interval analyses: an
 * assembly-like text listing and a Graphviz CFG rendering with
 * blocks grouped by register-interval.
 */

#ifndef LTRF_COMPILER_DUMP_HH
#define LTRF_COMPILER_DUMP_HH

#include <ostream>
#include <string>

#include "isa/kernel.hh"

namespace ltrf
{

struct IntervalAnalysis;

/**
 * Write an assembly-like listing of @p kernel to @p os:
 * block labels, instructions, successor edges, and branch profiles.
 */
void dumpKernel(std::ostream &os, const Kernel &kernel);

/** Convenience: dumpKernel into a string. */
std::string kernelToString(const Kernel &kernel);

/**
 * Write a Graphviz dot rendering of @p kernel's CFG to @p os. When
 * @p analysis is non-null, blocks are clustered and colored by
 * register-interval and each cluster is labeled with its working
 * set — the visualization of paper Figure 6.
 */
void dumpCfgDot(std::ostream &os, const Kernel &kernel,
                const IntervalAnalysis *analysis = nullptr);

} // namespace ltrf

#endif // LTRF_COMPILER_DUMP_HH
