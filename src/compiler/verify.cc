#include "compiler/verify.hh"

#include <algorithm>

#include "common/log.hh"
#include "compiler/cfg_analysis.hh"
#include "compiler/liveness.hh"

namespace ltrf
{

const char *
verifyCheckName(VerifyCheck c)
{
    switch (c) {
      case VerifyCheck::CFG:
        return "cfg";
      case VerifyCheck::DEF_USE:
        return "def-use";
      case VerifyCheck::INTERVAL:
        return "interval";
      case VerifyCheck::RESIDENCY:
        return "residency";
      case VerifyCheck::DEAD_BIT:
        return "dead-bit";
      case VerifyCheck::CAPACITY:
        return "capacity";
      case VerifyCheck::PREFETCH:
        return "prefetch";
    }
    return "?";
}

bool
parseVerifyCheck(const std::string &name, VerifyCheck &out)
{
    static constexpr VerifyCheck ALL[] = {
            VerifyCheck::CFG,      VerifyCheck::DEF_USE,
            VerifyCheck::INTERVAL, VerifyCheck::RESIDENCY,
            VerifyCheck::DEAD_BIT, VerifyCheck::CAPACITY,
            VerifyCheck::PREFETCH,
    };
    for (VerifyCheck c : ALL) {
        if (name == verifyCheckName(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

void
VerifyOptions::disable(VerifyCheck c)
{
    switch (c) {
      case VerifyCheck::CFG:
        check_cfg = false;
        break;
      case VerifyCheck::DEF_USE:
        check_def_use = false;
        break;
      case VerifyCheck::INTERVAL:
        check_interval = false;
        break;
      case VerifyCheck::RESIDENCY:
        check_residency = false;
        break;
      case VerifyCheck::DEAD_BIT:
        check_dead_bit = false;
        break;
      case VerifyCheck::CAPACITY:
        check_capacity = false;
        break;
      case VerifyCheck::PREFETCH:
        check_prefetch = false;
        break;
    }
}

std::string
VerifyDiag::toString() const
{
    std::string where;
    if (block != INVALID_BLOCK) {
        where = detail::format(" block %d", block);
        if (instr >= 0)
            where += detail::format(" instr %d", instr);
    }
    return detail::format("[%s]%s: %s", verifyCheckName(check),
                          where.c_str(), message.c_str());
}

bool
VerifyResult::has(VerifyCheck c) const
{
    for (const VerifyDiag &d : diags)
        if (d.check == c)
            return true;
    return false;
}

int
VerifyResult::count(VerifyCheck c) const
{
    int n = 0;
    for (const VerifyDiag &d : diags)
        if (d.check == c)
            n++;
    return n;
}

std::string
VerifyResult::report() const
{
    std::string out;
    for (const VerifyDiag &d : diags) {
        out += d.toString();
        out += '\n';
    }
    if (dropped > 0)
        out += detail::format("... and %d further diagnostics\n", dropped);
    return out;
}

namespace
{

/** Collects diagnostics, bounded by VerifyOptions::max_diagnostics. */
class Emitter
{
  public:
    Emitter(VerifyResult &r, const VerifyOptions &o) : res(r), opt(o) {}

    void
    emit(VerifyCheck check, BlockId block, int instr, std::string msg)
    {
        if (static_cast<int>(res.diags.size()) >= opt.max_diagnostics) {
            res.dropped++;
            return;
        }
        res.diags.push_back(
                VerifyDiag{check, block, instr, std::move(msg)});
    }

  private:
    VerifyResult &res;
    const VerifyOptions &opt;
};

/** @return true iff @p r is a usable architectural register id. */
bool
regInBitvecRange(RegId r)
{
    return r >= 0 && r < MAX_ARCH_REGS;
}

/**
 * Structural well-formedness. @return true when the kernel is safe
 * for the dataflow checks: block/register ids all within range and
 * the pred/succ lists symmetric. Diagnostics are emitted only when
 * @p report is set (the cfg check may be toggled off while the
 * safety gate still has to run).
 */
bool
structuralCfg(const Kernel &k, Emitter &em, bool report)
{
    const int n = k.numBlocks();
    bool safe = true;
    auto bad = [&](VerifyCheck c, BlockId b, int i, std::string msg) {
        safe = false;
        if (report)
            em.emit(c, b, i, std::move(msg));
    };

    if (n == 0) {
        bad(VerifyCheck::CFG, INVALID_BLOCK, -1, "kernel has no blocks");
        return false;
    }

    for (const BasicBlock &bb : k.blocks) {
        if (bb.id < 0 || bb.id >= n || &k.block(bb.id) != &bb) {
            bad(VerifyCheck::CFG, bb.id, -1,
                detail::format("block id %d inconsistent with its "
                               "position", bb.id));
            continue;
        }
        if (bb.succs.size() > 2) {
            bad(VerifyCheck::CFG, bb.id, -1,
                detail::format("%zu successors (max 2)",
                               bb.succs.size()));
        }
        for (BlockId s : bb.succs) {
            if (s < 0 || s >= n) {
                bad(VerifyCheck::CFG, bb.id, -1,
                    detail::format("successor %d out of range [0, %d)",
                                   s, n));
                continue;
            }
            const auto &sp = k.block(s).preds;
            if (std::find(sp.begin(), sp.end(), bb.id) == sp.end()) {
                bad(VerifyCheck::CFG, bb.id, -1,
                    detail::format("edge %d->%d missing from %d's "
                                   "preds", bb.id, s, s));
            }
        }
        for (BlockId p : bb.preds) {
            if (p < 0 || p >= n) {
                bad(VerifyCheck::CFG, bb.id, -1,
                    detail::format("predecessor %d out of range "
                                   "[0, %d)", p, n));
                continue;
            }
            const auto &ps = k.block(p).succs;
            if (std::find(ps.begin(), ps.end(), bb.id) == ps.end()) {
                bad(VerifyCheck::CFG, bb.id, -1,
                    detail::format("edge %d->%d missing from %d's "
                                   "succs", p, bb.id, p));
            }
        }

        for (size_t i = 0; i < bb.instrs.size(); i++) {
            const Instruction &in = bb.instrs[i];
            if (isControl(in.op) && i + 1 != bb.instrs.size()) {
                bad(VerifyCheck::CFG, bb.id, static_cast<int>(i),
                    detail::format("control op %s mid-block",
                                   opcodeName(in.op)));
            }
            for (RegId s : in.srcs) {
                if (s != INVALID_REG &&
                    (!regInBitvecRange(s) || s >= k.num_regs)) {
                    bad(VerifyCheck::CFG, bb.id, static_cast<int>(i),
                        detail::format("source reg %d out of range "
                                       "[0, %d)", s, k.num_regs));
                }
            }
            if (in.dst != INVALID_REG &&
                (!regInBitvecRange(in.dst) || in.dst >= k.num_regs)) {
                bad(VerifyCheck::CFG, bb.id, static_cast<int>(i),
                    detail::format("dest reg %d out of range [0, %d)",
                                   in.dst, k.num_regs));
            }
            if ((isLoad(in.op) || isStore(in.op)) &&
                (in.mem_stream < 0 ||
                 in.mem_stream >=
                         static_cast<int>(k.mem_streams.size()))) {
                bad(VerifyCheck::CFG, bb.id, static_cast<int>(i),
                    detail::format("memory stream %d out of range "
                                   "[0, %zu)", in.mem_stream,
                                   k.mem_streams.size()));
            }
        }

        // Terminator discipline (does not make dataflow unsafe, so
        // report without clearing `safe`).
        if (report) {
            if (bb.succs.size() == 2 &&
                (bb.instrs.empty() ||
                 bb.instrs.back().op != Opcode::BRA)) {
                em.emit(VerifyCheck::CFG, bb.id, -1,
                        "two-successor block lacks terminating BRA");
            }
            if (bb.succs.empty() &&
                (bb.instrs.empty() ||
                 bb.instrs.back().op != Opcode::EXIT)) {
                em.emit(VerifyCheck::CFG, bb.id, -1,
                        "terminal block lacks EXIT");
            }
            if (!bb.succs.empty() && !bb.instrs.empty() &&
                bb.instrs.back().op == Opcode::EXIT) {
                em.emit(VerifyCheck::CFG, bb.id, -1,
                        "EXIT block has successors");
            }
        }
    }

    if (report && !k.block(k.entry()).preds.empty()) {
        em.emit(VerifyCheck::CFG, k.entry(), -1,
                "entry block has predecessors (CFG must be "
                "single-entry)");
    }
    return safe;
}

/** Reachability + reducibility over a structurally safe kernel. */
void
checkCfgGlobal(const Kernel &k, const CfgInfo &cfg, Emitter &em)
{
    for (const BasicBlock &bb : k.blocks) {
        if (!cfg.reachable(bb.id)) {
            em.emit(VerifyCheck::CFG, bb.id, -1,
                    "block unreachable from the entry");
        }
    }
    if (!cfg.reducible) {
        em.emit(VerifyCheck::CFG, INVALID_BLOCK, -1,
                "CFG is irreducible (interval formation assumes "
                "reducible control flow)");
    }
}

/**
 * Weak reaching-definition check: flag reads no definition can ever
 * reach (see file header for why the all-paths variant is not
 * enforced). Union dataflow over reachable blocks.
 */
void
checkDefUse(const Kernel &k, const CfgInfo &cfg, Emitter &em)
{
    const int n = k.numBlocks();
    std::vector<RegBitVec> defs(n), in(n), out(n);
    for (const BasicBlock &bb : k.blocks) {
        for (const Instruction &ins : bb.instrs) {
            if (ins.op != Opcode::PREFETCH && ins.dst != INVALID_REG)
                defs[bb.id].set(ins.dst);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : cfg.rpo) {
            RegBitVec i_state;
            for (BlockId p : k.block(b).preds)
                if (cfg.reachable(p))
                    i_state |= out[p];
            RegBitVec o_state = i_state | defs[b];
            if (i_state != in[b] || o_state != out[b]) {
                in[b] = std::move(i_state);
                out[b] = std::move(o_state);
                changed = true;
            }
        }
    }

    for (BlockId b : cfg.rpo) {
        RegBitVec seen = in[b];
        const BasicBlock &bb = k.block(b);
        for (size_t i = 0; i < bb.instrs.size(); i++) {
            const Instruction &ins = bb.instrs[i];
            if (ins.op == Opcode::PREFETCH)
                continue;
            for (RegId s : ins.srcs) {
                if (s != INVALID_REG && !seen.test(s)) {
                    em.emit(VerifyCheck::DEF_USE, b,
                            static_cast<int>(i),
                            detail::format("read of r%d which no "
                                           "definition can reach", s));
                }
            }
            if (ins.dst != INVALID_REG)
                seen.set(ins.dst);
        }
    }
}

/**
 * Dead-operand soundness: recompute liveness independently and flag
 * operands marked dead whose register is still live after the
 * instruction.
 */
void
checkDeadBits(const Kernel &k, Emitter &em)
{
    LivenessInfo live = computeLiveness(k);
    for (const BasicBlock &bb : k.blocks) {
        // 'after' is the live set after the instruction at hand,
        // maintained by a backward walk as in annotateDeadOperands.
        RegBitVec after = live.live_out[bb.id];
        for (int i = static_cast<int>(bb.instrs.size()) - 1; i >= 0;
             i--) {
            const Instruction &ins = bb.instrs[i];
            if (ins.op == Opcode::PREFETCH)
                continue;
            for (int s = 0; s < 3; s++) {
                if (ins.srcs[s] == INVALID_REG || !ins.src_dead[s])
                    continue;
                if (after.test(ins.srcs[s])) {
                    em.emit(VerifyCheck::DEAD_BIT, bb.id, i,
                            detail::format(
                                    "operand %d (r%d) marked dead but "
                                    "the register is read again on "
                                    "some path", s, ins.srcs[s]));
                }
            }
            if (ins.dst != INVALID_REG)
                after.clear(ins.dst);
            for (RegId s : ins.srcs)
                if (s != INVALID_REG)
                    after.set(s);
        }
    }
}

/** Interval-map consistency (see header). */
void
checkIntervals(const Kernel &k, const IntervalAnalysis &ia, Emitter &em)
{
    const int n = k.numBlocks();
    const int ni = static_cast<int>(ia.intervals.size());

    if (static_cast<int>(ia.block_interval.size()) != n) {
        em.emit(VerifyCheck::INTERVAL, INVALID_BLOCK, -1,
                detail::format("block_interval has %zu entries for %d "
                               "blocks", ia.block_interval.size(), n));
        return;
    }

    auto intervalOf = [&](BlockId b) -> IntervalId {
        return (b >= 0 && b < n) ? ia.block_interval[b]
                                 : UNKNOWN_INTERVAL;
    };

    for (BlockId b = 0; b < n; b++) {
        IntervalId i = ia.block_interval[b];
        if (i < 0 || i >= ni) {
            em.emit(VerifyCheck::INTERVAL, b, -1,
                    detail::format("block assigned to interval %d, "
                                   "valid range [0, %d)", i, ni));
        }
    }

    std::vector<int> member_count(ni, 0);
    for (BlockId b = 0; b < n; b++) {
        IntervalId i = ia.block_interval[b];
        if (i >= 0 && i < ni)
            member_count[i]++;
    }

    for (const RegisterInterval &iv : ia.intervals) {
        if (iv.header < 0 || iv.header >= n) {
            em.emit(VerifyCheck::INTERVAL, INVALID_BLOCK, -1,
                    detail::format("interval %d header %d out of "
                                   "range", iv.id, iv.header));
            continue;
        }
        if (intervalOf(iv.header) != iv.id) {
            em.emit(VerifyCheck::INTERVAL, iv.header, -1,
                    detail::format("interval %d header not mapped to "
                                   "its interval", iv.id));
        }
        RegBitVec used;
        bool members_ok = true;
        for (BlockId b : iv.blocks) {
            if (b < 0 || b >= n) {
                em.emit(VerifyCheck::INTERVAL, b, -1,
                        detail::format("interval %d member out of "
                                       "range", iv.id));
                members_ok = false;
                continue;
            }
            if (ia.block_interval[b] != iv.id) {
                em.emit(VerifyCheck::INTERVAL, b, -1,
                        detail::format("interval %d member mapped to "
                                       "interval %d", iv.id,
                                       ia.block_interval[b]));
                members_ok = false;
            }
            used |= k.block(b).usedRegs();
        }
        if (members_ok &&
            member_count[iv.id] != static_cast<int>(iv.blocks.size())) {
            em.emit(VerifyCheck::INTERVAL, iv.header, -1,
                    detail::format("interval %d member list has %zu "
                                   "blocks but %d blocks map to it",
                                   iv.id, iv.blocks.size(),
                                   member_count[iv.id]));
        }
        if (!iv.working_set.contains(used)) {
            RegBitVec missing = used - iv.working_set;
            em.emit(VerifyCheck::INTERVAL, iv.header, -1,
                    detail::format("interval %d working set misses "
                                   "registers %s its blocks touch",
                                   iv.id,
                                   missing.toString().c_str()));
        }
    }

    // The single-entry invariant: an edge crossing intervals must
    // enter at the target interval's header.
    for (const BasicBlock &bb : k.blocks) {
        IntervalId iu = intervalOf(bb.id);
        for (BlockId s : bb.succs) {
            IntervalId is = intervalOf(s);
            if (is < 0 || is >= ni || is == iu)
                continue;
            if (s != ia.intervals[is].header) {
                em.emit(VerifyCheck::INTERVAL, bb.id, -1,
                        detail::format("edge %d->%d enters interval "
                                       "%d at a non-header block",
                                       bb.id, s, is));
            }
        }
    }
}

/** Capacity: working sets fit the per-warp fast-RF partition. */
void
checkCapacity(const IntervalAnalysis &ia, int max_regs, Emitter &em)
{
    for (const RegisterInterval &iv : ia.intervals) {
        int ws = iv.working_set.count();
        if (ws > max_regs) {
            em.emit(VerifyCheck::CAPACITY,
                    (iv.header >= 0 &&
                     iv.header < ia.kernel.numBlocks())
                            ? iv.header
                            : INVALID_BLOCK,
                    -1,
                    detail::format("interval %d working set of %d "
                                   "registers exceeds the %d-register "
                                   "partition", iv.id, ws, max_regs));
        }
    }
}

/**
 * Residency (the fast-RF guarantee). Structural half: every interval
 * header starts with a PREFETCH covering the working set. Dataflow
 * half: the last-executed prefetch mask (intersection over paths)
 * covers every register access.
 */
void
checkResidency(const Kernel &k, const CfgInfo &cfg,
               const IntervalAnalysis &ia, Emitter &em)
{
    const int n = k.numBlocks();

    for (const RegisterInterval &iv : ia.intervals) {
        if (iv.working_set.empty() || iv.header < 0 || iv.header >= n)
            continue;
        const BasicBlock &h = k.block(iv.header);
        if (h.instrs.empty() || h.instrs.front().op != Opcode::PREFETCH) {
            em.emit(VerifyCheck::RESIDENCY, iv.header, 0,
                    detail::format("interval %d header does not begin "
                                   "with a PREFETCH of its working "
                                   "set", iv.id));
            continue;
        }
        if (!h.instrs.front().prefetch_mask.contains(iv.working_set)) {
            RegBitVec missing =
                    iv.working_set - h.instrs.front().prefetch_mask;
            em.emit(VerifyCheck::RESIDENCY, iv.header, 0,
                    detail::format("interval %d header PREFETCH mask "
                                   "misses %s of the working set",
                                   iv.id, missing.toString().c_str()));
        }
    }

    // Forward dataflow. The resident set at a point is exactly the
    // last PREFETCH mask executed (a prefetch fills the warp's whole
    // partition, evicting the previous interval); the meet across
    // predecessors is intersection (guaranteed on *every* path).
    RegBitVec full;
    for (int r = 0; r < RegBitVec::NUM_BITS; r++)
        full.set(r);

    auto transfer = [&](BlockId b, RegBitVec state) {
        for (const Instruction &ins : k.block(b).instrs)
            if (ins.op == Opcode::PREFETCH)
                state = ins.prefetch_mask;
        return state;
    };

    std::vector<RegBitVec> in(n, full), out(n, full);
    in[k.entry()] = RegBitVec{};
    out[k.entry()] = transfer(k.entry(), RegBitVec{});
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : cfg.rpo) {
            RegBitVec i_state = full;
            if (b == k.entry()) {
                i_state = RegBitVec{};
            } else {
                for (BlockId p : k.block(b).preds)
                    if (cfg.reachable(p))
                        i_state &= out[p];
            }
            RegBitVec o_state = transfer(b, i_state);
            if (i_state != in[b] || o_state != out[b]) {
                in[b] = std::move(i_state);
                out[b] = std::move(o_state);
                changed = true;
            }
        }
    }

    for (BlockId b : cfg.rpo) {
        RegBitVec resident = in[b];
        const BasicBlock &bb = k.block(b);
        for (size_t i = 0; i < bb.instrs.size(); i++) {
            const Instruction &ins = bb.instrs[i];
            if (ins.op == Opcode::PREFETCH) {
                resident = ins.prefetch_mask;
                continue;
            }
            for (RegId s : ins.srcs) {
                if (s != INVALID_REG && !resident.test(s)) {
                    em.emit(VerifyCheck::RESIDENCY, b,
                            static_cast<int>(i),
                            detail::format(
                                    "read of r%d not covered by a "
                                    "PREFETCH on every path (fast-RF "
                                    "guarantee violated)", s));
                }
            }
            if (ins.dst != INVALID_REG && !resident.test(ins.dst)) {
                em.emit(VerifyCheck::RESIDENCY, b, static_cast<int>(i),
                        detail::format("write of r%d not covered by a "
                                       "PREFETCH on every path "
                                       "(fast-RF guarantee violated)",
                                       ins.dst));
            }
        }
    }
}

/**
 * Prefetch sanity: every non-empty-mask PREFETCH must have some
 * masked register accessed on some path before the next PREFETCH.
 */
void
checkPrefetchSanity(const Kernel &k, Emitter &em)
{
    const int n = k.numBlocks();

    auto accessesMask = [](const Instruction &ins, const RegBitVec &m) {
        if (ins.op == Opcode::PREFETCH)
            return false;
        for (RegId s : ins.srcs)
            if (s != INVALID_REG && m.test(s))
                return true;
        return ins.dst != INVALID_REG && m.test(ins.dst);
    };

    // Scan instrs [from, end) of block b; returns 1 if a masked
    // access is found, 0 if a PREFETCH ends the window, -1 if the
    // block ends with the window still open.
    auto scanBlock = [&](BlockId b, size_t from, const RegBitVec &m) {
        const BasicBlock &bb = k.block(b);
        for (size_t i = from; i < bb.instrs.size(); i++) {
            if (accessesMask(bb.instrs[i], m))
                return 1;
            if (bb.instrs[i].op == Opcode::PREFETCH)
                return 0;
        }
        return -1;
    };

    for (const BasicBlock &bb : k.blocks) {
        for (size_t i = 0; i < bb.instrs.size(); i++) {
            const Instruction &pf = bb.instrs[i];
            if (pf.op != Opcode::PREFETCH || pf.prefetch_mask.empty())
                continue;

            bool used = false;
            std::vector<char> visited(n, 0);
            std::vector<BlockId> work;
            int first = scanBlock(bb.id, i + 1, pf.prefetch_mask);
            if (first == 1) {
                used = true;
            } else if (first == -1) {
                for (BlockId s : bb.succs)
                    if (s >= 0 && s < n && !visited[s]) {
                        visited[s] = 1;
                        work.push_back(s);
                    }
            }
            while (!used && !work.empty()) {
                BlockId b = work.back();
                work.pop_back();
                int r = scanBlock(b, 0, pf.prefetch_mask);
                if (r == 1) {
                    used = true;
                } else if (r == -1) {
                    for (BlockId s : k.block(b).succs)
                        if (s >= 0 && s < n && !visited[s]) {
                            visited[s] = 1;
                            work.push_back(s);
                        }
                }
            }
            if (!used) {
                em.emit(VerifyCheck::PREFETCH, bb.id,
                        static_cast<int>(i),
                        detail::format("PREFETCH of %s never followed "
                                       "by an access to any masked "
                                       "register before the next "
                                       "PREFETCH (wasted slot)",
                                       pf.prefetch_mask.toString()
                                               .c_str()));
            }
        }
    }
}

/** Shared driver behind verifyKernel()/verifyAnalysis(). */
VerifyResult
verifyImpl(const Kernel &k, const IntervalAnalysis *ia, int max_regs,
           const VerifyOptions &opt)
{
    VerifyResult out;
    out.kernel = k.name;
    Emitter em(out, opt);

    // The safety gate always runs (the dataflow checks below would
    // chase out-of-range ids otherwise); diagnostics from it are
    // only reported when the cfg check is enabled.
    bool safe = structuralCfg(k, em, opt.check_cfg);

    const bool has_intervals = ia != nullptr && !ia->intervals.empty();

    if (has_intervals && opt.check_capacity)
        checkCapacity(*ia, max_regs, em);

    if (!safe)
        return out;

    CfgInfo cfg = analyzeCfg(k);
    if (opt.check_cfg)
        checkCfgGlobal(k, cfg, em);
    if (opt.check_def_use)
        checkDefUse(k, cfg, em);
    if (opt.check_dead_bit)
        checkDeadBits(k, em);

    bool has_prefetch = false;
    for (const BasicBlock &bb : k.blocks)
        for (const Instruction &ins : bb.instrs)
            if (ins.op == Opcode::PREFETCH)
                has_prefetch = true;

    if (has_intervals) {
        if (opt.check_interval)
            checkIntervals(k, *ia, em);
        // A formation result whose kernel carries no PREFETCH yet is
        // a pre-insertion intermediate: nothing to prove residency
        // with (see header).
        if (has_prefetch && opt.check_residency)
            checkResidency(k, cfg, *ia, em);
        if (has_prefetch && opt.check_prefetch)
            checkPrefetchSanity(k, em);
    } else if (has_prefetch && opt.check_prefetch) {
        for (const BasicBlock &bb : k.blocks) {
            for (size_t i = 0; i < bb.instrs.size(); i++) {
                if (bb.instrs[i].op == Opcode::PREFETCH) {
                    em.emit(VerifyCheck::PREFETCH, bb.id,
                            static_cast<int>(i),
                            "PREFETCH in a kernel without interval "
                            "annotations");
                }
            }
        }
    }
    return out;
}

} // namespace

VerifyResult
verifyKernel(const Kernel &kernel, const VerifyOptions &opt)
{
    return verifyImpl(kernel, nullptr, 0, opt);
}

VerifyResult
verifyAnalysis(const IntervalAnalysis &analysis, int max_regs,
               const VerifyOptions &opt)
{
    return verifyImpl(analysis.kernel, &analysis, max_regs, opt);
}

} // namespace ltrf
