/**
 * @file
 * Dataflow liveness analysis and dead-operand-bit annotation.
 *
 * LTRF+ (paper section 3.2) requires each read operand to carry a
 * "dead operand bit" indicating that the register will not be read
 * again after the instruction; the bit is computed conservatively at
 * compile time by static liveness analysis. The same analysis yields
 * per-block live-in sets used by tests and by the LTRF+ runtime model
 * to bound live-register write-back volume.
 */

#ifndef LTRF_COMPILER_LIVENESS_HH
#define LTRF_COMPILER_LIVENESS_HH

#include <vector>

#include "common/bitvec.hh"
#include "isa/kernel.hh"

namespace ltrf
{

/** Per-block liveness sets. */
struct LivenessInfo
{
    std::vector<RegBitVec> use;      ///< upward-exposed reads per block
    std::vector<RegBitVec> def;      ///< definitions per block
    std::vector<RegBitVec> live_in;  ///< live at block entry
    std::vector<RegBitVec> live_out; ///< live at block exit
    int iterations = 0;              ///< dataflow rounds to converge
};

/** Compute liveness sets for @p kernel. */
LivenessInfo computeLiveness(const Kernel &kernel);

/**
 * Fill in Instruction::src_dead for every instruction of @p kernel:
 * src_dead[i] is set when source i's register is not live after the
 * instruction. Conservative across control flow (uses live_out).
 *
 * @return the number of operands marked dead.
 */
int annotateDeadOperands(Kernel &kernel);

/**
 * Upper bound on the number of registers ever simultaneously live
 * (max over blocks/instructions of the live set size); used to
 * sanity-check workload register demand.
 */
int maxLiveRegs(const Kernel &kernel);

} // namespace ltrf

#endif // LTRF_COMPILER_LIVENESS_HH
