/**
 * @file
 * Register-interval formation (paper Algorithms 1 and 2) and the
 * strand-based variant used by the SHRF / LTRF(strand) baselines
 * (section 6.6).
 *
 * A register-interval is a CFG subgraph with (1) a single control
 * flow entry point and (2) a register working set of at most N
 * registers, where N is the size of one warp's partition in the
 * register file cache. Pass 1 grows intervals block by block,
 * splitting any basic block whose own traversal overflows N. Pass 2
 * merges intervals when one is reachable only from the other and the
 * merged working set still fits; it repeats until no reduction is
 * possible, which is what lets whole loop nests collapse into a
 * single interval (paper Figure 6).
 *
 * Strands [20] differ in two ways: formation additionally terminates
 * at long/variable-latency operations (global memory accesses) and at
 * backward branches, and no merging pass runs. Both are expressed
 * here through FormationOptions.
 */

#ifndef LTRF_COMPILER_REGISTER_INTERVAL_HH
#define LTRF_COMPILER_REGISTER_INTERVAL_HH

#include <vector>

#include "common/bitvec.hh"
#include "isa/kernel.hh"

namespace ltrf
{

/** Knobs selecting between register-intervals and strands. */
struct FormationOptions
{
    /** Max registers per interval (cache partition size, Table 3: 16). */
    int max_regs = 16;
    /** Terminate regions after global memory operations (strands). */
    bool split_at_long_latency = false;
    /** Run the merging pass (Algorithm 2); off for strands. */
    bool enable_pass2 = true;
};

/** One formed register-interval (or strand). */
struct RegisterInterval
{
    IntervalId id = UNKNOWN_INTERVAL;
    /** The single control-flow entry block. */
    BlockId header = INVALID_BLOCK;
    /** Member blocks (ids in the transformed kernel). */
    std::vector<BlockId> blocks;
    /** Register working set; size() <= max_regs. */
    RegBitVec working_set;
};

/**
 * Formation result. Because pass 1 can split basic blocks (paper
 * Algorithm 1 lines 30-37), the result carries its own transformed
 * copy of the kernel; block ids in the intervals refer to it.
 */
struct IntervalAnalysis
{
    Kernel kernel;
    std::vector<RegisterInterval> intervals;
    /** block id -> interval id (every block is assigned). */
    std::vector<IntervalId> block_interval;
    /** Number of Algorithm 2 rounds that achieved a reduction. */
    int pass2_rounds = 0;
    /** Interval count after pass 1, before any merging. */
    int intervals_after_pass1 = 0;

    const RegisterInterval &
    intervalOf(BlockId b) const
    {
        return intervals[block_interval[b]];
    }

    /**
     * Check the two register-interval invariants on the result:
     * every working set fits in max_regs, and no edge from outside an
     * interval targets a non-header member. Panics on violation.
     */
    void validate(int max_regs) const;
};

/** Run pass 1 (and pass 2 when enabled) on a copy of @p kernel. */
IntervalAnalysis formRegisterIntervals(const Kernel &kernel,
                                       const FormationOptions &opt);

/** Strand formation: split at long-latency ops, no merging pass. */
IntervalAnalysis formStrands(const Kernel &kernel, int max_regs);

} // namespace ltrf

#endif // LTRF_COMPILER_REGISTER_INTERVAL_HH
