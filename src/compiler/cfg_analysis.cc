#include "compiler/cfg_analysis.hh"

#include <algorithm>

#include "common/log.hh"

namespace ltrf
{

bool
CfgInfo::dominates(BlockId a, BlockId b) const
{
    // Dominance is only defined between reachable blocks; this also
    // rejects INVALID_BLOCK and out-of-range ids (whose idom slots do
    // not exist) instead of indexing idom[] out of bounds.
    if (!reachable(a) || !reachable(b))
        return false;

    // Walk the dominator tree upward from b.
    BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        BlockId up = idom[cur];
        if (up == cur || up == INVALID_BLOCK)
            return false;
        cur = up;
    }
}

namespace
{

/** Depth-first postorder over reachable blocks, iterative. */
void
postorder(const Kernel &k, std::vector<BlockId> &order)
{
    std::vector<char> visited(k.numBlocks(), 0);
    // Stack holds (block, next successor index to try).
    std::vector<std::pair<BlockId, size_t>> stack;
    stack.emplace_back(k.entry(), 0);
    visited[k.entry()] = 1;
    while (!stack.empty()) {
        auto &[b, si] = stack.back();
        const auto &succs = k.block(b).succs;
        if (si < succs.size()) {
            BlockId s = succs[si++];
            if (!visited[s]) {
                visited[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            order.push_back(b);
            stack.pop_back();
        }
    }
}

} // namespace

CfgInfo
analyzeCfg(const Kernel &kernel)
{
    const int n = kernel.numBlocks();
    CfgInfo info;
    info.rpo_index.assign(n, -1);
    info.idom.assign(n, INVALID_BLOCK);

    std::vector<BlockId> post;
    post.reserve(n);
    postorder(kernel, post);

    info.rpo.assign(post.rbegin(), post.rend());
    for (size_t i = 0; i < info.rpo.size(); i++)
        info.rpo_index[info.rpo[i]] = static_cast<int>(i);

    // Cooper-Harvey-Kennedy iterative dominators.
    const BlockId entry = kernel.entry();
    info.idom[entry] = entry;
    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (info.rpo_index[a] > info.rpo_index[b])
                a = info.idom[a];
            while (info.rpo_index[b] > info.rpo_index[a])
                b = info.idom[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : info.rpo) {
            if (b == entry)
                continue;
            BlockId new_idom = INVALID_BLOCK;
            for (BlockId p : kernel.block(b).preds) {
                if (!info.reachable(p) || info.idom[p] == INVALID_BLOCK)
                    continue;
                new_idom = (new_idom == INVALID_BLOCK)
                                   ? p
                                   : intersect(new_idom, p);
            }
            if (new_idom != INVALID_BLOCK && info.idom[b] != new_idom) {
                info.idom[b] = new_idom;
                changed = true;
            }
        }
    }

    // Back edges: tail -> head where head dominates tail. Retreating
    // edges that are not back edges make the CFG irreducible.
    for (BlockId b : info.rpo) {
        for (BlockId s : kernel.block(b).succs) {
            if (info.rpo_index[s] <= info.rpo_index[b]) {
                if (info.dominates(s, b))
                    info.back_edges.emplace_back(b, s);
                else
                    info.reducible = false;
            }
        }
    }

    // Natural loop per back edge: all blocks that can reach the tail
    // without passing through the header.
    for (auto [tail, head] : info.back_edges) {
        LoopInfo loop;
        loop.header = head;
        loop.latch = tail;
        std::vector<char> in_loop(n, 0);
        in_loop[head] = 1;
        std::vector<BlockId> work;
        if (!in_loop[tail]) {
            in_loop[tail] = 1;
            work.push_back(tail);
        }
        while (!work.empty()) {
            BlockId b = work.back();
            work.pop_back();
            for (BlockId p : kernel.block(b).preds) {
                if (!in_loop[p] && info.reachable(p)) {
                    in_loop[p] = 1;
                    work.push_back(p);
                }
            }
        }
        for (BlockId b = 0; b < n; b++)
            if (in_loop[b])
                loop.body.push_back(b);
        info.loops.push_back(std::move(loop));
    }

    // Sort loops by body size so inner loops come first.
    std::sort(info.loops.begin(), info.loops.end(),
              [](const LoopInfo &a, const LoopInfo &b) {
                  return a.body.size() < b.body.size();
              });

    return info;
}

} // namespace ltrf
