#include "compiler/prefetch_insert.hh"

#include "common/log.hh"

namespace ltrf
{

PrefetchCodeSize
insertPrefetchOps(IntervalAnalysis &analysis)
{
    PrefetchCodeSize out;
    out.base_bytes = static_cast<std::uint64_t>(
            analysis.kernel.staticInstrCount()) * INSTR_BYTES;

    for (const auto &iv : analysis.intervals) {
        BasicBlock &header = analysis.kernel.block(iv.header);
        ltrf_assert(header.instrs.empty() ||
                    header.instrs.front().op != Opcode::PREFETCH,
                    "interval %d header %d already has a PREFETCH", iv.id,
                    iv.header);
        header.instrs.insert(header.instrs.begin(),
                             Instruction::prefetch(iv.working_set));
        out.num_prefetch_ops++;
    }

    std::uint64_t vec_bytes = static_cast<std::uint64_t>(
            out.num_prefetch_ops) * PREFETCH_VECTOR_BYTES;
    out.bitvec_only_bytes = out.base_bytes + vec_bytes;
    out.with_instr_bytes = out.base_bytes + vec_bytes +
            static_cast<std::uint64_t>(out.num_prefetch_ops) * INSTR_BYTES;

    analysis.kernel.validate();
    return out;
}

} // namespace ltrf
