#include "compiler/dump.hh"

#include <sstream>

#include "compiler/register_interval.hh"

namespace ltrf
{

namespace
{

/** Pastel fill colors cycled per interval in the dot output. */
const char *const INTERVAL_COLORS[] = {
        "#cce5ff", "#d4edda", "#fff3cd", "#f8d7da",
        "#e2d9f3", "#d1ecf1", "#fde2c8", "#e9ecef",
};

} // namespace

void
dumpKernel(std::ostream &os, const Kernel &kernel)
{
    os << ".kernel " << kernel.name << "  ; " << kernel.numBlocks()
       << " blocks, " << kernel.num_regs << " regs (demand "
       << kernel.reg_demand << ")\n";
    for (const auto &bb : kernel.blocks) {
        os << "B" << bb.id << ":";
        if (bb.branch.kind == BranchProfile::Kind::LOOP) {
            os << "  ; loop latch, trip " << bb.branch.trip_count;
            if (bb.branch.trip_jitter)
                os << " +-" << bb.branch.trip_jitter;
        } else if (bb.branch.kind == BranchProfile::Kind::COND) {
            os << "  ; cond, p(taken)=" << bb.branch.taken_prob;
        }
        os << "\n";
        for (const auto &in : bb.instrs)
            os << "    " << in.toString() << "\n";
        if (!bb.succs.empty()) {
            os << "    -> ";
            for (size_t i = 0; i < bb.succs.size(); i++)
                os << (i ? ", " : "") << "B" << bb.succs[i];
            os << "\n";
        }
    }
}

std::string
kernelToString(const Kernel &kernel)
{
    std::ostringstream os;
    dumpKernel(os, kernel);
    return os.str();
}

void
dumpCfgDot(std::ostream &os, const Kernel &kernel,
           const IntervalAnalysis *analysis)
{
    os << "digraph \"" << kernel.name << "\" {\n";
    os << "  node [shape=box, fontname=\"monospace\"];\n";

    auto emit_node = [&](const BasicBlock &bb, const char *fill) {
        os << "  B" << bb.id << " [label=\"B" << bb.id << "\\n"
           << bb.realInstrCount() << " instrs\"";
        if (fill)
            os << ", style=filled, fillcolor=\"" << fill << "\"";
        os << "];\n";
    };

    if (analysis) {
        for (const auto &iv : analysis->intervals) {
            const char *fill = INTERVAL_COLORS[
                    iv.id % (sizeof(INTERVAL_COLORS) /
                             sizeof(INTERVAL_COLORS[0]))];
            os << "  subgraph cluster_" << iv.id << " {\n";
            os << "    label=\"interval " << iv.id << " ws="
               << iv.working_set.count() << "\";\n";
            for (BlockId b : iv.blocks) {
                os << "  ";
                emit_node(kernel.block(b), fill);
            }
            os << "  }\n";
        }
    } else {
        for (const auto &bb : kernel.blocks)
            emit_node(bb, nullptr);
    }

    for (const auto &bb : kernel.blocks) {
        for (size_t i = 0; i < bb.succs.size(); i++) {
            os << "  B" << bb.id << " -> B" << bb.succs[i];
            if (bb.succs.size() == 2) {
                os << " [label=\""
                   << (i == 0 ? "taken" : "fall") << "\"]";
            }
            os << ";\n";
        }
    }
    os << "}\n";
}

} // namespace ltrf
