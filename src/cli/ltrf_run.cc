/**
 * @file
 * `ltrf_run` — the experiment-sweep CLI driver.
 *
 * Exposes the harness SweepSpec on the command line so new
 * evaluation scenarios need a flag combination, not a new .cc main:
 *
 *   ltrf_run --workloads bfs,btree --designs BL,LTRF --rf-config 6 \
 *            --jobs 8 --json out.json
 *
 * Selector flags take comma-separated lists; --workloads also takes
 * the selectors "all", "sensitive", and "insensitive", and
 * --designs takes "all". Results print as a normalized-IPC table
 * per register file configuration and can be dumped as JSON ("-"
 * for stdout). JSON output is byte-identical for any --jobs value.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/log.hh"
#include "common/parse_num.hh"
#include "compiler/verify.hh"
#include "core/compile.hh"
#include "harness/runner.hh"
#include "obs/stats_json.hh"
#include "obs/trace_sink.hh"
#include "tech/rf_config.hh"
#include "workloads/workload.hh"

using namespace ltrf;
using namespace ltrf::harness;

namespace
{

constexpr const char *USAGE = R"(usage: ltrf_run [options]

Sweep selection:
  --workloads LIST   all | sensitive | insensitive | name,name,...
                     (default: all; see --list)
  --designs LIST     all | comma-separated register file designs:
                     BL, RFC, SHRF, LTRF-strand, LTRF, LTRF+, Ideal
                     (default: BL,RFC,LTRF,LTRF+,Ideal)
  --rf-config LIST   Table 2 configuration ids 1-7; 0 keeps the
                     baseline register file (default: 6)
  --latency-mult L   optional comma-separated main-RF latency
                     multipliers swept on top of each rf-config
  --sms N            SMs to simulate (default: 4)
  --active-warps N   active-warp pool per SM (default: Table 3)
  --seed S           workload seed (default: 2018)

Execution:
  --jobs N           worker threads; 0 = hardware concurrency
                     (default: 0)
  --no-normalize     skip the baseline runs and report raw IPC

Verification:
  --verify-only      compile each (workload, design) combination and
                     run the static kernel verifier instead of
                     simulating; prints a per-kernel PASS/FAIL table
                     plus diagnostics and exits 1 if any check fails
  --verify-skip LIST comma-separated check ids to skip: cfg, def-use,
                     interval, residency, dead-bit, capacity, prefetch

Output:
  --out PATH         write the ResultSet to PATH ("-" for stdout)
  --format F         json | csv (default: json)
  --json PATH        shorthand for --out PATH --format json
  --quiet            suppress the result table
  --list             list workloads and designs, then exit
  --help             show this message

Observability (separate files; the --out report is unaffected):
  --stats PATH       collect the per-cause issue-slot stall
                     attribution and dump the hierarchical stat tree
                     (per SM and aggregate) as JSON to PATH
  --trace PATH       record per-warp timeline spans (prefetches,
                     issues, stalls with cause; 1 cycle = 1 us) as
                     Chrome trace-event JSON to PATH
)";

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "ltrf_run: %s\n\n%s", msg.c_str(), USAGE);
    std::exit(2);
}

void
listTargets()
{
    std::printf("workloads (S = register-sensitive):\n");
    for (const Workload &w : WorkloadSuite::all())
        std::printf("  %-16s [%c]\n", w.name.c_str(),
                    w.register_sensitive ? 'S' : 'I');
    std::printf("\ndesigns:\n");
    for (RfDesign d : resolveDesigns("all"))
        std::printf("  %s\n", rfDesignName(d));
    std::printf("\nregister file configurations (Table 2):\n");
    for (const RfConfig &rc : rfConfigTable())
        std::printf("  #%d  %-9s %4.1fx capacity  %4.1fx latency\n",
                    rc.id, cellTechName(rc.tech), rc.capacity,
                    rc.latency);
}

struct Options
{
    SweepSpec spec;
    int jobs = 0;
    bool normalize = true;
    bool quiet = false;
    std::string out_path;
    OutputFormat format = OutputFormat::JSON;
    std::string stats_path;
    std::string trace_path;
    bool verify_only = false;
    VerifyOptions verify_opts;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    std::string workloads = "all";
    std::string designs = "BL,RFC,LTRF,LTRF+,Ideal";
    std::string rf_configs = "6";
    std::string latency_mults;

    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(argv[i]) + " needs a value");
        return argv[++i];
    };
    // Checked whole-string parses (common/parse_num): out-of-range
    // values are usage errors, never silent wraps.
    auto intValue = [&](int &i) {
        std::string v = value(i);
        int n = 0;
        if (!parseInt(v, n))
            usageError("bad integer \"" + v + "\"");
        return n;
    };

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--workloads") {
            workloads = value(i);
        } else if (a == "--designs") {
            designs = value(i);
        } else if (a == "--rf-config") {
            rf_configs = value(i);
        } else if (a == "--latency-mult") {
            latency_mults = value(i);
        } else if (a == "--sms") {
            opt.spec.num_sms = intValue(i);
        } else if (a == "--active-warps") {
            opt.spec.num_active_warps = intValue(i);
        } else if (a == "--seed") {
            std::string v = value(i);
            if (!parseUint64(v, opt.spec.seed))
                usageError("bad seed \"" + v + "\"");
        } else if (a == "--jobs") {
            opt.jobs = intValue(i);
            if (opt.jobs < 0)
                usageError("--jobs must be >= 0 (0 = hardware "
                           "concurrency)");
        } else if (a == "--no-normalize") {
            opt.normalize = false;
        } else if (a == "--out") {
            opt.out_path = value(i);
        } else if (a == "--format") {
            std::string v = value(i);
            if (!parseOutputFormat(v, opt.format))
                usageError("unknown format \"" + v +
                           "\" (expected json or csv)");
        } else if (a == "--json") {
            opt.out_path = value(i);
            opt.format = OutputFormat::JSON;
        } else if (a == "--verify-only") {
            opt.verify_only = true;
        } else if (a == "--verify-skip") {
            for (const std::string &s : splitList(value(i))) {
                VerifyCheck c;
                if (!parseVerifyCheck(s, c))
                    usageError("unknown verifier check \"" + s +
                               "\" (expected cfg, def-use, interval, "
                               "residency, dead-bit, capacity, or "
                               "prefetch)");
                opt.verify_opts.disable(c);
            }
        } else if (a == "--stats") {
            opt.stats_path = value(i);
        } else if (a == "--trace") {
            opt.trace_path = value(i);
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (a == "--list") {
            listTargets();
            std::exit(0);
        } else if (a == "--help" || a == "-h") {
            std::fputs(USAGE, stdout);
            std::exit(0);
        } else {
            usageError("unknown option \"" + a + "\"");
        }
    }

    opt.spec.workloads = resolveWorkloads(workloads);
    opt.spec.designs = resolveDesigns(designs);
    opt.spec.rf_cfg_ids.clear();
    for (const std::string &s : splitList(rf_configs)) {
        int id = 0;
        if (!parseInt(s, id))
            usageError("bad rf-config id \"" + s + "\"");
        opt.spec.rf_cfg_ids.push_back(id);
    }
    for (const std::string &s : splitList(latency_mults)) {
        double m = 0.0;
        if (!parseDouble(s, m) || m <= 0.0)
            usageError("bad latency multiplier \"" + s + "\"");
        opt.spec.latency_mults.push_back(m);
    }
    return opt;
}

/**
 * `--verify-only`: statically compile and verify every distinct
 * (workload, design, regs_per_interval) combination in the sweep —
 * no traces, no simulation. @return the process exit code: 0 when
 * every kernel verifies clean, 1 otherwise.
 */
int
runVerifyOnly(const Options &opt, const std::vector<SweepCell> &cells)
{
    struct Row
    {
        std::string workload;
        RfDesign design;
        VerifyResult res;
    };
    std::vector<Row> rows;
    std::set<std::tuple<std::string, int, int>> seen;
    for (const SweepCell &cell : cells) {
        // rf-config / latency axes do not change compilation; dedupe
        // to what the compiler actually sees.
        if (!seen.insert({cell.workload,
                          static_cast<int>(cell.config.design),
                          cell.config.regs_per_interval})
                     .second) {
            continue;
        }
        const Workload &w = WorkloadSuite::byName(cell.workload);
        CompiledWorkload cw = compileWorkloadStatic(w.kernel, cell.config);
        rows.push_back({cell.workload, cell.config.design,
                        verifyAnalysis(cw.analysis,
                                       cell.config.regs_per_interval,
                                       opt.verify_opts)});
    }

    int failed = 0;
    std::printf("%-16s %-12s %s\n", "workload", "design", "verdict");
    for (const Row &r : rows) {
        bool ok = r.res.clean();
        if (!ok)
            failed++;
        std::printf("%-16s %-12s %s\n", r.workload.c_str(),
                    rfDesignName(r.design), ok ? "PASS" : "FAIL");
        for (const VerifyDiag &d : r.res.diags)
            std::printf("    %s\n", d.toString().c_str());
        if (r.res.dropped > 0)
            std::printf("    ... and %d further diagnostics\n",
                        r.res.dropped);
    }
    std::printf("\n%zu/%zu kernel compilations verified clean\n",
                rows.size() - failed, rows.size());
    return failed > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::vector<SweepCell> cells = expandSweep(opt.spec);

    if (opt.verify_only)
        return runVerifyOnly(opt, cells);

    // Observability rides on the cells' SimConfigs; the golden
    // ResultSet report is untouched either way.
    std::unique_ptr<obs::TraceSink> sink;
    if (!opt.trace_path.empty())
        sink = std::make_unique<obs::TraceSink>();
    if (sink || !opt.stats_path.empty()) {
        for (SweepCell &c : cells) {
            c.config.collect_stall_stats = !opt.stats_path.empty();
            c.config.trace = sink.get();
            // Disjoint pid ranges per cell: SM s of cell i shows up
            // as process i * num_sms + s.
            c.config.trace_pid_base = c.index * c.config.num_sms;
        }
    }

    ExperimentRunner runner(opt.jobs);
    BaselineCache baselines(baselineConfigFor(opt.spec), opt.spec.seed);
    ResultSet rs =
            runner.run(cells, opt.normalize ? &baselines : nullptr);

    if (!opt.quiet) {
        std::vector<double> mults = opt.spec.latency_mults;
        if (mults.empty())
            mults.push_back(0.0);
        for (int id : opt.spec.rf_cfg_ids) {
            for (double m : mults) {
                if (id != 0) {
                    const RfConfig &rc = rfConfig(id);
                    std::printf("rf-config #%d (%s, %.1fx capacity, "
                                "%.1fx latency)",
                                id, cellTechName(rc.tech), rc.capacity,
                                rc.latency);
                } else {
                    std::printf("baseline register file");
                }
                if (m > 0.0)
                    std::printf(", latency x%.2f", m);
                std::printf(" — %s IPC, %zu workloads, %d jobs\n",
                            opt.normalize ? "normalized" : "raw",
                            opt.spec.workloads.size(), runner.jobs());
                rs.printTable(stdout, opt.spec.designs, id, m);
                std::printf("\n");
            }
        }
    }

    if (!opt.out_path.empty())
        rs.writeFile(opt.out_path, opt.format);

    if (!opt.stats_path.empty()) {
        obs::HarnessMetrics hm;
        hm.jobs = runner.jobs();
        hm.cells = cells.size();
        hm.queue_high_water = runner.queueHighWater();
        hm.in_flight_high_water = runner.inFlightHighWater();
        writeTextFile(opt.stats_path,
                      obs::runStatsToJson(rs, hm).dump(2) + "\n");
    }
    if (sink)
        sink->write(opt.trace_path);
    return 0;
}
