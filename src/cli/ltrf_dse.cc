/**
 * @file
 * `ltrf_dse` — the design-space exploration CLI.
 *
 * Exposes the parametric register file space (tech x banks x bank
 * size x network x cache x prefetch policy x active warps), a search
 * strategy with a point budget, and the IPC/energy/area Pareto
 * frontier:
 *
 *   ltrf_dse --strategy random --budget 200 --seed 7 --jobs 8 \
 *            --workloads sensitive --out frontier.json
 *
 * Axis flags take comma-separated lists and restrict the searched
 * space; restricting to the Table 2 axes and running `--strategy
 * grid` reproduces the paper's seven design points bit-identically
 * (they are anchor points of the parametric model). Output is
 * deterministic for a given seed regardless of --jobs.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/parse_num.hh"
#include "common/strutil.hh"
#include "dse/explorer.hh"
#include "harness/sweep.hh"
#include "obs/stats_json.hh"
#include "obs/trace_sink.hh"
#include "workloads/workload.hh"

using namespace ltrf;
using namespace ltrf::dse;

namespace
{

constexpr const char *USAGE = R"(usage: ltrf_dse [options]

Space bounds (comma-separated lists restrict each axis):
  --techs LIST       hp, lstp, tfet, dwm (default: all four)
  --banks LIST       bank-count multipliers, powers of two
                     (default: 1,2,4,8; 1x = 16 banks)
  --bank-sizes LIST  bank-size multipliers, powers of two
                     (default: 1,2,4,8; 1x = 16KB)
  --networks LIST    xbar, fbfly; or "auto" to pair crossbars with
                     1x banks and butterflies above (default: auto)
  --cache-kb LIST    register cache sizes in KB (default: 8,16,32)
  --policies LIST    none, rfc, shrf, strand, interval, interval+
                     (default: interval)
  --warps LIST       active warps per SM (default: 4,8,16)
  --intervals LIST   registers per interval, decoupled from the
                     cache partition; or "auto" to match each
                     point's per-warp cache partition (default:
                     auto)
  --collectors LIST  operand collectors per SM (default: 8)
  --dram-service LIST
                     DRAM data-bus cycles per 128B line at 24 SMs:
                     higher = less bandwidth (default: 1)

Search:
  --strategy S       grid | random | hill | evolve | halving
                     (default: grid)
  --budget N         max design points considered (screened points
                     count); required for random/hill, 0 = whole
                     space for grid and generations x population
                     for evolve/halving
  --shard I/N        restrict grid enumeration and all sampling to
                     the I-th of N balanced index-range stripes of
                     the space; merge shard reports by running the
                     next shard with --resume on the previous
                     shard's report (default: 0/1)
  --seed S           sampling + workload seed (default: 2018)
  --generations N    evolve: offspring generations after the initial
                     population; halving: screening rounds
                     (default: 8; 0 with --resume replays the saved
                     frontier without simulating)
  --population N     evolve population / halving per-round candidate
                     pool size (default: 16)
  --screen-workloads V
                     halving's low-fidelity screening subset: a
                     count N (the first N active workloads) or a
                     comma list of workload names (default: 2)
  --promote-frac F   halving's promotion fraction, applied at every
                     rung: ceil(F * rung pool) candidates (at least
                     one) advance to the next rung; F in (0, 1)
                     (default: 0.5)
  --rungs LIST       halving's rung schedule: per-rung workload
                     counts (each rung evaluates the first N active
                     workloads), strictly increasing, ending in
                     "all" — e.g. "2,6,all" screens pools on 2
                     workloads, promotes survivors to 6, then to
                     the full suite (default: the two-rung schedule
                     built from --screen-workloads). Excludes an
                     explicit --screen-workloads name list.
                     --screen-workloads, --promote-frac, and
                     --rungs require --strategy halving.
  --resume PATH      seed the frontier (and evolve's initial
                     population) from a saved ltrf_dse JSON report;
                     saved points are not re-simulated
  --hv-ref I,E,A     hypervolume reference point: minimum IPC,
                     maximum energy, maximum area
                     (default: 0,2,8)
  --prune / --no-prune
                     force the model-dominance pruning heuristic on
                     or off (default: on for random/hill, off
                     otherwise)

Evaluation:
  --workloads LIST   all | sensitive | insensitive | name,name,...
                     (default: all)
  --sms N            SMs to simulate (default: 4)
  --jobs N           worker threads; 0 = hardware concurrency
                     (default: 0); never changes the results
  --cache-dir DIR    persistent simulation cache: every simulated
                     (config, workload) cell is stored in DIR keyed
                     by its content (sim key + workload + SM count +
                     seed + simulator version) and reused by later
                     runs instead of re-simulating; safe to share
                     between concurrent shards; never changes the
                     results (a repeated run writes a byte-identical
                     report while simulating zero cells)

Output:
  --out PATH         write the exploration report ("-" for stdout)
  --format F         json | csv (default: json)
  --quiet            suppress the frontier table
  --list             list axis values and workloads, then exit
  --help             show this message

Observability (stderr / a separate file; --out is unaffected):
  --trace PATH       record harness pool activity (per-worker cell
                     spans, baseline fills, batch commits, rung
                     promotions; wall-clock) as Chrome trace-event
                     JSON to PATH
  --progress         rate-limited stderr heartbeat of cells landed
                     vs submitted, plus a final pool summary
                     (includes cell-store hit/miss/store counters
                     when --cache-dir is active)
  --stats PATH       write the observability stat trees (the
                     cell_store group) as JSON to PATH
)";

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "ltrf_dse: %s\n\n%s", msg.c_str(), USAGE);
    std::exit(2);
}

void
listTargets()
{
    std::printf("techs:     hp (HP SRAM), lstp (LSTP SRAM), "
                "tfet (TFET SRAM), dwm (DWM)\n");
    std::printf("networks:  xbar (Crossbar), fbfly (F. Butterfly), "
                "auto\n");
    std::printf("policies:  none (BL), rfc (RFC), shrf (SHRF), "
                "strand (LTRF strand), interval (LTRF),\n"
                "           interval+ (LTRF+)\n");
    std::printf("workloads: %s\n", WorkloadSuite::namesList().c_str());
    std::printf("axes:      ");
    bool first = true;
    for (const AxisDesc &ax : axisRegistry()) {
        std::printf("%s%s (%s)", first ? "" : ", ", ax.name,
                    ax.cli_flag);
        first = false;
    }
    std::printf("\n");
    const DesignSpace def = DesignSpace::defaults();
    std::printf("default space: %llu points\n",
                static_cast<unsigned long long>(def.size()));
}

struct Options
{
    DesignSpace space = DesignSpace::defaults();
    ExploreOptions explore;
    bool quiet = false;
    std::string out_path;
    harness::OutputFormat format = harness::OutputFormat::JSON;
    std::string trace_path;
    std::string stats_path;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;

    // Halving-only flags, remembered so a mismatch with the final
    // --strategy (which may appear anywhere on the line) is a usage
    // error instead of a silently ignored knob. --rungs and
    // --screen-workloads are likewise remembered jointly: the rung
    // schedule defines every screening subset, so combining them
    // would silently drop one (the count form leaves no trace in
    // ExploreOptions, so explore() cannot catch it).
    const char *halving_flag_seen = nullptr;
    bool saw_screen_workloads = false;
    bool saw_rungs = false;

    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(argv[i]) + " needs a value");
        return argv[++i];
    };
    // All numeric flags go through the checked common/ parsers: a
    // value outside the target range (e.g. --sms 4294967297, which
    // the old strtol + static_cast<int> silently wrapped to 1) is a
    // usage error naming the offending token, never a truncation.
    auto intValue = [&](int &i) {
        std::string v = value(i);
        int n = 0;
        if (!parseInt(v, n))
            usageError("bad integer \"" + v + "\"");
        return n;
    };
    auto intListFrom = [&](const std::string &v, const char *what) {
        std::vector<int> out;
        for (const std::string &s : harness::splitList(v)) {
            int n = 0;
            if (!parseInt(s, n))
                usageError("bad " + std::string(what) + " \"" + s +
                           "\"");
            out.push_back(n);
        }
        if (out.empty())
            usageError(std::string(what) + " list is empty");
        return out;
    };
    auto intList = [&](int &i, const char *what) {
        return intListFrom(value(i), what);
    };

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--techs") {
            opt.space.techs.clear();
            for (const std::string &s :
                 harness::splitList(value(i))) {
                CellTech t;
                if (!parseCellTech(s, t))
                    usageError("unknown tech \"" + s +
                               "\" (expected hp, lstp, tfet, dwm)");
                opt.space.techs.push_back(t);
            }
            if (opt.space.techs.empty())
                usageError("--techs list is empty");
        } else if (a == "--banks") {
            opt.space.banks = intList(i, "banks multiplier");
        } else if (a == "--bank-sizes") {
            opt.space.bank_sizes = intList(i, "bank-size multiplier");
        } else if (a == "--networks") {
            std::string v = value(i);
            opt.space.networks.clear();
            if (v != "auto") {
                for (const std::string &s : harness::splitList(v)) {
                    NetworkKind n;
                    if (!parseNetwork(s, n))
                        usageError("unknown network \"" + s +
                                   "\" (expected xbar, fbfly, auto)");
                    opt.space.networks.push_back(n);
                }
                if (opt.space.networks.empty())
                    usageError("--networks list is empty");
            }
        } else if (a == "--cache-kb") {
            opt.space.cache_kbs = intList(i, "cache size");
        } else if (a == "--policies") {
            opt.space.policies.clear();
            for (const std::string &s :
                 harness::splitList(value(i))) {
                PrefetchPolicy p;
                if (!parsePolicy(s, p))
                    usageError("unknown policy \"" + s +
                               "\" (expected none, rfc, shrf, "
                               "strand, interval, interval+)");
                opt.space.policies.push_back(p);
            }
            if (opt.space.policies.empty())
                usageError("--policies list is empty");
        } else if (a == "--warps") {
            opt.space.warps = intList(i, "warp count");
        } else if (a == "--intervals") {
            std::string v = value(i);
            opt.space.intervals.clear();
            if (v != "auto")
                opt.space.intervals =
                        intListFrom(v, "interval length");
        } else if (a == "--collectors") {
            opt.space.collectors =
                    intList(i, "operand collector count");
        } else if (a == "--dram-service") {
            opt.space.dram_service =
                    intList(i, "DRAM service-cycle scale");
        } else if (a == "--shard") {
            // Parse each side of I/N independently so the error can
            // name the token that is actually malformed (the old
            // combined strtol walk collapsed every failure into one
            // message and left idx = -1 behind on a bad index).
            std::string v = value(i);
            const std::size_t slash = v.find('/');
            if (slash == std::string::npos)
                usageError("bad --shard \"" + v +
                           "\" (expected I/N with 0 <= I < N)");
            const std::string idx_tok = v.substr(0, slash);
            const std::string cnt_tok = v.substr(slash + 1);
            int idx = 0, cnt = 0;
            if (!parseInt(idx_tok, idx) || idx < 0)
                usageError("bad --shard index \"" + idx_tok +
                           "\" (expected an integer 0 <= I < N)");
            if (!parseInt(cnt_tok, cnt) || cnt < 1)
                usageError("bad --shard count \"" + cnt_tok +
                           "\" (expected an integer N >= 1)");
            if (idx >= cnt)
                usageError("--shard index " + idx_tok +
                           " out of range (need I < " + cnt_tok +
                           ")");
            opt.explore.shard_index = idx;
            opt.explore.shard_count = cnt;
        } else if (a == "--promote-frac") {
            halving_flag_seen = "--promote-frac";
            std::string v = value(i);
            double f = 0.0;
            if (!parseDouble(v, f) || !(f > 0.0 && f < 1.0))
                usageError("--promote-frac must be a number in "
                           "(0, 1), got \"" + v + "\"");
            opt.explore.promote_frac = f;
        } else if (a == "--rungs") {
            halving_flag_seen = "--rungs";
            saw_rungs = true;
            std::string v = value(i);
            opt.explore.rungs.clear();
            for (const std::string &s : harness::splitList(v)) {
                if (lowered(s) == "all") {
                    opt.explore.rungs.push_back(0);
                    continue;
                }
                int n = 0;
                if (!parseInt(s, n) || n < 1)
                    usageError("bad rung \"" + s + "\" (expected a "
                               "workload count >= 1 or \"all\")");
                opt.explore.rungs.push_back(n);
            }
            if (opt.explore.rungs.size() < 2)
                usageError("--rungs needs at least two fidelity "
                           "levels, e.g. \"2,all\"");
        } else if (a == "--strategy") {
            std::string v = value(i);
            if (!parseStrategy(v, opt.explore.strategy))
                usageError("unknown strategy \"" + v +
                           "\" (expected grid, random, hill, "
                           "evolve, halving)");
        } else if (a == "--generations") {
            opt.explore.generations = intValue(i);
            if (opt.explore.generations < 0)
                usageError("--generations must be >= 0");
        } else if (a == "--population") {
            opt.explore.population = intValue(i);
            if (opt.explore.population < 2)
                usageError("--population must be >= 2");
        } else if (a == "--screen-workloads") {
            halving_flag_seen = "--screen-workloads";
            saw_screen_workloads = true;
            std::string v = value(i);
            int n = 0;
            opt.explore.screen_workloads.clear();
            if (parseInt(v, n)) {
                if (n < 1)
                    usageError("--screen-workloads count must be "
                               ">= 1");
                opt.explore.screen_count = n;
            } else {
                for (const std::string &w : harness::splitList(v)) {
                    if (!WorkloadSuite::find(w))
                        usageError("unknown screening workload \"" +
                                   w + "\" (valid names: " +
                                   WorkloadSuite::namesList() + ")");
                    opt.explore.screen_workloads.push_back(w);
                }
                if (opt.explore.screen_workloads.empty())
                    usageError("--screen-workloads list is empty");
            }
        } else if (a == "--resume") {
            opt.explore.resume = loadFrontierFile(value(i));
        } else if (a == "--hv-ref") {
            std::vector<std::string> parts =
                    harness::splitList(value(i));
            if (parts.size() != 3)
                usageError("--hv-ref needs three comma-separated "
                           "numbers: ipc,energy,area");
            double v3[3];
            for (int k = 0; k < 3; k++) {
                if (!parseDouble(parts[k], v3[k]))
                    usageError("bad --hv-ref number \"" + parts[k] +
                               "\"");
            }
            opt.explore.hv_ref.ipc = v3[0];
            opt.explore.hv_ref.energy = v3[1];
            opt.explore.hv_ref.area = v3[2];
        } else if (a == "--budget") {
            // The budget is a uint64 all the way through (it caps a
            // count of admitted points): a value above int range is
            // a large budget, not a parse error, and certainly not
            // the silent int wrap (--budget 4294967297 == 1) the old
            // int-typed parse produced.
            std::string v = value(i);
            if (!parseUint64(v, opt.explore.budget))
                usageError("bad --budget \"" + v +
                           "\" (expected an integer >= 0)");
        } else if (a == "--seed") {
            std::string v = value(i);
            if (!parseUint64(v, opt.explore.seed))
                usageError("bad seed \"" + v + "\"");
        } else if (a == "--prune") {
            opt.explore.prune = 1;
        } else if (a == "--no-prune") {
            opt.explore.prune = 0;
        } else if (a == "--workloads") {
            std::string v = value(i);
            // Selectors resolve like ltrf_run's; explicit names get
            // a CLI-grade error via WorkloadSuite::find().
            if (v == "all" || v == "sensitive" ||
                v == "insensitive") {
                opt.explore.workloads = harness::resolveWorkloads(v);
            } else {
                for (const std::string &n : harness::splitList(v)) {
                    if (!WorkloadSuite::find(n))
                        usageError("unknown workload \"" + n +
                                   "\" (valid names: " +
                                   WorkloadSuite::namesList() + ")");
                    opt.explore.workloads.push_back(n);
                }
                if (opt.explore.workloads.empty())
                    usageError("--workloads list is empty");
            }
        } else if (a == "--sms") {
            opt.explore.num_sms = intValue(i);
            if (opt.explore.num_sms < 1)
                usageError("--sms must be >= 1");
        } else if (a == "--jobs") {
            opt.explore.jobs = intValue(i);
            if (opt.explore.jobs < 0)
                usageError("--jobs must be >= 0 (0 = hardware "
                           "concurrency)");
        } else if (a == "--cache-dir") {
            opt.explore.cache_dir = value(i);
            if (opt.explore.cache_dir.empty())
                usageError("--cache-dir needs a directory path");
        } else if (a == "--stats") {
            opt.stats_path = value(i);
        } else if (a == "--out") {
            opt.out_path = value(i);
        } else if (a == "--format") {
            std::string v = value(i);
            if (!harness::parseOutputFormat(v, opt.format))
                usageError("unknown format \"" + v +
                           "\" (expected json or csv)");
        } else if (a == "--trace") {
            opt.trace_path = value(i);
        } else if (a == "--progress") {
            opt.explore.progress = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (a == "--list") {
            listTargets();
            std::exit(0);
        } else if (a == "--help" || a == "-h") {
            std::fputs(USAGE, stdout);
            std::exit(0);
        } else {
            usageError("unknown option \"" + a + "\"");
        }
    }
    if (halving_flag_seen &&
        opt.explore.strategy != Strategy::HALVING)
        usageError(std::string(halving_flag_seen) + " only applies "
                   "to --strategy halving (got --strategy " +
                   strategyName(opt.explore.strategy) +
                   "); the flag would be silently ignored");
    if (saw_rungs && saw_screen_workloads)
        usageError("--rungs and --screen-workloads are mutually "
                   "exclusive (the rung schedule defines every "
                   "screening subset)");
    return opt;
}

void
printFrontier(const DseResult &res)
{
    std::printf("%-28s %4s %6s %6s %8s | %7s %7s %7s\n", "design",
                "cfg", "cap", "banks", "latency", "IPC", "energy",
                "area");
    for (std::size_t i = 0; i < 28 + 4 + 6 + 6 + 8 + 3 + 7 * 3 + 6;
         i++)
        std::printf("-");
    std::printf("\n");
    for (int idx : res.frontier) {
        const PointResult &pr =
                res.evaluated[static_cast<std::size_t>(idx)];
        std::printf("%-28s %4d %5.0fx %5dx %7.2fx | %7.3f %7.3f "
                    "%7.3f\n",
                    pr.point.key().c_str(), pr.model.id,
                    pr.model.capacity, pr.point.banks_mult,
                    pr.model.latency, pr.obj.ipc, pr.obj.energy,
                    pr.obj.area);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    // The trace sink rides through ExploreOptions; the --out report
    // is byte-identical with or without it.
    std::unique_ptr<obs::TraceSink> sink;
    if (!opt.trace_path.empty()) {
        sink = std::make_unique<obs::TraceSink>();
        opt.explore.trace = sink.get();
    }

    const auto t0 = std::chrono::steady_clock::now();
    DseResult res = explore(opt.space, opt.explore);
    const double secs =
            std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

    if (!opt.quiet) {
        std::printf("%s search: %zu points evaluated (of %llu in "
                    "space), %llu pruned, %llu sim reuses, %llu "
                    "cells simulated, %.1fs\n",
                    strategyName(res.strategy), res.evaluated.size(),
                    static_cast<unsigned long long>(res.space_size),
                    static_cast<unsigned long long>(res.pruned),
                    static_cast<unsigned long long>(res.sim_reuse),
                    static_cast<unsigned long long>(res.sim_cells),
                    secs);
        if (res.screened)
            std::printf("%llu screened on {%s}\n",
                        static_cast<unsigned long long>(res.screened),
                        joined(res.screen_workloads).c_str());
        for (std::size_t k = 0; k < res.rungs.size(); k++)
            std::printf("  rung %zu (%2d workloads): %3llu in, "
                        "%3llu promoted\n",
                        k, res.rungs[k],
                        static_cast<unsigned long long>(
                                res.rung_screened[k]),
                        static_cast<unsigned long long>(
                                res.rung_promoted[k]));
        if (res.resumed)
            std::printf("%llu points resumed without "
                        "re-simulation\n",
                        static_cast<unsigned long long>(res.resumed));
        if (res.progress.size() > 1)
            for (const DseResult::GenStat &s : res.progress)
                std::printf("  gen %2d: %3llu evaluated, frontier "
                            "%2llu, hypervolume %.4f\n",
                            s.gen,
                            static_cast<unsigned long long>(
                                    s.evaluated),
                            static_cast<unsigned long long>(
                                    s.frontier_size),
                            s.hypervolume);
        std::printf("Pareto frontier: %zu points (IPC vs energy vs "
                    "area), hypervolume %.4f\n\n",
                    res.frontier.size(), res.hv);
        printFrontier(res);
    }

    if (!opt.out_path.empty())
        harness::writeTextFile(opt.out_path, res.dumpAs(opt.format));
    if (!opt.stats_path.empty()) {
        // The observability stat trees (currently the cell_store
        // group) as their own schema-versioned document — a side
        // channel like --trace, so --out stays byte-identical with
        // or without it.
        harness::Json doc = harness::Json::object();
        doc.set("ltrf_stats_schema", obs::STATS_SCHEMA_VERSION);
        doc.set("stats", obs::statsTreeToJson(res.stats_lines));
        harness::writeTextFile(opt.stats_path, doc.dump(2) + "\n");
    }
    if (sink)
        sink->write(opt.trace_path);
    return 0;
}
