/**
 * @file
 * `ltrf_bench` — simulator performance benchmark and regression gate.
 *
 * Two modes:
 *
 *   Measure:  ltrf_bench --suites default,quick --out BENCH_NNNN.json
 *             times the canonical hot path (the default workload
 *             suite x {BL, RFC, LTRF, LTRF+} at rf-config #6 and
 *             fixed seeds) and emits a schema-versioned JSON report
 *             with suite cells/s and per-design instr/s.
 *
 *   Compare:  ltrf_bench --compare BENCH_old.json fresh.json \
 *                        --tolerance 0.25
 *             exits nonzero when any shared suite's cells/s or any
 *             design's instr/s fell below old * (1 - tolerance) —
 *             the CI gate against gross simulator slowdowns.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/parse_num.hh"
#include "harness/bench.hh"
#include "harness/emit.hh"
#include "harness/sweep.hh"

using namespace ltrf;
using namespace ltrf::harness;

namespace
{

constexpr const char *USAGE = R"(usage: ltrf_bench [options]

Measure (default mode):
  --suites LIST      comma-separated suites: default, quick
                     (default: default)
  --quick            shorthand for --suites quick
  --reps N           timing repetitions per cell, fastest kept
                     (default: 1)
  --prior PATH       annotate each suite with its speedup relative
                     to the matching suite in PATH
  --out PATH         write the JSON report to PATH ("-" for stdout)
  --quiet            suppress the throughput summary table

Compare:
  --compare OLD NEW  compare two reports; exit 1 if NEW regressed
  --tolerance T      allowed fractional slowdown before a metric
                     counts as regressed (default: 0.25)

  --help             show this message
)";

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "ltrf_bench: %s\n\n%s", msg.c_str(), USAGE);
    std::exit(2);
}

struct Options
{
    std::vector<std::string> suites;
    int reps = 1;
    std::string prior_path;
    std::string out_path;
    bool quiet = false;

    bool compare = false;
    std::string old_path;
    std::string new_path;
    double tolerance = 0.25;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    std::string suites = "default";

    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(argv[i]) + " needs a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--suites") {
            suites = value(i);
        } else if (a == "--quick") {
            suites = "quick";
        } else if (a == "--reps") {
            std::string v = value(i);
            int n = 0;
            if (!parseInt(v, n) || n < 1)
                usageError("bad --reps \"" + v + "\"");
            opt.reps = n;
        } else if (a == "--prior") {
            opt.prior_path = value(i);
        } else if (a == "--out") {
            opt.out_path = value(i);
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (a == "--compare") {
            opt.compare = true;
            opt.old_path = value(i);
            opt.new_path = value(i);
        } else if (a == "--tolerance") {
            std::string v = value(i);
            if (!parseDouble(v, opt.tolerance) ||
                opt.tolerance < 0.0 || opt.tolerance >= 1.0)
                usageError("bad --tolerance \"" + v +
                           "\" (expected [0, 1))");
        } else if (a == "--help" || a == "-h") {
            std::fputs(USAGE, stdout);
            std::exit(0);
        } else {
            usageError("unknown option \"" + a + "\"");
        }
    }

    if (opt.compare) {
        if (!opt.prior_path.empty() || !opt.out_path.empty() ||
            opt.reps != 1)
            usageError("--compare takes no measure-mode options");
        return opt;
    }
    opt.suites = splitList(suites);
    if (opt.suites.empty())
        usageError("--suites needs at least one suite name");
    return opt;
}

BenchReport
loadReport(const std::string &path)
{
    return BenchReport::fromJson(Json::parse(readTextFile(path)));
}

int
runCompare(const Options &opt)
{
    BenchReport baseline = loadReport(opt.old_path);
    BenchReport fresh = loadReport(opt.new_path);
    std::string old_host = baseline.machine.stringOr("host", "?");
    std::string new_host = fresh.machine.stringOr("host", "?");
    if (old_host != new_host)
        std::fprintf(stderr,
                     "ltrf_bench: note: comparing across machines "
                     "(%s vs %s); wall-clock rates are only "
                     "meaningful against a generous tolerance\n",
                     old_host.c_str(), new_host.c_str());

    std::vector<BenchRegression> regs =
            compareBench(baseline, fresh, opt.tolerance);
    for (const BenchSuiteResult &old_s : baseline.suites) {
        const BenchSuiteResult *new_s = fresh.find(old_s.spec.name);
        if (!new_s)
            continue;
        std::printf("suite %-8s cells/s %10.3f -> %10.3f  (%.2fx)\n",
                    old_s.spec.name.c_str(), old_s.cells_per_s,
                    new_s->cells_per_s,
                    old_s.cells_per_s > 0.0
                            ? new_s->cells_per_s / old_s.cells_per_s
                            : 0.0);
    }
    if (regs.empty()) {
        std::printf("no regression beyond tolerance %.2f\n",
                    opt.tolerance);
        return 0;
    }
    for (const BenchRegression &r : regs) {
        const double allowed = r.old_value * (1.0 - opt.tolerance);
        const double drop =
                r.old_value > 0.0
                        ? (1.0 - r.new_value / r.old_value) * 100.0
                        : 0.0;
        std::fprintf(stderr,
                     "REGRESSION: %s %s: %.3f -> %.3f (%.2fx, "
                     "-%.1f%%; allowed floor %.3f at tolerance "
                     "%.2f)\n",
                     r.suite.c_str(), r.metric.c_str(), r.old_value,
                     r.new_value, r.ratio, drop, allowed,
                     opt.tolerance);
    }
    std::fprintf(stderr,
                 "ltrf_bench: %zu metric(s) regressed beyond "
                 "tolerance %.2f (see REGRESSION lines above)\n",
                 regs.size(), opt.tolerance);
    return 1;
}

int
runMeasure(const Options &opt)
{
    BenchReport report;
    report.machine = machineInfo();
    for (const std::string &name : opt.suites) {
        BenchSuiteSpec spec = benchSuite(name);
        spec.reps = opt.reps;
        if (!opt.quiet)
            std::printf("running suite %s: %zu workloads x %zu "
                        "designs, %d SMs, %d rep(s)...\n",
                        name.c_str(), spec.workloads.size(),
                        spec.designs.size(), spec.num_sms, spec.reps);
        BenchSuiteResult r = runBenchSuite(spec);
        if (!opt.quiet) {
            std::printf("  %d cells in %.2fs — %.3f cells/s, "
                        "%.3g instr/s, %.3g sim cycles/s\n",
                        r.cells, r.wall_s, r.cells_per_s,
                        r.instr_per_s, r.sim_cycles_per_s);
            for (const BenchDesignResult &d : r.designs)
                std::printf("    %-12s %2d cells  %8.2fs  "
                            "%.3g instr/s\n",
                            rfDesignName(d.design), d.cells, d.wall_s,
                            d.instr_per_s);
        }
        report.suites.push_back(std::move(r));
    }

    if (!opt.prior_path.empty()) {
        report.annotateSpeedup(loadReport(opt.prior_path));
        if (!opt.quiet) {
            for (const BenchSuiteResult &s : report.suites)
                if (s.speedup > 0.0)
                    std::printf("suite %-8s speedup vs prior: "
                                "%.2fx\n",
                                s.spec.name.c_str(), s.speedup);
        }
    }

    if (!opt.out_path.empty())
        writeTextFile(opt.out_path, report.toJson().dump(2) + "\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    return opt.compare ? runCompare(opt) : runMeasure(opt);
}
