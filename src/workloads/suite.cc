/**
 * @file
 * Definitions of the 14 synthetic workloads.
 *
 * Register-sensitive kernels use 64-160 registers per thread in
 * phased windows (a dozen registers busy for a few dozen
 * instructions, then the next window), which is what gives real GPU
 * kernels their small register working sets relative to their total
 * register demand — the property LTRF's register-intervals exploit.
 * Register-insensitive kernels use <= 32 registers so the baseline
 * 256KB register file already sustains 64 warps.
 *
 * Every kernel here is gated by the static verifier: the suite must
 * compile clean under every design (tests/test_verifier.cc,
 * `ltrf_run --verify-only`), and each simulate() re-verifies behind
 * SimConfig::verify_kernels. A new workload that reads a register no
 * definition reaches, or whose intervals break the fast-RF residency
 * guarantee, fails at the door rather than simulating a wrong IPC.
 */

#include <vector>

#include "common/log.hh"
#include "isa/kernel_builder.hh"
#include "workloads/workload.hh"

namespace ltrf
{

namespace
{

/**
 * Emit @p phases compute phases. Each phase works on a window of
 * @p window registers starting at @p base + phase * @p window: it
 * optionally loads inputs from @p ld_stream, runs a multiply-add
 * chain of roughly @p len instructions over the window, mixes in an
 * SFU op every @p sfu_every instructions, and optionally stores a
 * result to @p st_stream at phase end.
 */
void
emitPhases(KernelBuilder &b, int base, int phases, int window, int len,
           int mem_every, int ld_stream, int st_stream, int sfu_every = 0)
{
    ltrf_assert(window >= 4, "phase window too small");
    int global_pos = 0;   // spreads loads evenly across all phases
    for (int p = 0; p < phases; p++) {
        int lo = base + p * window;
        b.mov(lo);                       // window live-in seed
        b.mov(lo + 1);
        int emitted = 2;
        int r = lo + 2;
        while (emitted < len) {
            global_pos++;
            if (mem_every > 0 && ld_stream >= 0 &&
                global_pos % mem_every == 0) {
                b.load(r, lo, ld_stream);
            } else if (sfu_every > 0 && emitted % sfu_every == 1) {
                b.sfu(r, lo);
            } else {
                // Independent accumulators: the FFMA result feeds the
                // same register it reads, and the window rotation
                // keeps the reuse distance above the ALU latency.
                b.ffma(r, lo, lo + 1, r);
            }
            emitted++;
            r = lo + 2 + (r - lo - 1) % (window - 2);
        }
        if (st_stream >= 0)
            b.store(lo + 2, lo, st_stream);
    }
}

// ----- Register-sensitive workloads -----

Workload
sgemm()
{
    // Dense matrix multiply: tiled accumulation, shared input tiles,
    // large accumulator register block.
    KernelBuilder b("sgemm");
    MemStreamSpec a_tile;
    a_tile.working_set_lines = 256;
    a_tile.shared_across_warps = true;
    MemStreamSpec b_tile = a_tile;
    MemStreamSpec c_out;
    c_out.working_set_lines = 24;
    int sa = b.stream(a_tile), sb = b.stream(b_tile), sc = b.stream(c_out);
    MemStreamSpec b_cols;
    b_cols.working_set_lines = 4096;      // streaming B columns
    int sin = b.stream(b_cols);

    b.mov(0).mov(1);
    b.beginLoop(20);                      // K-tile loop
    b.load(2, 0, sa);
    b.load(3, 1, sb);
    b.load(4, 0, sin);
    b.load(5, 1, sin);
    emitPhases(b, 8, 9, 12, 38, 104, sin, -1);
    b.endLoop();
    // Epilogue: write the C tile.
    b.beginLoop(4);
    b.store(8, 0, sc);
    b.iadd(4, 0, 1);
    b.endLoop();
    Workload w{"sgemm", true, b.build()};
    return w;
}

Workload
backprop()
{
    // Rodinia backprop: layer evaluation, sigmoid via SFU, weight
    // updates streaming to memory.
    KernelBuilder b("backprop");
    MemStreamSpec weights;
    weights.working_set_lines = 4096;
    MemStreamSpec acts;
    acts.working_set_lines = 64;
    acts.shared_across_warps = true;
    int sw = b.stream(weights), sact = b.stream(acts);
    MemStreamSpec out_tile;
    out_tile.working_set_lines = 24;      // rewritten output tile
    int sout = b.stream(out_tile);

    b.mov(0).mov(1);
    b.beginLoop(24, 4);
    b.load(2, 0, sw);
    b.load(3, 1, sact);
    b.load(4, 0, sact);
    emitPhases(b, 8, 7, 12, 35, 96, sw, -1, 11);
    b.endLoop();
    b.store(9, 0, sout);
    Workload w{"backprop", true, b.build()};
    return w;
}

Workload
hotspot()
{
    // Rodinia hotspot: 5-point stencil over a grid, ping-pong
    // buffers, temperature update chain.
    KernelBuilder b("hotspot");
    MemStreamSpec grid;
    grid.working_set_lines = 4096;
    MemStreamSpec power;
    power.working_set_lines = 4096;
    int sg = b.stream(grid);
    b.stream(power); // declared for its footprint; never indexed
    MemStreamSpec lut;
    lut.working_set_lines = 96;           // shared hot table
    lut.shared_across_warps = true;
    int slut = b.stream(lut);
    MemStreamSpec out_tile;
    out_tile.working_set_lines = 24;      // rewritten output tile
    int sout = b.stream(out_tile);

    b.mov(0).mov(1);
    b.beginLoop(30);
    b.load(2, 0, sg);
    b.load(3, 0, slut);
    b.load(4, 0, slut);
    b.load(5, 0, slut);
    emitPhases(b, 8, 9, 12, 32, 104, sg, -1);
    b.endLoop();
    b.store(10, 0, sout);
    Workload w{"hotspot", true, b.build()};
    return w;
}

Workload
srad()
{
    // Rodinia srad: diffusion coefficients with data-dependent
    // branches and divisions (SFU).
    KernelBuilder b("srad");
    MemStreamSpec img;
    img.working_set_lines = 4096;
    int si = b.stream(img);
    MemStreamSpec lut;
    lut.working_set_lines = 96;           // shared hot table
    lut.shared_across_warps = true;
    int slut = b.stream(lut);
    MemStreamSpec out_tile;
    out_tile.working_set_lines = 24;      // rewritten output tile
    int sout = b.stream(out_tile);

    b.mov(0).mov(1);
    b.beginLoop(27, 6);
    b.load(2, 0, si);
    b.load(4, 1, slut);
    b.isetp(3, 2, 1);
    b.beginIf(0.35, 3);
    emitPhases(b, 8, 4, 11, 29, 80, si, -1, 7);
    b.beginElse();
    emitPhases(b, 52, 4, 11, 26, 80, si, -1);
    b.endIf();
    b.endLoop();
    b.store(9, 0, sout);
    Workload w{"srad", true, b.build()};
    return w;
}

Workload
lud()
{
    // Rodinia LU decomposition: triangular solve with jittered trip
    // counts (row length shrinks) and dependent FMA chains.
    KernelBuilder b("lud");
    MemStreamSpec mat;
    mat.working_set_lines = 4096;
    int sm = b.stream(mat);
    MemStreamSpec lut;
    lut.working_set_lines = 96;           // shared hot table
    lut.shared_across_warps = true;
    int slut = b.stream(lut);
    MemStreamSpec out_tile;
    out_tile.working_set_lines = 24;      // rewritten output tile
    int sout = b.stream(out_tile);

    b.mov(0).mov(1);
    b.beginLoop(21, 6);
    b.load(2, 0, sm);
    b.load(3, 1, slut);
    b.load(4, 0, slut);
    emitPhases(b, 8, 8, 13, 41, 112, sm, -1);
    b.endLoop();
    b.store(10, 0, sout);
    Workload w{"lud", true, b.build()};
    return w;
}

Workload
lavamd()
{
    // Rodinia lavaMD: particle interactions, very high register
    // demand, compute-dense inner loop over neighbour cells.
    KernelBuilder b("lavaMD");
    MemStreamSpec particles;
    particles.working_set_lines = 128;
    particles.shared_across_warps = true;
    int sp = b.stream(particles);
    MemStreamSpec neigh;
    neigh.working_set_lines = 4096;       // streaming neighbour cells
    int sn = b.stream(neigh);

    b.mov(0).mov(1);
    b.beginLoop(12);
    b.load(2, 0, sp);
    b.beginLoop(5);
    b.load(3, 0, sn);
    b.load(4, 1, sp);
    emitPhases(b, 8, 11, 13, 35, 104, sn, -1, 9);
    b.endLoop();
    b.endLoop();
    b.store(12, 0, sp);
    Workload w{"lavaMD", true, b.build()};
    return w;
}

Workload
mriq()
{
    // Parboil mri-q: Fourier reconstruction, sin/cos-dominated inner
    // loop streaming over sample points.
    KernelBuilder b("mri-q");
    MemStreamSpec samples;
    samples.working_set_lines = 4096;
    int ss = b.stream(samples);
    MemStreamSpec lut;
    lut.working_set_lines = 96;           // shared hot table
    lut.shared_across_warps = true;
    int slut = b.stream(lut);

    b.mov(0).mov(1);
    b.beginLoop(42);
    b.load(2, 0, ss);
    b.load(3, 1, slut);
    emitPhases(b, 8, 5, 12, 32, 96, ss, -1, 5);
    b.endLoop();
    b.store(9, 0, ss);
    Workload w{"mri-q", true, b.build()};
    return w;
}

Workload
nw()
{
    // Rodinia Needleman-Wunsch: wavefront dynamic programming,
    // dependent chains, branchy score selection.
    KernelBuilder b("nw");
    MemStreamSpec score;
    score.working_set_lines = 4096;
    int ss = b.stream(score);
    MemStreamSpec out_tile;
    out_tile.working_set_lines = 24;      // rewritten output tile
    int sout = b.stream(out_tile);

    b.mov(0).mov(1);
    b.beginLoop(36, 8);
    b.load(2, 0, ss);
    b.isetp(3, 2, 1);
    b.beginIf(0.5, 3);
    emitPhases(b, 8, 3, 10, 26, 72, ss, -1);
    b.beginElse();
    emitPhases(b, 40, 3, 10, 26, 72, ss, -1);
    b.endIf();
    b.endLoop();
    b.store(9, 0, sout);
    Workload w{"nw", true, b.build()};
    return w;
}

Workload
gaussian()
{
    // Rodinia gaussian elimination: row updates, streaming matrix
    // rows, medium register demand.
    KernelBuilder b("gaussian");
    MemStreamSpec mat;
    mat.working_set_lines = 4096;
    int sm = b.stream(mat);
    MemStreamSpec lut;
    lut.working_set_lines = 96;           // shared hot table
    lut.shared_across_warps = true;
    int slut = b.stream(lut);
    MemStreamSpec out_tile;
    out_tile.working_set_lines = 24;      // rewritten output tile
    int sout = b.stream(out_tile);

    b.mov(0).mov(1);
    b.beginLoop(27, 5);
    b.load(2, 0, sm);
    b.load(3, 0, slut);
    emitPhases(b, 8, 6, 11, 35, 96, sm, -1);
    b.endLoop();
    b.store(8, 0, sout);
    Workload w{"gaussian", true, b.build()};
    return w;
}

// ----- Register-insensitive workloads -----

Workload
bfs()
{
    // Rodinia BFS: pointer-chasing loads over a huge frontier,
    // branch-heavy, hardly any register pressure.
    KernelBuilder b("bfs");
    MemStreamSpec edges;
    edges.working_set_lines = 8192;   // 1MB graph, LLC-resident
    edges.stride_lines = 3;
    edges.shared_across_warps = true;
    int se = b.stream(edges);

    b.mov(0).mov(1);
    b.beginLoop(64, 12);
    b.load(2, 0, se);
    b.isetp(3, 2, 1);
    b.beginIf(0.3, 3);
    b.load(4, 2, se);
    b.iadd(5, 4, 1);
    b.store(5, 2, se);
    b.endIf();
    b.iadd(0, 0, 1);
    b.endLoop();
    Workload w{"bfs", false, b.build()};
    return w;
}

Workload
btree()
{
    // Rodinia b+tree: key search, short dependent load chains with
    // branches at every level (named register-insensitive in the
    // paper's section 6.1).
    KernelBuilder b("btree");
    MemStreamSpec nodes;
    nodes.working_set_lines = 4096;   // shared tree, LLC-resident
    nodes.stride_lines = 5;
    nodes.shared_across_warps = true;
    int sn = b.stream(nodes);

    b.mov(0).mov(1);
    b.beginLoop(48, 10);
    b.load(2, 0, sn);
    b.isetp(3, 2, 1);
    b.beginIf(0.5, 3);
    b.iadd(0, 2, 1);
    b.beginElse();
    b.iadd(0, 2, 0);
    b.endIf();
    b.load(4, 0, sn);
    b.iadd(5, 4, 1);
    b.endLoop();
    b.store(5, 0, sn);
    Workload w{"btree", false, b.build()};
    return w;
}

Workload
kmeans()
{
    // Rodinia kmeans: distance to shared centroids, small register
    // footprint, decent locality (named register-insensitive in the
    // paper's section 6.1).
    KernelBuilder b("kmeans");
    MemStreamSpec points;
    points.working_set_lines = 384;
    MemStreamSpec centroids;
    centroids.working_set_lines = 16;
    centroids.shared_across_warps = true;
    int sp = b.stream(points), sc = b.stream(centroids);

    b.mov(0).mov(1);
    b.beginLoop(48);
    b.load(2, 0, sp);
    b.beginLoop(6);
    b.load(3, 1, sc);
    b.fadd(4, 2, 3);
    b.ffma(5, 4, 4, 5);
    b.endLoop();
    b.isetp(6, 5, 1);
    b.beginIf(0.4, 6);
    b.mov(7, 5);
    b.endIf();
    b.endLoop();
    b.store(7, 0, sp);
    Workload w{"kmeans", false, b.build()};
    return w;
}

Workload
histo()
{
    // Parboil histo: streaming loads, shared-memory bin updates.
    KernelBuilder b("histo");
    MemStreamSpec input;
    input.working_set_lines = 64;     // tile of the input image
    int si = b.stream(input);

    b.mov(0).mov(1);
    b.beginLoop(160, 24);
    b.load(2, 0, si);
    b.iadd(3, 2, 1);
    b.sharedLoad(4, 3);
    b.iadd(4, 4, 1);
    b.sharedStore(4, 3);
    b.iadd(0, 0, 1);
    b.endLoop();
    Workload w{"histo", false, b.build()};
    return w;
}

Workload
streamcluster()
{
    // Rodinia streamcluster: streaming distance computation over a
    // large point set, light register use.
    KernelBuilder b("streamcluster");
    MemStreamSpec pts;
    pts.working_set_lines = 6144;
    MemStreamSpec centers;
    centers.working_set_lines = 32;
    centers.shared_across_warps = true;
    int sp = b.stream(pts), sc = b.stream(centers);

    b.mov(0).mov(1);
    b.beginLoop(56, 8);
    b.load(2, 0, sp);
    b.load(3, 1, sc);
    b.fadd(4, 2, 3);
    b.ffma(5, 4, 4, 5);
    b.ffma(6, 5, 4, 6);
    b.isetp(7, 6, 1);
    b.beginIf(0.25, 7);
    b.store(6, 0, sp);
    b.endIf();
    b.endLoop();
    Workload w{"streamcluster", false, b.build()};
    return w;
}

} // namespace

std::vector<Workload>
buildSuite()
{
    std::vector<Workload> suite;
    // Insensitive first, then sensitive (display order of Figure 9).
    suite.push_back(bfs());
    suite.push_back(btree());
    suite.push_back(histo());
    suite.push_back(kmeans());
    suite.push_back(streamcluster());
    suite.push_back(backprop());
    suite.push_back(gaussian());
    suite.push_back(hotspot());
    suite.push_back(lavamd());
    suite.push_back(lud());
    suite.push_back(mriq());
    suite.push_back(nw());
    suite.push_back(sgemm());
    suite.push_back(srad());

    ltrf_assert(suite.size() == 14,
                "the paper evaluates 14 workloads, got %zu",
                suite.size());
    for (const Workload &w : suite) {
        ltrf_assert(w.kernel.num_regs >= 1, "empty kernel '%s'",
                    w.name.c_str());
        if (w.register_sensitive) {
            ltrf_assert(w.kernel.reg_demand >= 40,
                        "register-sensitive workload '%s' only demands "
                        "%d registers", w.name.c_str(),
                        w.kernel.reg_demand);
        } else {
            ltrf_assert(w.kernel.reg_demand <= 32,
                        "register-insensitive workload '%s' demands %d "
                        "registers", w.name.c_str(), w.kernel.reg_demand);
        }
    }
    return suite;
}

} // namespace ltrf
