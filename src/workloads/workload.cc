#include "workloads/workload.hh"

#include "common/log.hh"

namespace ltrf
{

// Defined in suite.cc.
std::vector<Workload> buildSuite();

const std::vector<Workload> &
WorkloadSuite::all()
{
    static const std::vector<Workload> suite = buildSuite();
    return suite;
}

const Workload &
WorkloadSuite::byName(const std::string &name)
{
    if (const Workload *w = find(name))
        return *w;
    ltrf_fatal("unknown workload '%s' (valid names: %s)", name.c_str(),
               namesList().c_str());
}

const Workload *
WorkloadSuite::find(const std::string &name)
{
    for (const Workload &w : all())
        if (w.name == name)
            return &w;
    return nullptr;
}

std::string
WorkloadSuite::namesList()
{
    std::string out;
    for (const Workload &w : all()) {
        if (!out.empty())
            out += ", ";
        out += w.name;
    }
    return out;
}

std::vector<const Workload *>
WorkloadSuite::sensitive()
{
    std::vector<const Workload *> out;
    for (const Workload &w : all())
        if (w.register_sensitive)
            out.push_back(&w);
    return out;
}

std::vector<const Workload *>
WorkloadSuite::insensitive()
{
    std::vector<const Workload *> out;
    for (const Workload &w : all())
        if (!w.register_sensitive)
            out.push_back(&w);
    return out;
}

} // namespace ltrf
