/**
 * @file
 * The evaluation workload suite.
 *
 * The paper evaluates 14 workloads randomly drawn from CUDA SDK,
 * Rodinia, and Parboil: nine register-sensitive (register file
 * capacity limits their TLP) and five register-insensitive. We
 * cannot ship those binaries, so each is replaced by a synthetic
 * kernel with the properties the evaluation actually exercises:
 * per-thread register demand, register working-set phase behaviour
 * (which drives interval formation and cache hit rates), loop
 * structure, memory intensity and locality, and functional-unit mix
 * (see DESIGN.md, substitutions).
 */

#ifndef LTRF_WORKLOADS_WORKLOAD_HH
#define LTRF_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace ltrf
{

/** One named workload. */
struct Workload
{
    std::string name;
    /** True if register file capacity limits this workload's TLP. */
    bool register_sensitive = false;
    Kernel kernel;
};

/** Access to the 14-workload suite. */
class WorkloadSuite
{
  public:
    /** All workloads: the 5 insensitive first, then the 9 sensitive. */
    static const std::vector<Workload> &all();

    /**
     * Look a workload up by name; fatal() if absent, with a message
     * listing the valid names. Callers that can recover (CLIs that
     * want their own usage error) should use find() instead.
     */
    static const Workload &byName(const std::string &name);

    /** Look a workload up by name; nullptr if absent. */
    static const Workload *find(const std::string &name);

    /** Comma-separated list of all workload names (for messages). */
    static std::string namesList();

    static std::vector<const Workload *> sensitive();
    static std::vector<const Workload *> insensitive();
};

} // namespace ltrf

#endif // LTRF_WORKLOADS_WORKLOAD_HH
