/**
 * @file
 * Reproduces paper Table 1: the register file capacity needed to
 * reach maximum TLP when kernels are compiled with maxregcount (no
 * register budget), for Fermi (64 regs/thread cap, 128KB baseline)
 * and Maxwell (256 regs/thread cap, 256KB baseline).
 *
 * The paper derives this by recompiling 35 workloads with nvcc; here
 * the per-thread register demand is workload metadata (see DESIGN.md
 * substitutions) and the arithmetic is the same: required capacity =
 * max resident warps x 32 threads x min(demand, cap) x 4 bytes.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "tech/rf_config.hh"
#include "workloads/workload.hh"

using namespace ltrf;

int
main(int argc, char **argv)
{
    // --jobs is accepted (and validated) for interface uniformity
    // with the other harnesses; this table is pure arithmetic over
    // workload metadata, so there are no cells to parallelize.
    (void)bench::jobsFromArgs(argc, argv);

    std::printf("Table 1: register file capacity required for maximum "
                "TLP\n\n");
    for (const GpuProduct &gpu : gpuProductTable()) {
        double sum = 0.0, max_kb = 0.0;
        std::string max_name;
        std::printf("%s (baseline %zuKB, %d regs/thread cap, %d warps)\n",
                    gpu.name, gpu.rf_bytes / 1024,
                    gpu.max_regs_per_thread, gpu.max_warps);
        for (const Workload &w : WorkloadSuite::all()) {
            int regs = std::min(w.kernel.reg_demand,
                                gpu.max_regs_per_thread);
            double kb = static_cast<double>(gpu.max_warps) * WARP_WIDTH *
                        regs * 4.0 / 1024.0;
            std::printf("  %-16s demand %3d regs -> %7.0f KB (%.1fx)\n",
                        w.name.c_str(), w.kernel.reg_demand, kb,
                        kb * 1024.0 / static_cast<double>(gpu.rf_bytes));
            sum += kb;
            if (kb > max_kb) {
                max_kb = kb;
                max_name = w.name;
            }
        }
        double avg = sum / static_cast<double>(WorkloadSuite::all().size());
        std::printf("  AVERAGE required: %7.0f KB (%.1fx baseline)\n",
                    avg, avg * 1024.0 / static_cast<double>(gpu.rf_bytes));
        std::printf("  MAXIMUM required: %7.0f KB (%.1fx baseline, %s)\n\n",
                    max_kb,
                    max_kb * 1024.0 / static_cast<double>(gpu.rf_bytes),
                    max_name.c_str());
    }
    std::printf("Paper reference: Fermi avg 184KB (1.4x) max 324KB "
                "(2.5x); Maxwell avg 588KB (2.3x)\nmax 1504KB (5.9x). "
                "Our 14-workload suite reproduces the same pattern: \n"
                "average demand well above baseline capacity, maxima "
                "several times larger.\n");
    return 0;
}
