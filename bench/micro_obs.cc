/**
 * @file
 * Google-benchmark microbenchmarks for the observability layer's
 * overhead: end-to-end simulation with stall collection and tracing
 * off vs on (the off case must stay at the bare-simulator speed —
 * sinks are null-checked, not virtualized), plus the raw cost of the
 * stat primitives and trace-sink emission.
 */

#include <benchmark/benchmark.h>

#include "common/stats.hh"
#include "obs/trace_sink.hh"
#include "sim/gpu.hh"
#include "workloads/workload.hh"

using namespace ltrf;

namespace
{

SimConfig
benchConfig()
{
    SimConfig cfg;
    cfg.num_sms = 2;
    cfg.design = RfDesign::LTRF;
    cfg.rf_capacity_mult = 8;
    cfg.mrf_latency_mult = 6.3;
    cfg.num_mrf_banks = 128;
    return cfg;
}

} // namespace

/** mode 0: observability off; 1: stall stats; 2: stats + trace. */
static void
BM_SimulateObs(benchmark::State &state)
{
    const Workload &w = WorkloadSuite::byName("gaussian");
    const int mode = static_cast<int>(state.range(0));
    SimConfig cfg = benchConfig();
    cfg.collect_stall_stats = mode >= 1;

    std::uint64_t instrs = 0;
    for (auto _ : state) {
        // A fresh sink per run keeps the event buffer from hitting
        // the drop cap and silently cheapening later iterations.
        obs::TraceSink sink;
        cfg.trace = mode >= 2 ? &sink : nullptr;
        SimResult r = simulate(cfg, w.kernel, 7);
        instrs += r.instructions;
        benchmark::DoNotOptimize(r.ipc);
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
            static_cast<double>(instrs), benchmark::Counter::kIsRate);
    state.SetLabel(mode == 0 ? "obs off"
                             : mode == 1 ? "stall stats" : "stats+trace");
}
BENCHMARK(BM_SimulateObs)->Arg(0)->Arg(1)->Arg(2);

static void
BM_CounterIncrement(benchmark::State &state)
{
    Counter c;
    for (auto _ : state) {
        c++;
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
            state.iterations()));
}
BENCHMARK(BM_CounterIncrement);

static void
BM_DistributionSample(benchmark::State &state)
{
    Distribution d;
    std::uint64_t v = 0;
    for (auto _ : state) {
        d.sample(v++ & 0xffu);
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
            state.iterations()));
}
BENCHMARK(BM_DistributionSample);

static void
BM_TraceComplete(benchmark::State &state)
{
    obs::TraceSink sink(1u << 22);
    std::uint64_t ts = 0;
    for (auto _ : state)
        sink.complete("span", 0, 0, ts++, 1);
    state.SetItemsProcessed(static_cast<std::int64_t>(
            state.iterations()));
}
BENCHMARK(BM_TraceComplete);

/** The disabled-sink path: one null check, nothing else. */
static void
BM_TraceNullCheck(benchmark::State &state)
{
    obs::TraceSink *sink = nullptr;
    std::uint64_t ts = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sink);
        if (sink)
            sink->complete("span", 0, 0, ts, 1);
        ts++;
        benchmark::DoNotOptimize(ts);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
            state.iterations()));
}
BENCHMARK(BM_TraceNullCheck);
