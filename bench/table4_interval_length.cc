/**
 * @file
 * Reproduces paper Table 4: the average, minimum, and maximum
 * dynamic length of real register-intervals versus optimal ones.
 *
 * Real lengths: dynamic instructions between PREFETCH events on the
 * interval-transformed kernel. Optimal lengths: the greedy best-case
 * segmentation of the same execution trace with no control-flow
 * constraints (section 6.5). The paper finds the real average is 89%
 * of optimal — control flow barely limits interval length.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/rng.hh"
#include "compiler/prefetch_insert.hh"
#include "compiler/trace_gen.hh"
#include "workloads/workload.hh"

using namespace ltrf;

int
main()
{
    SimConfig cfg;
    const int warps_sampled = 8;

    std::printf("Table 4: register-interval dynamic lengths (N=%d)\n\n",
                cfg.regs_per_interval);
    std::printf("%-16s %21s %21s %8s\n", "", "real (avg/min/max)",
                "optimal (avg/min/max)", "ratio");

    IntervalLengthStats real_all, opt_all;
    for (const Workload &w : WorkloadSuite::all()) {
        FormationOptions opt;
        opt.max_regs = cfg.regs_per_interval;
        IntervalAnalysis ia = formRegisterIntervals(w.kernel, opt);
        insertPrefetchOps(ia);

        IntervalLengthStats real, optimal;
        for (int wi = 0; wi < warps_sampled; wi++) {
            WarpTrace t = generateTrace(ia.kernel, mixSeeds(2018, wi));
            real.merge(realIntervalLengths(ia, t));
            optimal.merge(optimalIntervalLengths(ia.kernel, t,
                                                 opt.max_regs));
        }
        std::printf("%-16s %8.1f /%4llu /%5llu %8.1f /%4llu /%5llu %7.2f\n",
                    w.name.c_str(), real.avg,
                    static_cast<unsigned long long>(real.min),
                    static_cast<unsigned long long>(real.max),
                    optimal.avg,
                    static_cast<unsigned long long>(optimal.min),
                    static_cast<unsigned long long>(optimal.max),
                    real.avg / optimal.avg);
        real_all.merge(real);
        opt_all.merge(optimal);
    }

    std::printf("%-16s %8.1f /%4llu /%5llu %8.1f /%4llu /%5llu %7.2f\n",
                "SUITE", real_all.avg,
                static_cast<unsigned long long>(real_all.min),
                static_cast<unsigned long long>(real_all.max),
                opt_all.avg,
                static_cast<unsigned long long>(opt_all.min),
                static_cast<unsigned long long>(opt_all.max),
                real_all.avg / opt_all.avg);

    std::printf("\nPaper reference: real 31.2/7/45 vs optimal "
                "34.7/9/53 — real is ~89%% of optimal.\n");
    return 0;
}
