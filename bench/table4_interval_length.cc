/**
 * @file
 * Reproduces paper Table 4: the average, minimum, and maximum
 * dynamic length of real register-intervals versus optimal ones.
 *
 * Real lengths: dynamic instructions between PREFETCH events on the
 * interval-transformed kernel. Optimal lengths: the greedy best-case
 * segmentation of the same execution trace with no control-flow
 * constraints (section 6.5). The paper finds the real average is 89%
 * of optimal — control flow barely limits interval length.
 *
 * The per-workload analyses (compiler passes + 8 sampled warp
 * traces) are independent, so they run on the ExperimentRunner task
 * pool into preassigned slots; --jobs N bounds the worker count.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "compiler/prefetch_insert.hh"
#include "compiler/trace_gen.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

using namespace ltrf;

int
main(int argc, char **argv)
{
    SimConfig cfg;
    const int warps_sampled = 8;
    const std::vector<Workload> &suite = WorkloadSuite::all();

    // One task per workload, writing its stats to its own slot.
    std::vector<IntervalLengthStats> real_by_wl(suite.size());
    std::vector<IntervalLengthStats> opt_by_wl(suite.size());
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < suite.size(); i++)
        tasks.push_back([&, i] {
            const Workload &w = suite[i];
            FormationOptions opt;
            opt.max_regs = cfg.regs_per_interval;
            IntervalAnalysis ia = formRegisterIntervals(w.kernel, opt);
            insertPrefetchOps(ia);
            for (int wi = 0; wi < warps_sampled; wi++) {
                WarpTrace t =
                        generateTrace(ia.kernel, mixSeeds(2018, wi));
                real_by_wl[i].merge(realIntervalLengths(ia, t));
                opt_by_wl[i].merge(optimalIntervalLengths(
                        ia.kernel, t, opt.max_regs));
            }
        });

    harness::ExperimentRunner runner(bench::jobsFromArgs(argc, argv));
    runner.runTasks(tasks);

    std::printf("Table 4: register-interval dynamic lengths (N=%d)\n\n",
                cfg.regs_per_interval);
    std::printf("%-16s %21s %21s %8s\n", "", "real (avg/min/max)",
                "optimal (avg/min/max)", "ratio");

    IntervalLengthStats real_all, opt_all;
    for (std::size_t i = 0; i < suite.size(); i++) {
        const IntervalLengthStats &real = real_by_wl[i];
        const IntervalLengthStats &optimal = opt_by_wl[i];
        std::printf("%-16s %8.1f /%4llu /%5llu %8.1f /%4llu /%5llu %7.2f\n",
                    suite[i].name.c_str(), real.avg,
                    static_cast<unsigned long long>(real.min),
                    static_cast<unsigned long long>(real.max),
                    optimal.avg,
                    static_cast<unsigned long long>(optimal.min),
                    static_cast<unsigned long long>(optimal.max),
                    real.avg / optimal.avg);
        real_all.merge(real);
        opt_all.merge(optimal);
    }

    std::printf("%-16s %8.1f /%4llu /%5llu %8.1f /%4llu /%5llu %7.2f\n",
                "SUITE", real_all.avg,
                static_cast<unsigned long long>(real_all.min),
                static_cast<unsigned long long>(real_all.max),
                opt_all.avg,
                static_cast<unsigned long long>(opt_all.min),
                static_cast<unsigned long long>(opt_all.max),
                real_all.avg / opt_all.avg);

    std::printf("\nPaper reference: real 31.2/7/45 vs optimal "
                "34.7/9/53 — real is ~89%% of optimal.\n");
    return 0;
}
