/**
 * @file
 * Shared helpers for the experiment harnesses: the normalization
 * baseline of the paper's evaluation, per-design configurations, and
 * table printing.
 *
 * Normalization (paper section 5, "Comparison Points"): every IPC is
 * reported relative to the baseline architecture of Table 2
 * configuration #1 *plus* the 16KB that cache-based designs spend on
 * their register file cache, added to the main register file for
 * fairness.
 */

#ifndef LTRF_BENCH_BENCH_UTIL_HH
#define LTRF_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/baseline_cache.hh"
#include "harness/result_set.hh"
#include "obs/stall.hh"
#include "sim/gpu.hh"
#include "tech/rf_config.hh"
#include "workloads/workload.hh"

namespace ltrf::bench
{

/** SM count for experiment runs (DRAM bandwidth scales with it). */
constexpr int BENCH_SMS = 4;

/** Workload seed used across all harnesses. */
constexpr std::uint64_t BENCH_SEED = 2018;

/**
 * The normalization baseline: BL on configuration #1. The paper adds
 * the 16KB cache capacity to the baseline's main register file; at
 * this model's warp-granularity occupancy that bonus perturbs the
 * resident warp count by whole warps (worth several percent), which
 * the authors' CTA-granularity occupancy would not see — so the
 * baseline keeps 256KB and the deviation is documented in
 * EXPERIMENTS.md.
 */
inline SimConfig
baselineConfig()
{
    SimConfig cfg;
    cfg.num_sms = BENCH_SMS;
    cfg.design = RfDesign::BL;
    return cfg;
}

/**
 * Configuration for @p design on Table 2 configuration @p rf_cfg_id.
 * The Ideal design keeps capacity but ignores the latency penalty.
 */
inline SimConfig
designConfig(RfDesign design, int rf_cfg_id)
{
    SimConfig cfg;
    cfg.num_sms = BENCH_SMS;
    cfg.design = design;
    applyRfConfig(cfg, rfConfig(rf_cfg_id));
    return cfg;
}

/** Run one (workload, config) pair. */
inline SimResult
run(const Workload &w, const SimConfig &cfg)
{
    return simulate(cfg, w.kernel, BENCH_SEED);
}

/**
 * The process-wide baseline cache all harnesses share. A
 * function-local static BaselineCache replaces the old bare
 * `static std::map` here: C++ guarantees the initialization is
 * thread-safe, and the cache itself serializes lookups with a mutex
 * while computing each workload's baseline exactly once — safe for
 * cells running on the ExperimentRunner's thread pool.
 */
inline harness::BaselineCache &
globalBaselineCache()
{
    static harness::BaselineCache cache(baselineConfig(), BENCH_SEED);
    return cache;
}

/** Cached baseline IPCs per workload (they never change). */
inline double
baselineIpc(const Workload &w)
{
    return globalBaselineCache().ipc(w);
}

/**
 * Parse a `--jobs N` flag for harness mains; 0 (the default) lets
 * the ExperimentRunner pick the hardware concurrency. fatal() on a
 * missing or malformed value — silently running unbounded on a
 * shared machine is worse than stopping.
 */
inline int
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--jobs") != 0)
            continue;
        if (i + 1 >= argc)
            ltrf_fatal("--jobs needs a value");
        char *end = nullptr;
        long n = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || n < 0)
            ltrf_fatal("bad --jobs value \"%s\" (expected 0 for "
                       "hardware concurrency, or a positive count)",
                       argv[i + 1]);
        return static_cast<int>(n);
    }
    return 0;
}

/**
 * The sweep skeleton every suite-wide harness shares: all 14
 * workloads at BENCH_SMS SMs with BENCH_SEED. Callers fill in
 * designs / rf_cfg_ids / latency_mults.
 */
inline harness::SweepSpec
suiteSpec()
{
    harness::SweepSpec spec;
    for (const Workload &w : WorkloadSuite::all())
        spec.workloads.push_back(w.name);
    spec.num_sms = BENCH_SMS;
    spec.seed = BENCH_SEED;
    return spec;
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    return harness::ResultSet::mean(v);
}

/** Geometric mean (the paper reports IPC means geometrically). */
inline double
geomean(const std::vector<double> &v)
{
    return harness::ResultSet::geomean(v);
}

/** Print a table header: workload column plus per-series columns. */
inline void
printHeader(const std::vector<std::string> &series)
{
    std::printf("%-16s", "workload");
    for (const auto &s : series)
        std::printf(" %12s", s.c_str());
    std::printf("\n");
    for (size_t i = 0; i < 16 + series.size() * 13; i++)
        std::printf("-");
    std::printf("\n");
}

/** Print one row of normalized values. */
inline void
printRow(const std::string &name, const std::vector<double> &vals)
{
    std::printf("%-16s", name.c_str());
    for (double v : vals)
        std::printf(" %12.3f", v);
    std::printf("\n");
}

/**
 * Print the issue-slot stall attribution for @p rf_cfg_id: one row
 * per bucket (issued, prefetch slots, each stall cause), one column
 * per design, as a percentage of all issue slots aggregated over
 * every workload in @p rs. The sweep's cells must have run with
 * SimConfig::collect_stall_stats on.
 */
inline void
printStallTable(const harness::ResultSet &rs,
                const std::vector<RfDesign> &designs, int rf_cfg_id)
{
    std::vector<obs::StallBreakdown> agg(designs.size());
    for (std::size_t di = 0; di < designs.size(); di++) {
        for (const Workload &w : WorkloadSuite::all()) {
            const SimResult &r =
                    rs.find(w.name, designs[di], rf_cfg_id).result;
            ltrf_assert(r.stall_collected,
                        "stall table needs collect_stall_stats "
                        "(cell %s/%s)", w.name.c_str(),
                        rfDesignName(designs[di]));
            agg[di] += r.stall_total;
        }
    }

    std::printf("Issue-slot attribution (%% of slots), "
                "configuration #%d\n", rf_cfg_id);
    std::vector<std::string> names;
    for (RfDesign d : designs)
        names.push_back(rfDesignName(d));
    printHeader(names);
    auto pct = [](std::uint64_t part, std::uint64_t whole) {
        return whole == 0 ? 0.0
                          : 100.0 * static_cast<double>(part) /
                                    static_cast<double>(whole);
    };
    auto row = [&](const std::string &label, auto get) {
        std::vector<double> vals;
        for (const obs::StallBreakdown &b : agg)
            vals.push_back(pct(get(b), b.issue_slots));
        printRow(label, vals);
    };
    row("issued", [](const obs::StallBreakdown &b) {
        return b.instructions;
    });
    row("prefetch slots", [](const obs::StallBreakdown &b) {
        return b.prefetch_slots;
    });
    for (int c = 0; c < obs::NUM_STALL_CAUSES; c++)
        row(obs::stallCauseName(static_cast<obs::StallCause>(c)),
            [c](const obs::StallBreakdown &b) {
                return b.stalls[c];
            });
    std::printf("\n");
}

} // namespace ltrf::bench

#endif // LTRF_BENCH_BENCH_UTIL_HH
