/**
 * @file
 * Shared helpers for the experiment harnesses: the normalization
 * baseline of the paper's evaluation, per-design configurations, and
 * table printing.
 *
 * Normalization (paper section 5, "Comparison Points"): every IPC is
 * reported relative to the baseline architecture of Table 2
 * configuration #1 *plus* the 16KB that cache-based designs spend on
 * their register file cache, added to the main register file for
 * fairness.
 */

#ifndef LTRF_BENCH_BENCH_UTIL_HH
#define LTRF_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/gpu.hh"
#include "tech/rf_config.hh"
#include "workloads/workload.hh"

namespace ltrf::bench
{

/** SM count for experiment runs (DRAM bandwidth scales with it). */
constexpr int BENCH_SMS = 4;

/** Workload seed used across all harnesses. */
constexpr std::uint64_t BENCH_SEED = 2018;

/**
 * The normalization baseline: BL on configuration #1. The paper adds
 * the 16KB cache capacity to the baseline's main register file; at
 * this model's warp-granularity occupancy that bonus perturbs the
 * resident warp count by whole warps (worth several percent), which
 * the authors' CTA-granularity occupancy would not see — so the
 * baseline keeps 256KB and the deviation is documented in
 * EXPERIMENTS.md.
 */
inline SimConfig
baselineConfig()
{
    SimConfig cfg;
    cfg.num_sms = BENCH_SMS;
    cfg.design = RfDesign::BL;
    return cfg;
}

/**
 * Configuration for @p design on Table 2 configuration @p rf_cfg_id.
 * The Ideal design keeps capacity but ignores the latency penalty.
 */
inline SimConfig
designConfig(RfDesign design, int rf_cfg_id)
{
    SimConfig cfg;
    cfg.num_sms = BENCH_SMS;
    cfg.design = design;
    applyRfConfig(cfg, rfConfig(rf_cfg_id));
    return cfg;
}

/** Run one (workload, config) pair. */
inline SimResult
run(const Workload &w, const SimConfig &cfg)
{
    return simulate(cfg, w.kernel, BENCH_SEED);
}

/** Cached baseline IPCs per workload (they never change). */
inline double
baselineIpc(const Workload &w)
{
    static std::map<std::string, double> cache;
    auto it = cache.find(w.name);
    if (it != cache.end())
        return it->second;
    double ipc = run(w, baselineConfig()).ipc;
    cache[w.name] = ipc;
    return ipc;
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Geometric mean (the paper reports IPC means geometrically). */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** Print a table header: workload column plus per-series columns. */
inline void
printHeader(const std::vector<std::string> &series)
{
    std::printf("%-16s", "workload");
    for (const auto &s : series)
        std::printf(" %12s", s.c_str());
    std::printf("\n");
    for (size_t i = 0; i < 16 + series.size() * 13; i++)
        std::printf("-");
    std::printf("\n");
}

/** Print one row of normalized values. */
inline void
printRow(const std::string &name, const std::vector<double> &vals)
{
    std::printf("%-16s", name.c_str());
    for (double v : vals)
        std::printf(" %12.3f", v);
    std::printf("\n");
}

} // namespace ltrf::bench

#endif // LTRF_BENCH_BENCH_UTIL_HH
