/**
 * @file
 * Shared helpers for the experiment harnesses: the normalization
 * baseline of the paper's evaluation, per-design configurations, and
 * table printing.
 *
 * Normalization (paper section 5, "Comparison Points"): every IPC is
 * reported relative to the baseline architecture of Table 2
 * configuration #1 *plus* the 16KB that cache-based designs spend on
 * their register file cache, added to the main register file for
 * fairness.
 */

#ifndef LTRF_BENCH_BENCH_UTIL_HH
#define LTRF_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/baseline_cache.hh"
#include "harness/result_set.hh"
#include "sim/gpu.hh"
#include "tech/rf_config.hh"
#include "workloads/workload.hh"

namespace ltrf::bench
{

/** SM count for experiment runs (DRAM bandwidth scales with it). */
constexpr int BENCH_SMS = 4;

/** Workload seed used across all harnesses. */
constexpr std::uint64_t BENCH_SEED = 2018;

/**
 * The normalization baseline: BL on configuration #1. The paper adds
 * the 16KB cache capacity to the baseline's main register file; at
 * this model's warp-granularity occupancy that bonus perturbs the
 * resident warp count by whole warps (worth several percent), which
 * the authors' CTA-granularity occupancy would not see — so the
 * baseline keeps 256KB and the deviation is documented in
 * EXPERIMENTS.md.
 */
inline SimConfig
baselineConfig()
{
    SimConfig cfg;
    cfg.num_sms = BENCH_SMS;
    cfg.design = RfDesign::BL;
    return cfg;
}

/**
 * Configuration for @p design on Table 2 configuration @p rf_cfg_id.
 * The Ideal design keeps capacity but ignores the latency penalty.
 */
inline SimConfig
designConfig(RfDesign design, int rf_cfg_id)
{
    SimConfig cfg;
    cfg.num_sms = BENCH_SMS;
    cfg.design = design;
    applyRfConfig(cfg, rfConfig(rf_cfg_id));
    return cfg;
}

/** Run one (workload, config) pair. */
inline SimResult
run(const Workload &w, const SimConfig &cfg)
{
    return simulate(cfg, w.kernel, BENCH_SEED);
}

/**
 * The process-wide baseline cache all harnesses share. A
 * function-local static BaselineCache replaces the old bare
 * `static std::map` here: C++ guarantees the initialization is
 * thread-safe, and the cache itself serializes lookups with a mutex
 * while computing each workload's baseline exactly once — safe for
 * cells running on the ExperimentRunner's thread pool.
 */
inline harness::BaselineCache &
globalBaselineCache()
{
    static harness::BaselineCache cache(baselineConfig(), BENCH_SEED);
    return cache;
}

/** Cached baseline IPCs per workload (they never change). */
inline double
baselineIpc(const Workload &w)
{
    return globalBaselineCache().ipc(w);
}

/**
 * Parse a `--jobs N` flag for harness mains; 0 (the default) lets
 * the ExperimentRunner pick the hardware concurrency. fatal() on a
 * missing or malformed value — silently running unbounded on a
 * shared machine is worse than stopping.
 */
inline int
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--jobs") != 0)
            continue;
        if (i + 1 >= argc)
            ltrf_fatal("--jobs needs a value");
        char *end = nullptr;
        long n = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || n < 0)
            ltrf_fatal("bad --jobs value \"%s\" (expected 0 for "
                       "hardware concurrency, or a positive count)",
                       argv[i + 1]);
        return static_cast<int>(n);
    }
    return 0;
}

/**
 * The sweep skeleton every suite-wide harness shares: all 14
 * workloads at BENCH_SMS SMs with BENCH_SEED. Callers fill in
 * designs / rf_cfg_ids / latency_mults.
 */
inline harness::SweepSpec
suiteSpec()
{
    harness::SweepSpec spec;
    for (const Workload &w : WorkloadSuite::all())
        spec.workloads.push_back(w.name);
    spec.num_sms = BENCH_SMS;
    spec.seed = BENCH_SEED;
    return spec;
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    return harness::ResultSet::mean(v);
}

/** Geometric mean (the paper reports IPC means geometrically). */
inline double
geomean(const std::vector<double> &v)
{
    return harness::ResultSet::geomean(v);
}

/** Print a table header: workload column plus per-series columns. */
inline void
printHeader(const std::vector<std::string> &series)
{
    std::printf("%-16s", "workload");
    for (const auto &s : series)
        std::printf(" %12s", s.c_str());
    std::printf("\n");
    for (size_t i = 0; i < 16 + series.size() * 13; i++)
        std::printf("-");
    std::printf("\n");
}

/** Print one row of normalized values. */
inline void
printRow(const std::string &name, const std::vector<double> &vals)
{
    std::printf("%-16s", name.c_str());
    for (double v : vals)
        std::printf(" %12.3f", v);
    std::printf("\n");
}

} // namespace ltrf::bench

#endif // LTRF_BENCH_BENCH_UTIL_HH
