/**
 * @file
 * Google-benchmark microbenchmarks for the 256-bit register
 * bit-vector (the data structure on LTRF's prefetch fast path).
 */

#include <benchmark/benchmark.h>

#include "common/bitvec.hh"
#include "common/rng.hh"

using namespace ltrf;

static RegBitVec
randomVec(std::uint64_t seed, int bits)
{
    Rng rng(seed);
    RegBitVec v;
    for (int i = 0; i < bits; i++)
        v.set(static_cast<int>(rng.nextBounded(256)));
    return v;
}

static void
BM_BitvecUnionCount(benchmark::State &state)
{
    RegBitVec a = randomVec(1, static_cast<int>(state.range(0)));
    RegBitVec b = randomVec(2, static_cast<int>(state.range(0)));
    for (auto _ : state) {
        int c = (a | b).count();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_BitvecUnionCount)->Arg(8)->Arg(32)->Arg(128);

static void
BM_BitvecForEach(benchmark::State &state)
{
    RegBitVec a = randomVec(3, static_cast<int>(state.range(0)));
    for (auto _ : state) {
        int sum = 0;
        a.forEach([&](RegId r) { sum += r; });
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_BitvecForEach)->Arg(8)->Arg(32)->Arg(128);

static void
BM_BitvecDifference(benchmark::State &state)
{
    RegBitVec a = randomVec(4, 32);
    RegBitVec b = randomVec(5, 32);
    for (auto _ : state) {
        RegBitVec d = a - b;
        benchmark::DoNotOptimize(d.count());
    }
}
BENCHMARK(BM_BitvecDifference);
