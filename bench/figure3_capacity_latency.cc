/**
 * @file
 * Reproduces paper Figure 3: the performance effect of an 8x register
 * file built in TFET-SRAM, with real latency (5.3x) versus an "Ideal
 * TFET-SRAM" that keeps the baseline latency. Both normalized to the
 * 256KB baseline. This is the motivation experiment: capacity helps,
 * but only if the latency is not exposed.
 *
 * All cells run on the ExperimentRunner thread pool; --jobs N bounds
 * the worker count (default: hardware concurrency).
 */

#include "bench_util.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

int
main(int argc, char **argv)
{
    harness::SweepSpec spec = suiteSpec();
    spec.designs = {RfDesign::IDEAL, RfDesign::BL};
    spec.rf_cfg_ids = {6};

    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs =
            runner.run(harness::expandSweep(spec), &globalBaselineCache());

    std::printf("Figure 3: 8x register file, ideal vs real TFET-SRAM "
                "latency (normalized IPC)\n\n");
    printHeader({"Ideal TFET", "TFET-SRAM"});

    std::vector<double> ideal_s, real_s, ideal_i, real_i;
    for (const Workload &w : WorkloadSuite::all()) {
        double ideal = rs.find(w.name, RfDesign::IDEAL, 6).normalizedIpc();
        double real = rs.find(w.name, RfDesign::BL, 6).normalizedIpc();
        printRow(w.name + (w.register_sensitive ? " [S]" : " [I]"),
                 {ideal, real});
        (w.register_sensitive ? ideal_s : ideal_i).push_back(ideal);
        (w.register_sensitive ? real_s : real_i).push_back(real);
    }
    printRow("GEOMEAN [S]", {geomean(ideal_s), geomean(real_s)});
    printRow("GEOMEAN [I]", {geomean(ideal_i), geomean(real_i)});

    std::printf("\nPaper reference: Ideal TFET improves register-"
                "sensitive workloads by 10-95%%\n(37%% avg); with real "
                "latency much of the gain is lost (section 2.2).\n");
    return 0;
}
