/**
 * @file
 * Reproduces paper Figure 9: IPC of BL, RFC, LTRF, LTRF+, and Ideal
 * with the main register file built as Table 2 configuration #6
 * (TFET, 8x capacity, 5.3x latency) and #7 (DWM, 8x capacity, 6.3x
 * latency), normalized to the baseline architecture of configuration
 * #1 with 16KB extra register file capacity.
 *
 * Run with --config to also dump the simulated system configuration
 * (paper Table 3). All (workload, design, configuration) cells run
 * on the ExperimentRunner thread pool; --jobs N bounds the worker
 * count (default: hardware concurrency).
 */

#include <cstring>

#include "bench_util.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

namespace
{

void
printTable3()
{
    SimConfig cfg;
    std::printf("Table 3: simulated system configuration\n");
    std::printf("  SMs (paper / harness)        24 / %d\n", BENCH_SMS);
    std::printf("  Warps per SM                 %d\n",
                cfg.max_warps_per_sm);
    std::printf("  Register file per SM         %zu KB (%d registers)\n",
                cfg.rf_bytes / 1024, cfg.numMrfRegs() * WARP_WIDTH);
    std::printf("  Register file cache per SM   %zu KB (%d registers)\n",
                cfg.rf_cache_bytes / 1024, cfg.numCacheRegs() * WARP_WIDTH);
    std::printf("  Active warps                 %d\n",
                cfg.num_active_warps);
    std::printf("  Registers per interval       %d\n",
                cfg.regs_per_interval);
    std::printf("  L1D / L1I / LLC              %zuKB / %zuKB / %zuMB\n",
                cfg.l1d_bytes / 1024, cfg.l1i_bytes / 1024,
                cfg.llc_bytes / (1024 * 1024));
    std::printf("  Scheduler                    two-level\n\n");
}

const std::vector<RfDesign> DESIGNS = {
        RfDesign::BL, RfDesign::RFC, RfDesign::LTRF,
        RfDesign::LTRF_PLUS, RfDesign::IDEAL};

void
printConfig(const harness::ResultSet &rs, int rf_cfg_id)
{
    std::printf("Figure 9(%s): normalized IPC, main register file = "
                "configuration #%d (%s, %.1fx capacity, %.1fx latency)\n",
                rf_cfg_id == 6 ? "a" : "b", rf_cfg_id,
                cellTechName(rfConfig(rf_cfg_id).tech),
                rfConfig(rf_cfg_id).capacity,
                rfConfig(rf_cfg_id).latency);

    std::vector<std::string> names;
    for (RfDesign d : DESIGNS)
        names.push_back(rfDesignName(d));
    printHeader(names);

    for (const Workload &w : WorkloadSuite::all()) {
        std::vector<double> row;
        for (RfDesign d : DESIGNS)
            row.push_back(rs.find(w.name, d, rf_cfg_id).normalizedIpc());
        printRow(w.name + (w.register_sensitive ? " [S]" : " [I]"), row);
    }

    std::vector<double> means;
    for (RfDesign d : DESIGNS)
        means.push_back(rs.geomeanNormalized(d, rf_cfg_id));
    printRow("GEOMEAN", means);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool stalls = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--config") == 0)
            printTable3();
        if (std::strcmp(argv[i], "--stalls") == 0)
            stalls = true;
    }

    harness::SweepSpec spec = suiteSpec();
    spec.designs = DESIGNS;
    spec.rf_cfg_ids = {6, 7};

    std::vector<harness::SweepCell> cells = harness::expandSweep(spec);
    if (stalls)
        for (harness::SweepCell &c : cells)
            c.config.collect_stall_stats = true;

    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs = runner.run(cells, &globalBaselineCache());

    printConfig(rs, 6);
    printConfig(rs, 7);

    // --stalls: where the issue slots went, per design (the latency
    // story behind the IPC table — BL drowns in scoreboard stalls at
    // high MRF latency, LTRF converts them into prefetch overlap).
    if (stalls) {
        printStallTable(rs, DESIGNS, 6);
        printStallTable(rs, DESIGNS, 7);
    }

    std::printf("Paper reference: LTRF ~= Ideal on #6 (+32%% mean IPC); "
                "LTRF/LTRF+ +28%%/+31%% on #7;\nRFC loses ~14%% when the "
                "register file is enlarged 8x with real latencies.\n");
    return 0;
}
