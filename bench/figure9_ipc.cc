/**
 * @file
 * Reproduces paper Figure 9: IPC of BL, RFC, LTRF, LTRF+, and Ideal
 * with the main register file built as Table 2 configuration #6
 * (TFET, 8x capacity, 5.3x latency) and #7 (DWM, 8x capacity, 6.3x
 * latency), normalized to the baseline architecture of configuration
 * #1 with 16KB extra register file capacity.
 *
 * Run with --config to also dump the simulated system configuration
 * (paper Table 3).
 */

#include <cstring>

#include "bench_util.hh"

using namespace ltrf;
using namespace ltrf::bench;

namespace
{

void
printTable3()
{
    SimConfig cfg;
    std::printf("Table 3: simulated system configuration\n");
    std::printf("  SMs (paper / harness)        24 / %d\n", BENCH_SMS);
    std::printf("  Warps per SM                 %d\n",
                cfg.max_warps_per_sm);
    std::printf("  Register file per SM         %zu KB (%d registers)\n",
                cfg.rf_bytes / 1024, cfg.numMrfRegs() * WARP_WIDTH);
    std::printf("  Register file cache per SM   %zu KB (%d registers)\n",
                cfg.rf_cache_bytes / 1024, cfg.numCacheRegs() * WARP_WIDTH);
    std::printf("  Active warps                 %d\n",
                cfg.num_active_warps);
    std::printf("  Registers per interval       %d\n",
                cfg.regs_per_interval);
    std::printf("  L1D / L1I / LLC              %zuKB / %zuKB / %zuMB\n",
                cfg.l1d_bytes / 1024, cfg.l1i_bytes / 1024,
                cfg.llc_bytes / (1024 * 1024));
    std::printf("  Scheduler                    two-level\n\n");
}

void
runConfig(int rf_cfg_id)
{
    const std::vector<RfDesign> designs = {
            RfDesign::BL, RfDesign::RFC, RfDesign::LTRF,
            RfDesign::LTRF_PLUS, RfDesign::IDEAL};

    std::printf("Figure 9(%s): normalized IPC, main register file = "
                "configuration #%d (%s, %.1fx capacity, %.1fx latency)\n",
                rf_cfg_id == 6 ? "a" : "b", rf_cfg_id,
                cellTechName(rfConfig(rf_cfg_id).tech),
                rfConfig(rf_cfg_id).capacity,
                rfConfig(rf_cfg_id).latency);

    std::vector<std::string> names;
    for (RfDesign d : designs)
        names.push_back(rfDesignName(d));
    printHeader(names);

    std::vector<std::vector<double>> per_design(designs.size());
    for (const Workload &w : WorkloadSuite::all()) {
        double base = baselineIpc(w);
        std::vector<double> row;
        for (size_t i = 0; i < designs.size(); i++) {
            SimConfig cfg = designConfig(designs[i], rf_cfg_id);
            double norm = run(w, cfg).ipc / base;
            row.push_back(norm);
            per_design[i].push_back(norm);
        }
        printRow(w.name + (w.register_sensitive ? " [S]" : " [I]"), row);
    }

    std::vector<double> means;
    for (auto &v : per_design)
        means.push_back(geomean(v));
    printRow("GEOMEAN", means);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; i++)
        if (std::strcmp(argv[i], "--config") == 0)
            printTable3();

    runConfig(6);
    runConfig(7);

    std::printf("Paper reference: LTRF ~= Ideal on #6 (+32%% mean IPC); "
                "LTRF/LTRF+ +28%%/+31%% on #7;\nRFC loses ~14%% when the "
                "register file is enlarged 8x with real latencies.\n");
    return 0;
}
