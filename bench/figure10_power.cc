/**
 * @file
 * Reproduces paper Figure 10: register file power of RFC, LTRF, and
 * LTRF+ with the main register file in configuration #7 (DWM),
 * normalized to the baseline architecture of configuration #1.
 *
 * Power comes from the event-based model in tech/energy_model:
 * Table 2's power scalars split into leakage and per-access energy,
 * with the simulator's measured access rates, plus cache/WCB/crossbar
 * overheads for the cached designs.
 *
 * The baseline-activity runs (the normalization anchor) and all
 * measured cells are batched into one ExperimentRunner invocation;
 * --jobs N bounds the worker count.
 */

#include "bench_util.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

int
main(int argc, char **argv)
{
    const std::vector<RfDesign> designs = {
            RfDesign::RFC, RfDesign::LTRF, RfDesign::LTRF_PLUS};

    // BL on the unmodified register file (the activity anchor) plus
    // the three cached designs on configuration #7, in one batch.
    harness::SweepSpec base_spec = suiteSpec();
    base_spec.designs = {RfDesign::BL};
    std::vector<harness::SweepCell> cells =
            harness::expandSweep(base_spec);

    harness::SweepSpec spec = suiteSpec();
    spec.designs = designs;
    spec.rf_cfg_ids = {7};
    for (harness::SweepCell c : harness::expandSweep(spec)) {
        c.index = static_cast<int>(cells.size());
        cells.push_back(std::move(c));
    }

    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs = runner.run(cells);

    std::printf("Figure 10: register file power on configuration #7, "
                "normalized to baseline\n\n");
    printHeader({"RFC", "LTRF", "LTRF+"});

    std::vector<std::vector<double>> cols(designs.size());
    for (const Workload &w : WorkloadSuite::all()) {
        // Normalization anchor: the baseline design's main-RF access
        // rate on this workload (configuration #1).
        const SimResult &base =
                rs.find(w.name, RfDesign::BL, 0).result;
        double base_rate = base.activity.main_accesses_per_cycle;
        double base_power = rfPower(rfConfig(1), base.activity,
                                    /*has_cache=*/false, base_rate);

        std::vector<double> row;
        for (size_t i = 0; i < designs.size(); i++) {
            const SimResult &r = rs.find(w.name, designs[i], 7).result;
            double p = rfPower(rfConfig(7), r.activity,
                               /*has_cache=*/true, base_rate);
            row.push_back(p / base_power);
            cols[i].push_back(p / base_power);
        }
        printRow(w.name + (w.register_sensitive ? " [S]" : " [I]"), row);
    }
    printRow("MEAN", {mean(cols[0]), mean(cols[1]), mean(cols[2])});

    std::printf("\nPaper reference: LTRF+ cuts register file power by "
                "46.1%%; RFC and LTRF by\n35.1%% and 35.4%% (LTRF's WCB "
                "and transfers offset part of its access savings).\n");
    return 0;
}
