/**
 * @file
 * Reproduces paper Figure 4: read hit rates of a 16KB hardware
 * register file cache [19] and a software-managed register file
 * cache [20], per workload. The paper measures 8-30% and uses this
 * to argue that demand caching cannot hide main register file
 * latency.
 *
 * All cells run on the ExperimentRunner thread pool; --jobs N bounds
 * the worker count (default: hardware concurrency). The metric is a
 * raw hit rate, so no baseline runs are needed.
 */

#include "bench_util.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

int
main(int argc, char **argv)
{
    harness::SweepSpec spec = suiteSpec();
    spec.designs = {RfDesign::RFC, RfDesign::SHRF};
    spec.rf_cfg_ids = {1};

    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs = runner.run(harness::expandSweep(spec));

    std::printf("Figure 4: register file cache hit rate (16KB cache, "
                "baseline latency)\n\n");
    printHeader({"HW cache", "SW cache"});

    std::vector<double> hw_all, sw_all;
    for (const Workload &w : WorkloadSuite::all()) {
        double hw = rs.find(w.name, RfDesign::RFC, 1)
                            .result.cache_hit_rate;
        double sw = rs.find(w.name, RfDesign::SHRF, 1)
                            .result.cache_hit_rate;
        printRow(w.name + (w.register_sensitive ? " [S]" : " [I]"),
                 {hw, sw});
        hw_all.push_back(hw);
        sw_all.push_back(sw);
    }
    printRow("MEAN", {mean(hw_all), mean(sw_all)});

    std::printf("\nPaper reference: hit rates between 8%% and 30%%; the "
                "software scheme does not\nsignificantly improve on the "
                "hardware cache (section 2.3).\n");
    return 0;
}
