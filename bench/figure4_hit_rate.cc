/**
 * @file
 * Reproduces paper Figure 4: read hit rates of a 16KB hardware
 * register file cache [19] and a software-managed register file
 * cache [20], per workload. The paper measures 8-30% and uses this
 * to argue that demand caching cannot hide main register file
 * latency.
 */

#include "bench_util.hh"

using namespace ltrf;
using namespace ltrf::bench;

int
main()
{
    std::printf("Figure 4: register file cache hit rate (16KB cache, "
                "baseline latency)\n\n");
    printHeader({"HW cache", "SW cache"});

    std::vector<double> hw_all, sw_all;
    for (const Workload &w : WorkloadSuite::all()) {
        SimConfig hw_cfg = designConfig(RfDesign::RFC, 1);
        SimConfig sw_cfg = designConfig(RfDesign::SHRF, 1);
        double hw = run(w, hw_cfg).cache_hit_rate;
        double sw = run(w, sw_cfg).cache_hit_rate;
        printRow(w.name + (w.register_sensitive ? " [S]" : " [I]"),
                 {hw, sw});
        hw_all.push_back(hw);
        sw_all.push_back(sw);
    }
    printRow("MEAN", {mean(hw_all), mean(sw_all)});

    std::printf("\nPaper reference: hit rates between 8%% and 30%%; the "
                "software scheme does not\nsignificantly improve on the "
                "hardware cache (section 2.3).\n");
    return 0;
}
