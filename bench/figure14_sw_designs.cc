/**
 * @file
 * Reproduces paper Figure 14: normalized IPC versus main register
 * file latency for BL, RFC, SHRF [20], LTRF with strand-based
 * prefetch placement, and LTRF with register-intervals — the
 * experiment separating LTRF's gains from prior software-managed
 * hierarchies (section 6.6).
 */

#include "bench_util.hh"

using namespace ltrf;
using namespace ltrf::bench;

int
main()
{
    const std::vector<RfDesign> designs = {
            RfDesign::BL, RfDesign::RFC, RfDesign::SHRF,
            RfDesign::LTRF_STRAND, RfDesign::LTRF};

    std::printf("Figure 14: normalized IPC vs MRF access latency\n\n");
    std::printf("%-8s", "latency");
    for (RfDesign d : designs)
        std::printf(" %14s", rfDesignName(d));
    std::printf("\n");

    for (double m = 1.0; m <= 7.001; m += 1.0) {
        std::printf("%-7.0fx", m);
        for (RfDesign d : designs) {
            SimConfig cfg;
            cfg.num_sms = BENCH_SMS;
            cfg.design = d;
            cfg.mrf_latency_mult = m;
            std::vector<double> vals;
            for (const Workload &w : WorkloadSuite::all())
                vals.push_back(run(w, cfg).ipc / baselineIpc(w));
            std::printf(" %14.3f", geomean(vals));
        }
        std::printf("\n");
    }

    std::printf("\nPaper reference: SHRF tracks RFC (~2x tolerance); "
                "LTRF(strand) reaches ~3x;\nLTRF(register-interval) "
                "~5.3x — interval-based placement is what matters.\n");
    return 0;
}
