/**
 * @file
 * Reproduces paper Figure 14: normalized IPC versus main register
 * file latency for BL, RFC, SHRF [20], LTRF with strand-based
 * prefetch placement, and LTRF with register-intervals — the
 * experiment separating LTRF's gains from prior software-managed
 * hierarchies (section 6.6).
 *
 * All 5 designs x 7 latencies x 14 workloads run as one
 * ExperimentRunner batch; --jobs N bounds the worker count.
 */

#include "bench_util.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

int
main(int argc, char **argv)
{
    const std::vector<RfDesign> designs = {
            RfDesign::BL, RfDesign::RFC, RfDesign::SHRF,
            RfDesign::LTRF_STRAND, RfDesign::LTRF};

    harness::SweepSpec spec = suiteSpec();
    spec.designs = designs;
    for (double m = 1.0; m <= 7.001; m += 1.0)
        spec.latency_mults.push_back(m);

    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs =
            runner.run(harness::expandSweep(spec), &globalBaselineCache());

    std::printf("Figure 14: normalized IPC vs MRF access latency\n\n");
    std::printf("%-8s", "latency");
    for (RfDesign d : designs)
        std::printf(" %14s", rfDesignName(d));
    std::printf("\n");

    for (double m = 1.0; m <= 7.001; m += 1.0) {
        std::printf("%-7.0fx", m);
        for (RfDesign d : designs)
            std::printf(" %14.3f", rs.geomeanNormalized(d, 0, m));
        std::printf("\n");
    }

    std::printf("\nPaper reference: SHRF tracks RFC (~2x tolerance); "
                "LTRF(strand) reaches ~3x;\nLTRF(register-interval) "
                "~5.3x — interval-based placement is what matters.\n");
    return 0;
}
