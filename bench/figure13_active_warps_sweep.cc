/**
 * @file
 * Reproduces paper Figure 13: LTRF IPC versus main register file
 * latency for 4, 8, and 16 active warps, holding the per-warp cache
 * partition constant (the paper's second way of varying the cache
 * size).
 *
 * Paper findings: going from 4 to 8 active warps buys 36.9% at the
 * slowest MRF (more warps to overlap prefetches with); beyond 8 the
 * returns vanish, so LTRF's default does not sacrifice performance.
 *
 * All 7 latencies x 3 warp counts x 14 workloads run as one
 * ExperimentRunner batch; --jobs N bounds the worker count.
 */

#include "bench_util.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

namespace
{

const std::vector<int> ACTIVE_WARPS = {4, 8, 16};

std::string
tagFor(int aw)
{
    // Built via += : `"aw" + std::to_string(aw)` trips GCC 12's
    // -Wrestrict false positive (PR105651).
    std::string tag = "aw";
    tag += std::to_string(aw);
    return tag;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::SweepSpec spec = suiteSpec();
    spec.designs = {RfDesign::LTRF};
    for (double m = 1.0; m <= 7.001; m += 1.0)
        spec.latency_mults.push_back(m);

    // One tagged copy of the latency sweep per active-warp count,
    // with the cache scaled to keep the per-warp partition constant.
    std::vector<harness::SweepCell> cells;
    for (int aw : ACTIVE_WARPS) {
        for (harness::SweepCell c : harness::expandSweep(spec)) {
            c.tag = tagFor(aw);
            c.config.num_active_warps = aw;
            c.config.rf_cache_bytes =
                    static_cast<std::size_t>(
                            c.config.regs_per_interval) *
                    aw * BYTES_PER_WARP_REG;
            c.index = static_cast<int>(cells.size());
            cells.push_back(std::move(c));
        }
    }

    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs = runner.run(cells, &globalBaselineCache());

    std::printf("Figure 13: LTRF normalized IPC vs MRF latency and "
                "active warp count\n\n");
    std::printf("%-8s %12s %12s %12s\n", "latency", "4 warps", "8 warps",
                "16 warps");

    for (double m = 1.0; m <= 7.001; m += 1.0) {
        std::printf("%-7.0fx", m);
        for (int aw : ACTIVE_WARPS) {
            std::vector<double> vals;
            for (const Workload &w : WorkloadSuite::all()) {
                for (const harness::ResultRow &row : rs.rows())
                    if (row.cell.workload == w.name &&
                        row.cell.tag == tagFor(aw) &&
                        row.cell.latency_mult == m)
                        vals.push_back(row.normalizedIpc());
            }
            std::printf(" %12.3f", geomean(vals));
        }
        std::printf("\n");
    }

    std::printf("\nPaper reference: 4->8 active warps improves the "
                "slowest-MRF point by 36.9%%;\n8->16 changes little "
                "(section 6.4).\n");
    return 0;
}
