/**
 * @file
 * Reproduces paper Figure 13: LTRF IPC versus main register file
 * latency for 4, 8, and 16 active warps, holding the per-warp cache
 * partition constant (the paper's second way of varying the cache
 * size).
 *
 * Paper findings: going from 4 to 8 active warps buys 36.9% at the
 * slowest MRF (more warps to overlap prefetches with); beyond 8 the
 * returns vanish, so LTRF's default does not sacrifice performance.
 */

#include "bench_util.hh"

using namespace ltrf;
using namespace ltrf::bench;

int
main()
{
    std::printf("Figure 13: LTRF normalized IPC vs MRF latency and "
                "active warp count\n\n");
    std::printf("%-8s %12s %12s %12s\n", "latency", "4 warps", "8 warps",
                "16 warps");

    for (double m = 1.0; m <= 7.001; m += 1.0) {
        std::printf("%-7.0fx", m);
        for (int aw : {4, 8, 16}) {
            SimConfig cfg;
            cfg.num_sms = BENCH_SMS;
            cfg.design = RfDesign::LTRF;
            cfg.mrf_latency_mult = m;
            cfg.num_active_warps = aw;
            cfg.rf_cache_bytes =
                    static_cast<std::size_t>(cfg.regs_per_interval) * aw *
                    BYTES_PER_WARP_REG;
            std::vector<double> vals;
            for (const Workload &w : WorkloadSuite::all())
                vals.push_back(run(w, cfg).ipc / baselineIpc(w));
            std::printf(" %12.3f", geomean(vals));
        }
        std::printf("\n");
    }

    std::printf("\nPaper reference: 4->8 active warps improves the "
                "slowest-MRF point by 36.9%%;\n8->16 changes little "
                "(section 6.4).\n");
    return 0;
}
