/**
 * @file
 * Reproduces paper Figure 12: LTRF IPC versus main register file
 * latency for 8, 16, and 32 registers per register-interval. The
 * register file cache is sized as 8 active warps x N registers, so
 * this is the paper's first way of varying the cache size.
 *
 * Paper findings: N=8 degrades markedly (intervals get short, so
 * PREFETCHes are frequent and hard to hide); N=32 is not necessarily
 * better than 16 (more MRF bank conflicts per prefetch).
 *
 * All 7 latencies x 3 interval sizes x 14 workloads run as one
 * ExperimentRunner batch; --jobs N bounds the worker count.
 */

#include "bench_util.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

namespace
{

const std::vector<int> INTERVAL_REGS = {8, 16, 32};

std::string
tagFor(int n)
{
    // Built via += : `"n" + std::to_string(n)` trips GCC 12's
    // -Wrestrict false positive (PR105651).
    std::string tag = "n";
    tag += std::to_string(n);
    return tag;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::SweepSpec spec = suiteSpec();
    spec.designs = {RfDesign::LTRF};
    for (double m = 1.0; m <= 7.001; m += 1.0)
        spec.latency_mults.push_back(m);

    // One tagged copy of the latency sweep per interval size, with
    // the cache sized to 8 active warps x N registers.
    std::vector<harness::SweepCell> cells;
    for (int n : INTERVAL_REGS) {
        for (harness::SweepCell c : harness::expandSweep(spec)) {
            c.tag = tagFor(n);
            c.config.regs_per_interval = n;
            c.config.rf_cache_bytes =
                    static_cast<std::size_t>(n) *
                    c.config.num_active_warps * BYTES_PER_WARP_REG;
            c.index = static_cast<int>(cells.size());
            cells.push_back(std::move(c));
        }
    }

    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs = runner.run(cells, &globalBaselineCache());

    std::printf("Figure 12: LTRF normalized IPC vs MRF latency and "
                "registers per interval\n\n");
    std::printf("%-8s %12s %12s %12s\n", "latency", "8 regs", "16 regs",
                "32 regs");

    for (double m = 1.0; m <= 7.001; m += 1.0) {
        std::printf("%-7.0fx", m);
        for (int n : INTERVAL_REGS) {
            std::vector<double> vals;
            for (const Workload &w : WorkloadSuite::all()) {
                // Tags disambiguate the interval-size copies; the
                // latency axis is part of the grid key.
                for (const harness::ResultRow &row : rs.rows())
                    if (row.cell.workload == w.name &&
                        row.cell.tag == tagFor(n) &&
                        row.cell.latency_mult == m)
                        vals.push_back(row.normalizedIpc());
            }
            std::printf(" %12.3f", geomean(vals));
        }
        std::printf("\n");
    }

    std::printf("\nPaper reference: 8 regs collapses as latency grows; "
                "16 is the sweet spot; 32\nis not uniformly better "
                "(section 6.4).\n");
    return 0;
}
