/**
 * @file
 * Reproduces paper Figure 12: LTRF IPC versus main register file
 * latency for 8, 16, and 32 registers per register-interval. The
 * register file cache is sized as 8 active warps x N registers, so
 * this is the paper's first way of varying the cache size.
 *
 * Paper findings: N=8 degrades markedly (intervals get short, so
 * PREFETCHes are frequent and hard to hide); N=32 is not necessarily
 * better than 16 (more MRF bank conflicts per prefetch).
 */

#include "bench_util.hh"

using namespace ltrf;
using namespace ltrf::bench;

int
main()
{
    std::printf("Figure 12: LTRF normalized IPC vs MRF latency and "
                "registers per interval\n\n");
    std::printf("%-8s %12s %12s %12s\n", "latency", "8 regs", "16 regs",
                "32 regs");

    for (double m = 1.0; m <= 7.001; m += 1.0) {
        std::printf("%-7.0fx", m);
        for (int n : {8, 16, 32}) {
            SimConfig cfg;
            cfg.num_sms = BENCH_SMS;
            cfg.design = RfDesign::LTRF;
            cfg.mrf_latency_mult = m;
            cfg.regs_per_interval = n;
            cfg.rf_cache_bytes = static_cast<std::size_t>(n) *
                                 cfg.num_active_warps *
                                 BYTES_PER_WARP_REG;
            std::vector<double> vals;
            for (const Workload &w : WorkloadSuite::all())
                vals.push_back(run(w, cfg).ipc / baselineIpc(w));
            std::printf(" %12.3f", geomean(vals));
        }
        std::printf("\n");
    }

    std::printf("\nPaper reference: 8 regs collapses as latency grows; "
                "16 is the sweet spot; 32\nis not uniformly better "
                "(section 6.4).\n");
    return 0;
}
