/**
 * @file
 * Google-benchmark microbenchmarks for the compiler passes:
 * register-interval formation (Algorithms 1+2), strand formation,
 * liveness, and trace generation over the workload suite.
 */

#include <benchmark/benchmark.h>

#include "compiler/liveness.hh"
#include "compiler/register_interval.hh"
#include "compiler/trace_gen.hh"
#include "workloads/workload.hh"

using namespace ltrf;

static void
BM_IntervalFormation(benchmark::State &state)
{
    const Kernel &k = WorkloadSuite::all()[static_cast<size_t>(
            state.range(0))].kernel;
    FormationOptions opt;
    opt.max_regs = 16;
    for (auto _ : state) {
        IntervalAnalysis ia = formRegisterIntervals(k, opt);
        benchmark::DoNotOptimize(ia.intervals.size());
    }
    state.SetLabel(k.name);
}
BENCHMARK(BM_IntervalFormation)->DenseRange(0, 13);

static void
BM_StrandFormation(benchmark::State &state)
{
    const Kernel &k = WorkloadSuite::byName("sgemm").kernel;
    for (auto _ : state) {
        IntervalAnalysis ia = formStrands(k, 16);
        benchmark::DoNotOptimize(ia.intervals.size());
    }
}
BENCHMARK(BM_StrandFormation);

static void
BM_Liveness(benchmark::State &state)
{
    Kernel k = WorkloadSuite::byName("lavaMD").kernel;
    for (auto _ : state) {
        int marked = annotateDeadOperands(k);
        benchmark::DoNotOptimize(marked);
    }
}
BENCHMARK(BM_Liveness);

static void
BM_TraceGeneration(benchmark::State &state)
{
    const Kernel &k = WorkloadSuite::byName("srad").kernel;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        WarpTrace t = generateTrace(k, seed++);
        benchmark::DoNotOptimize(t.real_instrs);
    }
}
BENCHMARK(BM_TraceGeneration);
