/**
 * @file
 * Reproduces the paper's section 4.3 overhead analysis: PREFETCH
 * code-size growth (paper: +7% bit-vector-only, +9% with explicit
 * instructions), WCB storage (114880 bits per SM, ~5% of the 256KB
 * register file), LTRF area (+16%), and LTRF power at iso-technology
 * (-23%, from 4-6x fewer main register file accesses).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/compile.hh"
#include "core/wcb.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

int
main(int argc, char **argv)
{
    SimConfig cfg;

    // The power analysis below compares BL and LTRF on Table 2
    // configuration #1 per workload; run all its cells up front on
    // the thread pool (config #1 is the identity row, so BL@#1 is
    // exactly the normalization baseline).
    harness::SweepSpec spec = suiteSpec();
    spec.designs = {RfDesign::BL, RfDesign::LTRF};
    spec.rf_cfg_ids = {1};
    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs = runner.run(harness::expandSweep(spec));

    // ----- Code size -----
    std::printf("Code size overhead of PREFETCH operations\n");
    std::printf("%-16s %10s %12s %12s\n", "workload", "prefetches",
                "bitvec-only", "with instr");
    double bv_sum = 0, wi_sum = 0;
    for (const Workload &w : WorkloadSuite::all()) {
        SimConfig c = cfg;
        c.design = RfDesign::LTRF;
        CompiledWorkload cw = compileWorkload(w.kernel, c, BENCH_SEED);
        std::printf("%-16s %10d %11.1f%% %11.1f%%\n", w.name.c_str(),
                    cw.code_size.num_prefetch_ops,
                    cw.code_size.bitvecOverhead() * 100.0,
                    cw.code_size.instrOverhead() * 100.0);
        bv_sum += cw.code_size.bitvecOverhead();
        wi_sum += cw.code_size.instrOverhead();
    }
    int n = static_cast<int>(WorkloadSuite::all().size());
    std::printf("%-16s %10s %11.1f%% %11.1f%%   (paper: 7%% / 9%%)\n\n",
                "MEAN", "", bv_sum / n * 100.0, wi_sum / n * 100.0);

    // ----- WCB storage -----
    std::uint64_t wcb_bits =
            static_cast<std::uint64_t>(cfg.max_warps_per_sm) *
            Wcb::bitsPerWarp();
    double rf_bits = static_cast<double>(cfg.rf_bytes) * 8.0;
    std::printf("WCB storage: %d warps x %d bits = %llu bits per SM "
                "(%.1f%% of the %zuKB RF)\n",
                cfg.max_warps_per_sm, Wcb::bitsPerWarp(),
                static_cast<unsigned long long>(wcb_bits),
                wcb_bits / rf_bits * 100.0, cfg.rf_bytes / 1024);
    std::printf("  (paper: 114880 bits, ~5%% of the register file "
                "area)\n\n");

    // ----- Area -----
    // Component model: register file cache (16KB / 256KB), WCB
    // storage, and the prefetch crossbar + address allocation units
    // (estimated at the remainder of the paper's 16% total).
    double cache_frac = static_cast<double>(cfg.rf_cache_bytes) /
                        static_cast<double>(cfg.rf_bytes);
    double wcb_frac = wcb_bits / rf_bits;
    double xbar_frac = 0.047;
    std::printf("Area overhead: cache %.1f%% + WCB %.1f%% + crossbar/"
                "alloc %.1f%% = %.1f%%  (paper: 16%%)\n\n",
                cache_frac * 100.0, wcb_frac * 100.0, xbar_frac * 100.0,
                (cache_frac + wcb_frac + xbar_frac) * 100.0);

    // ----- Power at iso-technology (configuration #1) -----
    std::printf("Power at iso-technology (configuration #1)\n");
    double ratio_sum = 0, access_ratio_sum = 0;
    for (const Workload &w : WorkloadSuite::all()) {
        const SimResult &base =
                rs.find(w.name, RfDesign::BL, 1).result;
        double base_rate = base.activity.main_accesses_per_cycle;
        double base_power = rfPower(rfConfig(1), base.activity, false,
                                    base_rate);
        const SimResult &r =
                rs.find(w.name, RfDesign::LTRF, 1).result;
        double p = rfPower(rfConfig(1), r.activity, true, base_rate);
        ratio_sum += p / base_power;
        access_ratio_sum += base.activity.main_accesses_per_cycle /
                            std::max(1e-9,
                                     r.activity.main_accesses_per_cycle);
    }
    std::printf("  LTRF power vs baseline: %.1f%% (paper: -23%%); main "
                "RF access reduction: %.1fx (paper: 4-6x)\n",
                (ratio_sum / n - 1.0) * 100.0, access_ratio_sum / n);

    // ----- Latency overhead -----
    std::printf("\nWCB lookup adds %d cycle to operand collection "
                "(paper: one extra cycle, negligible).\n",
                cfg.wcb_latency);
    return 0;
}
