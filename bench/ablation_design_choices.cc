/**
 * @file
 * Ablations of LTRF's design choices beyond the paper's explicit
 * sweeps: the narrow prefetch crossbar (section 4.2 argues a 4x
 * narrower, 4x slower crossbar is performance-neutral), the WCB
 * lookup cycle (section 4.3 argues it is negligible), pass 2 of the
 * interval formation algorithm (what merging loop nests buys), and
 * the LTRF+ liveness filter's effect on register traffic.
 *
 * All runs use configuration #7 (8x capacity, 6.3x latency), where
 * these choices matter most. Every simulation cell of every ablation
 * is batched into one ExperimentRunner invocation, so the wall clock
 * is bounded by the slowest cell, not the sum; --jobs N bounds the
 * worker count.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "core/compile.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

namespace
{

/** Cells for all workloads on @p design @ #7, tagged, with @p tweak. */
template <typename Fn>
void
appendTagged(std::vector<harness::SweepCell> &cells,
             const std::string &tag, RfDesign design, Fn tweak)
{
    harness::SweepSpec spec = suiteSpec();
    spec.designs = {design};
    spec.rf_cfg_ids = {7};
    for (harness::SweepCell c : harness::expandSweep(spec)) {
        c.tag = tag;
        tweak(c.config);
        c.index = static_cast<int>(cells.size());
        cells.push_back(std::move(c));
    }
}

/**
 * Map a tag whose tweak is a no-op (the sweep value equals the
 * SimConfig default) onto the shared untweaked-LTRF group, so the
 * identical configuration is simulated once instead of three times
 * (default crossbar, default WCB, and the traffic comparison).
 */
std::string
canonicalTag(const std::string &tag)
{
    SimConfig defaults;
    if (tag == "xbar" + std::to_string(defaults.prefetch_xbar_latency) ||
        tag == "wcb" + std::to_string(defaults.wcb_latency) ||
        tag == "traffic-ltrf")
        return "ltrf-default";
    return tag;
}

/** Geomean normalized IPC of the tag's cells across the suite. */
double
meanIpc(const harness::ResultSet &rs, const std::string &tag)
{
    std::vector<double> vals;
    for (const Workload &w : WorkloadSuite::all())
        vals.push_back(
                rs.findTagged(w.name, canonicalTag(tag)).normalizedIpc());
    return geomean(vals);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<int> xbar_lats = {1, 4, 8, 16};
    const std::vector<int> wcb_lats = {0, 1, 2, 4};

    std::vector<harness::SweepCell> cells;
    appendTagged(cells, "ltrf-default", RfDesign::LTRF,
                 [](SimConfig &) {});
    for (int lat : xbar_lats) {
        std::string tag = "xbar" + std::to_string(lat);
        if (canonicalTag(tag) == tag)
            appendTagged(cells, tag, RfDesign::LTRF,
                         [lat](SimConfig &cfg) {
                             cfg.prefetch_xbar_latency = lat;
                         });
    }
    for (int lat : wcb_lats) {
        std::string tag = "wcb" + std::to_string(lat);
        if (canonicalTag(tag) == tag)
            appendTagged(cells, tag, RfDesign::LTRF,
                         [lat](SimConfig &cfg) {
                             cfg.wcb_latency = lat;
                         });
    }
    appendTagged(cells, "traffic-plus", RfDesign::LTRF_PLUS,
                 [](SimConfig &) {});

    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs = runner.run(cells, &globalBaselineCache());

    SimConfig base = designConfig(RfDesign::LTRF, 7);

    std::printf("LTRF design-choice ablations (config #7, geomean "
                "normalized IPC)\n\n");

    // ----- Prefetch crossbar width -----
    std::printf("Prefetch crossbar (section 4.2):\n");
    for (int lat : xbar_lats)
        std::printf("  %2d-cycle transfer (width 1/%d): %.3f\n", lat,
                    lat, meanIpc(rs, "xbar" + std::to_string(lat)));
    std::printf("  -> the 4x narrower crossbar costs almost nothing; "
                "the paper uses this to cut\n     crossbar area 4x.\n\n");

    // ----- WCB lookup latency -----
    std::printf("WCB lookup latency (section 4.3):\n");
    for (int lat : wcb_lats)
        std::printf("  %d cycle(s): %.3f\n", lat,
                    meanIpc(rs, "wcb" + std::to_string(lat)));
    std::printf("\n");

    // ----- Interval formation: pass 1 only vs pass 1+2 -----
    std::printf("Interval formation pass 2 (Figure 6's merging):\n");
    {
        std::uint64_t with_p2 = 0, without_p2 = 0;
        for (const Workload &w : WorkloadSuite::all()) {
            FormationOptions o;
            o.max_regs = base.regs_per_interval;
            with_p2 += formRegisterIntervals(w.kernel, o)
                               .intervals.size();
            o.enable_pass2 = false;
            without_p2 += formRegisterIntervals(w.kernel, o)
                                  .intervals.size();
        }
        std::printf("  intervals across the suite: %llu (pass 1 only) "
                    "-> %llu (with pass 2)\n",
                    static_cast<unsigned long long>(without_p2),
                    static_cast<unsigned long long>(with_p2));
        std::printf("  -> pass 2 merges loop nests into single "
                    "intervals, minimizing PREFETCHes.\n\n");
    }

    // ----- LTRF+ liveness filter: register traffic -----
    std::printf("LTRF+ liveness filter (register transfer volume, "
                "config #7):\n");
    {
        double ltrf_x = 0, plus_x = 0;
        for (const Workload &w : WorkloadSuite::all()) {
            ltrf_x += static_cast<double>(
                    rs.findTagged(w.name, canonicalTag("traffic-ltrf"))
                            .result.xfer_regs);
            plus_x += static_cast<double>(
                    rs.findTagged(w.name, "traffic-plus")
                            .result.xfer_regs);
        }
        std::printf("  registers moved MRF<->cache: LTRF %.2fM, LTRF+ "
                    "%.2fM (-%.0f%%)\n",
                    ltrf_x / 1e6, plus_x / 1e6,
                    (1 - plus_x / ltrf_x) * 100.0);
    }
    return 0;
}
