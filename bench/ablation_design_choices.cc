/**
 * @file
 * Ablations of LTRF's design choices beyond the paper's explicit
 * sweeps: the narrow prefetch crossbar (section 4.2 argues a 4x
 * narrower, 4x slower crossbar is performance-neutral), the WCB
 * lookup cycle (section 4.3 argues it is negligible), pass 2 of the
 * interval formation algorithm (what merging loop nests buys), and
 * the LTRF+ liveness filter's effect on register traffic.
 *
 * All runs use configuration #7 (8x capacity, 6.3x latency), where
 * these choices matter most.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/compile.hh"

using namespace ltrf;
using namespace ltrf::bench;

namespace
{

double
meanIpc(const SimConfig &cfg)
{
    std::vector<double> vals;
    for (const Workload &w : WorkloadSuite::all())
        vals.push_back(run(w, cfg).ipc / baselineIpc(w));
    return geomean(vals);
}

} // namespace

int
main()
{
    SimConfig base = designConfig(RfDesign::LTRF, 7);

    std::printf("LTRF design-choice ablations (config #7, geomean "
                "normalized IPC)\n\n");

    // ----- Prefetch crossbar width -----
    std::printf("Prefetch crossbar (section 4.2):\n");
    for (int lat : {1, 4, 8, 16}) {
        SimConfig cfg = base;
        cfg.prefetch_xbar_latency = lat;
        std::printf("  %2d-cycle transfer (width 1/%d): %.3f\n", lat,
                    lat, meanIpc(cfg));
    }
    std::printf("  -> the 4x narrower crossbar costs almost nothing; "
                "the paper uses this to cut\n     crossbar area 4x.\n\n");

    // ----- WCB lookup latency -----
    std::printf("WCB lookup latency (section 4.3):\n");
    for (int lat : {0, 1, 2, 4}) {
        SimConfig cfg = base;
        cfg.wcb_latency = lat;
        std::printf("  %d cycle(s): %.3f\n", lat, meanIpc(cfg));
    }
    std::printf("\n");

    // ----- Interval formation: pass 1 only vs pass 1+2 -----
    std::printf("Interval formation pass 2 (Figure 6's merging):\n");
    {
        std::uint64_t with_p2 = 0, without_p2 = 0;
        for (const Workload &w : WorkloadSuite::all()) {
            FormationOptions o;
            o.max_regs = base.regs_per_interval;
            with_p2 += formRegisterIntervals(w.kernel, o)
                               .intervals.size();
            o.enable_pass2 = false;
            without_p2 += formRegisterIntervals(w.kernel, o)
                                  .intervals.size();
        }
        std::printf("  intervals across the suite: %llu (pass 1 only) "
                    "-> %llu (with pass 2)\n",
                    static_cast<unsigned long long>(without_p2),
                    static_cast<unsigned long long>(with_p2));
        std::printf("  -> pass 2 merges loop nests into single "
                    "intervals, minimizing PREFETCHes.\n\n");
    }

    // ----- LTRF+ liveness filter: register traffic -----
    std::printf("LTRF+ liveness filter (register transfer volume, "
                "config #7):\n");
    {
        double ltrf_x = 0, plus_x = 0;
        for (const Workload &w : WorkloadSuite::all()) {
            SimResult a = run(w, designConfig(RfDesign::LTRF, 7));
            SimResult b = run(w, designConfig(RfDesign::LTRF_PLUS, 7));
            ltrf_x += static_cast<double>(a.xfer_regs);
            plus_x += static_cast<double>(b.xfer_regs);
        }
        std::printf("  registers moved MRF<->cache: LTRF %.2fM, LTRF+ "
                    "%.2fM (-%.0f%%)\n",
                    ltrf_x / 1e6, plus_x / 1e6,
                    (1 - plus_x / ltrf_x) * 100.0);
    }
    return 0;
}
