/**
 * @file
 * Google-benchmark microbenchmark for end-to-end simulation speed:
 * simulated instructions per wall-clock second per design.
 */

#include <benchmark/benchmark.h>

#include "sim/gpu.hh"
#include "workloads/workload.hh"

using namespace ltrf;

static void
BM_Simulate(benchmark::State &state)
{
    const Workload &w = WorkloadSuite::byName("gaussian");
    RfDesign design = static_cast<RfDesign>(state.range(0));
    SimConfig cfg;
    cfg.num_sms = 2;
    cfg.design = design;
    cfg.rf_capacity_mult = 8;
    cfg.mrf_latency_mult = 6.3;
    cfg.num_mrf_banks = 128;

    std::uint64_t instrs = 0;
    for (auto _ : state) {
        SimResult r = simulate(cfg, w.kernel, 7);
        instrs += r.instructions;
        benchmark::DoNotOptimize(r.ipc);
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
            static_cast<double>(instrs), benchmark::Counter::kIsRate);
    state.SetLabel(rfDesignName(design));
}
BENCHMARK(BM_Simulate)
        ->Arg(static_cast<int>(RfDesign::BL))
        ->Arg(static_cast<int>(RfDesign::RFC))
        ->Arg(static_cast<int>(RfDesign::LTRF))
        ->Arg(static_cast<int>(RfDesign::LTRF_PLUS));
