/**
 * @file
 * Reproduces paper Table 2: the register file design space across
 * cell technologies, bank organizations, and networks, all relative
 * to the baseline HP-SRAM 256KB / 16-bank design.
 *
 * The scalars are the paper's CACTI/NVSim-derived values (encoded in
 * tech/rf_config.cc; see DESIGN.md substitutions); this harness
 * regenerates the table and sanity-checks the derived columns.
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"
#include "common/log.hh"
#include "tech/rf_config.hh"
#include "tech/rf_model.hh"

using namespace ltrf;

int
main(int argc, char **argv)
{
    // --jobs is accepted (and validated) for interface uniformity
    // with the other harnesses; this table regenerates published
    // scalars, so there are no cells to parallelize.
    (void)bench::jobsFromArgs(argc, argv);

    std::printf("Table 2: register file designs (relative to config #1)\n");
    std::printf("%-4s %-10s %7s %9s %-13s %5s %6s %6s %10s %10s %8s\n",
                "Cfg", "Cell", "#Banks", "BankSize", "Network", "Cap.",
                "Area", "Power", "Cap./Area", "Cap./Power", "Latency");
    for (const RfConfig &c : rfConfigTable()) {
        std::printf("#%-3d %-10s %6dx %8dx %-13s %4.0fx %5.2fx %5.2fx "
                    "%9.1fx %9.1fx %7.2fx\n",
                    c.id, cellTechName(c.tech), c.banks_mult,
                    c.bank_size_mult, c.network, c.capacity, c.area,
                    c.power, c.cap_per_area, c.cap_per_power, c.latency);

        // Derived-column consistency (as in the paper's table).
        ltrf_assert(c.capacity / c.area == c.cap_per_area ||
                    std::abs(c.capacity / c.area - c.cap_per_area) < 0.01,
                    "cap/area mismatch in config #%d", c.id);

        // The parametric generator (tech/rf_model) must reproduce
        // every published row from its axes alone, bit-identically.
        RfModelPoint mp;
        mp.tech = c.tech;
        mp.banks_mult = c.banks_mult;
        mp.bank_size_mult = c.bank_size_mult;
        mp.network = std::strcmp(c.network, "Crossbar") == 0
                             ? NetworkKind::CROSSBAR
                             : NetworkKind::FLAT_BUTTERFLY;
        RfConfig gen = makeRfConfig(mp);
        ltrf_assert(gen.id == c.id && gen.capacity == c.capacity &&
                    gen.area == c.area && gen.power == c.power &&
                    gen.latency == c.latency,
                    "parametric model does not reproduce config #%d",
                    c.id);
    }
    std::printf("\nKey observations (section 2.2): designs optimizing "
                "capacity density (e.g. #7 DWM:\n32x bits/area, 12x "
                "bits/power) pay up to 6.3x access latency.\n");
    return 0;
}
